// Chaos-campaign benchmark: availability and goodput of the serving
// fleet under scripted fault schedules. Two sweeps:
//
//  1. fault-storm rate sweep — fleet-wide silent-corruption storms of
//     increasing intensity over the first half of the drain, showing
//     how backoff retries trade goodput for availability;
//  2. the standard scripted scenarios (serve/chaos.h) — card death
//     mid-drain, storm + death, HBM degrade, gray card, overload
//     shed — each reporting availability, quarantine activity and
//     the conservation verdict.
//
// Every number is on the modeled 300 MHz clock (bit-identical across
// hosts and POSEIDON_THREADS). The binary doubles as a gate: it exits
// non-zero if any scenario loses a job (submitted != completed +
// failed + expired + shed) or leaves a ticket unresolved.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "common/table.h"
#include "serve/chaos.h"

using namespace poseidon;

namespace {

std::string
fmt(double v, const char *suffix = "")
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h("chaos", argc, argv);
    bool allOk = true;

    // ---- Sweep 1: storm intensity vs availability/goodput.
    const std::vector<double> kRates = {0.0, 0.05, 0.1, 0.2, 0.4};
    h.config("storm_rates",
             telemetry::Json::parse("[0.0, 0.05, 0.1, 0.2, 0.4]"));

    // Calibrate the storm window against the clean horizon so every
    // rate sees the same absolute fault exposure.
    serve::Scenario base;
    base.name = "calibrate";
    base.jobs = 96;
    double horizon = serve::run_scenario(base).horizonCycles;
    h.config("jobs", telemetry::Json(96));
    h.config("clean_horizon_cycles", telemetry::Json(horizon));

    AsciiTable storm("Fault-storm sweep: corruption rate vs "
                     "availability (96 jobs, 4 cards)");
    storm.header({"storm rate", "completed", "failed", "retries",
                  "availability", "goodput (jobs/s)"});
    for (double rate : kRates) {
        serve::Scenario sc;
        sc.name = "storm-sweep";
        sc.jobs = 96;
        sc.maxAttempts = 8;
        sc.backoffBaseCycles = 0.05 * horizon;
        sc.health.minAttempts = 16; // storms are not a card's fault
        std::ostringstream dsl;
        dsl << "FaultStorm{start=0, end=" << 0.5 * horizon
            << ", rate=" << rate << "}";
        sc.schedule = serve::ChaosSchedule::parse(dsl.str());
        serve::CampaignReport r = serve::run_scenario(sc);
        allOk = allOk && r.ok();

        std::ostringstream key;
        key << "storm.rate" << rate;
        h.metric(key.str() + ".availability", r.availability);
        h.metric(key.str() + ".goodput_jobs_per_sec",
                 r.goodputJobsPerSec);
        h.metric(key.str() + ".retries",
                 static_cast<double>(r.retries));
        storm.row({fmt(rate * 100.0, "%"),
                   std::to_string(r.completed),
                   std::to_string(r.failed),
                   std::to_string(r.retries),
                   fmt(r.availability * 100.0, "%"),
                   fmt(r.goodputJobsPerSec)});
    }
    storm.print();

    // ---- Sweep 2: the standard scripted scenarios.
    AsciiTable table("Standard chaos scenarios (conservation-gated)");
    table.header({"scenario", "completed", "shed", "retries",
                  "quarantines", "readmits", "probes", "availability",
                  "conserved"});
    for (const serve::Scenario &sc : serve::standard_scenarios()) {
        serve::CampaignReport r = serve::run_scenario(sc);
        allOk = allOk && r.ok();
        h.metric(sc.name + ".availability", r.availability);
        h.metric(sc.name + ".goodput_jobs_per_sec",
                 r.goodputJobsPerSec);
        h.metric(sc.name + ".quarantines",
                 static_cast<double>(r.quarantines));
        h.metric(sc.name + ".readmissions",
                 static_cast<double>(r.readmissions));
        h.metric(sc.name + ".shed", static_cast<double>(r.shed));
        table.row({sc.name, std::to_string(r.completed),
                   std::to_string(r.shed), std::to_string(r.retries),
                   std::to_string(r.quarantines),
                   std::to_string(r.readmissions),
                   std::to_string(r.probes),
                   fmt(r.availability * 100.0, "%"),
                   r.ok() ? "yes" : "NO"});
    }
    table.print();

    h.metric("conserved", allOk ? 1.0 : 0.0);
    if (!allOk) {
        std::printf("CONSERVATION VIOLATED: at least one scenario "
                    "lost a job or left a ticket unresolved\n");
    }
    return h.finish(allOk ? 0 : 1);
}
