// Chaos-campaign benchmark: availability and goodput of the serving
// fleet under scripted fault schedules. Two sweeps:
//
//  1. fault-storm rate sweep — fleet-wide silent-corruption storms of
//     increasing intensity over the first half of the drain, showing
//     how backoff retries trade goodput for availability;
//  2. the standard scripted scenarios (serve/chaos.h) — card death
//     mid-drain, storm + death, HBM degrade, gray card, overload
//     shed — each reporting availability, quarantine activity and
//     the conservation verdict.
//
// Every number is on the modeled 300 MHz clock (bit-identical across
// hosts and POSEIDON_THREADS). The binary doubles as a gate: it exits
// non-zero if any scenario loses a job (submitted != completed +
// failed + expired + shed) or leaves a ticket unresolved.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "common/table.h"
#include "serve/chaos.h"

using namespace poseidon;

namespace {

std::string
fmt(double v, const char *suffix = "")
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
    return buf;
}

/// Directory of the BENCH document ("" = working directory).
std::string
bench_dir(const bench::Harness &h)
{
    const std::string &out = h.output_path();
    std::size_t slash = out.find_last_of('/');
    return slash == std::string::npos ? "" : out.substr(0, slash + 1);
}

/// Gate the card-death scenario's page against its scripted fault
/// window: the breaker alert must fire inside the death window (the
/// card can only start failing once it starts corrupting) and resolve
/// only after the window ends (probes must come back clean first).
bool
alert_window_ok(const serve::Scenario &sc,
                const serve::CampaignReport &r)
{
    if (sc.name != "card-death-mid-drain") return true;
    if (r.alertsFired < 1 || r.alertsResolved < 1) {
        std::fprintf(stderr,
                     "FAIL: %s fired %llu / resolved %llu alerts "
                     "(want >= 1 each)\n",
                     sc.name.c_str(),
                     static_cast<unsigned long long>(r.alertsFired),
                     static_cast<unsigned long long>(
                         r.alertsResolved));
        return false;
    }
    double deathStart = sc.schedule.events.at(0).startCycle;
    double deathEnd = sc.schedule.events.at(0).endCycle;
    double firedAt = -1.0, resolvedAt = -1.0;
    for (const telemetry::AlertTransition &t : r.alertLog) {
        if (t.to == telemetry::AlertState::Firing && firedAt < 0.0) {
            firedAt = t.cycle;
        }
        if (t.from == telemetry::AlertState::Firing &&
            resolvedAt < 0.0) {
            resolvedAt = t.cycle;
        }
    }
    if (firedAt < deathStart || resolvedAt < deathEnd) {
        std::fprintf(stderr,
                     "FAIL: %s alert window [%g, %g] does not bracket "
                     "the death window [%g, %g]\n",
                     sc.name.c_str(), firedAt, resolvedAt, deathStart,
                     deathEnd);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h("chaos", argc, argv);
    bool allOk = true;

    // ---- Sweep 1: storm intensity vs availability/goodput.
    const std::vector<double> kRates = {0.0, 0.05, 0.1, 0.2, 0.4};
    h.config("storm_rates",
             telemetry::Json::parse("[0.0, 0.05, 0.1, 0.2, 0.4]"));

    // Calibrate the storm window against the clean horizon so every
    // rate sees the same absolute fault exposure.
    serve::Scenario base;
    base.name = "calibrate";
    base.jobs = 96;
    double horizon = serve::run_scenario(base).horizonCycles;
    h.config("jobs", telemetry::Json(96));
    h.config("clean_horizon_cycles", telemetry::Json(horizon));

    AsciiTable storm("Fault-storm sweep: corruption rate vs "
                     "availability (96 jobs, 4 cards)");
    storm.header({"storm rate", "completed", "failed", "retries",
                  "availability", "goodput (jobs/s)"});
    for (double rate : kRates) {
        serve::Scenario sc;
        sc.name = "storm-sweep";
        sc.jobs = 96;
        sc.maxAttempts = 8;
        sc.backoffBaseCycles = 0.05 * horizon;
        sc.health.minAttempts = 16; // storms are not a card's fault
        std::ostringstream dsl;
        dsl << "FaultStorm{start=0, end=" << 0.5 * horizon
            << ", rate=" << rate << "}";
        sc.schedule = serve::ChaosSchedule::parse(dsl.str());
        serve::CampaignReport r = serve::run_scenario(sc);
        allOk = allOk && r.ok();

        std::ostringstream key;
        key << "storm.rate" << rate;
        h.metric(key.str() + ".availability", r.availability);
        h.metric(key.str() + ".goodput_jobs_per_sec",
                 r.goodputJobsPerSec);
        h.metric(key.str() + ".retries",
                 static_cast<double>(r.retries));
        storm.row({fmt(rate * 100.0, "%"),
                   std::to_string(r.completed),
                   std::to_string(r.failed),
                   std::to_string(r.retries),
                   fmt(r.availability * 100.0, "%"),
                   fmt(r.goodputJobsPerSec)});
    }
    storm.print();

    // ---- Sweep 2: the standard scripted scenarios.
    AsciiTable table("Standard chaos scenarios (conservation-gated)");
    table.header({"scenario", "completed", "shed", "retries",
                  "quarantines", "readmits", "probes", "availability",
                  "alerts", "conserved"});
    std::size_t tsdbSeries = 0;
    double tsdbCadence = 0.0;
    for (const serve::Scenario &sc : serve::standard_scenarios()) {
        serve::CampaignReport r = serve::run_scenario(sc);
        bool windowOk = alert_window_ok(sc, r);
        allOk = allOk && r.ok() && windowOk;
        h.metric(sc.name + ".availability", r.availability);
        h.metric(sc.name + ".goodput_jobs_per_sec",
                 r.goodputJobsPerSec);
        h.metric(sc.name + ".quarantines",
                 static_cast<double>(r.quarantines));
        h.metric(sc.name + ".readmissions",
                 static_cast<double>(r.readmissions));
        h.metric(sc.name + ".shed", static_cast<double>(r.shed));
        h.metric(sc.name + ".alerts_fired",
                 static_cast<double>(r.alertsFired));
        h.metric(sc.name + ".alerts_resolved",
                 static_cast<double>(r.alertsResolved));
        table.row({sc.name, std::to_string(r.completed),
                   std::to_string(r.shed), std::to_string(r.retries),
                   std::to_string(r.quarantines),
                   std::to_string(r.readmissions),
                   std::to_string(r.probes),
                   fmt(r.availability * 100.0, "%"),
                   std::to_string(r.alertsFired) + "/" +
                       std::to_string(r.alertsResolved),
                   r.ok() && windowOk ? "yes" : "NO"});

        // Each scenario's TSDB rides along for poseidon_dash; the
        // card-death one stamps the BENCH document.
        if (!r.tsdbJsonl.empty()) {
            std::string path =
                bench_dir(h) + "TSDB_chaos_" + sc.name + ".jsonl";
            std::ofstream f(path, std::ios::binary);
            if (f) f << r.tsdbJsonl;
            if (!f) {
                std::fprintf(stderr, "bench_chaos: cannot write %s\n",
                             path.c_str());
            } else {
                std::printf("[bench] wrote %s\n", path.c_str());
            }
            if (sc.name == "card-death-mid-drain") {
                tsdbCadence = sc.tsdbCadenceCycles;
                tsdbSeries = telemetry::Tsdb::parse_jsonl(r.tsdbJsonl)
                                 .series_count();
            }
        }
    }
    table.print();
    if (tsdbCadence > 0.0) h.tsdb_stamp(tsdbCadence, tsdbSeries);

    h.metric("conserved", allOk ? 1.0 : 0.0);
    if (!allOk) {
        std::printf("CONSERVATION VIOLATED: at least one scenario "
                    "lost a job or left a ticket unresolved\n");
    }
    return h.finish(allOk ? 0 : 1);
}
