// Reproduces Table VIII: resource and latency comparison of the naive
// automorphism core vs HFAuto, plus a software cross-check that the
// 4-stage HFAuto algorithm is bit-exact with the reference map and a
// wall-clock comparison of the two software implementations.

#include <chrono>
#include <cstdio>

#include "bench/bench_harness.h"

#include "common/prng.h"
#include "common/table.h"
#include "hw/resource.h"
#include "poly/automorphism.h"
#include "poly/hfauto.h"
#include "rns/primes.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("table8_hfauto_resources", argc, argv);
    AsciiTable t(
        "Table VIII: automorphism core — naive Auto vs HFAuto "
        "(N = 2^16, C = 512)");
    t.header({"Design", "FF", "DSP", "LUT", "BRAM", "Latency (cycles)"});
    for (bool hf : {false, true}) {
        auto r = hw::ResourceModel::auto_single(hf, 512);
        u64 lat = hw::ResourceModel::auto_latency_cycles(u64(1) << 16,
                                                         hf, 512);
        std::string pre = hf ? "hfauto" : "naive";
        h.metric(pre + ".lut", static_cast<double>(r.lut));
        h.metric(pre + ".latency_cycles", static_cast<double>(lat));
        t.row({r.name, std::to_string(r.ff), std::to_string(r.dsp),
               std::to_string(r.lut), std::to_string(r.bram),
               std::to_string(lat)});
    }
    t.print();
    std::printf("\nHFAuto trades ~%ux more LUTs for a %ux latency "
                "reduction (4*N/C vs N cycles).\n",
                122u, 128u);

    // Software validation: bit-exactness + timing at N=2^16.
    std::size_t n = std::size_t(1) << 16;
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    Prng prng(3);
    std::vector<u64> a(n), ref(n), got(n);
    for (auto &v : a) v = prng.uniform(q);
    HFAuto hf(n, 512);
    u64 g = galois_element_for_step(n, 17);

    auto t0 = std::chrono::steady_clock::now();
    automorphism_coeff_limb(a.data(), ref.data(), n, g, q);
    auto t1 = std::chrono::steady_clock::now();
    hf.apply_limb(a.data(), got.data(), g, q);
    auto t2 = std::chrono::steady_clock::now();

    bool exact = ref == got;
    h.metric("bit_exact", exact ? 1.0 : 0.0);
    std::printf("\nSoftware cross-check at N=2^16, g=5^17: HFAuto %s "
                "the reference map.\n",
                exact ? "is bit-exact with" : "DIFFERS FROM");
    std::printf("Software walltime: reference %.3f ms, 4-stage HFAuto "
                "%.3f ms (stage buffers cost in software,\npay off in "
                "hardware where stages pipeline at C elems/cycle).\n",
                std::chrono::duration<double>(t1 - t0).count() * 1e3,
                std::chrono::duration<double>(t2 - t1).count() * 1e3);
    return h.finish(exact ? 0 : 1);
}
