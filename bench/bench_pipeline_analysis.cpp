// Extension bench: the event-driven pipeline model vs the analytic
// model, plus per-unit occupancy for each benchmark — the schedule-level
// view of why Poseidon's operator reuse works (no unit sits hot while
// another is starved for long).

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/pipeline.h"
#include "workloads/workloads.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("pipeline_analysis", argc, argv);
    hw::PoseidonSim analytic;
    hw::PipelineSim pipeline;

    AsciiTable t("Event-driven pipeline vs analytic model + unit "
                 "occupancy");
    t.header({"Benchmark", "analytic (ms)", "pipeline (ms)", "ratio",
              "MA", "MM/SBT", "NTT", "Auto", "HBM rd", "HBM wr"});

    for (const auto &w : workloads::paper_benchmarks()) {
        auto ra = analytic.run(w.trace);
        auto rp = pipeline.run(w.trace);
        h.record_sim(w.name, ra, analytic.config());
        h.metric(w.name + ".pipeline_ms", rp.seconds * 1e3);
        h.metric(w.name + ".pipeline_over_analytic",
                 rp.seconds / ra.seconds);
        auto occ = [&](hw::Unit u) {
            return AsciiTable::num(100.0 * rp.occupancy(u), 1);
        };
        t.row({w.name, AsciiTable::num(ra.seconds * 1e3, 1),
               AsciiTable::num(rp.seconds * 1e3, 1),
               AsciiTable::num(rp.seconds / ra.seconds, 2),
               occ(hw::Unit::MA), occ(hw::Unit::MM), occ(hw::Unit::NTT),
               occ(hw::Unit::AUTO), occ(hw::Unit::HBM_RD),
               occ(hw::Unit::HBM_WR)});
    }
    t.print();

    std::printf(
        "\nReading the table: the two models agree within tens of "
        "percent (they share per-instruction latencies\nbut derive "
        "overlap differently); MM and NTT are the hot units, matching "
        "Fig. 9's operator breakdown, and\nHBM read occupancy tracks "
        "Table VII's utilization.\n");
    return h.finish();
}
