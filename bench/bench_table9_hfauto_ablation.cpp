// Reproduces Table IX: the HFAuto ablation — full-benchmark execution
// time with the naive automorphism core (Poseidon-Auto) vs the 4-stage
// HFAuto core (Poseidon-HFAuto). Expected shape: up to an order of
// magnitude degradation without HFAuto on rotation-heavy workloads.

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/sim.h"
#include "workloads/workloads.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("table9_hfauto_ablation", argc, argv);
    hw::HwConfig cfgNaive;
    cfgNaive.hfauto = false;
    hw::PoseidonSim simNaive(cfgNaive);
    hw::PoseidonSim simHf; // default: HFAuto on

    AsciiTable t("Table IX: HFAuto ablation (benchmark time, ms)");
    t.header({"Design", "LR", "LSTM", "ResNet-20",
              "Packed Bootstrapping"});

    auto benches = workloads::paper_benchmarks();
    std::vector<std::string> naiveRow = {"Poseidon-Auto"};
    std::vector<std::string> hfRow = {"Poseidon-HFAuto"};
    std::vector<std::string> ratioRow = {"slowdown without HFAuto"};
    for (const auto &w : benches) {
        double tn = simNaive.run(w.trace).seconds * 1e3 /
                    static_cast<double>(w.reportDivisor);
        hw::SimResult rh = simHf.run(w.trace);
        h.record_sim(w.name, rh, simHf.config());
        double th = rh.seconds * 1e3 /
                    static_cast<double>(w.reportDivisor);
        h.metric(w.name + ".slowdown_without_hfauto", tn / th);
        naiveRow.push_back(AsciiTable::num(tn, 1));
        hfRow.push_back(AsciiTable::num(th, 1));
        ratioRow.push_back(AsciiTable::speedup(tn / th, 2));
    }
    t.row(naiveRow);
    t.row(hfRow);
    t.row(ratioRow);
    t.print();

    std::printf("\nPaper Table IX reports ~10x degradation for "
                "Poseidon-Auto on rotation-heavy benchmarks.\n");
    return h.finish();
}
