#include "bench/bench_harness.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/parallel.h"
#include "kernels/kernels.h"

namespace poseidon::bench {

namespace {

std::string
run_git(const char *cmd)
{
    FILE *p = ::popen(cmd, "r");
    if (!p) return "unknown";
    char buf[128];
    std::string out;
    while (std::fgets(buf, sizeof(buf), p)) out += buf;
    int rc = ::pclose(p);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
    }
    if (rc != 0 || out.empty()) return "unknown";
    return out;
}

} // namespace

std::string
git_describe()
{
    return run_git("git describe --always --dirty 2>/dev/null");
}

std::string
git_sha()
{
    return run_git("git rev-parse HEAD 2>/dev/null");
}

Harness::Harness(std::string name, int argc, char **argv)
    : name_(std::move(name))
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--no-json") writeJson_ = false;
    }
    std::string dir;
    if (const char *env = std::getenv("POSEIDON_BENCH_DIR")) dir = env;
    if (!dir.empty() && dir.back() != '/') dir += '/';
    outPath_ = dir + "BENCH_" + name_ + ".json";
    // Provenance: which host-kernel ISA level timed this run. Config
    // entries are not diffed by the regression gate, so the stamp is
    // informational (the gated metrics are level-relative ratios).
    config_.set("simd",
                telemetry::Json(std::string(
                    kernels::level_name(kernels::active_level()))));
}

void
Harness::config(const std::string &key, telemetry::Json v)
{
    config_.set(key, std::move(v));
}

void
Harness::metric(const std::string &key, double v)
{
    metrics_.set(key, telemetry::Json(v));
}

void
Harness::set_hw_config_name(std::string name)
{
    hwConfigName_ = std::move(name);
}

void
Harness::tsdb_stamp(double cadenceCycles, std::size_t seriesCount)
{
    hasTsdb_ = true;
    tsdb_ = telemetry::Json::object();
    tsdb_.set("cadence_cycles", telemetry::Json(cadenceCycles));
    tsdb_.set("series",
              telemetry::Json(static_cast<u64>(seriesCount)));
}

void
Harness::record_sim(const std::string &prefix, const hw::SimResult &r,
                    const hw::HwConfig &cfg)
{
    metric(prefix + ".cycles", r.cycles);
    metric(prefix + ".seconds", r.seconds);
    metric(prefix + ".bandwidth_util", r.bandwidth_utilization(cfg));
    totalCycles_ += r.cycles;
    totalSeconds_ += r.seconds;
    totalBytes_ += static_cast<double>(r.bytesRead + r.bytesWritten);
    peakGBps_ = cfg.hbmPeakGBps;
}

int
Harness::finish(int rc)
{
    if (finished_ || !writeJson_) return rc;
    finished_ = true;

    double util = 0.0;
    if (totalSeconds_ > 0.0 && peakGBps_ > 0.0) {
        util = totalBytes_ / (totalSeconds_ * peakGBps_ * 1e9);
    }

    telemetry::Json root = telemetry::Json::object();
    root.set("schema_version", telemetry::Json(2));
    root.set("name", telemetry::Json(name_));
    root.set("git", telemetry::Json(git_describe()));
    root.set("git_sha", telemetry::Json(git_sha()));
    root.set("threads",
             telemetry::Json(
                 static_cast<u64>(parallel::num_threads())));
    root.set("hw_config", telemetry::Json(hwConfigName_));
    if (hasTsdb_) root.set("tsdb", tsdb_);
    root.set("config", config_);
    root.set("metrics", metrics_);
    root.set("cycles", telemetry::Json(totalCycles_));
    root.set("seconds", telemetry::Json(totalSeconds_));
    root.set("bandwidth_util", telemetry::Json(util));

    std::ofstream out(outPath_);
    if (!out) {
        std::fprintf(stderr, "bench harness: cannot write %s\n",
                     outPath_.c_str());
        return 1;
    }
    out << root.dump(2) << "\n";
    std::printf("\n[bench] wrote %s\n", outPath_.c_str());
    return rc;
}

} // namespace poseidon::bench
