// Reproduces Fig. 9: per-benchmark execution time broken down by the
// four key operators (MA, MM, NTT/INTT, Automorphism). Shape (paper):
// MM and NTT occupy the largest proportion.

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/sim.h"
#include "workloads/workloads.h"

using namespace poseidon;
using isa::OpKind;

int
main(int argc, char **argv)
{
    bench::Harness h("fig9_operator_breakdown", argc, argv);
    hw::PoseidonSim sim;

    AsciiTable t("Fig. 9: key-operator time breakdown per benchmark "
                 "(percent of compute cycles)");
    t.header({"Benchmark", "total (ms)", "MA", "MM", "NTT/INTT",
              "Automorphism"});

    for (const auto &w : workloads::paper_benchmarks()) {
        auto r = sim.run(w.trace);
        double ma = r.kind_cycles(OpKind::MA);
        double mm = r.kind_cycles(OpKind::MM);
        double ntt = r.kind_cycles(OpKind::NTT) +
                     r.kind_cycles(OpKind::INTT);
        double au = r.kind_cycles(OpKind::AUTO);
        double total = ma + mm + ntt + au;
        h.record_sim(w.name, r, sim.config());
        h.metric(w.name + ".mm_pct", 100.0 * mm / total);
        h.metric(w.name + ".ntt_pct", 100.0 * ntt / total);
        auto pct = [&](double v) {
            return AsciiTable::num(100.0 * v / total, 2);
        };
        t.row({w.name, AsciiTable::num(r.seconds * 1e3, 1), pct(ma),
               pct(mm), pct(ntt), pct(au)});
    }
    t.print();

    std::printf("\nShape check (paper Fig. 9): MM and NTT take most of "
                "the operator time; MA is cheap despite its\nfrequency; "
                "automorphism is small thanks to HFAuto.\n");
    return h.finish();
}
