// Closed-loop serving benchmark: sweeps offered load (concurrent
// closed-loop clients) against fleet size (simulated Poseidon cards)
// through the multi-tenant serving engine and reports simulated
// throughput, per-tenant latency percentiles and per-card occupancy.
//
// Every number is on the modeled 300 MHz accelerator clock, so results
// are bit-identical across host machines and POSEIDON_THREADS
// settings; the host thread pool only shortens wall time.
//
// Besides throughput/latency, each saturated cell reports where the
// end-to-end cycles went (queue wait / batch delay / backoff / retry
// overhead / execution shares, rebuilt from the lifecycle journal) so
// the regression gate can watch phase drift, not just p99. The
// saturated largest-fleet journal itself is written next to the BENCH
// document as JOURNAL_serving.jsonl for poseidon_explain /
// validate_journal.

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "common/table.h"
#include "isa/compiler.h"
#include "serve/engine.h"
#include "serve/latency_breakdown.h"

using namespace poseidon;

namespace {

/// One client request: a keyswitch-bearing op mix at a medium shape —
/// big enough to exercise every operator, small enough to sweep.
isa::Trace
request_trace(unsigned sizeClass)
{
    isa::OpShape s;
    s.n = u64(1) << 13;
    s.limbs = 8 + 4 * sizeClass; // three request sizes per tenant mix
    s.dnum = 2;
    s.K = 4 + 2 * sizeClass;
    isa::Trace t;
    isa::emit_cmult(t, s);
    isa::emit_rotation(t, s);
    return t;
}

struct CellResult
{
    double throughput = 0.0; ///< completed jobs per simulated second
    double occupancy = 0.0;
    double p50 = 0.0; ///< worst tenant p50, simulated us
    double p99 = 0.0; ///< worst tenant p99, simulated us
    serve::ServeStats stats;
    /// Fleet-wide share of end-to-end cycles per lifecycle phase,
    /// rebuilt from the journal (indexed by serve::Phase).
    std::array<double, serve::kPhaseCount> phaseShare{};
    std::string journalJsonl; ///< the cell's lifecycle journal
    std::string tsdbJsonl;    ///< "" unless the cell sampled a TSDB
    std::size_t tsdbSeries = 0;
};

/// TSDB sample cadence for the saturated cell, in simulated cycles.
constexpr double kTsdbCadence = 1e5;

/// Run `clients` closed-loop clients (each submits its next request
/// the moment the previous one finishes) for `perClient` requests
/// against a `cards`-card fleet. `tsdbCadence > 0` turns on the
/// engine's time-series sampling for the cell.
CellResult
run_cell(std::size_t cards, std::size_t clients, u64 perClient,
         double tsdbCadence = 0.0)
{
    serve::ServeConfig cfg;
    cfg.cards = cards;
    cfg.exportTelemetry = true;
    cfg.tsdbCadenceCycles = tsdbCadence;
    serve::ServingEngine eng(cfg);

    struct Client
    {
        std::string tenant;
        unsigned sizeClass = 0;
        u64 remaining = 0;
    };
    std::vector<Client> cs(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        cs[i].tenant = "tenant" + std::to_string(i % 3);
        cs[i].sizeClass = static_cast<unsigned>(i % 3);
        cs[i].remaining = perClient;
    }

    std::function<void(std::size_t, double)> feed =
        [&](std::size_t i, double arrival) {
            Client &c = cs[i];
            if (c.remaining == 0) return;
            --c.remaining;
            serve::JobSpec s;
            s.tenant = c.tenant;
            s.name = "client" + std::to_string(i);
            s.trace = request_trace(c.sizeClass);
            s.arrivalCycle = arrival;
            s.callback = [&feed, i](const serve::JobResult &r) {
                feed(i, r.finishCycle);
            };
            eng.submit(std::move(s));
        };
    for (std::size_t i = 0; i < clients; ++i) feed(i, 0.0);
    eng.drain();

    CellResult out;
    out.stats = eng.stats();
    out.throughput = out.stats.throughput_jobs_per_sec();
    out.occupancy = out.stats.fleet_occupancy();
    double toUs = 1e6 / (out.stats.clockGHz * 1e9);
    for (const auto &[name, t] : out.stats.tenants) {
        (void)name;
        out.p50 = std::max(out.p50, t.p50LatencyCycles * toUs);
        out.p99 = std::max(out.p99, t.p99LatencyCycles * toUs);
    }

    serve::BreakdownReport br = serve::decompose(eng.journal());
    std::array<double, serve::kPhaseCount> sums{};
    double total = 0.0;
    for (const serve::JobBreakdown &jb : br.jobs) {
        total += jb.endToEndCycles;
        for (std::size_t p = 0; p < serve::kPhaseCount; ++p) {
            sums[p] += jb.phaseCycles[p];
        }
    }
    if (total > 0.0) {
        for (std::size_t p = 0; p < serve::kPhaseCount; ++p) {
            out.phaseShare[p] = sums[p] / total;
        }
    }
    out.journalJsonl = eng.journal().to_jsonl();
    if (tsdbCadence > 0.0) {
        out.tsdbJsonl = eng.tsdb().to_jsonl();
        out.tsdbSeries = eng.tsdb().series_count();
    }
    return out;
}

std::string
fmt(double v, const char *suffix = "")
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h("serving", argc, argv);
    const std::vector<std::size_t> kCards = {1, 2, 4};
    const std::vector<std::size_t> kClients = {2, 8, 32};
    const u64 kPerClient = 8;
    h.config("cards", telemetry::Json::parse("[1, 2, 4]"));
    h.config("clients", telemetry::Json::parse("[2, 8, 32]"));
    h.config("requests_per_client", telemetry::Json(kPerClient));
    h.config("tenants", telemetry::Json(3));

    AsciiTable table("Closed-loop serving: offered load x fleet size "
                    "(simulated time)");
    table.header({"cards", "clients", "jobs", "throughput (jobs/s)",
                  "fleet occupancy", "worst p50 (us)",
                  "worst p99 (us)"});

    // saturated[cards] = throughput at the highest offered load.
    std::vector<double> saturated(kCards.size(), 0.0);
    std::string saturatedJournal; // largest fleet, highest load
    std::string saturatedTsdb;
    std::size_t saturatedTsdbSeries = 0;
    for (std::size_t ci = 0; ci < kCards.size(); ++ci) {
        for (std::size_t li = 0; li < kClients.size(); ++li) {
            // The saturated largest-fleet cell also samples the TSDB
            // (inert elsewhere: the dump is one curve, not nine).
            bool saturatedCell = ci + 1 == kCards.size() &&
                                 li + 1 == kClients.size();
            CellResult r =
                run_cell(kCards[ci], kClients[li], kPerClient,
                         saturatedCell ? kTsdbCadence : 0.0);
            std::string key = "c" + std::to_string(kCards[ci]) +
                              ".cl" + std::to_string(kClients[li]);
            h.metric(key + ".throughput_jobs_per_sec", r.throughput);
            h.metric(key + ".fleet_occupancy", r.occupancy);
            h.metric(key + ".worst_p50_us", r.p50);
            h.metric(key + ".worst_p99_us", r.p99);
            h.metric(key + ".batches",
                     static_cast<double>(r.stats.batches));
            table.row({std::to_string(kCards[ci]),
                       std::to_string(kClients[li]),
                       std::to_string(r.stats.completed),
                       fmt(r.throughput), fmt(100.0 * r.occupancy, "%"),
                       fmt(r.p50), fmt(r.p99)});
            if (li + 1 == kClients.size()) {
                saturated[ci] = r.throughput;
                // Mirror the serve.* aggregates for the saturated
                // point of each fleet size into the BENCH document.
                std::string sk = "c" + std::to_string(kCards[ci]);
                h.metric(sk + ".serve.fleet_occupancy", r.occupancy);
                h.metric(sk + ".serve.horizon_cycles",
                         r.stats.horizonCycles);
                h.metric(sk + ".serve.max_queue_depth",
                         static_cast<double>(r.stats.maxQueueDepth));
                for (const auto &[tenant, t] : r.stats.tenants) {
                    h.metric(sk + ".serve.tenant_p50_cycles." + tenant,
                             t.p50LatencyCycles);
                    h.metric(sk + ".serve.tenant_p99_cycles." + tenant,
                             t.p99LatencyCycles);
                }
                for (std::size_t p = 0; p < serve::kPhaseCount; ++p) {
                    h.metric(sk + ".serve.phase_share." +
                                 serve::to_string(
                                     static_cast<serve::Phase>(p)),
                             r.phaseShare[p]);
                }
                if (ci + 1 == kCards.size()) {
                    saturatedJournal = std::move(r.journalJsonl);
                    saturatedTsdb = std::move(r.tsdbJsonl);
                    saturatedTsdbSeries = r.tsdbSeries;
                }
            }
        }
    }
    table.print();

    // Drop the saturated largest-fleet journal next to the BENCH
    // document so CI can validate it and operators can replay it
    // through poseidon_explain.
    if (!saturatedJournal.empty()) {
        std::string out = h.output_path();
        std::size_t slash = out.find_last_of('/');
        std::string dir =
            slash == std::string::npos ? "" : out.substr(0, slash + 1);
        std::string path = dir + "JOURNAL_serving.jsonl";
        std::ofstream f(path, std::ios::binary);
        if (f) f << saturatedJournal;
        if (!f) {
            std::fprintf(stderr,
                         "bench_serving: cannot write %s\n",
                         path.c_str());
        } else {
            std::printf("\n[bench] wrote %s\n", path.c_str());
        }
    }

    // The saturated TSDB dump rides along for poseidon_dash / the CI
    // dashboard artifact; the stamp ties the BENCH document to it.
    if (!saturatedTsdb.empty()) {
        h.tsdb_stamp(kTsdbCadence, saturatedTsdbSeries);
        std::string out = h.output_path();
        std::size_t slash = out.find_last_of('/');
        std::string dir =
            slash == std::string::npos ? "" : out.substr(0, slash + 1);
        std::string path = dir + "TSDB_serving.jsonl";
        std::ofstream f(path, std::ios::binary);
        if (f) f << saturatedTsdb;
        if (!f) {
            std::fprintf(stderr, "bench_serving: cannot write %s\n",
                         path.c_str());
        } else {
            std::printf("[bench] wrote %s\n", path.c_str());
        }
    }

    double speedup = saturated[0] > 0.0
                         ? saturated[kCards.size() - 1] / saturated[0]
                         : 0.0;
    h.metric("speedup_4c_vs_1c_saturated", speedup);
    std::printf("\nSaturated throughput speedup, 4 cards vs 1: "
                "%.2fx\n", speedup);

    // The fleet must actually shard: 4 cards >= 2x one card at
    // saturating offered load, in simulated time.
    if (speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: 4-card speedup %.2fx below 2x\n", speedup);
        return h.finish(1);
    }
    return h.finish();
}
