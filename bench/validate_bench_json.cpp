// Schema validator for BENCH_<name>.json files (bench_harness.h).
// Accepts schema_version 1 (the original) and 2 (adds the git_sha /
// threads / hw_config stamps the bench_compare regression gate keys
// on). CI runs this against every JSON a bench emits; any drift —
// missing key, wrong type, non-finite or out-of-range value — exits
// nonzero with a message naming the offending field.
//
// Usage: validate_bench_json FILE.json [FILE.json ...]

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/json.h"

using poseidon::telemetry::Json;

namespace {

int
fail(const std::string &path, const std::string &why)
{
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), why.c_str());
    return 1;
}

int
validate(const std::string &path)
{
    std::ifstream in(path);
    if (!in) return fail(path, "cannot open");
    std::ostringstream ss;
    ss << in.rdbuf();

    Json root;
    try {
        root = Json::parse(ss.str());
    } catch (const std::exception &e) {
        return fail(path, std::string("parse error: ") + e.what());
    }
    if (!root.is_object()) return fail(path, "root is not an object");

    for (const char *key : {"schema_version", "name", "git", "config",
                            "metrics", "cycles", "seconds",
                            "bandwidth_util"}) {
        if (!root.contains(key)) {
            return fail(path, std::string("missing key \"") + key +
                                  "\"");
        }
    }
    if (!root.at("schema_version").is_number() ||
        (root.at("schema_version").as_number() != 1.0 &&
         root.at("schema_version").as_number() != 2.0)) {
        return fail(path, "schema_version must be 1 or 2");
    }
    if (root.at("schema_version").as_number() == 2.0) {
        for (const char *key : {"git_sha", "threads", "hw_config"}) {
            if (!root.contains(key)) {
                return fail(path, std::string("schema v2: missing "
                                              "key \"") +
                                      key + "\"");
            }
        }
        if (!root.at("git_sha").is_string() ||
            root.at("git_sha").as_string().empty()) {
            return fail(path,
                        "git_sha must be a non-empty string");
        }
        const Json &th = root.at("threads");
        if (!th.is_number() || !std::isfinite(th.as_number()) ||
            th.as_number() < 1.0 ||
            th.as_number() !=
                static_cast<double>(
                    static_cast<long long>(th.as_number()))) {
            return fail(path, "threads must be an integer >= 1");
        }
        if (!root.at("hw_config").is_string() ||
            root.at("hw_config").as_string().empty()) {
            return fail(path,
                        "hw_config must be a non-empty string");
        }
    }
    if (root.contains("tsdb")) {
        // Optional schema-v2 stamp tying the document to a TSDB
        // dump written alongside it (bench_harness::tsdb_stamp).
        if (root.at("schema_version").as_number() != 2.0) {
            return fail(path, "tsdb stamp requires schema v2");
        }
        const Json &ts = root.at("tsdb");
        if (!ts.is_object()) {
            return fail(path, "tsdb must be an object");
        }
        for (const char *key : {"cadence_cycles", "series"}) {
            if (!ts.contains(key)) {
                return fail(path, std::string("tsdb: missing key \"") +
                                      key + "\"");
            }
        }
        const Json &cad = ts.at("cadence_cycles");
        if (!cad.is_number() || !std::isfinite(cad.as_number()) ||
            cad.as_number() <= 0.0) {
            return fail(path,
                        "tsdb.cadence_cycles must be a finite "
                        "number > 0");
        }
        const Json &ns = ts.at("series");
        if (!ns.is_number() || !std::isfinite(ns.as_number()) ||
            ns.as_number() < 1.0 ||
            ns.as_number() !=
                static_cast<double>(
                    static_cast<long long>(ns.as_number()))) {
            return fail(path, "tsdb.series must be an integer >= 1");
        }
    }
    if (!root.at("name").is_string() ||
        root.at("name").as_string().empty()) {
        return fail(path, "name must be a non-empty string");
    }
    if (!root.at("git").is_string()) {
        return fail(path, "git must be a string");
    }
    if (!root.at("config").is_object()) {
        return fail(path, "config must be an object");
    }
    if (!root.at("metrics").is_object()) {
        return fail(path, "metrics must be an object");
    }
    for (const char *key : {"cycles", "seconds"}) {
        const Json &v = root.at(key);
        if (!v.is_number() || !std::isfinite(v.as_number()) ||
            v.as_number() < 0.0) {
            return fail(path, std::string(key) +
                                  " must be a finite number >= 0");
        }
    }
    const Json &bw = root.at("bandwidth_util");
    if (!bw.is_number() || !std::isfinite(bw.as_number()) ||
        bw.as_number() < 0.0 || bw.as_number() > 1.0) {
        return fail(path, "bandwidth_util must be in [0, 1]");
    }
    for (const auto &kv : root.at("metrics").items()) {
        if (!kv.second.is_number() ||
            !std::isfinite(kv.second.as_number())) {
            return fail(path, "metric \"" + kv.first +
                                  "\" is not a finite number");
        }
    }
    std::printf("%s: ok (name=%s, %zu metrics)\n", path.c_str(),
                root.at("name").as_string().c_str(),
                root.at("metrics").items().size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: validate_bench_json FILE.json [...]\n");
        return 2;
    }
    int rc = 0;
    for (int i = 1; i < argc; ++i) rc |= validate(argv[i]);
    return rc;
}
