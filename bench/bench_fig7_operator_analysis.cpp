// Reproduces Fig. 7: operator core analysis — for each FHE basic
// operation, the share of work items handled by each key operator
// (MA, MM, NTT/INTT, Automorphism) plus data movement (HBM words).
// Shape (paper): HAdd is all MA; PMult all MM; MM is the most used
// operator in Rescale/Rotation/Keyswitch/CMult.

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "isa/compiler.h"

using namespace poseidon;
using namespace poseidon::isa;

int
main(int argc, char **argv)
{
    bench::Harness h("fig7_operator_analysis", argc, argv);
    OpShape s;
    s.n = u64(1) << 16;
    s.limbs = 44;
    s.K = 1;
    h.config("n", telemetry::Json(s.n));
    h.config("limbs", telemetry::Json(s.limbs));

    AsciiTable t("Fig. 7: operator composition of basic operations "
                 "(percent of work items incl. data movement)");
    t.header({"Operation", "MA", "MM", "NTT/INTT", "Auto",
              "data movement"});

    auto row = [&](const char *name, Trace &tr) {
        auto c = tr.totals();
        double ma = static_cast<double>(c[OpKind::MA]);
        double mm = static_cast<double>(c[OpKind::MM]);
        double ntt = static_cast<double>(c[OpKind::NTT] +
                                         c[OpKind::INTT]);
        double au = static_cast<double>(c[OpKind::AUTO]);
        double mem = static_cast<double>(c.hbm_words());
        double total = ma + mm + ntt + au + mem;
        auto pct = [&](double v) {
            return AsciiTable::num(100.0 * v / total, 1);
        };
        h.metric(std::string(name) + ".mm_share_pct",
                 100.0 * mm / total);
        h.metric(std::string(name) + ".mem_share_pct",
                 100.0 * mem / total);
        t.row({name, pct(ma), pct(mm), pct(ntt), pct(au), pct(mem)});
    };

    {
        Trace tr;
        emit_hadd(tr, s);
        row("HAdd", tr);
    }
    {
        Trace tr;
        emit_pmult(tr, s);
        row("PMult", tr);
    }
    {
        Trace tr;
        emit_cmult(tr, s);
        row("CMult", tr);
    }
    {
        Trace tr;
        emit_rescale(tr, s);
        row("Rescale", tr);
    }
    {
        Trace tr;
        emit_keyswitch(tr, s);
        row("Keyswitch", tr);
    }
    {
        Trace tr;
        emit_rotation(tr, s);
        row("Rotation", tr);
    }
    t.print();

    std::printf("\nCiphertext parameters: N=2^16, L=44 (the paper's "
                "Fig. 7 setting).\n");
    return h.finish();
}
