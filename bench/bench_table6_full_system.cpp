// Reproduces Tables V and VI: the four benchmark configurations and the
// full-system execution time comparison against the GPU and ASIC
// comparators (published numbers), with Poseidon times from the cycle
// model over the workload traces.

#include <cstdio>

#include "bench/bench_harness.h"

#include "baselines/published.h"
#include "common/table.h"
#include "hw/sim.h"
#include "workloads/workloads.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("table6_full_system", argc, argv);
    // ---- Table V: benchmark descriptions ----
    AsciiTable tv("Table V: evaluation benchmarks");
    tv.header({"Benchmark", "Description", "Bootstraps"});
    auto benches = workloads::paper_benchmarks();
    for (const auto &w : benches) {
        tv.row({w.name, w.description, std::to_string(w.bootstrapCount)});
    }
    tv.print();

    // ---- Table VI (left): comparator platforms ----
    AsciiTable ts("Table VI: platform characteristics");
    ts.header({"System", "Platform", "Memory (GB)", "BW (GB/s)",
               "Scratchpad (MB)", "Clock (GHz)"});
    for (const auto &s : baselines::comparator_specs()) {
        ts.row({s.name, s.platform, AsciiTable::num(s.memoryGB, 0),
                AsciiTable::num(s.offchipGBps, 0),
                AsciiTable::num(s.scratchpadMB, 1),
                AsciiTable::num(s.clockGHz, 2)});
    }
    ts.print();

    // ---- Table VI (right): full-system performance ----
    hw::PoseidonSim sim;
    AsciiTable tp(
        "Table VI: full-system performance (ms; LR is the per-iteration "
        "average)");
    tp.header({"System", "LR", "LSTM", "ResNet-20",
               "Packed Bootstrapping", "source"});
    for (const char *name : {"over100x", "F1+", "CraterLake", "BTS",
                             "ARK"}) {
        auto t = baselines::bench_times(name);
        tp.row({name, AsciiTable::num(t.lr, 2), AsciiTable::num(t.lstm, 1),
                AsciiTable::num(t.resnet20, 1),
                AsciiTable::num(t.bootstrapping, 2), "published"});
    }
    {
        auto t = baselines::bench_times("Poseidon");
        tp.row({"Poseidon (paper)", AsciiTable::num(t.lr, 2),
                AsciiTable::num(t.lstm, 1), AsciiTable::num(t.resnet20, 1),
                AsciiTable::num(t.bootstrapping, 2), "published"});
    }
    {
        std::vector<double> ours;
        for (const auto &w : benches) {
            auto r = sim.run(w.trace);
            h.record_sim(w.name, r, sim.config());
            ours.push_back(r.seconds * 1e3 /
                           static_cast<double>(w.reportDivisor));
            h.metric(w.name + ".report_ms", ours.back());
        }
        tp.row({"Poseidon (this model)", AsciiTable::num(ours[0], 2),
                AsciiTable::num(ours[1], 1), AsciiTable::num(ours[2], 1),
                AsciiTable::num(ours[3], 2), "simulated"});

        auto gpu = baselines::bench_times("over100x");
        auto f1 = baselines::bench_times("F1+");
        std::printf("\nHeadline claims: model speedup over the GPU on LR "
                    "= %.1fx (paper: 10.6x);\nover the slowest ASIC (F1+) "
                    "= %.1fx (paper: 8.7x).\n",
                    gpu.lr / ours[0], f1.lr / ours[0]);
        h.metric("speedup_vs_gpu_lr", gpu.lr / ours[0]);
        h.metric("speedup_vs_f1p_lr", f1.lr / ours[0]);
    }
    tp.print();
    return h.finish();
}
