// Reproduces Table I: the operator-reuse matrix — which of the five
// Poseidon operators (MA, MM, NTT/INTT, Automorphism, SBT) each FHE
// basic operation decomposes into. Derived from the actual compiler
// lowering, not hardcoded.

#include <cstdio>

#include "bench/bench_harness.h"
#include "common/table.h"
#include "isa/compiler.h"

using namespace poseidon;
using namespace poseidon::isa;

int
main(int argc, char **argv)
{
    bench::Harness h("table1_operator_reuse", argc, argv);
    OpShape s;
    s.n = u64(1) << 16;
    s.limbs = 44;
    s.K = 1;
    h.config("n", telemetry::Json(s.n));
    h.config("limbs", telemetry::Json(s.limbs));

    struct Row
    {
        const char *name;
        Trace trace;
        BasicOp tag;
    };
    std::vector<Row> rows;

    auto add = [&](const char *name, BasicOp tag, auto emitter) {
        Row r;
        r.name = name;
        r.tag = tag;
        emitter(r.trace);
        rows.push_back(std::move(r));
    };

    add("ModUp", BasicOp::ModUp, [&](Trace &t) { emit_modup(t, s); });
    add("ModDown", BasicOp::ModDown,
        [&](Trace &t) { emit_moddown(t, s); });
    add("HAdd", BasicOp::HAdd, [&](Trace &t) { emit_hadd(t, s); });
    add("PMult", BasicOp::PMult, [&](Trace &t) { emit_pmult(t, s); });
    add("CMult", BasicOp::CMult, [&](Trace &t) { emit_cmult(t, s); });
    add("Rotation", BasicOp::Rotation,
        [&](Trace &t) { emit_rotation(t, s); });
    add("Keyswitch", BasicOp::Keyswitch,
        [&](Trace &t) { emit_keyswitch(t, s); });
    add("Rescale", BasicOp::Rescale,
        [&](Trace &t) { emit_rescale(t, s); });
    add("Bootstrapping", BasicOp::Bootstrapping, [&](Trace &t) {
        BootstrapShape bs;
        bs.base = s;
        bs.base.limbs = 44;
        emit_bootstrap(t, bs);
    });

    AsciiTable table(
        "Table I: operator reuse of FHE basic operations (from the "
        "compiler lowering)");
    table.header({"Operation", "MA", "MM", "NTT/INTT", "Automorphism",
                  "SBT"});
    auto mark = [](bool b) { return std::string(b ? "yes" : "-"); };
    for (const auto &r : rows) {
        bool ntt = r.trace.uses(r.tag, OpKind::NTT) ||
                   r.trace.uses(r.tag, OpKind::INTT);
        int used = (r.trace.uses(r.tag, OpKind::MA) ? 1 : 0) +
                   (r.trace.uses(r.tag, OpKind::MM) ? 1 : 0) +
                   (ntt ? 1 : 0) +
                   (r.trace.uses(r.tag, OpKind::AUTO) ? 1 : 0) +
                   (r.trace.uses(r.tag, OpKind::SBT) ? 1 : 0);
        h.metric(std::string(r.name) + ".operators_used", used);
        table.row({r.name, mark(r.trace.uses(r.tag, OpKind::MA)),
                   mark(r.trace.uses(r.tag, OpKind::MM)), mark(ntt),
                   mark(r.trace.uses(r.tag, OpKind::AUTO)),
                   mark(r.trace.uses(r.tag, OpKind::SBT))});
    }
    table.print();

    std::printf("\nShape: N=2^16, 44 ciphertext primes, 1 special "
                "prime.\n");
    return h.finish();
}
