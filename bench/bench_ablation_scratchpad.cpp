// Ablation (extension): scratchpad capacity. The paper argues 8.6 MB
// suffices because the pipeline streams limb-granular tiles; this
// sweep shows when that stops being true — smaller scratchpads respill
// working tiles through HBM and inflate memory time, while capacity
// beyond the tile working set buys nothing.

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/sim.h"
#include "workloads/workloads.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("ablation_scratchpad", argc, argv);
    auto boot = workloads::make_packed_bootstrapping(
        workloads::paper_shape());
    isa::Trace cmult;
    {
        isa::OpShape s = workloads::paper_shape();
        isa::emit_cmult(cmult, s);
    }

    AsciiTable t("Ablation: scratchpad capacity (N=2^16 tiles need "
                 "24 * N * 4B = 6.3 MB)");
    t.header({"scratchpad (MB)", "CMult (ms)", "Packed Bootstrapping "
              "(ms)", "boot BW util (%)"});

    for (double mb : {1.0, 2.0, 4.0, 8.6, 16.0, 32.0}) {
        hw::HwConfig cfg;
        cfg.scratchpadMB = mb;
        hw::PoseidonSim sim(cfg);
        auto rc = sim.run(cmult);
        auto rb = sim.run(boot.trace);
        char pre[32];
        std::snprintf(pre, sizeof(pre), "mb%.1f", mb);
        h.metric(std::string(pre) + ".cmult_ms", rc.seconds * 1e3);
        h.metric(std::string(pre) + ".boot_ms", rb.seconds * 1e3);
        h.metric(std::string(pre) + ".boot_bandwidth_util",
                 rb.bandwidth_utilization(cfg));
        t.row({AsciiTable::num(mb, 1),
               AsciiTable::num(rc.seconds * 1e3, 3),
               AsciiTable::num(rb.seconds * 1e3, 1),
               AsciiTable::num(100.0 * rb.bandwidth_utilization(cfg),
                               1)});
    }
    t.print();

    std::printf("\nReading the table: below ~6.3 MB the tile working "
                "set respills and time climbs; above it, extra\ncapacity "
                "is idle — consistent with the paper choosing 8.6 MB "
                "instead of the ASICs' 256-512 MB.\n");
    return h.finish();
}
