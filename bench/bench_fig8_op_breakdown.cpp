// Reproduces Fig. 8: per-benchmark execution time broken down by FHE
// basic operation. Shape (paper): Keyswitch-bearing operations
// (CMult, Rotation) and Bootstrapping occupy the largest share.

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/sim.h"
#include "workloads/workloads.h"

using namespace poseidon;
using isa::BasicOp;

int
main(int argc, char **argv)
{
    bench::Harness h("fig8_op_breakdown", argc, argv);
    hw::PoseidonSim sim;

    const BasicOp cols[] = {BasicOp::HAdd, BasicOp::PMult,
                            BasicOp::CMult, BasicOp::Rotation,
                            BasicOp::Rescale, BasicOp::Bootstrapping};

    AsciiTable t("Fig. 8: basic-operation time breakdown per benchmark "
                 "(percent of execution time)");
    std::vector<std::string> hdr = {"Benchmark", "total (ms)"};
    for (BasicOp b : cols) hdr.push_back(isa::to_string(b));
    t.header(hdr);

    for (const auto &w : workloads::paper_benchmarks()) {
        auto r = sim.run(w.trace);
        h.record_sim(w.name, r, sim.config());
        std::vector<std::string> row = {
            w.name, AsciiTable::num(r.seconds * 1e3, 1)};
        for (BasicOp b : cols) {
            auto it = r.tagSeconds.find(b);
            double sec = it == r.tagSeconds.end() ? 0.0 : it->second;
            h.metric(w.name + "." + isa::to_string(b) + "_pct",
                     100.0 * sec / r.seconds);
            row.push_back(AsciiTable::num(100.0 * sec / r.seconds, 1));
        }
        t.row(row);
    }
    t.print();

    std::printf("\nShape check (paper): Keyswitch-heavy operations "
                "(CMult, Rotation) and Bootstrapping dominate.\n");
    return h.finish();
}
