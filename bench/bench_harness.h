#ifndef POSEIDON_BENCH_BENCH_HARNESS_H_
#define POSEIDON_BENCH_BENCH_HARNESS_H_

/**
 * @file
 * Shared harness for the paper-reproduction benchmarks.
 *
 * Every bench binary keeps printing its ASCII tables to stdout —
 * that is the human-facing artifact — and additionally emits a
 * machine-readable summary `BENCH_<name>.json` so CI and scripts can
 * track results across commits without scraping tables. Schema
 * (version 2):
 *
 *   {
 *     "schema_version": 2,
 *     "name":    "<bench name>",
 *     "git":     "<git describe --always --dirty, or 'unknown'>",
 *     "git_sha": "<git rev-parse HEAD, or 'unknown'>",
 *     "threads": <POSEIDON_THREADS-resolved worker count>,
 *     "hw_config": "<modeled machine, default 'poseidon_u280'>",
 *     "config":  { ... bench-declared knobs ... },
 *     "metrics": { ... bench-declared scalars ... },
 *     "cycles":  <total modeled cycles across record_sim() calls>,
 *     "seconds": <total modeled seconds>,
 *     "bandwidth_util": <HBM bytes / (seconds * peak), 0 if no sim>
 *   }
 *
 * The git_sha / threads / hw_config stamps exist for the regression
 * gate: tools/bench_compare refuses to diff documents whose
 * hw_config or threads disagree, and git_sha ties a baseline to the
 * commit that produced it. Version 1 (no stamps) is still accepted by
 * validate_bench_json.
 *
 * The JSON lands in $POSEIDON_BENCH_DIR (default: the working
 * directory); `--no-json` suppresses it entirely.
 */

#include <string>
#include <vector>

#include "hw/sim.h"
#include "telemetry/json.h"

namespace poseidon::bench {

/// `git describe --always --dirty` of the working tree, or "unknown"
/// when git (or the repo) is unavailable.
std::string git_describe();

/// `git rev-parse HEAD`, or "unknown".
std::string git_sha();

class Harness
{
  public:
    /// `name` becomes the JSON's "name" and its filename
    /// (BENCH_<name>.json). argv is scanned for --no-json.
    Harness(std::string name, int argc = 0, char **argv = nullptr);

    /// Declare a configuration knob (shape, sweep bounds, ...).
    void config(const std::string &key, telemetry::Json v);

    /// Declare a result scalar.
    void metric(const std::string &key, double v);

    /// Name the modeled machine for the hw_config stamp (benches that
    /// sweep non-default configs should call this; the default is
    /// "poseidon_u280").
    void set_hw_config_name(std::string name);

    /// Stamp the TSDB provenance of a serving bench: the simulated
    /// sample cadence and how many series the dump carries. Emitted
    /// as the optional schema-v2 `"tsdb"` object,
    /// `{"cadence_cycles": <c>, "series": <n>}`, which
    /// validate_bench_json checks when present.
    void tsdb_stamp(double cadenceCycles, std::size_t seriesCount);

    /// Record one simulator run: emits `<prefix>.cycles`,
    /// `<prefix>.seconds`, `<prefix>.bandwidth_util` metrics and
    /// accumulates the run into the top-level totals.
    void record_sim(const std::string &prefix, const hw::SimResult &r,
                    const hw::HwConfig &cfg);

    /// Write BENCH_<name>.json (unless --no-json) and pass `rc`
    /// through, so `return h.finish();` ends main(). Reports and
    /// returns 1 if the file cannot be written.
    int finish(int rc = 0);

    /// Where finish() will write (resolved at construction).
    const std::string &output_path() const { return outPath_; }

  private:
    std::string name_;
    std::string outPath_;
    std::string hwConfigName_ = "poseidon_u280";
    bool writeJson_ = true;
    bool finished_ = false;
    telemetry::Json config_ = telemetry::Json::object();
    telemetry::Json metrics_ = telemetry::Json::object();
    bool hasTsdb_ = false;
    telemetry::Json tsdb_ = telemetry::Json::object();
    double totalCycles_ = 0.0;
    double totalSeconds_ = 0.0;
    double totalBytes_ = 0.0;
    double peakGBps_ = 0.0;
};

} // namespace poseidon::bench

#endif // POSEIDON_BENCH_BENCH_HARNESS_H_
