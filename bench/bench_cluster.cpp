// Cluster-scale closed-loop benchmark: sweeps fleet width (simulated
// hosts behind the two-level router) against placement policy and
// reports simulated throughput, p99 latency, key-cache locality hit
// rate, fairness, and the modeled key-transfer traffic.
//
// Every number is on the modeled 300 MHz accelerator clock, so
// results are bit-identical across host machines and POSEIDON_THREADS
// settings — which the in-binary byte-identity gate asserts directly
// by re-running a chaos-bearing cell at 1 and 4 host threads and
// comparing the cluster journal and merged TSDB dumps byte for byte.
//
// In-binary gates (exit 1 on violation):
//   * conservation: every admitted job reaches exactly one verdict
//   * locality beats random placement on worst-tenant p99 latency
//   * locality hit rate on the widest sweep cell stays above floor
//   * per-tenant fairness (Jain index) stays above floor
//   * journal + TSDB dumps byte-identical at POSEIDON_THREADS 1 vs 4
//
// Flags: --smoke (small sweep for CI), --hosts=<n> (single-cell
// exploration), --placement=<locality|round-robin|random|least-loaded>,
// --autoscale (gauge-driven host scaling in every cell).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "cluster/cluster.h"
#include "common/parallel.h"
#include "common/table.h"
#include "isa/compiler.h"

using namespace poseidon;

namespace {

/// One client request: a keyswitch-bearing op mix at a medium shape.
isa::Trace
request_trace(unsigned sizeClass)
{
    isa::OpShape s;
    s.n = u64(1) << 13;
    s.limbs = 8 + 4 * sizeClass;
    s.dnum = 2;
    s.K = 4 + 2 * sizeClass;
    isa::Trace t;
    isa::emit_cmult(t, s);
    isa::emit_rotation(t, s);
    return t;
}

/// Modeled per-tenant evaluation-key footprint: one paper-scale
/// keyswitch key set (N = 2^16, 44 limbs, dnum 3) plus eight rotation
/// keys of the same shape.
double
tenant_key_bytes()
{
    return hw::eval_key_bytes(65536.0, 44.0, 3.0, 1.0) * 8.0;
}

struct CellSpec
{
    std::size_t hosts = 8;
    std::size_t clients = 16; ///< one tenant per client
    u64 perClient = 500;
    cluster::Placement placement = cluster::Placement::Locality;
    bool autoscale = false;
    bool telemetry = false; ///< cluster+host journals and TSDBs
    std::string hostChaos;
};

struct CellResult
{
    cluster::ClusterStats stats;
    double throughput = 0.0; ///< completed jobs per simulated second
    double worstP99Us = 0.0; ///< worst tenant p99, simulated us
    double jain = 0.0;       ///< fairness over per-tenant p99
    std::string journalJsonl;
    std::string tsdbJsonl;
    std::size_t tsdbSeries = 0;
};

cluster::ClusterConfig
cell_config(const CellSpec &spec)
{
    cluster::ClusterConfig cfg;
    cfg.hosts = spec.hosts;
    cfg.placement = spec.placement;
    cfg.host.cards = 4;
    cfg.defaultKeyBytes = tenant_key_bytes();
    // Size each host's key cache to ~4 tenants, so placement policy
    // decides whether key uploads keep happening: locality pins a
    // tenant to its key host, random keeps missing once the tenant
    // count per host outgrows the cache.
    cfg.keyCacheShare =
        4.0 * cfg.defaultKeyBytes /
        (static_cast<double>(cfg.host.cards) *
         cfg.host.card.hbm_capacity_bytes());
    cfg.hostChaos = spec.hostChaos;
    cfg.journal = spec.telemetry;
    cfg.host.journal = spec.telemetry;
    cfg.host.tsdbCadenceCycles = spec.telemetry ? 1e5 : 0.0;
    cfg.exportTelemetry = false;
    if (spec.autoscale) {
        cfg.autoscale.enabled = true;
        cfg.autoscale.minHosts = std::max<std::size_t>(1, spec.hosts / 2);
        cfg.autoscale.scaleUpPressure = 0.6;
        cfg.autoscale.scaleDownPressure = 0.05;
        cfg.autoscale.windowCycles = 1e6;
        cfg.autoscale.cooldownCycles = 5e5;
        cfg.autoscale.spinUpCycles = 1e6;
    }
    return cfg;
}

/// Jain fairness index over a positive sample: (sum x)^2 / (n sum x^2),
/// 1.0 = perfectly even, 1/n = one tenant takes everything.
double
jain_index(const std::vector<double> &xs)
{
    if (xs.empty()) return 1.0;
    double s = 0.0;
    double s2 = 0.0;
    for (double x : xs) {
        s += x;
        s2 += x * x;
    }
    if (s2 <= 0.0) return 1.0;
    return s * s / (static_cast<double>(xs.size()) * s2);
}

CellResult
run_cell(const CellSpec &spec)
{
    cluster::ClusterRouter router(cell_config(spec));

    struct Client
    {
        std::string tenant;
        unsigned sizeClass = 0;
        u64 remaining = 0;
    };
    std::vector<Client> cs(spec.clients);
    for (std::size_t i = 0; i < spec.clients; ++i) {
        cs[i].tenant = "tenant" + std::to_string(i);
        cs[i].sizeClass = static_cast<unsigned>(i % 3);
        cs[i].remaining = spec.perClient;
    }

    std::function<void(std::size_t, double)> feed =
        [&](std::size_t i, double arrival) {
            Client &c = cs[i];
            if (c.remaining == 0) return;
            --c.remaining;
            serve::JobSpec s;
            s.tenant = c.tenant;
            s.name = "client" + std::to_string(i);
            s.trace = request_trace(c.sizeClass);
            s.arrivalCycle = arrival;
            s.callback = [&feed, i](const serve::JobResult &r) {
                feed(i, r.finishCycle);
            };
            router.submit(std::move(s));
        };
    for (std::size_t i = 0; i < spec.clients; ++i) feed(i, 0.0);
    router.drain();

    CellResult out;
    out.stats = router.stats();
    if (out.stats.horizonCycles > 0.0) {
        out.throughput = static_cast<double>(out.stats.completed) /
                         (out.stats.horizonCycles /
                          (out.stats.clockGHz * 1e9));
    }
    double toUs = 1e6 / (out.stats.clockGHz * 1e9);
    std::vector<double> p99s;
    for (const auto &[tenant, t] : out.stats.tenants) {
        (void)tenant;
        if (t.completed == 0) continue;
        p99s.push_back(t.p99LatencyCycles);
        out.worstP99Us =
            std::max(out.worstP99Us, t.p99LatencyCycles * toUs);
    }
    out.jain = jain_index(p99s);
    if (spec.telemetry) {
        out.journalJsonl = router.journal().to_jsonl();
        telemetry::Tsdb merged = router.cluster_tsdb();
        out.tsdbJsonl = merged.to_jsonl();
        out.tsdbSeries = merged.series_count();
    }
    return out;
}

std::string
fmt(double v, const char *suffix = "")
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
    return buf;
}

void
write_artifact(const bench::Harness &h, const char *name,
               const std::string &text)
{
    if (text.empty()) return;
    const std::string &out = h.output_path();
    std::size_t slash = out.find_last_of('/');
    std::string path =
        (slash == std::string::npos ? "" : out.substr(0, slash + 1)) +
        name;
    std::ofstream f(path, std::ios::binary);
    if (f) f << text;
    if (!f) {
        std::fprintf(stderr, "bench_cluster: cannot write %s\n",
                     path.c_str());
    } else {
        std::printf("[bench] wrote %s\n", path.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool autoscale = false;
    std::size_t onlyHosts = 0;
    cluster::Placement onlyPlacement = cluster::Placement::Locality;
    bool placementForced = false;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(a, "--autoscale") == 0) {
            autoscale = true;
        } else if (std::strncmp(a, "--hosts=", 8) == 0) {
            onlyHosts = static_cast<std::size_t>(std::atoi(a + 8));
        } else if (std::strncmp(a, "--placement=", 12) == 0) {
            if (!cluster::placement_from_string(a + 12,
                                                onlyPlacement)) {
                std::fprintf(stderr,
                             "bench_cluster: unknown placement "
                             "\"%s\"\n",
                             a + 12);
                return 1;
            }
            placementForced = true;
        }
    }

    bench::Harness h("cluster", argc, argv);
    std::vector<std::size_t> hostSweep =
        smoke ? std::vector<std::size_t>{2, 4}
              : std::vector<std::size_t>{8, 16, 32};
    if (onlyHosts > 0) hostSweep = {onlyHosts};
    // Deep enough per client that the one legitimate key upload a
    // locality-placed tenant pays falls below its p99 (> 100 requests
    // per tenant), so the policy gate compares steady-state tails.
    const u64 perClient = smoke ? 120 : 500;
    std::vector<cluster::Placement> placements = {
        cluster::Placement::Locality, cluster::Placement::Random};
    if (placementForced) placements = {onlyPlacement};
    // Comparative gates need both policies over the standard sweep.
    const bool gated = !placementForced && onlyHosts == 0;

    h.config("hosts", [&] {
        telemetry::Json a = telemetry::Json::array();
        for (std::size_t n : hostSweep)
            a.push_back(telemetry::Json(static_cast<u64>(n)));
        return a;
    }());
    h.config("requests_per_client",
             telemetry::Json(perClient));
    h.config("cards_per_host", telemetry::Json(4));
    h.config("tenant_key_bytes", telemetry::Json(tenant_key_bytes()));
    h.config("autoscale", telemetry::Json(autoscale));

    AsciiTable table("Cluster closed-loop: placement policy x fleet "
                     "width (simulated time)");
    table.header({"placement", "hosts", "jobs", "throughput (jobs/s)",
                  "worst p99 (us)", "locality hits", "key uploads",
                  "jain(p99)"});

    u64 totalJobs = 0;
    bool conserved = true;
    // [placement][host index] -> worst p99 us.
    std::map<cluster::Placement, std::vector<double>> p99ByPolicy;
    double widestLocalityHitRate = -1.0;
    double widestJain = -1.0;
    for (cluster::Placement p : placements) {
        for (std::size_t hi = 0; hi < hostSweep.size(); ++hi) {
            CellSpec spec;
            spec.hosts = hostSweep[hi];
            spec.clients = 2 * hostSweep[hi];
            spec.perClient = perClient;
            spec.placement = p;
            spec.autoscale = autoscale;
            CellResult r = run_cell(spec);
            totalJobs += r.stats.submitted;
            conserved = conserved && r.stats.conserved();
            p99ByPolicy[p].push_back(r.worstP99Us);
            std::string key = std::string(cluster::to_string(p)) +
                              ".h" + std::to_string(spec.hosts);
            h.metric(key + ".throughput_jobs_per_sec", r.throughput);
            h.metric(key + ".worst_p99_us", r.worstP99Us);
            h.metric(key + ".locality_hit_rate",
                     r.stats.locality_hit_rate());
            h.metric(key + ".key_transfers",
                     static_cast<double>(r.stats.keyTransfers));
            h.metric(key + ".key_transfer_bytes",
                     r.stats.keyTransferBytes);
            h.metric(key + ".jain_p99", r.jain);
            if (autoscale) {
                h.metric(key + ".scale_ups",
                         static_cast<double>(r.stats.scaleUps));
                h.metric(key + ".scale_downs",
                         static_cast<double>(r.stats.scaleDowns));
            }
            table.row({cluster::to_string(p),
                       std::to_string(spec.hosts),
                       std::to_string(r.stats.completed),
                       fmt(r.throughput), fmt(r.worstP99Us),
                       fmt(100.0 * r.stats.locality_hit_rate(), "%"),
                       std::to_string(r.stats.keyTransfers),
                       fmt(r.jain)});
            if (p == cluster::Placement::Locality &&
                hi + 1 == hostSweep.size()) {
                widestLocalityHitRate = r.stats.locality_hit_rate();
                widestJain = r.jain;
            }
        }
    }
    table.print();
    h.metric("total_jobs", static_cast<double>(totalJobs));

    // Byte-identity cell: host death + autoscale + full telemetry,
    // re-run at 1 and 4 host threads; the dumps must match byte for
    // byte (the cluster determinism contract, DESIGN.md §16).
    CellSpec idSpec;
    idSpec.hosts = 4;
    idSpec.clients = 8;
    idSpec.perClient = 25;
    idSpec.placement = cluster::Placement::Locality;
    idSpec.telemetry = true;
    idSpec.hostChaos = "HostDeath{host=1, cycle=2e6}";
    parallel::set_num_threads(1);
    CellResult serial = run_cell(idSpec);
    parallel::set_num_threads(4);
    CellResult threaded = run_cell(idSpec);
    parallel::set_num_threads(0);
    totalJobs += serial.stats.submitted + threaded.stats.submitted;
    conserved = conserved && serial.stats.conserved() &&
                threaded.stats.conserved();
    bool byteIdentical =
        !serial.journalJsonl.empty() &&
        serial.journalJsonl == threaded.journalJsonl &&
        serial.tsdbJsonl == threaded.tsdbJsonl;
    h.metric("identity.jobs",
             static_cast<double>(serial.stats.submitted));
    h.metric("identity.reroutes",
             static_cast<double>(serial.stats.rerouted));
    h.metric("identity.byte_identical", byteIdentical ? 1.0 : 0.0);
    h.tsdb_stamp(1e5, serial.tsdbSeries);
    write_artifact(h, "JOURNAL_cluster.jsonl", serial.journalJsonl);
    write_artifact(h, "TSDB_cluster.jsonl", serial.tsdbJsonl);

    int rc = 0;
    if (!conserved) {
        std::fprintf(stderr, "FAIL: cluster journal conservation "
                             "violated (submitted != resolved)\n");
        rc = 1;
    }
    if (!byteIdentical) {
        std::fprintf(stderr,
                     "FAIL: cluster journal/TSDB dumps differ "
                     "between POSEIDON_THREADS 1 and 4\n");
        rc = 1;
    }
    if (gated) {
        double locP99 =
            p99ByPolicy[cluster::Placement::Locality].back();
        double rndP99 = p99ByPolicy[cluster::Placement::Random].back();
        h.metric("gate.locality_p99_us", locP99);
        h.metric("gate.random_p99_us", rndP99);
        std::printf("\nWidest cell p99: locality %.1f us vs random "
                    "%.1f us; locality hit rate %.1f%%, jain %.2f\n",
                    locP99, rndP99, 100.0 * widestLocalityHitRate,
                    widestJain);
        if (locP99 >= rndP99) {
            std::fprintf(stderr,
                         "FAIL: locality placement p99 %.1f us not "
                         "below random %.1f us\n",
                         locP99, rndP99);
            rc = 1;
        }
        if (widestLocalityHitRate < 0.7) {
            std::fprintf(stderr,
                         "FAIL: locality hit rate %.2f below 0.7\n",
                         widestLocalityHitRate);
            rc = 1;
        }
        if (widestJain < 0.6) {
            std::fprintf(stderr,
                         "FAIL: fairness (jain over tenant p99) "
                         "%.2f below 0.6\n",
                         widestJain);
            rc = 1;
        }
        if (!smoke && totalJobs < 100000) {
            std::fprintf(stderr,
                         "FAIL: sweep ran %llu jobs, below the 1e5 "
                         "floor\n",
                         static_cast<unsigned long long>(totalJobs));
            rc = 1;
        }
    }
    return h.finish(rc);
}
