// Google-benchmark microbenchmarks of the software kernels backing the
// five Poseidon operators: modular arithmetic (MA/MM/SBT), the
// reference and fused NTT, the automorphism implementations, and the
// RNS base conversion at the heart of keyswitching.

#include <benchmark/benchmark.h>

#include "bench/bench_harness.h"
#include "common/parallel.h"
#include "common/prng.h"
#include "ntt/fusion.h"
#include "poly/automorphism.h"
#include "poly/hfauto.h"
#include "poly/poly.h"
#include "rns/conv.h"
#include "rns/primes.h"

namespace poseidon {
namespace {

constexpr u64 kPrime31 = 2146959361; // 31-bit NTT prime (q = 1 mod 2^17)

void
BM_MulMod128(benchmark::State &state)
{
    Prng prng(1);
    u64 a = prng.uniform(kPrime31), b = prng.uniform(kPrime31);
    for (auto _ : state) {
        a = mul_mod(a ^ b, b | 1, kPrime31);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulMod128);

void
BM_BarrettMul(benchmark::State &state)
{
    Barrett64 br(kPrime31);
    Prng prng(2);
    u64 a = prng.uniform(kPrime31), b = prng.uniform(kPrime31);
    for (auto _ : state) {
        a = br.mul(a ^ b, b | 1);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_BarrettMul);

void
BM_ShoupMul(benchmark::State &state)
{
    Prng prng(3);
    ShoupMul m(prng.uniform(kPrime31), kPrime31);
    u64 a = prng.uniform(kPrime31);
    for (auto _ : state) {
        a = m.mul(a | 1);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ShoupMul);

void
BM_NttForward(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    NttTable table(n, q);
    Prng prng(4);
    std::vector<u64> a(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto _ : state) {
        table.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttForward)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void
BM_NttFusedForward(benchmark::State &state)
{
    std::size_t n = 1 << 14;
    unsigned k = static_cast<unsigned>(state.range(0));
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    NttTable table(n, q);
    NttFused fused(table, k);
    Prng prng(5);
    std::vector<u64> a(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto _ : state) {
        fused.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttFusedForward)->DenseRange(1, 6);

void
BM_AutomorphismReference(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    Prng prng(6);
    std::vector<u64> a(n), out(n);
    for (auto &v : a) v = prng.uniform(q);
    u64 g = galois_element_for_step(n, 3);
    for (auto _ : state) {
        automorphism_coeff_limb(a.data(), out.data(), n, g, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AutomorphismReference)->Arg(1 << 14)->Arg(1 << 16);

void
BM_HFAuto(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    HFAuto hf(n, 512);
    Prng prng(7);
    std::vector<u64> a(n), out(n);
    for (auto &v : a) v = prng.uniform(q);
    u64 g = galois_element_for_step(n, 3);
    for (auto _ : state) {
        hf.apply_limb(a.data(), out.data(), g, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HFAuto)->Arg(1 << 14)->Arg(1 << 16);

void
BM_RnsConv(benchmark::State &state)
{
    std::size_t n = 1 << 12;
    std::size_t limbs = static_cast<std::size_t>(state.range(0));
    auto primes = generate_ntt_primes(n, 31, limbs + 1);
    RnsBasis src(std::vector<u64>(primes.begin(), primes.end() - 1));
    RnsBasis dst(std::vector<u64>{primes.back()});
    RnsConv conv(src, dst);
    Prng prng(8);
    std::vector<std::vector<u64>> data(limbs, std::vector<u64>(n));
    for (std::size_t i = 0; i < limbs; ++i) {
        for (auto &v : data[i]) v = prng.uniform(src.modulus(i));
    }
    std::vector<u64> out(n);
    std::vector<const u64*> in(limbs);
    for (std::size_t i = 0; i < limbs; ++i) in[i] = data[i].data();
    std::vector<u64*> op{out.data()};
    for (auto _ : state) {
        conv.convert(in, op, n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * limbs);
}
BENCHMARK(BM_RnsConv)->Arg(4)->Arg(8)->Arg(16);

void
BM_NttBatchParallel(benchmark::State &state)
{
    std::size_t n = 1 << 14;
    std::size_t limbs = 12;
    std::size_t threads = static_cast<std::size_t>(state.range(0));
    auto primes = generate_ntt_primes(n, 45, limbs);
    auto ring = std::make_shared<const RingContext>(n, primes);
    Sampler sampler(9);
    std::vector<i64> coeffs = sampler.gaussian(n, 1000.0);
    RnsPoly poly = RnsPoly::ct(ring, limbs, Domain::Coeff);
    poly.assign_signed(coeffs);

    parallel::set_num_threads(threads);
    for (auto _ : state) {
        RnsPoly p = poly;
        p.to_eval();
        benchmark::DoNotOptimize(p.limb(0));
    }
    parallel::set_num_threads(0);
    state.SetItemsProcessed(state.iterations() * n * limbs);
}
BENCHMARK(BM_NttBatchParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

/// Console output as usual, plus every timing into the bench harness
/// (metric `<benchmark>.ns_per_iter`) so the run lands in
/// BENCH_micro_kernels.json like the table benches.
class HarnessReporter : public benchmark::ConsoleReporter
{
  public:
    explicit HarnessReporter(bench::Harness &h) : h_(h) {}

    void ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.error_occurred) continue;
            h_.metric(run.benchmark_name() + ".ns_per_iter",
                      run.GetAdjustedRealTime());
        }
        ConsoleReporter::ReportRuns(reports);
    }

  private:
    bench::Harness &h_;
};

} // namespace
} // namespace poseidon

int
main(int argc, char **argv)
{
    poseidon::bench::Harness h("micro_kernels", argc, argv);
    // Strip the harness's flag before google-benchmark sees it.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--no-json") argv[kept++] = argv[i];
    }
    argc = kept;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    poseidon::HarnessReporter reporter(h);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return h.finish();
}
