// Google-benchmark microbenchmarks of the software kernels backing the
// five Poseidon operators: modular arithmetic (MA/MM/SBT), the
// reference and fused NTT, the automorphism implementations, and the
// RNS base conversion at the heart of keyswitching.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>

#include "bench/bench_harness.h"
#include "common/parallel.h"
#include "common/prng.h"
#include "kernels/kernels.h"
#include "ntt/fusion.h"
#include "poly/automorphism.h"
#include "poly/hfauto.h"
#include "poly/poly.h"
#include "rns/conv.h"
#include "rns/primes.h"

namespace poseidon {
namespace {

constexpr u64 kPrime31 = 2146959361; // 31-bit NTT prime (q = 1 mod 2^17)

void
BM_MulMod128(benchmark::State &state)
{
    Prng prng(1);
    u64 a = prng.uniform(kPrime31), b = prng.uniform(kPrime31);
    for (auto _ : state) {
        a = mul_mod(a ^ b, b | 1, kPrime31);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulMod128);

void
BM_BarrettMul(benchmark::State &state)
{
    Barrett64 br(kPrime31);
    Prng prng(2);
    u64 a = prng.uniform(kPrime31), b = prng.uniform(kPrime31);
    for (auto _ : state) {
        a = br.mul(a ^ b, b | 1);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_BarrettMul);

void
BM_ShoupMul(benchmark::State &state)
{
    Prng prng(3);
    ShoupMul m(prng.uniform(kPrime31), kPrime31);
    u64 a = prng.uniform(kPrime31);
    for (auto _ : state) {
        a = m.mul(a | 1);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ShoupMul);

// ---- Dispatched SIMD kernel layer (src/kernels). ----
//
// Each benchmark runs once per *supported* level so a single run on
// an AVX-512 host produces the scalar/avx2/avx512 comparison rows.

void
supported_levels(benchmark::internal::Benchmark *b)
{
    for (int l = 0; l <= 2; ++l) {
        auto lvl = static_cast<kernels::SimdLevel>(l);
        if (kernels::level_supported(lvl)) b->Arg(l);
    }
}

void
BM_KernelMulModN(benchmark::State &state)
{
    auto lvl = static_cast<kernels::SimdLevel>(state.range(0));
    const kernels::KernelTable &t = kernels::table(lvl);
    std::size_t n = 1 << 14;
    u64 q = generate_ntt_primes(n, 50, 1)[0];
    Prng prng(10);
    std::vector<u64> a(n), b(n), out(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto &v : b) v = prng.uniform(q);
    for (auto _ : state) {
        t.mul_mod_n(out.data(), a.data(), b.data(), n, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(kernels::level_name(lvl));
}
BENCHMARK(BM_KernelMulModN)->Apply(supported_levels);

void
BM_KernelMulModAccLazy(benchmark::State &state)
{
    auto lvl = static_cast<kernels::SimdLevel>(state.range(0));
    const kernels::KernelTable &t = kernels::table(lvl);
    std::size_t n = 1 << 14;
    u64 q = generate_ntt_primes(n, 50, 1)[0];
    Prng prng(11);
    std::vector<u64> a(n), b(n), acc(n, 0);
    for (auto &v : a) v = prng.uniform(q);
    for (auto &v : b) v = prng.uniform(q);
    for (auto _ : state) {
        t.mul_mod_acc_lazy_n(acc.data(), a.data(), b.data(), n, q);
        t.normalize_n(acc.data(), n, q);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(kernels::level_name(lvl));
}
BENCHMARK(BM_KernelMulModAccLazy)->Apply(supported_levels);

void
BM_KernelScalarMulShoup(benchmark::State &state)
{
    auto lvl = static_cast<kernels::SimdLevel>(state.range(0));
    const kernels::KernelTable &t = kernels::table(lvl);
    std::size_t n = 1 << 14;
    u64 q = generate_ntt_primes(n, 50, 1)[0];
    Prng prng(12);
    u64 w = prng.uniform(q);
    u64 ws = static_cast<u64>((u128(w) << 64) / q);
    std::vector<u64> a(n), out(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto _ : state) {
        t.scalar_mul_shoup_n(out.data(), a.data(), n, w, ws, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(kernels::level_name(lvl));
}
BENCHMARK(BM_KernelScalarMulShoup)->Apply(supported_levels);

void
BM_KernelNttForward(benchmark::State &state)
{
    auto lvl = static_cast<kernels::SimdLevel>(state.range(0));
    const kernels::KernelTable &t = kernels::table(lvl);
    std::size_t n = 1 << 14;
    u64 q = generate_ntt_primes(n, 50, 1)[0];
    NttTable table(n, q);
    Prng prng(13);
    std::vector<u64> a(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto _ : state) {
        t.ntt_forward(a.data(), n, table.log_degree(),
                      table.psi_br().data(),
                      table.psi_br_shoup().data(), q);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(kernels::level_name(lvl));
}
BENCHMARK(BM_KernelNttForward)->Apply(supported_levels);

void
BM_KernelNttInverse(benchmark::State &state)
{
    auto lvl = static_cast<kernels::SimdLevel>(state.range(0));
    const kernels::KernelTable &t = kernels::table(lvl);
    std::size_t n = 1 << 14;
    u64 q = generate_ntt_primes(n, 50, 1)[0];
    NttTable table(n, q);
    Prng prng(14);
    std::vector<u64> a(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto _ : state) {
        t.ntt_inverse(a.data(), n, table.log_degree(),
                      table.ipsi_br().data(),
                      table.ipsi_br_shoup().data(), table.n_inv(),
                      table.n_inv_shoup(), q);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(kernels::level_name(lvl));
}
BENCHMARK(BM_KernelNttInverse)->Apply(supported_levels);

void
BM_NttForward(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    NttTable table(n, q);
    Prng prng(4);
    std::vector<u64> a(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto _ : state) {
        table.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttForward)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void
BM_NttFusedForward(benchmark::State &state)
{
    std::size_t n = 1 << 14;
    unsigned k = static_cast<unsigned>(state.range(0));
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    NttTable table(n, q);
    NttFused fused(table, k);
    Prng prng(5);
    std::vector<u64> a(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto _ : state) {
        fused.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttFusedForward)->DenseRange(1, 6);

void
BM_AutomorphismReference(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    Prng prng(6);
    std::vector<u64> a(n), out(n);
    for (auto &v : a) v = prng.uniform(q);
    u64 g = galois_element_for_step(n, 3);
    for (auto _ : state) {
        automorphism_coeff_limb(a.data(), out.data(), n, g, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AutomorphismReference)->Arg(1 << 14)->Arg(1 << 16);

void
BM_HFAuto(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    u64 q = generate_ntt_primes(n, 31, 1)[0];
    HFAuto hf(n, 512);
    Prng prng(7);
    std::vector<u64> a(n), out(n);
    for (auto &v : a) v = prng.uniform(q);
    u64 g = galois_element_for_step(n, 3);
    for (auto _ : state) {
        hf.apply_limb(a.data(), out.data(), g, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HFAuto)->Arg(1 << 14)->Arg(1 << 16);

void
BM_RnsConv(benchmark::State &state)
{
    std::size_t n = 1 << 12;
    std::size_t limbs = static_cast<std::size_t>(state.range(0));
    auto primes = generate_ntt_primes(n, 31, limbs + 1);
    RnsBasis src(std::vector<u64>(primes.begin(), primes.end() - 1));
    RnsBasis dst(std::vector<u64>{primes.back()});
    RnsConv conv(src, dst);
    Prng prng(8);
    std::vector<std::vector<u64>> data(limbs, std::vector<u64>(n));
    for (std::size_t i = 0; i < limbs; ++i) {
        for (auto &v : data[i]) v = prng.uniform(src.modulus(i));
    }
    std::vector<u64> out(n);
    std::vector<const u64*> in(limbs);
    for (std::size_t i = 0; i < limbs; ++i) in[i] = data[i].data();
    std::vector<u64*> op{out.data()};
    for (auto _ : state) {
        conv.convert(in, op, n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * limbs);
}
BENCHMARK(BM_RnsConv)->Arg(4)->Arg(8)->Arg(16);

void
BM_NttBatchParallel(benchmark::State &state)
{
    std::size_t n = 1 << 14;
    std::size_t limbs = 12;
    std::size_t threads = static_cast<std::size_t>(state.range(0));
    auto primes = generate_ntt_primes(n, 45, limbs);
    auto ring = std::make_shared<const RingContext>(n, primes);
    Sampler sampler(9);
    std::vector<i64> coeffs = sampler.gaussian(n, 1000.0);
    RnsPoly poly = RnsPoly::ct(ring, limbs, Domain::Coeff);
    poly.assign_signed(coeffs);

    parallel::set_num_threads(threads);
    for (auto _ : state) {
        RnsPoly p = poly;
        p.to_eval();
        benchmark::DoNotOptimize(p.limb(0));
    }
    parallel::set_num_threads(0);
    state.SetItemsProcessed(state.iterations() * n * limbs);
}
BENCHMARK(BM_NttBatchParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

/// Console output as usual, plus every timing into the bench harness
/// (metric `<benchmark>.ns_per_iter`) so the run lands in
/// BENCH_micro_kernels.json like the table benches.
class HarnessReporter : public benchmark::ConsoleReporter
{
  public:
    explicit HarnessReporter(bench::Harness &h) : h_(h) {}

    void ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.error_occurred) continue;
            h_.metric(run.benchmark_name() + ".ns_per_iter",
                      run.GetAdjustedRealTime());
        }
        ConsoleReporter::ReportRuns(reports);
    }

  private:
    bench::Harness &h_;
};

// ---- Dispatch report + speedup gate. ----
//
// Google-benchmark timings are great comparison rows but too noisy to
// gate on directly, so the gate re-times each kernel itself:
// min-of-trials wall time per level, ratio scalar/active. The ratios
// land in BENCH_micro_kernels.json as `kernels.speedup.*` (the only
// metrics in the committed baseline — pruned so the absolute
// ns_per_iter rows never gate) and, when an AVX level is dispatched,
// the binary exits nonzero unless the ISSUE-8 floors hold: >= 1.5x
// elementwise mulmod and >= 1.3x forward NTT at N = 2^14.

double
time_once(int iters, const std::function<void()> &fn)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) fn();
    std::chrono::duration<double> dt = clock::now() - t0;
    return dt.count();
}

/// Best-of-trials for both variants with the trials *interleaved*, so
/// frequency scaling or a noisy co-tenant mid-run biases neither side.
double
speedup_vs(int trials, int iters, const std::function<void()> &base,
           const std::function<void()> &opt)
{
    base();
    opt(); // warm caches and the dispatch tables
    double bestBase = 1e300, bestOpt = 1e300;
    for (int t = 0; t < trials; ++t) {
        bestBase = std::min(bestBase, time_once(iters, base));
        bestOpt = std::min(bestOpt, time_once(iters, opt));
    }
    return bestBase / bestOpt;
}

bool
report_dispatch_and_gate(bench::Harness &h)
{
    using kernels::SimdLevel;
    SimdLevel active = kernels::active_level();
    std::printf("\nkernel dispatch: level=%s (avx2 %s, avx512 %s)\n",
                kernels::level_name(active),
                kernels::level_supported(SimdLevel::Avx2) ? "yes"
                                                          : "no",
                kernels::level_supported(SimdLevel::Avx512) ? "yes"
                                                            : "no");
    h.metric("kernels.dispatch.level", static_cast<double>(active));

    std::size_t n = 1 << 14;
    u64 q = generate_ntt_primes(n, 50, 1)[0];
    NttTable table(n, q);
    Prng prng(20);
    std::vector<u64> a(n), b(n), out(n), work(n);
    for (auto &v : a) v = prng.uniform(q);
    for (auto &v : b) v = prng.uniform(q);

    const kernels::KernelTable &sc = kernels::table(SimdLevel::Scalar);
    const kernels::KernelTable &ac = kernels::table(active);
    const int trials = 15, iters = 40;

    double mulSpeedup = speedup_vs(
        trials, iters,
        [&] { sc.mul_mod_n(out.data(), a.data(), b.data(), n, q); },
        [&] { ac.mul_mod_n(out.data(), a.data(), b.data(), n, q); });
    work = a;
    double nttSpeedup = speedup_vs(
        trials, iters,
        [&] {
            sc.ntt_forward(work.data(), n, table.log_degree(),
                           table.psi_br().data(),
                           table.psi_br_shoup().data(), q);
        },
        [&] {
            ac.ntt_forward(work.data(), n, table.log_degree(),
                           table.psi_br().data(),
                           table.psi_br_shoup().data(), q);
        });
    h.metric("kernels.speedup.mulmod_16384", mulSpeedup);
    h.metric("kernels.speedup.ntt_fwd_16384", nttSpeedup);
    std::printf("kernel speedup vs scalar (N=2^14, 50-bit prime): "
                "mulmod %.2fx, ntt_fwd %.2fx\n",
                mulSpeedup, nttSpeedup);

    if (active == SimdLevel::Scalar) return true;
    bool ok = mulSpeedup >= 1.5 && nttSpeedup >= 1.3;
    if (!ok) {
        std::fprintf(stderr,
                     "FAIL: %s dispatch below speedup floor "
                     "(mulmod %.2fx < 1.5x or ntt %.2fx < 1.3x)\n",
                     kernels::level_name(active), mulSpeedup,
                     nttSpeedup);
    }
    return ok;
}

} // namespace
} // namespace poseidon

int
main(int argc, char **argv)
{
    poseidon::bench::Harness h("micro_kernels", argc, argv);
    // Strip the harness's flag before google-benchmark sees it.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--no-json") argv[kept++] = argv[i];
    }
    argc = kept;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    poseidon::HarnessReporter reporter(h);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    bool gateOk = poseidon::report_dispatch_and_gate(h);
    return h.finish(gateOk ? 0 : 1);
}
