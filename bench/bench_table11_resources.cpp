// Reproduces Tables XI and XII: per-core FPGA resource utilization of
// the Poseidon design (from the resource model) and the comparison
// with prior FPGA prototypes (published totals).

#include <cstdio>

#include "bench/bench_harness.h"

#include "baselines/published.h"
#include "common/table.h"
#include "hw/resource.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("table11_resources", argc, argv);
    hw::ResourceModel rm;
    hw::DeviceCapacity cap;

    AsciiTable t("Table XI: Poseidon resource utilization (Alveo U280, "
                 "512 lanes, k=3)");
    t.header({"Core", "FF", "DSP", "LUT", "BRAM", "URAM"});
    for (const auto &r : rm.table_rows()) {
        t.row({r.name, std::to_string(r.ff), std::to_string(r.dsp),
               std::to_string(r.lut), std::to_string(r.bram),
               std::to_string(r.uram)});
    }
    auto total = rm.total();
    h.metric("total.ff", static_cast<double>(total.ff));
    h.metric("total.dsp", static_cast<double>(total.dsp));
    h.metric("total.lut", static_cast<double>(total.lut));
    h.metric("total.bram", static_cast<double>(total.bram));
    h.metric("total.uram", static_cast<double>(total.uram));
    h.metric("util.dsp_pct", 100.0 * total.dsp / cap.dsp);
    h.metric("util.lut_pct", 100.0 * total.lut / cap.lut);
    t.row({"Utilization (%)",
           AsciiTable::num(100.0 * total.ff / cap.ff, 1),
           AsciiTable::num(100.0 * total.dsp / cap.dsp, 1),
           AsciiTable::num(100.0 * total.lut / cap.lut, 1),
           AsciiTable::num(100.0 * total.bram / cap.bram, 1),
           AsciiTable::num(100.0 * total.uram / cap.uram, 1)});
    t.print();

    AsciiTable t2("Table XII: comparison with prior FPGA prototypes "
                  "(published totals)");
    t2.header({"Prototype", "FF", "DSP", "LUT/ALM", "BRAM/M20K"});
    for (const auto &p : baselines::prior_fpga_resources()) {
        t2.row({p.name, std::to_string(p.ff), std::to_string(p.dsp),
                std::to_string(p.lut), std::to_string(p.bram)});
    }
    t2.row({"Poseidon (this model)", std::to_string(total.ff),
            std::to_string(total.dsp), std::to_string(total.lut),
            std::to_string(total.bram + total.uram)});
    t2.print();

    std::printf("\nExpected shape: Poseidon consumes fewer resources "
                "than the prior prototypes thanks to operator reuse;\n"
                "DSPs concentrate in the MM/NTT/SBT multiplier "
                "pipelines.\n");
    return h.finish();
}
