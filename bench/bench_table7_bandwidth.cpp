// Reproduces Table VII: HBM bandwidth utilization of each basic
// operation and of the whole benchmarks. Expected shape (paper):
// simple streaming operations (HAdd, PMult) run near peak (~98%);
// Rescale is lowest (~26-30%) because it reuses scratchpad-resident
// data; benchmark averages land mid-range.

#include <cstdio>

#include "bench/bench_harness.h"
#include "common/table.h"
#include "hw/sim.h"
#include "workloads/workloads.h"

using namespace poseidon;
using isa::BasicOp;
using isa::OpShape;
using isa::Trace;

int
main(int argc, char **argv)
{
    bench::Harness h("table7_bandwidth", argc, argv);
    hw::PoseidonSim sim;
    OpShape s = workloads::paper_shape();
    s.dnum = 0; // basic ops at digit-per-prime keyswitching
    s.K = 1;
    h.config("n", telemetry::Json(s.n));
    h.config("limbs", telemetry::Json(s.limbs));

    AsciiTable t1(
        "Table VII (top): bandwidth utilization of basic operations");
    t1.header({"Operation", "Utilization (%)", "HBM traffic (MB)",
               "time (ms)"});

    auto row = [&](const char *name, Trace &t) {
        auto r = sim.run(t);
        h.metric(std::string(name) + ".bandwidth_util",
                 r.bandwidth_utilization(sim.config()));
        double mb = static_cast<double>(r.bytesRead + r.bytesWritten) /
                    1e6;
        t1.row({name,
                AsciiTable::num(100.0 * r.bandwidth_utilization(
                                            sim.config()),
                                2),
                AsciiTable::num(mb, 1),
                AsciiTable::num(r.seconds * 1e3, 3)});
    };

    {
        Trace t;
        isa::emit_hadd(t, s);
        row("HAdd", t);
    }
    {
        Trace t;
        isa::emit_pmult(t, s);
        row("PMult", t);
    }
    {
        Trace t;
        isa::emit_cmult(t, s);
        row("CMult", t);
    }
    {
        Trace t;
        isa::emit_keyswitch(t, s);
        row("Keyswitch", t);
    }
    {
        Trace t;
        isa::emit_rotation(t, s);
        row("Rotation", t);
    }
    {
        Trace t;
        isa::emit_rescale(t, s);
        row("Rescale", t);
    }
    {
        Trace t;
        isa::BootstrapShape bs;
        bs.base = workloads::paper_shape();
        isa::emit_bootstrap(t, bs);
        row("Bootstrapping", t);
    }
    t1.print();

    AsciiTable t2(
        "Table VII (bottom): average bandwidth utilization of whole "
        "benchmarks");
    t2.header({"Benchmark", "Utilization (%)", "HBM traffic (GB)",
               "time (ms)"});
    for (const auto &w : workloads::paper_benchmarks()) {
        auto r = sim.run(w.trace);
        h.record_sim(w.name, r, sim.config());
        t2.row({w.name,
                AsciiTable::num(100.0 * r.bandwidth_utilization(
                                            sim.config()),
                                2),
                AsciiTable::num(static_cast<double>(r.bytesRead +
                                                    r.bytesWritten) /
                                    1e9,
                                1),
                AsciiTable::num(r.seconds * 1e3, 1)});
    }
    t2.print();

    std::printf("\nPaper shape check: HAdd/PMult ~98%% (streaming), "
                "Rescale lowest (~26-30%%), benchmarks mid-range.\n");
    return h.finish();
}
