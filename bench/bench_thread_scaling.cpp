// Host thread-scaling sweep for the parallel execution engine
// (common/parallel.h): forward-NTT limb batches and ModUp base
// extension — the two host kernels Poseidon's 512-lane datapath
// accelerates — measured at 1/2/4/8 threads. Alongside wall-clock
// speedups the sweep checksums every output so a scheduling bug that
// broke bit-identical determinism would fail the bench, not just
// slow it down.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_harness.h"
#include "common/parallel.h"
#include "common/prng.h"
#include "ntt/table_cache.h"
#include "poly/ring.h"
#include "poly/poly.h"
#include "rns/basis.h"
#include "rns/conv.h"
#include "rns/primes.h"

namespace {

using namespace poseidon;

constexpr std::size_t kLogN = 14;
constexpr std::size_t kN = std::size_t(1) << kLogN;
constexpr std::size_t kLimbs = 12;
constexpr std::size_t kSpecial = 2;
constexpr int kIters = 20;

double
now_ms()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

u64
checksum(const RnsPoly &p)
{
    u64 h = 0x9E3779B97F4A7C15ULL;
    for (std::size_t k = 0; k < p.num_limbs(); ++k) {
        const u64 *v = p.limb(k);
        for (std::size_t t = 0; t < p.degree(); ++t) {
            h = (h ^ v[t]) * 0x100000001B3ULL;
        }
    }
    return h;
}

u64
checksum_limbs(const std::vector<std::vector<u64>> &limbs)
{
    u64 h = 0x9E3779B97F4A7C15ULL;
    for (const auto &l : limbs) {
        for (u64 v : l) h = (h ^ v) * 0x100000001B3ULL;
    }
    return h;
}

struct Run
{
    double nttMs = 0;
    double modupMs = 0;
    u64 nttSum = 0;
    u64 modupSum = 0;
};

Run
run_at(std::size_t threads, const RingContextPtr &ring,
       const RnsPoly &input, const RnsConv &conv)
{
    parallel::set_num_threads(threads);
    Run r;

    // Forward-NTT a full limb batch per iteration.
    {
        double best = 1e300;
        for (int it = 0; it < kIters; ++it) {
            RnsPoly p = input;
            double t0 = now_ms();
            p.to_eval();
            best = std::min(best, now_ms() - t0);
            r.nttSum = checksum(p);
        }
        r.nttMs = best;
    }

    // ModUp: extend the ciphertext limbs onto the special primes.
    {
        std::vector<const u64 *> src(kLimbs);
        for (std::size_t k = 0; k < kLimbs; ++k) src[k] = input.limb(k);
        std::vector<std::vector<u64>> out(kSpecial,
                                          std::vector<u64>(kN));
        std::vector<u64 *> dst(kSpecial);
        for (std::size_t j = 0; j < kSpecial; ++j) dst[j] = out[j].data();

        double best = 1e300;
        for (int it = 0; it < kIters; ++it) {
            double t0 = now_ms();
            conv.convert(src, dst, kN, /*correct=*/true);
            best = std::min(best, now_ms() - t0);
            r.modupSum = checksum_limbs(out);
        }
        r.modupMs = best;
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using poseidon::bench::Harness;
    Harness h("thread_scaling", argc, argv);

    std::vector<u64> primes =
        generate_ntt_primes(kN, 45, kLimbs + kSpecial);
    auto ring = std::make_shared<const RingContext>(kN, primes, kSpecial);

    RnsPoly input = RnsPoly::ct(ring, kLimbs, Domain::Coeff);
    {
        Sampler sampler(7);
        std::vector<i64> coeffs(kN);
        auto g = sampler.gaussian(kN, 1000.0);
        for (std::size_t t = 0; t < kN; ++t) coeffs[t] = g[t];
        input.assign_signed(coeffs);
    }
    RnsConv conv(ring->ct_basis(kLimbs), ring->special_basis());

    h.config("logN", telemetry::Json(static_cast<double>(kLogN)));
    h.config("limbs", telemetry::Json(static_cast<double>(kLimbs)));
    h.config("special_primes",
             telemetry::Json(static_cast<double>(kSpecial)));
    h.config("iters_per_point",
             telemetry::Json(static_cast<double>(kIters)));
    h.config("hardware_threads",
             telemetry::Json(static_cast<double>(
                 std::thread::hardware_concurrency())));

    const std::size_t sweep[] = {1, 2, 4, 8};
    Run base;
    bool checksumsOk = true;

    std::printf("Host thread scaling (N=2^%zu, %zu limbs, best of %d)\n",
                kLogN, kLimbs, kIters);
    std::printf("%8s %14s %10s %14s %10s\n", "threads", "NTT ms",
                "speedup", "ModUp ms", "speedup");
    for (std::size_t threads : sweep) {
        Run r = run_at(threads, ring, input, conv);
        if (threads == 1) {
            base = r;
        } else {
            checksumsOk = checksumsOk && r.nttSum == base.nttSum &&
                          r.modupSum == base.modupSum;
        }
        double suNtt = base.nttMs / r.nttMs;
        double suMod = base.modupMs / r.modupMs;
        std::printf("%8zu %14.3f %9.2fx %14.3f %9.2fx\n", threads,
                    r.nttMs, suNtt, r.modupMs, suMod);

        std::string t = std::to_string(threads);
        h.metric("ntt_ms.t" + t, r.nttMs);
        h.metric("modup_ms.t" + t, r.modupMs);
        h.metric("ntt_speedup.t" + t, suNtt);
        h.metric("modup_speedup.t" + t, suMod);
    }
    parallel::set_num_threads(0);

    h.metric("deterministic", checksumsOk ? 1.0 : 0.0);
    if (!checksumsOk) {
        std::fprintf(stderr,
                     "FAIL: results differ across thread counts\n");
        return h.finish(1);
    }
    return h.finish();
}
