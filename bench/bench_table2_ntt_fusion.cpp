// Reproduces Table II: conventional NTT vs NTT-fusion — twiddle factor
// counts and multiplication/addition counts per 2^k-point block, for
// radix exponents k = 2..6. Also validates the fused kernel's actual
// butterfly counts against the model at N = 4096.

#include <cstdio>

#include "bench/bench_harness.h"
#include "common/prng.h"
#include "common/table.h"
#include "ntt/fusion.h"
#include "rns/primes.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("table2_ntt_fusion", argc, argv);
    AsciiTable table(
        "Table II: conventional NTT vs NTT-fusion (per 2^k-point block)");
    table.header({"k", "W (unfused)", "W (fused)", "Mult/Add (unfused)",
                  "Mult/Add (fused)", "ModRed (unfused)",
                  "ModRed (fused)"});
    for (unsigned k = 2; k <= 6; ++k) {
        FusionCostModel m{k};
        h.metric("k" + std::to_string(k) + ".twiddles_fused",
                 static_cast<double>(m.twiddles_fused()));
        h.metric("k" + std::to_string(k) + ".mult_fused",
                 static_cast<double>(m.mult_fused()));
        char mu[32], mf[32];
        std::snprintf(mu, sizeof(mu), "%llu / %llu",
                      (unsigned long long)m.mult_unfused(),
                      (unsigned long long)m.mult_unfused());
        std::snprintf(mf, sizeof(mf), "%llu / %llu",
                      (unsigned long long)m.mult_fused(),
                      (unsigned long long)m.mult_fused());
        table.row({std::to_string(k),
                   std::to_string(m.twiddles_unfused()),
                   std::to_string(m.twiddles_fused()), mu, mf,
                   std::to_string(m.modred_unfused()),
                   std::to_string(m.modred_fused())});
    }
    table.print();
    std::printf("\nPaper note: for k=6 the paper prints 4160 where the "
                "(2^k-1)*2^k formula gives 4032 (treated as a typo).\n");

    // Cross-check the functional fused kernel's pass counts.
    AsciiTable chk("Fused kernel validation at N = 4096 (measured)");
    chk.header({"k", "phases (model)", "phases (measured)",
                "butterflies (measured)", "bit-exact vs reference"});
    std::size_t n = 4096;
    h.config("n", telemetry::Json(n));
    u64 q = generate_ntt_primes(n, 30, 1)[0];
    NttTable ref(n, q);
    Prng prng(1);
    for (unsigned k = 1; k <= 6; ++k) {
        std::vector<u64> a(n), b;
        for (auto &v : a) v = prng.uniform(q);
        b = a;
        NttFused fused(ref, k);
        fused.forward(a.data());
        ref.forward(b.data());
        bool exact = a == b;
        h.metric("k" + std::to_string(k) + ".bit_exact",
                 exact ? 1.0 : 0.0);
        chk.row({std::to_string(k),
                 std::to_string(FusionCostModel::phases(n, k)),
                 std::to_string(fused.stats().phases),
                 std::to_string(fused.stats().butterflies),
                 exact ? "yes" : "NO"});
    }
    chk.print();
    return h.finish();
}
