// Reproduces Table X: energy-delay product comparison. Poseidon EDP
// comes from the energy model over the workload traces; comparator EDP
// is reconstructed from published times and power (Table VI).

#include <cstdio>

#include "bench/bench_harness.h"

#include "baselines/published.h"
#include "common/table.h"
#include "hw/energy.h"
#include "workloads/workloads.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("table10_edp", argc, argv);
    hw::HwConfig cfg;
    hw::PoseidonSim sim(cfg);
    hw::EnergyModel em(cfg);

    AsciiTable t("Table X: energy-delay product (J*s, lower is better)");
    t.header({"System", "LR (per iter)", "LSTM", "ResNet-20",
              "Packed Bootstrapping"});

    // Comparators: EDP = (time)^2 * power from published numbers.
    for (const char *name : {"over100x", "F1+", "CraterLake", "BTS",
                             "ARK"}) {
        auto times = baselines::bench_times(name);
        double p = baselines::spec(name).powerWatts;
        auto edp = [&](double ms) {
            return ms <= 0 ? -1.0 : (ms / 1e3) * (ms / 1e3) * p;
        };
        auto cell = [&](double ms) {
            double v = edp(ms);
            if (v < 0) return std::string("/");
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3g", v);
            return std::string(buf);
        };
        t.row({name, cell(times.lr), cell(times.lstm),
               cell(times.resnet20), cell(times.bootstrapping)});
    }

    // Poseidon from the model.
    std::vector<std::string> row = {"Poseidon (this model)"};
    for (const auto &w : workloads::paper_benchmarks()) {
        auto r = sim.run(w.trace);
        h.record_sim(w.name, r, sim.config());
        auto e = em.eval(w.trace, r);
        double div = static_cast<double>(w.reportDivisor);
        // Per-report-unit EDP: (E/div) * (T/div).
        double edp = (e.total() / div) * (r.seconds / div);
        h.metric(w.name + ".edp_joule_seconds", edp);
        h.metric(w.name + ".energy_joules", e.total());
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3g", edp);
        row.push_back(buf);
    }
    t.row(row);
    t.print();

    std::printf("\nExpected shape (paper): Poseidon ~1000x better EDP "
                "than the GPU on LR; better than CraterLake/BTS\non "
                "LR/ResNet-20; ASICs (esp. ARK) win on "
                "bootstrapping-dominated workloads.\n");
    return h.finish();
}
