// Reproduces Table III / Fig. 5: the per-iteration data access pattern
// of the fused NTT at N = 4096, k = 3 — conventional NTT needs 12
// iterations with power-of-two offsets; NTT-fusion needs 4 iterations
// with stride 8^(iter-1).

#include <cstdio>

#include "bench/bench_harness.h"
#include "common/table.h"
#include "ntt/fusion.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("table3_access_pattern", argc, argv);
    const std::size_t n = 4096;
    h.config("n", telemetry::Json(n));
    h.config("k", telemetry::Json(3));
    AsciiTable table(
        "Table III: NTT data access pattern (N = 4096, k = 3)");
    table.header({"Iteration", "Conventional offset (2^(it-1))",
                  "Fused stride (8^(it-1))",
                  "First fused block (8 operand indices)"});

    AccessPattern ap{n, 3};
    for (unsigned it = 1; it <= ap.iterations(); ++it) {
        auto blk = ap.first_block(it);
        std::string idx;
        for (std::size_t i = 0; i < blk.size(); ++i) {
            if (i) idx += ", ";
            idx += std::to_string(blk[i]);
        }
        table.row({std::to_string(it),
                   std::to_string(u64(1) << (it - 1)),
                   std::to_string(ap.stride(it)), idx});
    }
    table.print();
    h.metric("iterations_conventional", 12.0);
    h.metric("iterations_fused", static_cast<double>(ap.iterations()));

    std::printf("\nConventional NTT: %u iterations; NTT-fusion (k=3): "
                "%u iterations.\n",
                12u, ap.iterations());
    std::printf("Iteration 2 loads indices 0, 8, 16, 24, 32, 40, 48, 56 "
                "— matching Fig. 5 of the paper.\n");
    return h.finish();
}
