// Reproduces Fig. 11: lane-count sensitivity — ResNet-20 execution
// time and EDP for 64/128/256/512 lanes. Expected shape: performance
// improves with lanes but sublinearly as HBM bandwidth saturates;
// EDP behaves similarly; 512 lanes is the chosen operating point.

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/energy.h"
#include "workloads/workloads.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("fig11_lane_scaling", argc, argv);
    auto resnet = workloads::make_resnet20(workloads::paper_shape());

    AsciiTable t("Fig. 11: lane scaling sensitivity (ResNet-20)");
    t.header({"lanes", "time (ms)", "speedup vs 64", "EDP (J*s)",
              "BW utilization (%)"});

    double t64 = 0;
    for (std::size_t lanes : {64, 128, 256, 512}) {
        hw::HwConfig cfg;
        cfg.lanes = lanes;
        hw::PoseidonSim sim(cfg);
        hw::EnergyModel em(cfg);
        auto r = sim.run(resnet.trace);
        auto e = em.eval(resnet.trace, r);
        if (lanes == 64) t64 = r.seconds;
        std::string pre = "lanes" + std::to_string(lanes);
        h.metric(pre + ".time_ms", r.seconds * 1e3);
        h.metric(pre + ".speedup_vs_64", t64 / r.seconds);
        h.metric(pre + ".bandwidth_util",
                 r.bandwidth_utilization(cfg));
        t.row({std::to_string(lanes),
               AsciiTable::num(r.seconds * 1e3, 1),
               AsciiTable::speedup(t64 / r.seconds, 2),
               AsciiTable::num(e.edp(r.seconds), 3),
               AsciiTable::num(
                   100.0 * r.bandwidth_utilization(cfg), 1)});
    }
    t.print();

    std::printf("\nShape check: each doubling of lanes gains less than "
                "2x as the workload shifts toward the HBM\nroofline; "
                "512 lanes maximizes performance on the U280's 460 GB/s "
                "budget (the paper's choice).\n");
    return h.finish();
}
