// Reproduces Fig. 12: energy consumption and breakdown per benchmark.
// Expected shape: memory access dominates; among operators MM and NTT
// take the largest share; MA is negligible despite its frequency.

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/energy.h"
#include "workloads/workloads.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("fig12_energy", argc, argv);
    hw::HwConfig cfg;
    hw::PoseidonSim sim(cfg);
    hw::EnergyModel em(cfg);

    AsciiTable t("Fig. 12: dynamic energy breakdown (percent of "
                 "dynamic energy; static reported separately)");
    t.header({"Benchmark", "dynamic (J)", "memory", "MM", "NTT", "MA",
              "Auto", "SBT", "static (J)"});

    for (const auto &w : workloads::paper_benchmarks()) {
        auto r = sim.run(w.trace);
        auto e = em.eval(w.trace, r);
        double dyn = e.total() - e.staticE;
        h.record_sim(w.name, r, sim.config());
        h.metric(w.name + ".dynamic_joules", dyn);
        h.metric(w.name + ".memory_energy_pct",
                 100.0 * e.memory / dyn);
        auto pct = [&](double v) {
            return AsciiTable::num(100.0 * v / dyn, 1);
        };
        t.row({w.name, AsciiTable::num(dyn, 2), pct(e.memory),
               pct(e.mm), pct(e.ntt), pct(e.ma), pct(e.autom),
               pct(e.sbt), AsciiTable::num(e.staticE, 2)});
    }
    t.print();

    std::printf("\nShape check (paper Fig. 12): memory access takes the "
                "largest share; MM and NTT dominate the\ncompute energy; "
                "MA is minimal due to its simple logic.\n");
    return h.finish();
}
