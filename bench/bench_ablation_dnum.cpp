// Ablation (extension beyond the paper's tables): the keyswitch digit
// count dnum. Larger dnum (more digits) means each digit is smaller,
// the special-prime overhead shrinks, and key material grows — trading
// HBM key traffic against ModUp/ModDown base-conversion compute. This
// is the "bandwidth vs compute" dial the paper's Discussion section
// alludes to for future memory technologies (NDP/SmartSSD).

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/sim.h"
#include "isa/compiler.h"

using namespace poseidon;
using namespace poseidon::isa;

int
main(int argc, char **argv)
{
    bench::Harness h("ablation_dnum", argc, argv);
    hw::PoseidonSim sim;

    AsciiTable t("Ablation: keyswitch digit count (N=2^16, 44 limbs)");
    t.header({"dnum", "alpha", "K", "key stream (MB)",
              "compute (Mcycles)", "memory (Mcycles)", "time (ms)",
              "ops/s", "BW util (%)"});

    struct Cfg
    {
        u64 dnum, K;
    };
    // K scales with alpha = ceil(L/dnum) to keep keyswitch noise flat.
    const Cfg cfgs[] = {{44, 1}, {15, 3}, {8, 6}, {4, 11}, {2, 22}};
    for (const auto &c : cfgs) {
        OpShape s;
        s.n = u64(1) << 16;
        s.limbs = 44;
        s.dnum = c.dnum;
        s.K = c.K;

        Trace tr;
        emit_keyswitch(tr, s);
        auto r = sim.run(tr);
        double keyMB = static_cast<double>(s.digits()) * 2 *
                       s.ext_limbs() * s.n * 4 / 1e6;
        u64 alpha = (s.limbs + s.digits() - 1) / s.digits();
        std::string pre = "dnum" + std::to_string(c.dnum);
        h.record_sim(pre, r, sim.config());
        h.metric(pre + ".key_stream_mb", keyMB);
        h.metric(pre + ".ops_per_sec", 1.0 / r.seconds);
        t.row({std::to_string(c.dnum), std::to_string(alpha),
               std::to_string(c.K), AsciiTable::num(keyMB, 1),
               AsciiTable::num(r.computeCycles / 1e6, 2),
               AsciiTable::num(r.memCycles / 1e6, 2),
               AsciiTable::num(r.seconds * 1e3, 3),
               AsciiTable::num(1.0 / r.seconds, 1),
               AsciiTable::num(
                   100.0 * r.bandwidth_utilization(sim.config()), 1)});
    }
    t.print();

    std::printf(
        "\nReading the table: dnum=44 (digit per prime) is "
        "bandwidth-dominated by the 1 GB key stream;\nsmall dnum shrinks "
        "keys but the alpha special primes inflate ModUp/ModDown "
        "arithmetic.\nThe sweet spot for this configuration sits in the "
        "middle — which is why the benchmark traces use dnum=4.\n");
    return h.finish();
}
