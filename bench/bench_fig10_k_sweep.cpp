// Reproduces Fig. 10: the NTT-fusion parameter sweep — FPGA resources
// (#Regs, #DSPs, #LUTs) and average execution time per NTT as a
// function of the radix exponent k. Expected shape: all four metrics
// have their optimum at k = 3.

#include <cstdio>

#include "bench/bench_harness.h"

#include "common/table.h"
#include "hw/resource.h"
#include "hw/sim.h"
#include "ntt/fusion.h"

using namespace poseidon;

int
main(int argc, char **argv)
{
    bench::Harness h("fig10_k_sweep", argc, argv);
    AsciiTable t("Fig. 10: NTT-fusion parameter k sweep (N = 2^16)");
    t.header({"k", "#Regs (FF)", "#DSPs", "#LUTs", "BRAM",
              "NTT time (us)", "passes"});

    unsigned bestK = 0;
    double bestTime = 1e300;
    for (unsigned k = 1; k <= 6; ++k) {
        hw::HwConfig cfg;
        cfg.nttRadixLog2 = k;
        hw::PoseidonSim sim(cfg);
        hw::ResourceModel rm(cfg);
        auto res = rm.ntt_cores_at(k);
        double cycles = sim.ntt_poly_cycles(u64(1) << 16);
        double us = cycles / (cfg.clockGHz * 1e9) * 1e6;
        if (us < bestTime) {
            bestTime = us;
            bestK = k;
        }
        h.metric("k" + std::to_string(k) + ".ntt_time_us", us);
        h.metric("k" + std::to_string(k) + ".dsp",
                 static_cast<double>(res.dsp));
        t.row({std::to_string(k), std::to_string(res.ff),
               std::to_string(res.dsp), std::to_string(res.lut),
               std::to_string(res.bram), AsciiTable::num(us, 3),
               std::to_string(FusionCostModel::phases(u64(1) << 16, k))});
    }
    t.print();

    std::printf("\nOptimal k by execution time: %u (paper: 3). Resource "
                "columns are U-shaped with the minimum at k=3:\nfewer "
                "fused passes reduce inter-pass buffering, wider radix "
                "inflates the multiplier count.\n",
                bestK);
    h.metric("best_k", static_cast<double>(bestK));
    return h.finish(bestK == 3 ? 0 : 1);
}
