// Reproduces Table IV: throughput of the FHE basic operations
// (ops/second) on CPU vs GPU (over100x) vs HEAX vs Poseidon, plus the
// Poseidon-over-CPU speedup.
//
// CPU: this library measured single-threaded at logN=12 and
// extrapolated to the paper shape (N=2^16, 44 limbs) by asymptotic
// complexity. GPU/HEAX: the published numbers the paper compares
// against. Poseidon: the cycle model at the paper shape.

#include <cstdio>

#include "bench/bench_harness.h"

#include "baselines/cpu.h"
#include "baselines/published.h"
#include "common/table.h"
#include "hw/sim.h"
#include "workloads/workloads.h"

using namespace poseidon;
using isa::BasicOp;
using isa::OpShape;
using isa::Trace;

namespace {

std::string
rate(double opsPerSec)
{
    if (opsPerSec <= 0) return "/";
    char buf[32];
    if (opsPerSec >= 100) {
        std::snprintf(buf, sizeof(buf), "%.0f", opsPerSec);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f", opsPerSec);
    }
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h("table4_basic_ops", argc, argv);
    // --- CPU baseline: measure small, extrapolate to paper shape. ---
    CkksParams mp;
    mp.logN = 12;
    mp.L = 8;
    mp.scaleBits = 35;
    mp.firstPrimeBits = 45;
    mp.specialPrimeBits = 45;
    std::printf("Measuring CPU baseline at N=2^%u, L=%zu ...\n", mp.logN,
                mp.L);
    auto measured = baselines::CpuBaseline::measure(mp, /*reps=*/2);

    OpShape from;
    from.n = mp.degree();
    from.limbs = mp.L;
    from.K = mp.K;
    OpShape paper;
    paper.n = u64(1) << 16;
    paper.limbs = 44;
    paper.K = 1;
    h.config("n", telemetry::Json(paper.n));
    h.config("limbs", telemetry::Json(paper.limbs));
    auto cpu = baselines::CpuBaseline::scale_to(measured, from, paper);

    // --- Poseidon: cycle model at the paper shape. ---
    hw::PoseidonSim sim;
    auto simulate = [&](void (*emit)(Trace &, const OpShape &, BasicOp),
                        BasicOp tag) {
        Trace t;
        emit(t, paper, tag);
        return 1.0 / sim.run(t).seconds;
    };
    double pHadd = simulate(isa::emit_hadd, BasicOp::HAdd);
    double pPmult = simulate(isa::emit_pmult, BasicOp::PMult);
    double pCmult = simulate(isa::emit_cmult, BasicOp::CMult);
    double pNtt = simulate(isa::emit_ntt_op, BasicOp::NttOnly);
    double pRot = simulate(isa::emit_rotation, BasicOp::Rotation);
    double pResc = simulate(isa::emit_rescale, BasicOp::Rescale);
    Trace tks;
    isa::emit_keyswitch(tks, paper);
    double pKs = 1.0 / sim.run(tks).seconds;

    auto gpu = baselines::gpu_over100x_rates();
    auto heax = baselines::heax_rates();

    AsciiTable table(
        "Table IV: basic operation throughput (operations per second), "
        "N=2^16, 44 limbs");
    table.header({"Operation", "CPU (this lib, 1 thread)",
                  "over100x (GPU, published)", "HEAX (FPGA, published)",
                  "Poseidon (model)", "speedup vs CPU"});

    struct Row
    {
        const char *name;
        double cpu, gpu, heax, poseidon;
    };
    Row rows[] = {
        {"HAdd", 1.0 / cpu.hadd, gpu.hadd, heax.hadd, pHadd},
        {"PMult", 1.0 / cpu.pmult, gpu.pmult, heax.pmult, pPmult},
        {"CMult", 1.0 / cpu.cmult, gpu.cmult, heax.cmult, pCmult},
        {"NTT", 1.0 / cpu.ntt, gpu.ntt, heax.ntt, pNtt},
        {"Keyswitch", 1.0 / cpu.keyswitch, gpu.keyswitch, heax.keyswitch,
         pKs},
        {"Rotation", 1.0 / cpu.rotation, gpu.rotation, heax.rotation,
         pRot},
        {"Rescale", 1.0 / cpu.rescale, gpu.rescale, heax.rescale, pResc},
    };
    for (const auto &r : rows) {
        h.metric(std::string(r.name) + ".poseidon_ops_per_sec",
                 r.poseidon);
        h.metric(std::string(r.name) + ".speedup_vs_cpu",
                 r.poseidon / r.cpu);
        table.row({r.name, rate(r.cpu), rate(r.gpu), rate(r.heax),
                   rate(r.poseidon),
                   AsciiTable::speedup(r.poseidon / r.cpu, 0)});
    }
    table.print();

    std::printf(
        "\nPaper's reported speedups over its Xeon baseline: PMult 349x, "
        "CMult 718x, NTT 1348x,\nKeyswitch 780x, Rotation 774x, Rescale "
        "572x. Expected shape: speedup grows with operation\ncomplexity; "
        "absolute ratios differ because our CPU baseline is this "
        "library, not SEAL on a Xeon.\n");
    return h.finish();
}
