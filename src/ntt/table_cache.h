#ifndef POSEIDON_NTT_TABLE_CACHE_H_
#define POSEIDON_NTT_TABLE_CACHE_H_

/**
 * @file
 * Process-wide caches for the NTT's precomputed tables.
 *
 * Every RingContext used to rebuild identical twiddle tables for the
 * same (N, q) pair — servers that spin up one context per client, the
 * bench sweeps and the test suite all paid the O(N) power ladder per
 * prime per context. The caches here share immutable tables instead:
 *
 *  - `shared_ntt_table(n, q)` returns a shared_ptr to the NttTable for
 *    that (N, q), building it exactly once while any user holds it.
 *    Entries are weakly held, so tables are freed when the last
 *    context drops them rather than accumulating forever.
 *  - `bit_reverse_table(logn)` returns the length-2^logn bit-reversal
 *    permutation shared by every table (and the automorphism layer)
 *    at that ring degree — hoisted out of per-table construction.
 *
 * Both caches are mutex-protected and safe to call from any thread.
 * Hit/miss counters flow to telemetry (`ntt.table_cache.*`) through
 * the common MetricSink.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "ntt/ntt.h"

namespace poseidon {

/// Shared, immutable NTT table for (n, q); cached process-wide.
std::shared_ptr<const NttTable> shared_ntt_table(std::size_t n, u64 q);

/// Shared bit-reversal permutation for degree 2^logn:
/// table[i] = bit_reverse(i, logn).
std::shared_ptr<const std::vector<u32>> bit_reverse_table(unsigned logn);

struct NttCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t liveEntries = 0; ///< entries whose table is still alive
};

NttCacheStats ntt_table_cache_stats();

/// Drop all cache entries and zero the stats (tests only; live
/// shared_ptr holders keep their tables).
void clear_ntt_table_cache();

} // namespace poseidon

#endif // POSEIDON_NTT_TABLE_CACHE_H_
