#include "ntt/fusion.h"

#include <array>

#include "common/check.h"
#include "kernels/kernels.h"

namespace poseidon {

// Butterfly math comes from the shared kernel-layer helpers
// (kernels::ct_butterfly / gs_butterfly) — one definition for the
// reference, fused, and SIMD paths, so the paper-model stats counted
// here stay in lockstep with what the kernels actually compute.

NttFused::NttFused(const NttTable &table, unsigned k)
    : table_(table), k_(k)
{
    POSEIDON_REQUIRE(k >= 1 && k <= 6, "NttFused: k must be in [1,6]");
}

void
NttFused::forward(u64 *a) const
{
    const u64 q = table_.modulus();
    const std::size_t n = table_.degree();
    const unsigned logn = table_.log_degree();
    const auto &psi = table_.psi_br();
    const auto &psiS = table_.psi_br_shoup();

    // Local block buffer; max radix 2^6.
    std::array<u64, 64> local;

    for (unsigned s0 = 0; s0 < logn; s0 += k_) {
        unsigned kk = std::min(k_, logn - s0);
        std::size_t bs = std::size_t(1) << kk;    // local block size
        std::size_t T = n >> (s0 + kk);           // gather stride
        std::size_t blockLen = n >> s0;           // outer block length
        std::size_t outerCount = std::size_t(1) << s0;

        ++stats_.phases;
        for (std::size_t outer = 0; outer < outerCount; ++outer) {
            std::size_t base = outer * blockLen;
            for (std::size_t j = 0; j < T; ++j) {
                // Gather 2^kk strided operands (one fused TAM block).
                for (std::size_t x = 0; x < bs; ++x) {
                    local[x] = a[base + j + x * T];
                }
                ++stats_.fusedBlocks;
                // Apply kk stages of butterflies in registers.
                for (unsigned ss = 0; ss < kk; ++ss) {
                    std::size_t half = bs >> (ss + 1);    // partner distance
                    std::size_t mGlob = std::size_t(1) << (s0 + ss);
                    for (std::size_t x = 0; x < bs; ++x) {
                        if (x & half) continue;  // only group leaders
                        std::size_t iGlob =
                            (outer << ss) + (x >> (kk - ss));
                        u64 w = psi[mGlob + iGlob];
                        u64 ws = psiS[mGlob + iGlob];
                        kernels::ct_butterfly(local[x], local[x + half],
                                              w, ws, q);
                        ++stats_.butterflies;
                        ++stats_.twiddleMuls;
                    }
                }
                // Scatter back.
                for (std::size_t x = 0; x < bs; ++x) {
                    a[base + j + x * T] = local[x];
                }
            }
        }
    }
}

void
NttFused::inverse(u64 *a) const
{
    const u64 q = table_.modulus();
    const std::size_t n = table_.degree();
    const unsigned logn = table_.log_degree();
    const auto &ipsi = table_.ipsi_br();
    const auto &ipsiS = table_.ipsi_br_shoup();

    std::array<u64, 64> local;

    // Gentleman-Sande stages s = 0..logn-1 (partner distance 2^s),
    // grouped in chunks of k, mirroring forward().
    for (unsigned s0 = 0; s0 < logn; s0 += k_) {
        unsigned kk = std::min(k_, logn - s0);
        std::size_t bs = std::size_t(1) << kk;
        std::size_t T = std::size_t(1) << s0;       // gather stride
        std::size_t blockLen = T << kk;             // outer block length
        std::size_t outerCount = n / blockLen;

        ++stats_.phases;
        for (std::size_t outer = 0; outer < outerCount; ++outer) {
            std::size_t base = outer * blockLen;
            for (std::size_t j = 0; j < T; ++j) {
                for (std::size_t x = 0; x < bs; ++x) {
                    local[x] = a[base + j + x * T];
                }
                ++stats_.fusedBlocks;
                for (unsigned ss = 0; ss < kk; ++ss) {
                    std::size_t half = std::size_t(1) << ss;
                    std::size_t hGlob = n >> (s0 + ss + 1);
                    for (std::size_t x = 0; x < bs; ++x) {
                        if (x & half) continue;
                        std::size_t iGlob =
                            (outer << (kk - ss - 1)) + (x >> (ss + 1));
                        u64 w = ipsi[hGlob + iGlob];
                        u64 ws = ipsiS[hGlob + iGlob];
                        kernels::gs_butterfly(local[x], local[x + half],
                                              w, ws, q);
                        ++stats_.butterflies;
                        ++stats_.twiddleMuls;
                    }
                }
                for (std::size_t x = 0; x < bs; ++x) {
                    a[base + j + x * T] = local[x];
                }
            }
        }
    }
    // Dispatched batch kernel for the n^{-1} normalization sweep.
    kernels::scalar_mul_shoup_n(a, a, n, table_.n_inv(),
                                table_.n_inv_shoup(), q);
}

u64
FusionCostModel::twiddles_unfused() const
{
    return u64(1) << (k - 1);
}

u64
FusionCostModel::twiddles_fused() const
{
    // Table II of the paper for k in [2,6]; k=1 degenerates to 1.
    switch (k) {
      case 1: return 1;
      case 2: return 2;
      case 3: return 5;
      case 4: return 13;
      case 5: return 34;
      case 6: return 85;
      default:
        POSEIDON_REQUIRE(false, "FusionCostModel: k out of range [1,6]");
        return 0;
    }
}

u64
FusionCostModel::mult_unfused() const
{
    return u64(k) << k; // k * 2^k
}

u64
FusionCostModel::mult_fused() const
{
    u64 bs = u64(1) << k;
    return (bs - 1) * bs;
}

u64
FusionCostModel::modred_unfused() const
{
    return u64(k) << k;
}

u64
FusionCostModel::modred_fused() const
{
    return u64(1) << k;
}

u64
FusionCostModel::phases(std::size_t n, unsigned k)
{
    unsigned logn = log2_floor(n);
    return (logn + k - 1) / k;
}

u64
AccessPattern::stride(unsigned iteration) const
{
    POSEIDON_REQUIRE(iteration >= 1, "AccessPattern: iteration is 1-based");
    return u64(1) << (k * (iteration - 1));
}

std::vector<u64>
AccessPattern::first_block(unsigned iteration) const
{
    u64 s = stride(iteration);
    std::size_t bs = std::size_t(1) << k;
    std::vector<u64> idx(bs);
    for (std::size_t x = 0; x < bs; ++x) idx[x] = x * s;
    return idx;
}

unsigned
AccessPattern::iterations() const
{
    return static_cast<unsigned>(FusionCostModel::phases(n, k));
}

} // namespace poseidon
