#ifndef POSEIDON_NTT_NTT_H_
#define POSEIDON_NTT_NTT_H_

/**
 * @file
 * Negacyclic Number Theoretic Transform over Z_q[X]/(X^N+1).
 *
 * This is the reference operator that Poseidon's 64 x 8-input NTT cores
 * implement in hardware. The forward transform is the merged-psi
 * Cooley-Tukey (decimation in time) iteration and the inverse is the
 * matching Gentleman-Sande iteration (Longa-Naehrig style), so no
 * separate pre/post-multiplication by psi powers is needed.
 *
 * Forward input is in natural order and output in bit-reversed order;
 * the inverse consumes bit-reversed order and restores natural order.
 * All element-wise products are valid in either order as long as both
 * operands use the same one, which is how the library uses it.
 */

#include <cstddef>
#include <memory>
#include <vector>

#include "common/modmath.h"

namespace poseidon {

/// Precomputed twiddle tables for one (N, q) pair.
class NttTable
{
  public:
    /**
     * Build tables for ring degree n (power of two) and prime modulus q
     * with q == 1 (mod 2n).
     */
    NttTable(std::size_t n, u64 q);

    std::size_t degree() const { return n_; }
    u64 modulus() const { return q_; }

    /// In-place forward negacyclic NTT (natural -> bit-reversed order).
    void forward(u64 *a) const;

    /// In-place inverse negacyclic NTT (bit-reversed -> natural order).
    void inverse(u64 *a) const;

    /// psi^bitrev(i) twiddle table (exposed for the fused NTT kernels).
    const std::vector<u64>& psi_br() const { return psiBr_; }
    const std::vector<u64>& psi_br_shoup() const { return psiBrShoup_; }

    /// Inverse twiddle tables and N^{-1} (for the fused inverse NTT).
    const std::vector<u64>& ipsi_br() const { return ipsiBr_; }
    const std::vector<u64>& ipsi_br_shoup() const { return ipsiBrShoup_; }
    u64 n_inv() const { return nInv_; }
    u64 n_inv_shoup() const { return nInvShoup_; }

    unsigned log_degree() const { return logn_; }

    /// Length-N bit-reversal permutation (shared across every table of
    /// the same degree; precomputed once, not per call or per table).
    const std::vector<u32>& bit_rev() const { return *bitRev_; }

  private:
    std::size_t n_;
    unsigned logn_;
    u64 q_;
    std::shared_ptr<const std::vector<u32>> bitRev_;
    std::vector<u64> psiBr_;       ///< psi^bitrev(i)
    std::vector<u64> psiBrShoup_;  ///< Shoup precomputation of psiBr_
    std::vector<u64> ipsiBr_;      ///< psi^{-bitrev(i)}
    std::vector<u64> ipsiBrShoup_;
    u64 nInv_;
    u64 nInvShoup_;
};

/**
 * Schoolbook negacyclic convolution, O(n^2); ground truth for tests.
 * out = a * b over Z_q[X]/(X^n+1).
 */
void negacyclic_mul_naive(const u64 *a, const u64 *b, u64 *out,
                          std::size_t n, u64 q);

} // namespace poseidon

#endif // POSEIDON_NTT_NTT_H_
