#include "ntt/table_cache.h"

#include <map>
#include <mutex>
#include <utility>

#include "common/metric_sink.h"

namespace poseidon {

namespace {

struct TableCache
{
    std::mutex mu;
    std::map<std::pair<u64, u64>, std::weak_ptr<const NttTable>> tables;
    std::map<unsigned, std::shared_ptr<const std::vector<u32>>> bitrev;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

TableCache&
cache()
{
    static TableCache *c = new TableCache();
    return *c;
}

void
emit_event(const char *name, std::size_t live)
{
    const MetricSink &sink = metric_sink();
    if (sink.count) sink.count(name, 1.0);
    if (sink.gauge) {
        sink.gauge("ntt.table_cache.size", static_cast<double>(live));
    }
}

} // namespace

std::shared_ptr<const NttTable>
shared_ntt_table(std::size_t n, u64 q)
{
    TableCache &c = cache();
    auto key = std::make_pair(static_cast<u64>(n), q);
    {
        std::lock_guard<std::mutex> lk(c.mu);
        auto it = c.tables.find(key);
        if (it != c.tables.end()) {
            if (auto live = it->second.lock()) {
                ++c.hits;
                emit_event("ntt.table_cache.hit", c.tables.size());
                return live;
            }
            c.tables.erase(it); // stale: every holder released it
        }
    }

    // Build with the mutex RELEASED: NttTable's constructor calls
    // bit_reverse_table(), which takes the same lock, and the O(N)
    // power ladder should not serialize unrelated lookups anyway.
    auto table = std::make_shared<const NttTable>(n, q);

    std::lock_guard<std::mutex> lk(c.mu);
    auto it = c.tables.find(key);
    if (it != c.tables.end()) {
        if (auto live = it->second.lock()) {
            // Lost a construction race; adopt the winner's table so
            // every holder of (n, q) still shares one instance.
            ++c.hits;
            emit_event("ntt.table_cache.hit", c.tables.size());
            return live;
        }
    }
    ++c.misses;
    c.tables[key] = table;
    emit_event("ntt.table_cache.miss", c.tables.size());
    return table;
}

std::shared_ptr<const std::vector<u32>>
bit_reverse_table(unsigned logn)
{
    TableCache &c = cache();
    std::lock_guard<std::mutex> lk(c.mu);
    auto it = c.bitrev.find(logn);
    if (it != c.bitrev.end()) return it->second;
    std::size_t n = std::size_t(1) << logn;
    auto table = std::make_shared<std::vector<u32>>(n);
    for (std::size_t i = 0; i < n; ++i) {
        (*table)[i] = static_cast<u32>(bit_reverse(i, logn));
    }
    std::shared_ptr<const std::vector<u32>> frozen = std::move(table);
    c.bitrev[logn] = frozen;
    return frozen;
}

NttCacheStats
ntt_table_cache_stats()
{
    TableCache &c = cache();
    std::lock_guard<std::mutex> lk(c.mu);
    NttCacheStats s;
    s.hits = c.hits;
    s.misses = c.misses;
    for (const auto &e : c.tables) {
        if (!e.second.expired()) ++s.liveEntries;
    }
    return s;
}

void
clear_ntt_table_cache()
{
    TableCache &c = cache();
    std::lock_guard<std::mutex> lk(c.mu);
    c.tables.clear();
    c.bitrev.clear();
    c.hits = 0;
    c.misses = 0;
}

} // namespace poseidon
