#ifndef POSEIDON_NTT_FUSION_H_
#define POSEIDON_NTT_FUSION_H_

/**
 * @file
 * NTT-fusion: the radix-2^k NTT of Section III-A of the paper.
 *
 * Poseidon fuses k consecutive butterfly stages into one "fused TAM"
 * (Twiddle-Accumulate-Modulo) phase. A phase gathers 2^k strided
 * operands, applies the k stages entirely in local registers, and
 * scatters the results — cutting the number of memory passes from
 * log2(N) to ceil(log2(N)/k) and the modular reductions per 2^k-point
 * block from k*2^k to 2^k, at the cost of more twiddle factors.
 *
 * `NttFused` is the functional kernel (bit-exact with `NttTable`);
 * `FusionCostModel` reproduces Table II; `AccessPattern` reproduces the
 * per-iteration index strides of Table III / Fig. 5.
 */

#include <cstddef>
#include <vector>

#include "ntt/ntt.h"

namespace poseidon {

/// Runtime statistics gathered by the fused kernel.
struct FusedNttStats
{
    u64 phases = 0;          ///< memory passes over the polynomial
    u64 fusedBlocks = 0;     ///< 2^k-point local blocks processed
    u64 butterflies = 0;     ///< total butterfly operations
    u64 twiddleMuls = 0;     ///< modular multiplications by twiddles
};

/**
 * Radix-2^k fused forward NTT, bit-exact with NttTable::forward.
 *
 * The local 2^k-point blocks use the same bit-reversed psi table as the
 * reference transform; only the computation/memory schedule changes —
 * exactly the property the hardware exploits.
 */
class NttFused
{
  public:
    /**
     * @param table  reference tables for (N, q)
     * @param k      radix exponent (1 <= k <= 6); k=3 is the paper's pick
     */
    NttFused(const NttTable &table, unsigned k);

    /// In-place forward transform (natural -> bit-reversed order).
    void forward(u64 *a) const;

    /// In-place inverse transform (bit-reversed -> natural order),
    /// also executed as radix-2^k fused passes.
    void inverse(u64 *a) const;

    /// Statistics from all forward() calls since construction/reset.
    const FusedNttStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

    unsigned radix_log2() const { return k_; }

  private:
    const NttTable &table_;
    unsigned k_;
    mutable FusedNttStats stats_;
};

/**
 * Analytical cost model of NTT-fusion for a 2^k-point fused block —
 * reproduces Table II of the paper.
 */
struct FusionCostModel
{
    unsigned k = 3;

    /// Twiddle factors needed by a conventional (unfused) 2^k block.
    u64 twiddles_unfused() const;

    /**
     * Twiddle factors of the fused block. Values for k in [2,6] follow
     * Table II of the paper {2, 5, 13, 34, 85}.
     */
    u64 twiddles_fused() const;

    /// Multiplications (= additions) in the unfused block: k * 2^k.
    u64 mult_unfused() const;

    /**
     * Multiplications (= additions) in the fused block:
     * (2^k - 1) * 2^k. Matches Table II for k in [2,5]; the paper
     * prints 4160 for k=6 where the formula gives 4032 (we treat the
     * paper value as a typo and note it in EXPERIMENTS.md).
     */
    u64 mult_fused() const;

    /// Modular reductions per block: unfused k*2^k -> fused 2^k.
    u64 modred_unfused() const;
    u64 modred_fused() const;

    /// Memory passes for an N-point NTT: ceil(log2(N)/k).
    static u64 phases(std::size_t n, unsigned k);
};

/**
 * Data access pattern generator for the fused NTT (Table III, Fig. 5).
 * Iteration `it` (1-based) reads operands with stride 2^{k*(it-1)}:
 * iteration 1 is sequential (0..2^k-1), iteration 2 strides by 2^k, etc.
 */
struct AccessPattern
{
    std::size_t n;  ///< polynomial degree
    unsigned k;     ///< radix exponent

    /// Index stride between the operands of one fused block.
    u64 stride(unsigned iteration) const;

    /// The first `count` operand indices a core loads in `iteration`.
    std::vector<u64> first_block(unsigned iteration) const;

    /// Number of iterations (= phases) for this N and k.
    unsigned iterations() const;
};

} // namespace poseidon

#endif // POSEIDON_NTT_FUSION_H_
