#include "ntt/ntt.h"

#include "common/check.h"
#include "ntt/table_cache.h"

namespace poseidon {

NttTable::NttTable(std::size_t n, u64 q)
    : n_(n), logn_(log2_floor(n)), q_(q),
      bitRev_(bit_reverse_table(logn_))
{
    POSEIDON_REQUIRE(is_pow2(n) && n >= 2, "NttTable: N must be 2^k >= 2");
    POSEIDON_REQUIRE((q - 1) % (2 * n) == 0, "NttTable: q != 1 mod 2N");

    u64 psi = find_nth_root(2 * n, q);
    u64 ipsi = inv_mod(psi, q);

    psiBr_.resize(n);
    psiBrShoup_.resize(n);
    ipsiBr_.resize(n);
    ipsiBrShoup_.resize(n);

    // Powers in bit-reversed index order.
    std::vector<u64> pow(n), ipow(n);
    pow[0] = 1;
    ipow[0] = 1;
    for (std::size_t i = 1; i < n; ++i) {
        pow[i] = mul_mod(pow[i - 1], psi, q);
        ipow[i] = mul_mod(ipow[i - 1], ipsi, q);
    }
    const std::vector<u32> &br = *bitRev_;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = br[i];
        psiBr_[i] = pow[r];
        ipsiBr_[i] = ipow[r];
        psiBrShoup_[i] = static_cast<u64>((u128(psiBr_[i]) << 64) / q);
        ipsiBrShoup_[i] = static_cast<u64>((u128(ipsiBr_[i]) << 64) / q);
    }
    nInv_ = inv_mod(static_cast<u64>(n % q), q);
    nInvShoup_ = static_cast<u64>((u128(nInv_) << 64) / q);
}

void
NttTable::forward(u64 *a) const
{
    const u64 q = q_;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j1 = 2 * i * t;
            u64 w = psiBr_[m + i];
            u64 ws = psiBrShoup_[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = mul_shoup(a[j + t], w, ws, q);
                a[j] = add_mod(u, v, q);
                a[j + t] = sub_mod(u, v, q);
            }
        }
    }
}

void
NttTable::inverse(u64 *a) const
{
    const u64 q = q_;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            u64 w = ipsiBr_[h + i];
            u64 ws = ipsiBrShoup_[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                a[j] = add_mod(u, v, q);
                a[j + t] = mul_shoup(sub_mod(u, v, q), w, ws, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n_; ++j) {
        a[j] = mul_shoup(a[j], nInv_, nInvShoup_, q);
    }
}

void
negacyclic_mul_naive(const u64 *a, const u64 *b, u64 *out, std::size_t n,
                     u64 q)
{
    for (std::size_t k = 0; k < n; ++k) out[k] = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] == 0) continue;
        for (std::size_t j = 0; j < n; ++j) {
            u64 p = mul_mod(a[i], b[j], q);
            std::size_t k = i + j;
            if (k < n) {
                out[k] = add_mod(out[k], p, q);
            } else {
                out[k - n] = sub_mod(out[k - n], p, q);
            }
        }
    }
}

} // namespace poseidon
