#include "ntt/ntt.h"

#include "common/check.h"
#include "kernels/kernels.h"
#include "ntt/table_cache.h"

namespace poseidon {

NttTable::NttTable(std::size_t n, u64 q)
    : n_(n), logn_(log2_floor(n)), q_(q),
      bitRev_(bit_reverse_table(logn_))
{
    POSEIDON_REQUIRE(is_pow2(n) && n >= 2, "NttTable: N must be 2^k >= 2");
    POSEIDON_REQUIRE((q - 1) % (2 * n) == 0, "NttTable: q != 1 mod 2N");

    u64 psi = find_nth_root(2 * n, q);
    u64 ipsi = inv_mod(psi, q);

    psiBr_.resize(n);
    psiBrShoup_.resize(n);
    ipsiBr_.resize(n);
    ipsiBrShoup_.resize(n);

    // Powers in bit-reversed index order.
    std::vector<u64> pow(n), ipow(n);
    pow[0] = 1;
    ipow[0] = 1;
    for (std::size_t i = 1; i < n; ++i) {
        pow[i] = mul_mod(pow[i - 1], psi, q);
        ipow[i] = mul_mod(ipow[i - 1], ipsi, q);
    }
    const std::vector<u32> &br = *bitRev_;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = br[i];
        psiBr_[i] = pow[r];
        ipsiBr_[i] = ipow[r];
        psiBrShoup_[i] = static_cast<u64>((u128(psiBr_[i]) << 64) / q);
        ipsiBrShoup_[i] = static_cast<u64>((u128(ipsiBr_[i]) << 64) / q);
    }
    nInv_ = inv_mod(static_cast<u64>(n % q), q);
    nInvShoup_ = static_cast<u64>((u128(nInv_) << 64) / q);
}

// Both transforms dispatch through the SIMD kernel layer; the scalar
// kernel backend holds the loops that used to live here, so
// POSEIDON_SIMD=scalar reproduces the historical code path exactly.

void
NttTable::forward(u64 *a) const
{
    kernels::ntt_forward(a, n_, logn_, psiBr_.data(),
                         psiBrShoup_.data(), q_);
}

void
NttTable::inverse(u64 *a) const
{
    kernels::ntt_inverse(a, n_, logn_, ipsiBr_.data(),
                         ipsiBrShoup_.data(), nInv_, nInvShoup_, q_);
}

void
negacyclic_mul_naive(const u64 *a, const u64 *b, u64 *out, std::size_t n,
                     u64 q)
{
    for (std::size_t k = 0; k < n; ++k) out[k] = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] == 0) continue;
        for (std::size_t j = 0; j < n; ++j) {
            u64 p = mul_mod(a[i], b[j], q);
            std::size_t k = i + j;
            if (k < n) {
                out[k] = add_mod(out[k], p, q);
            } else {
                out[k - n] = sub_mod(out[k - n], p, q);
            }
        }
    }
}

} // namespace poseidon
