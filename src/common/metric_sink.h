#ifndef POSEIDON_COMMON_METRIC_SINK_H_
#define POSEIDON_COMMON_METRIC_SINK_H_

/**
 * @file
 * Dependency inversion for low-layer instrumentation.
 *
 * `common` sits below `telemetry` in the library graph, so code living
 * here (the parallel execution engine, the NTT table cache) cannot call
 * the metrics registry directly. Instead it emits through this sink: a
 * trio of plain function pointers that the telemetry library installs
 * once at startup (see MetricsRegistry::global()). Until a sink is
 * installed every emission is a no-op, so common stays dependency-free
 * and telemetry-off builds pay nothing.
 *
 * The installed sink is published through an atomic pointer to an
 * immutable struct, so concurrent readers (pool workers) never race
 * with installation.
 */

namespace poseidon {

/// Instrument callbacks. Null members are simply skipped.
struct MetricSink
{
    /// Add `v` to the counter `name`.
    void (*count)(const char *name, double v) = nullptr;
    /// Set the gauge `name` to `v`.
    void (*gauge)(const char *name, double v) = nullptr;
    /// Observe `v` into the histogram `name`.
    void (*observe)(const char *name, double v) = nullptr;
};

/// Install the process-wide sink (first install wins; later calls are
/// ignored so a test cannot accidentally swap telemetry out mid-run).
void install_metric_sink(const MetricSink &sink);

/// The installed sink, or a struct of null pointers when none is.
const MetricSink& metric_sink();

} // namespace poseidon

#endif // POSEIDON_COMMON_METRIC_SINK_H_
