#include "common/metric_sink.h"

#include <atomic>

namespace poseidon {

namespace {

const MetricSink kNullSink{};

std::atomic<const MetricSink*> gSink{&kNullSink};

} // namespace

void
install_metric_sink(const MetricSink &sink)
{
    // Leaked on purpose: emitters may hold the pointer across the
    // whole process lifetime, including static destruction.
    const MetricSink *expected = &kNullSink;
    auto *copy = new MetricSink(sink);
    if (!gSink.compare_exchange_strong(expected, copy,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
        delete copy; // somebody else won the race; keep theirs
    }
}

const MetricSink&
metric_sink()
{
    return *gSink.load(std::memory_order_acquire);
}

} // namespace poseidon
