#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace poseidon {

void
AsciiTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
AsciiTable::row(std::vector<std::string> cols)
{
    POSEIDON_REQUIRE(header_.empty() || cols.size() == header_.size(),
                     "AsciiTable: row width mismatch");
    rows_.push_back(std::move(cols));
}

std::string
AsciiTable::str() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i >= width.size()) width.resize(i + 1, 0);
            width[i] = std::max(width[i], r[i].size());
        }
    };
    widen(header_);
    for (const auto &r : rows_) widen(r);

    auto line = [&]() {
        std::string s = "+";
        for (auto w : width) s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };
    auto fmt_row = [&](const std::vector<std::string> &r) {
        std::string s = "|";
        for (std::size_t i = 0; i < width.size(); ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            s += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::ostringstream os;
    os << "\n== " << title_ << " ==\n";
    os << line();
    if (!header_.empty()) {
        os << fmt_row(header_) << line();
    }
    for (const auto &r : rows_) os << fmt_row(r);
    os << line();
    return os.str();
}

void
AsciiTable::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
AsciiTable::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
AsciiTable::speedup(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", digits, v);
    return buf;
}

} // namespace poseidon
