#ifndef POSEIDON_COMMON_MODMATH_H_
#define POSEIDON_COMMON_MODMATH_H_

/**
 * @file
 * 64-bit modular arithmetic primitives used throughout Poseidon.
 *
 * All moduli handled here are < 2^62 so that `a + b` of two reduced
 * operands never overflows an unsigned 64-bit word. The FHE layers use
 * word-sized NTT primes (typically 28-60 bits); the hardware model's
 * 32-bit lane width is a separate, orthogonal parameter.
 *
 * Two modular-multiplication strategies are provided:
 *  - `mul_mod` via native 128-bit arithmetic (reference, always correct);
 *  - `Barrett64`, the precomputed Barrett reducer that mirrors the
 *    "Shared Barrett Reduction (SBT)" operator in the Poseidon paper;
 *  - `ShoupMul`, a Shoup-precomputed multiplication for fixed multiplicands
 *    (twiddle factors), matching what high-throughput NTT cores do.
 */

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace poseidon {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i64 = std::int64_t;

/// Maximum supported modulus (exclusive bound), 2^62.
inline constexpr u64 kMaxModulus = u64(1) << 62;

/// (a + b) mod q for reduced a, b < q < 2^62.
inline u64
add_mod(u64 a, u64 b, u64 q)
{
    u64 s = a + b;
    return s >= q ? s - q : s;
}

/// (a - b) mod q for reduced a, b < q.
inline u64
sub_mod(u64 a, u64 b, u64 q)
{
    return a >= b ? a - b : a + q - b;
}

/// -a mod q for reduced a < q.
inline u64
neg_mod(u64 a, u64 q)
{
    return a == 0 ? 0 : q - a;
}

/// (a * b) mod q via 128-bit widening; reference implementation.
inline u64
mul_mod(u64 a, u64 b, u64 q)
{
    return static_cast<u64>((u128(a) * b) % q);
}

/// a^e mod q by square-and-multiply.
u64 pow_mod(u64 a, u64 e, u64 q);

/// Modular inverse of a mod q (q need not be prime; requires gcd==1).
u64 inv_mod(u64 a, u64 q);

/// Deterministic Miller-Rabin primality test, valid for all 64-bit inputs.
bool is_prime(u64 n);

/// Reverse the low `bits` bits of `x`.
inline u64
bit_reverse(u64 x, unsigned bits)
{
    u64 r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/// true iff x is a power of two (and nonzero).
inline bool
is_pow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x >= 1.
inline unsigned
log2_floor(u64 x)
{
    unsigned r = 0;
    while (x >>= 1) ++r;
    return r;
}

/**
 * Barrett reducer for a fixed modulus q < 2^62.
 *
 * This is the software model of the paper's SBT (Shared Barrett
 * Reduction) operator: one precomputed reciprocal `mu = floor(2^128/q)`
 * (stored as a 128-bit value split across two 64-bit words) turns the
 * division in a modular reduction into two multiplications and a shift,
 * exactly the transformation Fig. 3 of the paper performs in hardware.
 */
class Barrett64
{
  public:
    Barrett64() = default;

    /// Precompute the Barrett constant for modulus q (1 < q < 2^62).
    explicit Barrett64(u64 q);

    /// The modulus.
    u64 modulus() const { return q_; }

    /// Reduce a 128-bit value to [0, q).
    u64
    reduce(u128 x) const
    {
        // mu = floor(2^128 / q) is held as (muHi_ * 2^64 + muLo_).
        u64 xhi = static_cast<u64>(x >> 64);
        u64 xlo = static_cast<u64>(x);
        // quot = floor((x * mu) / 2^128), computed *exactly* from the
        // four partial products: x*mu = hi*2^128 + (midA + midB)*2^64
        // + xlo*muLo, and `carry` is precisely the overflow of the
        // middle column into bit 128.
        u128 midA = u128(xhi) * muLo_;
        u128 midB = u128(xlo) * muHi_;
        u128 hi = u128(xhi) * muHi_;
        u128 carry = (u128(static_cast<u64>(midA)) +
                      u128(static_cast<u64>(midB)) +
                      (u128(xlo) * muLo_ >> 64)) >> 64;
        u128 quot = hi + (midA >> 64) + (midB >> 64) + carry;
        // Quotient-error bound (so the old `while (r >= q)` loop is
        // provably at most one branchless conditional subtraction —
        // well inside the classical two-subtraction Barrett bound):
        // write mu = (2^128 - rho)/q with rho = 2^128 mod q in [0, q).
        // Then x*mu/2^128 = x/q - x*rho/(q*2^128) > x/q - rho/q
        // >= x/q - 1 since x < 2^128 and rho < q. With Q = floor(x/q)
        // this gives quot >= Q - 1, and quot <= x*mu/2^128 <= x/q
        // gives quot <= Q. Hence r = x - quot*q is in [0, 2q), and
        // 2q < 2^63, so r fits a u64 and one subtraction finishes.
        u64 r = static_cast<u64>(x - quot * q_);
        r -= q_ & (0 - static_cast<u64>(r >= q_));
        return r;
    }

    /// (a * b) mod q with reduced inputs.
    u64
    mul(u64 a, u64 b) const
    {
        return reduce(u128(a) * b);
    }

  private:
    u64 q_ = 0;
    u64 muHi_ = 0;  ///< floor(2^128/q) >> 64
    u64 muLo_ = 0;  ///< floor(2^128/q) & (2^64-1)
};

/**
 * Shoup-style multiplication by a fixed constant w modulo q.
 *
 * Precomputing w' = floor(w * 2^64 / q) makes `mul(a)` a single high
 * multiplication plus one correction — the standard trick for twiddle
 * multiplication in NTT hardware pipelines.
 */
class ShoupMul
{
  public:
    ShoupMul() = default;

    ShoupMul(u64 w, u64 q)
        : w_(w), q_(q),
          wshoup_(static_cast<u64>((u128(w) << 64) / q))
    {
        // w >= q makes floor(w * 2^64 / q) overflow 64 bits and mul()
        // silently wrong; the precondition was previously assumed.
        POSEIDON_REQUIRE(w < q,
                         "ShoupMul: constant " << w
                         << " not reduced mod " << q);
    }

    u64 value() const { return w_; }

    u64
    mul(u64 a) const
    {
        u64 hi = static_cast<u64>((u128(a) * wshoup_) >> 64);
        u64 r = a * w_ - hi * q_;
        return r >= q_ ? r - q_ : r;
    }

  private:
    u64 w_ = 0;
    u64 q_ = 0;
    u64 wshoup_ = 0;
};

/**
 * Shoup multiplication with caller-held constants: a * w mod q where
 * wshoup = floor(w * 2^64 / q). This is the loose-constant form of
 * ShoupMul::mul used by the NTT butterflies (reference and fused),
 * which stream (w, wshoup) pairs out of precomputed twiddle tables.
 */
inline u64
mul_shoup(u64 a, u64 w, u64 wshoup, u64 q)
{
    // Same precondition as ShoupMul (w reduced mod q), debug-checked
    // only: this is the innermost butterfly primitive.
    POSEIDON_DCHECK(w < q, "mul_shoup: constant " << w
                               << " not reduced mod " << q);
    u64 hi = static_cast<u64>((u128(a) * wshoup) >> 64);
    u64 r = a * w - hi * q;
    return r >= q ? r - q : r;
}

/// Find a generator of the multiplicative group (Z/q)* for prime q.
u64 find_primitive_root(u64 q);

/// Find a primitive n-th root of unity mod prime q (requires n | q-1).
u64 find_nth_root(u64 n, u64 q);

/// Centered representative of x mod q in (-q/2, q/2].
inline i64
centered(u64 x, u64 q)
{
    return x > q / 2 ? static_cast<i64>(x) - static_cast<i64>(q)
                     : static_cast<i64>(x);
}

} // namespace poseidon

#endif // POSEIDON_COMMON_MODMATH_H_
