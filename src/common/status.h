#ifndef POSEIDON_COMMON_STATUS_H_
#define POSEIDON_COMMON_STATUS_H_

/**
 * @file
 * Typed error hierarchy for the Poseidon library.
 *
 * The deployment model (paper Fig. 1) has an untrusted server ingesting
 * client bytes and an FPGA+HBM datapath executing on them; every
 * failure at that boundary must be classifiable so the service layer
 * can map it to a structured response instead of dying. Each error
 * carries a stable ErrorCode, the failing source location, and a
 * human-readable context string.
 *
 *   Error                   base (std::runtime_error)
 *   ├─ InvalidArgument      bad parameter / API misuse
 *   ├─ ParseError           malformed, truncated or adversarial bytes
 *   ├─ ShapeMismatch        level / scale / limb-count disagreement
 *   ├─ NoiseBudgetExhausted no modulus level left for the operation
 *   ├─ FaultDetected        hardware fault surfaced past ECC
 *   ├─ Overloaded           admission control shed the work
 *   └─ InternalError        library invariant broken (was abort())
 *
 * The POSEIDON_REQUIRE / POSEIDON_CHECK macros in common/check.h are
 * built on this hierarchy.
 */

#include <stdexcept>
#include <string>

namespace poseidon {

/// Stable error category codes (wire-format safe for error frames).
enum class ErrorCode : unsigned {
    kOk = 0,
    kInvalidArgument = 1,
    kParseError = 2,
    kShapeMismatch = 3,
    kNoiseBudgetExhausted = 4,
    kFaultDetected = 5,
    kInternal = 6,
    kOverloaded = 7,
};

/// Short stable name for an error code ("InvalidArgument", ...).
const char* to_string(ErrorCode code);

/// Base class of every Poseidon error.
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string &message,
          const char *file = nullptr, int line = 0);

    ErrorCode code() const { return code_; }

    /// The undecorated context string passed at the throw site.
    const std::string& message() const { return message_; }

    /// Source file of the throw site ("" when unknown).
    const std::string& file() const { return file_; }
    int line() const { return line_; }

  private:
    ErrorCode code_;
    std::string message_;
    std::string file_;
    int line_;
};

/// Bad parameter or API misuse by the caller.
class InvalidArgument : public Error
{
  public:
    explicit InvalidArgument(const std::string &message,
                             const char *file = nullptr, int line = 0)
        : Error(ErrorCode::kInvalidArgument, message, file, line) {}
};

/// Malformed, truncated or adversarial serialized bytes.
class ParseError : public Error
{
  public:
    explicit ParseError(const std::string &message,
                        const char *file = nullptr, int line = 0)
        : Error(ErrorCode::kParseError, message, file, line) {}
};

/// Operands disagree on level, scale or limb count.
class ShapeMismatch : public Error
{
  public:
    explicit ShapeMismatch(const std::string &message,
                           const char *file = nullptr, int line = 0)
        : Error(ErrorCode::kShapeMismatch, message, file, line) {}
};

/// No modulus level / scale headroom left for the requested operation.
class NoiseBudgetExhausted : public Error
{
  public:
    explicit NoiseBudgetExhausted(const std::string &message,
                                  const char *file = nullptr, int line = 0)
        : Error(ErrorCode::kNoiseBudgetExhausted, message, file, line) {}
};

/// A memory/datapath fault surfaced past the ECC layer (possibly
/// transient: callers may retry a bounded number of times).
class FaultDetected : public Error
{
  public:
    explicit FaultDetected(const std::string &message,
                           const char *file = nullptr, int line = 0)
        : Error(ErrorCode::kFaultDetected, message, file, line) {}
};

/// The service is over capacity and shed this work under admission
/// control (queue-depth or deadline-feasibility). Clients should back
/// off and resubmit; the request itself was well-formed.
class Overloaded : public Error
{
  public:
    explicit Overloaded(const std::string &message,
                        const char *file = nullptr, int line = 0)
        : Error(ErrorCode::kOverloaded, message, file, line) {}
};

/// A library invariant failed — indicates a Poseidon bug, not misuse.
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &message,
                           const char *file = nullptr, int line = 0)
        : Error(ErrorCode::kInternal, message, file, line) {}
};

} // namespace poseidon

#endif // POSEIDON_COMMON_STATUS_H_
