#include "common/status.h"

#include <sstream>

namespace poseidon {

namespace {

std::string
format_what(ErrorCode code, const std::string &message,
            const char *file, int line)
{
    std::ostringstream oss;
    oss << "poseidon: [" << to_string(code) << "] " << message;
    if (file != nullptr && *file != '\0') {
        oss << " (" << file << ":" << line << ")";
    }
    return oss.str();
}

} // namespace

const char*
to_string(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk: return "Ok";
      case ErrorCode::kInvalidArgument: return "InvalidArgument";
      case ErrorCode::kParseError: return "ParseError";
      case ErrorCode::kShapeMismatch: return "ShapeMismatch";
      case ErrorCode::kNoiseBudgetExhausted: return "NoiseBudgetExhausted";
      case ErrorCode::kFaultDetected: return "FaultDetected";
      case ErrorCode::kInternal: return "Internal";
      case ErrorCode::kOverloaded: return "Overloaded";
    }
    return "Unknown";
}

Error::Error(ErrorCode code, const std::string &message,
             const char *file, int line)
    : std::runtime_error(format_what(code, message, file, line)),
      code_(code),
      message_(message),
      file_(file != nullptr ? file : ""),
      line_(line)
{}

} // namespace poseidon
