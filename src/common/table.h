#ifndef POSEIDON_COMMON_TABLE_H_
#define POSEIDON_COMMON_TABLE_H_

/**
 * @file
 * Minimal ASCII table formatter used by the benchmark harness to print
 * the paper's tables/figures as aligned text.
 */

#include <string>
#include <vector>

namespace poseidon {

/// Column-aligned ASCII table with a title, header row, and data rows.
class AsciiTable
{
  public:
    explicit AsciiTable(std::string title) : title_(std::move(title)) {}

    /// Set the header row (column names).
    void header(std::vector<std::string> cols);

    /// Append a data row; must match the header width.
    void row(std::vector<std::string> cols);

    /// Render to a string with box-drawing separators.
    std::string str() const;

    /// Render and write to stdout.
    void print() const;

    /// Format a double with the given number of fraction digits.
    static std::string num(double v, int digits = 2);

    /// Format "<v>x" speedup strings.
    static std::string speedup(double v, int digits = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace poseidon

#endif // POSEIDON_COMMON_TABLE_H_
