#ifndef POSEIDON_COMMON_PARALLEL_H_
#define POSEIDON_COMMON_PARALLEL_H_

/**
 * @file
 * Host-side parallel execution engine.
 *
 * RNS-CKKS work decomposes naturally across residue channels: every
 * limb lives under its own prime, so per-limb NTTs, element-wise
 * arithmetic and base-conversion columns are embarrassingly parallel —
 * the same property Poseidon exploits with 512 hardware lanes. This
 * module exploits it in host threads so the functional layer and the
 * benches stop running single-threaded while every other core idles.
 *
 * Design contract (see DESIGN.md §8):
 *
 *  - One lazily started process-wide pool. Size comes from the
 *    POSEIDON_THREADS environment variable, defaulting to
 *    std::thread::hardware_concurrency(); POSEIDON_THREADS=1 is the
 *    fully serial fallback and never starts a single worker.
 *  - `parallel_for(begin, end, grain, fn)` partitions [begin, end)
 *    into at most `threads` contiguous chunks of at least `grain`
 *    indices and invokes fn(chunkBegin, chunkEnd) for each, possibly
 *    concurrently. Chunk geometry depends only on (range, grain,
 *    thread count) — never on timing — and chunks are disjoint, so any
 *    body with chunk-local writes produces bit-identical results at
 *    every thread count. This is *host wall-clock* optimization only;
 *    simulated cycle counts are computed elsewhere and are unaffected.
 *  - Exceptions thrown by fn are captured (first one wins) and
 *    rethrown on the calling thread after the region completes.
 *  - Nested parallel_for calls execute inline on the calling worker,
 *    so composing parallel code cannot deadlock the pool.
 *
 * The engine is dependency-free (std only). It reports
 * `parallel.regions` / `parallel.tasks` counters, a
 * `parallel.threads` gauge and per-region `parallel.region_us.<name>`
 * histograms through the common MetricSink, which the telemetry
 * library installs when present.
 */

#include <cstddef>
#include <cstdint>
#include <functional>

namespace poseidon::parallel {

/// Worker count the pool targets (env default until overridden).
std::size_t num_threads();

/**
 * Override the pool size: joins any running workers and re-reads the
 * target (n == 0 restores the POSEIDON_THREADS / hardware default).
 * Blocks until the pool is idle; do not call concurrently with
 * parallel_for from another thread. Intended for tests and the
 * thread-scaling bench.
 */
void set_num_threads(std::size_t n);

/// true while the calling thread is executing inside a parallel_for
/// body (used to run nested regions inline).
bool in_parallel_region();

/**
 * Deterministic statically partitioned parallel loop over
 * [begin, end). fn(chunkBegin, chunkEnd) is called for disjoint
 * contiguous chunks covering the range in full. Runs serially (one
 * chunk, calling thread) when the pool has one thread, when the range
 * cannot be split into >= 2 chunks of `grain` indices, or when called
 * from inside another parallel region.
 *
 * @param grain   minimum indices per chunk (0 is treated as 1)
 * @param region  optional static name for per-region telemetry
 */
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)> &fn,
                  const char *region = nullptr);

/// Aggregate pool statistics (always maintained, telemetry or not).
struct PoolStats
{
    std::size_t threads = 0;      ///< current target pool size
    std::uint64_t regions = 0;    ///< parallel_for calls issued
    std::uint64_t tasks = 0;      ///< chunks executed across regions
    std::uint64_t serialRegions = 0; ///< regions that ran inline
};

PoolStats pool_stats();

} // namespace poseidon::parallel

#endif // POSEIDON_COMMON_PARALLEL_H_
