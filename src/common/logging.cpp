#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace poseidon::log {

const char*
to_string(Level lv)
{
    switch (lv) {
      case Level::TRACE: return "TRACE";
      case Level::DEBUG: return "DEBUG";
      case Level::INFO: return "INFO";
      case Level::WARN: return "WARN";
      case Level::ERROR: return "ERROR";
      case Level::OFF: return "OFF";
    }
    return "?";
}

Level
parse_level(const std::string &text, Level fallback)
{
    bool recognized = false;
    return parse_level(text, fallback, &recognized);
}

Level
parse_level(const std::string &text, Level fallback, bool *recognized)
{
    std::string t;
    t.reserve(text.size());
    for (char c : text) {
        t += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    *recognized = true;
    if (t == "trace") return Level::TRACE;
    if (t == "debug") return Level::DEBUG;
    if (t == "info") return Level::INFO;
    if (t == "warn" || t == "warning") return Level::WARN;
    if (t == "error") return Level::ERROR;
    if (t == "off" || t == "none") return Level::OFF;
    *recognized = false;
    return fallback;
}

namespace {

std::atomic<int>&
threshold_storage()
{
    static std::atomic<int> lv = [] {
        Level initial = Level::WARN;
        if (const char *env = std::getenv("POSEIDON_LOG_LEVEL")) {
            bool recognized = false;
            initial = parse_level(env, initial, &recognized);
            if (!recognized) {
                // Once, at first use: a typo'd level must not
                // silently mute (or unmute) the process.
                std::fprintf(stderr,
                             "[poseidon] POSEIDON_LOG_LEVEL=\"%s\" is "
                             "not a log level (trace|debug|info|warn|"
                             "error|off); keeping default %s\n",
                             env, to_string(initial));
            }
        }
        return std::atomic<int>(static_cast<int>(initial));
    }();
    return lv;
}

const char*
basename_of(const char *path)
{
    const char *slash = std::strrchr(path, '/');
    return slash ? slash + 1 : path;
}

} // namespace

Level
threshold()
{
    return static_cast<Level>(
        threshold_storage().load(std::memory_order_relaxed));
}

void
set_threshold(Level lv)
{
    threshold_storage().store(static_cast<int>(lv),
                              std::memory_order_relaxed);
}

LogMessage::LogMessage(Level lv, const char *file, int line)
    : lv_(lv), file_(file), line_(line)
{
}

LogMessage::~LogMessage()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point t0 = clock::now();
    double sec =
        std::chrono::duration<double>(clock::now() - t0).count();
    int h = static_cast<int>(sec / 3600);
    int m = static_cast<int>(sec / 60) % 60;
    double s = sec - 3600.0 * h - 60.0 * m;
    // One fprintf per line keeps concurrent messages unsheared.
    std::fprintf(stderr, "[poseidon %c %02d:%02d:%06.3f %s:%d] %s\n",
                 to_string(lv_)[0], h, m, s, basename_of(file_), line_,
                 oss_.str().c_str());
}

} // namespace poseidon::log
