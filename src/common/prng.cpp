#include "common/prng.h"

#include <cmath>

#include "common/check.h"

namespace poseidon {

namespace {

inline u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/// splitmix64, used only to expand the seed into xoshiro state.
inline u64
splitmix64(u64 &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

Prng::Prng(u64 seed)
{
    u64 x = seed;
    for (auto &s : s_) s = splitmix64(x);
    // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

void
Prng::check_owner()
{
    std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    // CAS so first-draw binding is race-free: of two threads racing on
    // a fresh (or just-rebound) instance, exactly one becomes owner
    // and the other trips the assert below (expected then holds the
    // winner's id).
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
        return;
    }
    POSEIDON_REQUIRE(expected == self,
                     "Prng: drawn from a second thread. A Prng stream "
                     "is thread-confined for reproducibility; sample "
                     "outside the parallel region or call "
                     "rebind_thread() for an explicit handoff");
}

u64
Prng::next()
{
    check_owner();
    u64 result = rotl(s_[1] * 5, 7) * 9;
    u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Prng::uniform(u64 bound)
{
    POSEIDON_REQUIRE(bound >= 1, "uniform: bound must be >= 1");
    // Rejection sampling to remove modulo bias.
    u64 threshold = (0 - bound) % bound; // (2^64 - bound) mod bound
    for (;;) {
        u64 r = next();
        if (r >= threshold) return r % bound;
    }
}

double
Prng::uniform_double()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Prng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniform_double();
    } while (u1 <= 1e-300);
    u2 = uniform_double();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

std::vector<i64>
Sampler::ternary(std::size_t n)
{
    std::vector<i64> out(n);
    for (auto &v : out) {
        u64 r = prng_.uniform(3);
        v = static_cast<i64>(r) - 1;
    }
    return out;
}

std::vector<i64>
Sampler::sparse_ternary(std::size_t n, std::size_t h)
{
    POSEIDON_REQUIRE(h <= n, "sparse_ternary: h > n");
    std::vector<i64> out(n, 0);
    std::size_t placed = 0;
    while (placed < h) {
        std::size_t idx = prng_.uniform(n);
        if (out[idx] == 0) {
            out[idx] = (prng_.uniform(2) == 0) ? -1 : 1;
            ++placed;
        }
    }
    return out;
}

std::vector<i64>
Sampler::gaussian(std::size_t n, double sigma)
{
    std::vector<i64> out(n);
    for (auto &v : out) {
        v = static_cast<i64>(std::llround(prng_.gaussian() * sigma));
    }
    return out;
}

std::vector<u64>
Sampler::uniform_mod(std::size_t n, u64 q)
{
    std::vector<u64> out(n);
    for (auto &v : out) v = prng_.uniform(q);
    return out;
}

} // namespace poseidon
