#include "common/modmath.h"

#include "common/check.h"

namespace poseidon {

u64
pow_mod(u64 a, u64 e, u64 q)
{
    u64 r = 1 % q;
    a %= q;
    while (e) {
        if (e & 1) r = mul_mod(r, a, q);
        a = mul_mod(a, a, q);
        e >>= 1;
    }
    return r;
}

u64
inv_mod(u64 a, u64 q)
{
    // Extended Euclid on signed 128-bit to avoid overflow.
    __int128 t = 0, newt = 1;
    __int128 r = q, newr = a % q;
    while (newr != 0) {
        __int128 quot = r / newr;
        __int128 tmp = t - quot * newt;
        t = newt;
        newt = tmp;
        tmp = r - quot * newr;
        r = newr;
        newr = tmp;
    }
    POSEIDON_REQUIRE(r == 1, "inv_mod: element not invertible");
    if (t < 0) t += q;
    return static_cast<u64>(t);
}

namespace {

bool
miller_rabin(u64 n, u64 a)
{
    if (a % n == 0) return true;
    u64 d = n - 1;
    unsigned s = 0;
    while ((d & 1) == 0) { d >>= 1; ++s; }
    u64 x = pow_mod(a, d, n);
    if (x == 1 || x == n - 1) return true;
    for (unsigned i = 1; i < s; ++i) {
        x = mul_mod(x, x, n);
        if (x == n - 1) return true;
    }
    return false;
}

} // namespace

bool
is_prime(u64 n)
{
    if (n < 2) return false;
    for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                  23ull, 29ull, 31ull, 37ull}) {
        if (n == p) return true;
        if (n % p == 0) return false;
    }
    // Deterministic witness set for 64-bit integers.
    for (u64 a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                  23ull, 29ull, 31ull, 37ull}) {
        if (!miller_rabin(n, a)) return false;
    }
    return true;
}

Barrett64::Barrett64(u64 q)
    : q_(q)
{
    POSEIDON_REQUIRE(q > 1 && q < kMaxModulus, "Barrett64: bad modulus");
    // mu = floor(2^128 / q). Compute via long division of 2^128 by q.
    // 2^128 / q = ((2^64 / q) * 2^64 + ((2^64 mod q) * 2^64) / q)  (approx.)
    // Do exact 128/64 long division digit by digit instead.
    u128 rem = 0;
    u64 hi = 0, lo = 0;
    for (int bit = 127; bit >= 0; --bit) {
        rem <<= 1;
        rem |= 1;  // numerator 2^128 - 1; floor((2^128-1)/q) == floor(2^128/q)
                   // unless q divides 2^128, impossible for odd q > 1.
        if (rem >= q) {
            rem -= q;
            if (bit >= 64) {
                hi |= u64(1) << (bit - 64);
            } else {
                lo |= u64(1) << bit;
            }
        }
    }
    muHi_ = hi;
    muLo_ = lo;
}

u64
find_primitive_root(u64 q)
{
    POSEIDON_REQUIRE(is_prime(q), "find_primitive_root: q must be prime");
    u64 phi = q - 1;
    // Factor phi (trial division; fine for the 28-60 bit primes we use).
    std::vector<u64> factors;
    u64 m = phi;
    for (u64 p = 2; p * p <= m; p += (p == 2 ? 1 : 2)) {
        if (m % p == 0) {
            factors.push_back(p);
            while (m % p == 0) m /= p;
        }
    }
    if (m > 1) factors.push_back(m);
    for (u64 g = 2; g < q; ++g) {
        bool ok = true;
        for (u64 f : factors) {
            if (pow_mod(g, phi / f, q) == 1) { ok = false; break; }
        }
        if (ok) return g;
    }
    POSEIDON_CHECK(false, "no primitive root found");
    return 0;
}

u64
find_nth_root(u64 n, u64 q)
{
    POSEIDON_REQUIRE((q - 1) % n == 0, "find_nth_root: n must divide q-1");
    u64 g = find_primitive_root(q);
    u64 w = pow_mod(g, (q - 1) / n, q);
    POSEIDON_CHECK(pow_mod(w, n, q) == 1, "nth root sanity");
    POSEIDON_CHECK(n == 1 || pow_mod(w, n / 2, q) != 1, "root is primitive");
    return w;
}

} // namespace poseidon
