#ifndef POSEIDON_COMMON_CHECK_H_
#define POSEIDON_COMMON_CHECK_H_

/**
 * @file
 * Check macros used across the Poseidon library, built on the typed
 * error hierarchy in common/status.h. (Formerly misnamed
 * common/logging.h — the leveled logger now lives there.)
 *
 * `POSEIDON_REQUIRE` guards user-facing preconditions (bad parameters
 * -> poseidon::InvalidArgument); `POSEIDON_CHECK` guards internal
 * invariants (library bugs -> poseidon::InternalError). Both record
 * the stringified condition, file and line, and accept streamed
 * messages:
 *
 *   POSEIDON_REQUIRE(limbs <= L, "got " << limbs << " limbs, max " << L);
 *
 * `POSEIDON_REQUIRE_T` throws a specific error type from status.h
 * (ShapeMismatch, ParseError, NoiseBudgetExhausted, FaultDetected),
 * and `POSEIDON_THROW` throws unconditionally.
 */

#include <sstream>
#include <string>

#include "common/status.h"

namespace poseidon {

/// Throw a typed error with file/line and a streamed message.
#define POSEIDON_THROW(ErrType, msg)                                       \
    do {                                                                   \
        std::ostringstream poseidon_oss_;                                  \
        poseidon_oss_ << msg; /* NOLINT: streamed composition */           \
        throw ::poseidon::ErrType(poseidon_oss_.str(), __FILE__,           \
                                  __LINE__);                               \
    } while (0)

/// Precondition with an explicit error type from status.h.
#define POSEIDON_REQUIRE_T(ErrType, cond, msg)                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            POSEIDON_THROW(ErrType, msg << " [" #cond "]");                \
        }                                                                  \
    } while (0)

/// User-facing precondition: failure indicates bad input/parameters.
#define POSEIDON_REQUIRE(cond, msg)                                        \
    POSEIDON_REQUIRE_T(InvalidArgument, cond, msg)

/// Internal invariant check: failure indicates a library bug. Throws
/// (rather than aborting) so a serving boundary can degrade gracefully.
#define POSEIDON_CHECK(cond, msg)                                          \
    POSEIDON_REQUIRE_T(InternalError, cond, msg)

/**
 * Debug-only precondition for hot loops: compiled out under NDEBUG so
 * release builds pay nothing on the innermost paths (e.g. the
 * loose-constant `mul_shoup`), but any build without NDEBUG — the
 * default here keeps assertions live — still catches misuse.
 */
#ifdef NDEBUG
#define POSEIDON_DCHECK(cond, msg)                                         \
    do {                                                                   \
    } while (0)
#else
#define POSEIDON_DCHECK(cond, msg) POSEIDON_REQUIRE(cond, msg)
#endif

} // namespace poseidon

#endif // POSEIDON_COMMON_CHECK_H_
