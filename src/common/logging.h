#ifndef POSEIDON_COMMON_LOGGING_H_
#define POSEIDON_COMMON_LOGGING_H_

/**
 * @file
 * Lightweight check/abort helpers used across the Poseidon library.
 *
 * Following the gem5 convention: `POSEIDON_CHECK` is for internal
 * invariants (library bugs -> abort), `POSEIDON_REQUIRE` is for user
 * errors (bad parameters -> throw std::invalid_argument).
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace poseidon {

/// Internal invariant check: failure indicates a library bug.
#define POSEIDON_CHECK(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::fprintf(stderr, "POSEIDON_CHECK failed at %s:%d: %s\n",   \
                         __FILE__, __LINE__, (msg));                       \
            std::abort();                                                  \
        }                                                                  \
    } while (0)

/// User-facing precondition: failure indicates bad input/parameters.
#define POSEIDON_REQUIRE(cond, msg)                                        \
    do {                                                                   \
        if (!(cond)) {                                                     \
            throw std::invalid_argument(std::string("poseidon: ") + (msg)); \
        }                                                                  \
    } while (0)

} // namespace poseidon

#endif // POSEIDON_COMMON_LOGGING_H_
