#ifndef POSEIDON_COMMON_LOGGING_H_
#define POSEIDON_COMMON_LOGGING_H_

/**
 * @file
 * The leveled logger (the check macros formerly here moved to
 * common/check.h).
 *
 *   POSEIDON_LOG(INFO) << "served request in " << us << " us";
 *
 * Severities: TRACE < DEBUG < INFO < WARN < ERROR < OFF. The
 * threshold defaults to WARN so the library is silent in tests and
 * benchmarks, and is controlled by the POSEIDON_LOG_LEVEL environment
 * variable ("trace".."error", "off") or set_threshold(). A statement
 * below the threshold evaluates neither its operands nor any
 * formatting — the macro short-circuits on one branch. Compiling with
 * POSEIDON_TELEMETRY_DISABLED removes the statements entirely.
 *
 * One log statement emits exactly one line to stderr:
 *
 *   [poseidon W 00:00:01.234 sim.cpp:87] scratchpad spill x1.7
 */

#include <sstream>
#include <string>

namespace poseidon::log {

enum class Level : int {
    TRACE = 0,
    DEBUG = 1,
    INFO = 2,
    WARN = 3,
    ERROR = 4,
    OFF = 5,
};

/// Short name ("TRACE".."ERROR", "OFF").
const char* to_string(Level lv);

/// Parse "debug", "WARN", ... (case-insensitive); `fallback` on junk.
Level parse_level(const std::string &text, Level fallback);

/// Same, reporting whether `text` named a level. An unrecognized
/// POSEIDON_LOG_LEVEL warns once on stderr and keeps the default —
/// it must never silently change the threshold.
Level parse_level(const std::string &text, Level fallback,
                  bool *recognized);

/// Current threshold: messages below it are dropped. Initialized once
/// from POSEIDON_LOG_LEVEL (default WARN).
Level threshold();
void set_threshold(Level lv);

inline bool
level_enabled(Level lv)
{
    return lv >= threshold();
}

/// One log line under construction; emits on destruction.
class LogMessage
{
  public:
    LogMessage(Level lv, const char *file, int line);
    ~LogMessage();

    LogMessage(const LogMessage&) = delete;
    LogMessage& operator=(const LogMessage&) = delete;

    std::ostringstream& stream() { return oss_; }

  private:
    Level lv_;
    const char *file_;
    int line_;
    std::ostringstream oss_;
};

#ifdef POSEIDON_TELEMETRY_DISABLED
/// Compiled out: operands are parsed but never evaluated.
#define POSEIDON_LOG(severity)                                             \
    if (true)                                                              \
        ;                                                                  \
    else                                                                   \
        ::poseidon::log::LogMessage(::poseidon::log::Level::severity,      \
                                    __FILE__, __LINE__)                    \
            .stream()
#else
/// Stream a message at `severity` (TRACE/DEBUG/INFO/WARN/ERROR).
#define POSEIDON_LOG(severity)                                             \
    if (!::poseidon::log::level_enabled(                                   \
            ::poseidon::log::Level::severity))                             \
        ;                                                                  \
    else                                                                   \
        ::poseidon::log::LogMessage(::poseidon::log::Level::severity,      \
                                    __FILE__, __LINE__)                    \
            .stream()
#endif

} // namespace poseidon::log

#endif // POSEIDON_COMMON_LOGGING_H_
