#ifndef POSEIDON_COMMON_PRNG_H_
#define POSEIDON_COMMON_PRNG_H_

/**
 * @file
 * Deterministic pseudo-random generation and the lattice samplers used
 * by the CKKS key generator and encryptor.
 *
 * A seeded xoshiro256** generator keeps every test and benchmark
 * reproducible. Cryptographic strength is irrelevant for this
 * reproduction; distributional shape (uniform / ternary / discrete
 * Gaussian) is what affects correctness and noise growth.
 *
 * Thread confinement: a Prng (and the Sampler wrapping it) is a
 * mutable sequential stream — sharing one across threads would both
 * race on the state and make the stream order depend on scheduling,
 * destroying reproducibility. Each instance therefore binds to the
 * first thread that draws from it and asserts if any other thread
 * draws later. Code running under parallel_for must not touch a
 * shared Prng from the loop body (see encrypt_symmetric for the
 * pattern: sample serially, parallelize the arithmetic that follows).
 * `rebind_thread()` is the explicit escape hatch for handing an
 * instance to another thread between (not during) uses.
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/modmath.h"

namespace poseidon {

/// xoshiro256** PRNG (Blackman & Vigna), seeded deterministically.
class Prng
{
  public:
    explicit Prng(u64 seed = 0x505345494E4F44ULL); // "POSEIDON"-ish

    /// Copies restart confinement: the copy binds to whichever thread
    /// draws from it first, independent of the original.
    Prng(const Prng &o)
        : haveSpare_(o.haveSpare_), spare_(o.spare_)
    {
        for (int i = 0; i < 4; ++i) s_[i] = o.s_[i];
    }
    Prng& operator=(const Prng &o)
    {
        for (int i = 0; i < 4; ++i) s_[i] = o.s_[i];
        haveSpare_ = o.haveSpare_;
        spare_ = o.spare_;
        owner_.store(std::thread::id(), std::memory_order_relaxed);
        return *this;
    }

    /// Next raw 64-bit output.
    u64 next();

    /// Uniform value in [0, bound) without modulo bias (bound >= 1).
    u64 uniform(u64 bound);

    /// Uniform double in [0, 1).
    double uniform_double();

    /// Standard normal via Box-Muller.
    double gaussian();

    /// Release thread confinement so a *different* thread may draw
    /// next. Only call between uses — never while another thread may
    /// still be drawing.
    void rebind_thread()
    {
        owner_.store(std::thread::id(), std::memory_order_relaxed);
    }

  private:
    void check_owner();

    u64 s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
    /// Bound on first draw (see file header). Atomic so the bind
    /// itself cannot race: two threads hitting a fresh instance
    /// concurrently must resolve to exactly one owner, with the loser
    /// asserting, instead of both silently binding.
    std::atomic<std::thread::id> owner_{std::thread::id()};
};

/**
 * Samplers for the three RLWE distributions, producing signed
 * coefficients that callers reduce into each RNS modulus.
 */
class Sampler
{
  public:
    explicit Sampler(u64 seed) : prng_(seed) {}

    /// Ternary secret in {-1, 0, 1}^n with hamming-ish density 2/3.
    std::vector<i64> ternary(std::size_t n);

    /// Ternary secret with exactly h nonzero entries (sparse secret).
    std::vector<i64> sparse_ternary(std::size_t n, std::size_t h);

    /// Rounded Gaussian error, sigma = 3.2 (RLWE standard).
    std::vector<i64> gaussian(std::size_t n, double sigma = 3.2);

    /// Uniform residues in [0, q)^n.
    std::vector<u64> uniform_mod(std::size_t n, u64 q);

    Prng& prng() { return prng_; }

    /// Forwarded confinement release; see Prng::rebind_thread().
    void rebind_thread() { prng_.rebind_thread(); }

  private:
    Prng prng_;
};

} // namespace poseidon

#endif // POSEIDON_COMMON_PRNG_H_
