#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metric_sink.h"

namespace poseidon::parallel {

namespace {

thread_local bool tlInRegion = false;

/// Ceiling on pool size. Oversubscribing a little is harmless, but an
/// unbounded POSEIDON_THREADS (a typo like 100000) would spawn that
/// many OS threads or die with std::system_error mid-run, so requests
/// are silently clamped here instead.
std::size_t
max_threads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return 4 * static_cast<std::size_t>(hw == 0 ? 16 : hw);
}

std::size_t
clamp_threads(std::size_t n)
{
    return std::min(std::max<std::size_t>(n, 1), max_threads());
}

std::size_t
default_threads()
{
    if (const char *env = std::getenv("POSEIDON_THREADS")) {
        char *endp = nullptr;
        long v = std::strtol(env, &endp, 10);
        if (endp != env && *endp == '\0' && v >= 1) {
            return clamp_threads(static_cast<std::size_t>(v));
        }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/// One parallel_for invocation: fixed chunk geometry plus completion
/// tracking. Chunk c covers a contiguous slice; the first `rem` chunks
/// carry one extra index so the partition is as even as possible.
struct Batch
{
    std::size_t begin = 0;
    std::size_t chunkLen = 0;
    std::size_t rem = 0;
    std::size_t nchunks = 0;
    const std::function<void(std::size_t, std::size_t)> *fn = nullptr;

    std::atomic<std::size_t> next{0};
    /// Workers currently inside execute_chunks for this batch. The
    /// caller waits for it to reach zero before the (stack-allocated)
    /// batch dies, so a late-waking worker can never touch a freed one.
    std::atomic<std::size_t> attached{0};

    std::mutex doneMu;
    std::condition_variable doneCv;
    std::size_t completed = 0;        ///< guarded by doneMu
    std::exception_ptr error;         ///< guarded by doneMu (first wins)

    std::pair<std::size_t, std::size_t>
    chunk_bounds(std::size_t c) const
    {
        std::size_t lo = begin + c * chunkLen + std::min(c, rem);
        std::size_t len = chunkLen + (c < rem ? 1 : 0);
        return {lo, lo + len};
    }
};

class Pool
{
  public:
    static Pool&
    instance()
    {
        static Pool *p = new Pool(); // leaked: workers may outlive main
        return *p;
    }

    std::size_t
    threads()
    {
        std::lock_guard<std::mutex> lk(mu_);
        return nthreads_;
    }

    void
    resize(std::size_t n)
    {
        std::unique_lock<std::mutex> lk(mu_);
        idleCv_.wait(lk, [&] { return current_ == nullptr; });
        if (!workers_.empty()) {
            stop_ = true;
            workCv_.notify_all();
            std::vector<std::thread> joinable = std::move(workers_);
            workers_.clear();
            lk.unlock();
            for (auto &t : joinable) t.join();
            lk.lock();
            stop_ = false;
        }
        nthreads_ = n == 0 ? default_threads() : clamp_threads(n);
    }

    /// Run one batch to completion; the calling thread participates.
    void
    run(Batch &b)
    {
        {
            std::unique_lock<std::mutex> lk(mu_);
            idleCv_.wait(lk, [&] { return current_ == nullptr; });
            ensure_workers(lk);
            current_ = &b;
            ++gen_;
            workCv_.notify_all();
        }
        execute_chunks(b);
        {
            std::unique_lock<std::mutex> lk(b.doneMu);
            b.doneCv.wait(lk, [&] {
                return b.completed == b.nchunks &&
                       b.attached.load(std::memory_order_relaxed) == 0;
            });
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            current_ = nullptr;
            idleCv_.notify_one();
        }
        if (b.error) std::rethrow_exception(b.error);
    }

  private:
    Pool() : nthreads_(default_threads()) {}

    void
    ensure_workers(std::unique_lock<std::mutex>&)
    {
        // The caller participates, so a pool of T threads means T-1
        // workers. POSEIDON_THREADS=1 therefore never spawns anything.
        while (workers_.size() + 1 < nthreads_) {
            workers_.emplace_back([this] { worker_loop(); });
        }
        const MetricSink &sink = metric_sink();
        if (sink.gauge) {
            sink.gauge("parallel.threads",
                       static_cast<double>(nthreads_));
        }
    }

    void
    worker_loop()
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
            workCv_.wait(lk, [&] {
                return stop_ || (current_ != nullptr && gen_ != seen);
            });
            if (stop_) return;
            Batch *b = current_;
            seen = gen_;
            {
                // The claimed-check and the attach must be one atomic
                // step w.r.t. run()'s exit predicate (also under
                // doneMu). Otherwise the caller could observe
                // completed==nchunks && attached==0 between our check
                // and our increment, pass its wait, and destroy the
                // stack-allocated batch while we still hold a pointer
                // to it. Under doneMu the two outcomes are clean:
                // either we attach before the caller can pass (it then
                // waits for our detach), or the caller already passed,
                // in which case completed==nchunks implies every chunk
                // was claimed and the next-load below sees that, so we
                // never touch the batch again. Lock order is always
                // mu_ -> doneMu; nothing takes mu_ while holding
                // doneMu, so this nesting cannot deadlock.
                std::lock_guard<std::mutex> dl(b->doneMu);
                if (b->next.load(std::memory_order_relaxed) >=
                    b->nchunks) {
                    // All chunks already claimed: nothing to do, and
                    // attaching would only extend the batch's lifetime.
                    continue;
                }
                b->attached.fetch_add(1, std::memory_order_relaxed);
            }
            lk.unlock();
            execute_chunks(*b);
            {
                std::lock_guard<std::mutex> dl(b->doneMu);
                b->attached.fetch_sub(1, std::memory_order_relaxed);
                b->doneCv.notify_all();
            }
            lk.lock();
        }
    }

    static void
    execute_chunks(Batch &b)
    {
        tlInRegion = true;
        for (;;) {
            std::size_t c = b.next.fetch_add(1, std::memory_order_relaxed);
            if (c >= b.nchunks) break;
            std::exception_ptr err;
            try {
                auto [lo, hi] = b.chunk_bounds(c);
                (*b.fn)(lo, hi);
            } catch (...) {
                err = std::current_exception();
            }
            std::lock_guard<std::mutex> lk(b.doneMu);
            if (err && !b.error) b.error = err;
            if (++b.completed == b.nchunks) b.doneCv.notify_all();
        }
        tlInRegion = false;
    }

    std::mutex mu_;
    std::condition_variable workCv_;
    std::condition_variable idleCv_;
    Batch *current_ = nullptr;
    std::uint64_t gen_ = 0;
    bool stop_ = false;
    std::size_t nthreads_;
    std::vector<std::thread> workers_;
};

std::atomic<std::uint64_t> gRegions{0};
std::atomic<std::uint64_t> gTasks{0};
std::atomic<std::uint64_t> gSerialRegions{0};

void
emit_region(const char *region, std::size_t chunks, double usec)
{
    const MetricSink &sink = metric_sink();
    if (sink.count) {
        sink.count("parallel.regions", 1.0);
        sink.count("parallel.tasks", static_cast<double>(chunks));
    }
    if (sink.observe && region) {
        std::string name = std::string("parallel.region_us.") + region;
        sink.observe(name.c_str(), usec);
    }
}

} // namespace

std::size_t
num_threads()
{
    return Pool::instance().threads();
}

void
set_num_threads(std::size_t n)
{
    Pool::instance().resize(n);
}

bool
in_parallel_region()
{
    return tlInRegion;
}

void
parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
             const std::function<void(std::size_t, std::size_t)> &fn,
             const char *region)
{
    if (end <= begin) return;
    if (grain == 0) grain = 1;
    std::size_t count = end - begin;

    Pool &pool = Pool::instance();
    std::size_t nthreads = tlInRegion ? 1 : pool.threads();
    std::size_t maxChunks = count / grain; // chunks of >= grain indices
    bool wantTiming = metric_sink().observe != nullptr && region;
    auto t0 = wantTiming ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point();

    if (nthreads <= 1 || maxChunks <= 1) {
        // Serial fallback: same coverage, one chunk. Nested regions
        // (tlInRegion) land here and run inline on the worker.
        fn(begin, end);
        gRegions.fetch_add(1, std::memory_order_relaxed);
        gTasks.fetch_add(1, std::memory_order_relaxed);
        gSerialRegions.fetch_add(1, std::memory_order_relaxed);
    } else {
        Batch b;
        b.begin = begin;
        b.nchunks = std::min(nthreads, maxChunks);
        b.chunkLen = count / b.nchunks;
        b.rem = count % b.nchunks;
        b.fn = &fn;
        pool.run(b);
        gRegions.fetch_add(1, std::memory_order_relaxed);
        gTasks.fetch_add(b.nchunks, std::memory_order_relaxed);
    }

    if (wantTiming) {
        double usec = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        std::size_t chunks =
            (nthreads <= 1 || maxChunks <= 1)
                ? 1
                : std::min(nthreads, maxChunks);
        emit_region(region, chunks, usec);
    }
}

PoolStats
pool_stats()
{
    PoolStats s;
    s.threads = Pool::instance().threads();
    s.regions = gRegions.load(std::memory_order_relaxed);
    s.tasks = gTasks.load(std::memory_order_relaxed);
    s.serialRegions = gSerialRegions.load(std::memory_order_relaxed);
    return s;
}

} // namespace poseidon::parallel
