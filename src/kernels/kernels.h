#ifndef POSEIDON_KERNELS_KERNELS_H_
#define POSEIDON_KERNELS_KERNELS_H_

/**
 * @file
 * Runtime-dispatched SIMD kernels for the host CKKS hot loops.
 *
 * Every serving attempt, bench and test ultimately bottoms out in a
 * handful of batched u64 primitives: elementwise modular add/sub/mul,
 * Shoup multiplication by a fixed constant, the keyswitch
 * inner-product accumulation, and the NTT butterfly passes. This
 * layer provides one scalar reference implementation plus AVX2 and
 * AVX-512 variants of each, selected once at startup:
 *
 *  - CPUID picks the best level the CPU (and this binary) supports;
 *  - `POSEIDON_SIMD=scalar|avx2|avx512` overrides the choice (an
 *    unsupported request warns once on stderr and clamps down);
 *  - the decision lands in the `kernels.dispatch.*` gauges so
 *    profiler/bench/journal surfaces record which ISA level ran.
 *
 * Correctness contract (asserted by tests/test_kernels.cpp):
 * canonical outputs are **bit-identical across dispatch levels** for
 * every modulus width (28-60 bit NTT primes, any q < 2^62), every
 * length (including non-multiples of the vector width) and at every
 * POSEIDON_THREADS setting. The SIMD paths use lazy (< 2q / < 4q)
 * intermediate reduction internally — see DESIGN.md §14 for the
 * bounds — but every kernel that returns canonical values performs
 * the final reduction itself, and the two explicitly-lazy kernels
 * (`mul_mod_acc_lazy_n`, `scalar_mul_mod_acc_n`) are only canonical
 * after `normalize_n`, which call sites must apply before results
 * escape.
 *
 * Aliasing: `out` may be exactly `a` (and/or `b`); partial overlap is
 * undefined. All kernels are pure elementwise (or whole-transform)
 * functions of their inputs, so chunked invocation under
 * parallel_for yields the same bytes as one call over the full span.
 */

#include <cstddef>

#include "common/modmath.h"

namespace poseidon::kernels {

/// Instruction-set level of a kernel implementation.
enum class SimdLevel { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// "scalar" / "avx2" / "avx512".
const char *level_name(SimdLevel lvl);

/// true when this binary contains an implementation for `lvl`.
bool level_compiled(SimdLevel lvl);

/// true when `lvl` is compiled in *and* the CPU can execute it.
bool level_supported(SimdLevel lvl);

/// The dispatch decision: best supported level, after the
/// POSEIDON_SIMD override. Computed once on first use.
SimdLevel active_level();

/**
 * Batched kernel entry points. Unless noted otherwise inputs are
 * canonical (< q) and outputs canonical; "any a" kernels accept
 * arbitrary u64 values. q < 2^62 throughout (kMaxModulus).
 */
struct KernelTable
{
    /// out[t] = (a[t] + b[t]) mod q.
    void (*add_mod_n)(u64 *out, const u64 *a, const u64 *b,
                      std::size_t n, u64 q) = nullptr;
    /// out[t] = (a[t] - b[t]) mod q.
    void (*sub_mod_n)(u64 *out, const u64 *a, const u64 *b,
                      std::size_t n, u64 q) = nullptr;
    /// out[t] = -a[t] mod q.
    void (*neg_mod_n)(u64 *out, const u64 *a, std::size_t n,
                      u64 q) = nullptr;
    /// out[t] = (a[t] + c) mod q for a constant c < q.
    void (*add_scalar_mod_n)(u64 *out, const u64 *a, std::size_t n,
                             u64 c, u64 q) = nullptr;
    /// out[t] = (a[t] - c) mod q for a constant c < q.
    void (*sub_scalar_mod_n)(u64 *out, const u64 *a, std::size_t n,
                             u64 c, u64 q) = nullptr;
    /// out[t] = a[t] * w mod q, Shoup precomputed ws; any a, w < q.
    void (*scalar_mul_shoup_n)(u64 *out, const u64 *a, std::size_t n,
                               u64 w, u64 ws, u64 q) = nullptr;
    /// acc[t] = lazy(acc[t] + a[t] * w mod q): acc enters and leaves
    /// in [0, 2q); any a, w < q. Finish with normalize_n.
    void (*scalar_mul_mod_acc_n)(u64 *acc, const u64 *a, std::size_t n,
                                 u64 w, u64 ws, u64 q) = nullptr;
    /// out[t] = a[t] * b[t] mod q (both canonical).
    void (*mul_mod_n)(u64 *out, const u64 *a, const u64 *b,
                      std::size_t n, u64 q) = nullptr;
    /// acc[t] = lazy(acc[t] + a[t] * b[t] mod q): acc enters and
    /// leaves in [0, 2q); a, b canonical. Finish with normalize_n.
    void (*mul_mod_acc_lazy_n)(u64 *acc, const u64 *a, const u64 *b,
                               std::size_t n, u64 q) = nullptr;
    /// out[t] = a[t] mod q for any u64 a[t].
    void (*reduce_mod_n)(u64 *out, const u64 *a, std::size_t n,
                         u64 q) = nullptr;
    /// In place: a[t] in [0, 2q) -> canonical [0, q).
    void (*normalize_n)(u64 *a, std::size_t n, u64 q) = nullptr;
    /// In-place forward negacyclic NTT (natural -> bit-reversed),
    /// merged-psi Cooley-Tukey over the psi^bitrev twiddle tables.
    void (*ntt_forward)(u64 *a, std::size_t n, unsigned logn,
                        const u64 *psi, const u64 *psiShoup,
                        u64 q) = nullptr;
    /// In-place inverse negacyclic NTT (bit-reversed -> natural),
    /// Gentleman-Sande, folding in the final n^{-1} multiply.
    void (*ntt_inverse)(u64 *a, std::size_t n, unsigned logn,
                        const u64 *ipsi, const u64 *ipsiShoup,
                        u64 nInv, u64 nInvShoup, u64 q) = nullptr;
};

/**
 * The kernel table for one level, with unimplemented entries filled
 * from the next lower level (the AVX-512 backend, for instance,
 * borrows the AVX2 NTT). Asking for an unsupported level returns the
 * best supported one at or below it. References stay valid for the
 * process lifetime.
 */
const KernelTable &table(SimdLevel lvl);

/// The dispatched table — table(active_level()).
const KernelTable &ops();

// ---- Convenience wrappers over the dispatched table. ----

inline void
add_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n, u64 q)
{
    ops().add_mod_n(out, a, b, n, q);
}

inline void
sub_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n, u64 q)
{
    ops().sub_mod_n(out, a, b, n, q);
}

inline void
neg_mod_n(u64 *out, const u64 *a, std::size_t n, u64 q)
{
    ops().neg_mod_n(out, a, n, q);
}

inline void
add_scalar_mod_n(u64 *out, const u64 *a, std::size_t n, u64 c, u64 q)
{
    ops().add_scalar_mod_n(out, a, n, c, q);
}

inline void
sub_scalar_mod_n(u64 *out, const u64 *a, std::size_t n, u64 c, u64 q)
{
    ops().sub_scalar_mod_n(out, a, n, c, q);
}

inline void
scalar_mul_shoup_n(u64 *out, const u64 *a, std::size_t n, u64 w, u64 ws,
                   u64 q)
{
    ops().scalar_mul_shoup_n(out, a, n, w, ws, q);
}

inline void
scalar_mul_mod_acc_n(u64 *acc, const u64 *a, std::size_t n, u64 w,
                     u64 ws, u64 q)
{
    ops().scalar_mul_mod_acc_n(acc, a, n, w, ws, q);
}

inline void
mul_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n, u64 q)
{
    ops().mul_mod_n(out, a, b, n, q);
}

inline void
mul_mod_acc_lazy_n(u64 *acc, const u64 *a, const u64 *b, std::size_t n,
                   u64 q)
{
    ops().mul_mod_acc_lazy_n(acc, a, b, n, q);
}

inline void
reduce_mod_n(u64 *out, const u64 *a, std::size_t n, u64 q)
{
    ops().reduce_mod_n(out, a, n, q);
}

inline void
normalize_n(u64 *a, std::size_t n, u64 q)
{
    ops().normalize_n(a, n, q);
}

inline void
ntt_forward(u64 *a, std::size_t n, unsigned logn, const u64 *psi,
            const u64 *psiShoup, u64 q)
{
    ops().ntt_forward(a, n, logn, psi, psiShoup, q);
}

inline void
ntt_inverse(u64 *a, std::size_t n, unsigned logn, const u64 *ipsi,
            const u64 *ipsiShoup, u64 nInv, u64 nInvShoup, u64 q)
{
    ops().ntt_inverse(a, n, logn, ipsi, ipsiShoup, nInv, nInvShoup, q);
}

// ---- Shared scalar butterfly primitives. ----
//
// One definition of the butterfly math for every scalar path (the
// reference NTT backend and the fused radix-2^k kernels in
// src/ntt/fusion.cpp), so the paper-model code and the kernel layer
// cannot drift apart.

/// Cooley-Tukey: (u, v) -> (u + wv, u - wv) mod q, canonical in/out.
inline void
ct_butterfly(u64 &u, u64 &v, u64 w, u64 ws, u64 q)
{
    u64 t = mul_shoup(v, w, ws, q);
    v = sub_mod(u, t, q);
    u = add_mod(u, t, q);
}

/// Gentleman-Sande: (u, v) -> (u + v, (u - v) w) mod q.
inline void
gs_butterfly(u64 &u, u64 &v, u64 w, u64 ws, u64 q)
{
    u64 t = sub_mod(u, v, q);
    u = add_mod(u, v, q);
    v = mul_shoup(t, w, ws, q);
}

} // namespace poseidon::kernels

#endif // POSEIDON_KERNELS_KERNELS_H_
