#include "kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/metric_sink.h"
#include "kernels/kernels_internal.h"

namespace poseidon::kernels {

namespace {

// ---- Scalar reference backend. ----
//
// This is the baseline every SIMD variant is differentially tested
// against (and the bench speedups are measured against). It reuses
// the shared scalar primitives from common/modmath.h one element at a
// time, so it is exactly the code the hot loops ran before this layer
// existed.

void
scalar_add_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
                 u64 q)
{
    for (std::size_t t = 0; t < n; ++t) out[t] = add_mod(a[t], b[t], q);
}

void
scalar_sub_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
                 u64 q)
{
    for (std::size_t t = 0; t < n; ++t) out[t] = sub_mod(a[t], b[t], q);
}

void
scalar_neg_mod_n(u64 *out, const u64 *a, std::size_t n, u64 q)
{
    for (std::size_t t = 0; t < n; ++t) out[t] = neg_mod(a[t], q);
}

void
scalar_add_scalar_mod_n(u64 *out, const u64 *a, std::size_t n, u64 c,
                        u64 q)
{
    for (std::size_t t = 0; t < n; ++t) out[t] = add_mod(a[t], c, q);
}

void
scalar_sub_scalar_mod_n(u64 *out, const u64 *a, std::size_t n, u64 c,
                        u64 q)
{
    for (std::size_t t = 0; t < n; ++t) out[t] = sub_mod(a[t], c, q);
}

void
scalar_scalar_mul_shoup_n(u64 *out, const u64 *a, std::size_t n, u64 w,
                          u64 ws, u64 q)
{
    for (std::size_t t = 0; t < n; ++t) {
        out[t] = mul_shoup(a[t], w, ws, q);
    }
}

void
scalar_scalar_mul_mod_acc_n(u64 *acc, const u64 *a, std::size_t n,
                            u64 w, u64 ws, u64 q)
{
    u64 twoq = 2 * q;
    for (std::size_t t = 0; t < n; ++t) {
        u64 s = acc[t] + mul_shoup(a[t], w, ws, q);
        acc[t] = s >= twoq ? s - twoq : s;
    }
}

void
scalar_mul_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
                 u64 q)
{
    Barrett64 br(q);
    for (std::size_t t = 0; t < n; ++t) out[t] = br.mul(a[t], b[t]);
}

void
scalar_mul_mod_acc_lazy_n(u64 *acc, const u64 *a, const u64 *b,
                          std::size_t n, u64 q)
{
    Barrett64 br(q);
    u64 twoq = 2 * q;
    for (std::size_t t = 0; t < n; ++t) {
        u64 s = acc[t] + br.mul(a[t], b[t]);
        acc[t] = s >= twoq ? s - twoq : s;
    }
}

void
scalar_reduce_mod_n(u64 *out, const u64 *a, std::size_t n, u64 q)
{
    Barrett64 br(q);
    for (std::size_t t = 0; t < n; ++t) {
        out[t] = a[t] < q ? a[t] : br.reduce(a[t]);
    }
}

void
scalar_normalize_n(u64 *a, std::size_t n, u64 q)
{
    for (std::size_t t = 0; t < n; ++t) {
        a[t] -= q & (0 - static_cast<u64>(a[t] >= q));
    }
}

void
scalar_ntt_forward(u64 *a, std::size_t n, unsigned logn, const u64 *psi,
                   const u64 *psiShoup, u64 q)
{
    (void)logn;
    std::size_t t = n;
    for (std::size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j1 = 2 * i * t;
            u64 w = psi[m + i];
            u64 ws = psiShoup[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                ct_butterfly(a[j], a[j + t], w, ws, q);
            }
        }
    }
}

void
scalar_ntt_inverse(u64 *a, std::size_t n, unsigned logn,
                   const u64 *ipsi, const u64 *ipsiShoup, u64 nInv,
                   u64 nInvShoup, u64 q)
{
    (void)logn;
    std::size_t t = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            u64 w = ipsi[h + i];
            u64 ws = ipsiShoup[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                gs_butterfly(a[j], a[j + t], w, ws, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n; ++j) {
        a[j] = mul_shoup(a[j], nInv, nInvShoup, q);
    }
}

const KernelTable &
scalar_table()
{
    static const KernelTable t = [] {
        KernelTable k;
        k.add_mod_n = scalar_add_mod_n;
        k.sub_mod_n = scalar_sub_mod_n;
        k.neg_mod_n = scalar_neg_mod_n;
        k.add_scalar_mod_n = scalar_add_scalar_mod_n;
        k.sub_scalar_mod_n = scalar_sub_scalar_mod_n;
        k.scalar_mul_shoup_n = scalar_scalar_mul_shoup_n;
        k.scalar_mul_mod_acc_n = scalar_scalar_mul_mod_acc_n;
        k.mul_mod_n = scalar_mul_mod_n;
        k.mul_mod_acc_lazy_n = scalar_mul_mod_acc_lazy_n;
        k.reduce_mod_n = scalar_reduce_mod_n;
        k.normalize_n = scalar_normalize_n;
        k.ntt_forward = scalar_ntt_forward;
        k.ntt_inverse = scalar_ntt_inverse;
        return k;
    }();
    return t;
}

// ---- Dispatch. ----

bool
cpu_supports(SimdLevel lvl)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (lvl) {
      case SimdLevel::Scalar: return true;
      case SimdLevel::Avx2: return __builtin_cpu_supports("avx2");
      case SimdLevel::Avx512: return __builtin_cpu_supports("avx512f");
    }
    return false;
#else
    return lvl == SimdLevel::Scalar;
#endif
}

/// Copy every non-null entry of `src` over `dst`.
void
overlay(KernelTable &dst, const KernelTable &src)
{
#define POSEIDON_KERNELS_OVERLAY(f)                                        \
    do {                                                                   \
        if (src.f) dst.f = src.f;                                          \
    } while (0)
    POSEIDON_KERNELS_OVERLAY(add_mod_n);
    POSEIDON_KERNELS_OVERLAY(sub_mod_n);
    POSEIDON_KERNELS_OVERLAY(neg_mod_n);
    POSEIDON_KERNELS_OVERLAY(add_scalar_mod_n);
    POSEIDON_KERNELS_OVERLAY(sub_scalar_mod_n);
    POSEIDON_KERNELS_OVERLAY(scalar_mul_shoup_n);
    POSEIDON_KERNELS_OVERLAY(scalar_mul_mod_acc_n);
    POSEIDON_KERNELS_OVERLAY(mul_mod_n);
    POSEIDON_KERNELS_OVERLAY(mul_mod_acc_lazy_n);
    POSEIDON_KERNELS_OVERLAY(reduce_mod_n);
    POSEIDON_KERNELS_OVERLAY(normalize_n);
    POSEIDON_KERNELS_OVERLAY(ntt_forward);
    POSEIDON_KERNELS_OVERLAY(ntt_inverse);
#undef POSEIDON_KERNELS_OVERLAY
}

const KernelTable *
backend(SimdLevel lvl)
{
    switch (lvl) {
      case SimdLevel::Scalar: return &scalar_table();
      case SimdLevel::Avx2: return internal::avx2_table();
      case SimdLevel::Avx512: return internal::avx512_table();
    }
    return nullptr;
}

/// Highest supported level <= lvl.
SimdLevel
clamp_supported(SimdLevel lvl)
{
    int want = static_cast<int>(lvl);
    for (int l = want; l > 0; --l) {
        if (level_supported(static_cast<SimdLevel>(l))) {
            return static_cast<SimdLevel>(l);
        }
    }
    return SimdLevel::Scalar;
}

/// Parse POSEIDON_SIMD; returns false when unset or unrecognized
/// (unrecognized warns once).
bool
env_level(SimdLevel *out)
{
    const char *env = std::getenv("POSEIDON_SIMD");
    if (env == nullptr || *env == '\0') return false;
    if (std::strcmp(env, "scalar") == 0) {
        *out = SimdLevel::Scalar;
    } else if (std::strcmp(env, "avx2") == 0) {
        *out = SimdLevel::Avx2;
    } else if (std::strcmp(env, "avx512") == 0) {
        *out = SimdLevel::Avx512;
    } else {
        std::fprintf(stderr,
                     "poseidon: unrecognized POSEIDON_SIMD='%s' "
                     "(want scalar|avx2|avx512); using auto-detect\n",
                     env);
        return false;
    }
    return true;
}

SimdLevel
detect_level()
{
    SimdLevel lvl = SimdLevel::Avx512; // best-supported by default
    SimdLevel want;
    if (env_level(&want)) {
        lvl = want;
        if (!level_supported(want)) {
            std::fprintf(stderr,
                         "poseidon: POSEIDON_SIMD=%s not %s on this "
                         "host; falling back to %s\n",
                         level_name(want),
                         level_compiled(want) ? "supported by the CPU"
                                              : "compiled into this "
                                                "binary",
                         level_name(clamp_supported(want)));
        }
    }
    SimdLevel chosen = clamp_supported(lvl);
    const MetricSink &sink = metric_sink();
    if (sink.gauge) {
        sink.gauge("kernels.dispatch.level",
                   static_cast<double>(chosen));
        sink.gauge("kernels.dispatch.avx2_supported",
                   level_supported(SimdLevel::Avx2) ? 1.0 : 0.0);
        sink.gauge("kernels.dispatch.avx512_supported",
                   level_supported(SimdLevel::Avx512) ? 1.0 : 0.0);
    }
    return chosen;
}

} // namespace

const char *
level_name(SimdLevel lvl)
{
    switch (lvl) {
      case SimdLevel::Scalar: return "scalar";
      case SimdLevel::Avx2: return "avx2";
      case SimdLevel::Avx512: return "avx512";
    }
    return "unknown";
}

bool
level_compiled(SimdLevel lvl)
{
    return backend(lvl) != nullptr;
}

bool
level_supported(SimdLevel lvl)
{
    return level_compiled(lvl) && cpu_supports(lvl);
}

SimdLevel
active_level()
{
    static const SimdLevel lvl = detect_level();
    return lvl;
}

const KernelTable &
table(SimdLevel lvl)
{
    static const KernelTable merged[3] = {
        [] {
            KernelTable t = scalar_table();
            return t;
        }(),
        [] {
            KernelTable t = scalar_table();
            if (level_supported(SimdLevel::Avx2)) {
                overlay(t, *backend(SimdLevel::Avx2));
            }
            return t;
        }(),
        [] {
            KernelTable t = scalar_table();
            if (level_supported(SimdLevel::Avx2)) {
                overlay(t, *backend(SimdLevel::Avx2));
            }
            if (level_supported(SimdLevel::Avx512)) {
                overlay(t, *backend(SimdLevel::Avx512));
            }
            return t;
        }(),
    };
    int i = static_cast<int>(clamp_supported(lvl));
    POSEIDON_CHECK(i >= 0 && i < 3, "kernels: bad SimdLevel " << i);
    return merged[i];
}

const KernelTable &
ops()
{
    static const KernelTable &t = table(active_level());
    return t;
}

} // namespace poseidon::kernels
