#ifndef POSEIDON_KERNELS_KERNELS_INTERNAL_H_
#define POSEIDON_KERNELS_KERNELS_INTERNAL_H_

/**
 * @file
 * Backend registration for the kernel layer. Each SIMD backend TU is
 * compiled with its own -m flags (see src/kernels/CMakeLists.txt) and
 * exposes exactly one accessor; a TU built by a compiler without the
 * ISA support returns nullptr and the dispatcher falls back.
 */

#include "kernels/kernels.h"

namespace poseidon::kernels::internal {

/// AVX2 kernel table, or nullptr when not compiled in.
const KernelTable *avx2_table();

/// AVX-512 kernel table (elementwise kernels only; NTT entries are
/// left null and inherited from AVX2), or nullptr.
const KernelTable *avx512_table();

} // namespace poseidon::kernels::internal

#endif // POSEIDON_KERNELS_KERNELS_INTERNAL_H_
