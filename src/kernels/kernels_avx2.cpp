/**
 * @file
 * AVX2 backend for the kernel layer.
 *
 * AVX2 has no 64-bit multiply and no unsigned 64-bit compare, so the
 * backend is built from three local primitives: a 64x64->128 multiply
 * decomposed into four `_mm256_mul_epu32` partial products with exact
 * carry propagation, an unsigned compare via the sign-flip trick, and
 * runtime-count shifts through `_mm256_srl_epi64`. On top of those:
 *
 *  - Shoup multiplication in its lazy form: for any 64-bit v and
 *    w < q, r = v*w - floor(v*w'/2^64)*q < q*(1 + v/2^64) < 2q, so a
 *    single conditional subtraction canonicalizes and accumulators
 *    can stay in [0, 2q).
 *  - A width-parameterized Barrett multiply for variable operands
 *    a, b < q: with s = bitlen(q), mu = floor(2^(2s+1)/q) < 2^(s+2)
 *    fits a word, t = (a*b) >> (s-2) < 2^(s+2) fits a word, and
 *    est = (t*mu) >> (s+3) satisfies Q-2 <= est <= Q (error analysis
 *    in DESIGN.md §14), so r = a*b - est*q < 3q needs at most two
 *    conditional subtractions.
 *  - reduce_mod of a full 64-bit word via nu = floor(2^64/q):
 *    est = mulhi(a, nu) >= Q-2, same two-subtraction finish.
 *  - Harvey-style lazy NTT passes: the forward transform keeps
 *    coefficients < 4q across stages (conditional-subtract 2q on u,
 *    lazy Shoup twiddle product < 2q, u+t < 4q, u-t+2q < 4q) and
 *    normalizes once at the end; the inverse keeps < 2q and folds the
 *    n^{-1} scaling into the final canonicalizing pass. 4q < 2^64
 *    because q < 2^62 (kMaxModulus).
 *
 * Scalar tails replicate the vector lane math *exactly* (same lazy
 * representatives), so chunked invocation under parallel_for produces
 * the same bytes as one full-span call at any POSEIDON_THREADS.
 */

#include "kernels/kernels_internal.h"

#ifdef __AVX2__

#include <immintrin.h>

namespace poseidon::kernels::internal {

namespace {

// ---- Lane primitives. ----

/// Runtime-count logical shifts (immediate forms need constants).
inline __m256i
vsrl(__m256i x, unsigned k)
{
    return _mm256_srl_epi64(x, _mm_cvtsi32_si128(static_cast<int>(k)));
}

inline __m256i
vsll(__m256i x, unsigned k)
{
    return _mm256_sll_epi64(x, _mm_cvtsi32_si128(static_cast<int>(k)));
}

/// Low 64 bits of the lanewise 64x64 product.
inline __m256i
mullo64(__m256i a, __m256i b)
{
    __m256i aH = _mm256_srli_epi64(a, 32);
    __m256i bH = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);
    __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, bH),
                                     _mm256_mul_epu32(aH, b));
    return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

/// High 64 bits of the lanewise 64x64 product, exact carry.
inline __m256i
mulhi64(__m256i a, __m256i b)
{
    __m256i mask32 = _mm256_set1_epi64x(0xffffffff);
    __m256i aH = _mm256_srli_epi64(a, 32);
    __m256i bH = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);   // aL*bL
    __m256i lh = _mm256_mul_epu32(a, bH);  // aL*bH
    __m256i hl = _mm256_mul_epu32(aH, b);  // aH*bL
    __m256i hh = _mm256_mul_epu32(aH, bH); // aH*bH
    // carry of the middle 32-bit column into bit 64.
    __m256i carry = _mm256_srli_epi64(
        _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                             _mm256_and_si256(lh, mask32)),
            _mm256_and_si256(hl, mask32)),
        32);
    return _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32), carry));
}

/// Both halves of the lanewise 64x64 product from one set of partial
/// products (a separate mullo64 + mulhi64 pair would recompute ll,
/// lh and hl — three of the four `_mm256_mul_epu32` each).
inline void
mul64wide(__m256i a, __m256i b, __m256i &lo, __m256i &hi)
{
    __m256i mask32 = _mm256_set1_epi64x(0xffffffff);
    __m256i aH = _mm256_srli_epi64(a, 32);
    __m256i bH = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);
    __m256i lh = _mm256_mul_epu32(a, bH);
    __m256i hl = _mm256_mul_epu32(aH, b);
    __m256i hh = _mm256_mul_epu32(aH, bH);
    __m256i cross = _mm256_add_epi64(lh, hl);
    lo = _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
    __m256i carry = _mm256_srli_epi64(
        _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                             _mm256_and_si256(lh, mask32)),
            _mm256_and_si256(hl, mask32)),
        32);
    hi = _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32), carry));
}

/// Lanewise unsigned x < y (AVX2 only has signed compares; flipping
/// the sign bit of both sides makes the signed compare unsigned).
inline __m256i
ltu(__m256i x, __m256i y)
{
    __m256i s = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(y, s),
                              _mm256_xor_si256(x, s));
}

/// x - (x >= m ? m : 0), lanewise.
inline __m256i
csub(__m256i x, __m256i m)
{
    return _mm256_sub_epi64(x, _mm256_andnot_si256(ltu(x, m), m));
}

/// Lazy Shoup product: v*w - floor(v*ws/2^64)*q < 2q for any v, w<q.
inline __m256i
shoup_lazy(__m256i v, __m256i w, __m256i ws, __m256i q)
{
    __m256i hi = mulhi64(v, ws);
    return _mm256_sub_epi64(mullo64(v, w), mullo64(hi, q));
}

/// Scalar replica of shoup_lazy for vector-tail elements.
inline u64
shoup_lazy_s(u64 v, u64 w, u64 ws, u64 q)
{
    u64 hi = static_cast<u64>((u128(v) * ws) >> 64);
    return v * w - hi * q;
}

inline u64
csub_s(u64 x, u64 m)
{
    return x >= m ? x - m : x;
}

// ---- Width-parameterized Barrett for variable a*b mod q. ----

struct WidthBarrett
{
    u64 mu = 0;       ///< floor(2^(2s+1) / q), s = bitlen(q)
    unsigned sh1 = 0; ///< s - 2
    unsigned sh2 = 0; ///< s + 3 (may be > 64; see wb_mu_broadcast)
};

WidthBarrett
make_wb(u64 q)
{
    unsigned s = log2_floor(q) + 1;
    WidthBarrett wb;
    wb.mu = static_cast<u64>((u128(1) << (2 * s + 1)) / q);
    wb.sh1 = s - 2;
    wb.sh2 = s + 3;
    return wb;
}

/// The mu constant the vector path multiplies by. For sh2 <= 64 it is
/// pre-shifted so the estimate is a plain high product:
/// mulhi(t, mu << (64-sh2)) = floor(t*mu*2^(64-sh2) / 2^64)
///                          = floor(t*mu / 2^sh2) exactly
/// (the shift is exact: mu < 2^(s+2) so mu << (61-s) < 2^63). For
/// sh2 > 64 (s = 62) the raw mu is used and the high product shifted
/// right afterwards — nested floors by powers of two compose exactly,
/// so both paths equal the scalar replica's (t*mu) >> sh2.
inline __m256i
wb_mu_broadcast(const WidthBarrett &wb)
{
    u64 m = wb.sh2 > 64 ? wb.mu : wb.mu << (64 - wb.sh2);
    return _mm256_set1_epi64x(static_cast<long long>(m));
}

/// Lazy product a*b mod q in [0, 2q), vector lanes. muv from
/// wb_mu_broadcast.
inline __m256i
wb_mul_lazy(__m256i av, __m256i bv, const WidthBarrett &wb,
            __m256i muv, __m256i qv, __m256i twoqv)
{
    __m256i xlo, xhi;
    mul64wide(av, bv, xlo, xhi);
    __m256i t = _mm256_or_si256(vsll(xhi, 64 - wb.sh1),
                                vsrl(xlo, wb.sh1));
    __m256i est = mulhi64(t, muv);
    if (wb.sh2 > 64) est = vsrl(est, wb.sh2 - 64);
    __m256i r = _mm256_sub_epi64(xlo, mullo64(est, qv));
    return csub(r, twoqv); // r < 3q -> < 2q
}

/// Scalar replica of wb_mul_lazy (identical est, identical bytes).
inline u64
wb_mul_lazy_s(u64 a, u64 b, const WidthBarrett &wb, u64 q)
{
    u128 x = u128(a) * b;
    u64 t = static_cast<u64>(x >> wb.sh1);
    u64 est = static_cast<u64>((u128(t) * wb.mu) >> wb.sh2);
    u64 r = static_cast<u64>(x) - est * q;
    return csub_s(r, 2 * q);
}

// ---- Elementwise kernels. ----

void
avx2_add_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
               u64 q)
{
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + t));
        __m256i s = csub(_mm256_add_epi64(av, bv), qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t), s);
    }
    for (; t < n; ++t) out[t] = add_mod(a[t], b[t], q);
}

void
avx2_sub_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
               u64 q)
{
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + t));
        __m256i d = _mm256_add_epi64(
            _mm256_sub_epi64(av, bv),
            _mm256_and_si256(ltu(av, bv), qv));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t), d);
    }
    for (; t < n; ++t) out[t] = sub_mod(a[t], b[t], q);
}

void
avx2_neg_mod_n(u64 *out, const u64 *a, std::size_t n, u64 q)
{
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i zero = _mm256_setzero_si256();
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i r = _mm256_andnot_si256(
            _mm256_cmpeq_epi64(av, zero), _mm256_sub_epi64(qv, av));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t), r);
    }
    for (; t < n; ++t) out[t] = neg_mod(a[t], q);
}

void
avx2_add_scalar_mod_n(u64 *out, const u64 *a, std::size_t n, u64 c,
                      u64 q)
{
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i cv = _mm256_set1_epi64x(static_cast<long long>(c));
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i s = csub(_mm256_add_epi64(av, cv), qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t), s);
    }
    for (; t < n; ++t) out[t] = add_mod(a[t], c, q);
}

void
avx2_sub_scalar_mod_n(u64 *out, const u64 *a, std::size_t n, u64 c,
                      u64 q)
{
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i cv = _mm256_set1_epi64x(static_cast<long long>(c));
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i d = _mm256_add_epi64(
            _mm256_sub_epi64(av, cv),
            _mm256_and_si256(ltu(av, cv), qv));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t), d);
    }
    for (; t < n; ++t) out[t] = sub_mod(a[t], c, q);
}

void
avx2_scalar_mul_shoup_n(u64 *out, const u64 *a, std::size_t n, u64 w,
                        u64 ws, u64 q)
{
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i wv = _mm256_set1_epi64x(static_cast<long long>(w));
    __m256i wsv = _mm256_set1_epi64x(static_cast<long long>(ws));
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i r = csub(shoup_lazy(av, wv, wsv, qv), qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t), r);
    }
    for (; t < n; ++t) {
        out[t] = csub_s(shoup_lazy_s(a[t], w, ws, q), q);
    }
}

void
avx2_scalar_mul_mod_acc_n(u64 *acc, const u64 *a, std::size_t n, u64 w,
                          u64 ws, u64 q)
{
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i wv = _mm256_set1_epi64x(static_cast<long long>(w));
    __m256i wsv = _mm256_set1_epi64x(static_cast<long long>(ws));
    __m256i twoqv = _mm256_add_epi64(qv, qv);
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i av2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + t));
        // acc<2q plus lazy product <2q stays below 4q < 2^64.
        __m256i s = _mm256_add_epi64(av2,
                                     shoup_lazy(av, wv, wsv, qv));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + t),
                            csub(s, twoqv));
    }
    for (; t < n; ++t) {
        acc[t] = csub_s(acc[t] + shoup_lazy_s(a[t], w, ws, q), 2 * q);
    }
}

void
avx2_mul_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
               u64 q)
{
    if (q < 8) { // bitlen(q)-2 underflows; never a real NTT prime
        Barrett64 br(q);
        for (std::size_t t = 0; t < n; ++t) out[t] = br.mul(a[t], b[t]);
        return;
    }
    WidthBarrett wb = make_wb(q);
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i muv = wb_mu_broadcast(wb);
    __m256i twoqv = _mm256_add_epi64(qv, qv);
    std::size_t t = 0;
    // 2x unroll: the Barrett chain (wide mul -> shift -> high mul ->
    // low mul -> subtract) is latency-bound; two independent chains
    // keep the multiply ports busy. Per-element math is unchanged, so
    // any chunk split still yields identical bytes.
    for (; t + 8 <= n; t += 8) {
        __m256i a0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + t));
        __m256i a1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t + 4));
        __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + t + 4));
        __m256i r0 = wb_mul_lazy(a0, b0, wb, muv, qv, twoqv);
        __m256i r1 = wb_mul_lazy(a1, b1, wb, muv, qv, twoqv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t),
                            csub(r0, qv));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t + 4),
                            csub(r1, qv));
    }
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + t));
        __m256i r = wb_mul_lazy(av, bv, wb, muv, qv, twoqv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t),
                            csub(r, qv));
    }
    for (; t < n; ++t) {
        out[t] = csub_s(wb_mul_lazy_s(a[t], b[t], wb, q), q);
    }
}

void
avx2_mul_mod_acc_lazy_n(u64 *acc, const u64 *a, const u64 *b,
                        std::size_t n, u64 q)
{
    if (q < 8) {
        Barrett64 br(q);
        for (std::size_t t = 0; t < n; ++t) {
            acc[t] = csub_s(acc[t] + br.mul(a[t], b[t]), 2 * q);
        }
        return;
    }
    WidthBarrett wb = make_wb(q);
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i muv = wb_mu_broadcast(wb);
    __m256i twoqv = _mm256_add_epi64(qv, qv);
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + t));
        __m256i accv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + t));
        __m256i p = wb_mul_lazy(av, bv, wb, muv, qv, twoqv);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(acc + t),
            csub(_mm256_add_epi64(accv, p), twoqv));
    }
    for (; t < n; ++t) {
        acc[t] = csub_s(acc[t] + wb_mul_lazy_s(a[t], b[t], wb, q),
                        2 * q);
    }
}

void
avx2_reduce_mod_n(u64 *out, const u64 *a, std::size_t n, u64 q)
{
    if (q < 2) {
        for (std::size_t t = 0; t < n; ++t) out[t] = 0;
        return;
    }
    u64 nu = static_cast<u64>((u128(1) << 64) / q);
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i nuv = _mm256_set1_epi64x(static_cast<long long>(nu));
    __m256i twoqv = _mm256_add_epi64(qv, qv);
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        // est = mulhi(a, nu) >= floor(a/q) - 2, so r < 3q.
        __m256i r = _mm256_sub_epi64(av,
                                     mullo64(mulhi64(av, nuv), qv));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + t),
                            csub(csub(r, twoqv), qv));
    }
    for (; t < n; ++t) {
        u64 est = static_cast<u64>((u128(a[t]) * nu) >> 64);
        out[t] = csub_s(csub_s(a[t] - est * q, 2 * q), q);
    }
}

void
avx2_normalize_n(u64 *a, std::size_t n, u64 q)
{
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + t));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + t),
                            csub(av, qv));
    }
    for (; t < n; ++t) a[t] = csub_s(a[t], q);
}

// ---- Lazy NTT passes. ----

/// One vector CT butterfly under the < 4q invariant: u,v enter
/// arbitrary < 4q, leave < 4q; the twiddle product is lazy < 2q.
inline void
ct_lazy(__m256i &u, __m256i &v, __m256i w, __m256i ws, __m256i qv,
        __m256i twoqv)
{
    __m256i uc = csub(u, twoqv);                // < 2q
    __m256i t = shoup_lazy(v, w, ws, qv);       // < 2q
    u = _mm256_add_epi64(uc, t);                // < 4q
    v = _mm256_add_epi64(_mm256_sub_epi64(uc, t), twoqv); // < 4q
}

/// One vector GS butterfly under the < 2q invariant.
inline void
gs_lazy(__m256i &u, __m256i &v, __m256i w, __m256i ws, __m256i qv,
        __m256i twoqv)
{
    __m256i s = csub(_mm256_add_epi64(u, v), twoqv);      // < 2q
    __m256i d = _mm256_add_epi64(_mm256_sub_epi64(u, v), twoqv);
    v = shoup_lazy(d, w, ws, qv);                         // < 2q
    u = s;
}

void
avx2_ntt_forward(u64 *a, std::size_t n, unsigned logn, const u64 *psi,
                 const u64 *psiShoup, u64 q)
{
    if (n < 8) {
        table(SimdLevel::Scalar).ntt_forward(a, n, logn, psi, psiShoup,
                                             q);
        return;
    }
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i twoqv = _mm256_add_epi64(qv, qv);
    std::size_t t = n;
    for (std::size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 4) {
            for (std::size_t i = 0; i < m; ++i) {
                std::size_t j1 = 2 * i * t;
                __m256i w = _mm256_set1_epi64x(
                    static_cast<long long>(psi[m + i]));
                __m256i ws = _mm256_set1_epi64x(
                    static_cast<long long>(psiShoup[m + i]));
                for (std::size_t j = j1; j < j1 + t; j += 4) {
                    __m256i u = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(a + j));
                    __m256i v = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(a + j + t));
                    ct_lazy(u, v, w, ws, qv, twoqv);
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(a + j), u);
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(a + j + t), v);
                }
            }
        } else if (t == 2) {
            // Two butterfly groups of 4 per iteration; 128-bit
            // halves split each group into its u and v pairs.
            for (std::size_t i = 0; i < m; i += 2) {
                u64 *p = a + 4 * i;
                __m256i x0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p));
                __m256i x1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p + 4));
                __m256i u = _mm256_permute2x128_si256(x0, x1, 0x20);
                __m256i v = _mm256_permute2x128_si256(x0, x1, 0x31);
                __m256i w = _mm256_set_epi64x(
                    static_cast<long long>(psi[m + i + 1]),
                    static_cast<long long>(psi[m + i + 1]),
                    static_cast<long long>(psi[m + i]),
                    static_cast<long long>(psi[m + i]));
                __m256i ws = _mm256_set_epi64x(
                    static_cast<long long>(psiShoup[m + i + 1]),
                    static_cast<long long>(psiShoup[m + i + 1]),
                    static_cast<long long>(psiShoup[m + i]),
                    static_cast<long long>(psiShoup[m + i]));
                ct_lazy(u, v, w, ws, qv, twoqv);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(p),
                    _mm256_permute2x128_si256(u, v, 0x20));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(p + 4),
                    _mm256_permute2x128_si256(u, v, 0x31));
            }
        } else { // t == 1: u/v interleave within 128-bit lanes
            for (std::size_t i = 0; i < m; i += 4) {
                u64 *p = a + 2 * i;
                __m256i x0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p));
                __m256i x1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p + 4));
                // [u0,u2,u1,u3] / [v0,v2,v1,v3]; 0xD8 scrambles the
                // contiguous twiddle load to match.
                __m256i u = _mm256_unpacklo_epi64(x0, x1);
                __m256i v = _mm256_unpackhi_epi64(x0, x1);
                __m256i w = _mm256_permute4x64_epi64(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(psi + m +
                                                          i)),
                    0xD8);
                __m256i ws = _mm256_permute4x64_epi64(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(psiShoup +
                                                          m + i)),
                    0xD8);
                ct_lazy(u, v, w, ws, qv, twoqv);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(p),
                    _mm256_unpacklo_epi64(u, v));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(p + 4),
                    _mm256_unpackhi_epi64(u, v));
            }
        }
    }
    for (std::size_t j = 0; j < n; j += 4) { // < 4q -> canonical
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + j),
                            csub(csub(x, twoqv), qv));
    }
}

void
avx2_ntt_inverse(u64 *a, std::size_t n, unsigned logn, const u64 *ipsi,
                 const u64 *ipsiShoup, u64 nInv, u64 nInvShoup, u64 q)
{
    if (n < 8) {
        table(SimdLevel::Scalar).ntt_inverse(a, n, logn, ipsi,
                                             ipsiShoup, nInv,
                                             nInvShoup, q);
        return;
    }
    __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    __m256i twoqv = _mm256_add_epi64(qv, qv);
    std::size_t t = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
        std::size_t h = m >> 1;
        if (t == 1) {
            for (std::size_t i = 0; i < h; i += 4) {
                u64 *p = a + 2 * i;
                __m256i x0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p));
                __m256i x1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p + 4));
                __m256i u = _mm256_unpacklo_epi64(x0, x1);
                __m256i v = _mm256_unpackhi_epi64(x0, x1);
                __m256i w = _mm256_permute4x64_epi64(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(ipsi + h +
                                                          i)),
                    0xD8);
                __m256i ws = _mm256_permute4x64_epi64(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(ipsiShoup +
                                                          h + i)),
                    0xD8);
                gs_lazy(u, v, w, ws, qv, twoqv);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(p),
                    _mm256_unpacklo_epi64(u, v));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(p + 4),
                    _mm256_unpackhi_epi64(u, v));
            }
        } else if (t == 2) {
            for (std::size_t i = 0; i < h; i += 2) {
                u64 *p = a + 4 * i;
                __m256i x0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p));
                __m256i x1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(p + 4));
                __m256i u = _mm256_permute2x128_si256(x0, x1, 0x20);
                __m256i v = _mm256_permute2x128_si256(x0, x1, 0x31);
                __m256i w = _mm256_set_epi64x(
                    static_cast<long long>(ipsi[h + i + 1]),
                    static_cast<long long>(ipsi[h + i + 1]),
                    static_cast<long long>(ipsi[h + i]),
                    static_cast<long long>(ipsi[h + i]));
                __m256i ws = _mm256_set_epi64x(
                    static_cast<long long>(ipsiShoup[h + i + 1]),
                    static_cast<long long>(ipsiShoup[h + i + 1]),
                    static_cast<long long>(ipsiShoup[h + i]),
                    static_cast<long long>(ipsiShoup[h + i]));
                gs_lazy(u, v, w, ws, qv, twoqv);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(p),
                    _mm256_permute2x128_si256(u, v, 0x20));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(p + 4),
                    _mm256_permute2x128_si256(u, v, 0x31));
            }
        } else {
            std::size_t j1 = 0;
            for (std::size_t i = 0; i < h; ++i) {
                __m256i w = _mm256_set1_epi64x(
                    static_cast<long long>(ipsi[h + i]));
                __m256i ws = _mm256_set1_epi64x(
                    static_cast<long long>(ipsiShoup[h + i]));
                for (std::size_t j = j1; j < j1 + t; j += 4) {
                    __m256i u = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(a + j));
                    __m256i v = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(a + j + t));
                    gs_lazy(u, v, w, ws, qv, twoqv);
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(a + j), u);
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(a + j + t), v);
                }
                j1 += 2 * t;
            }
        }
        t <<= 1;
    }
    // Fold n^{-1} into the canonicalizing pass: inputs < 2q, lazy
    // product < 2q, one subtraction finishes.
    __m256i niv = _mm256_set1_epi64x(static_cast<long long>(nInv));
    __m256i nisv = _mm256_set1_epi64x(
        static_cast<long long>(nInvShoup));
    for (std::size_t j = 0; j < n; j += 4) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + j));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(a + j),
            csub(shoup_lazy(x, niv, nisv, qv), qv));
    }
}

} // namespace

const KernelTable *
avx2_table()
{
    static const KernelTable t = [] {
        KernelTable k;
        k.add_mod_n = avx2_add_mod_n;
        k.sub_mod_n = avx2_sub_mod_n;
        k.neg_mod_n = avx2_neg_mod_n;
        k.add_scalar_mod_n = avx2_add_scalar_mod_n;
        k.sub_scalar_mod_n = avx2_sub_scalar_mod_n;
        k.scalar_mul_shoup_n = avx2_scalar_mul_shoup_n;
        k.scalar_mul_mod_acc_n = avx2_scalar_mul_mod_acc_n;
        k.mul_mod_n = avx2_mul_mod_n;
        k.mul_mod_acc_lazy_n = avx2_mul_mod_acc_lazy_n;
        k.reduce_mod_n = avx2_reduce_mod_n;
        k.normalize_n = avx2_normalize_n;
        k.ntt_forward = avx2_ntt_forward;
        k.ntt_inverse = avx2_ntt_inverse;
        return k;
    }();
    return &t;
}

} // namespace poseidon::kernels::internal

#else // !__AVX2__

namespace poseidon::kernels::internal {

const KernelTable *
avx2_table()
{
    return nullptr;
}

} // namespace poseidon::kernels::internal

#endif // __AVX2__
