/**
 * @file
 * AVX-512F backend for the kernel layer: elementwise kernels only.
 *
 * Relative to AVX2 this gains native unsigned 64-bit compares
 * (`_mm512_cmpge_epu64_mask`) and masked subtraction, halving the
 * instruction count of every conditional-subtract, plus twice the
 * lane width. 64-bit multiplies still go through `_mm512_mul_epu32`
 * partial products — `_mm512_mullo_epi64` is AVX-512DQ, which this
 * backend deliberately does not require. The NTT entries are left
 * null and inherited from the AVX2 backend by the dispatcher's
 * table merge (see kernels.cpp): the butterfly passes are
 * shuffle-bound, where 512-bit lanes pay cross-lane permute latency
 * and offer little win on one memory-bound core.
 *
 * The number-theoretic bounds (lazy Shoup < 2q, width-Barrett < 3q,
 * nu-reduce < 3q) are identical to the AVX2 backend; see that file
 * and DESIGN.md §14. Scalar tails replicate vector lane math exactly
 * so chunked calls stay byte-stable.
 */

#include "kernels/kernels_internal.h"

#ifdef __AVX512F__

#include <immintrin.h>

namespace poseidon::kernels::internal {

namespace {

inline __m512i
vsrl(__m512i x, unsigned k)
{
    return _mm512_srl_epi64(x, _mm_cvtsi32_si128(static_cast<int>(k)));
}

inline __m512i
vsll(__m512i x, unsigned k)
{
    return _mm512_sll_epi64(x, _mm_cvtsi32_si128(static_cast<int>(k)));
}

inline __m512i
mullo64(__m512i a, __m512i b)
{
    __m512i aH = _mm512_srli_epi64(a, 32);
    __m512i bH = _mm512_srli_epi64(b, 32);
    __m512i ll = _mm512_mul_epu32(a, b);
    __m512i cross = _mm512_add_epi64(_mm512_mul_epu32(a, bH),
                                     _mm512_mul_epu32(aH, b));
    return _mm512_add_epi64(ll, _mm512_slli_epi64(cross, 32));
}

inline __m512i
mulhi64(__m512i a, __m512i b)
{
    __m512i mask32 = _mm512_set1_epi64(0xffffffff);
    __m512i aH = _mm512_srli_epi64(a, 32);
    __m512i bH = _mm512_srli_epi64(b, 32);
    __m512i ll = _mm512_mul_epu32(a, b);
    __m512i lh = _mm512_mul_epu32(a, bH);
    __m512i hl = _mm512_mul_epu32(aH, b);
    __m512i hh = _mm512_mul_epu32(aH, bH);
    __m512i carry = _mm512_srli_epi64(
        _mm512_add_epi64(
            _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                             _mm512_and_si512(lh, mask32)),
            _mm512_and_si512(hl, mask32)),
        32);
    return _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(hl, 32), carry));
}

/// Both halves of the lanewise 64x64 product from one set of partial
/// products (a mullo64 + mulhi64 pair would recompute three of them).
inline void
mul64wide(__m512i a, __m512i b, __m512i &lo, __m512i &hi)
{
    __m512i mask32 = _mm512_set1_epi64(0xffffffff);
    __m512i aH = _mm512_srli_epi64(a, 32);
    __m512i bH = _mm512_srli_epi64(b, 32);
    __m512i ll = _mm512_mul_epu32(a, b);
    __m512i lh = _mm512_mul_epu32(a, bH);
    __m512i hl = _mm512_mul_epu32(aH, b);
    __m512i hh = _mm512_mul_epu32(aH, bH);
    __m512i cross = _mm512_add_epi64(lh, hl);
    lo = _mm512_add_epi64(ll, _mm512_slli_epi64(cross, 32));
    __m512i carry = _mm512_srli_epi64(
        _mm512_add_epi64(
            _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                             _mm512_and_si512(lh, mask32)),
            _mm512_and_si512(hl, mask32)),
        32);
    hi = _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(hl, 32), carry));
}

/// x - (x >= m ? m : 0) with the native unsigned compare.
inline __m512i
csub(__m512i x, __m512i m)
{
    __mmask8 ge = _mm512_cmpge_epu64_mask(x, m);
    return _mm512_mask_sub_epi64(x, ge, x, m);
}

inline __m512i
shoup_lazy(__m512i v, __m512i w, __m512i ws, __m512i q)
{
    __m512i hi = mulhi64(v, ws);
    return _mm512_sub_epi64(mullo64(v, w), mullo64(hi, q));
}

inline u64
shoup_lazy_s(u64 v, u64 w, u64 ws, u64 q)
{
    u64 hi = static_cast<u64>((u128(v) * ws) >> 64);
    return v * w - hi * q;
}

inline u64
csub_s(u64 x, u64 m)
{
    return x >= m ? x - m : x;
}

struct WidthBarrett
{
    u64 mu = 0;
    unsigned sh1 = 0;
    unsigned sh2 = 0;
};

WidthBarrett
make_wb(u64 q)
{
    unsigned s = log2_floor(q) + 1;
    WidthBarrett wb;
    wb.mu = static_cast<u64>((u128(1) << (2 * s + 1)) / q);
    wb.sh1 = s - 2;
    wb.sh2 = s + 3;
    return wb;
}

/// Same pre-shifted mu trick as the AVX2 backend: for sh2 <= 64 the
/// estimate is one high product of t and mu << (64-sh2); for sh2 > 64
/// the raw high product is shifted after. Both equal (t*mu) >> sh2
/// exactly, matching the scalar replica.
inline __m512i
wb_mu_broadcast(const WidthBarrett &wb)
{
    u64 m = wb.sh2 > 64 ? wb.mu : wb.mu << (64 - wb.sh2);
    return _mm512_set1_epi64(static_cast<long long>(m));
}

inline __m512i
wb_mul_lazy(__m512i av, __m512i bv, const WidthBarrett &wb,
            __m512i muv, __m512i qv, __m512i twoqv)
{
    __m512i xlo, xhi;
    mul64wide(av, bv, xlo, xhi);
    __m512i t = _mm512_or_si512(vsll(xhi, 64 - wb.sh1),
                                vsrl(xlo, wb.sh1));
    __m512i est = mulhi64(t, muv);
    if (wb.sh2 > 64) est = vsrl(est, wb.sh2 - 64);
    __m512i r = _mm512_sub_epi64(xlo, mullo64(est, qv));
    return csub(r, twoqv);
}

inline u64
wb_mul_lazy_s(u64 a, u64 b, const WidthBarrett &wb, u64 q)
{
    u128 x = u128(a) * b;
    u64 t = static_cast<u64>(x >> wb.sh1);
    u64 est = static_cast<u64>((u128(t) * wb.mu) >> wb.sh2);
    u64 r = static_cast<u64>(x) - est * q;
    return csub_s(r, 2 * q);
}

void
avx512_add_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
                 u64 q)
{
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        __m512i bv = _mm512_loadu_si512(b + t);
        _mm512_storeu_si512(out + t,
                            csub(_mm512_add_epi64(av, bv), qv));
    }
    for (; t < n; ++t) out[t] = add_mod(a[t], b[t], q);
}

void
avx512_sub_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
                 u64 q)
{
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        __m512i bv = _mm512_loadu_si512(b + t);
        __mmask8 lt = _mm512_cmplt_epu64_mask(av, bv);
        __m512i d = _mm512_sub_epi64(av, bv);
        d = _mm512_mask_add_epi64(d, lt, d, qv);
        _mm512_storeu_si512(out + t, d);
    }
    for (; t < n; ++t) out[t] = sub_mod(a[t], b[t], q);
}

void
avx512_neg_mod_n(u64 *out, const u64 *a, std::size_t n, u64 q)
{
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    __m512i zero = _mm512_setzero_si512();
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        __mmask8 nz = _mm512_cmpneq_epi64_mask(av, zero);
        _mm512_storeu_si512(
            out + t, _mm512_maskz_sub_epi64(nz, qv, av));
    }
    for (; t < n; ++t) out[t] = neg_mod(a[t], q);
}

void
avx512_add_scalar_mod_n(u64 *out, const u64 *a, std::size_t n, u64 c,
                        u64 q)
{
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    __m512i cv = _mm512_set1_epi64(static_cast<long long>(c));
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        _mm512_storeu_si512(out + t,
                            csub(_mm512_add_epi64(av, cv), qv));
    }
    for (; t < n; ++t) out[t] = add_mod(a[t], c, q);
}

void
avx512_sub_scalar_mod_n(u64 *out, const u64 *a, std::size_t n, u64 c,
                        u64 q)
{
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    __m512i cv = _mm512_set1_epi64(static_cast<long long>(c));
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        __mmask8 lt = _mm512_cmplt_epu64_mask(av, cv);
        __m512i d = _mm512_sub_epi64(av, cv);
        d = _mm512_mask_add_epi64(d, lt, d, qv);
        _mm512_storeu_si512(out + t, d);
    }
    for (; t < n; ++t) out[t] = sub_mod(a[t], c, q);
}

void
avx512_scalar_mul_shoup_n(u64 *out, const u64 *a, std::size_t n, u64 w,
                          u64 ws, u64 q)
{
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    __m512i wv = _mm512_set1_epi64(static_cast<long long>(w));
    __m512i wsv = _mm512_set1_epi64(static_cast<long long>(ws));
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        _mm512_storeu_si512(
            out + t, csub(shoup_lazy(av, wv, wsv, qv), qv));
    }
    for (; t < n; ++t) {
        out[t] = csub_s(shoup_lazy_s(a[t], w, ws, q), q);
    }
}

void
avx512_scalar_mul_mod_acc_n(u64 *acc, const u64 *a, std::size_t n,
                            u64 w, u64 ws, u64 q)
{
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    __m512i wv = _mm512_set1_epi64(static_cast<long long>(w));
    __m512i wsv = _mm512_set1_epi64(static_cast<long long>(ws));
    __m512i twoqv = _mm512_add_epi64(qv, qv);
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        __m512i accv = _mm512_loadu_si512(acc + t);
        __m512i s = _mm512_add_epi64(accv,
                                     shoup_lazy(av, wv, wsv, qv));
        _mm512_storeu_si512(acc + t, csub(s, twoqv));
    }
    for (; t < n; ++t) {
        acc[t] = csub_s(acc[t] + shoup_lazy_s(a[t], w, ws, q), 2 * q);
    }
}

void
avx512_mul_mod_n(u64 *out, const u64 *a, const u64 *b, std::size_t n,
                 u64 q)
{
    if (q < 8) {
        Barrett64 br(q);
        for (std::size_t t = 0; t < n; ++t) out[t] = br.mul(a[t], b[t]);
        return;
    }
    WidthBarrett wb = make_wb(q);
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    __m512i muv = wb_mu_broadcast(wb);
    __m512i twoqv = _mm512_add_epi64(qv, qv);
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        __m512i bv = _mm512_loadu_si512(b + t);
        __m512i r = wb_mul_lazy(av, bv, wb, muv, qv, twoqv);
        _mm512_storeu_si512(out + t, csub(r, qv));
    }
    for (; t < n; ++t) {
        out[t] = csub_s(wb_mul_lazy_s(a[t], b[t], wb, q), q);
    }
}

void
avx512_mul_mod_acc_lazy_n(u64 *acc, const u64 *a, const u64 *b,
                          std::size_t n, u64 q)
{
    if (q < 8) {
        Barrett64 br(q);
        for (std::size_t t = 0; t < n; ++t) {
            acc[t] = csub_s(acc[t] + br.mul(a[t], b[t]), 2 * q);
        }
        return;
    }
    WidthBarrett wb = make_wb(q);
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    __m512i muv = wb_mu_broadcast(wb);
    __m512i twoqv = _mm512_add_epi64(qv, qv);
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        __m512i bv = _mm512_loadu_si512(b + t);
        __m512i accv = _mm512_loadu_si512(acc + t);
        __m512i p = wb_mul_lazy(av, bv, wb, muv, qv, twoqv);
        _mm512_storeu_si512(acc + t,
                            csub(_mm512_add_epi64(accv, p), twoqv));
    }
    for (; t < n; ++t) {
        acc[t] = csub_s(acc[t] + wb_mul_lazy_s(a[t], b[t], wb, q),
                        2 * q);
    }
}

void
avx512_reduce_mod_n(u64 *out, const u64 *a, std::size_t n, u64 q)
{
    if (q < 2) {
        for (std::size_t t = 0; t < n; ++t) out[t] = 0;
        return;
    }
    u64 nu = static_cast<u64>((u128(1) << 64) / q);
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    __m512i nuv = _mm512_set1_epi64(static_cast<long long>(nu));
    __m512i twoqv = _mm512_add_epi64(qv, qv);
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        __m512i r = _mm512_sub_epi64(av,
                                     mullo64(mulhi64(av, nuv), qv));
        _mm512_storeu_si512(out + t, csub(csub(r, twoqv), qv));
    }
    for (; t < n; ++t) {
        u64 est = static_cast<u64>((u128(a[t]) * nu) >> 64);
        out[t] = csub_s(csub_s(a[t] - est * q, 2 * q), q);
    }
}

void
avx512_normalize_n(u64 *a, std::size_t n, u64 q)
{
    __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
        __m512i av = _mm512_loadu_si512(a + t);
        _mm512_storeu_si512(a + t, csub(av, qv));
    }
    for (; t < n; ++t) a[t] = csub_s(a[t], q);
}

} // namespace

const KernelTable *
avx512_table()
{
    static const KernelTable t = [] {
        KernelTable k; // NTT entries stay null -> inherited from AVX2
        k.add_mod_n = avx512_add_mod_n;
        k.sub_mod_n = avx512_sub_mod_n;
        k.neg_mod_n = avx512_neg_mod_n;
        k.add_scalar_mod_n = avx512_add_scalar_mod_n;
        k.sub_scalar_mod_n = avx512_sub_scalar_mod_n;
        k.scalar_mul_shoup_n = avx512_scalar_mul_shoup_n;
        k.scalar_mul_mod_acc_n = avx512_scalar_mul_mod_acc_n;
        k.mul_mod_n = avx512_mul_mod_n;
        k.mul_mod_acc_lazy_n = avx512_mul_mod_acc_lazy_n;
        k.reduce_mod_n = avx512_reduce_mod_n;
        k.normalize_n = avx512_normalize_n;
        return k;
    }();
    return &t;
}

} // namespace poseidon::kernels::internal

#else // !__AVX512F__

namespace poseidon::kernels::internal {

const KernelTable *
avx512_table()
{
    return nullptr;
}

} // namespace poseidon::kernels::internal

#endif // __AVX512F__
