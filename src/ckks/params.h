#ifndef POSEIDON_CKKS_PARAMS_H_
#define POSEIDON_CKKS_PARAMS_H_

/**
 * @file
 * CKKS parameter set and context.
 *
 * The context owns the ring tables (all modulus-chain primes plus the
 * special keyswitching primes), the default encoding scale, and cached
 * ModDown converters per level. Every scheme object (encoder, keygen,
 * encryptor, evaluator, bootstrapper) references one shared context.
 */

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "poly/ring.h"
#include "rns/conv.h"

namespace poseidon {

/// User-facing CKKS parameters.
struct CkksParams
{
    /// log2 of the ring degree N.
    unsigned logN = 12;

    /// Number of ciphertext primes (modulus chain length; fresh
    /// ciphertexts sit at level L-1 and every rescale burns one).
    std::size_t L = 6;

    /// log2 of the default encoding scale Delta.
    unsigned scaleBits = 35;

    /// Bit size of the first (decryption) prime q_0.
    unsigned firstPrimeBits = 50;

    /// Bit size of the special keyswitch primes.
    unsigned specialPrimeBits = 50;

    /// Number of special keyswitch primes (the paper uses one).
    std::size_t K = 1;

    /**
     * Keyswitch digit count (hybrid keyswitching). 0 means one digit
     * per ciphertext prime (dnum = L, the classic RNS decomposition).
     * Smaller dnum groups alpha = ceil(L/dnum) primes per digit,
     * shrinking the switching keys and their HBM traffic at the cost
     * of real base conversions per digit; it requires K >= alpha
     * special primes to keep the keyswitch noise down.
     */
    std::size_t dnum = 0;

    /// Seed for all randomness (keys, encryption noise).
    u64 seed = 20230101;

    std::size_t degree() const { return std::size_t(1) << logN; }
    std::size_t slots() const { return degree() / 2; }
    double scale() const { return static_cast<double>(u64(1) << scaleBits); }
};

/// Shared immutable(ish) state for one CKKS instantiation.
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams& params() const { return params_; }
    const RingContextPtr& ring() const { return ring_; }

    std::size_t degree() const { return params_.degree(); }
    std::size_t slots() const { return params_.slots(); }

    /// Level of a fresh ciphertext (L - 1).
    std::size_t top_level() const { return params_.L - 1; }

    /// ModDown converter for `limbs` ciphertext primes (cached).
    const ModDown& mod_down(std::size_t limbs) const;

    /// Primes per keyswitch digit (1 when dnum == 0).
    std::size_t alpha() const { return alpha_; }

    /// Number of digit groups covering `limbs` primes.
    std::size_t
    num_digits(std::size_t limbs) const
    {
        return (limbs + alpha_ - 1) / alpha_;
    }

    /**
     * Base conversion from digit group `g`'s primes (restricted to the
     * first `limbs` ciphertext primes) to the full extended basis
     * (all ciphertext primes of the chain + special primes). Cached.
     * Only meaningful for groups with more than one prime.
     */
    const RnsConv& digit_conv(std::size_t limbs, std::size_t g) const;

    /// [P mod q_i] for every ciphertext prime (keyswitch key factor).
    u64 p_mod_qi(std::size_t i) const { return pModQ_[i]; }

  private:
    CkksParams params_;
    RingContextPtr ring_;
    std::size_t alpha_ = 1;
    /// modDown_[l] built for l+1 limbs on first use.
    mutable std::vector<std::unique_ptr<ModDown>> modDown_;
    /// digitConv_ keyed by limbs and group, built on first use.
    mutable std::map<std::size_t, std::unique_ptr<RnsConv>> digitConv_;
    std::vector<u64> pModQ_;
};

using CkksContextPtr = std::shared_ptr<const CkksContext>;

/// Convenience: build a shared context.
CkksContextPtr make_ckks_context(const CkksParams &params);

} // namespace poseidon

#endif // POSEIDON_CKKS_PARAMS_H_
