#ifndef POSEIDON_CKKS_BOOTSTRAP_H_
#define POSEIDON_CKKS_BOOTSTRAP_H_

/**
 * @file
 * Packed CKKS bootstrapping (the paper's most complex basic operation,
 * benchmark 4 of its evaluation).
 *
 * Pipeline, following the packed bootstrapping the paper cites [30]:
 *
 *  1. ModRaise    — reinterpret a bottom-level ciphertext mod q_0 over
 *                   the full chain; the message becomes m + q_0*I with
 *                   small integer polynomial I.
 *  2. CoeffToSlot — homomorphic inverse-encoding matrix (BSGS linear
 *                   transform with ~2*sqrt(n) rotations) moving
 *                   coefficients into slots, scaled by 1/q_0; the slots
 *                   then hold t/q_0 in [-K, K].
 *  3. EvalMod     — approximate t mod q_0 via
 *                   q_0/(2*pi) * sin(2*pi*t/q_0): Taylor series of
 *                   exp(i*y/2^r) followed by r squarings (double-angle),
 *                   imaginary part extracted with one conjugation.
 *  4. SlotToCoeff — the forward encoding matrix, moving the cleaned
 *                   slots back into coefficients.
 *
 * All four stages decompose into the five Poseidon operators, which is
 * exactly why the accelerator can run bootstrapping by operator reuse.
 */

#include <utility>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"

namespace poseidon {

/// Which approximation EvalMod uses.
enum class EvalModVariant {
    /// Taylor series of exp(i*y) + double-angle squarings + one
    /// conjugation to extract the imaginary part (HEAAN-style).
    TaylorExp,
    /// Chebyshev interpolation of cos((2*pi*x - pi/2)/2^r) followed by
    /// double-angle cos(2t)=2cos^2(t)-1 — real arithmetic only, the
    /// approach of modern packed bootstrapping (the paper's [30]).
    ChebyshevCos,
};

/// Tunables of the EvalMod approximation.
struct BootstrapConfig
{
    EvalModVariant variant = EvalModVariant::TaylorExp;

    /// Taylor degree for exp(i*y) (7 is the classic choice).
    unsigned taylorDegree = 7;

    /// Number of double-angle squarings r; the approximation argument
    /// is divided by 2^r, so larger r widens the valid range of I.
    unsigned doubleAngleIters = 8;

    /// Chebyshev degree for the ChebyshevCos variant.
    unsigned chebDegree = 20;

    /// Half-width K of the EvalMod input range [-K, K] (bounds |I|).
    double kRange = 17.0;
};

/**
 * One-time bootstrap engine: owns the CoeffToSlot/SlotToCoeff diagonal
 * tables, the relinearization key and the BSGS rotation keys.
 */
class Bootstrapper
{
  public:
    /**
     * Builds all matrices and keys. `keygen` must outlive nothing —
     * keys are copied in.
     */
    Bootstrapper(CkksContextPtr ctx, const CkksEncoder &encoder,
                 KeyGenerator &keygen, BootstrapConfig cfg = {});

    /**
     * Levels one bootstrap consumes from the top of the chain. The
     * context must satisfy L >= levels_consumed() + 2 for the result
     * to land above the input.
     */
    std::size_t levels_consumed() const;

    /// Refresh a bottom-level ciphertext to a high level.
    Ciphertext bootstrap(const Ciphertext &ct,
                         const CkksEvaluator &eval) const;

    // -- exposed stages (tests, ISA tracing) --

    /// Stage 1: reinterpret a 1-limb ciphertext over the full chain.
    Ciphertext mod_raise(const Ciphertext &ct) const;

    /**
     * Stage 2: returns (lo, hi) with slots t_j/q0 and t_{j+n/2}/q0.
     * `msgScale` is the scale the input message was encoded at
     * (<= 0: the context default); it must be folded into the matrix
     * constants so that integer multiples of q0 stay integer.
     */
    std::pair<Ciphertext, Ciphertext>
    coeff_to_slot(const Ciphertext &ct, const CkksEvaluator &eval,
                  double msgScale = -1.0) const;

    /// Stage 3: q0/(2 pi msgScale)-scaled sine of one real-slot input.
    Ciphertext eval_mod(const Ciphertext &ct, const CkksEvaluator &eval,
                        double msgScale = -1.0) const;

    /// Stage 4: recombine and apply the forward encoding matrix.
    Ciphertext slot_to_coeff(const Ciphertext &lo, const Ciphertext &hi,
                             const CkksEvaluator &eval) const;

    /// The BSGS rotation steps this instance uses (for ISA tracing).
    const std::vector<long>& rotation_steps() const { return steps_; }

  private:
    /// out = factor * M * in as a BSGS diagonal linear transform
    /// (one rescale).
    Ciphertext linear_transform(
        const Ciphertext &ct,
        const std::vector<std::vector<cdouble>> &diags,
        const CkksEvaluator &eval, double factor = 1.0) const;

    /// ct * complex scalar at the default scale, rescaled.
    Ciphertext mul_cscalar(const Ciphertext &ct, cdouble v,
                           const CkksEvaluator &eval) const;

    /// ct + complex scalar (exact scale match, no level cost).
    Ciphertext add_cscalar(const Ciphertext &ct, cdouble v) const;

    CkksContextPtr ctx_;
    const CkksEncoder &encoder_;
    BootstrapConfig cfg_;
    KSwitchKey relin_;
    GaloisKeys gk_;
    std::vector<long> steps_;
    std::size_t n1_; ///< baby-step count
    std::size_t nb_; ///< giant-step count
    std::vector<std::vector<cdouble>> ctsDiags_; ///< invFFT * (1/q0)
    std::vector<std::vector<cdouble>> stcDiags_; ///< forward FFT
    std::vector<double> cosCoeffs_; ///< ChebyshevCos interpolation
};

} // namespace poseidon

#endif // POSEIDON_CKKS_BOOTSTRAP_H_
