#include "ckks/security.h"

namespace poseidon {

unsigned
max_log_pq(std::size_t degree, SecurityLevel level)
{
    // HE Standard (homomorphicencryption.org), ternary secret,
    // classical cost model. N=65536/131072 rows follow the accepted
    // doubling extrapolation used by major libraries.
    struct Row
    {
        std::size_t n;
        unsigned c128, c192, c256;
    };
    static const Row rows[] = {
        {1024, 27, 19, 14},      {2048, 54, 37, 29},
        {4096, 109, 75, 58},     {8192, 218, 152, 118},
        {16384, 438, 305, 237},  {32768, 881, 611, 476},
        {65536, 1772, 1228, 956}, {131072, 3544, 2456, 1912},
    };
    for (const auto &r : rows) {
        if (r.n == degree) {
            switch (level) {
              case SecurityLevel::Classical128: return r.c128;
              case SecurityLevel::Classical192: return r.c192;
              case SecurityLevel::Classical256: return r.c256;
              case SecurityLevel::None: return ~0u;
            }
        }
    }
    return 0;
}

double
total_log_pq(const CkksParams &params)
{
    // Bit sizes are upper bounds on the generated primes, which sit
    // just below 2^bits.
    return static_cast<double>(params.firstPrimeBits) +
           static_cast<double>(params.L - 1) * params.scaleBits +
           static_cast<double>(params.K) * params.specialPrimeBits;
}

SecurityLevel
estimate_security(const CkksParams &params)
{
    double logPQ = total_log_pq(params);
    std::size_t n = params.degree();
    if (logPQ <= max_log_pq(n, SecurityLevel::Classical256)) {
        return SecurityLevel::Classical256;
    }
    if (logPQ <= max_log_pq(n, SecurityLevel::Classical192)) {
        return SecurityLevel::Classical192;
    }
    if (logPQ <= max_log_pq(n, SecurityLevel::Classical128)) {
        return SecurityLevel::Classical128;
    }
    return SecurityLevel::None;
}

const char*
to_string(SecurityLevel level)
{
    switch (level) {
      case SecurityLevel::None: return "insecure (demo/test only)";
      case SecurityLevel::Classical128: return "128-bit classical";
      case SecurityLevel::Classical192: return "192-bit classical";
      case SecurityLevel::Classical256: return "256-bit classical";
    }
    return "?";
}

} // namespace poseidon
