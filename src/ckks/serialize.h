#ifndef POSEIDON_CKKS_SERIALIZE_H_
#define POSEIDON_CKKS_SERIALIZE_H_

/**
 * @file
 * Binary serialization of parameters, polynomials, ciphertexts and
 * keys — the client/server boundary of the paper's deployment model
 * (Fig. 1): the client uploads encrypted data and evaluation keys, the
 * accelerator host loads them into HBM.
 *
 * Format: little-endian fixed-width integers with per-object magic
 * tags; every magic word carries the wire-format version in its high
 * half, so readers reject streams from incompatible builds up front.
 * Polynomials are bound to a context at load time; the caller is
 * responsible for loading against a context built from the same
 * serialized parameters (the prime chain is revalidated on load).
 *
 * Every reader validates the stream before trusting it: declared
 * sizes are bounded before any allocation, limb/degree/prime-chain
 * structure is cross-checked against the bound context, and any
 * malformed, truncated or adversarial input raises
 * poseidon::ParseError — never a crash, never another exception type.
 */

#include <iosfwd>
#include <string>

#include "ckks/ciphertext.h"
#include "ckks/keys.h"
#include "ckks/params.h"
#include "common/status.h"

namespace poseidon::io {

// ---- Parameters ----
void write_params(std::ostream &os, const CkksParams &p);
CkksParams read_params(std::istream &is);

// ---- Polynomials (context-bound) ----
void write_poly(std::ostream &os, const RnsPoly &p);
RnsPoly read_poly(std::istream &is, const RingContextPtr &ring);

// ---- Ciphertexts / plaintexts ----
void write_ciphertext(std::ostream &os, const Ciphertext &ct);
Ciphertext read_ciphertext(std::istream &is, const RingContextPtr &ring);

void write_plaintext(std::ostream &os, const Plaintext &pt);
Plaintext read_plaintext(std::istream &is, const RingContextPtr &ring);

// ---- Keys ----
void write_secret_key(std::ostream &os, const SecretKey &sk);
SecretKey read_secret_key(std::istream &is, const RingContextPtr &ring);

void write_public_key(std::ostream &os, const PublicKey &pk);
PublicKey read_public_key(std::istream &is, const RingContextPtr &ring);

void write_kswitch_key(std::ostream &os, const KSwitchKey &k);
KSwitchKey read_kswitch_key(std::istream &is,
                            const RingContextPtr &ring);

void write_galois_keys(std::ostream &os, const GaloisKeys &gk);
GaloisKeys read_galois_keys(std::istream &is,
                            const RingContextPtr &ring);

// ---- Structured error responses ----
//
// A server that fails to process a request answers with an error frame
// instead of a result object: the typed ErrorCode plus a bounded
// human-readable message. Clients test the next object with
// is_error_frame() before parsing a payload.

/// One serialized service error.
struct ErrorFrame
{
    ErrorCode code = ErrorCode::kOk;
    std::string message;
};

void write_error_frame(std::ostream &os, ErrorCode code,
                       const std::string &message);
ErrorFrame read_error_frame(std::istream &is);

/// Peek (without consuming) whether the stream's next object is an
/// error frame. Requires a seekable stream.
bool is_error_frame(std::istream &is);

} // namespace poseidon::io

#endif // POSEIDON_CKKS_SERIALIZE_H_
