#ifndef POSEIDON_CKKS_SERIALIZE_H_
#define POSEIDON_CKKS_SERIALIZE_H_

/**
 * @file
 * Binary serialization of parameters, polynomials, ciphertexts and
 * keys — the client/server boundary of the paper's deployment model
 * (Fig. 1): the client uploads encrypted data and evaluation keys, the
 * accelerator host loads them into HBM.
 *
 * Format: little-endian fixed-width integers with per-object magic
 * tags. Polynomials are bound to a context at load time; the caller is
 * responsible for loading against a context built from the same
 * serialized parameters (the prime chain is revalidated on load).
 */

#include <iosfwd>

#include "ckks/ciphertext.h"
#include "ckks/keys.h"
#include "ckks/params.h"

namespace poseidon::io {

// ---- Parameters ----
void write_params(std::ostream &os, const CkksParams &p);
CkksParams read_params(std::istream &is);

// ---- Polynomials (context-bound) ----
void write_poly(std::ostream &os, const RnsPoly &p);
RnsPoly read_poly(std::istream &is, const RingContextPtr &ring);

// ---- Ciphertexts / plaintexts ----
void write_ciphertext(std::ostream &os, const Ciphertext &ct);
Ciphertext read_ciphertext(std::istream &is, const RingContextPtr &ring);

void write_plaintext(std::ostream &os, const Plaintext &pt);
Plaintext read_plaintext(std::istream &is, const RingContextPtr &ring);

// ---- Keys ----
void write_secret_key(std::ostream &os, const SecretKey &sk);
SecretKey read_secret_key(std::istream &is, const RingContextPtr &ring);

void write_public_key(std::ostream &os, const PublicKey &pk);
PublicKey read_public_key(std::istream &is, const RingContextPtr &ring);

void write_kswitch_key(std::ostream &os, const KSwitchKey &k);
KSwitchKey read_kswitch_key(std::istream &is,
                            const RingContextPtr &ring);

void write_galois_keys(std::ostream &os, const GaloisKeys &gk);
GaloisKeys read_galois_keys(std::istream &is,
                            const RingContextPtr &ring);

} // namespace poseidon::io

#endif // POSEIDON_CKKS_SERIALIZE_H_
