#include "ckks/keys.h"

#include "common/check.h"
#include "poly/automorphism.h"

namespace poseidon {

const KSwitchKey&
GaloisKeys::get(u64 galois) const
{
    auto it = keys.find(galois);
    POSEIDON_REQUIRE(it != keys.end(),
                     "GaloisKeys: no key for galois element " << galois
                     << " (have " << keys.size() << " keys)");
    return it->second;
}

KeyGenerator::KeyGenerator(CkksContextPtr ctx)
    : ctx_([&] {
          POSEIDON_REQUIRE(ctx != nullptr, "KeyGenerator: null context");
          return std::move(ctx);
      }()),
      sampler_(ctx_->params().seed)
{
    const auto &ring = ctx_->ring();
    allIdx_.resize(ring->num_primes());
    for (std::size_t i = 0; i < allIdx_.size(); ++i) allIdx_[i] = i;

    std::size_t n = ctx_->degree();
    std::size_t h = std::min<std::size_t>(n / 2, 64);
    sk_.s = RnsPoly(ring, allIdx_, Domain::Coeff);
    sk_.s.assign_signed(sampler_.sparse_ternary(n, h));
    sk_.s.to_eval();
}

KSwitchKey::Piece
KeyGenerator::encrypt_zero(const std::vector<std::size_t> &idx)
{
    const auto &ring = ctx_->ring();
    std::size_t n = ctx_->degree();

    KSwitchKey::Piece piece;
    piece.a = RnsPoly(ring, idx, Domain::Eval);
    // Uniform a in R: independent uniform residues per limb (CRT).
    for (std::size_t k = 0; k < idx.size(); ++k) {
        u64 q = ring->prime(idx[k]);
        u64 *limb = piece.a.limb(k);
        for (std::size_t t = 0; t < n; ++t) {
            limb[t] = sampler_.prng().uniform(q);
        }
    }

    RnsPoly e(ring, idx, Domain::Coeff);
    e.assign_signed(sampler_.gaussian(n));
    e.to_eval();

    // b = -a*s + e. The secret is over all primes with identity index
    // mapping, so limb k of `a` pairs with limb idx[k] of s.
    piece.b = RnsPoly(ring, idx, Domain::Eval);
    for (std::size_t k = 0; k < idx.size(); ++k) {
        const Barrett64 &br = ring->barrett(idx[k]);
        u64 q = ring->prime(idx[k]);
        const u64 *av = piece.a.limb(k);
        const u64 *sv = sk_.s.limb(idx[k]);
        const u64 *ev = e.limb(k);
        u64 *bv = piece.b.limb(k);
        for (std::size_t t = 0; t < n; ++t) {
            bv[t] = add_mod(neg_mod(br.mul(av[t], sv[t]), q), ev[t], q);
        }
    }
    return piece;
}

PublicKey
KeyGenerator::make_public_key()
{
    std::vector<std::size_t> ctIdx(ctx_->params().L);
    for (std::size_t i = 0; i < ctIdx.size(); ++i) ctIdx[i] = i;
    KSwitchKey::Piece p = encrypt_zero(ctIdx);
    return PublicKey{std::move(p.b), std::move(p.a)};
}

KSwitchKey
KeyGenerator::make_kswitch_key(const RnsPoly &newKeyEval)
{
    POSEIDON_REQUIRE(newKeyEval.domain() == Domain::Eval,
                     "make_kswitch_key: new key must be in Eval domain");
    POSEIDON_REQUIRE(newKeyEval.num_limbs() == ctx_->ring()->num_primes(),
                     "make_kswitch_key: new key must span the full chain");

    const auto &ring = ctx_->ring();
    std::size_t n = ctx_->degree();
    std::size_t L = ctx_->params().L;
    std::size_t alpha = ctx_->alpha();
    std::size_t numDigits = ctx_->num_digits(L);

    KSwitchKey key;
    key.pieces.reserve(numDigits);
    for (std::size_t j = 0; j < numDigits; ++j) {
        KSwitchKey::Piece piece = encrypt_zero(allIdx_);
        // Add P * [newKey]_{q_i} into every limb of digit group j
        // (Eval domain); other limbs stay encryptions of zero, so the
        // encrypted value is P * newKey * delta_j with delta_j the CRT
        // indicator of the group.
        std::size_t end = std::min((j + 1) * alpha, L);
        for (std::size_t i = j * alpha; i < end; ++i) {
            u64 q = ring->prime(i);
            const Barrett64 &br = ring->barrett(i);
            u64 factor = ctx_->p_mod_qi(i);
            const u64 *nk = newKeyEval.limb(i);
            u64 *bv = piece.b.limb(i);
            for (std::size_t t = 0; t < n; ++t) {
                bv[t] = add_mod(bv[t], br.mul(factor, nk[t]), q);
            }
        }
        key.pieces.push_back(std::move(piece));
    }
    return key;
}

KSwitchKey
KeyGenerator::make_relin_key()
{
    // s' = s^2 over the full chain (element-wise square in Eval).
    RnsPoly s2 = sk_.s;
    s2.mul_inplace(sk_.s);
    return make_kswitch_key(s2);
}

KSwitchKey
KeyGenerator::make_galois_key(u64 galois)
{
    POSEIDON_REQUIRE(galois % 2 == 1 && galois < 2 * ctx_->degree(),
                     "make_galois_key: galois element " << galois
                     << " must be odd and < 2N = "
                     << 2 * ctx_->degree());
    RnsPoly sg = automorphism(sk_.s, galois);
    return make_kswitch_key(sg);
}

GaloisKeys
KeyGenerator::make_galois_keys(const std::vector<long> &steps,
                               bool includeConjugate)
{
    GaloisKeys gk;
    std::size_t n = ctx_->degree();
    for (long s : steps) {
        u64 g = galois_element_for_step(n, s);
        if (!gk.has(g)) gk.keys.emplace(g, make_galois_key(g));
    }
    if (includeConjugate) {
        u64 g = galois_element_conjugate(n);
        if (!gk.has(g)) gk.keys.emplace(g, make_galois_key(g));
    }
    return gk;
}

} // namespace poseidon
