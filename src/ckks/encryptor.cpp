#include "ckks/encryptor.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace poseidon {

CkksEncryptor::CkksEncryptor(CkksContextPtr ctx, PublicKey pk, u64 seed)
    : ctx_(std::move(ctx)), pk_(std::move(pk)), sampler_(seed)
{
    POSEIDON_REQUIRE(ctx_ != nullptr, "CkksEncryptor: null context");
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       pk_.b.degree() == ctx_->degree() &&
                       pk_.a.degree() == ctx_->degree(),
                       "CkksEncryptor: public key degree does not match "
                       "the context (N=" << ctx_->degree() << ")");
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       pk_.b.num_limbs() >= ctx_->params().L &&
                       pk_.a.num_limbs() >= ctx_->params().L,
                       "CkksEncryptor: public key spans "
                       << pk_.b.num_limbs() << " limbs, need "
                       << ctx_->params().L);
}

Ciphertext
CkksEncryptor::encrypt(const Plaintext &pt)
{
    POSEIDON_REQUIRE(pt.poly.domain() == Domain::Eval,
                     "encrypt: plaintext must be in Eval domain");
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       pt.poly.degree() == ctx_->degree(),
                       "encrypt: plaintext degree " << pt.poly.degree()
                       << " does not match the context N="
                       << ctx_->degree());
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       pt.num_limbs() >= 1 &&
                       pt.num_limbs() <= ctx_->params().L,
                       "encrypt: plaintext over " << pt.num_limbs()
                       << " limbs outside [1, " << ctx_->params().L
                       << "]");
    POSEIDON_REQUIRE(pt.scale > 0.0 && std::isfinite(pt.scale),
                     "encrypt: plaintext carries invalid scale "
                     << pt.scale);
    std::size_t limbs = pt.num_limbs();
    std::size_t n = ctx_->degree();
    const auto &ring = ctx_->ring();

    // Ephemeral ternary u and errors e0, e1.
    RnsPoly u = RnsPoly::ct(ring, limbs, Domain::Coeff);
    u.assign_signed(sampler_.ternary(n));
    u.to_eval();

    RnsPoly e0 = RnsPoly::ct(ring, limbs, Domain::Coeff);
    e0.assign_signed(sampler_.gaussian(n));
    e0.to_eval();
    RnsPoly e1 = RnsPoly::ct(ring, limbs, Domain::Coeff);
    e1.assign_signed(sampler_.gaussian(n));
    e1.to_eval();

    // Restrict the public key to the ciphertext's limbs.
    Ciphertext ct;
    ct.c0 = RnsPoly::ct(ring, limbs, Domain::Eval);
    ct.c1 = RnsPoly::ct(ring, limbs, Domain::Eval);
    // Sampling above is done (PRNG stays thread-confined); combining
    // the sampled polys with the public key is pure per-limb work.
    parallel::parallel_for(0, limbs, 1,
        [&](std::size_t kk0, std::size_t kk1) {
            for (std::size_t k = kk0; k < kk1; ++k) {
                const Barrett64 &br = ring->barrett(k);
                u64 q = ring->prime(k);
                const u64 *bv = pk_.b.limb(k);
                const u64 *av = pk_.a.limb(k);
                const u64 *uv = u.limb(k);
                const u64 *m = pt.poly.limb(k);
                u64 *c0 = ct.c0.limb(k);
                u64 *c1 = ct.c1.limb(k);
                const u64 *ev0 = e0.limb(k);
                const u64 *ev1 = e1.limb(k);
                for (std::size_t t = 0; t < n; ++t) {
                    c0[t] = add_mod(add_mod(br.mul(bv[t], uv[t]),
                                            ev0[t], q),
                                    m[t], q);
                    c1[t] = add_mod(br.mul(av[t], uv[t]), ev1[t], q);
                }
            }
        }, "ckks.encrypt");
    ct.scale = pt.scale;
    return ct;
}

Ciphertext
CkksEncryptor::encrypt_symmetric(const Plaintext &pt, const SecretKey &sk)
{
    POSEIDON_REQUIRE(pt.poly.domain() == Domain::Eval,
                     "encrypt_symmetric: plaintext must be in Eval domain");
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       pt.poly.degree() == ctx_->degree() &&
                       sk.s.degree() == ctx_->degree(),
                       "encrypt_symmetric: plaintext/secret degree does "
                       "not match the context (N=" << ctx_->degree()
                       << ")");
    std::size_t limbs = pt.num_limbs();
    std::size_t n = ctx_->degree();
    const auto &ring = ctx_->ring();

    RnsPoly e(ring, [&] {
        std::vector<std::size_t> idx(limbs);
        for (std::size_t i = 0; i < limbs; ++i) idx[i] = i;
        return idx;
    }(), Domain::Coeff);
    e.assign_signed(sampler_.gaussian(n));
    e.to_eval();

    Ciphertext ct;
    ct.c0 = RnsPoly::ct(ring, limbs, Domain::Eval);
    ct.c1 = RnsPoly::ct(ring, limbs, Domain::Eval);
    // Serial on purpose: c1 is drawn from the sampler's PRNG
    // per-element inside the loop, and the PRNG stream (and the
    // ciphertext derived from it) must not depend on the thread count.
    for (std::size_t k = 0; k < limbs; ++k) {
        u64 q = ring->prime(k);
        const Barrett64 &br = ring->barrett(k);
        const u64 *sv = sk.s.limb(k);
        const u64 *m = pt.poly.limb(k);
        const u64 *ev = e.limb(k);
        u64 *c0 = ct.c0.limb(k);
        u64 *c1 = ct.c1.limb(k);
        for (std::size_t t = 0; t < n; ++t) {
            c1[t] = sampler_.prng().uniform(q);
            c0[t] = add_mod(add_mod(neg_mod(br.mul(c1[t], sv[t]), q),
                                    ev[t], q),
                            m[t], q);
        }
    }
    ct.scale = pt.scale;
    return ct;
}

CkksDecryptor::CkksDecryptor(CkksContextPtr ctx, SecretKey sk)
    : ctx_(std::move(ctx)), sk_(std::move(sk))
{
    POSEIDON_REQUIRE(ctx_ != nullptr, "CkksDecryptor: null context");
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       sk_.s.degree() == ctx_->degree(),
                       "CkksDecryptor: secret key degree does not match "
                       "the context (N=" << ctx_->degree() << ")");
}

Plaintext
CkksDecryptor::decrypt(const Ciphertext &ct) const
{
    POSEIDON_REQUIRE(ct.c0.domain() == Domain::Eval &&
                     ct.c1.domain() == Domain::Eval,
                     "decrypt: ciphertext must be in Eval domain");
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       ct.c0.num_limbs() == ct.c1.num_limbs(),
                       "decrypt: ciphertext components disagree ("
                       << ct.c0.num_limbs() << " vs "
                       << ct.c1.num_limbs() << " limbs)");
    POSEIDON_REQUIRE_T(ShapeMismatch, ct.degree() == ctx_->degree(),
                       "decrypt: ciphertext degree " << ct.degree()
                       << " does not match the context N="
                       << ctx_->degree());
    std::size_t limbs = ct.num_limbs();
    std::size_t n = ctx_->degree();
    const auto &ring = ctx_->ring();

    Plaintext pt;
    pt.poly = RnsPoly::ct(ring, limbs, Domain::Eval);
    parallel::parallel_for(0, limbs, 1,
        [&](std::size_t kk0, std::size_t kk1) {
            for (std::size_t k = kk0; k < kk1; ++k) {
                const Barrett64 &br = ring->barrett(k);
                u64 q = ring->prime(k);
                const u64 *c0 = ct.c0.limb(k);
                const u64 *c1 = ct.c1.limb(k);
                const u64 *sv = sk_.s.limb(k); // identity prime mapping
                u64 *m = pt.poly.limb(k);
                for (std::size_t t = 0; t < n; ++t) {
                    m[t] = add_mod(c0[t], br.mul(c1[t], sv[t]), q);
                }
            }
        }, "ckks.decrypt");
    pt.scale = ct.scale;
    return pt;
}

} // namespace poseidon
