#include "ckks/encoder.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace poseidon {

namespace {

void
array_bit_reverse(std::vector<cdouble> &vals)
{
    std::size_t n = vals.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(vals[i], vals[j]);
    }
}

const CkksContextPtr&
require_ctx(const CkksContextPtr &ctx)
{
    POSEIDON_REQUIRE(ctx != nullptr, "CkksEncoder: null context");
    return ctx;
}

} // namespace

CkksEncoder::CkksEncoder(CkksContextPtr ctx)
    : ctx_(std::move(ctx)),
      slots_(require_ctx(ctx_)->slots()),
      m_(2 * ctx_->degree())
{
    ksiPows_.resize(m_ + 1);
    for (std::size_t k = 0; k <= m_; ++k) {
        double angle = 2.0 * M_PI * static_cast<double>(k) /
                       static_cast<double>(m_);
        ksiPows_[k] = cdouble(std::cos(angle), std::sin(angle));
    }
    rotGroup_.resize(slots_);
    std::size_t fivePow = 1;
    for (std::size_t j = 0; j < slots_; ++j) {
        rotGroup_[j] = fivePow;
        fivePow = (fivePow * 5) % m_;
    }
}

void
CkksEncoder::fft_special(std::vector<cdouble> &vals) const
{
    std::size_t size = vals.size();
    POSEIDON_REQUIRE(is_pow2(size) && size <= slots_,
                     "fft_special: bad size");
    array_bit_reverse(vals);
    for (std::size_t len = 2; len <= size; len <<= 1) {
        for (std::size_t i = 0; i < size; i += len) {
            std::size_t lenh = len >> 1;
            std::size_t lenq = len << 2;
            for (std::size_t j = 0; j < lenh; ++j) {
                std::size_t idx = (rotGroup_[j] % lenq) * (m_ / lenq);
                cdouble u = vals[i + j];
                cdouble v = vals[i + j + lenh] * ksiPows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
CkksEncoder::fft_special_inv(std::vector<cdouble> &vals) const
{
    std::size_t size = vals.size();
    POSEIDON_REQUIRE(is_pow2(size) && size <= slots_,
                     "fft_special_inv: bad size");
    for (std::size_t len = size; len >= 1; len >>= 1) {
        for (std::size_t i = 0; i < size; i += len) {
            std::size_t lenh = len >> 1;
            std::size_t lenq = len << 2;
            for (std::size_t j = 0; j < lenh; ++j) {
                std::size_t idx =
                    (lenq - (rotGroup_[j] % lenq)) * (m_ / lenq);
                cdouble u = vals[i + j] + vals[i + j + lenh];
                cdouble v = (vals[i + j] - vals[i + j + lenh]) *
                            ksiPows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
        if (len == 1) break; // len is unsigned; avoid wrap
    }
    array_bit_reverse(vals);
    double inv = 1.0 / static_cast<double>(size);
    for (auto &v : vals) v *= inv;
}

Plaintext
CkksEncoder::encode(const std::vector<cdouble> &values, std::size_t limbs,
                    double scale) const
{
    POSEIDON_REQUIRE(values.size() <= slots_,
                     "encode: " << values.size() << " values exceed the "
                     << slots_ << " available slots");
    POSEIDON_REQUIRE(limbs >= 1 && limbs <= ctx_->params().L,
                     "encode: limb count " << limbs << " outside [1, "
                     << ctx_->params().L << "]");
    if (scale <= 0.0) scale = ctx_->params().scale();
    POSEIDON_REQUIRE(std::isfinite(scale),
                     "encode: scale must be finite, got " << scale);

    std::vector<cdouble> vals(slots_, cdouble(0, 0));
    std::copy(values.begin(), values.end(), vals.begin());
    fft_special_inv(vals);

    std::size_t n = ctx_->degree();
    std::vector<i64> coeffs(n);
    constexpr double kMaxCoeff = 4.0e18; // i64 headroom guard
    for (std::size_t j = 0; j < slots_; ++j) {
        double re = vals[j].real() * scale;
        double im = vals[j].imag() * scale;
        POSEIDON_REQUIRE(std::abs(re) < kMaxCoeff &&
                         std::abs(im) < kMaxCoeff,
                         "encode: coefficient overflows 62 bits — "
                         "scale too large for these values");
        coeffs[j] = static_cast<i64>(std::llround(re));
        coeffs[j + slots_] = static_cast<i64>(std::llround(im));
    }

    Plaintext pt;
    pt.poly = RnsPoly::ct(ctx_->ring(), limbs, Domain::Coeff);
    pt.poly.assign_signed(coeffs);
    pt.poly.to_eval();
    pt.scale = scale;
    return pt;
}

Plaintext
CkksEncoder::encode_real(const std::vector<double> &values,
                         std::size_t limbs, double scale) const
{
    std::vector<cdouble> v(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) v[i] = values[i];
    return encode(v, limbs, scale);
}

Plaintext
CkksEncoder::encode_scalar(cdouble value, std::size_t limbs,
                           double scale) const
{
    return encode(std::vector<cdouble>(slots_, value), limbs, scale);
}

std::vector<cdouble>
CkksEncoder::decode(const Plaintext &pt) const
{
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       pt.poly.degree() == ctx_->degree(),
                       "decode: plaintext degree " << pt.poly.degree()
                       << " does not match the context N="
                       << ctx_->degree());
    POSEIDON_REQUIRE(pt.scale > 0.0 && std::isfinite(pt.scale),
                     "decode: plaintext carries invalid scale "
                     << pt.scale);
    RnsPoly poly = pt.poly;
    poly.to_coeff();

    std::size_t limbs = poly.num_limbs();
    const RnsBasis &basis = ctx_->ring()->ct_basis(limbs);

    // Each slot composes its residues independently; the residue
    // gather buffer is chunk-local.
    std::vector<cdouble> vals(slots_);
    parallel::parallel_for(0, slots_, 1024,
        [&](std::size_t j0, std::size_t j1) {
            std::vector<u64> res(limbs);
            for (std::size_t j = j0; j < j1; ++j) {
                for (std::size_t k = 0; k < limbs; ++k) {
                    res[k] = poly.limb(k)[j];
                }
                double re = basis.compose_centered_double(res.data());
                for (std::size_t k = 0; k < limbs; ++k) {
                    res[k] = poly.limb(k)[j + slots_];
                }
                double im = basis.compose_centered_double(res.data());
                vals[j] = cdouble(re / pt.scale, im / pt.scale);
            }
        }, "ckks.decode");
    fft_special(vals);
    return vals;
}

} // namespace poseidon
