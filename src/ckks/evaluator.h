#ifndef POSEIDON_CKKS_EVALUATOR_H_
#define POSEIDON_CKKS_EVALUATOR_H_

/**
 * @file
 * The CKKS evaluator: every basic operation of the paper's Section II.
 *
 * HAdd, PMult, CMult(+relinearization), Rescale, Keyswitch
 * (ModUp/RNSconv/ModDown), Rotation and conjugation. Each operation is
 * exactly the composition of the five Poseidon operators (MA, MM,
 * NTT/INTT, Automorphism, SBT); the isa/ module mirrors this
 * decomposition for the hardware model.
 */

#include <utility>

#include "ckks/ciphertext.h"
#include "ckks/keys.h"

namespace poseidon {

/// Homomorphic-operation engine for one context.
class CkksEvaluator
{
  public:
    explicit CkksEvaluator(CkksContextPtr ctx);

    const CkksContextPtr& context() const { return ctx_; }

    // ---- HAdd ----
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;
    void add_inplace(Ciphertext &a, const Ciphertext &b) const;
    void sub_inplace(Ciphertext &a, const Ciphertext &b) const;
    Ciphertext negate(const Ciphertext &a) const;
    Ciphertext add_plain(const Ciphertext &a, const Plaintext &p) const;
    Ciphertext sub_plain(const Ciphertext &a, const Plaintext &p) const;

    // ---- PMult ----
    /// Ciphertext-plaintext multiply; scales multiply (rescale after).
    Ciphertext mul_plain(const Ciphertext &a, const Plaintext &p) const;

    /**
     * Multiply by the scalar `value` encoded at `scale` (default: the
     * context scale): each limb is multiplied by round(value*scale)
     * mod q. Only the MM operator is exercised — no encoding FFT.
     */
    Ciphertext mul_scalar(const Ciphertext &a, double value,
                          double scale = -1.0) const;

    /// Multiply by a small signed integer without changing the scale.
    Ciphertext mul_integer(const Ciphertext &a, i64 value) const;

    // ---- CMult with relinearization ----
    Ciphertext mul(const Ciphertext &a, const Ciphertext &b,
                   const KSwitchKey &relinKey) const;
    Ciphertext square(const Ciphertext &a,
                      const KSwitchKey &relinKey) const;

    // ---- Rescale ----
    void rescale_inplace(Ciphertext &a) const;
    Ciphertext rescale(const Ciphertext &a) const;

    /**
     * Bring `a` to exactly `targetScale` by multiplying with 1.0
     * encoded at scale targetScale * q_last / a.scale and rescaling
     * (costs one level). Lets operands from different rescale paths
     * be added together.
     */
    Ciphertext adjust_scale(const Ciphertext &a, double targetScale) const;

    /// Equalize two operands' levels and scales (each may lose one
    /// level), so that add/sub between them is valid.
    void equalize_inplace(Ciphertext &a, Ciphertext &b) const;

    /// Drop limbs to `limbs` primes without rounding (mod switch).
    void drop_to_limbs_inplace(Ciphertext &a, std::size_t limbs) const;

    /// Drop limbs of a plaintext to match a ciphertext.
    void drop_to_limbs_inplace(Plaintext &p, std::size_t limbs) const;

    // ---- Rotation / conjugation ----
    Ciphertext rotate(const Ciphertext &a, long steps,
                      const GaloisKeys &keys) const;

    /**
     * Hoisted multi-rotation (Halevi-Shoup): the expensive ModUp digit
     * decomposition of c1 runs once and is shared by every requested
     * rotation; each extra rotation costs only an evaluation-domain
     * permutation, the key inner product and a ModDown. Bit-exact with
     * calling rotate() per step. `keys` must hold a key for every
     * nonzero step.
     */
    std::vector<Ciphertext>
    rotate_hoisted(const Ciphertext &a, const std::vector<long> &steps,
                   const GaloisKeys &keys) const;
    Ciphertext conjugate(const Ciphertext &a, const GaloisKeys &keys) const;

    /// Apply tau_g followed by a keyswitch back to s.
    Ciphertext apply_galois(const Ciphertext &a, u64 galois,
                            const KSwitchKey &key) const;

    // ---- Keyswitch core (exposed for bootstrapping / ISA tracing) ----
    /**
     * Switch the key under `d` (an Eval-domain polynomial currently
     * multiplied by some s') back to s: returns (u0, u1) such that
     * u0 + u1*s ~ d*s'. This is ModUp -> inner products -> ModDown,
     * i.e. the paper's Keyswitch pipeline.
     */
    std::pair<RnsPoly, RnsPoly>
    keyswitch_core(const RnsPoly &d, const KSwitchKey &key) const;

  private:
    void check_same_shape(const Ciphertext &a, const Ciphertext &b) const;
    void rescale_poly(RnsPoly &p) const;

    /// Extended prime indices {0..limbs-1} + all special primes.
    std::vector<std::size_t> extended_indices(std::size_t limbs) const;

    /**
     * ModUp digit decomposition of a coefficient-domain polynomial:
     * result[j][m] holds digit j broadcast into extended prime m, in
     * evaluation domain. Memory: digits * ext * N words.
     */
    std::vector<std::vector<std::vector<u64>>>
    decompose_digits_eval(const RnsPoly &dCoeff,
                          const std::vector<std::size_t> &extIdx) const;

    /// ModDown both keyswitch accumulators back to the q-basis.
    std::pair<RnsPoly, RnsPoly>
    mod_down_pair(RnsPoly &&acc0, RnsPoly &&acc1,
                  std::size_t limbs) const;

    CkksContextPtr ctx_;
};

} // namespace poseidon

#endif // POSEIDON_CKKS_EVALUATOR_H_
