#include "ckks/bootstrap.h"

#include "ckks/chebyshev.h"

#include <cmath>

#include "common/check.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace poseidon {

namespace {

/// Diagonal d of a dense matrix: diag_d[j] = M[j][(j+d) mod n].
std::vector<cdouble>
extract_diagonal(const std::vector<std::vector<cdouble>> &m, std::size_t d)
{
    std::size_t n = m.size();
    std::vector<cdouble> diag(n);
    for (std::size_t j = 0; j < n; ++j) diag[j] = m[j][(j + d) % n];
    return diag;
}

} // namespace

Bootstrapper::Bootstrapper(CkksContextPtr ctx, const CkksEncoder &encoder,
                           KeyGenerator &keygen, BootstrapConfig cfg)
    : ctx_(std::move(ctx)), encoder_(encoder), cfg_(cfg)
{
    POSEIDON_REQUIRE(cfg_.taylorDegree >= 3 && cfg_.taylorDegree <= 15,
                     "Bootstrapper: taylorDegree out of range");
    std::size_t ns = ctx_->slots();

    // BSGS split: n1 ~ sqrt(ns) rounded to a power of two.
    n1_ = std::size_t(1) << ((log2_floor(ns) + 1) / 2);
    nb_ = ns / n1_;

    // Build the encoding matrices numerically from the encoder's own
    // transforms (column k = transform(e_k)).
    std::vector<std::vector<cdouble>> fwd(ns, std::vector<cdouble>(ns));
    std::vector<std::vector<cdouble>> inv(ns, std::vector<cdouble>(ns));
    std::vector<cdouble> col(ns);
    for (std::size_t k = 0; k < ns; ++k) {
        std::fill(col.begin(), col.end(), cdouble(0, 0));
        col[k] = 1.0;
        encoder_.fft_special(col);
        for (std::size_t j = 0; j < ns; ++j) fwd[j][k] = col[j];

        std::fill(col.begin(), col.end(), cdouble(0, 0));
        col[k] = 1.0;
        encoder_.fft_special_inv(col);
        for (std::size_t j = 0; j < ns; ++j) inv[j][k] = col[j];
    }

    // CoeffToSlot folds the 1/q0 normalization into the matrix.
    double q0 = static_cast<double>(ctx_->ring()->prime(0));
    ctsDiags_.resize(ns);
    stcDiags_.resize(ns);
    for (std::size_t d = 0; d < ns; ++d) {
        ctsDiags_[d] = extract_diagonal(inv, d);
        for (auto &v : ctsDiags_[d]) {
            v *= ctx_->params().scale() / q0;
        }
        stcDiags_[d] = extract_diagonal(fwd, d);
    }
    // The CtS constants carry Delta/q0; the matrix above was scaled by
    // Delta/q0 so that slots after the transform hold t/q0 directly.

    if (cfg_.variant == EvalModVariant::ChebyshevCos) {
        double r2 = std::ldexp(1.0, static_cast<int>(
            cfg_.doubleAngleIters));
        cosCoeffs_ = chebyshev_interpolate(
            [&](double x) {
                return std::cos((2.0 * M_PI * x - M_PI / 2.0) / r2);
            },
            -cfg_.kRange, cfg_.kRange, cfg_.chebDegree);
    }

    // Keys: relinearization plus the BSGS rotations and conjugation.
    relin_ = keygen.make_relin_key();
    for (std::size_t g = 1; g < n1_; ++g) {
        steps_.push_back(static_cast<long>(g));
    }
    for (std::size_t b = 1; b < nb_; ++b) {
        steps_.push_back(static_cast<long>(b * n1_));
    }
    gk_ = keygen.make_galois_keys(steps_, /*includeConjugate=*/true);
}

std::size_t
Bootstrapper::levels_consumed() const
{
    if (cfg_.variant == EvalModVariant::ChebyshevCos) {
        // CtS 1 + split 1 + Chebyshev evaluation (affine 2, power
        // ladder ~log2+3, BSGS recursion ~2*log2(deg/m)+1, scale
        // normalization 1) + doubleAngle r + final constant 1 +
        // combine 1 + StC 1. Conservative upper bound:
        std::size_t m = 1;
        while (m * m < cfg_.chebDegree + 1) m <<= 1;
        std::size_t ladder = log2_floor(m) + 3;
        std::size_t rec = 2 * (log2_floor(std::max<std::size_t>(
                              cfg_.chebDegree / std::max<std::size_t>(m, 1),
                              1)) + 1) + 2;
        return 2 + 2 + ladder + rec + 1 + cfg_.doubleAngleIters + 1 +
               1 + 1;
    }
    // CtS 1 + split 1 + argument scaling 1 + Horner taylorDegree +
    // doubleAngle r + sine extraction 1 + combine 1 + StC 1.
    return 1 + 1 + 1 + cfg_.taylorDegree + cfg_.doubleAngleIters + 1 +
           1 + 1;
}

Ciphertext
Bootstrapper::mod_raise(const Ciphertext &ct) const
{
    POSEIDON_REQUIRE(ct.num_limbs() == 1,
                     "mod_raise: input must sit at the bottom level");
    const auto &ring = ctx_->ring();
    std::size_t n = ctx_->degree();
    std::size_t L = ctx_->params().L;
    u64 q0 = ring->prime(0);
    const RnsBasis &full = ring->ct_basis(L);

    auto raise_poly = [&](const RnsPoly &in) {
        RnsPoly c = in;
        c.to_coeff();
        RnsPoly out = RnsPoly::ct(ring, L, Domain::Coeff);
        std::vector<u64> res(L);
        const u64 *src = c.limb(0);
        for (std::size_t t = 0; t < n; ++t) {
            i64 v = centered(src[t], q0);
            full.decompose(v, res.data());
            for (std::size_t k = 0; k < L; ++k) out.limb(k)[t] = res[k];
        }
        out.to_eval();
        return out;
    };

    Ciphertext out;
    out.c0 = raise_poly(ct.c0);
    out.c1 = raise_poly(ct.c1);
    out.scale = ct.scale;
    return out;
}

Ciphertext
Bootstrapper::mul_cscalar(const Ciphertext &ct, cdouble v,
                          const CkksEvaluator &eval) const
{
    // Encode the constant at Delta*q/scale so the rescaled result sits
    // at exactly Delta. Any relative deviation entering EvalMod would
    // otherwise be amplified exponentially by the double-angle
    // squarings (each squaring doubles the log-scale error).
    double delta = ctx_->params().scale();
    u64 q = ct.c0.prime(ct.num_limbs() - 1);
    double e = delta * static_cast<double>(q) / ct.scale;
    POSEIDON_REQUIRE(e >= 1.0, "mul_cscalar: scale too large to "
                               "normalize at this level");
    Plaintext pt = encoder_.encode_scalar(v, ct.num_limbs(), e);
    Ciphertext out = eval.mul_plain(ct, pt);
    eval.rescale_inplace(out);
    out.scale = delta;
    return out;
}

Ciphertext
Bootstrapper::add_cscalar(const Ciphertext &ct, cdouble v) const
{
    Plaintext pt = encoder_.encode_scalar(v, ct.num_limbs(), ct.scale);
    Ciphertext out = ct;
    out.c0.add_inplace(pt.poly);
    return out;
}

Ciphertext
Bootstrapper::linear_transform(
    const Ciphertext &ct, const std::vector<std::vector<cdouble>> &diags,
    const CkksEvaluator &eval, double factor) const
{
    std::size_t ns = ctx_->slots();

    // Baby-step rotations, hoisted: one digit decomposition of c1
    // shared by all n1 rotations (Halevi-Shoup).
    std::vector<long> babySteps(n1_);
    for (std::size_t g = 0; g < n1_; ++g) {
        babySteps[g] = static_cast<long>(g);
    }
    std::vector<Ciphertext> rots = eval.rotate_hoisted(ct, babySteps, gk_);

    Ciphertext acc;
    bool accSet = false;
    std::vector<cdouble> diag(ns);
    for (std::size_t b = 0; b < nb_; ++b) {
        Ciphertext inner;
        bool innerSet = false;
        std::size_t shift = b * n1_;
        for (std::size_t g = 0; g < n1_; ++g) {
            const auto &d = diags[shift + g];
            // Pre-rotate the diagonal right by the giant step.
            for (std::size_t j = 0; j < ns; ++j) {
                diag[j] = d[(j + ns - shift) % ns] * factor;
            }
            Plaintext pt = encoder_.encode(diag, rots[g].num_limbs());
            Ciphertext term = eval.mul_plain(rots[g], pt);
            if (innerSet) {
                eval.add_inplace(inner, term);
            } else {
                inner = std::move(term);
                innerSet = true;
            }
        }
        if (shift != 0) {
            inner = eval.rotate(inner, static_cast<long>(shift), gk_);
        }
        if (accSet) {
            eval.add_inplace(acc, inner);
        } else {
            acc = std::move(inner);
            accSet = true;
        }
    }
    eval.rescale_inplace(acc);
    return acc;
}

std::pair<Ciphertext, Ciphertext>
Bootstrapper::coeff_to_slot(const Ciphertext &ct,
                            const CkksEvaluator &eval,
                            double msgScale) const
{
    // The stored diagonals carry Delta/q0; fold in the actual message
    // scale so the transform outputs exactly t/q0 (t integer + m).
    if (msgScale <= 0.0) msgScale = ctx_->params().scale();
    double factor = msgScale / ctx_->params().scale();
    Ciphertext z = linear_transform(ct, ctsDiags_, eval, factor);
    Ciphertext zc = eval.conjugate(z, gk_);

    // lo = (z + conj z) / 2, hi = (z - conj z) * (-i/2).
    Ciphertext lo = eval.add(z, zc);
    lo = mul_cscalar(lo, cdouble(0.5, 0.0), eval);
    Ciphertext hi = eval.sub(z, zc);
    hi = mul_cscalar(hi, cdouble(0.0, -0.5), eval);
    return {std::move(lo), std::move(hi)};
}

Ciphertext
Bootstrapper::eval_mod(const Ciphertext &ct, const CkksEvaluator &eval,
                       double msgScale) const
{
    double q0 = static_cast<double>(ctx_->ring()->prime(0));
    double delta = msgScale > 0.0 ? msgScale : ctx_->params().scale();
    unsigned r = cfg_.doubleAngleIters;
    unsigned deg = cfg_.taylorDegree;

    if (cfg_.variant == EvalModVariant::ChebyshevCos) {
        // u ~ cos((2*pi*x - pi/2)/2^r), real Chebyshev evaluation.
        ChebyshevEvaluator cheb(ctx_, encoder_, eval);
        Ciphertext u = cheb.evaluate(ct, cosCoeffs_, -cfg_.kRange,
                                     cfg_.kRange, relin_);
        u = eval.adjust_scale(u, ctx_->params().scale());
        // Double angle: cos(2t) = 2cos^2(t) - 1, r times, landing on
        // cos(2*pi*x - pi/2) = sin(2*pi*x).
        for (unsigned i = 0; i < r; ++i) {
            Ciphertext sq = eval.square(u, relin_);
            eval.rescale_inplace(sq);
            sq = eval.mul_integer(sq, 2);
            Plaintext one = encoder_.encode_scalar(
                cdouble(-1.0, 0.0), sq.num_limbs(), sq.scale);
            u = eval.add_plain(sq, one);
        }
        // * q0 / (2*pi*msgScale) to land on m at message scale.
        return mul_cscalar(u, cdouble(q0 / (2.0 * M_PI * delta), 0.0),
                           eval);
    }

    // y = 2*pi*x / 2^r.
    double argScale = 2.0 * M_PI / std::ldexp(1.0, static_cast<int>(r));
    Ciphertext y = mul_cscalar(ct, cdouble(argScale, 0.0), eval);

    // Taylor coefficients of exp(i*y): c_d = i^d / d!.
    std::vector<cdouble> c(deg + 1);
    double fact = 1.0;
    for (unsigned d = 0; d <= deg; ++d) {
        if (d > 0) fact *= static_cast<double>(d);
        cdouble id;
        switch (d % 4) {
          case 0: id = cdouble(1, 0); break;
          case 1: id = cdouble(0, 1); break;
          case 2: id = cdouble(-1, 0); break;
          default: id = cdouble(0, -1); break;
        }
        c[d] = id / fact;
    }

    // Horner: u = (..((c_deg*y + c_{deg-1})*y + ...)*y + c_0.
    Ciphertext u = mul_cscalar(y, c[deg], eval);
    u = add_cscalar(u, c[deg - 1]);
    for (unsigned d = deg - 1; d-- > 0;) {
        Ciphertext yMatched = y;
        eval.drop_to_limbs_inplace(yMatched, u.num_limbs());
        u = eval.mul(u, yMatched, relin_);
        eval.rescale_inplace(u);
        u = add_cscalar(u, c[d]);
    }

    // Double angle: square r times to reach exp(2*pi*i*x).
    for (unsigned i = 0; i < r; ++i) {
        u = eval.square(u, relin_);
        eval.rescale_inplace(u);
    }

    // sin(2 pi x) * q0 / (2 pi): (u - conj u) * (-i/2) * q0/(2 pi delta)
    // — the final delta folds the result back to message scale.
    Ciphertext uc = eval.conjugate(u, gk_);
    Ciphertext s = eval.sub(u, uc);
    double k = q0 / (2.0 * M_PI * delta);
    return mul_cscalar(s, cdouble(0.0, -0.5) * k, eval);
}

Ciphertext
Bootstrapper::slot_to_coeff(const Ciphertext &lo, const Ciphertext &hi,
                            const CkksEvaluator &eval) const
{
    // z = lo + i*hi, run both through one scalar mult to equalize
    // scale and level exactly.
    Ciphertext a = mul_cscalar(lo, cdouble(1.0, 0.0), eval);
    Ciphertext b = mul_cscalar(hi, cdouble(0.0, 1.0), eval);
    Ciphertext z = eval.add(a, b);
    return linear_transform(z, stcDiags_, eval);
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext &ct,
                        const CkksEvaluator &eval) const
{
    POSEIDON_SPAN("Bootstrapper::bootstrap");
    telemetry::count("ckks.ops.bootstrap");
    POSEIDON_REQUIRE(ctx_->params().L >= levels_consumed() + 2,
                     "bootstrap: modulus chain too short for the "
                     "configured EvalMod depth");
    Ciphertext in = ct;
    if (in.num_limbs() > 1) eval.drop_to_limbs_inplace(in, 1);

    double msgScale = in.scale;
    Ciphertext raised = mod_raise(in);
    auto [lo, hi] = coeff_to_slot(raised, eval, msgScale);
    Ciphertext mlo = eval_mod(lo, eval, msgScale);
    Ciphertext mhi = eval_mod(hi, eval, msgScale);
    Ciphertext out = slot_to_coeff(mlo, mhi, eval);
    // The EvalMod constant already folded 1/msgScale, so the output
    // message is back at the scale the pipeline tracked.
    return out;
}

} // namespace poseidon
