#include "ckks/params.h"

#include <algorithm>

#include "common/check.h"
#include "rns/primes.h"

namespace poseidon {

CkksContext::CkksContext(const CkksParams &params)
    : params_(params)
{
    POSEIDON_REQUIRE(params_.logN >= 3 && params_.logN <= 17,
                     "CkksContext: logN out of range [3,17]");
    POSEIDON_REQUIRE(params_.L >= 1, "CkksContext: need at least one prime");
    POSEIDON_REQUIRE(params_.K >= 1,
                     "CkksContext: need at least one special prime");

    if (params_.dnum == 0) {
        alpha_ = 1;
    } else {
        POSEIDON_REQUIRE(params_.dnum <= params_.L,
                         "CkksContext: dnum must be <= L");
        alpha_ = (params_.L + params_.dnum - 1) / params_.dnum;
        POSEIDON_REQUIRE(params_.K >= alpha_,
                         "CkksContext: hybrid keyswitching needs "
                         "K >= ceil(L/dnum) special primes");
    }

    std::size_t n = params_.degree();

    // Prime chain: q_0 at firstPrimeBits, q_1..q_{L-1} near the scale,
    // then K special primes. All pairwise distinct.
    std::vector<u64> primes;
    std::vector<u64> avoid;

    auto first = generate_ntt_primes(n, params_.firstPrimeBits, 1, avoid);
    primes.push_back(first[0]);
    avoid.push_back(first[0]);

    if (params_.L > 1) {
        // Mid-chain primes sit just below 2^scaleBits so that every
        // rescale divides by ~Delta and the working scale stays put.
        auto mids = generate_ntt_primes(n, params_.scaleBits,
                                        params_.L - 1, avoid);
        for (u64 p : mids) {
            primes.push_back(p);
            avoid.push_back(p);
        }
    }
    auto specials = generate_ntt_primes(n, params_.specialPrimeBits,
                                        params_.K, avoid);
    for (u64 p : specials) primes.push_back(p);

    ring_ = std::make_shared<RingContext>(n, primes, params_.K);
    modDown_.resize(params_.L);

    // P mod q_i for the keyswitch key generation.
    pModQ_.resize(params_.L);
    const BigUInt &bigP = ring_->special_basis().big_product();
    for (std::size_t i = 0; i < params_.L; ++i) {
        pModQ_[i] = bigP.mod_u64(ring_->prime(i));
    }
}

const ModDown&
CkksContext::mod_down(std::size_t limbs) const
{
    POSEIDON_REQUIRE(limbs >= 1 && limbs <= params_.L,
                     "CkksContext::mod_down: bad limb count");
    auto &slot = modDown_[limbs - 1];
    if (!slot) {
        slot = std::make_unique<ModDown>(ring_->ct_basis(limbs),
                                         ring_->special_basis());
    }
    return *slot;
}

const RnsConv&
CkksContext::digit_conv(std::size_t limbs, std::size_t g) const
{
    POSEIDON_REQUIRE(limbs >= 1 && limbs <= params_.L,
                     "digit_conv: bad limb count");
    std::size_t start = g * alpha_;
    POSEIDON_REQUIRE(start < limbs, "digit_conv: bad group index");
    std::size_t len = std::min(alpha_, limbs - start);

    std::size_t key = limbs * (params_.L + 1) + g;
    auto it = digitConv_.find(key);
    if (it != digitConv_.end()) return *it->second;

    std::vector<u64> srcPrimes;
    for (std::size_t i = start; i < start + len; ++i) {
        srcPrimes.push_back(ring_->prime(i));
    }
    // Destination: every chain prime (ciphertext + special); callers
    // use the limbs they need.
    std::vector<u64> dstPrimes;
    for (std::size_t i = 0; i < ring_->num_primes(); ++i) {
        dstPrimes.push_back(ring_->prime(i));
    }
    auto conv = std::make_unique<RnsConv>(RnsBasis(std::move(srcPrimes)),
                                          RnsBasis(std::move(dstPrimes)));
    const RnsConv &ref = *conv;
    digitConv_.emplace(key, std::move(conv));
    return ref;
}

CkksContextPtr
make_ckks_context(const CkksParams &params)
{
    return std::make_shared<CkksContext>(params);
}

} // namespace poseidon
