#ifndef POSEIDON_CKKS_ENCODER_H_
#define POSEIDON_CKKS_ENCODER_H_

/**
 * @file
 * CKKS encoder: canonical-embedding encoding of complex vectors.
 *
 * A message vector z in C^{N/2} maps to a real polynomial m(X) whose
 * evaluations at the primitive 2N-th roots of unity (one per conjugate
 * orbit, ordered by powers of 5) equal Delta * z. Encoding runs the
 * special inverse FFT over the rot-group ordering (HEAAN-style), scales
 * by Delta and rounds; decoding is the forward special FFT. Slot
 * rotation by r then corresponds to the Galois map X -> X^{5^r}.
 */

#include <complex>
#include <vector>

#include "ckks/ciphertext.h"
#include "ckks/params.h"

namespace poseidon {

using cdouble = std::complex<double>;

/// Encoder/decoder for one context (owns the root/rot-group tables).
class CkksEncoder
{
  public:
    explicit CkksEncoder(CkksContextPtr ctx);

    std::size_t slots() const { return slots_; }

    /**
     * Encode a complex vector into a plaintext over `limbs` primes.
     * The vector may be shorter than slots(); it is zero-padded.
     *
     * @param scale  encoding scale; <= 0 means the context default
     */
    Plaintext encode(const std::vector<cdouble> &values,
                     std::size_t limbs, double scale = -1.0) const;

    /// Encode a real vector (imaginary parts zero).
    Plaintext encode_real(const std::vector<double> &values,
                          std::size_t limbs, double scale = -1.0) const;

    /// Encode the same scalar into every slot.
    Plaintext encode_scalar(cdouble value, std::size_t limbs,
                            double scale = -1.0) const;

    /// Decode a plaintext back to slots() complex values.
    std::vector<cdouble> decode(const Plaintext &pt) const;

    /**
     * Direct access to the special FFT used by encode/decode; the
     * bootstrapper uses these to build CoeffToSlot/SlotToCoeff
     * matrices.
     */
    void fft_special(std::vector<cdouble> &vals) const;
    void fft_special_inv(std::vector<cdouble> &vals) const;

  private:
    CkksContextPtr ctx_;
    std::size_t slots_;
    std::size_t m_;                    ///< 2N
    std::vector<cdouble> ksiPows_;     ///< exp(2*pi*i*k/M), k in [0, M]
    std::vector<std::size_t> rotGroup_; ///< 5^j mod M, j in [0, slots)
};

} // namespace poseidon

#endif // POSEIDON_CKKS_ENCODER_H_
