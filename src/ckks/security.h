#ifndef POSEIDON_CKKS_SECURITY_H_
#define POSEIDON_CKKS_SECURITY_H_

/**
 * @file
 * Security estimation per the Homomorphic Encryption Standard tables
 * (ternary secret, classical attacks): for each ring degree N there is
 * a maximum total modulus size log2(PQ) at a given security level.
 *
 * Test and demo parameter sets in this repository deliberately violate
 * these bounds (small N keeps tests fast); production deployments must
 * check `estimate_security` >= their target.
 */

#include "ckks/params.h"

namespace poseidon {

/// Security levels of the HE standard tables.
enum class SecurityLevel { None, Classical128, Classical192,
                           Classical256 };

/**
 * Maximum log2 of the total ciphertext+special modulus for a ternary
 * secret at the given level; 0 if the degree is outside the tables
 * (N < 1024).
 */
unsigned max_log_pq(std::size_t degree, SecurityLevel level);

/// Total log2(PQ) a parameter set actually uses (all chain primes).
double total_log_pq(const CkksParams &params);

/**
 * The strongest standard level `params` satisfies (None if even
 * 128-bit classical security fails).
 */
SecurityLevel estimate_security(const CkksParams &params);

const char* to_string(SecurityLevel level);

} // namespace poseidon

#endif // POSEIDON_CKKS_SECURITY_H_
