#ifndef POSEIDON_CKKS_KEYS_H_
#define POSEIDON_CKKS_KEYS_H_

/**
 * @file
 * CKKS key material and the key generator.
 *
 * Keyswitching uses the RNS digit decomposition (one digit per
 * ciphertext prime) with a special-prime product P — the scheme
 * Poseidon accelerates with its ModUp/ModDown/RNSconv operator
 * pipeline. A switching key from s' to s has one piece per digit:
 *
 *   piece_i = ( b_i, a_i ),  b_i = -a_i*s + e_i  over R_{PQ},
 *   with P*[s']_{q_i} added into the q_i limb of b_i.
 *
 * Relinearization keys take s' = s^2; Galois keys take s' = tau_g(s).
 */

#include <map>
#include <vector>

#include "ckks/params.h"
#include "common/prng.h"
#include "poly/poly.h"

namespace poseidon {

/// The RLWE secret, stored in Eval domain over the full prime chain.
struct SecretKey
{
    RnsPoly s;
};

/// Encryption key (b, a) = (-a*s + e, a) over the ciphertext primes.
struct PublicKey
{
    RnsPoly b;
    RnsPoly a;
};

/// One switching key: `pieces[i]` handles the i-th RNS digit.
struct KSwitchKey
{
    struct Piece
    {
        RnsPoly b;
        RnsPoly a;
    };
    std::vector<Piece> pieces;

    bool empty() const { return pieces.empty(); }
};

/// A set of Galois keys indexed by galois element.
struct GaloisKeys
{
    std::map<u64, KSwitchKey> keys;

    bool has(u64 galois) const { return keys.count(galois) != 0; }

    const KSwitchKey& get(u64 galois) const;
};

/// Generates all key material from a seeded sampler.
class KeyGenerator
{
  public:
    /**
     * Draws the secret immediately. The secret is ternary with
     * hamming weight h = min(N/2, 64) (sparse secrets keep
     * bootstrapping's EvalMod range small, as in HEAAN).
     */
    explicit KeyGenerator(CkksContextPtr ctx);

    const SecretKey& secret_key() const { return sk_; }

    /// Fresh public encryption key.
    PublicKey make_public_key();

    /// Relinearization key (s^2 -> s).
    KSwitchKey make_relin_key();

    /// Galois key for one element (tau_g(s) -> s).
    KSwitchKey make_galois_key(u64 galois);

    /// Galois keys for a set of rotation steps (and optionally conj).
    GaloisKeys make_galois_keys(const std::vector<long> &steps,
                                bool includeConjugate = false);

    /**
     * Generic switching key from `newKey` (given in Eval domain over
     * the full prime chain) to the generator's secret. Public so the
     * bootstrapper and tests can build custom keys.
     */
    KSwitchKey make_kswitch_key(const RnsPoly &newKeyEval);

  private:
    /// (b, a) = (-a*s + e, a) over the given context prime indices.
    KSwitchKey::Piece encrypt_zero(const std::vector<std::size_t> &idx);

    CkksContextPtr ctx_;
    Sampler sampler_;
    SecretKey sk_;
    std::vector<std::size_t> allIdx_; ///< every prime index in the chain
};

} // namespace poseidon

#endif // POSEIDON_CKKS_KEYS_H_
