#include "ckks/noise.h"

#include <cmath>

#include "ckks/encryptor.h"
#include "common/check.h"
#include "telemetry/metrics.h"

namespace poseidon {

NoiseInspector::NoiseInspector(CkksContextPtr ctx, SecretKey sk)
    : ctx_(std::move(ctx)), sk_(std::move(sk))
{}

double
NoiseInspector::noise_bits(const Ciphertext &ct,
                           const std::vector<cdouble> &expected,
                           const CkksEncoder &encoder) const
{
    CkksDecryptor dec(ctx_, sk_);
    Plaintext actual = dec.decrypt(ct);
    Plaintext exact = encoder.encode(expected, ct.num_limbs(), ct.scale);

    RnsPoly d = actual.poly;
    d.sub_inplace(exact.poly);
    d.to_coeff();

    const RnsBasis &basis = ctx_->ring()->ct_basis(ct.num_limbs());
    std::size_t n = ctx_->degree();
    std::vector<u64> res(ct.num_limbs());
    double maxAbs = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t k = 0; k < ct.num_limbs(); ++k) {
            res[k] = d.limb(k)[t];
        }
        maxAbs = std::max(maxAbs,
                          std::abs(basis.compose_centered_double(
                              res.data())));
    }
    double bits = maxAbs <= 0.0 ? -1e9 : std::log2(maxAbs);
    telemetry::gauge_set("ckks.noise.noise_bits", bits);
    return bits;
}

double
NoiseInspector::capacity_bits(const Ciphertext &ct) const
{
    double bits = -1.0; // Q/2
    for (std::size_t k = 0; k < ct.num_limbs(); ++k) {
        bits += std::log2(static_cast<double>(ct.c0.prime(k)));
    }
    return bits;
}

double
NoiseInspector::budget_bits(const Ciphertext &ct,
                            const std::vector<cdouble> &expected,
                            const CkksEncoder &encoder) const
{
    (void)encoder;
    double maxMag = 1e-300;
    for (const auto &v : expected) {
        maxMag = std::max(maxMag, std::abs(v));
    }
    double bits = capacity_bits(ct) - std::log2(ct.scale) -
                  std::max(0.0, std::log2(maxMag));
    telemetry::gauge_set("ckks.noise.budget_bits", bits);
    return bits;
}

} // namespace poseidon
