#include <cstring>
#include "ckks/serialize.h"

#include <istream>
#include <ostream>

#include "common/logging.h"

namespace poseidon::io {

namespace {

constexpr u64 kMagicParams = 0x50534431u;  // "PSD1"
constexpr u64 kMagicPoly = 0x50534432u;
constexpr u64 kMagicCiphertext = 0x50534433u;
constexpr u64 kMagicPlaintext = 0x50534434u;
constexpr u64 kMagicSecret = 0x50534435u;
constexpr u64 kMagicPublic = 0x50534436u;
constexpr u64 kMagicKSwitch = 0x50534437u;
constexpr u64 kMagicGalois = 0x50534438u;

void
put_u64(std::ostream &os, u64 v)
{
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = (v >> (8 * i)) & 0xff;
    os.write(reinterpret_cast<const char*>(buf), 8);
}

u64
get_u64(std::istream &is)
{
    unsigned char buf[8];
    is.read(reinterpret_cast<char*>(buf), 8);
    POSEIDON_REQUIRE(is.good(), "serialize: truncated stream");
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= u64(buf[i]) << (8 * i);
    return v;
}

void
put_double(std::ostream &os, double d)
{
    u64 bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    put_u64(os, bits);
}

double
get_double(std::istream &is)
{
    u64 bits = get_u64(is);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

void
expect_magic(std::istream &is, u64 magic, const char *what)
{
    POSEIDON_REQUIRE(get_u64(is) == magic,
                     std::string("serialize: bad magic for ") + what);
}

} // namespace

void
write_params(std::ostream &os, const CkksParams &p)
{
    put_u64(os, kMagicParams);
    put_u64(os, p.logN);
    put_u64(os, p.L);
    put_u64(os, p.scaleBits);
    put_u64(os, p.firstPrimeBits);
    put_u64(os, p.specialPrimeBits);
    put_u64(os, p.K);
    put_u64(os, p.dnum);
    put_u64(os, p.seed);
}

CkksParams
read_params(std::istream &is)
{
    expect_magic(is, kMagicParams, "CkksParams");
    CkksParams p;
    p.logN = static_cast<unsigned>(get_u64(is));
    p.L = get_u64(is);
    p.scaleBits = static_cast<unsigned>(get_u64(is));
    p.firstPrimeBits = static_cast<unsigned>(get_u64(is));
    p.specialPrimeBits = static_cast<unsigned>(get_u64(is));
    p.K = get_u64(is);
    p.dnum = get_u64(is);
    p.seed = get_u64(is);
    return p;
}

void
write_poly(std::ostream &os, const RnsPoly &p)
{
    put_u64(os, kMagicPoly);
    put_u64(os, p.degree());
    put_u64(os, p.num_limbs());
    put_u64(os, p.domain() == Domain::Eval ? 1 : 0);
    for (std::size_t k = 0; k < p.num_limbs(); ++k) {
        put_u64(os, p.prime_index(k));
        put_u64(os, p.prime(k)); // revalidated on load
        const u64 *limb = p.limb(k);
        for (std::size_t t = 0; t < p.degree(); ++t) put_u64(os, limb[t]);
    }
}

RnsPoly
read_poly(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicPoly, "RnsPoly");
    u64 n = get_u64(is);
    POSEIDON_REQUIRE(n == ring->degree(),
                     "read_poly: degree mismatch with context");
    u64 limbs = get_u64(is);
    Domain d = get_u64(is) ? Domain::Eval : Domain::Coeff;

    std::vector<std::size_t> idx(limbs);
    std::vector<std::vector<u64>> data(limbs);
    for (u64 k = 0; k < limbs; ++k) {
        idx[k] = get_u64(is);
        POSEIDON_REQUIRE(idx[k] < ring->num_primes(),
                         "read_poly: prime index out of range");
        u64 prime = get_u64(is);
        POSEIDON_REQUIRE(prime == ring->prime(idx[k]),
                         "read_poly: prime chain mismatch — wrong "
                         "context for this stream");
        data[k].resize(n);
        for (u64 t = 0; t < n; ++t) {
            data[k][t] = get_u64(is);
            POSEIDON_REQUIRE(data[k][t] < prime,
                             "read_poly: residue out of range");
        }
    }
    RnsPoly p(ring, idx, d);
    for (u64 k = 0; k < limbs; ++k) {
        std::copy(data[k].begin(), data[k].end(), p.limb(k));
    }
    return p;
}

void
write_ciphertext(std::ostream &os, const Ciphertext &ct)
{
    put_u64(os, kMagicCiphertext);
    put_double(os, ct.scale);
    write_poly(os, ct.c0);
    write_poly(os, ct.c1);
}

Ciphertext
read_ciphertext(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicCiphertext, "Ciphertext");
    Ciphertext ct;
    ct.scale = get_double(is);
    ct.c0 = read_poly(is, ring);
    ct.c1 = read_poly(is, ring);
    return ct;
}

void
write_plaintext(std::ostream &os, const Plaintext &pt)
{
    put_u64(os, kMagicPlaintext);
    put_double(os, pt.scale);
    write_poly(os, pt.poly);
}

Plaintext
read_plaintext(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicPlaintext, "Plaintext");
    Plaintext pt;
    pt.scale = get_double(is);
    pt.poly = read_poly(is, ring);
    return pt;
}

void
write_secret_key(std::ostream &os, const SecretKey &sk)
{
    put_u64(os, kMagicSecret);
    write_poly(os, sk.s);
}

SecretKey
read_secret_key(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicSecret, "SecretKey");
    return SecretKey{read_poly(is, ring)};
}

void
write_public_key(std::ostream &os, const PublicKey &pk)
{
    put_u64(os, kMagicPublic);
    write_poly(os, pk.b);
    write_poly(os, pk.a);
}

PublicKey
read_public_key(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicPublic, "PublicKey");
    PublicKey pk;
    pk.b = read_poly(is, ring);
    pk.a = read_poly(is, ring);
    return pk;
}

void
write_kswitch_key(std::ostream &os, const KSwitchKey &k)
{
    put_u64(os, kMagicKSwitch);
    put_u64(os, k.pieces.size());
    for (const auto &piece : k.pieces) {
        write_poly(os, piece.b);
        write_poly(os, piece.a);
    }
}

KSwitchKey
read_kswitch_key(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicKSwitch, "KSwitchKey");
    u64 count = get_u64(is);
    KSwitchKey k;
    k.pieces.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        KSwitchKey::Piece piece;
        piece.b = read_poly(is, ring);
        piece.a = read_poly(is, ring);
        k.pieces.push_back(std::move(piece));
    }
    return k;
}

void
write_galois_keys(std::ostream &os, const GaloisKeys &gk)
{
    put_u64(os, kMagicGalois);
    put_u64(os, gk.keys.size());
    for (const auto &[g, key] : gk.keys) {
        put_u64(os, g);
        write_kswitch_key(os, key);
    }
}

GaloisKeys
read_galois_keys(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicGalois, "GaloisKeys");
    u64 count = get_u64(is);
    GaloisKeys gk;
    for (u64 i = 0; i < count; ++i) {
        u64 g = get_u64(is);
        gk.keys.emplace(g, read_kswitch_key(is, ring));
    }
    return gk;
}

} // namespace poseidon::io
