#include <cstring>
#include "ckks/serialize.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace poseidon::io {

namespace {

/// Wire format version, packed into the high half of every magic word.
/// Bump when the byte layout of any object changes.
constexpr u64 kFormatVersion = 1;

constexpr u64 kMagicParams = 0x50534431u;  // "PSD1"
constexpr u64 kMagicPoly = 0x50534432u;
constexpr u64 kMagicCiphertext = 0x50534433u;
constexpr u64 kMagicPlaintext = 0x50534434u;
constexpr u64 kMagicSecret = 0x50534435u;
constexpr u64 kMagicPublic = 0x50534436u;
constexpr u64 kMagicKSwitch = 0x50534437u;
constexpr u64 kMagicGalois = 0x50534438u;
constexpr u64 kMagicError = 0x50534445u;   // "PSDE"

/// Longest error-frame message accepted from the wire.
constexpr u64 kMaxErrorMessage = 4096;

void
put_u64(std::ostream &os, u64 v)
{
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = (v >> (8 * i)) & 0xff;
    os.write(reinterpret_cast<const char*>(buf), 8);
}

u64
get_u64(std::istream &is)
{
    unsigned char buf[8];
    is.read(reinterpret_cast<char*>(buf), 8);
    POSEIDON_REQUIRE_T(ParseError, is.good(),
                       "serialize: truncated stream");
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= u64(buf[i]) << (8 * i);
    return v;
}

void
put_double(std::ostream &os, double d)
{
    u64 bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    put_u64(os, bits);
}

double
get_double(std::istream &is)
{
    u64 bits = get_u64(is);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

/// A positive, finite scale — anything else on the wire is hostile.
double
get_scale(std::istream &is, const char *what)
{
    double s = get_double(is);
    POSEIDON_REQUIRE_T(ParseError, std::isfinite(s) && s > 0.0,
                       "serialize: " << what
                       << " carries a non-finite or non-positive scale");
    return s;
}

void
put_magic(std::ostream &os, u64 magic)
{
    put_u64(os, magic | (kFormatVersion << 32));
}

void
expect_magic(std::istream &is, u64 magic, const char *what)
{
    u64 v = get_u64(is);
    POSEIDON_REQUIRE_T(ParseError, (v & 0xffffffffu) == magic,
                       "serialize: bad magic for " << what);
    u64 version = v >> 32;
    POSEIDON_REQUIRE_T(ParseError, version == kFormatVersion,
                       "serialize: " << what << " has format version "
                       << version << ", this build reads version "
                       << kFormatVersion);
}

/**
 * Translate any non-ParseError failure escaping a reader (invariant
 * trips in nested constructors, allocation failure) into ParseError:
 * at the service boundary every malformed input must surface as one
 * catchable type.
 */
template <typename Fn>
auto
parse_guard(const char *what, Fn &&fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const ParseError&) {
        throw;
    } catch (const Error &e) {
        POSEIDON_THROW(ParseError, "serialize: reading " << what
                       << " failed: " << e.message());
    } catch (const std::bad_alloc&) {
        POSEIDON_THROW(ParseError, "serialize: reading " << what
                       << " exceeded memory bounds");
    }
}

} // namespace

void
write_params(std::ostream &os, const CkksParams &p)
{
    put_magic(os, kMagicParams);
    put_u64(os, p.logN);
    put_u64(os, p.L);
    put_u64(os, p.scaleBits);
    put_u64(os, p.firstPrimeBits);
    put_u64(os, p.specialPrimeBits);
    put_u64(os, p.K);
    put_u64(os, p.dnum);
    put_u64(os, p.seed);
}

CkksParams
read_params(std::istream &is)
{
  return parse_guard("CkksParams", [&] {
    expect_magic(is, kMagicParams, "CkksParams");
    u64 logN = get_u64(is);
    u64 L = get_u64(is);
    u64 scaleBits = get_u64(is);
    u64 firstPrimeBits = get_u64(is);
    u64 specialPrimeBits = get_u64(is);
    u64 K = get_u64(is);
    u64 dnum = get_u64(is);
    u64 seed = get_u64(is);

    // Sanity bounds: a context built from accepted parameters must
    // stay within the library's own limits, so a hostile stream cannot
    // drive unbounded table allocation downstream.
    POSEIDON_REQUIRE_T(ParseError, logN >= 3 && logN <= 17,
                       "read_params: logN " << logN
                       << " outside [3, 17]");
    POSEIDON_REQUIRE_T(ParseError, L >= 1 && L <= 64,
                       "read_params: chain length " << L
                       << " outside [1, 64]");
    POSEIDON_REQUIRE_T(ParseError, scaleBits >= 1 && scaleBits <= 61,
                       "read_params: scaleBits " << scaleBits
                       << " outside [1, 61]");
    POSEIDON_REQUIRE_T(ParseError,
                       firstPrimeBits >= 1 && firstPrimeBits <= 61,
                       "read_params: firstPrimeBits " << firstPrimeBits
                       << " outside [1, 61]");
    POSEIDON_REQUIRE_T(ParseError,
                       specialPrimeBits >= 1 && specialPrimeBits <= 61,
                       "read_params: specialPrimeBits "
                       << specialPrimeBits << " outside [1, 61]");
    POSEIDON_REQUIRE_T(ParseError, K >= 1 && K <= 16,
                       "read_params: special prime count " << K
                       << " outside [1, 16]");
    POSEIDON_REQUIRE_T(ParseError, dnum <= L,
                       "read_params: dnum " << dnum
                       << " exceeds chain length " << L);

    CkksParams p;
    p.logN = static_cast<unsigned>(logN);
    p.L = L;
    p.scaleBits = static_cast<unsigned>(scaleBits);
    p.firstPrimeBits = static_cast<unsigned>(firstPrimeBits);
    p.specialPrimeBits = static_cast<unsigned>(specialPrimeBits);
    p.K = K;
    p.dnum = dnum;
    p.seed = seed;
    return p;
  });
}

void
write_poly(std::ostream &os, const RnsPoly &p)
{
    put_magic(os, kMagicPoly);
    put_u64(os, p.degree());
    put_u64(os, p.num_limbs());
    put_u64(os, p.domain() == Domain::Eval ? 1 : 0);
    for (std::size_t k = 0; k < p.num_limbs(); ++k) {
        put_u64(os, p.prime_index(k));
        put_u64(os, p.prime(k)); // revalidated on load
        const u64 *limb = p.limb(k);
        for (std::size_t t = 0; t < p.degree(); ++t) put_u64(os, limb[t]);
    }
}

namespace {

RnsPoly
read_poly_impl(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicPoly, "RnsPoly");
    u64 n = get_u64(is);
    POSEIDON_REQUIRE_T(ParseError, n == ring->degree(),
                       "read_poly: declared degree " << n
                       << " does not match the context N="
                       << ring->degree());
    u64 limbs = get_u64(is);
    // Bound the declared size BEFORE any allocation: a hostile limb
    // count must not drive memory consumption.
    POSEIDON_REQUIRE_T(ParseError,
                       limbs >= 1 && limbs <= ring->num_primes(),
                       "read_poly: declared limb count " << limbs
                       << " outside [1, " << ring->num_primes() << "]");
    u64 domainFlag = get_u64(is);
    POSEIDON_REQUIRE_T(ParseError, domainFlag <= 1,
                       "read_poly: bad domain flag " << domainFlag);
    Domain d = domainFlag ? Domain::Eval : Domain::Coeff;

    std::vector<std::size_t> idx(limbs);
    std::vector<std::vector<u64>> data(limbs);
    std::vector<bool> seen(ring->num_primes(), false);
    for (u64 k = 0; k < limbs; ++k) {
        idx[k] = get_u64(is);
        POSEIDON_REQUIRE_T(ParseError, idx[k] < ring->num_primes(),
                           "read_poly: prime index " << idx[k]
                           << " out of range");
        POSEIDON_REQUIRE_T(ParseError, !seen[idx[k]],
                           "read_poly: duplicate prime index "
                           << idx[k]);
        seen[idx[k]] = true;
        u64 prime = get_u64(is);
        POSEIDON_REQUIRE_T(ParseError, prime == ring->prime(idx[k]),
                           "read_poly: prime chain mismatch — wrong "
                           "context for this stream");
        data[k].resize(n);
        for (u64 t = 0; t < n; ++t) {
            data[k][t] = get_u64(is);
            POSEIDON_REQUIRE_T(ParseError, data[k][t] < prime,
                               "read_poly: residue out of range");
        }
    }
    RnsPoly p(ring, idx, d);
    for (u64 k = 0; k < limbs; ++k) {
        std::copy(data[k].begin(), data[k].end(), p.limb(k));
    }
    return p;
}

/// Require a poly to sit on the contiguous ciphertext basis
/// {q_0..q_{limbs-1}} — what every ciphertext/plaintext component uses.
void
require_ct_basis(const RnsPoly &p, const char *what)
{
    for (std::size_t k = 0; k < p.num_limbs(); ++k) {
        POSEIDON_REQUIRE_T(ParseError, p.prime_index(k) == k,
                           "serialize: " << what << " is not on the "
                           "contiguous ciphertext basis");
    }
}

} // namespace

RnsPoly
read_poly(std::istream &is, const RingContextPtr &ring)
{
    return parse_guard("RnsPoly",
                       [&] { return read_poly_impl(is, ring); });
}

void
write_ciphertext(std::ostream &os, const Ciphertext &ct)
{
    put_magic(os, kMagicCiphertext);
    put_double(os, ct.scale);
    write_poly(os, ct.c0);
    write_poly(os, ct.c1);
}

Ciphertext
read_ciphertext(std::istream &is, const RingContextPtr &ring)
{
  return parse_guard("Ciphertext", [&] {
    expect_magic(is, kMagicCiphertext, "Ciphertext");
    Ciphertext ct;
    ct.scale = get_scale(is, "Ciphertext");
    ct.c0 = read_poly_impl(is, ring);
    ct.c1 = read_poly_impl(is, ring);
    POSEIDON_REQUIRE_T(ParseError,
                       ct.c0.num_limbs() == ct.c1.num_limbs(),
                       "read_ciphertext: components disagree ("
                       << ct.c0.num_limbs() << " vs "
                       << ct.c1.num_limbs() << " limbs)");
    POSEIDON_REQUIRE_T(ParseError, ct.c0.domain() == ct.c1.domain(),
                       "read_ciphertext: components in different "
                       "domains");
    require_ct_basis(ct.c0, "ciphertext c0");
    require_ct_basis(ct.c1, "ciphertext c1");
    return ct;
  });
}

void
write_plaintext(std::ostream &os, const Plaintext &pt)
{
    put_magic(os, kMagicPlaintext);
    put_double(os, pt.scale);
    write_poly(os, pt.poly);
}

Plaintext
read_plaintext(std::istream &is, const RingContextPtr &ring)
{
  return parse_guard("Plaintext", [&] {
    expect_magic(is, kMagicPlaintext, "Plaintext");
    Plaintext pt;
    pt.scale = get_scale(is, "Plaintext");
    pt.poly = read_poly_impl(is, ring);
    require_ct_basis(pt.poly, "plaintext");
    return pt;
  });
}

void
write_secret_key(std::ostream &os, const SecretKey &sk)
{
    put_magic(os, kMagicSecret);
    write_poly(os, sk.s);
}

SecretKey
read_secret_key(std::istream &is, const RingContextPtr &ring)
{
  return parse_guard("SecretKey", [&] {
    expect_magic(is, kMagicSecret, "SecretKey");
    SecretKey sk{read_poly_impl(is, ring)};
    POSEIDON_REQUIRE_T(ParseError,
                       sk.s.num_limbs() == ring->num_primes(),
                       "read_secret_key: secret spans "
                       << sk.s.num_limbs() << " limbs, the chain has "
                       << ring->num_primes());
    return sk;
  });
}

void
write_public_key(std::ostream &os, const PublicKey &pk)
{
    put_magic(os, kMagicPublic);
    write_poly(os, pk.b);
    write_poly(os, pk.a);
}

PublicKey
read_public_key(std::istream &is, const RingContextPtr &ring)
{
  return parse_guard("PublicKey", [&] {
    expect_magic(is, kMagicPublic, "PublicKey");
    PublicKey pk;
    pk.b = read_poly_impl(is, ring);
    pk.a = read_poly_impl(is, ring);
    POSEIDON_REQUIRE_T(ParseError,
                       pk.b.num_limbs() == pk.a.num_limbs(),
                       "read_public_key: components disagree ("
                       << pk.b.num_limbs() << " vs "
                       << pk.a.num_limbs() << " limbs)");
    require_ct_basis(pk.b, "public key b");
    require_ct_basis(pk.a, "public key a");
    return pk;
  });
}

void
write_kswitch_key(std::ostream &os, const KSwitchKey &k)
{
    put_magic(os, kMagicKSwitch);
    put_u64(os, k.pieces.size());
    for (const auto &piece : k.pieces) {
        write_poly(os, piece.b);
        write_poly(os, piece.a);
    }
}

namespace {

KSwitchKey
read_kswitch_key_impl(std::istream &is, const RingContextPtr &ring)
{
    expect_magic(is, kMagicKSwitch, "KSwitchKey");
    u64 count = get_u64(is);
    // One piece per RNS digit: never more digits than chain primes.
    POSEIDON_REQUIRE_T(ParseError,
                       count >= 1 && count <= ring->num_primes(),
                       "read_kswitch_key: declared piece count "
                       << count << " outside [1, "
                       << ring->num_primes() << "]");
    KSwitchKey k;
    k.pieces.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        KSwitchKey::Piece piece;
        piece.b = read_poly_impl(is, ring);
        piece.a = read_poly_impl(is, ring);
        POSEIDON_REQUIRE_T(ParseError,
                           piece.b.num_limbs() == piece.a.num_limbs(),
                           "read_kswitch_key: piece " << i
                           << " components disagree ("
                           << piece.b.num_limbs() << " vs "
                           << piece.a.num_limbs() << " limbs)");
        k.pieces.push_back(std::move(piece));
    }
    return k;
}

} // namespace

KSwitchKey
read_kswitch_key(std::istream &is, const RingContextPtr &ring)
{
    return parse_guard("KSwitchKey",
                       [&] { return read_kswitch_key_impl(is, ring); });
}

void
write_galois_keys(std::ostream &os, const GaloisKeys &gk)
{
    put_magic(os, kMagicGalois);
    put_u64(os, gk.keys.size());
    for (const auto &[g, key] : gk.keys) {
        put_u64(os, g);
        write_kswitch_key(os, key);
    }
}

GaloisKeys
read_galois_keys(std::istream &is, const RingContextPtr &ring)
{
  return parse_guard("GaloisKeys", [&] {
    expect_magic(is, kMagicGalois, "GaloisKeys");
    u64 count = get_u64(is);
    // Distinct odd galois elements mod 2N: at most N of them.
    POSEIDON_REQUIRE_T(ParseError, count <= ring->degree(),
                       "read_galois_keys: declared key count " << count
                       << " exceeds " << ring->degree());
    GaloisKeys gk;
    for (u64 i = 0; i < count; ++i) {
        u64 g = get_u64(is);
        POSEIDON_REQUIRE_T(ParseError,
                           g % 2 == 1 && g < 2 * ring->degree(),
                           "read_galois_keys: element " << g
                           << " must be odd and < 2N");
        POSEIDON_REQUIRE_T(ParseError, !gk.has(g),
                           "read_galois_keys: duplicate element " << g);
        gk.keys.emplace(g, read_kswitch_key_impl(is, ring));
    }
    return gk;
  });
}

void
write_error_frame(std::ostream &os, ErrorCode code,
                  const std::string &message)
{
    put_magic(os, kMagicError);
    put_u64(os, static_cast<u64>(code));
    std::string clipped = message.substr(0, kMaxErrorMessage);
    put_u64(os, clipped.size());
    os.write(clipped.data(),
             static_cast<std::streamsize>(clipped.size()));
}

ErrorFrame
read_error_frame(std::istream &is)
{
  return parse_guard("ErrorFrame", [&] {
    expect_magic(is, kMagicError, "ErrorFrame");
    u64 code = get_u64(is);
    POSEIDON_REQUIRE_T(ParseError,
                       code <= static_cast<u64>(ErrorCode::kInternal),
                       "read_error_frame: unknown error code " << code);
    u64 len = get_u64(is);
    POSEIDON_REQUIRE_T(ParseError, len <= kMaxErrorMessage,
                       "read_error_frame: message length " << len
                       << " exceeds " << kMaxErrorMessage);
    std::string message(len, '\0');
    if (len > 0) {
        is.read(message.data(), static_cast<std::streamsize>(len));
        POSEIDON_REQUIRE_T(ParseError,
                           is.gcount() ==
                               static_cast<std::streamsize>(len),
                           "read_error_frame: truncated message");
    }
    return ErrorFrame{static_cast<ErrorCode>(code), std::move(message)};
  });
}

bool
is_error_frame(std::istream &is)
{
    std::streampos pos = is.tellg();
    unsigned char buf[8];
    is.read(reinterpret_cast<char*>(buf), 8);
    bool full = is.gcount() == 8;
    is.clear();
    is.seekg(pos);
    if (!full) return false;
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= u64(buf[i]) << (8 * i);
    return (v & 0xffffffffu) == kMagicError;
}

} // namespace poseidon::io
