#ifndef POSEIDON_CKKS_ENCRYPTOR_H_
#define POSEIDON_CKKS_ENCRYPTOR_H_

/**
 * @file
 * Public-key encryption and secret-key decryption.
 */

#include "ckks/ciphertext.h"
#include "ckks/keys.h"

namespace poseidon {

/// Encrypts plaintexts under a public key.
class CkksEncryptor
{
  public:
    CkksEncryptor(CkksContextPtr ctx, PublicKey pk, u64 seed = 7);

    /// RLWE public-key encryption: ct = (b*u + e0 + m, a*u + e1).
    Ciphertext encrypt(const Plaintext &pt);

    /**
     * Symmetric (secret-key) encryption: ct = (-a*s + e + m, a) with
     * fresh uniform a. Slightly less noise than public-key encryption;
     * used when the data owner holds the secret anyway.
     */
    Ciphertext encrypt_symmetric(const Plaintext &pt,
                                 const SecretKey &sk);

  private:
    CkksContextPtr ctx_;
    PublicKey pk_;
    Sampler sampler_;
};

/// Decrypts ciphertexts with the secret key.
class CkksDecryptor
{
  public:
    CkksDecryptor(CkksContextPtr ctx, SecretKey sk);

    /// m = c0 + c1 * s, carried at the ciphertext's scale.
    Plaintext decrypt(const Ciphertext &ct) const;

  private:
    CkksContextPtr ctx_;
    SecretKey sk_;
};

} // namespace poseidon

#endif // POSEIDON_CKKS_ENCRYPTOR_H_
