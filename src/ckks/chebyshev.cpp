#include "ckks/chebyshev.h"

#include <cmath>

#include "common/check.h"

namespace poseidon {

std::vector<double>
chebyshev_interpolate(const std::function<double(double)> &f, double a,
                      double b, unsigned degree)
{
    POSEIDON_REQUIRE(b > a, "chebyshev_interpolate: empty interval");
    unsigned m = degree + 1;
    std::vector<double> fv(m);
    for (unsigned k = 0; k < m; ++k) {
        double theta = M_PI * (k + 0.5) / m;
        double y = std::cos(theta);
        double x = 0.5 * (y * (b - a) + (a + b));
        fv[k] = f(x);
    }
    std::vector<double> c(m);
    for (unsigned j = 0; j < m; ++j) {
        double acc = 0;
        for (unsigned k = 0; k < m; ++k) {
            acc += fv[k] * std::cos(j * M_PI * (k + 0.5) / m);
        }
        c[j] = (j == 0 ? 1.0 : 2.0) * acc / m;
    }
    return c;
}

double
chebyshev_eval_plain(const std::vector<double> &coeffs, double a,
                     double b, double x)
{
    double y = (2.0 * x - a - b) / (b - a);
    // Clenshaw recurrence.
    double b1 = 0, b2 = 0;
    for (std::size_t j = coeffs.size(); j-- > 1;) {
        double t = 2.0 * y * b1 - b2 + coeffs[j];
        b2 = b1;
        b1 = t;
    }
    return y * b1 - b2 + coeffs[0];
}

ChebyshevEvaluator::ChebyshevEvaluator(CkksContextPtr ctx,
                                       const CkksEncoder &encoder,
                                       const CkksEvaluator &eval)
    : ctx_(std::move(ctx)), encoder_(encoder), eval_(eval)
{}

Ciphertext
ChebyshevEvaluator::cheb_double(const Ciphertext &t,
                                const KSwitchKey &relin) const
{
    Ciphertext s = eval_.square(t, relin);
    eval_.rescale_inplace(s);
    s = eval_.mul_integer(s, 2);
    Plaintext one = encoder_.encode_scalar(cdouble(-1.0, 0.0),
                                           s.num_limbs(), s.scale);
    s = eval_.add_plain(s, one);
    return s;
}

std::vector<Ciphertext>
ChebyshevEvaluator::make_powers(const Ciphertext &y, std::size_t count,
                                const KSwitchKey &relin) const
{
    std::vector<Ciphertext> t;
    t.reserve(count);
    t.push_back(y); // T_1
    for (std::size_t j = 2; j <= count; ++j) {
        if (j % 2 == 0) {
            t.push_back(cheb_double(t[j / 2 - 1], relin));
        } else {
            // T_{2k+1} = 2 T_k T_{k+1} - T_1. Multiplication only needs
            // matching limbs (scales multiply); only the subtraction
            // needs an exact scale match, done by adjusting a T_1 copy.
            Ciphertext a = t[j / 2 - 1];
            Ciphertext b = t[j / 2];
            std::size_t lim = std::min(a.num_limbs(), b.num_limbs());
            eval_.drop_to_limbs_inplace(a, lim);
            eval_.drop_to_limbs_inplace(b, lim);
            Ciphertext p = eval_.mul(a, b, relin);
            eval_.rescale_inplace(p);
            p = eval_.mul_integer(p, 2);
            Ciphertext t1 = t[0];
            eval_.drop_to_limbs_inplace(t1, p.num_limbs());
            t1 = eval_.adjust_scale(t1, p.scale);
            eval_.drop_to_limbs_inplace(p, t1.num_limbs());
            eval_.sub_inplace(p, t1);
            t.push_back(std::move(p));
        }
    }
    return t;
}

Ciphertext
ChebyshevEvaluator::direct_eval(
    const std::vector<double> &c,
    const std::vector<Ciphertext> &powers) const
{
    std::size_t limbs = powers[0].num_limbs();
    Ciphertext acc;
    bool set = false;
    for (std::size_t j = 1; j < c.size(); ++j) {
        if (std::abs(c[j]) < 1e-14 && set) continue;
        POSEIDON_REQUIRE(j <= powers.size(),
                         "direct_eval: degree exceeds resident powers");
        Plaintext pt = encoder_.encode_scalar(cdouble(c[j], 0.0), limbs);
        Ciphertext term = eval_.mul_plain(powers[j - 1], pt);
        if (set) {
            eval_.add_inplace(acc, term);
        } else {
            acc = std::move(term);
            set = true;
        }
    }
    if (!set) {
        // Degenerate constant polynomial: 0 * T_1 keeps the shape.
        Plaintext pt = encoder_.encode_scalar(cdouble(0.0, 0.0), limbs);
        acc = eval_.mul_plain(powers[0], pt);
    }
    // Settle to ~Delta first; adding c_0 at the product scale
    // (Delta^2) would overflow the encoder's 62-bit coefficients.
    eval_.rescale_inplace(acc);
    Plaintext c0 = encoder_.encode_scalar(cdouble(c.empty() ? 0 : c[0],
                                                  0.0),
                                          acc.num_limbs(), acc.scale);
    acc = eval_.add_plain(acc, c0);
    return acc;
}

namespace {

/// Chebyshev division: c = q * T_N + r with deg(r) < N, using
/// T_j = 2 T_{j-N} T_N - T_{|j-2N|}.
void
cheb_divmod(const std::vector<double> &c, std::size_t N,
            std::vector<double> &q, std::vector<double> &r)
{
    r = c;
    q.assign(c.size() > N ? c.size() - N : 1, 0.0);
    for (std::size_t j = c.size(); j-- > N;) {
        double a = r[j];
        if (a == 0.0) continue;
        r[j] = 0.0;
        if (j == N) {
            q[0] += a;
        } else {
            q[j - N] += 2.0 * a;
            std::size_t idx = (j >= 2 * N) ? j - 2 * N : 2 * N - j;
            r[idx] -= a;
        }
    }
    r.resize(N);
}

} // namespace

Ciphertext
ChebyshevEvaluator::evaluate(const Ciphertext &x,
                             const std::vector<double> &coeffs, double a,
                             double b, const KSwitchKey &relin) const
{
    POSEIDON_REQUIRE(!coeffs.empty(), "evaluate: empty coefficients");
    POSEIDON_REQUIRE(b > a, "evaluate: empty interval");
    std::size_t degree = coeffs.size() - 1;

    // y = (2x - a - b)/(b - a), at exactly the default scale.
    Ciphertext y = eval_.mul_scalar(x, 2.0 / (b - a));
    eval_.rescale_inplace(y);
    y = eval_.adjust_scale(y, ctx_->params().scale());
    Plaintext shift = encoder_.encode_scalar(
        cdouble(-(a + b) / (b - a), 0.0), y.num_limbs(), y.scale);
    y = eval_.add_plain(y, shift);

    if (degree == 0) {
        Ciphertext c = eval_.mul_scalar(y, 0.0);
        eval_.rescale_inplace(c);
        Plaintext c0 = encoder_.encode_scalar(cdouble(coeffs[0], 0.0),
                                              c.num_limbs(), c.scale);
        return eval_.add_plain(c, c0);
    }

    // Baby powers T_1..T_m, m ~ sqrt(degree+1) (power of two).
    std::size_t m = 1;
    while (m * m < degree + 1) m <<= 1;
    if (m > degree) m = degree; // tiny polynomials
    std::vector<Ciphertext> powers =
        make_powers(y, std::max<std::size_t>(m, 1), relin);

    // Giants T_{m * 2^i} while <= degree.
    std::vector<std::size_t> giantDeg;
    std::vector<Ciphertext> giants;
    if (m <= degree && m >= 1) {
        giantDeg.push_back(m);
        giants.push_back(powers[m - 1]);
        while (giantDeg.back() * 2 <= degree) {
            giants.push_back(cheb_double(giants.back(), relin));
            giantDeg.push_back(giantDeg.back() * 2);
        }
    }

    // Normalize every resident power to one (level, scale).
    std::size_t minLimbs = powers[0].num_limbs();
    for (const auto &p : powers) {
        minLimbs = std::min(minLimbs, p.num_limbs());
    }
    for (const auto &g : giants) {
        minLimbs = std::min(minLimbs, g.num_limbs());
    }
    POSEIDON_REQUIRE(minLimbs >= 2,
                     "evaluate: not enough levels for this degree");
    double delta = ctx_->params().scale();
    auto normalize = [&](Ciphertext &p) {
        eval_.drop_to_limbs_inplace(p, minLimbs);
        p = eval_.adjust_scale(p, delta);
    };
    for (auto &p : powers) normalize(p);
    for (auto &g : giants) normalize(g);

    // Recursive Paterson-Stockmeyer over the Chebyshev basis.
    std::function<Ciphertext(const std::vector<double> &)> rec =
        [&](const std::vector<double> &c) -> Ciphertext {
        std::size_t deg = c.size() - 1;
        if (deg < m || giants.empty()) {
            return direct_eval(c, powers);
        }
        // Largest giant <= deg.
        std::size_t gi = 0;
        for (std::size_t i = 0; i < giantDeg.size(); ++i) {
            if (giantDeg[i] <= deg) gi = i;
        }
        std::vector<double> q, r;
        cheb_divmod(c, giantDeg[gi], q, r);

        Ciphertext eq = rec(q);
        Ciphertext g = giants[gi];
        std::size_t lim = std::min(eq.num_limbs(), g.num_limbs());
        eval_.drop_to_limbs_inplace(eq, lim);
        eval_.drop_to_limbs_inplace(g, lim);
        Ciphertext prod = eval_.mul(eq, g, relin);
        eval_.rescale_inplace(prod);

        Ciphertext er = rec(r);
        eval_.equalize_inplace(prod, er);
        eval_.add_inplace(prod, er);
        return prod;
    };

    // Trim trailing zeros for a tight recursion.
    std::vector<double> c = coeffs;
    while (c.size() > 1 && std::abs(c.back()) < 1e-14) c.pop_back();
    return rec(c);
}

} // namespace poseidon
