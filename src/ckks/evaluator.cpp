#include "ckks/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "kernels/kernels.h"
#include "poly/automorphism.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace poseidon {

namespace {

/// Relative tolerance when two scales must match.
constexpr double kScaleTol = 1e-6;

bool
scales_close(double a, double b)
{
    return std::abs(a - b) <= kScaleTol * std::max(std::abs(a),
                                                   std::abs(b));
}

} // namespace

CkksEvaluator::CkksEvaluator(CkksContextPtr ctx)
    : ctx_(std::move(ctx))
{
    POSEIDON_REQUIRE(ctx_ != nullptr, "CkksEvaluator: null context");
}

void
CkksEvaluator::check_same_shape(const Ciphertext &a,
                                const Ciphertext &b) const
{
    POSEIDON_REQUIRE_T(ShapeMismatch,
                       a.degree() == ctx_->degree() &&
                       b.degree() == ctx_->degree(),
                       "evaluator: ciphertext degree does not match "
                       "the context (N=" << ctx_->degree() << ")");
    POSEIDON_REQUIRE_T(ShapeMismatch, a.num_limbs() == b.num_limbs(),
                       "evaluator: operands at different levels ("
                       << a.num_limbs() << " vs " << b.num_limbs()
                       << " limbs)");
    POSEIDON_REQUIRE_T(ShapeMismatch, scales_close(a.scale, b.scale),
                       "evaluator: operands at different scales ("
                       << a.scale << " vs " << b.scale << ")");
}

Ciphertext
CkksEvaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext out = a;
    add_inplace(out, b);
    return out;
}

Ciphertext
CkksEvaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext out = a;
    sub_inplace(out, b);
    return out;
}

void
CkksEvaluator::add_inplace(Ciphertext &a, const Ciphertext &b) const
{
    telemetry::count("ckks.ops.add");
    check_same_shape(a, b);
    a.c0.add_inplace(b.c0);
    a.c1.add_inplace(b.c1);
}

void
CkksEvaluator::sub_inplace(Ciphertext &a, const Ciphertext &b) const
{
    telemetry::count("ckks.ops.sub");
    check_same_shape(a, b);
    a.c0.sub_inplace(b.c0);
    a.c1.sub_inplace(b.c1);
}

Ciphertext
CkksEvaluator::negate(const Ciphertext &a) const
{
    Ciphertext out = a;
    out.c0.negate_inplace();
    out.c1.negate_inplace();
    return out;
}

Ciphertext
CkksEvaluator::add_plain(const Ciphertext &a, const Plaintext &p) const
{
    POSEIDON_REQUIRE_T(ShapeMismatch, a.num_limbs() == p.num_limbs(),
                       "add_plain: level mismatch (" << a.num_limbs()
                       << " vs " << p.num_limbs() << " limbs)");
    POSEIDON_REQUIRE_T(ShapeMismatch, scales_close(a.scale, p.scale),
                       "add_plain: scale mismatch (" << a.scale
                       << " vs " << p.scale << ")");
    Ciphertext out = a;
    out.c0.add_inplace(p.poly);
    return out;
}

Ciphertext
CkksEvaluator::sub_plain(const Ciphertext &a, const Plaintext &p) const
{
    POSEIDON_REQUIRE_T(ShapeMismatch, a.num_limbs() == p.num_limbs(),
                       "sub_plain: level mismatch (" << a.num_limbs()
                       << " vs " << p.num_limbs() << " limbs)");
    POSEIDON_REQUIRE_T(ShapeMismatch, scales_close(a.scale, p.scale),
                       "sub_plain: scale mismatch (" << a.scale
                       << " vs " << p.scale << ")");
    Ciphertext out = a;
    out.c0.sub_inplace(p.poly);
    return out;
}

Ciphertext
CkksEvaluator::mul_plain(const Ciphertext &a, const Plaintext &p) const
{
    telemetry::count("ckks.ops.mul_plain");
    POSEIDON_REQUIRE_T(ShapeMismatch, a.num_limbs() == p.num_limbs(),
                       "mul_plain: level mismatch (" << a.num_limbs()
                       << " vs " << p.num_limbs() << " limbs)");
    Ciphertext out = a;
    out.c0.mul_inplace(p.poly);
    out.c1.mul_inplace(p.poly);
    out.scale = a.scale * p.scale;
    return out;
}

Ciphertext
CkksEvaluator::mul_scalar(const Ciphertext &a, double value,
                          double scale) const
{
    if (scale <= 0.0) scale = ctx_->params().scale();
    i64 scaled = static_cast<i64>(std::llround(value * scale));
    Ciphertext out = a;
    std::vector<u64> s(a.num_limbs());
    for (std::size_t k = 0; k < a.num_limbs(); ++k) {
        u64 q = a.c0.prime(k);
        if (scaled >= 0) {
            s[k] = static_cast<u64>(scaled) % q;
        } else {
            u64 m = static_cast<u64>(-(scaled + 1)) + 1;
            u64 r = m % q;
            s[k] = r == 0 ? 0 : q - r;
        }
    }
    out.c0.mul_scalar_inplace(s);
    out.c1.mul_scalar_inplace(s);
    out.scale = a.scale * scale;
    return out;
}

Ciphertext
CkksEvaluator::mul_integer(const Ciphertext &a, i64 value) const
{
    Ciphertext out = a;
    std::vector<u64> s(a.num_limbs());
    for (std::size_t k = 0; k < a.num_limbs(); ++k) {
        u64 q = a.c0.prime(k);
        if (value >= 0) {
            s[k] = static_cast<u64>(value) % q;
        } else {
            u64 m = static_cast<u64>(-(value + 1)) + 1;
            u64 r = m % q;
            s[k] = r == 0 ? 0 : q - r;
        }
    }
    out.c0.mul_scalar_inplace(s);
    out.c1.mul_scalar_inplace(s);
    return out;
}

Ciphertext
CkksEvaluator::mul(const Ciphertext &a, const Ciphertext &b,
                   const KSwitchKey &relinKey) const
{
    POSEIDON_SPAN("Evaluator::mul");
    telemetry::count("ckks.ops.mul");
    POSEIDON_REQUIRE_T(ShapeMismatch, a.num_limbs() == b.num_limbs(),
                       "mul: level mismatch (" << a.num_limbs()
                       << " vs " << b.num_limbs() << " limbs)");
    POSEIDON_REQUIRE(!relinKey.empty(),
                     "mul: empty relinearization key");
    std::size_t n = ctx_->degree();
    const auto &ring = ctx_->ring();
    std::size_t limbs = a.num_limbs();

    // Tensor: d0 = a0*b0, d1 = a0*b1 + a1*b0, d2 = a1*b1.
    RnsPoly d0 = a.c0;
    d0.mul_inplace(b.c0);
    RnsPoly d2 = a.c1;
    d2.mul_inplace(b.c1);

    RnsPoly d1 = RnsPoly::ct(ring, limbs, Domain::Eval);
    parallel::parallel_for(0, limbs, 1,
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                u64 q = ring->prime(k);
                u64 *d = d1.limb(k); // zero-initialized by ct()
                kernels::mul_mod_acc_lazy_n(d, a.c0.limb(k),
                                            b.c1.limb(k), n, q);
                kernels::mul_mod_acc_lazy_n(d, a.c1.limb(k),
                                            b.c0.limb(k), n, q);
                kernels::normalize_n(d, n, q);
            }
        }, "ckks.tensor");

    // Relinearize d2 back onto (c0, c1).
    auto [u0, u1] = keyswitch_core(d2, relinKey);
    d0.add_inplace(u0);
    d1.add_inplace(u1);

    Ciphertext out;
    out.c0 = std::move(d0);
    out.c1 = std::move(d1);
    out.scale = a.scale * b.scale;
    return out;
}

Ciphertext
CkksEvaluator::square(const Ciphertext &a, const KSwitchKey &relinKey) const
{
    return mul(a, a, relinKey);
}

std::vector<std::size_t>
CkksEvaluator::extended_indices(std::size_t limbs) const
{
    std::size_t L = ctx_->params().L;
    std::size_t K = ctx_->params().K;
    std::vector<std::size_t> extIdx;
    extIdx.reserve(limbs + K);
    for (std::size_t i = 0; i < limbs; ++i) extIdx.push_back(i);
    for (std::size_t j = 0; j < K; ++j) extIdx.push_back(L + j);
    return extIdx;
}

std::vector<std::vector<std::vector<u64>>>
CkksEvaluator::decompose_digits_eval(
    const RnsPoly &dCoeff, const std::vector<std::size_t> &extIdx) const
{
    POSEIDON_REQUIRE(dCoeff.domain() == Domain::Coeff,
                     "decompose_digits_eval: coeff domain required");
    const auto &ring = ctx_->ring();
    std::size_t n = ctx_->degree();
    std::size_t limbs = dCoeff.num_limbs();
    std::size_t alpha = ctx_->alpha();
    std::size_t numDigits = ctx_->num_digits(limbs);

    std::vector<std::vector<std::vector<u64>>> out(numDigits);
    std::vector<std::vector<u64>> convOut;
    std::vector<u64*> convPtr;

    for (std::size_t j = 0; j < numDigits; ++j) {
        std::size_t start = j * alpha;
        std::size_t len = std::min(alpha, limbs - start);
        const u64 *digit = dCoeff.limb(start);

        if (len > 1) {
            const RnsConv &conv = ctx_->digit_conv(limbs, j);
            std::size_t total = ring->num_primes();
            if (convOut.size() != total) {
                convOut.assign(total, std::vector<u64>(n));
                convPtr.resize(total);
                for (std::size_t i = 0; i < total; ++i) {
                    convPtr[i] = convOut[i].data();
                }
            }
            std::vector<const u64*> src(len);
            for (std::size_t k = 0; k < len; ++k) {
                src[k] = dCoeff.limb(start + k);
            }
            conv.convert(src, convPtr, n, /*correct=*/true);
        }

        out[j].resize(extIdx.size());
        // Each target prime m gets an independent buffer: reduce (or
        // copy) the digit into it, then NTT it. convOut/digit are
        // read-only here, so the m loop parallelizes cleanly.
        parallel::parallel_for(0, extIdx.size(), 1,
            [&](std::size_t m0, std::size_t m1) {
                for (std::size_t m = m0; m < m1; ++m) {
                    std::size_t pidx = extIdx[m];
                    u64 qm = ring->prime(pidx);
                    std::vector<u64> &buf = out[j][m];
                    buf.resize(n);
                    if (len > 1) {
                        std::copy(convOut[pidx].begin(),
                                  convOut[pidx].end(), buf.begin());
                    } else if (pidx == start) {
                        std::copy(digit, digit + n, buf.begin());
                    } else {
                        kernels::reduce_mod_n(buf.data(), digit, n, qm);
                    }
                    ring->table(pidx).forward(buf.data());
                }
            }, "ckks.decompose");
    }
    return out;
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::mod_down_pair(RnsPoly &&acc0, RnsPoly &&acc1,
                             std::size_t limbs) const
{
    const auto &ring = ctx_->ring();
    std::size_t n = ctx_->degree();
    std::size_t K = ctx_->params().K;
    const ModDown &md = ctx_->mod_down(limbs);
    acc0.to_coeff();
    acc1.to_coeff();

    auto run_moddown = [&](RnsPoly &acc) {
        RnsPoly out = RnsPoly::ct(ring, limbs, Domain::Coeff);
        std::vector<const u64*> xq(limbs), xp(K);
        std::vector<u64*> o(limbs);
        for (std::size_t iq = 0; iq < limbs; ++iq) {
            xq[iq] = acc.limb(iq);
            o[iq] = out.limb(iq);
        }
        for (std::size_t jp = 0; jp < K; ++jp) {
            xp[jp] = acc.limb(limbs + jp);
        }
        md.apply(xq, xp, o, n);
        out.to_eval();
        return out;
    };

    return {run_moddown(acc0), run_moddown(acc1)};
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::keyswitch_core(const RnsPoly &d, const KSwitchKey &key) const
{
    POSEIDON_SPAN("Evaluator::keyswitch");
    telemetry::count("ckks.ops.keyswitch");
    telemetry::ScopedLatency lat("ckks.keyswitch_us");
    POSEIDON_REQUIRE(d.domain() == Domain::Eval,
                     "keyswitch_core: input must be in Eval domain");
    const auto &ring = ctx_->ring();
    std::size_t n = ctx_->degree();
    std::size_t limbs = d.num_limbs();
    std::size_t numDigits = ctx_->num_digits(limbs);
    POSEIDON_REQUIRE_T(ShapeMismatch, key.pieces.size() >= numDigits,
                       "keyswitch_core: switching key has "
                       << key.pieces.size() << " pieces, need "
                       << numDigits);

    std::vector<std::size_t> extIdx = extended_indices(limbs);

    RnsPoly dc = d;
    dc.to_coeff();
    auto digits = decompose_digits_eval(dc, extIdx);

    // Accumulate digit-by-key products. The loop nest is m-outer /
    // j-inner so each extended limb m is owned by exactly one chunk;
    // within a limb the digits still accumulate in ascending-j order,
    // so the sum is bit-identical to the serial nest at any thread
    // count.
    RnsPoly acc0(ring, extIdx, Domain::Eval);
    RnsPoly acc1(ring, extIdx, Domain::Eval);
    parallel::parallel_for(0, extIdx.size(), 1,
        [&](std::size_t m0, std::size_t m1) {
            for (std::size_t m = m0; m < m1; ++m) {
                std::size_t pidx = extIdx[m];
                u64 qm = ring->prime(pidx);
                u64 *o0 = acc0.limb(m);
                u64 *o1 = acc1.limb(m);
                // Lazy Barrett accumulate over the digit inner
                // products; one normalization after the j loop.
                for (std::size_t j = 0; j < numDigits; ++j) {
                    const KSwitchKey::Piece &piece = key.pieces[j];
                    const u64 *dg = digits[j][m].data();
                    kernels::mul_mod_acc_lazy_n(o0, dg,
                                                piece.b.limb(pidx), n,
                                                qm);
                    kernels::mul_mod_acc_lazy_n(o1, dg,
                                                piece.a.limb(pidx), n,
                                                qm);
                }
                kernels::normalize_n(o0, n, qm);
                kernels::normalize_n(o1, n, qm);
            }
        }, "ckks.keyswitch_acc");
    return mod_down_pair(std::move(acc0), std::move(acc1), limbs);
}
void
CkksEvaluator::rescale_poly(RnsPoly &p) const
{
    const auto &ring = ctx_->ring();
    std::size_t n = ctx_->degree();
    std::size_t last = p.num_limbs() - 1;
    u64 ql = p.prime(last);
    u64 qlHalf = ql >> 1;

    // Bring the dropped limb to coefficient domain (it arrives in Eval).
    std::vector<u64> cl(p.limb(last), p.limb(last) + n);
    ring->table(p.prime_index(last)).inverse(cl.data());
    kernels::add_scalar_mod_n(cl.data(), cl.data(), n, qlHalf, ql);

    // Each remaining limb folds the dropped limb in independently; the
    // NTT scratch is chunk-local and cl is read-only shared.
    parallel::parallel_for(0, last, 1,
        [&](std::size_t j0, std::size_t j1) {
            std::vector<u64> buf(n);
            for (std::size_t j = j0; j < j1; ++j) {
                u64 qj = p.prime(j);
                u64 halfModQj = qlHalf % qj;
                kernels::reduce_mod_n(buf.data(), cl.data(), n, qj);
                kernels::sub_scalar_mod_n(buf.data(), buf.data(), n,
                                          halfModQj, qj);
                ring->table(p.prime_index(j)).forward(buf.data());
                u64 qlInv = inv_mod(ql % qj, qj);
                u64 qlInvShoup =
                    static_cast<u64>((u128(qlInv) << 64) / qj);
                u64 *limb = p.limb(j);
                kernels::sub_mod_n(limb, limb, buf.data(), n, qj);
                kernels::scalar_mul_shoup_n(limb, limb, n, qlInv,
                                            qlInvShoup, qj);
            }
        }, "ckks.rescale");
    p.drop_last_limb();
}

void
CkksEvaluator::rescale_inplace(Ciphertext &a) const
{
    POSEIDON_SPAN("Evaluator::rescale");
    telemetry::count("ckks.ops.rescale");
    telemetry::ScopedLatency lat("ckks.rescale_us");
    POSEIDON_REQUIRE_T(NoiseBudgetExhausted, a.num_limbs() >= 2,
                       "rescale: no modulus level left to drop");
    u64 ql = a.c0.prime(a.num_limbs() - 1);
    rescale_poly(a.c0);
    rescale_poly(a.c1);
    a.scale /= static_cast<double>(ql);
}

Ciphertext
CkksEvaluator::rescale(const Ciphertext &a) const
{
    Ciphertext out = a;
    rescale_inplace(out);
    return out;
}

Ciphertext
CkksEvaluator::adjust_scale(const Ciphertext &a, double targetScale) const
{
    POSEIDON_REQUIRE_T(NoiseBudgetExhausted, a.num_limbs() >= 2,
                       "adjust_scale: needs a level to spend");
    POSEIDON_REQUIRE(targetScale > 0, "adjust_scale: bad target scale "
                     << targetScale);
    u64 q = a.c0.prime(a.num_limbs() - 1);
    double e = targetScale * static_cast<double>(q) / a.scale;
    POSEIDON_REQUIRE_T(NoiseBudgetExhausted, e >= 1.0,
                       "adjust_scale: target scale " << targetScale
                       << " unreachable from " << a.scale
                       << " at this level");
    Ciphertext out = mul_scalar(a, 1.0, e);
    rescale_inplace(out);
    // Kill floating-point drift: the scale is targetScale by
    // construction (up to the integer rounding of e, already absorbed
    // into the ciphertext noise).
    out.scale = targetScale;
    return out;
}

void
CkksEvaluator::equalize_inplace(Ciphertext &a, Ciphertext &b) const
{
    std::size_t limbs = std::min(a.num_limbs(), b.num_limbs());
    POSEIDON_REQUIRE_T(NoiseBudgetExhausted, limbs >= 2,
                       "equalize: needs a level to spend");
    drop_to_limbs_inplace(a, limbs);
    drop_to_limbs_inplace(b, limbs);
    double target = std::min(a.scale, b.scale);
    a = adjust_scale(a, target);
    b = adjust_scale(b, target);
}

void
CkksEvaluator::drop_to_limbs_inplace(Ciphertext &a, std::size_t limbs) const
{
    POSEIDON_REQUIRE(limbs >= 1 && limbs <= a.num_limbs(),
                     "drop_to_limbs: bad target");
    while (a.num_limbs() > limbs) {
        a.c0.drop_last_limb();
        a.c1.drop_last_limb();
    }
}

void
CkksEvaluator::drop_to_limbs_inplace(Plaintext &p, std::size_t limbs) const
{
    POSEIDON_REQUIRE(limbs >= 1 && limbs <= p.num_limbs(),
                     "drop_to_limbs: bad target");
    while (p.num_limbs() > limbs) p.poly.drop_last_limb();
}

Ciphertext
CkksEvaluator::apply_galois(const Ciphertext &a, u64 galois,
                            const KSwitchKey &key) const
{
    POSEIDON_SPAN("Evaluator::apply_galois");
    telemetry::count("ckks.ops.rotation");
    // tau_g on both components (Eval-domain permutation), then switch
    // tau_g(c1)'s key tau_g(s) back to s.
    RnsPoly c0g = automorphism(a.c0, galois);
    RnsPoly c1g = automorphism(a.c1, galois);

    auto [u0, u1] = keyswitch_core(c1g, key);
    c0g.add_inplace(u0);

    Ciphertext out;
    out.c0 = std::move(c0g);
    out.c1 = std::move(u1);
    out.scale = a.scale;
    return out;
}

std::vector<Ciphertext>
CkksEvaluator::rotate_hoisted(const Ciphertext &a,
                              const std::vector<long> &steps,
                              const GaloisKeys &keys) const
{
    telemetry::SpanScope span("Evaluator::rotate_hoisted");
    span.attr("steps", telemetry::Json(steps.size()));
    telemetry::count("ckks.ops.rotate_hoisted");
    const auto &ring = ctx_->ring();
    std::size_t n = ctx_->degree();
    std::size_t limbs = a.num_limbs();
    std::size_t numDigits = ctx_->num_digits(limbs);
    std::vector<std::size_t> extIdx = extended_indices(limbs);

    // Hoist: decompose c1 once; digits of tau_g(c1) are tau_g of the
    // digits, which in the evaluation domain is a permutation.
    RnsPoly dc = a.c1;
    dc.to_coeff();
    auto digits = decompose_digits_eval(dc, extIdx);

    std::vector<Ciphertext> out;
    out.reserve(steps.size());
    for (long step : steps) {
        u64 g = galois_element_for_step(n, step);
        if (g == 1) {
            out.push_back(a);
            continue;
        }
        const KSwitchKey &key = keys.get(g);
        POSEIDON_REQUIRE_T(ShapeMismatch, key.pieces.size() >= numDigits,
                           "rotate_hoisted: switching key has "
                           << key.pieces.size() << " pieces, need "
                           << numDigits);
        std::vector<u32> perm = make_eval_permutation(n, g);

        // Same m-outer / j-inner nest as keyswitch_core (ascending-j
        // accumulation per limb keeps results bit-identical); the
        // permuted-digit scratch is chunk-local.
        RnsPoly acc0(ring, extIdx, Domain::Eval);
        RnsPoly acc1(ring, extIdx, Domain::Eval);
        parallel::parallel_for(0, extIdx.size(), 1,
            [&](std::size_t m0, std::size_t m1) {
                std::vector<u64> tmp(n);
                for (std::size_t m = m0; m < m1; ++m) {
                    std::size_t pidx = extIdx[m];
                    u64 qm = ring->prime(pidx);
                    u64 *o0 = acc0.limb(m);
                    u64 *o1 = acc1.limb(m);
                    for (std::size_t j = 0; j < numDigits; ++j) {
                        const KSwitchKey::Piece &piece = key.pieces[j];
                        automorphism_eval_limb(digits[j][m].data(),
                                               tmp.data(), n, perm);
                        kernels::mul_mod_acc_lazy_n(
                            o0, tmp.data(), piece.b.limb(pidx), n, qm);
                        kernels::mul_mod_acc_lazy_n(
                            o1, tmp.data(), piece.a.limb(pidx), n, qm);
                    }
                    kernels::normalize_n(o0, n, qm);
                    kernels::normalize_n(o1, n, qm);
                }
            }, "ckks.rotate_acc");
        auto [u0, u1] =
            mod_down_pair(std::move(acc0), std::move(acc1), limbs);

        Ciphertext r;
        r.c0 = automorphism(a.c0, g);
        r.c0.add_inplace(u0);
        r.c1 = std::move(u1);
        r.scale = a.scale;
        out.push_back(std::move(r));
    }
    return out;
}

Ciphertext
CkksEvaluator::rotate(const Ciphertext &a, long steps,
                      const GaloisKeys &keys) const
{
    u64 g = galois_element_for_step(ctx_->degree(), steps);
    if (g == 1) return a;
    return apply_galois(a, g, keys.get(g));
}

Ciphertext
CkksEvaluator::conjugate(const Ciphertext &a, const GaloisKeys &keys) const
{
    u64 g = galois_element_conjugate(ctx_->degree());
    return apply_galois(a, g, keys.get(g));
}

} // namespace poseidon
