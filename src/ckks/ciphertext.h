#ifndef POSEIDON_CKKS_CIPHERTEXT_H_
#define POSEIDON_CKKS_CIPHERTEXT_H_

/**
 * @file
 * Plaintext and Ciphertext value types.
 *
 * Both carry the CKKS scale alongside their polynomial data. Limb count
 * determines the level: a polynomial over l+1 ciphertext primes sits at
 * level l, and rescaling drops one limb.
 */

#include "poly/poly.h"

namespace poseidon {

/// An encoded (not encrypted) CKKS message.
struct Plaintext
{
    RnsPoly poly;       ///< usually kept in Eval domain
    double scale = 1.0; ///< encoding scale Delta

    std::size_t num_limbs() const { return poly.num_limbs(); }
    std::size_t level() const { return poly.num_limbs() - 1; }
};

/// A degree-1 RLWE ciphertext (c0, c1) with decryption c0 + c1*s.
struct Ciphertext
{
    RnsPoly c0;
    RnsPoly c1;
    double scale = 1.0;

    std::size_t num_limbs() const { return c0.num_limbs(); }
    std::size_t level() const { return c0.num_limbs() - 1; }
    std::size_t degree() const { return c0.degree(); }
};

} // namespace poseidon

#endif // POSEIDON_CKKS_CIPHERTEXT_H_
