#ifndef POSEIDON_CKKS_CHEBYSHEV_H_
#define POSEIDON_CKKS_CHEBYSHEV_H_

/**
 * @file
 * Chebyshev series machinery: interpolation of arbitrary functions and
 * homomorphic evaluation of Chebyshev expansions with baby-step /
 * giant-step power reuse (Paterson-Stockmeyer over the Chebyshev
 * basis). This is the polynomial engine behind modern packed
 * bootstrapping's cosine EvalMod (the paper's citation [30]) and is
 * exposed as a general utility for approximating smooth functions
 * (sigmoid, exp, inverse, ...) under encryption.
 */

#include <functional>

#include "ckks/encoder.h"
#include "ckks/evaluator.h"

namespace poseidon {

/**
 * Chebyshev interpolation of f on [a, b]: returns coefficients c such
 * that f(x) ~ sum_j c_j T_j(y) with y = (2x - a - b)/(b - a).
 */
std::vector<double>
chebyshev_interpolate(const std::function<double(double)> &f, double a,
                      double b, unsigned degree);

/// Plaintext evaluation of a Chebyshev expansion (Clenshaw).
double
chebyshev_eval_plain(const std::vector<double> &coeffs, double a,
                     double b, double x);

/// Homomorphic Chebyshev-series evaluation.
class ChebyshevEvaluator
{
  public:
    ChebyshevEvaluator(CkksContextPtr ctx, const CkksEncoder &encoder,
                       const CkksEvaluator &eval);

    /**
     * Evaluate sum_j coeffs[j] T_j(y) on the encrypted x, where
     * y = (2x - a - b)/(b - a) maps [a, b] to [-1, 1]. Consumes
     * roughly 2*ceil(log2(degree)) + 3 levels; the input must have at
     * least that many limbs above 1.
     */
    Ciphertext evaluate(const Ciphertext &x,
                        const std::vector<double> &coeffs, double a,
                        double b, const KSwitchKey &relin) const;

  private:
    /// All Chebyshev power ciphertexts, normalized to one (level,
    /// scale): powers[j] encrypts T_j(y) for j in [1, count].
    std::vector<Ciphertext>
    make_powers(const Ciphertext &y, std::size_t count,
                const KSwitchKey &relin) const;

    /// 2*t^2 - 1 (Chebyshev doubling), one level.
    Ciphertext cheb_double(const Ciphertext &t,
                           const KSwitchKey &relin) const;

    /// Direct leaf evaluation: sum_j c_j T_j using resident powers.
    Ciphertext direct_eval(const std::vector<double> &c,
                           const std::vector<Ciphertext> &powers) const;

    CkksContextPtr ctx_;
    const CkksEncoder &encoder_;
    const CkksEvaluator &eval_;
};

} // namespace poseidon

#endif // POSEIDON_CKKS_CHEBYSHEV_H_
