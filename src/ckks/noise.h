#ifndef POSEIDON_CKKS_NOISE_H_
#define POSEIDON_CKKS_NOISE_H_

/**
 * @file
 * Noise diagnostics: exact noise measurement against a known expected
 * message, given the secret key. Development/testing tool — a
 * production server never has the secret, but a library shipping FHE
 * needs a way to validate parameter choices and noise budgets.
 */

#include "ckks/encoder.h"
#include "ckks/keys.h"

namespace poseidon {

/// Measures ciphertext noise with secret-key access.
class NoiseInspector
{
  public:
    NoiseInspector(CkksContextPtr ctx, SecretKey sk);

    /**
     * log2 of the largest coefficient-domain error between the
     * decryption of `ct` and the exact encoding of `expected` at the
     * ciphertext's scale. Smaller is better; values approaching
     * capacity_bits() mean imminent decryption failure.
     */
    double noise_bits(const Ciphertext &ct,
                      const std::vector<cdouble> &expected,
                      const CkksEncoder &encoder) const;

    /**
     * log2(Q_l / 2) for the ciphertext's current modulus — the
     * ceiling any coefficient (message * scale + noise) must stay
     * under.
     */
    double capacity_bits(const Ciphertext &ct) const;

    /**
     * Remaining headroom in bits: capacity - log2(scale) - log2(max
     * |message|) is roughly how many more scale-multiplications fit.
     */
    double budget_bits(const Ciphertext &ct,
                       const std::vector<cdouble> &expected,
                       const CkksEncoder &encoder) const;

  private:
    CkksContextPtr ctx_;
    SecretKey sk_;
};

} // namespace poseidon

#endif // POSEIDON_CKKS_NOISE_H_
