#ifndef POSEIDON_BASELINES_CPU_H_
#define POSEIDON_BASELINES_CPU_H_

/**
 * @file
 * CPU baseline: single-threaded timings of this library's own CKKS
 * implementation, playing the role of the paper's Xeon baseline.
 *
 * Measuring directly at the paper's parameters (N=2^16, 44 limbs)
 * takes minutes per CMult in software, so measurements run at a
 * smaller shape and are extrapolated with the operations' asymptotic
 * complexity (documented per field). Both the raw and extrapolated
 * numbers are reported by the benches.
 */

#include "ckks/params.h"
#include "isa/compiler.h"

namespace poseidon::baselines {

/// Seconds per basic operation on the CPU.
struct CpuOpTimes
{
    double hadd = 0;
    double pmult = 0;
    double cmult = 0;
    double ntt = 0;       ///< full-ciphertext-poly NTT (all limbs)
    double keyswitch = 0;
    double rotation = 0;
    double rescale = 0;
};

/// Measures and extrapolates the CPU baseline.
class CpuBaseline
{
  public:
    /**
     * Measure the library's operations at `params`. `reps` timed
     * repetitions per op (median-ish via min).
     */
    static CpuOpTimes measure(const CkksParams &params, int reps = 3);

    /**
     * Extrapolate measured times from the measured shape to a target
     * shape using asymptotic complexity:
     *  - HAdd, PMult, Rescale: ~ N * limbs
     *  - NTT:                  ~ N * log2(N) * limbs
     *  - Keyswitch, Rotation, CMult: ~ digits * ext * N * log2(N)
     */
    static CpuOpTimes scale_to(const CpuOpTimes &measured,
                               const isa::OpShape &from,
                               const isa::OpShape &to);
};

} // namespace poseidon::baselines

#endif // POSEIDON_BASELINES_CPU_H_
