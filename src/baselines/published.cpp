#include "baselines/published.h"

#include "common/check.h"

namespace poseidon::baselines {

std::vector<SystemSpec>
comparator_specs()
{
    // Capacities/bandwidths from Table VI and the cited papers.
    return {
        {"CPU", "CPU (Xeon Gold 6234)", 256, 100, 0.025, 3.3, 130},
        {"over100x", "GPU (Tesla V100)", 32, 900, 6.1, 1.38, 300},
        {"HEAX", "FPGA (Stratix10)", 32, 85, 22, 0.275, 85},
        {"F1+", "ASIC (simulated)", 16, 1000, 256, 1.0, 151},
        {"CraterLake", "ASIC (simulated)", 16, 1000, 256, 1.0, 170},
        {"BTS", "ASIC (simulated)", 16, 1000, 512, 1.2, 163},
        {"ARK", "ASIC (simulated)", 32, 2000, 512, 1.0, 281},
        {"Poseidon", "FPGA (Alveo U280)", 8, 460, 8.6, 0.30, 45},
    };
}

SystemSpec
spec(const std::string &name)
{
    for (const auto &s : comparator_specs()) {
        if (s.name == name) return s;
    }
    POSEIDON_REQUIRE(false, "unknown comparator system: " + name);
    return {};
}

BasicOpRates
gpu_over100x_rates()
{
    // Table IV, over100x (GPU) column, ops/s.
    BasicOpRates r;
    r.pmult = 7407;
    r.cmult = 57;
    r.rotation = 61;
    r.rescale = 1574;
    return r;
}

BasicOpRates
heax_rates()
{
    // Table IV, HEAX column (estimated by the paper for its parameter
    // set from the HEAX design).
    BasicOpRates r;
    r.pmult = 4161;
    r.cmult = 119;
    r.ntt = 4540;      // ~1/50 of Poseidon per the paper's 50x claim
    r.keyswitch = 104; // ~1/3 of Poseidon per the paper's 3x claim
    return r;
}

BenchTimesMs
bench_times(const std::string &name)
{
    // Reconstructed comparator times (ms). LR is the per-iteration
    // average (the paper's own metric). Anchors: Poseidon LR 72.98 with
    // 10.6x over the GPU and 8.7x over the slowest ASIC (F1+); ASICs
    // beat the FPGA on bootstrapping-heavy workloads.
    if (name == "over100x") return {773.6, 8340.0, 23000.0, 1620.0};
    if (name == "F1+") return {635.0, 2693.0, 2963.0, 421.0};
    if (name == "CraterLake") return {119.0, 496.0, 679.0, 38.1};
    if (name == "BTS") return {28.4, 1022.0, 1910.0, 58.9};
    if (name == "ARK") return {7.42, 125.0, 294.0, 3.52};
    if (name == "Poseidon") return {72.98, 1846.89, 2661.23, 127.45};
    POSEIDON_REQUIRE(false, "no benchmark times for system: " + name);
    return {};
}

double
reported_edp_lr(const std::string &name)
{
    // Table X (J*s, LR per iteration), reconstructed: Poseidon ~1000x
    // better than the GPU; CraterLake/BTS worse than Poseidon on LR,
    // ARK better.
    if (name == "over100x") return 773.6e-3 * 773.6e-3 * 300.0 * 1000.0;
    if (name == "F1+") return 635.0e-3 * 635.0e-3 * 151.0;
    if (name == "CraterLake") return 119.0e-3 * 119.0e-3 * 170.0;
    if (name == "BTS") return 28.4e-3 * 28.4e-3 * 163.0;
    if (name == "ARK") return 7.42e-3 * 7.42e-3 * 281.0;
    POSEIDON_REQUIRE(false, "no EDP for system: " + name);
    return 0;
}

std::vector<FpgaResources>
prior_fpga_resources()
{
    // Table XII: FPGA prototypes' reported resource totals.
    return {
        // Reported totals of prior FPGA prototypes (FF, DSP, LUT/ALM,
        // BRAM/M20K), approximated from the cited papers.
        {"Kim et al. [25,26]", 963000, 5280, 720000, 1900},
        {"HEAX [32]", 1398000, 5040, 699000, 2100},
    };
}

} // namespace poseidon::baselines
