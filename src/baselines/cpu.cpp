#include "baselines/cpu.h"

#include <chrono>
#include <cmath>
#include <functional>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "common/check.h"

namespace poseidon::baselines {

namespace {

double
time_best_of(int reps, const std::function<void()> &fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

} // namespace

CpuOpTimes
CpuBaseline::measure(const CkksParams &params, int reps)
{
    auto ctx = make_ckks_context(params);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    CkksEncryptor encryptor(ctx, keygen.make_public_key());
    CkksEvaluator eval(ctx);
    KSwitchKey relin = keygen.make_relin_key();
    GaloisKeys gk = keygen.make_galois_keys({1});

    std::size_t slots = ctx->slots();
    std::vector<cdouble> z(slots, cdouble(0.5, 0.25));
    std::size_t limbs = params.L;
    Plaintext pt = encoder.encode(z, limbs);
    Ciphertext ct = encryptor.encrypt(pt);
    Ciphertext ct2 = encryptor.encrypt(pt);

    CpuOpTimes t;
    t.hadd = time_best_of(reps, [&] { (void)eval.add(ct, ct2); });
    t.pmult = time_best_of(reps, [&] { (void)eval.mul_plain(ct, pt); });
    t.cmult = time_best_of(reps, [&] { (void)eval.mul(ct, ct2, relin); });
    t.ntt = time_best_of(reps, [&] {
        RnsPoly p = ct.c0;
        p.to_coeff();
        p.to_eval();
    }) / 2.0; // the lambda does INTT+NTT; report one transform
    t.keyswitch = time_best_of(reps, [&] {
        (void)eval.keyswitch_core(ct.c1, relin);
    });
    t.rotation = time_best_of(reps, [&] { (void)eval.rotate(ct, 1, gk); });
    t.rescale = time_best_of(reps, [&] {
        Ciphertext c = ct;
        eval.rescale_inplace(c);
    });
    return t;
}

CpuOpTimes
CpuBaseline::scale_to(const CpuOpTimes &measured, const isa::OpShape &from,
                      const isa::OpShape &to)
{
    auto linear = [&](double v) {
        return v * (static_cast<double>(to.n) * to.limbs) /
               (static_cast<double>(from.n) * from.limbs);
    };
    auto nlogn = [&](double v) {
        double a = static_cast<double>(to.n) *
                   std::log2(static_cast<double>(to.n)) * to.limbs;
        double b = static_cast<double>(from.n) *
                   std::log2(static_cast<double>(from.n)) * from.limbs;
        return v * a / b;
    };
    auto kswitch = [&](double v) {
        double a = static_cast<double>(to.digits()) * to.ext_limbs() *
                   to.n * std::log2(static_cast<double>(to.n));
        double b = static_cast<double>(from.digits()) *
                   from.ext_limbs() * from.n *
                   std::log2(static_cast<double>(from.n));
        return v * a / b;
    };

    CpuOpTimes t;
    t.hadd = linear(measured.hadd);
    t.pmult = linear(measured.pmult);
    t.rescale = linear(measured.rescale);
    t.ntt = nlogn(measured.ntt);
    t.cmult = kswitch(measured.cmult);
    t.keyswitch = kswitch(measured.keyswitch);
    t.rotation = kswitch(measured.rotation);
    return t;
}

} // namespace poseidon::baselines
