#ifndef POSEIDON_BASELINES_PUBLISHED_H_
#define POSEIDON_BASELINES_PUBLISHED_H_

/**
 * @file
 * Published-number comparator models.
 *
 * The GPU (over100x [21]), HEAX FPGA [32] and the four accelerator
 * ASICs (F1+ [35,36], CraterLake [36], BTS [24], ARK [23]) are closed
 * or simulation-only systems; like the paper itself, we compare against
 * their reported numbers. Values below are reconstructed from the
 * Poseidon paper's tables and the cited papers; where the source text
 * is ambiguous we picked values consistent with the paper's headline
 * claims (e.g. "up to 10.6x/8.7x speedup over GPU and the ASIC
 * solution") and say so in EXPERIMENTS.md.
 */

#include <string>
#include <vector>

namespace poseidon::baselines {

/// Static description of a comparator platform (Table VI left side).
struct SystemSpec
{
    std::string name;
    std::string platform;      ///< CPU / GPU / FPGA / ASIC
    double memoryGB = 0;       ///< HBM/DRAM capacity
    double offchipGBps = 0;    ///< off-chip bandwidth
    double scratchpadMB = 0;   ///< on-chip storage
    double clockGHz = 0;
    double powerWatts = 0;     ///< typical reported power
};

/// Basic-operation throughput in operations per second (0 = n/a).
struct BasicOpRates
{
    double hadd = 0;
    double pmult = 0;
    double cmult = 0;
    double ntt = 0;
    double keyswitch = 0;
    double rotation = 0;
    double rescale = 0;
};

/// Benchmark execution times in milliseconds (0 = not reported).
struct BenchTimesMs
{
    double lr = 0;           ///< HELR, average per iteration
    double lstm = 0;
    double resnet20 = 0;
    double bootstrapping = 0;///< fully packed bootstrapping
};

/// All comparator systems of the paper's evaluation.
std::vector<SystemSpec> comparator_specs();

/// Specs by name ("CPU", "over100x", "HEAX", "F1+", "CraterLake",
/// "BTS", "ARK"). Throws for unknown names.
SystemSpec spec(const std::string &name);

/// Reported basic-op rates (Table IV columns for GPU and HEAX).
BasicOpRates gpu_over100x_rates();
BasicOpRates heax_rates();

/// Reported full-benchmark times (Table VI / Fig. 8 comparators).
BenchTimesMs bench_times(const std::string &name);

/// Reported EDP in J*s for the LR benchmark (Table X comparators),
/// normalized per iteration.
double reported_edp_lr(const std::string &name);

/// FPGA resource totals of prior FPGA prototypes (Table XII).
struct FpgaResources
{
    std::string name;
    unsigned long long ff, dsp, lut, bram;
};
std::vector<FpgaResources> prior_fpga_resources();

} // namespace poseidon::baselines

#endif // POSEIDON_BASELINES_PUBLISHED_H_
