#include "telemetry/bench_diff.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace poseidon::telemetry {

namespace {

/// Fetch a top-level number; NaN when absent or non-numeric.
double
number_or_nan(const Json &doc, const std::string &key)
{
    if (!doc.is_object() || !doc.contains(key) ||
        !doc.at(key).is_number()) {
        return std::nan("");
    }
    return doc.at(key).as_number();
}

std::string
string_or(const Json &doc, const std::string &key,
          const std::string &fallback)
{
    if (!doc.is_object() || !doc.contains(key) ||
        !doc.at(key).is_string()) {
        return fallback;
    }
    return doc.at(key).as_string();
}

MetricDelta
compare_value(const std::string &key, double base, double cur,
              const BenchDiffOptions &opt)
{
    MetricDelta d;
    d.key = key;
    d.baseline = base;
    d.current = cur;
    d.tolerance = opt.tolerance_for(key);
    double denom = std::max(std::fabs(base), 1.0);
    d.relDelta = (cur - base) / denom;
    d.regression = !std::isfinite(cur) ||
                   std::fabs(d.relDelta) > d.tolerance;
    return d;
}

} // namespace

bool
BenchDiffResult::regressed() const
{
    return !comparable || regression_count() > 0;
}

std::size_t
BenchDiffResult::regression_count() const
{
    std::size_t n = 0;
    for (const MetricDelta &d : deltas) n += d.regression ? 1 : 0;
    return n;
}

BenchDiffResult
diff_bench(const Json &baseline, const Json &current,
           const BenchDiffOptions &opt)
{
    BenchDiffResult r;
    r.name = string_or(current, "name", "?");

    if (!baseline.is_object() || !current.is_object()) {
        r.comparable = false;
        r.incomparableReason = "document is not a JSON object";
        return r;
    }
    std::string baseName = string_or(baseline, "name", "?");
    if (baseName != r.name) {
        r.comparable = false;
        r.incomparableReason = "bench name mismatch: baseline \"" +
                               baseName + "\" vs current \"" + r.name +
                               "\"";
        return r;
    }
    // Schema-v2 stamps: refuse to diff across machine shapes. A v1
    // document has no stamp and is compared as-is.
    for (const char *key : {"hw_config", "threads"}) {
        if (!baseline.contains(key) || !current.contains(key)) continue;
        std::string b = baseline.at(key).is_string()
                            ? baseline.at(key).as_string()
                            : baseline.at(key).dump();
        std::string c = current.at(key).is_string()
                            ? current.at(key).as_string()
                            : current.at(key).dump();
        if (b != c) {
            r.comparable = false;
            r.incomparableReason = std::string("cross-config diff "
                                               "refused: ") +
                                   key + " \"" + b + "\" vs \"" + c +
                                   "\"";
            return r;
        }
    }

    for (const char *key : {"cycles", "seconds", "bandwidth_util"}) {
        double base = number_or_nan(baseline, key);
        double cur = number_or_nan(current, key);
        if (std::isnan(base) && std::isnan(cur)) continue;
        if (std::isnan(base)) continue; // new in current: not gated
        MetricDelta d = compare_value(key, base, cur, opt);
        if (std::isnan(cur)) {
            d.missing = true;
            d.regression = true;
        }
        r.deltas.push_back(d);
    }

    const Json empty = Json::object();
    const Json &baseMetrics =
        baseline.contains("metrics") && baseline.at("metrics").is_object()
            ? baseline.at("metrics")
            : empty;
    const Json &curMetrics =
        current.contains("metrics") && current.at("metrics").is_object()
            ? current.at("metrics")
            : empty;

    for (const auto &kv : baseMetrics.items()) {
        std::string key = "metrics." + kv.first;
        if (!kv.second.is_number()) continue;
        if (!curMetrics.contains(kv.first) ||
            !curMetrics.at(kv.first).is_number()) {
            MetricDelta d;
            d.key = key;
            d.baseline = kv.second.as_number();
            d.current = std::nan("");
            d.tolerance = opt.tolerance_for(key);
            d.missing = true;
            d.regression = true;
            r.deltas.push_back(d);
            continue;
        }
        r.deltas.push_back(compare_value(
            key, kv.second.as_number(),
            curMetrics.at(kv.first).as_number(), opt));
    }
    for (const auto &kv : curMetrics.items()) {
        if (baseMetrics.contains(kv.first)) continue;
        MetricDelta d;
        d.key = "metrics." + kv.first;
        d.baseline = std::nan("");
        d.current = kv.second.is_number() ? kv.second.as_number()
                                          : std::nan("");
        d.added = true;
        r.deltas.push_back(d);
    }
    return r;
}

std::string
format_diff(const BenchDiffResult &r)
{
    std::ostringstream os;
    if (!r.comparable) {
        os << r.name << ": INCOMPARABLE: " << r.incomparableReason
           << "\n";
        return os.str();
    }
    std::size_t added = 0, compared = 0;
    for (const MetricDelta &d : r.deltas) {
        if (d.added) {
            ++added;
            continue;
        }
        ++compared;
        if (!d.regression) continue;
        if (d.missing) {
            os << r.name << ": REGRESSION: " << d.key
               << " missing from current run (baseline " << d.baseline
               << ")\n";
        } else {
            os << r.name << ": REGRESSION: " << d.key << " "
               << d.baseline << " -> " << d.current << " ("
               << (d.relDelta >= 0 ? "+" : "") << d.relDelta * 100.0
               << "%, tolerance " << d.tolerance * 100.0 << "%)\n";
        }
    }
    if (r.regression_count() == 0) {
        os << r.name << ": ok (" << compared << " values within "
           << "tolerance";
        if (added > 0) os << ", " << added << " new";
        os << ")\n";
    }
    return os.str();
}

} // namespace poseidon::telemetry
