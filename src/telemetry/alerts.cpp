#include "telemetry/alerts.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "telemetry/json.h"

namespace poseidon::telemetry {

const char*
to_string(AlertCmp c)
{
    switch (c) {
    case AlertCmp::GT: return ">";
    case AlertCmp::GE: return ">=";
    case AlertCmp::LT: return "<";
    case AlertCmp::LE: return "<=";
    }
    return "?";
}

const char*
to_string(AlertSeverity s)
{
    switch (s) {
    case AlertSeverity::Warn: return "warn";
    case AlertSeverity::Page: return "page";
    }
    return "?";
}

const char*
to_string(AlertState s)
{
    switch (s) {
    case AlertState::Inactive: return "inactive";
    case AlertState::Pending: return "pending";
    case AlertState::Firing: return "firing";
    }
    return "?";
}

bool
AlertRule::condition(double value) const
{
    if (std::isnan(value)) return false;
    switch (cmp) {
    case AlertCmp::GT: return value > threshold;
    case AlertCmp::GE: return value >= threshold;
    case AlertCmp::LT: return value < threshold;
    case AlertCmp::LE: return value <= threshold;
    }
    return false;
}

namespace {

/// Canonical number text shared with the JSON dumps, so parse(str())
/// round-trips bit-exactly.
std::string
num_str(double v)
{
    return Json(v).dump();
}

double
parse_num(const std::string &tok, const std::string &clause)
{
    std::size_t used = 0;
    double v = 0.0;
    try {
        v = std::stod(tok, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    POSEIDON_REQUIRE(used == tok.size() && std::isfinite(v),
                     "alert rule \"" << clause << "\": \"" << tok
                     << "\" is not a finite number");
    return v;
}

std::vector<std::string>
tokenize(const std::string &clause)
{
    std::vector<std::string> toks;
    std::istringstream in(clause);
    std::string tok;
    while (in >> tok) toks.push_back(tok);
    return toks;
}

} // namespace

std::string
AlertRule::str() const
{
    std::string out = metric;
    out += ' ';
    out += to_string(cmp);
    out += ' ';
    out += num_str(threshold);
    if (forCycles > 0.0) {
        out += " for ";
        out += num_str(forCycles);
        out += " cycles";
    }
    if (holdCycles > 0.0) {
        out += " hold ";
        out += num_str(holdCycles);
        out += " cycles";
    }
    out += " => ";
    out += to_string(severity);
    return out;
}

std::string
AlertRules::str() const
{
    std::string out;
    for (const AlertRule &r : rules) {
        if (!out.empty()) out += "; ";
        out += r.str();
    }
    return out;
}

AlertRules
AlertRules::parse(const std::string &spec)
{
    AlertRules out;
    std::string clause;
    auto flush = [&out](const std::string &text) {
        std::vector<std::string> toks = tokenize(text);
        if (toks.empty()) return; // blank clause (trailing ';')
        POSEIDON_REQUIRE(toks.size() >= 3,
                         "alert rule \"" << text
                         << "\": want <metric> <cmp> <threshold>");
        AlertRule r;
        r.metric = toks[0];
        const std::string &cmp = toks[1];
        if (cmp == ">") {
            r.cmp = AlertCmp::GT;
        } else if (cmp == ">=") {
            r.cmp = AlertCmp::GE;
        } else if (cmp == "<") {
            r.cmp = AlertCmp::LT;
        } else if (cmp == "<=") {
            r.cmp = AlertCmp::LE;
        } else {
            POSEIDON_THROW(InvalidArgument,
                           "alert rule \"" << text
                           << "\": comparator \"" << cmp
                           << "\" is not one of > >= < <=");
        }
        r.threshold = parse_num(toks[2], text);
        std::size_t i = 3;
        auto duration = [&](const char *kw) {
            POSEIDON_REQUIRE(i + 1 < toks.size(),
                             "alert rule \"" << text << "\": " << kw
                             << " needs a cycle count");
            double v = parse_num(toks[i + 1], text);
            POSEIDON_REQUIRE(v >= 0.0, "alert rule \"" << text
                             << "\": negative " << kw
                             << " duration");
            i += 2;
            if (i < toks.size() && toks[i] == "cycles") ++i;
            return v;
        };
        while (i < toks.size()) {
            if (toks[i] == "for") {
                r.forCycles = duration("for");
            } else if (toks[i] == "hold") {
                r.holdCycles = duration("hold");
            } else if (toks[i] == "=>") {
                POSEIDON_REQUIRE(i + 1 < toks.size(),
                                 "alert rule \"" << text
                                 << "\": => needs warn or page");
                const std::string &sev = toks[i + 1];
                if (sev == "warn") {
                    r.severity = AlertSeverity::Warn;
                } else if (sev == "page") {
                    r.severity = AlertSeverity::Page;
                } else {
                    POSEIDON_THROW(InvalidArgument,
                                   "alert rule \"" << text
                                   << "\": severity \"" << sev
                                   << "\" is not warn or page");
                }
                i += 2;
                POSEIDON_REQUIRE(i == toks.size(),
                                 "alert rule \"" << text
                                 << "\": trailing tokens after "
                                    "severity");
            } else {
                POSEIDON_THROW(InvalidArgument,
                               "alert rule \"" << text
                               << "\": unexpected token \""
                               << toks[i] << "\"");
            }
        }
        out.rules.push_back(std::move(r));
    };
    for (char c : spec) {
        if (c == ';' || c == '\n') {
            flush(clause);
            clause.clear();
        } else {
            clause += c;
        }
    }
    flush(clause);
    return out;
}

std::string
AlertTransition::text() const
{
    std::string out = to_string(from);
    out += " -> ";
    out += to_string(to);
    return out;
}

AlertEngine::AlertEngine(AlertRules rules)
    : rules_(std::move(rules)), states_(rules_.size())
{
}

AlertState
AlertEngine::state(std::size_t rule) const
{
    POSEIDON_REQUIRE(rule < states_.size(), "AlertEngine: rule "
                     << rule << " out of range");
    return states_[rule].state;
}

std::size_t
AlertEngine::firing() const
{
    std::size_t n = 0;
    for (const RuleState &s : states_) {
        if (s.state == AlertState::Firing) ++n;
    }
    return n;
}

std::string
AlertEngine::state_series_name(std::size_t rule)
{
    return "alert.r" + std::to_string(rule) + ".state";
}

std::vector<AlertTransition>
AlertEngine::evaluate(double cycle, Tsdb &tsdb)
{
    POSEIDON_REQUIRE(cycle >= lastCycle_,
                     "AlertEngine: evaluation cycle " << cycle
                     << " runs backwards (last " << lastCycle_
                     << ")");
    lastCycle_ = cycle;
    std::vector<AlertTransition> transitions;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const AlertRule &rule = rules_.rules[i];
        RuleState &st = states_[i];
        double value = std::numeric_limits<double>::quiet_NaN();
        if (const Series *s = tsdb.find(rule.metric)) {
            if (!s->empty()) value = s->latest().value;
        }
        bool cond = rule.condition(value);
        AlertState before = st.state;
        switch (st.state) {
        case AlertState::Inactive:
            if (cond) {
                st.conditionSince = cycle;
                st.state = cycle - st.conditionSince >=
                                   rule.forCycles
                               ? AlertState::Firing
                               : AlertState::Pending;
            }
            break;
        case AlertState::Pending:
            if (!cond) {
                st.state = AlertState::Inactive;
            } else if (cycle - st.conditionSince >= rule.forCycles) {
                st.state = AlertState::Firing;
            }
            break;
        case AlertState::Firing:
            if (cond) {
                st.clearSince = -1.0; // re-assertion resets the timer
            } else {
                if (st.clearSince < 0.0) st.clearSince = cycle;
                if (cycle - st.clearSince >= rule.holdCycles) {
                    st.state = AlertState::Inactive;
                    st.clearSince = -1.0;
                }
            }
            break;
        }
        if (st.state != before) {
            if (st.state == AlertState::Firing) ++firedTotal_;
            if (before == AlertState::Firing) ++resolvedTotal_;
            AlertTransition t;
            t.rule = i;
            t.cycle = cycle;
            t.from = before;
            t.to = st.state;
            t.value = value;
            Annotation a;
            a.cycle = cycle;
            a.kind = "alert";
            a.name = rule.str();
            a.text = t.text();
            a.value = static_cast<double>(
                static_cast<unsigned>(st.state));
            tsdb.annotate(std::move(a));
            transitions.push_back(std::move(t));
        }
        tsdb.record(state_series_name(i), cycle,
                    static_cast<double>(
                        static_cast<unsigned>(st.state)));
    }
    return transitions;
}

} // namespace poseidon::telemetry
