#include "telemetry/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/metric_sink.h"

namespace poseidon::telemetry {

#ifndef POSEIDON_TELEMETRY_DISABLED
namespace {
std::atomic<bool> g_enabled{true};
} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
set_enabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}
#endif

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    POSEIDON_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                     "Histogram: bucket bounds must be sorted");
    POSEIDON_REQUIRE(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
                     "Histogram: bucket bounds must be distinct");
}

Histogram::Histogram(std::vector<double> bounds,
                     const std::vector<std::uint64_t> &buckets,
                     double sum)
    : Histogram(std::move(bounds))
{
    POSEIDON_REQUIRE(buckets.size() == buckets_.size(),
                     "Histogram::from_buckets: " << buckets.size()
                     << " bucket counts, bounds imply "
                     << buckets_.size());
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        buckets_[i].store(buckets[i], std::memory_order_relaxed);
        n += buckets[i];
    }
    count_.store(n, std::memory_order_relaxed);
    sum_.store(sum, std::memory_order_relaxed);
}

Histogram
Histogram::from_buckets(std::vector<double> bounds,
                        const std::vector<std::uint64_t> &buckets,
                        double sum)
{
    return Histogram(std::move(bounds), buckets, sum);
}

void
Histogram::observe(double v)
{
    std::size_t i =
        static_cast<std::size_t>(std::lower_bound(bounds_.begin(),
                                                  bounds_.end(), v) -
                                 bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

void
Histogram::merge(const Histogram &other)
{
    POSEIDON_REQUIRE(other.bounds_ == bounds_,
                     "Histogram::merge: bucket bounds differ");
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        std::uint64_t add =
            other.buckets_[i].load(std::memory_order_relaxed);
        if (add != 0) {
            buckets_[i].fetch_add(add, std::memory_order_relaxed);
        }
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucket_count(std::size_t i) const
{
    POSEIDON_REQUIRE(i < buckets_.size(), "Histogram: bucket " << i
                     << " out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

double
Histogram::quantile(double q) const
{
    POSEIDON_REQUIRE(q >= 0.0 && q <= 1.0,
                     "Histogram::quantile: q = " << q
                                                 << " outside [0, 1]");
    std::uint64_t n = count();
    if (n == 0) return std::numeric_limits<double>::quiet_NaN();
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        std::uint64_t inBucket = bucket_count(i);
        if (cum + inBucket >= rank) {
            double lo = i == 0 ? 0.0 : bounds_[i - 1];
            double hi = bounds_[i];
            double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(inBucket);
            return lo + (hi - lo) * frac;
        }
        cum += inBucket;
    }
    // Overflow bucket: no upper bound to interpolate toward.
    return bounds_.empty() ? 0.0 : bounds_.back();
}

const std::vector<double>&
default_latency_bounds_us()
{
    static const std::vector<double> kBounds = {
        1,    2,    5,    10,   20,   50,   100,   200,   500,
        1e3,  2e3,  5e3,  1e4,  2e4,  5e4,  1e5,   2e5,   5e5,
        1e6,  2e6,  5e6,  1e7,
    };
    return kBounds;
}

double
exact_quantile(std::vector<double> sample, double q)
{
    POSEIDON_REQUIRE(q >= 0.0 && q <= 1.0,
                     "exact_quantile: q = " << q << " outside [0, 1]");
    if (sample.empty()) return 0.0;
    std::sort(sample.begin(), sample.end());
    std::size_t n = sample.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    return sample[rank - 1];
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry *reg = new MetricsRegistry();
    return *reg;
}

#ifndef POSEIDON_TELEMETRY_DISABLED
namespace {

/// Bridge the common-layer MetricSink (see common/metric_sink.h) into
/// the registry so the parallel engine and NTT table cache show up in
/// the normal metrics export. Installed once at library load; the
/// captureless lambdas decay to the plain function pointers the sink
/// expects and resolve the registry lazily at emit time.
bool
install_registry_sink()
{
    MetricSink sink;
    sink.count = [](const char *name, double v) {
        if (enabled()) MetricsRegistry::global().counter(name).add(v);
    };
    sink.gauge = [](const char *name, double v) {
        if (enabled()) MetricsRegistry::global().gauge(name).set(v);
    };
    sink.observe = [](const char *name, double v) {
        if (enabled()) MetricsRegistry::global().histogram(name).observe(v);
    };
    install_metric_sink(sink);
    return true;
}

const bool g_sinkInstalled = install_registry_sink();

} // namespace
#endif

namespace {

template <typename T>
T*
find(std::vector<std::pair<std::string, std::unique_ptr<T>>> &v,
     const std::string &name)
{
    for (auto &kv : v) {
        if (kv.first == name) return kv.second.get();
    }
    return nullptr;
}

} // namespace

Counter&
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (Counter *c = find(counters_, name)) return *c;
    counters_.emplace_back(name, std::make_unique<Counter>());
    return *counters_.back().second;
}

Gauge&
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (Gauge *g = find(gauges_, name)) return *g;
    gauges_.emplace_back(name, std::make_unique<Gauge>());
    return *gauges_.back().second;
}

Histogram&
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (Histogram *h = find(histograms_, name)) return *h;
    histograms_.emplace_back(name, std::make_unique<Histogram>(bounds));
    return *histograms_.back().second;
}

double
MetricsRegistry::counter_value(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &kv : counters_) {
        if (kv.first == name) return kv.second->value();
    }
    return 0.0;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

namespace {

/// "sim.kind_cycles.MM" -> "poseidon_sim_kind_cycles_MM".
std::string
prom_name(const std::string &name)
{
    std::string out = "poseidon_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
prom_value(double v)
{
    Json j(v);
    return j.dump();
}

} // namespace

std::string
MetricsRegistry::prometheus_text() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::string out;
    for (const auto &kv : counters_) {
        std::string n = prom_name(kv.first);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + prom_value(kv.second->value()) + "\n";
    }
    for (const auto &kv : gauges_) {
        std::string n = prom_name(kv.first);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + prom_value(kv.second->value()) + "\n";
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        std::string n = prom_name(kv.first);
        out += "# TYPE " + n + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cum += h.bucket_count(i);
            out += n + "_bucket{le=\"" + prom_value(h.bounds()[i]) +
                   "\"} " + std::to_string(cum) + "\n";
        }
        out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) +
               "\n";
        out += n + "_sum " + prom_value(h.sum()) + "\n";
        out += n + "_count " + std::to_string(h.count()) + "\n";
    }
    return out;
}

Json
MetricsRegistry::to_json() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Json counters = Json::object();
    for (const auto &kv : counters_) {
        counters.set(kv.first, Json(kv.second->value()));
    }
    Json gauges = Json::object();
    for (const auto &kv : gauges_) {
        gauges.set(kv.first, Json(kv.second->value()));
    }
    Json histograms = Json::object();
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        Json buckets = Json::array();
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            Json b = Json::object();
            b.set("le", Json(h.bounds()[i]));
            b.set("count", Json(static_cast<double>(h.bucket_count(i))));
            buckets.push_back(std::move(b));
        }
        Json b = Json::object();
        b.set("le", Json("+Inf"));
        b.set("count",
              Json(static_cast<double>(
                  h.bucket_count(h.bounds().size()))));
        buckets.push_back(std::move(b));
        Json hj = Json::object();
        hj.set("buckets", std::move(buckets));
        hj.set("sum", Json(h.sum()));
        hj.set("count", Json(static_cast<double>(h.count())));
        histograms.set(kv.first, std::move(hj));
    }
    Json root = Json::object();
    root.set("counters", std::move(counters));
    root.set("gauges", std::move(gauges));
    root.set("histograms", std::move(histograms));
    return root;
}

ScopedLatency::ScopedLatency(const char *histName)
    : name_(histName), live_(enabled())
{
    if (live_) {
        startNs_ = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
}

ScopedLatency::~ScopedLatency()
{
    if (!live_ || !enabled()) return;
    std::uint64_t endNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    MetricsRegistry::global().histogram(name_).observe(
        static_cast<double>(endNs - startNs_) / 1e3);
}

} // namespace poseidon::telemetry
