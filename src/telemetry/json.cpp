#include "telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace poseidon::telemetry {

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

bool
Json::as_bool() const
{
    POSEIDON_REQUIRE(type_ == Type::Bool, "Json: not a bool");
    return bool_;
}

double
Json::as_number() const
{
    POSEIDON_REQUIRE(type_ == Type::Number, "Json: not a number");
    return num_;
}

const std::string&
Json::as_string() const
{
    POSEIDON_REQUIRE(type_ == Type::String, "Json: not a string");
    return str_;
}

void
Json::push_back(Json v)
{
    POSEIDON_REQUIRE(type_ == Type::Array || type_ == Type::Null,
                     "Json: push_back on non-array");
    type_ = Type::Array;
    arr_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array) return arr_.size();
    if (type_ == Type::Object) return obj_.size();
    return 0;
}

const Json&
Json::at(std::size_t i) const
{
    POSEIDON_REQUIRE(type_ == Type::Array, "Json: not an array");
    POSEIDON_REQUIRE(i < arr_.size(), "Json: index " << i
                     << " out of range (size " << arr_.size() << ")");
    return arr_[i];
}

void
Json::set(const std::string &key, Json v)
{
    POSEIDON_REQUIRE(type_ == Type::Object || type_ == Type::Null,
                     "Json: set on non-object");
    type_ = Type::Object;
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

bool
Json::contains(const std::string &key) const
{
    if (type_ != Type::Object) return false;
    for (const auto &kv : obj_) {
        if (kv.first == key) return true;
    }
    return false;
}

const Json&
Json::at(const std::string &key) const
{
    POSEIDON_REQUIRE(type_ == Type::Object, "Json: not an object");
    for (const auto &kv : obj_) {
        if (kv.first == key) return kv.second;
    }
    POSEIDON_THROW(InvalidArgument, "Json: missing key '" << key << "'");
}

const std::vector<std::pair<std::string, Json>>&
Json::items() const
{
    POSEIDON_REQUIRE(type_ == Type::Object, "Json: not an object");
    return obj_;
}

namespace {

void
append_number(std::string &out, double d)
{
    if (std::isnan(d) || std::isinf(d)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out += "null";
        return;
    }
    double rounded = std::nearbyint(d);
    if (rounded == d && std::abs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        out += buf;
        return;
    }
    // %.17g round-trips every finite double through strtod.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

void
append_indent(std::string &out, int indent, int depth)
{
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dump_to(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null: out += "null"; break;
      case Type::Bool: out += bool_ ? "true" : "false"; break;
      case Type::Number: append_number(out, num_); break;
      case Type::String:
        out += '"';
        out += json_escape(str_);
        out += '"';
        break;
      case Type::Array: {
        if (arr_.empty()) { out += "[]"; break; }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i) out += ',';
            append_indent(out, indent, depth + 1);
            arr_[i].dump_to(out, indent, depth + 1);
        }
        append_indent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::Object: {
        if (obj_.empty()) { out += "{}"; break; }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i) out += ',';
            append_indent(out, indent, depth + 1);
            out += '"';
            out += json_escape(obj_[i].first);
            out += "\":";
            if (indent >= 0) out += ' ';
            obj_[i].second.dump_to(out, indent, depth + 1);
        }
        append_indent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

/// Recursive-descent JSON parser over a string view.
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Json parse_document()
    {
        Json v = parse_value();
        skip_ws();
        POSEIDON_REQUIRE_T(ParseError, pos_ == s_.size(),
                           "json: trailing garbage at offset " << pos_);
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what)
    {
        POSEIDON_THROW(ParseError,
                       "json: " << what << " at offset " << pos_);
    }

    void skip_ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= s_.size()) fail("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(const char *lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json parse_value()
    {
        skip_ws();
        char c = peek();
        switch (c) {
          case '{': return parse_object();
          case '[': return parse_array();
          case '"': return Json(parse_string());
          case 't':
            if (consume_literal("true")) return Json(true);
            fail("bad literal");
          case 'f':
            if (consume_literal("false")) return Json(false);
            fail("bad literal");
          case 'n':
            if (consume_literal("null")) return Json(nullptr);
            fail("bad literal");
          default: return parse_number();
        }
    }

    Json parse_object()
    {
        expect('{');
        Json obj = Json::object();
        skip_ws();
        if (peek() == '}') { ++pos_; return obj; }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.set(key, parse_value());
            skip_ws();
            char c = peek();
            if (c == ',') { ++pos_; continue; }
            if (c == '}') { ++pos_; return obj; }
            fail("expected ',' or '}'");
        }
    }

    Json parse_array()
    {
        expect('[');
        Json arr = Json::array();
        skip_ws();
        if (peek() == ']') { ++pos_; return arr; }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            char c = peek();
            if (c == ',') { ++pos_; continue; }
            if (c == ']') { ++pos_; return arr; }
            fail("expected ',' or ']'");
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            }
            if (c != '\\') { out += c; continue; }
            if (pos_ >= s_.size()) fail("dangling escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size()) fail("short \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9') v |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f') v |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') v |= unsigned(h - 'A' + 10);
                    else fail("bad \\u escape");
                }
                // Encode the code point as UTF-8 (surrogate pairs are
                // passed through as two 3-byte sequences; telemetry
                // strings never carry astral-plane text).
                if (v < 0x80) {
                    out += static_cast<char>(v);
                } else if (v < 0x800) {
                    out += static_cast<char>(0xC0 | (v >> 6));
                    out += static_cast<char>(0x80 | (v & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (v >> 12));
                    out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (v & 0x3F));
                }
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    Json parse_number()
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        std::string tok = s_.substr(start, pos_ - start);
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            pos_ = start;
            fail("malformed number");
        }
        return Json(d);
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse_document();
}

} // namespace poseidon::telemetry
