#include "telemetry/tracer.h"

#include <fstream>

namespace poseidon::telemetry {

Tracer&
Tracer::global()
{
    static Tracer *tr = new Tracer();
    return *tr;
}

void
Tracer::start()
{
    std::lock_guard<std::mutex> lk(mu_);
    events_.clear();
    processNames_.clear();
    threadNames_.clear();
    t0_ = std::chrono::steady_clock::now();
    active_.store(true, std::memory_order_release);
}

void
Tracer::stop()
{
    active_.store(false, std::memory_order_release);
}

double
Tracer::now_us() const
{
    if (!active()) return 0.0;
    auto dt = std::chrono::steady_clock::now() - t0_;
    return std::chrono::duration<double, std::micro>(dt).count();
}

int
Tracer::thread_tid()
{
    static std::atomic<int> next{1};
    thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void
Tracer::complete_event(TraceEvent ev)
{
    if (!active()) return;
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(std::move(ev));
}

void
Tracer::flow_event(char phase, std::uint64_t id,
                   const std::string &name, int pid, int tid,
                   double tsUs)
{
    TraceEvent ev;
    ev.name = name;
    ev.ph = phase;
    ev.pid = pid;
    ev.tid = tid;
    ev.tsUs = tsUs;
    ev.flowId = id;
    complete_event(std::move(ev));
}

void
Tracer::set_process_name(int pid, const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &kv : processNames_) {
        if (kv.first == pid) {
            kv.second = name;
            return;
        }
    }
    processNames_.emplace_back(pid, name);
}

void
Tracer::set_thread_name(int pid, int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto key = std::make_pair(pid, tid);
    for (auto &kv : threadNames_) {
        if (kv.first == key) {
            kv.second = name;
            return;
        }
    }
    threadNames_.emplace_back(key, name);
}

std::size_t
Tracer::event_count() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
}

std::string
Tracer::chrome_trace_json() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Json events = Json::array();
    for (const auto &kv : processNames_) {
        Json m = Json::object();
        m.set("ph", Json("M"));
        m.set("name", Json("process_name"));
        m.set("pid", Json(kv.first));
        Json args = Json::object();
        args.set("name", Json(kv.second));
        m.set("args", std::move(args));
        events.push_back(std::move(m));
    }
    for (const auto &kv : threadNames_) {
        Json m = Json::object();
        m.set("ph", Json("M"));
        m.set("name", Json("thread_name"));
        m.set("pid", Json(kv.first.first));
        m.set("tid", Json(kv.first.second));
        Json args = Json::object();
        args.set("name", Json(kv.second));
        m.set("args", std::move(args));
        events.push_back(std::move(m));
    }
    for (const TraceEvent &ev : events_) {
        Json e = Json::object();
        e.set("name", Json(ev.name));
        e.set("ph", Json(std::string(1, ev.ph)));
        e.set("pid", Json(ev.pid));
        e.set("tid", Json(ev.tid));
        e.set("ts", Json(ev.tsUs));
        if (ev.ph == 'X') {
            e.set("dur", Json(ev.durUs));
        } else {
            e.set("cat", Json("flow"));
            e.set("id", Json(ev.flowId));
            // Bind the finish arrow to the enclosing slice so the
            // chain stays visible when the final slice is zoomed out.
            if (ev.ph == 'f') e.set("bp", Json("e"));
        }
        if (!ev.args.empty()) {
            Json args = Json::object();
            for (const auto &a : ev.args) args.set(a.first, a.second);
            e.set("args", std::move(args));
        }
        events.push_back(std::move(e));
    }
    Json root = Json::object();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", Json("ms"));
    return root.dump();
}

bool
Tracer::write_chrome_trace(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << chrome_trace_json() << "\n";
    return static_cast<bool>(out);
}

SpanScope::SpanScope(const char *name)
    : live_(enabled() && Tracer::global().active()), name_(name)
{
    if (live_) startUs_ = Tracer::global().now_us();
}

SpanScope::~SpanScope()
{
    if (!live_) return;
    Tracer &tr = Tracer::global();
    if (!tr.active()) return; // session ended mid-span
    TraceEvent ev;
    ev.name = name_;
    ev.pid = Tracer::kHostPid;
    ev.tid = Tracer::thread_tid();
    ev.tsUs = startUs_;
    ev.durUs = tr.now_us() - startUs_;
    ev.args = std::move(args_);
    tr.complete_event(std::move(ev));
}

void
SpanScope::attr(const std::string &key, Json value)
{
    if (!live_) return;
    args_.emplace_back(key, std::move(value));
}

} // namespace poseidon::telemetry
