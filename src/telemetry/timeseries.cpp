#include "telemetry/timeseries.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace poseidon::telemetry {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

} // namespace

// ---------------------------------------------------------------- Series

Series::Series(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    POSEIDON_REQUIRE(capacity_ >= 2,
                     "Series \"" << name_
                     << "\": capacity must be >= 2 (rates need two "
                        "samples)");
    ring_.resize(capacity_);
}

void
Series::push(double cycle, double value)
{
    POSEIDON_REQUIRE(std::isfinite(cycle),
                     "Series \"" << name_
                     << "\": non-finite sample cycle");
    POSEIDON_REQUIRE(size_ == 0 || cycle >= latest().cycle,
                     "Series \"" << name_ << "\": sample at cycle "
                     << cycle << " runs backwards (latest "
                     << latest().cycle << ")");
    if (size_ == capacity_) {
        ring_[head_] = Sample{cycle, value};
        head_ = (head_ + 1) % capacity_;
        ++evicted_;
        return;
    }
    ring_[ring_index(size_)] = Sample{cycle, value};
    ++size_;
}

const Sample&
Series::at(std::size_t i) const
{
    POSEIDON_REQUIRE(i < size_, "Series \"" << name_ << "\": sample "
                     << i << " out of range (size " << size_ << ")");
    return ring_[ring_index(i)];
}

const Sample&
Series::latest() const
{
    return at(size_ - 1);
}

double
Series::delta(double windowCycles) const
{
    if (size_ < 2) return kNaN;
    const Sample &end = latest();
    double startCycle = end.cycle - windowCycles;
    // The newest sample at or before the window start; the oldest
    // retained sample when eviction ate the boundary.
    const Sample *start = &at(0);
    for (std::size_t i = 1; i < size_; ++i) {
        if (at(i).cycle > startCycle) break;
        start = &at(i);
    }
    if (start == &end) return kNaN;
    return end.value - start->value;
}

double
Series::rate(double windowCycles) const
{
    if (size_ < 2) return kNaN;
    const Sample &end = latest();
    double startCycle = end.cycle - windowCycles;
    const Sample *start = &at(0);
    for (std::size_t i = 1; i < size_; ++i) {
        if (at(i).cycle > startCycle) break;
        start = &at(i);
    }
    double dt = end.cycle - start->cycle;
    if (dt <= 0.0) return kNaN;
    return (end.value - start->value) / dt;
}

double
Series::ewma(double alpha) const
{
    POSEIDON_REQUIRE(alpha > 0.0 && alpha <= 1.0,
                     "Series \"" << name_ << "\": EWMA alpha "
                     << alpha << " outside (0, 1]");
    if (size_ == 0) return kNaN;
    double e = at(0).value;
    for (std::size_t i = 1; i < size_; ++i) {
        e = alpha * at(i).value + (1.0 - alpha) * e;
    }
    return e;
}

WindowStats
Series::window_stats(double windowCycles) const
{
    WindowStats w;
    if (size_ == 0) return w;
    double startCycle = latest().cycle - windowCycles;
    double sum = 0.0;
    for (std::size_t i = 0; i < size_; ++i) {
        const Sample &s = at(i);
        if (s.cycle <= startCycle) continue;
        ++w.count;
        w.min = std::min(w.min, s.value);
        w.max = std::max(w.max, s.value);
        sum += s.value;
    }
    if (w.count > 0) w.mean = sum / static_cast<double>(w.count);
    return w;
}

// ------------------------------------------------------- HistogramSeries

HistogramSeries::HistogramSeries(std::string name,
                                 std::vector<double> bounds,
                                 std::size_t capacity)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      capacity_(capacity),
      prevBuckets_(bounds_.size() + 1, 0)
{
    POSEIDON_REQUIRE(capacity_ >= 1, "HistogramSeries \"" << name_
                     << "\": zero capacity");
    ring_.resize(capacity_);
}

void
HistogramSeries::push(double cycle, const Histogram &cumulative)
{
    POSEIDON_REQUIRE(cumulative.bounds() == bounds_,
                     "HistogramSeries \"" << name_
                     << "\": bucket bounds changed between samples");
    HistogramInterval iv;
    iv.cycle = cycle;
    iv.buckets.resize(bounds_.size() + 1);
    double sum = cumulative.sum();
    for (std::size_t i = 0; i < iv.buckets.size(); ++i) {
        u64 cum = cumulative.bucket_count(i);
        POSEIDON_REQUIRE(cum >= prevBuckets_[i],
                         "HistogramSeries \"" << name_
                         << "\": cumulative bucket " << i
                         << " ran backwards");
        iv.buckets[i] = cum - prevBuckets_[i];
        prevBuckets_[i] = cum;
    }
    iv.sum = sum - prevSum_;
    prevSum_ = sum;
    push_interval(std::move(iv));
}

void
HistogramSeries::push_interval(HistogramInterval iv)
{
    POSEIDON_REQUIRE(iv.buckets.size() == bounds_.size() + 1,
                     "HistogramSeries \"" << name_
                     << "\": interval has " << iv.buckets.size()
                     << " buckets, bounds imply "
                     << bounds_.size() + 1);
    POSEIDON_REQUIRE(size_ == 0 || iv.cycle >= latest().cycle,
                     "HistogramSeries \"" << name_
                     << "\": interval at cycle " << iv.cycle
                     << " runs backwards");
    if (size_ == capacity_) {
        ring_[head_] = std::move(iv);
        head_ = (head_ + 1) % capacity_;
        ++evicted_;
        return;
    }
    ring_[ring_index(size_)] = std::move(iv);
    ++size_;
}

const HistogramInterval&
HistogramSeries::at(std::size_t i) const
{
    POSEIDON_REQUIRE(i < size_, "HistogramSeries \"" << name_
                     << "\": interval " << i << " out of range (size "
                     << size_ << ")");
    return ring_[ring_index(i)];
}

const HistogramInterval&
HistogramSeries::latest() const
{
    return at(size_ - 1);
}

double
HistogramSeries::window_quantile(double windowCycles, double q,
                                 double endCycle) const
{
    if (size_ == 0) return kNaN;
    double startCycle = endCycle - windowCycles;
    Histogram window(bounds_);
    for (std::size_t i = 0; i < size_; ++i) {
        const HistogramInterval &iv = at(i);
        if (iv.cycle <= startCycle || iv.cycle > endCycle) continue;
        window.merge(
            Histogram::from_buckets(bounds_, iv.buckets, iv.sum));
    }
    return window.quantile(q);
}

double
HistogramSeries::window_quantile(double windowCycles, double q) const
{
    if (size_ == 0) return kNaN;
    return window_quantile(windowCycles, q, latest().cycle);
}

// ------------------------------------------------------------ Annotation

Json
Annotation::to_json() const
{
    Json j = Json::object();
    j.set("annotation", Json(kind));
    j.set("cycle", Json(cycle));
    j.set("name", Json(name));
    j.set("text", Json(text));
    if (value != 0.0) j.set("value", Json(value));
    return j;
}

Annotation
Annotation::from_json(const Json &j)
{
    POSEIDON_REQUIRE_T(ParseError,
                       j.is_object() && j.contains("annotation") &&
                           j.contains("cycle") && j.contains("name") &&
                           j.contains("text"),
                       "TSDB annotation misses "
                       "annotation/cycle/name/text");
    Annotation a;
    a.kind = j.at("annotation").as_string();
    a.cycle = j.at("cycle").as_number();
    a.name = j.at("name").as_string();
    a.text = j.at("text").as_string();
    if (j.contains("value")) a.value = j.at("value").as_number();
    return a;
}

// ------------------------------------------------------------------ Tsdb

Tsdb::Tsdb(double cadenceCycles, std::size_t capacity)
    : cadenceCycles_(cadenceCycles), capacity_(capacity)
{
    POSEIDON_REQUIRE(cadenceCycles_ >= 0.0 &&
                         std::isfinite(cadenceCycles_),
                     "Tsdb: negative or non-finite sample cadence");
    POSEIDON_REQUIRE(capacity_ >= 2, "Tsdb: capacity must be >= 2");
}

Series&
Tsdb::series_ref(const std::string &name)
{
    for (auto &s : series_) {
        if (s->name() == name) return *s;
    }
    series_.push_back(std::make_unique<Series>(name, capacity_));
    return *series_.back();
}

void
Tsdb::record(const std::string &series, double cycle, double value)
{
    series_ref(series).push(cycle, value);
}

void
Tsdb::record_histogram(const std::string &series, double cycle,
                       const Histogram &cumulative)
{
    for (auto &h : histograms_) {
        if (h->name() == series) {
            h->push(cycle, cumulative);
            return;
        }
    }
    histograms_.push_back(std::make_unique<HistogramSeries>(
        series, cumulative.bounds(), capacity_));
    histograms_.back()->push(cycle, cumulative);
}

void
Tsdb::sample_registry(const MetricsRegistry &reg, double cycle,
                      const std::vector<std::string> &prefixes)
{
    auto matches = [&prefixes](const std::string &name) {
        if (prefixes.empty()) return true;
        for (const std::string &p : prefixes) {
            if (name.compare(0, p.size(), p) == 0) return true;
        }
        return false;
    };
    Json snap = reg.to_json();
    for (const char *section : {"counters", "gauges"}) {
        for (const auto &kv : snap.at(section).items()) {
            if (!matches(kv.first)) continue;
            record(kv.first, cycle, kv.second.as_number());
        }
    }
}

void
Tsdb::annotate(Annotation a)
{
    POSEIDON_REQUIRE(std::isfinite(a.cycle),
                     "Tsdb::annotate: non-finite cycle");
    annotations_.push_back(std::move(a));
}

const Series*
Tsdb::find(const std::string &name) const
{
    for (const auto &s : series_) {
        if (s->name() == name) return s.get();
    }
    return nullptr;
}

const HistogramSeries*
Tsdb::find_histogram(const std::string &name) const
{
    for (const auto &h : histograms_) {
        if (h->name() == name) return h.get();
    }
    return nullptr;
}

std::string
Tsdb::to_jsonl() const
{
    Json header = Json::object();
    header.set("schema", Json(kSchemaName));
    header.set("schema_version", Json(kSchemaVersion));
    header.set("cadence_cycles", Json(cadenceCycles_));
    header.set("capacity", Json(static_cast<u64>(capacity_)));
    header.set("series", Json(static_cast<u64>(series_count())));
    header.set("annotations",
               Json(static_cast<u64>(annotations_.size())));
    std::string out = header.dump();
    out += '\n';
    for (const auto &s : series_) {
        Json j = Json::object();
        j.set("series", Json(s->name()));
        j.set("kind", Json("value"));
        j.set("evicted", Json(s->evicted()));
        Json samples = Json::array();
        for (std::size_t i = 0; i < s->size(); ++i) {
            const Sample &sm = s->at(i);
            Json pair = Json::array();
            pair.push_back(Json(sm.cycle));
            pair.push_back(Json(sm.value));
            samples.push_back(std::move(pair));
        }
        j.set("samples", std::move(samples));
        out += j.dump();
        out += '\n';
    }
    for (const auto &h : histograms_) {
        Json j = Json::object();
        j.set("series", Json(h->name()));
        j.set("kind", Json("histogram"));
        Json bounds = Json::array();
        for (double b : h->bounds()) bounds.push_back(Json(b));
        j.set("bounds", std::move(bounds));
        j.set("evicted", Json(h->evicted()));
        Json samples = Json::array();
        for (std::size_t i = 0; i < h->size(); ++i) {
            const HistogramInterval &iv = h->at(i);
            Json one = Json::array();
            one.push_back(Json(iv.cycle));
            Json buckets = Json::array();
            for (u64 b : iv.buckets) buckets.push_back(Json(b));
            one.push_back(std::move(buckets));
            one.push_back(Json(iv.sum));
            samples.push_back(std::move(one));
        }
        j.set("samples", std::move(samples));
        out += j.dump();
        out += '\n';
    }
    for (const Annotation &a : annotations_) {
        out += a.to_json().dump();
        out += '\n';
    }
    return out;
}

bool
Tsdb::write_jsonl(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << to_jsonl();
    return static_cast<bool>(out);
}

Tsdb
Tsdb::parse_jsonl(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    std::size_t lineNo = 0;
    std::size_t declaredSeries = 0;
    std::size_t declaredAnnotations = 0;
    Tsdb db;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty()) continue;
        Json j = Json::parse(line); // throws ParseError with offset
        if (!sawHeader) {
            POSEIDON_REQUIRE_T(
                ParseError,
                j.is_object() && j.contains("schema") &&
                    j.at("schema").as_string() == kSchemaName,
                "TSDB line 1 is not a " << kSchemaName << " header");
            POSEIDON_REQUIRE_T(
                ParseError,
                j.contains("schema_version") &&
                    j.at("schema_version").as_number() ==
                        kSchemaVersion,
                "unsupported TSDB schema version");
            POSEIDON_REQUIRE_T(ParseError,
                               j.contains("cadence_cycles") &&
                                   j.contains("capacity") &&
                                   j.contains("series") &&
                                   j.contains("annotations"),
                               "TSDB header misses "
                               "cadence/capacity/series/annotations");
            db.cadenceCycles_ = j.at("cadence_cycles").as_number();
            db.capacity_ = static_cast<std::size_t>(
                j.at("capacity").as_number());
            POSEIDON_REQUIRE_T(ParseError, db.capacity_ >= 2,
                               "TSDB header capacity < 2");
            declaredSeries = static_cast<std::size_t>(
                j.at("series").as_number());
            declaredAnnotations = static_cast<std::size_t>(
                j.at("annotations").as_number());
            sawHeader = true;
            continue;
        }
        try {
            POSEIDON_REQUIRE_T(ParseError, j.is_object(),
                               "line is not a JSON object");
            if (j.contains("annotation")) {
                db.annotations_.push_back(Annotation::from_json(j));
                continue;
            }
            POSEIDON_REQUIRE_T(ParseError,
                               j.contains("series") &&
                                   j.contains("kind") &&
                                   j.contains("evicted") &&
                                   j.contains("samples"),
                               "series line misses "
                               "series/kind/evicted/samples");
            const std::string &name = j.at("series").as_string();
            const std::string &kind = j.at("kind").as_string();
            u64 evicted =
                static_cast<u64>(j.at("evicted").as_number());
            const Json &samples = j.at("samples");
            if (kind == "value") {
                auto s =
                    std::make_unique<Series>(name, db.capacity_);
                for (std::size_t i = 0; i < samples.size(); ++i) {
                    const Json &pair = samples.at(i);
                    POSEIDON_REQUIRE_T(ParseError, pair.size() == 2,
                                       "value sample is not a "
                                       "[cycle, value] pair");
                    s->push(pair.at(std::size_t(0)).as_number(),
                            pair.at(std::size_t(1)).as_number());
                }
                s->evicted_ = evicted;
                db.series_.push_back(std::move(s));
            } else if (kind == "histogram") {
                std::vector<double> bounds;
                const Json &jb = j.at("bounds");
                for (std::size_t i = 0; i < jb.size(); ++i) {
                    bounds.push_back(jb.at(i).as_number());
                }
                auto h = std::make_unique<HistogramSeries>(
                    name, std::move(bounds), db.capacity_);
                for (std::size_t i = 0; i < samples.size(); ++i) {
                    const Json &one = samples.at(i);
                    POSEIDON_REQUIRE_T(ParseError, one.size() == 3,
                                       "histogram sample is not a "
                                       "[cycle, buckets, sum] "
                                       "triple");
                    HistogramInterval iv;
                    iv.cycle = one.at(std::size_t(0)).as_number();
                    const Json &bk = one.at(std::size_t(1));
                    for (std::size_t b = 0; b < bk.size(); ++b) {
                        iv.buckets.push_back(static_cast<u64>(
                            bk.at(b).as_number()));
                    }
                    iv.sum = one.at(std::size_t(2)).as_number();
                    h->push_interval(std::move(iv));
                }
                h->evicted_ = evicted;
                db.histograms_.push_back(std::move(h));
            } else {
                POSEIDON_THROW(ParseError, "unknown series kind \""
                                               << kind << "\"");
            }
        } catch (const Error &e) {
            POSEIDON_THROW(ParseError, "TSDB line " << lineNo << ": "
                                                    << e.message());
        }
    }
    POSEIDON_REQUIRE_T(ParseError, sawHeader,
                       "TSDB text has no header line");
    POSEIDON_REQUIRE_T(ParseError,
                       db.series_count() == declaredSeries,
                       "TSDB header declares " << declaredSeries
                       << " series but " << db.series_count()
                       << " follow");
    POSEIDON_REQUIRE_T(ParseError,
                       db.annotations_.size() == declaredAnnotations,
                       "TSDB header declares "
                       << declaredAnnotations << " annotations but "
                       << db.annotations_.size() << " follow");
    return db;
}

Tsdb
Tsdb::load_jsonl(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    POSEIDON_REQUIRE_T(ParseError, static_cast<bool>(in),
                       "cannot open TSDB file \"" << path << "\"");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_jsonl(buf.str());
}

} // namespace poseidon::telemetry
