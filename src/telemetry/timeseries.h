#ifndef POSEIDON_TELEMETRY_TIMESERIES_H_
#define POSEIDON_TELEMETRY_TIMESERIES_H_

/**
 * @file
 * Deterministic time-series database (TSDB) for simulated-clock
 * metrics.
 *
 * The point-in-time metrics registry (telemetry/metrics.h) answers
 * "what is the queue depth *now*"; the TSDB answers "how did it get
 * there": rates, deltas, EWMAs, windowed min/max/mean and windowed
 * histogram quantiles over a bounded history of samples stamped with
 * the *simulated* fleet clock.
 *
 * **Determinism contract.** A Tsdb never reads the wall clock and
 * never samples by itself: a single-threaded owner (the serving
 * engine's drain loop) pushes values at simulated-cycle stamps of its
 * choosing. Because every recorded value is a function of
 * simulated-clock state only, a dump of the same run is byte-identical
 * at every POSEIDON_THREADS — the same contract the lifecycle journal
 * honors (DESIGN.md §15). Samples from the *global* MetricsRegistry
 * can be folded in through sample_registry(), but that convenience is
 * only deterministic for registries whose instruments are themselves
 * simulated-clock state (host wall-time histograms are not).
 *
 * **Storage.** Each series is a fixed-capacity ring buffer; pushing
 * past capacity evicts the oldest sample and counts it, so memory is
 * bounded no matter how long the engine runs. Value series hold
 * (cycle, value) pairs; histogram series hold per-interval bucket
 * deltas of a cumulative source histogram, so a window of intervals
 * can be folded back into one telemetry::Histogram (via
 * Histogram::merge) and queried for quantiles.
 *
 * **Serialized form** (one JSON object per line):
 *
 *   {"schema":"poseidon-tsdb","schema_version":1,
 *    "cadence_cycles":5e5,"capacity":4096,
 *    "series":12,"annotations":3}                    <- header
 *   {"series":"serve.queue_depth","kind":"value","evicted":0,
 *    "samples":[[0,0],[500000,17], ...]}
 *   {"series":"serve.latency_cycles","kind":"histogram",
 *    "bounds":[...],"evicted":0,
 *    "samples":[[500000,[0,2,1,...],123456.0], ...]}
 *   {"annotation":"alert","cycle":2e6,"name":"...","text":"firing",
 *    "value":3}
 *
 * Keys appear in a fixed order and numbers round-trip exactly
 * (telemetry/json.h), which is what makes the byte-level determinism
 * checks in test_timeseries meaningful.
 */

#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/modmath.h" // u64
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace poseidon::telemetry {

/// One sampled point of a value series.
struct Sample
{
    double cycle = 0.0;
    double value = 0.0;
};

/// Windowed summary of a value series (see Series::window_stats).
struct WindowStats
{
    std::size_t count = 0; ///< samples inside the window
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    double mean = 0.0;
};

/// Fixed-capacity ring buffer of (cycle, value) samples, oldest
/// evicted first. Appends must be chronological.
class Series
{
  public:
    Series(std::string name, std::size_t capacity);

    const std::string& name() const { return name_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /// Samples dropped to keep the ring bounded.
    u64 evicted() const { return evicted_; }

    /// Append one sample; cycle must be >= the latest sample's.
    void push(double cycle, double value);

    /// Chronological access: 0 = oldest retained sample.
    const Sample& at(std::size_t i) const;
    const Sample& latest() const;

    // ---- windowed aggregators ----
    // A window covers samples with cycle in (endCycle - windowCycles,
    // endCycle]; endCycle defaults to the latest sample's cycle.

    /// Last value minus the value at the window start boundary (the
    /// newest sample at or before endCycle - windowCycles; the oldest
    /// retained sample when the window covers everything). NaN when
    /// fewer than two samples exist.
    double delta(double windowCycles) const;

    /// delta / elapsed cycles between the same two samples — the
    /// per-cycle rate of a cumulative counter. NaN like delta.
    double rate(double windowCycles) const;

    /// Exponentially weighted moving average over the whole retained
    /// history (oldest first): e <- alpha * v + (1 - alpha) * e.
    /// NaN when empty.
    double ewma(double alpha) const;

    /// min/max/mean over the samples inside the window.
    WindowStats window_stats(double windowCycles) const;

  private:
    friend class Tsdb; // parse_jsonl restores the eviction counter

    std::size_t ring_index(std::size_t i) const
    {
        return (head_ + i) % capacity_;
    }

    std::string name_;
    std::size_t capacity_;
    std::vector<Sample> ring_;
    std::size_t head_ = 0; ///< index of the oldest sample
    std::size_t size_ = 0;
    u64 evicted_ = 0;
};

/// One interval of a histogram series: the observations that landed
/// between the previous sample and `cycle`, as raw bucket deltas.
struct HistogramInterval
{
    double cycle = 0.0;
    std::vector<u64> buckets; ///< bounds().size() + 1 (overflow last)
    double sum = 0.0;         ///< sum of the interval's observations
};

/// Ring buffer of per-interval histogram deltas sharing one bounds
/// vector; windows fold back into a telemetry::Histogram.
class HistogramSeries
{
  public:
    HistogramSeries(std::string name, std::vector<double> bounds,
                    std::size_t capacity);

    const std::string& name() const { return name_; }
    const std::vector<double>& bounds() const { return bounds_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    u64 evicted() const { return evicted_; }

    /// Append the delta between `cumulative` and the previous
    /// cumulative snapshot (the first push records the histogram as
    /// its own delta). Bounds must match.
    void push(double cycle, const Histogram &cumulative);

    /// Append a raw interval (deserialization path).
    void push_interval(HistogramInterval iv);

    const HistogramInterval& at(std::size_t i) const;
    const HistogramInterval& latest() const;

    /**
     * Fold every interval inside (endCycle - windowCycles, endCycle]
     * into one Histogram (Histogram::from_buckets + merge) and return
     * its q-quantile. NaN when the window holds no observations.
     */
    double window_quantile(double windowCycles, double q,
                           double endCycle) const;
    double window_quantile(double windowCycles, double q) const;

  private:
    friend class Tsdb; // parse_jsonl restores the eviction counter

    std::size_t ring_index(std::size_t i) const
    {
        return (head_ + i) % capacity_;
    }

    std::string name_;
    std::vector<double> bounds_;
    std::size_t capacity_;
    std::vector<HistogramInterval> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    u64 evicted_ = 0;
    /// Previous cumulative snapshot (buckets + sum) for delta taking.
    std::vector<u64> prevBuckets_;
    double prevSum_ = 0.0;
};

/// A timeline annotation: a discrete event (e.g. an alert transition)
/// pinned to a simulated cycle, serialized with the dump and rendered
/// by the dashboard / explain tools.
struct Annotation
{
    double cycle = 0.0;
    std::string kind; ///< e.g. "alert"
    std::string name; ///< e.g. the alert rule's text form
    std::string text; ///< e.g. "pending -> firing"
    double value = 0.0;

    Json to_json() const;
    static Annotation from_json(const Json &j);
};

/// The TSDB: named value/histogram series plus annotations, with a
/// schema'd JSONL dump and a parse/load round trip. Single-writer by
/// design (see file comment); not thread-safe.
class Tsdb
{
  public:
    static constexpr int kSchemaVersion = 1;
    static constexpr const char *kSchemaName = "poseidon-tsdb";

    /// `cadenceCycles` is a documentation stamp for the dump header
    /// (the owner drives the actual sampling); `capacity` bounds every
    /// series ring created through this Tsdb.
    explicit Tsdb(double cadenceCycles = 0.0,
                  std::size_t capacity = 4096);

    double cadence_cycles() const { return cadenceCycles_; }
    std::size_t capacity() const { return capacity_; }

    /// Append one sample, creating the series on first use. Series
    /// keep their creation order in dumps, so a fixed recording order
    /// yields a fixed dump.
    void record(const std::string &series, double cycle, double value);

    /// Append one cumulative-histogram snapshot (delta is taken
    /// internally), creating the series on first use.
    void record_histogram(const std::string &series, double cycle,
                          const Histogram &cumulative);

    /**
     * Fold every counter and gauge of `reg` whose name starts with
     * one of `prefixes` (all when empty) into value series at `cycle`.
     * Deterministic only when the matched instruments are themselves
     * deterministic — see the file comment.
     */
    void sample_registry(const MetricsRegistry &reg, double cycle,
                         const std::vector<std::string> &prefixes = {});

    void annotate(Annotation a);

    const Series* find(const std::string &name) const;
    const HistogramSeries* find_histogram(const std::string &name) const;
    const std::vector<std::unique_ptr<Series>>& series() const
    {
        return series_;
    }
    const std::vector<std::unique_ptr<HistogramSeries>>&
    histogram_series() const
    {
        return histograms_;
    }
    const std::vector<Annotation>& annotations() const
    {
        return annotations_;
    }
    std::size_t series_count() const
    {
        return series_.size() + histograms_.size();
    }
    bool empty() const
    {
        return series_.empty() && histograms_.empty() &&
               annotations_.empty();
    }

    /// Header line + one compact JSON object per series/annotation.
    std::string to_jsonl() const;

    /// Write to_jsonl() to `path`; false on I/O failure.
    bool write_jsonl(const std::string &path) const;

    /// Parse a dump back (throws poseidon::ParseError on a malformed
    /// header, series line or annotation). to_jsonl() of the result
    /// equals the input byte-for-byte.
    static Tsdb parse_jsonl(const std::string &text);

    /// Read + parse_jsonl a file (throws ParseError, also on I/O).
    static Tsdb load_jsonl(const std::string &path);

  private:
    Series& series_ref(const std::string &name);

    double cadenceCycles_;
    std::size_t capacity_;
    std::vector<std::unique_ptr<Series>> series_;
    std::vector<std::unique_ptr<HistogramSeries>> histograms_;
    std::vector<Annotation> annotations_;
};

} // namespace poseidon::telemetry

#endif // POSEIDON_TELEMETRY_TIMESERIES_H_
