#ifndef POSEIDON_TELEMETRY_TRACER_H_
#define POSEIDON_TELEMETRY_TRACER_H_

/**
 * @file
 * Span tracing with Chrome trace-event export (load the file at
 * https://ui.perfetto.dev or chrome://tracing).
 *
 * Two kinds of timeline coexist in one file:
 *  - host wall-time spans (POSEIDON_SPAN), one Perfetto "thread" per
 *    real thread under process kHostPid; nesting comes for free from
 *    complete-event ("ph":"X") timestamps;
 *  - synthesized tracks (hw::append_sim_track) under other process
 *    ids, whose timestamps are *modeled accelerator cycles* converted
 *    to microseconds — the paper's cycle accounting drawn next to the
 *    wall clock.
 *
 * Spans are recorded only while a session is active (between start()
 * and stop()) and telemetry is enabled; an inactive tracer costs one
 * predictable branch per span. Attribute values ride in the event's
 * "args" and survive JSON escaping round trips.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace poseidon::telemetry {

/// One Chrome trace event. Defaults to a "complete" event ("ph":"X");
/// flow events ('s' start / 't' step / 'f' finish) draw arrows
/// between slices that share a flow id — the serving layer uses them
/// to link a job's queue→dispatch→attempt spans across fleet tracks.
struct TraceEvent
{
    std::string name;
    char ph = 'X';      ///< 'X' complete, or flow phase 's'/'t'/'f'
    int pid = 0;
    int tid = 0;
    double tsUs = 0.0;  ///< start, microseconds since session start
    double durUs = 0.0; ///< duration, microseconds ('X' only)
    std::uint64_t flowId = 0; ///< flow correlation id ('s'/'t'/'f')
    std::vector<std::pair<std::string, Json>> args;
};

/// Collects events for one capture session.
class Tracer
{
  public:
    /// Process id of host wall-time spans.
    static constexpr int kHostPid = 1;
    /// Process id of the synthesized simulated-cycle tracks.
    static constexpr int kSimPid = 2;

    static Tracer& global();

    /// Begin a session: clears prior events, zeroes the clock.
    void start();
    /// End the session; events stay buffered for export.
    void stop();
    bool active() const
    {
        return active_.load(std::memory_order_acquire);
    }

    /// Microseconds since start() (0 when no session ran).
    double now_us() const;

    /// Stable small id for the calling thread (Perfetto tid).
    static int thread_tid();

    /// Record one complete event (dropped when no session is active).
    void complete_event(TraceEvent ev);

    /// Record one flow event: `phase` is 's' (start), 't' (step) or
    /// 'f' (finish); events sharing `id` are drawn as one arrow chain.
    /// Anchor each at the ts/tid of the slice it should attach to.
    void flow_event(char phase, std::uint64_t id,
                    const std::string &name, int pid, int tid,
                    double tsUs);

    /// Name a Perfetto process / thread track (metadata events).
    void set_process_name(int pid, const std::string &name);
    void set_thread_name(int pid, int tid, const std::string &name);

    std::size_t event_count() const;

    /// Serialize everything recorded so far as Chrome trace JSON.
    std::string chrome_trace_json() const;

    /// Write chrome_trace_json() to `path`; false on I/O failure.
    bool write_chrome_trace(const std::string &path) const;

  private:
    std::atomic<bool> active_{false};
    std::chrono::steady_clock::time_point t0_;
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::vector<std::pair<int, std::string>> processNames_;
    std::vector<std::pair<std::pair<int, int>, std::string>> threadNames_;
};

/// RAII span on the host track of the global tracer. Prefer the
/// POSEIDON_SPAN macro; instantiate directly when attributes are
/// attached (`span.attr("limbs", 45)`).
class SpanScope
{
  public:
    explicit SpanScope(const char *name);
    ~SpanScope();

    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    /// Attach a key/value attribute (shown in the Perfetto side panel).
    void attr(const std::string &key, Json value);

  private:
    bool live_;
    double startUs_ = 0.0;
    const char *name_;
    std::vector<std::pair<std::string, Json>> args_;
};

#define POSEIDON_TELEMETRY_CONCAT_(a, b) a##b
#define POSEIDON_TELEMETRY_CONCAT(a, b) POSEIDON_TELEMETRY_CONCAT_(a, b)

#ifdef POSEIDON_TELEMETRY_DISABLED
#define POSEIDON_SPAN(name)                                                \
    do {                                                                   \
    } while (0)
#else
/// Scoped span covering the rest of the enclosing block.
#define POSEIDON_SPAN(name)                                                \
    ::poseidon::telemetry::SpanScope POSEIDON_TELEMETRY_CONCAT(            \
        poseidon_span_, __LINE__)(name)
#endif

} // namespace poseidon::telemetry

#endif // POSEIDON_TELEMETRY_TRACER_H_
