#ifndef POSEIDON_TELEMETRY_METRICS_H_
#define POSEIDON_TELEMETRY_METRICS_H_

/**
 * @file
 * Process-wide metrics: counters, gauges and fixed-bucket histograms,
 * exportable as a Prometheus-style text page or a JSON object.
 *
 * Instruments register lazily by name (dotted, e.g.
 * "sim.kind_cycles.MM") and live for the registry's lifetime, so call
 * sites may cache the returned reference. All mutation paths are
 * thread-safe: counters/gauges are single atomics, histogram buckets
 * are per-bucket atomics. Counter values are doubles because the
 * dominant sources (modeled cycles) are doubles; accumulation order
 * is the call order, so a single recording reproduces its source
 * value bit-exactly.
 *
 * Runtime switch: `telemetry::set_enabled(false)` makes every
 * instrumentation helper below a no-op; nothing is ever exported
 * unless a caller asks for a dump, so enabled telemetry changes no
 * observable behavior either. Compiling with
 * POSEIDON_TELEMETRY_DISABLED (cmake -DPOSEIDON_TELEMETRY=OFF) pins
 * `enabled()` to a constant false so the instrumentation folds away.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace poseidon::telemetry {

#ifdef POSEIDON_TELEMETRY_DISABLED
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
/// Global runtime switch (default on).
bool enabled();
void set_enabled(bool on);
#endif

/// Monotonically increasing sum.
class Counter
{
  public:
    void add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
    void increment() { add(1.0); }
    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/// Last-written value.
class Gauge
{
  public:
    void set(double d) { v_.store(d, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// v <= bounds[i] (and > bounds[i-1]); one extra overflow bucket
/// catches everything above the last bound.
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    /// Rebuild a histogram from raw bucket counts (bounds.size() + 1
    /// entries, overflow last) and an observation sum — the
    /// deserialization path for TSDB histogram intervals.
    static Histogram from_buckets(std::vector<double> bounds,
                                  const std::vector<std::uint64_t> &buckets,
                                  double sum);

    void observe(double v);

    /// Fold `other` into this histogram (bucket-wise add). Bounds must
    /// match exactly. Atomic per bucket, like observe().
    void merge(const Histogram &other);

    const std::vector<double>& bounds() const { return bounds_; }
    /// Count in bucket i; i == bounds().size() is the overflow bucket.
    std::uint64_t bucket_count(std::size_t i) const;
    /**
     * Quantile estimate (q in [0, 1]) using nearest-rank over the
     * cumulative buckets with linear interpolation inside the chosen
     * bucket. Overflow-bucket hits clamp to the last bound; returns
     * NaN for an empty histogram (an estimate of 0 would read as a
     * real latency).
     */
    double quantile(double q) const;
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

  private:
    Histogram(std::vector<double> bounds,
              const std::vector<std::uint64_t> &buckets, double sum);

    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Latency bucket bounds in microseconds: 1us .. 10s, 1-2-5 series.
const std::vector<double>& default_latency_bounds_us();

/**
 * Exact nearest-rank quantile of a sample: rank = ceil(q * n) clamped
 * to [1, n], returns the rank-th smallest value (0.0 for an empty
 * sample). This is the one quantile definition used across the repo —
 * the serving engine's per-tenant p50/p99, the latency-breakdown
 * aggregates, and bench_serving all call it, so their numbers agree
 * bit-for-bit. Sorts a copy; fine for the report-time sample sizes
 * this is meant for.
 */
double exact_quantile(std::vector<double> sample, double q);

/// Named metrics, lazily created, process-wide via global().
class MetricsRegistry
{
  public:
    static MetricsRegistry& global();

    Counter& counter(const std::string &name);
    Gauge& gauge(const std::string &name);
    /// First call fixes the bounds; later calls ignore `bounds`.
    Histogram& histogram(
        const std::string &name,
        const std::vector<double> &bounds = default_latency_bounds_us());

    /// Counter value, 0.0 when the counter was never touched (does
    /// not create it — safe for tests and dumps).
    double counter_value(const std::string &name) const;

    /// Drop every metric (tests; long-lived servers between scrapes
    /// should not call this).
    void reset();

    /// Prometheus text exposition (names sanitized, "poseidon_"-
    /// prefixed; histograms expand to _bucket/_sum/_count series).
    std::string prometheus_text() const;

    /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
    Json to_json() const;

  private:
    mutable std::mutex mu_; // guards the maps, not the metric values
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>>
        counters_;
    std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
    std::vector<std::pair<std::string, std::unique_ptr<Histogram>>>
        histograms_;
};

/// Increment `name` in the global registry when telemetry is enabled.
inline void
count(const std::string &name, double d = 1.0)
{
    if (enabled()) MetricsRegistry::global().counter(name).add(d);
}

/// Set gauge `name` in the global registry when telemetry is enabled.
inline void
gauge_set(const std::string &name, double v)
{
    if (enabled()) MetricsRegistry::global().gauge(name).set(v);
}

/// Observes wall time (microseconds) into a global-registry histogram
/// on destruction. Construction is near-free when telemetry is off.
class ScopedLatency
{
  public:
    explicit ScopedLatency(const char *histName);
    ~ScopedLatency();

    ScopedLatency(const ScopedLatency&) = delete;
    ScopedLatency& operator=(const ScopedLatency&) = delete;

  private:
    const char *name_;
    bool live_;
    std::uint64_t startNs_ = 0;
};

} // namespace poseidon::telemetry

#endif // POSEIDON_TELEMETRY_METRICS_H_
