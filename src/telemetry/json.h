#ifndef POSEIDON_TELEMETRY_JSON_H_
#define POSEIDON_TELEMETRY_JSON_H_

/**
 * @file
 * A minimal JSON value: enough for the telemetry subsystem to emit
 * metrics dumps, Chrome trace-event files and BENCH_*.json records,
 * and to parse them back (schema validation, round-trip tests).
 *
 * Deliberately small: UTF-8 pass-through (no surrogate handling
 * beyond \u escapes), numbers are doubles, objects preserve insertion
 * order. Parse failures throw poseidon::ParseError with an offset.
 */

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace poseidon::telemetry {

/// Escape a string for embedding between JSON quotes.
std::string json_escape(const std::string &s);

/// A parsed or under-construction JSON value.
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(std::nullptr_t) : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(unsigned v) : type_(Type::Number), num_(v) {}
    Json(long v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(unsigned long v)
        : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(unsigned long long v)
        : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::Null; }
    bool is_bool() const { return type_ == Type::Bool; }
    bool is_number() const { return type_ == Type::Number; }
    bool is_string() const { return type_ == Type::String; }
    bool is_array() const { return type_ == Type::Array; }
    bool is_object() const { return type_ == Type::Object; }

    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;

    // ---- arrays ----
    void push_back(Json v);
    std::size_t size() const;
    const Json& at(std::size_t i) const;

    // ---- objects (insertion-ordered) ----
    /// Insert or overwrite a key.
    void set(const std::string &key, Json v);
    bool contains(const std::string &key) const;
    /// Lookup; throws poseidon::InvalidArgument when missing.
    const Json& at(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>>& items() const;

    /// Serialize. indent < 0 yields a compact single line; indent >= 0
    /// pretty-prints with that many spaces per level.
    std::string dump(int indent = -1) const;

    /// Parse a complete JSON document (throws poseidon::ParseError).
    static Json parse(const std::string &text);

  private:
    void dump_to(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace poseidon::telemetry

#endif // POSEIDON_TELEMETRY_JSON_H_
