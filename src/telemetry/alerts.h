#ifndef POSEIDON_TELEMETRY_ALERTS_H_
#define POSEIDON_TELEMETRY_ALERTS_H_

/**
 * @file
 * Declarative alert rules over TSDB series, with a
 * pending -> firing -> resolved state machine on the simulated clock.
 *
 * A rule is one clause of a small DSL:
 *
 *   serve.queue_depth > 256 for 5e6 cycles hold 2e6 cycles => page
 *
 *   <metric> <cmp> <threshold> [for <cycles>] [hold <cycles>]
 *                              [=> warn|page]
 *
 * `<cmp>` is one of > >= < <=. `for` is the classic
 * threshold-with-duration guard: the condition must hold continuously
 * for that many simulated cycles before the rule fires (0 = fire on
 * first observation). `hold` suppresses flapping on the way down: the
 * condition must stay clear that long before the rule resolves; any
 * re-assertion resets the clear timer. Clauses are separated by ';'
 * or newlines; parse(str()) round-trips.
 *
 * The AlertEngine is evaluated by the TSDB's single-threaded owner at
 * each sample tick, reads only latest-sample values, and stamps every
 * state change with the simulated cycle — so the full alert timeline
 * inherits the TSDB's byte-identical determinism contract
 * (timeseries.h). Each evaluate() pushes a per-rule state series
 * ("alert.r<i>.state", 0 = inactive, 1 = pending, 2 = firing) and an
 * "alert" annotation per transition into the Tsdb; the returned
 * transitions let the owner fan them out to its journal, trace, and
 * counters.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "common/modmath.h" // u64
#include "telemetry/timeseries.h"

namespace poseidon::telemetry {

enum class AlertCmp : unsigned { GT = 0, GE, LT, LE };
enum class AlertSeverity : unsigned { Warn = 0, Page };
enum class AlertState : unsigned { Inactive = 0, Pending, Firing };

const char* to_string(AlertCmp c);
const char* to_string(AlertSeverity s);
const char* to_string(AlertState s);

/// One parsed alert clause (see file comment for the DSL).
struct AlertRule
{
    std::string metric;              ///< TSDB value-series name
    AlertCmp cmp = AlertCmp::GT;
    double threshold = 0.0;
    double forCycles = 0.0;          ///< must hold this long to fire
    double holdCycles = 0.0;         ///< must clear this long to resolve
    AlertSeverity severity = AlertSeverity::Warn;

    /// Condition test for one sampled value.
    bool condition(double value) const;

    /// Canonical clause text; AlertRules::parse(str()) round-trips.
    std::string str() const;
};

/// An ordered rule set (rule index = evaluation + series identity).
struct AlertRules
{
    std::vector<AlertRule> rules;

    bool empty() const { return rules.empty(); }
    std::size_t size() const { return rules.size(); }

    /// "; "-joined clause list ("" when empty).
    std::string str() const;

    /// Parse ';'/newline-separated clauses. Throws
    /// poseidon::InvalidArgument on any malformed clause.
    static AlertRules parse(const std::string &spec);
};

/// One state-machine edge, stamped with the simulated cycle.
struct AlertTransition
{
    std::size_t rule = 0; ///< index into AlertRules::rules
    double cycle = 0.0;
    AlertState from = AlertState::Inactive;
    AlertState to = AlertState::Inactive;
    /// The sampled metric value that drove the edge (NaN when the
    /// series was absent/empty).
    double value = 0.0;

    /// "pending -> firing" (annotation text form).
    std::string text() const;
};

/// Evaluates an AlertRules set against a Tsdb, one tick at a time.
/// Single-writer, driven by the TSDB owner; not thread-safe.
class AlertEngine
{
  public:
    AlertEngine() = default;
    explicit AlertEngine(AlertRules rules);

    const AlertRules& rules() const { return rules_; }
    bool empty() const { return rules_.empty(); }

    /**
     * Evaluate every rule against the latest sample of its metric
     * series in `tsdb` (absent or empty series = condition false),
     * advance the state machines to `cycle`, record per-rule state
     * series and per-transition annotations into `tsdb`, and return
     * the transitions in rule order. Cycles must not run backwards.
     */
    std::vector<AlertTransition> evaluate(double cycle, Tsdb &tsdb);

    AlertState state(std::size_t rule) const;
    /// Rules currently in Firing.
    std::size_t firing() const;
    /// Lifetime count of edges into / out of Firing.
    u64 fired_total() const { return firedTotal_; }
    u64 resolved_total() const { return resolvedTotal_; }

    /// "alert.r<i>.state" — the per-rule TSDB state series name.
    static std::string state_series_name(std::size_t rule);

  private:
    struct RuleState
    {
        AlertState state = AlertState::Inactive;
        /// First cycle of the current uninterrupted true streak.
        double conditionSince = 0.0;
        /// First cycle of the current clear streak while Firing; < 0
        /// while the condition is (re)asserted.
        double clearSince = -1.0;
    };

    AlertRules rules_;
    std::vector<RuleState> states_;
    double lastCycle_ = -1.0;
    u64 firedTotal_ = 0;
    u64 resolvedTotal_ = 0;
};

} // namespace poseidon::telemetry

#endif // POSEIDON_TELEMETRY_ALERTS_H_
