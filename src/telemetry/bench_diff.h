#ifndef POSEIDON_TELEMETRY_BENCH_DIFF_H_
#define POSEIDON_TELEMETRY_BENCH_DIFF_H_

/**
 * @file
 * The bench-regression gate's comparison engine.
 *
 * diff_bench() compares a freshly produced BENCH_<name>.json document
 * against a committed baseline (bench/baselines/). Compared values:
 * the top-level "cycles", "seconds" and "bandwidth_util" scalars plus
 * every key under "metrics". A value regresses when its relative delta
 * |cur - base| / max(|base|, 1) exceeds its tolerance (per-metric
 * override, else the default); a metric present in the baseline but
 * missing from the current run is lost coverage and also a
 * regression. Metrics new in the current run are reported but pass —
 * they become part of the baseline when it is next refreshed.
 *
 * Cross-config diffs are meaningless (different lanes, threads or
 * machine shapes legitimately price differently), so when both
 * documents carry the schema-v2 "hw_config"/"threads" stamps and they
 * disagree — or the bench names differ — the result is marked
 * incomparable, which the gate treats as failure.
 *
 * The modeled-cycle sources are deterministic; the default tolerance
 * (1e-9 relative) only absorbs cross-compiler FP contraction, not real
 * drift. The tools/bench_compare CLI is a thin wrapper around this.
 */

#include <map>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace poseidon::telemetry {

/// Knobs of one comparison run.
struct BenchDiffOptions
{
    /// Relative tolerance applied to every value without an override.
    double defaultTolerance = 1e-9;

    /// Per-metric overrides, keyed by the compared key ("cycles",
    /// "seconds", "bandwidth_util", or a metrics.* name).
    std::map<std::string, double> tolerances;

    double tolerance_for(const std::string &key) const
    {
        auto it = tolerances.find(key);
        return it == tolerances.end() ? defaultTolerance : it->second;
    }
};

/// Outcome for one compared value.
struct MetricDelta
{
    std::string key;
    double baseline = 0.0;
    double current = 0.0;
    double relDelta = 0.0; ///< (cur - base) / max(|base|, 1)
    double tolerance = 0.0;
    bool missing = false;  ///< in the baseline but not the current run
    bool added = false;    ///< in the current run but not the baseline
    bool regression = false;
};

/// Outcome for one bench document.
struct BenchDiffResult
{
    std::string name;
    bool comparable = true;
    std::string incomparableReason;
    std::vector<MetricDelta> deltas;

    /// True when the gate must fail: incomparable or any regression.
    bool regressed() const;
    std::size_t regression_count() const;
};

/// Compare one current document against its baseline.
BenchDiffResult diff_bench(const Json &baseline, const Json &current,
                           const BenchDiffOptions &opt = {});

/// Render a human-readable summary (one line per problem, or "ok").
std::string format_diff(const BenchDiffResult &r);

} // namespace poseidon::telemetry

#endif // POSEIDON_TELEMETRY_BENCH_DIFF_H_
