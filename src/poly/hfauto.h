#ifndef POSEIDON_POLY_HFAUTO_H_
#define POSEIDON_POLY_HFAUTO_H_

/**
 * @file
 * HFAuto — the hardware-friendly automorphism of Section III-B.
 *
 * The N-element coefficient vector is viewed as an R x C matrix
 * (R = N/C segments of C-element sub-vectors; C = 512 in the paper's
 * implementation). Using the lemma
 *     floor((a mod C*R) / C) = floor(a / C) mod R,
 * the index map  idx -> idx*g mod N  factors into
 *     I = (i*g + floor(j*g / C)) mod R      (row coordinate)
 *     J = (j*g) mod C                       (column coordinate)
 * which the hardware realizes in four pipeline stages:
 *   Stage 1: row permutation        row_i -> row_{i*g mod R}
 *   Stage 2: per-column row shift   by floor(j*g / C) mod R (FIFO shifts)
 *   Stage 3: dimension switch       (row-major -> column-major access)
 *   Stage 4: column permutation     col_j -> col_{j*g mod C}
 * Negacyclic signs (Eq. 4) are applied while reading in Stage 1.
 *
 * `HFAuto::apply_limb` executes the four stages with explicit
 * intermediate buffers and is verified bit-exact against the reference
 * `automorphism_coeff_limb`.
 */

#include <cstddef>
#include <vector>

#include "poly/poly.h"

namespace poseidon {

/// Per-stage counters for the hardware model and tests.
struct HFAutoStats
{
    u64 invocations = 0;
    /// Sub-vector (length-C) reads+writes issued by each stage.
    u64 stageSubvecOps[4] = {0, 0, 0, 0};
};

/// Four-stage sub-vector automorphism engine.
class HFAuto
{
  public:
    /**
     * @param n  polynomial degree N (power of two)
     * @param c  sub-vector length C (power of two, divides N);
     *           the paper uses C = 512
     */
    HFAuto(std::size_t n, std::size_t c = 512);

    std::size_t sub_vector_len() const { return c_; }
    std::size_t num_segments() const { return r_; }

    /// Apply tau_g to one coefficient-domain limb (in != out).
    void apply_limb(const u64 *in, u64 *out, u64 g, u64 q) const;

    /// Apply tau_g to every limb of a coefficient-domain polynomial.
    RnsPoly apply(const RnsPoly &p, u64 g) const;

    const HFAutoStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

  private:
    std::size_t n_;
    std::size_t c_;  ///< sub-vector length C
    std::size_t r_;  ///< number of segments R = N/C
    mutable HFAutoStats stats_;
};

} // namespace poseidon

#endif // POSEIDON_POLY_HFAUTO_H_
