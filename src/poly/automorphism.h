#ifndef POSEIDON_POLY_AUTOMORPHISM_H_
#define POSEIDON_POLY_AUTOMORPHISM_H_

/**
 * @file
 * Galois automorphisms of the negacyclic ring: tau_g : X -> X^g for odd
 * g coprime to 2N. Rotation of CKKS slots by r steps is tau_{5^r};
 * complex conjugation is tau_{2N-1}.
 *
 * Two implementations are provided:
 *  - the coefficient-domain signed index map of Eq. (4) of the paper
 *    (reference; HFAuto in hfauto.h is the hardware-shaped version);
 *  - an evaluation-domain permutation for limbs already in NTT form
 *    (bit-reversed layout), which needs no sign fixups because point
 *    values absorb them.
 */

#include <cstddef>
#include <vector>

#include "poly/poly.h"

namespace poseidon {

/**
 * Coefficient-domain automorphism of one limb:
 * out[(t*g mod N)] = +-in[t], with negation when t*g mod 2N >= N.
 * in and out must not alias.
 */
void automorphism_coeff_limb(const u64 *in, u64 *out, std::size_t n,
                             u64 g, u64 q);

/**
 * Build the evaluation-domain permutation for tau_g under the
 * bit-reversed NTT layout: out[i] = in[perm[i]].
 */
std::vector<u32> make_eval_permutation(std::size_t n, u64 g);

/// Apply a precomputed evaluation-domain permutation to one limb.
void automorphism_eval_limb(const u64 *in, u64 *out, std::size_t n,
                            const std::vector<u32> &perm);

/**
 * Apply tau_g to a whole polynomial in its current domain.
 * Coefficient domain uses the signed map; Eval domain uses the
 * point-value permutation. Returns a new polynomial.
 */
RnsPoly automorphism(const RnsPoly &p, u64 g);

/// Galois element for a rotation by `step` slots (5^step mod 2N).
u64 galois_element_for_step(std::size_t n, long step);

/// Galois element for complex conjugation (2N - 1).
u64 galois_element_conjugate(std::size_t n);

} // namespace poseidon

#endif // POSEIDON_POLY_AUTOMORPHISM_H_
