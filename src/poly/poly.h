#ifndef POSEIDON_POLY_POLY_H_
#define POSEIDON_POLY_POLY_H_

/**
 * @file
 * RnsPoly: an element of Z_Q[X]/(X^N+1) stored in residue (RNS) form,
 * one length-N limb per prime, in either coefficient or evaluation
 * (NTT) representation.
 *
 * This is the data object that flows through every Poseidon operator:
 * MA and MM act element-wise on limbs, NTT/INTT switch the domain, and
 * Automorphism permutes coefficients.
 */

#include <cstddef>
#include <vector>

#include "poly/ring.h"

namespace poseidon {

/// Representation of a polynomial's limbs.
enum class Domain { Coeff, Eval };

/// An RNS polynomial bound to a RingContext and a subset of its primes.
class RnsPoly
{
  public:
    RnsPoly() = default;

    /// Zero polynomial over the given prime indices of the context.
    RnsPoly(RingContextPtr ctx, std::vector<std::size_t> primeIdx,
            Domain d);

    /// Zero polynomial over the first `limbs` ciphertext primes.
    static RnsPoly ct(RingContextPtr ctx, std::size_t limbs, Domain d);

    bool empty() const { return data_.empty(); }
    std::size_t degree() const { return ctx_ ? ctx_->degree() : 0; }
    std::size_t num_limbs() const { return data_.size(); }

    /// Context-wide index of the k-th limb's prime.
    std::size_t prime_index(std::size_t k) const { return primeIdx_[k]; }
    u64 prime(std::size_t k) const { return ctx_->prime(primeIdx_[k]); }

    Domain domain() const { return domain_; }

    u64* limb(std::size_t k) { return data_[k].data(); }
    const u64* limb(std::size_t k) const { return data_[k].data(); }

    std::vector<u64*> limb_ptrs();
    std::vector<const u64*> limb_ptrs() const;

    RingContextPtr context() const { return ctx_; }

    /// true iff same context, same primes, same domain.
    bool compatible(const RnsPoly &o) const;

    /// NTT every limb (no-op if already in Eval domain).
    void to_eval();

    /// INTT every limb (no-op if already in Coeff domain).
    void to_coeff();

    /// this += o (element-wise mod each prime).
    void add_inplace(const RnsPoly &o);

    /// this -= o.
    void sub_inplace(const RnsPoly &o);

    /// this = -this.
    void negate_inplace();

    /// this *= o element-wise; meaningful in Eval domain.
    void mul_inplace(const RnsPoly &o);

    /// Multiply limb k by scalars[k] (mod its prime).
    void mul_scalar_inplace(const std::vector<u64> &scalars);

    /// Multiply every limb by the same small scalar.
    void mul_scalar_inplace(u64 scalar);

    /// Remove the highest limb (modulus chain drop).
    void drop_last_limb();

    /// Append a zero limb for context prime index `primeIdx`.
    void append_limb(std::size_t primeIdx);

    /// Set all limbs to zero.
    void set_zero();

    /**
     * Load signed coefficients (Coeff domain required): limb k receives
     * coeffs[t] mod q_k.
     */
    void assign_signed(const std::vector<i64> &coeffs);

  private:
    RingContextPtr ctx_;
    std::vector<std::size_t> primeIdx_;
    Domain domain_ = Domain::Coeff;
    std::vector<std::vector<u64>> data_;
};

} // namespace poseidon

#endif // POSEIDON_POLY_POLY_H_
