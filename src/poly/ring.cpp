#include "poly/ring.h"

#include "common/check.h"
#include "ntt/table_cache.h"

namespace poseidon {

RingContext::RingContext(std::size_t n, std::vector<u64> primes,
                         std::size_t numSpecial)
    : n_(n), logn_(log2_floor(n)), primes_(std::move(primes)),
      numSpecial_(numSpecial)
{
    POSEIDON_REQUIRE(is_pow2(n), "RingContext: N must be a power of two");
    POSEIDON_REQUIRE(!primes_.empty(), "RingContext: empty prime chain");
    POSEIDON_REQUIRE(numSpecial_ < primes_.size(),
                     "RingContext: need at least one ciphertext prime");

    tables_.reserve(primes_.size());
    barrett_.reserve(primes_.size());
    for (u64 q : primes_) {
        tables_.push_back(shared_ntt_table(n_, q));
        barrett_.emplace_back(q);
    }

    std::size_t numCt = num_ct_primes();
    ctBases_.reserve(numCt);
    for (std::size_t l = 0; l < numCt; ++l) {
        ctBases_.emplace_back(std::vector<u64>(primes_.begin(),
                                               primes_.begin() + l + 1));
    }
    if (numSpecial_ > 0) {
        specialBasis_ = RnsBasis(std::vector<u64>(primes_.end() - numSpecial_,
                                                  primes_.end()));
    }
}

const RnsBasis&
RingContext::ct_basis(std::size_t count) const
{
    POSEIDON_REQUIRE(count >= 1 && count <= ctBases_.size(),
                     "RingContext::ct_basis: bad count");
    return ctBases_[count - 1];
}

const RnsBasis&
RingContext::special_basis() const
{
    POSEIDON_REQUIRE(numSpecial_ > 0, "RingContext: no special primes");
    return specialBasis_;
}

} // namespace poseidon
