#include "poly/poly.h"

#include "common/check.h"
#include "common/parallel.h"
#include "kernels/kernels.h"

namespace poseidon {

namespace {

/// Elementwise limb loops only split across threads once a chunk
/// carries at least this many coefficients; below that, pool dispatch
/// costs more than the arithmetic it distributes.
constexpr std::size_t kMinElemsPerTask = 8192;

std::size_t
limb_grain(std::size_t n)
{
    return n >= kMinElemsPerTask ? 1 : kMinElemsPerTask / n;
}

} // namespace

RnsPoly::RnsPoly(RingContextPtr ctx, std::vector<std::size_t> primeIdx,
                 Domain d)
    : ctx_(std::move(ctx)), primeIdx_(std::move(primeIdx)), domain_(d)
{
    POSEIDON_REQUIRE(ctx_ != nullptr, "RnsPoly: null context");
    POSEIDON_REQUIRE(!primeIdx_.empty(), "RnsPoly: no primes");
    for (std::size_t idx : primeIdx_) {
        POSEIDON_REQUIRE(idx < ctx_->num_primes(), "RnsPoly: bad prime index");
    }
    data_.assign(primeIdx_.size(), std::vector<u64>(ctx_->degree(), 0));
}

RnsPoly
RnsPoly::ct(RingContextPtr ctx, std::size_t limbs, Domain d)
{
    std::vector<std::size_t> idx(limbs);
    for (std::size_t i = 0; i < limbs; ++i) idx[i] = i;
    return RnsPoly(std::move(ctx), std::move(idx), d);
}

std::vector<u64*>
RnsPoly::limb_ptrs()
{
    std::vector<u64*> p(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) p[i] = data_[i].data();
    return p;
}

std::vector<const u64*>
RnsPoly::limb_ptrs() const
{
    std::vector<const u64*> p(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) p[i] = data_[i].data();
    return p;
}

bool
RnsPoly::compatible(const RnsPoly &o) const
{
    return ctx_ == o.ctx_ && primeIdx_ == o.primeIdx_ &&
           domain_ == o.domain_;
}

void
RnsPoly::to_eval()
{
    if (domain_ == Domain::Eval) return;
    parallel::parallel_for(0, data_.size(), 1,
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                ctx_->table(primeIdx_[k]).forward(data_[k].data());
            }
        }, "poly.ntt");
    domain_ = Domain::Eval;
}

void
RnsPoly::to_coeff()
{
    if (domain_ == Domain::Coeff) return;
    parallel::parallel_for(0, data_.size(), 1,
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                ctx_->table(primeIdx_[k]).inverse(data_[k].data());
            }
        }, "poly.intt");
    domain_ = Domain::Coeff;
}

void
RnsPoly::add_inplace(const RnsPoly &o)
{
    POSEIDON_REQUIRE(compatible(o), "RnsPoly::add_inplace: incompatible");
    parallel::parallel_for(0, data_.size(), limb_grain(degree()),
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                u64 *a = data_[k].data();
                kernels::add_mod_n(a, a, o.data_[k].data(),
                                   data_[k].size(), prime(k));
            }
        }, "poly.elementwise");
}

void
RnsPoly::sub_inplace(const RnsPoly &o)
{
    POSEIDON_REQUIRE(compatible(o), "RnsPoly::sub_inplace: incompatible");
    parallel::parallel_for(0, data_.size(), limb_grain(degree()),
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                u64 *a = data_[k].data();
                kernels::sub_mod_n(a, a, o.data_[k].data(),
                                   data_[k].size(), prime(k));
            }
        }, "poly.elementwise");
}

void
RnsPoly::negate_inplace()
{
    parallel::parallel_for(0, data_.size(), limb_grain(degree()),
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                u64 *a = data_[k].data();
                kernels::neg_mod_n(a, a, data_[k].size(), prime(k));
            }
        }, "poly.elementwise");
}

void
RnsPoly::mul_inplace(const RnsPoly &o)
{
    POSEIDON_REQUIRE(compatible(o), "RnsPoly::mul_inplace: incompatible");
    parallel::parallel_for(0, data_.size(), limb_grain(degree()),
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                u64 *a = data_[k].data();
                kernels::mul_mod_n(a, a, o.data_[k].data(),
                                   data_[k].size(), prime(k));
            }
        }, "poly.elementwise");
}

void
RnsPoly::mul_scalar_inplace(const std::vector<u64> &scalars)
{
    POSEIDON_REQUIRE(scalars.size() == data_.size(),
                     "RnsPoly::mul_scalar_inplace: scalar count mismatch");
    parallel::parallel_for(0, data_.size(), limb_grain(degree()),
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                u64 q = prime(k);
                u64 w = scalars[k] % q;
                u64 ws = static_cast<u64>((u128(w) << 64) / q);
                u64 *a = data_[k].data();
                kernels::scalar_mul_shoup_n(a, a, data_[k].size(), w,
                                            ws, q);
            }
        }, "poly.elementwise");
}

void
RnsPoly::mul_scalar_inplace(u64 scalar)
{
    std::vector<u64> s(data_.size());
    for (std::size_t k = 0; k < data_.size(); ++k) s[k] = scalar % prime(k);
    mul_scalar_inplace(s);
}

void
RnsPoly::drop_last_limb()
{
    POSEIDON_REQUIRE(data_.size() >= 2,
                     "RnsPoly::drop_last_limb: would leave no limbs");
    data_.pop_back();
    primeIdx_.pop_back();
}

void
RnsPoly::append_limb(std::size_t primeIdx)
{
    POSEIDON_REQUIRE(primeIdx < ctx_->num_primes(),
                     "RnsPoly::append_limb: bad prime index");
    primeIdx_.push_back(primeIdx);
    data_.emplace_back(ctx_->degree(), 0);
}

void
RnsPoly::set_zero()
{
    for (auto &l : data_) std::fill(l.begin(), l.end(), 0);
}

void
RnsPoly::assign_signed(const std::vector<i64> &coeffs)
{
    POSEIDON_REQUIRE(domain_ == Domain::Coeff,
                     "RnsPoly::assign_signed: must be in Coeff domain");
    POSEIDON_REQUIRE(coeffs.size() == ctx_->degree(),
                     "RnsPoly::assign_signed: wrong coefficient count");
    parallel::parallel_for(0, data_.size(), limb_grain(degree()),
        [&](std::size_t k0, std::size_t k1) {
            for (std::size_t k = k0; k < k1; ++k) {
                u64 q = prime(k);
                for (std::size_t t = 0; t < coeffs.size(); ++t) {
                    i64 v = coeffs[t];
                    if (v >= 0) {
                        data_[k][t] = static_cast<u64>(v) % q;
                    } else {
                        u64 m = static_cast<u64>(-(v + 1)) + 1;
                        u64 r = m % q;
                        data_[k][t] = r == 0 ? 0 : q - r;
                    }
                }
            }
        }, "poly.elementwise");
}

} // namespace poseidon
