#ifndef POSEIDON_POLY_RING_H_
#define POSEIDON_POLY_RING_H_

/**
 * @file
 * RingContext: shared, immutable per-(N, prime-chain) tables.
 *
 * One context owns the NTT tables and Barrett constants for every prime
 * in the modulus chain (ciphertext primes first, then the special
 * keyswitching primes). Polynomials reference the context and say which
 * primes they are defined over, so level drops and base extensions are
 * just index bookkeeping.
 */

#include <cstddef>
#include <memory>
#include <vector>

#include "ntt/ntt.h"
#include "rns/basis.h"

namespace poseidon {

/// Immutable tables for a fixed ring degree and prime chain.
class RingContext
{
  public:
    /**
     * @param n            ring degree (power of two)
     * @param primes       full modulus chain, ciphertext primes first
     * @param numSpecial   how many trailing primes are keyswitch primes
     */
    RingContext(std::size_t n, std::vector<u64> primes,
                std::size_t numSpecial = 0);

    std::size_t degree() const { return n_; }
    unsigned log_degree() const { return logn_; }

    /// Total primes in the chain (ciphertext + special).
    std::size_t num_primes() const { return primes_.size(); }

    /// Number of ciphertext (non-special) primes.
    std::size_t num_ct_primes() const { return primes_.size() - numSpecial_; }

    /// Number of special (keyswitch) primes.
    std::size_t num_special_primes() const { return numSpecial_; }

    u64 prime(std::size_t i) const { return primes_[i]; }

    /// NTT tables are shared process-wide (see ntt/table_cache.h):
    /// contexts over the same (N, q) pairs reference one table.
    const NttTable& table(std::size_t i) const { return *tables_[i]; }

    const Barrett64& barrett(std::size_t i) const { return barrett_[i]; }

    /// RNS basis over ciphertext primes [0, count).
    const RnsBasis& ct_basis(std::size_t count) const;

    /// RNS basis over all special primes.
    const RnsBasis& special_basis() const;

  private:
    std::size_t n_;
    unsigned logn_;
    std::vector<u64> primes_;
    std::size_t numSpecial_;
    std::vector<std::shared_ptr<const NttTable>> tables_;
    std::vector<Barrett64> barrett_;
    /// ctBases_[l] = basis over primes [0, l+1)
    std::vector<RnsBasis> ctBases_;
    RnsBasis specialBasis_;
};

using RingContextPtr = std::shared_ptr<const RingContext>;

} // namespace poseidon

#endif // POSEIDON_POLY_RING_H_
