#include "poly/hfauto.h"

#include "common/check.h"

namespace poseidon {

HFAuto::HFAuto(std::size_t n, std::size_t c)
    : n_(n), c_(c), r_(n / c)
{
    POSEIDON_REQUIRE(is_pow2(n), "HFAuto: N must be a power of two");
    POSEIDON_REQUIRE(is_pow2(c) && c <= n,
                     "HFAuto: C must be a power of two <= N");
}

void
HFAuto::apply_limb(const u64 *in, u64 *out, u64 g, u64 q) const
{
    POSEIDON_REQUIRE(g % 2 == 1, "HFAuto: galois element must be odd");
    const std::size_t C = c_, R = r_, N = n_;
    const u64 twoN = 2 * static_cast<u64>(N);
    g %= twoN;

    ++stats_.invocations;

    // Per-column precomputation: J(j) = j*g mod C and the extra row
    // shift A(j) = floor(j*g / C) mod R.
    std::vector<std::size_t> colMap(C), rowShift(C);
    for (std::size_t j = 0; j < C; ++j) {
        u64 jg = static_cast<u64>(j) * g;
        colMap[j] = static_cast<std::size_t>(jg % C);
        rowShift[j] = static_cast<std::size_t>((jg / C) % R);
    }

    std::vector<u64> m1(N), m2(N), m3(N);

    // Stage 1: row permutation row_i -> row_{i*g mod R}, applying the
    // negacyclic sign of Eq. (4) while reading.
    for (std::size_t i = 0; i < R; ++i) {
        std::size_t dstRow = static_cast<std::size_t>(
            (static_cast<u64>(i) * g) % R);
        const u64 *src = in + i * C;
        u64 *dst = m1.data() + dstRow * C;
        u64 pos = (static_cast<u64>(i) * C % twoN) * g % twoN; // idx*g mod 2N
        for (std::size_t j = 0; j < C; ++j) {
            dst[j] = pos >= N ? neg_mod(src[j], q) : src[j];
            pos += g;
            if (pos >= twoN) pos -= twoN;
        }
        stats_.stageSubvecOps[0] += 2; // one sub-vector read + write
    }

    // Stage 2: cyclic shift inside each column's FIFO by A(j).
    for (std::size_t rrow = 0; rrow < R; ++rrow) {
        for (std::size_t j = 0; j < C; ++j) {
            std::size_t dstRow = rrow + rowShift[j];
            if (dstRow >= R) dstRow -= R;
            m2[dstRow * C + j] = m1[rrow * C + j];
        }
        stats_.stageSubvecOps[1] += 2;
    }

    // Stage 3: dimension switch — materialize column-major access so
    // Stage 4 can operate on whole columns (models the BRAM re-layout).
    for (std::size_t j = 0; j < C; ++j) {
        for (std::size_t rrow = 0; rrow < R; ++rrow) {
            m3[j * R + rrow] = m2[rrow * C + j];
        }
    }
    stats_.stageSubvecOps[2] += 2 * R;

    // Stage 4: column permutation col_j -> col_{j*g mod C}.
    for (std::size_t j = 0; j < C; ++j) {
        std::size_t dstCol = colMap[j];
        for (std::size_t rrow = 0; rrow < R; ++rrow) {
            out[rrow * C + dstCol] = m3[j * R + rrow];
        }
        stats_.stageSubvecOps[3] += 2;
    }
}

RnsPoly
HFAuto::apply(const RnsPoly &p, u64 g) const
{
    POSEIDON_REQUIRE(p.domain() == Domain::Coeff,
                     "HFAuto::apply: polynomial must be in Coeff domain");
    POSEIDON_REQUIRE(p.degree() == n_, "HFAuto::apply: degree mismatch");
    RnsPoly out = p;
    for (std::size_t k = 0; k < p.num_limbs(); ++k) {
        apply_limb(p.limb(k), out.limb(k), g, p.prime(k));
    }
    return out;
}

} // namespace poseidon
