#include "poly/automorphism.h"

#include "common/check.h"
#include "common/parallel.h"
#include "ntt/table_cache.h"

namespace poseidon {

void
automorphism_coeff_limb(const u64 *in, u64 *out, std::size_t n, u64 g,
                        u64 q)
{
    POSEIDON_REQUIRE(g % 2 == 1, "automorphism: galois element must be odd");
    const u64 twoN = 2 * static_cast<u64>(n);
    u64 pos = 0; // t*g mod 2N, updated incrementally
    for (std::size_t t = 0; t < n; ++t) {
        u64 idx = pos;
        if (idx < n) {
            out[idx] = in[t];
        } else {
            out[idx - n] = neg_mod(in[t], q);
        }
        pos += g;
        if (pos >= twoN) pos -= twoN;
    }
}

std::vector<u32>
make_eval_permutation(std::size_t n, u64 g)
{
    POSEIDON_REQUIRE(g % 2 == 1, "automorphism: galois element must be odd");
    unsigned logn = log2_floor(n);
    const u64 twoN = 2 * static_cast<u64>(n);
    const std::vector<u32> &rev = *bit_reverse_table(logn);
    std::vector<u32> perm(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Output slot rev(i) holds the evaluation at psi^{(2i+1)g}.
        u64 e = ((2 * static_cast<u64>(i) + 1) * g) % twoN;
        u64 srcNat = (e - 1) / 2;
        perm[rev[i]] = rev[srcNat];
    }
    return perm;
}

void
automorphism_eval_limb(const u64 *in, u64 *out, std::size_t n,
                       const std::vector<u32> &perm)
{
    for (std::size_t i = 0; i < n; ++i) out[i] = in[perm[i]];
}

RnsPoly
automorphism(const RnsPoly &p, u64 g)
{
    RnsPoly out = p; // copies shape; we overwrite data below
    std::size_t n = p.degree();
    if (p.domain() == Domain::Coeff) {
        parallel::parallel_for(0, p.num_limbs(), 1,
            [&](std::size_t k0, std::size_t k1) {
                for (std::size_t k = k0; k < k1; ++k) {
                    automorphism_coeff_limb(p.limb(k), out.limb(k), n, g,
                                            p.prime(k));
                }
            }, "poly.automorphism");
    } else {
        std::vector<u32> perm = make_eval_permutation(n, g);
        parallel::parallel_for(0, p.num_limbs(), 1,
            [&](std::size_t k0, std::size_t k1) {
                for (std::size_t k = k0; k < k1; ++k) {
                    automorphism_eval_limb(p.limb(k), out.limb(k), n, perm);
                }
            }, "poly.automorphism");
    }
    return out;
}

u64
galois_element_for_step(std::size_t n, long step)
{
    const u64 twoN = 2 * static_cast<u64>(n);
    // Positive rotation r -> 5^r, negative -> inverse.
    std::size_t slots = n / 2;
    long r = step % static_cast<long>(slots);
    if (r < 0) r += static_cast<long>(slots);
    u64 g = 1;
    for (long i = 0; i < r; ++i) g = (g * 5) % twoN;
    return g;
}

u64
galois_element_conjugate(std::size_t n)
{
    return 2 * static_cast<u64>(n) - 1;
}

} // namespace poseidon
