#ifndef POSEIDON_CLUSTER_JOURNAL_H_
#define POSEIDON_CLUSTER_JOURNAL_H_

/**
 * @file
 * Cluster-level lifecycle journal of the two-level router.
 *
 * The per-host serve::Journal records what happens to a job *inside*
 * one engine (queueing, batching, attempts). This journal records the
 * level above: what the global router decided — admission or shedding,
 * the placement verdict and whether it hit the tenant's key cache, the
 * modeled key transfers it charged, host deaths and the re-routes they
 * forced, autoscale transitions, and one terminal Resolved event per
 * cluster job.
 *
 * The determinism contract carries up from the engine (DESIGN.md §16):
 * every append happens in the router's single-threaded placement and
 * resolution phases, in an order that is a pure function of the
 * submitted job set, so to_jsonl() of the same cluster run is
 * byte-identical at every POSEIDON_THREADS.
 *
 * **Serialized form** (one JSON object per line):
 *
 *   {"schema":"poseidon-cluster-journal","schema_version":1,
 *    "clock_ghz":0.3,"hosts":8,"events":456}          <- header line
 *   {"ev":"Submitted","job":1,"cycle":0,"tenant":"alice"}
 *   {"ev":"Placed","job":1,"cycle":0,"host":3,"value":812345,
 *    "detail":"locality-hit"}
 *   ...
 *
 * Keys appear in a fixed order and numbers round-trip exactly
 * (telemetry/json.h), which is what makes byte-level determinism
 * checks meaningful.
 */

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.h"
#include "telemetry/json.h"

namespace poseidon::cluster {

/// Cluster job identifier (1-based; 0 is invalid), assigned by the
/// router, independent of the per-host engine job ids.
using ClusterJobId = u64;

/// Router event types, in the order a job encounters them.
enum class ClusterEventKind : unsigned {
    Submitted,   ///< accepted by submit(); cycle = arrival
    Rejected,    ///< infeasible (keys exceed every host's HBM cache)
    ShedCluster, ///< dropped by cluster admission control
    Placed,      ///< assigned to a host (value = estimated cost)
    KeyTransfer, ///< keys uploaded to the host (value = bytes)
    KeyEvicted,  ///< tenant keys evicted from a host's cache (job = 0)
    Rerouted,    ///< host died before finish; job resubmitted
    Resolved,    ///< terminal verdict (detail = final JobState name)
    HostDeath,   ///< a host left the fleet for good (job = 0)
    ScaleUp,     ///< autoscaler activated a parked host (job = 0)
    ScaleDown,   ///< autoscaler began draining a host (job = 0)
};

/// Short stable name ("Submitted", "Placed", ...).
const char* to_string(ClusterEventKind k);

/// Inverse of to_string; returns false on an unknown name.
bool cluster_kind_from_string(const std::string &s,
                              ClusterEventKind &out);

/// One cluster journal record. Only the fields a kind uses are
/// serialized; everything else keeps its default (see to_json()).
struct ClusterEvent
{
    /// "no host" marker (admission-side events).
    static constexpr std::size_t kNoHost = static_cast<std::size_t>(-1);

    ClusterEventKind kind = ClusterEventKind::Submitted;
    ClusterJobId job = 0; ///< 0 = fleet-level event (deaths, scaling)
    double cycle = 0.0;   ///< simulated cluster-clock stamp

    std::string tenant;   ///< Submitted / key + terminal events
    std::size_t host = kNoHost; ///< placement/host-side events
    /// Kind-specific payload: Placed = estimated cost cycles;
    /// KeyTransfer/KeyEvicted = key bytes; Rerouted = reroute count;
    /// Resolved = reported latency cycles.
    double value = 0.0;
    std::string detail;   ///< human-readable reason / verdict

    telemetry::Json to_json() const;
    static ClusterEvent from_json(const telemetry::Json &j);
};

/// Append-only event log with JSONL (de)serialization, mirroring
/// serve::Journal. Appends are mutex-guarded (submit() may run on
/// client threads); reads are meant for after-run analysis.
class ClusterJournal
{
  public:
    static constexpr int kSchemaVersion = 1;
    static constexpr const char *kSchemaName = "poseidon-cluster-journal";

    ClusterJournal() = default;
    ClusterJournal(ClusterJournal &&o) noexcept;
    ClusterJournal& operator=(ClusterJournal &&o) noexcept;
    ClusterJournal(const ClusterJournal&) = delete;
    ClusterJournal& operator=(const ClusterJournal&) = delete;

    /// Recording switch; a disabled journal drops appends
    /// (ClusterConfig::journal maps to this).
    bool enabled() const { return enabled_; }
    void set_enabled(bool on) { enabled_ = on; }

    /// Fleet facts stamped into the JSONL header.
    void set_meta(double clockGHz, std::size_t hosts);
    double clock_ghz() const { return clockGHz_; }
    std::size_t hosts() const { return hosts_; }

    void append(ClusterEvent ev);

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    const std::vector<ClusterEvent>& events() const { return events_; }

    /// Header line + one compact JSON object per event.
    std::string to_jsonl() const;

    /// Write to_jsonl() to `path`; false on I/O failure.
    bool write_jsonl(const std::string &path) const;

    /// Parse a journal back from its JSONL form. Throws
    /// poseidon::ParseError on a malformed header, an unknown event
    /// kind, or a line that is not a JSON object. to_jsonl() of the
    /// result equals the input byte-for-byte.
    static ClusterJournal parse_jsonl(const std::string &text);

  private:
    bool enabled_ = true;
    double clockGHz_ = 0.0;
    std::size_t hosts_ = 0;
    mutable std::mutex mu_;
    std::vector<ClusterEvent> events_;
};

} // namespace poseidon::cluster

#endif // POSEIDON_CLUSTER_JOURNAL_H_
