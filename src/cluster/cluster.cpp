#include "cluster/cluster.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/check.h"
#include "hw/faults.h"
#include "workloads/workloads.h"

namespace poseidon::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/// FNV-1a over the shape-defining fields of a trace: two traces with
/// equal signatures price identically, which is what lets the router
/// cache the estimator's verdict across 10^5 identical requests.
u64
trace_signature(const isa::Trace &trace)
{
    u64 h = 1469598103934665603ULL;
    auto mix = [&h](u64 v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (const isa::Instr &in : trace.instrs()) {
        mix(static_cast<u64>(in.kind));
        mix(in.elems);
        mix(in.degree);
        mix(static_cast<u64>(in.tag));
    }
    return h;
}

hw::HwConfig
estimator_card(const ClusterConfig &cfg)
{
    hw::HwConfig card = cfg.host.card;
    // The placement estimate prices the fault-free shape; per-card
    // ECC campaigns stay a per-host engine concern.
    card.faults = hw::FaultConfig{};
    return card;
}

} // namespace

const char*
to_string(Placement p)
{
    switch (p) {
      case Placement::Locality: return "locality";
      case Placement::RoundRobin: return "round-robin";
      case Placement::Random: return "random";
      case Placement::LeastLoaded: return "least-loaded";
    }
    return "?";
}

bool
placement_from_string(const std::string &s, Placement &out)
{
    std::string k;
    for (char c : s) {
        if (c == '-' || c == '_' ||
            std::isspace(static_cast<unsigned char>(c)))
            continue;
        k += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (k == "locality") {
        out = Placement::Locality;
    } else if (k == "roundrobin" || k == "rr") {
        out = Placement::RoundRobin;
    } else if (k == "random") {
        out = Placement::Random;
    } else if (k == "leastloaded" || k == "ll") {
        out = Placement::LeastLoaded;
    } else {
        return false;
    }
    return true;
}

std::vector<HostDeath>
parse_host_chaos(const std::string &dsl)
{
    std::vector<HostDeath> out;
    std::size_t pos = 0;
    while (pos <= dsl.size()) {
        std::size_t semi = dsl.find(';', pos);
        std::string clause =
            trim(dsl.substr(pos, semi == std::string::npos
                                     ? std::string::npos
                                     : semi - pos));
        pos = semi == std::string::npos ? dsl.size() + 1 : semi + 1;
        if (clause.empty()) continue;
        std::size_t open = clause.find('{');
        std::size_t close = clause.rfind('}');
        POSEIDON_REQUIRE_T(InvalidArgument,
                           open != std::string::npos &&
                               close != std::string::npos &&
                               close > open &&
                               trim(clause.substr(0, open)) ==
                                   "HostDeath",
                           "host-chaos clause \""
                               << clause
                               << "\" is not HostDeath{...}");
        HostDeath d;
        bool sawHost = false;
        bool sawCycle = false;
        std::string body = clause.substr(open + 1, close - open - 1);
        std::size_t bp = 0;
        while (bp <= body.size()) {
            std::size_t comma = body.find(',', bp);
            std::string kv =
                trim(body.substr(bp, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - bp));
            bp = comma == std::string::npos ? body.size() + 1
                                            : comma + 1;
            if (kv.empty()) continue;
            std::size_t eq = kv.find('=');
            POSEIDON_REQUIRE_T(InvalidArgument,
                               eq != std::string::npos,
                               "host-chaos field \"" << kv
                                                     << "\" has no =");
            std::string key = trim(kv.substr(0, eq));
            std::string val = trim(kv.substr(eq + 1));
            char *end = nullptr;
            double num = std::strtod(val.c_str(), &end);
            POSEIDON_REQUIRE_T(InvalidArgument,
                               end != nullptr && *end == '\0' &&
                                   !val.empty(),
                               "host-chaos value \""
                                   << val << "\" is not a number");
            if (key == "host") {
                POSEIDON_REQUIRE_T(InvalidArgument,
                                   num >= 0 &&
                                       num == std::floor(num),
                                   "host-chaos host index must be a "
                                   "non-negative integer");
                d.host = static_cast<std::size_t>(num);
                sawHost = true;
            } else if (key == "cycle") {
                d.cycle = num;
                sawCycle = true;
            } else {
                POSEIDON_THROW(InvalidArgument,
                               "unknown host-chaos field \"" << key
                                                             << "\"");
            }
        }
        POSEIDON_REQUIRE_T(InvalidArgument, sawHost && sawCycle,
                           "HostDeath needs host= and cycle=");
        out.push_back(d);
    }
    return out;
}

telemetry::Json
ClusterStats::to_json() const
{
    using telemetry::Json;
    Json j = Json::object();
    j.set("submitted", Json(submitted));
    j.set("completed", Json(completed));
    j.set("failed", Json(failed));
    j.set("expired", Json(expired));
    j.set("shed", Json(shed));
    j.set("rejected", Json(rejected));
    j.set("rerouted", Json(rerouted));
    j.set("placements", Json(placements));
    j.set("locality_hits", Json(localityHits));
    j.set("locality_hit_rate", Json(locality_hit_rate()));
    j.set("key_transfers", Json(keyTransfers));
    j.set("key_evictions", Json(keyEvictions));
    j.set("key_transfer_bytes", Json(keyTransferBytes));
    j.set("key_transfer_cycles", Json(keyTransferCycles));
    j.set("scale_ups", Json(scaleUps));
    j.set("scale_downs", Json(scaleDowns));
    j.set("host_deaths", Json(hostDeaths));
    j.set("active_hosts", Json(static_cast<u64>(activeHosts)));
    j.set("peak_active_hosts",
          Json(static_cast<u64>(peakActiveHosts)));
    j.set("horizon_cycles", Json(horizonCycles));
    j.set("clock_ghz", Json(clockGHz));
    j.set("p50_latency_cycles", Json(p50LatencyCycles));
    j.set("p99_latency_cycles", Json(p99LatencyCycles));
    j.set("conserved", Json(conserved()));
    Json jt = Json::object();
    for (const auto &kv : tenants) {
        const ClusterTenantStats &t = kv.second;
        Json e = Json::object();
        e.set("submitted", Json(t.submitted));
        e.set("completed", Json(t.completed));
        e.set("failed", Json(t.failed));
        e.set("expired", Json(t.expired));
        e.set("shed", Json(t.shed));
        e.set("rejected", Json(t.rejected));
        e.set("p50_latency_cycles", Json(t.p50LatencyCycles));
        e.set("p99_latency_cycles", Json(t.p99LatencyCycles));
        jt.set(kv.first, std::move(e));
    }
    j.set("tenants", std::move(jt));
    Json jh = Json::array();
    for (const HostSummary &h : hosts) {
        Json e = Json::object();
        e.set("spawned", Json(h.spawned));
        e.set("active", Json(h.active));
        e.set("alive", Json(h.alive));
        e.set("draining", Json(h.draining));
        e.set("placed", Json(h.placed));
        e.set("rerouted", Json(h.rerouted));
        e.set("key_transfers", Json(h.keyTransfers));
        e.set("key_transfer_bytes", Json(h.keyTransferBytes));
        e.set("resident_key_bytes", Json(h.residentKeyBytes));
        e.set("engine_completed", Json(h.engine.completed));
        e.set("engine_busy_cycles", Json(h.engine.busyCycles));
        e.set("engine_horizon_cycles", Json(h.engine.horizonCycles));
        jh.push_back(std::move(e));
    }
    j.set("hosts", std::move(jh));
    return j;
}

void
ClusterStats::export_metrics(telemetry::MetricsRegistry &reg) const
{
    reg.gauge("cluster.hosts").set(static_cast<double>(hosts.size()));
    reg.gauge("cluster.active_hosts")
        .set(static_cast<double>(activeHosts));
    reg.gauge("cluster.jobs.submitted")
        .set(static_cast<double>(submitted));
    reg.gauge("cluster.jobs.completed")
        .set(static_cast<double>(completed));
    reg.gauge("cluster.jobs.failed").set(static_cast<double>(failed));
    reg.gauge("cluster.jobs.expired")
        .set(static_cast<double>(expired));
    reg.gauge("cluster.jobs.shed").set(static_cast<double>(shed));
    reg.gauge("cluster.jobs.rejected")
        .set(static_cast<double>(rejected));
    reg.gauge("cluster.jobs.rerouted")
        .set(static_cast<double>(rerouted));
    reg.gauge("cluster.locality_hit_rate").set(locality_hit_rate());
    reg.gauge("cluster.key_transfer_bytes").set(keyTransferBytes);
    reg.gauge("cluster.horizon_cycles").set(horizonCycles);
    reg.gauge("cluster.p99_latency_cycles").set(p99LatencyCycles);
}

ClusterRouter::ClusterRouter(ClusterConfig cfg)
    : cfg_(std::move(cfg)),
      tsdb_(0.0, cfg_.host.tsdbCapacity),
      estimator_(estimator_card(cfg_))
{
    POSEIDON_REQUIRE_T(InvalidArgument, cfg_.hosts >= 1,
                       "cluster needs at least one host");
    POSEIDON_REQUIRE_T(InvalidArgument,
                       cfg_.keyCacheShare > 0.0 &&
                           cfg_.keyCacheShare <= 1.0,
                       "keyCacheShare must be in (0, 1], got "
                           << cfg_.keyCacheShare);
    hosts_.resize(cfg_.hosts);
    std::size_t startActive = cfg_.hosts;
    if (cfg_.autoscale.enabled) {
        startActive = std::max<std::size_t>(
            1, std::min(cfg_.autoscale.minHosts, cfg_.hosts));
    }
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        hosts_[h].deathCycle = kInf;
        hosts_[h].active = h < startActive;
    }
    peakActiveHosts_ = startActive;
    deaths_ = parse_host_chaos(cfg_.hostChaos);
    for (const HostDeath &d : deaths_) {
        POSEIDON_REQUIRE_T(InvalidArgument, d.host < cfg_.hosts,
                           "HostDeath host " << d.host
                                             << " out of range (fleet "
                                             << cfg_.hosts << ")");
        hosts_[d.host].deathCycle =
            std::min(hosts_[d.host].deathCycle, d.cycle);
    }
    lastAutoscaleCycle_ = -kInf;
    journal_.set_enabled(cfg_.journal);
    journal_.set_meta(cfg_.host.card.clockGHz, cfg_.hosts);
}

ClusterRouter::~ClusterRouter() = default;

double
ClusterRouter::key_bytes(const std::string &tenant) const
{
    auto it = cfg_.tenantKeyBytes.find(tenant);
    return it == cfg_.tenantKeyBytes.end() ? cfg_.defaultKeyBytes
                                           : it->second;
}

double
ClusterRouter::host_key_capacity() const
{
    std::size_t cards = cfg_.host.fleet.empty()
                            ? cfg_.host.cards
                            : cfg_.host.fleet.size();
    return static_cast<double>(cards) *
           cfg_.host.card.hbm_capacity_bytes() * cfg_.keyCacheShare;
}

double
ClusterRouter::est_cost_cycles(const serve::JobSpec &spec)
{
    u64 sig = trace_signature(spec.trace);
    auto it = costCache_.find(sig);
    if (it != costCache_.end()) return it->second;
    double cost =
        estimator_.run(spec.trace).cycles + cfg_.host.dispatchCycles;
    costCache_.emplace(sig, cost);
    return cost;
}

serve::ServingEngine&
ClusterRouter::ensure_engine(std::size_t h)
{
    Host &host = hosts_[h];
    if (!host.engine) {
        serve::ServeConfig hc = cfg_.host;
        // Per-host fault-seed lineage: equal templates still run
        // independent ECC campaigns on every host.
        hc.card.faults.seed =
            hw::mix_seed(hw::mix_seed(cfg_.seed, 0x486F5374ULL),
                         static_cast<u64>(h)) ^
            hc.card.faults.seed;
        for (hw::HwConfig &c : hc.fleet) {
            c.faults.seed =
                hw::mix_seed(hw::mix_seed(cfg_.seed, 0x486F5374ULL),
                             static_cast<u64>(h)) ^
                c.faults.seed;
        }
        // Host engines publishing serve.* into the one global
        // registry would stomp each other; the cluster exports
        // cluster.* itself and merges host TSDBs instead.
        hc.exportTelemetry = false;
        host.engine =
            std::make_unique<serve::ServingEngine>(std::move(hc));
    }
    return *host.engine;
}

ClusterTicket
ClusterRouter::submit(serve::JobSpec spec)
{
    if (!spec.workload.empty()) {
        workloads::Workload w = workloads::find_workload(spec.workload);
        if (spec.name.empty()) spec.name = w.name;
        spec.trace = std::move(w.trace);
        spec.workload.clear();
    }
    POSEIDON_REQUIRE_T(InvalidArgument, !spec.trace.empty(),
                       "cluster job has an empty trace");
    Tracked t;
    t.callback = std::move(spec.callback);
    spec.callback = nullptr;
    t.originalArrival = spec.arrivalCycle;
    t.spec = std::move(spec);
    ClusterTicket ticket;
    {
        std::lock_guard<std::mutex> lk(mu_);
        t.id = nextId_++;
        ++submitted_;
        ++tenants_[t.spec.tenant].submitted;
        ticket.id = t.id;
        ticket.result = t.promise.get_future().share();
        ClusterEvent ev;
        ev.kind = ClusterEventKind::Submitted;
        ev.job = t.id;
        ev.cycle = t.spec.arrivalCycle;
        ev.tenant = t.spec.tenant;
        journal_.append(std::move(ev));
        pending_.push_back(std::move(t));
    }
    return ticket;
}

std::size_t
ClusterRouter::in_flight() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return pending_.size() + inFlight_.size();
}

std::size_t
ClusterRouter::active_hosts() const
{
    std::size_t n = 0;
    for (const Host &h : hosts_) {
        if (h.active && !h.draining) ++n;
    }
    return n;
}

const serve::ServingEngine*
ClusterRouter::host_engine(std::size_t host) const
{
    if (host >= hosts_.size()) return nullptr;
    return hosts_[host].engine.get();
}

void
ClusterRouter::charge_key_transfer(std::size_t h,
                                   const std::string &tenant,
                                   ClusterJobId job, double cycle)
{
    Host &host = hosts_[h];
    const double kb = key_bytes(tenant);
    const double cap = host_key_capacity();
    while (host.residentKeyBytes + kb > cap &&
           !host.residentKeys.empty()) {
        auto victim = host.residentKeys.begin();
        for (auto it = host.residentKeys.begin();
             it != host.residentKeys.end(); ++it) {
            if (it->second < victim->second) victim = it;
        }
        double vb = key_bytes(victim->first);
        host.residentKeyBytes =
            std::max(0.0, host.residentKeyBytes - vb);
        ClusterEvent ev;
        ev.kind = ClusterEventKind::KeyEvicted;
        ev.cycle = cycle;
        ev.tenant = victim->first;
        ev.host = h;
        ev.value = vb;
        journal_.append(std::move(ev));
        host.residentKeys.erase(victim);
        ++keyEvictions_;
    }
    host.residentKeys[tenant] = cycle;
    host.residentKeyBytes += kb;
    ++keyTransfers_;
    ++host.keyTransfers;
    keyTransferBytes_ += kb;
    host.keyTransferBytes += kb;
    keyTransferCycles_ += cfg_.host.card.transfer_cycles(kb);
    ClusterEvent ev;
    ev.kind = ClusterEventKind::KeyTransfer;
    ev.job = job;
    ev.cycle = cycle;
    ev.tenant = tenant;
    ev.host = h;
    ev.value = kb;
    journal_.append(std::move(ev));
}

std::size_t
ClusterRouter::pick_host(const Tracked &t, double arrival,
                         double estCost, bool &localityHit,
                         bool &needTransfer)
{
    localityHit = false;
    needTransfer = false;
    std::vector<std::size_t> elig;
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        const Host &x = hosts_[h];
        if (x.active && !x.draining && arrival < x.deathCycle)
            elig.push_back(h);
    }
    if (elig.empty()) return ClusterEvent::kNoHost;

    const double kb = key_bytes(t.spec.tenant);
    const double cards = static_cast<double>(
        cfg_.host.fleet.empty() ? std::max<std::size_t>(1, cfg_.host.cards)
                                : cfg_.host.fleet.size());
    std::size_t chosen = elig.front();
    switch (cfg_.placement) {
      case Placement::RoundRobin:
        chosen = elig[rrNext_++ % elig.size()];
        break;
      case Placement::Random:
        chosen = elig[hw::mix_seed(cfg_.seed, t.id) % elig.size()];
        break;
      case Placement::LeastLoaded: {
        for (std::size_t h : elig) {
            if (hosts_[h].freeAtCycle < hosts_[chosen].freeAtCycle)
                chosen = h;
        }
        break;
      }
      case Placement::Locality: {
        double best = kInf;
        for (std::size_t h : elig) {
            const Host &x = hosts_[h];
            double eff = std::max(arrival, x.readyAtCycle);
            if (x.residentKeys.find(t.spec.tenant) ==
                x.residentKeys.end()) {
                eff += cfg_.host.card.transfer_cycles(kb);
            }
            double finish =
                std::max(x.freeAtCycle, eff) + estCost / cards;
            if (finish < best) {
                best = finish;
                chosen = h;
            }
        }
        break;
      }
    }
    bool resident =
        hosts_[chosen].residentKeys.find(t.spec.tenant) !=
        hosts_[chosen].residentKeys.end();
    localityHit = resident;
    needTransfer = !resident;
    return chosen;
}

void
ClusterRouter::autoscale_step(double cycle)
{
    const AutoscaleConfig &as = cfg_.autoscale;
    if (!as.enabled) return;
    double sum = 0.0;
    std::size_t active = 0;
    for (const Host &x : hosts_) {
        if (!x.active || x.draining || cycle >= x.deathCycle) continue;
        ++active;
        double backlog = std::max(0.0, x.freeAtCycle - cycle);
        sum += std::min(1.0, backlog / std::max(1.0, as.windowCycles));
    }
    lastPressure_ = active == 0 ? 1.0 : sum / static_cast<double>(active);
    if (cycle - lastAutoscaleCycle_ < as.cooldownCycles) return;
    if (lastPressure_ > as.scaleUpPressure) {
        for (std::size_t h = 0; h < hosts_.size(); ++h) {
            Host &x = hosts_[h];
            if (cycle >= x.deathCycle) continue;
            bool revivable = x.active && x.draining;
            bool parked = !x.active && x.alive;
            if (!revivable && !parked) continue;
            if (revivable) {
                x.draining = false;
            } else {
                x.active = true;
                x.readyAtCycle = cycle + as.spinUpCycles;
                x.freeAtCycle =
                    std::max(x.freeAtCycle, x.readyAtCycle);
            }
            ++scaleUps_;
            lastAutoscaleCycle_ = cycle;
            peakActiveHosts_ =
                std::max(peakActiveHosts_, active_hosts());
            ClusterEvent ev;
            ev.kind = ClusterEventKind::ScaleUp;
            ev.cycle = cycle;
            ev.host = h;
            ev.value = lastPressure_;
            journal_.append(std::move(ev));
            return;
        }
        return;
    }
    if (lastPressure_ < as.scaleDownPressure &&
        active > std::max<std::size_t>(1, as.minHosts)) {
        std::size_t victim = hosts_.size();
        for (std::size_t h = 0; h < hosts_.size(); ++h) {
            const Host &x = hosts_[h];
            if (!x.active || x.draining || cycle >= x.deathCycle)
                continue;
            if (victim == hosts_.size() ||
                x.freeAtCycle < hosts_[victim].freeAtCycle) {
                victim = h;
            }
        }
        if (victim == hosts_.size()) return;
        hosts_[victim].draining = true;
        ++scaleDowns_;
        lastAutoscaleCycle_ = cycle;
        ClusterEvent ev;
        ev.kind = ClusterEventKind::ScaleDown;
        ev.cycle = cycle;
        ev.host = victim;
        ev.value = lastPressure_;
        journal_.append(std::move(ev));
    }
}

void
ClusterRouter::process_deaths(double clusterClock)
{
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        Host &x = hosts_[h];
        if (x.deathLogged || x.deathCycle > clusterClock) continue;
        x.deathLogged = true;
        x.alive = false;
        x.active = false;
        x.draining = false;
        ++hostDeaths_;
        ClusterEvent dev;
        dev.kind = ClusterEventKind::HostDeath;
        dev.cycle = x.deathCycle;
        dev.host = h;
        journal_.append(std::move(dev));
        for (const auto &kv : x.residentKeys) {
            ++keyEvictions_;
            ClusterEvent ev;
            ev.kind = ClusterEventKind::KeyEvicted;
            ev.cycle = x.deathCycle;
            ev.tenant = kv.first;
            ev.host = h;
            ev.value = key_bytes(kv.first);
            ev.detail = "host-death";
            journal_.append(std::move(ev));
        }
        x.residentKeys.clear();
        x.residentKeyBytes = 0.0;
    }
}

void
ClusterRouter::resolve(Tracked t, serve::JobResult r)
{
    const bool asRejected =
        r.state == serve::JobState::Failed &&
        r.errorCode == ErrorCode::kInvalidArgument;
    r.id = t.id;
    if (r.tenant.empty()) r.tenant = t.spec.tenant;
    if (r.name.empty()) r.name = t.spec.name;
    r.arrivalCycle = t.originalArrival;
    const double latency = r.finishCycle - r.arrivalCycle;
    {
        std::lock_guard<std::mutex> lk(mu_);
        ClusterTenantStats &ts = tenants_[t.spec.tenant];
        switch (r.state) {
          case serve::JobState::Completed:
            ++completed_;
            ++ts.completed;
            latencies_[t.spec.tenant].push_back(latency);
            break;
          case serve::JobState::Failed:
          case serve::JobState::Queued:
            if (asRejected) {
                ++rejected_;
                ++ts.rejected;
            } else {
                ++failed_;
                ++ts.failed;
            }
            break;
          case serve::JobState::Expired:
            ++expired_;
            ++ts.expired;
            break;
          case serve::JobState::Shed:
            ++shed_;
            ++ts.shed;
            break;
        }
        horizon_ = std::max(horizon_, r.finishCycle);
    }
    ClusterEvent ev;
    ev.kind = ClusterEventKind::Resolved;
    ev.job = t.id;
    ev.cycle = r.finishCycle;
    ev.tenant = t.spec.tenant;
    ev.host = t.host;
    ev.value = latency;
    ev.detail = asRejected ? "Rejected" : serve::to_string(r.state);
    journal_.append(std::move(ev));
    t.promise.set_value(r);
    if (t.callback) t.callback(r);
}

void
ClusterRouter::place(Tracked t)
{
    const double arrival = t.spec.arrivalCycle;
    autoscale_step(arrival);

    if (t.reroutes == 0 && cfg_.maxInFlight > 0) {
        std::size_t inflight;
        {
            std::lock_guard<std::mutex> lk(mu_);
            inflight = inFlight_.size();
        }
        if (inflight >= cfg_.maxInFlight) {
            ClusterEvent ev;
            ev.kind = ClusterEventKind::ShedCluster;
            ev.job = t.id;
            ev.cycle = arrival;
            ev.tenant = t.spec.tenant;
            ev.detail = "cluster in-flight cap";
            journal_.append(std::move(ev));
            serve::JobResult r;
            r.state = serve::JobState::Shed;
            r.errorCode = ErrorCode::kOverloaded;
            r.error = "cluster admission control: in-flight cap";
            r.finishCycle = arrival;
            resolve(std::move(t), std::move(r));
            return;
        }
    }

    const double kb = key_bytes(t.spec.tenant);
    if (kb > host_key_capacity()) {
        ClusterEvent ev;
        ev.kind = ClusterEventKind::Rejected;
        ev.job = t.id;
        ev.cycle = arrival;
        ev.tenant = t.spec.tenant;
        ev.value = kb;
        ev.detail = "evaluation keys exceed the host HBM key cache";
        journal_.append(std::move(ev));
        serve::JobResult r;
        r.state = serve::JobState::Failed;
        r.errorCode = ErrorCode::kInvalidArgument;
        r.error = "tenant evaluation keys exceed every host's "
                  "modeled HBM key cache";
        r.finishCycle = arrival;
        resolve(std::move(t), std::move(r));
        return;
    }

    bool hit = false;
    bool transfer = false;
    const double estCost = est_cost_cycles(t.spec);
    std::size_t h = pick_host(t, arrival, estCost, hit, transfer);
    if (h == ClusterEvent::kNoHost) {
        serve::JobResult r;
        r.state = serve::JobState::Failed;
        r.errorCode = ErrorCode::kFaultDetected;
        r.error = "no live host accepts placements";
        r.finishCycle = arrival;
        resolve(std::move(t), std::move(r));
        return;
    }

    Host &host = hosts_[h];
    double eff = std::max(arrival, host.readyAtCycle);
    if (transfer) {
        charge_key_transfer(h, t.spec.tenant, t.id, arrival);
        eff += cfg_.host.card.transfer_cycles(kb);
    } else {
        host.residentKeys[t.spec.tenant] = arrival;
    }
    ++placements_;
    if (hit) ++localityHits_;
    ++host.placed;
    ClusterEvent ev;
    ev.kind = ClusterEventKind::Placed;
    ev.job = t.id;
    ev.cycle = arrival;
    ev.tenant = t.spec.tenant;
    ev.host = h;
    ev.value = estCost;
    ev.detail = hit ? "locality-hit" : "locality-miss";
    journal_.append(std::move(ev));

    const double cards = static_cast<double>(
        cfg_.host.fleet.empty() ? std::max<std::size_t>(1, cfg_.host.cards)
                                : cfg_.host.fleet.size());
    host.freeAtCycle =
        std::max(host.freeAtCycle, eff) + estCost / cards;
    t.host = h;

    serve::JobSpec spec = t.spec;
    spec.arrivalCycle = eff;
    spec.callback = [this, id = t.id](const serve::JobResult &r) {
        roundResults_.emplace_back(id, r);
    };
    ensure_engine(h).submit(std::move(spec));
    {
        std::lock_guard<std::mutex> lk(mu_);
        inFlight_.emplace(t.id, std::move(t));
    }
}

void
ClusterRouter::sample_round(double clusterClock)
{
    roundClock_ = std::max(roundClock_, clusterClock);
    const double c = roundClock_;
    std::size_t inflight;
    {
        std::lock_guard<std::mutex> lk(mu_);
        inflight = pending_.size() + inFlight_.size();
    }
    std::size_t alive = 0;
    for (const Host &x : hosts_) {
        if (x.alive) ++alive;
    }
    tsdb_.record("cluster.in_flight", c,
                 static_cast<double>(inflight));
    tsdb_.record("cluster.active_hosts", c,
                 static_cast<double>(active_hosts()));
    tsdb_.record("cluster.alive_hosts", c,
                 static_cast<double>(alive));
    tsdb_.record("cluster.jobs.completed", c,
                 static_cast<double>(completed_));
    tsdb_.record("cluster.jobs.failed", c,
                 static_cast<double>(failed_));
    tsdb_.record("cluster.jobs.expired", c,
                 static_cast<double>(expired_));
    tsdb_.record("cluster.jobs.shed", c,
                 static_cast<double>(shed_));
    tsdb_.record("cluster.jobs.rejected", c,
                 static_cast<double>(rejected_));
    tsdb_.record("cluster.jobs.rerouted", c,
                 static_cast<double>(rerouted_));
    tsdb_.record("cluster.placements", c,
                 static_cast<double>(placements_));
    tsdb_.record("cluster.locality_hits", c,
                 static_cast<double>(localityHits_));
    tsdb_.record("cluster.key_transfers", c,
                 static_cast<double>(keyTransfers_));
    tsdb_.record("cluster.key_transfer_bytes", c, keyTransferBytes_);
    tsdb_.record("cluster.autoscale.pressure", c, lastPressure_);
}

void
ClusterRouter::drain()
{
    while (true) {
        std::vector<Tracked> batch;
        {
            std::lock_guard<std::mutex> lk(mu_);
            while (!pending_.empty()) {
                batch.push_back(std::move(pending_.front()));
                pending_.pop_front();
            }
        }
        if (batch.empty()) break;
        std::stable_sort(
            batch.begin(), batch.end(),
            [](const Tracked &a, const Tracked &b) {
                if (a.spec.arrivalCycle != b.spec.arrivalCycle)
                    return a.spec.arrivalCycle < b.spec.arrivalCycle;
                return a.id < b.id;
            });
        double clock = roundClock_;
        for (Tracked &t : batch) {
            clock = std::max(clock, t.spec.arrivalCycle);
            place(std::move(t));
        }
        for (Host &x : hosts_) {
            if (x.engine) x.engine->drain();
        }
        for (const auto &pr : roundResults_) {
            clock = std::max(clock, pr.second.finishCycle);
        }
        process_deaths(clock);
        std::vector<std::pair<ClusterJobId, serve::JobResult>>
            results = std::move(roundResults_);
        roundResults_.clear();
        for (auto &pr : results) {
            Tracked t;
            {
                std::lock_guard<std::mutex> lk(mu_);
                auto it = inFlight_.find(pr.first);
                if (it == inFlight_.end()) continue;
                t = std::move(it->second);
                inFlight_.erase(it);
            }
            Host &hh = hosts_[t.host];
            const bool lost = std::isfinite(hh.deathCycle) &&
                              pr.second.finishCycle > hh.deathCycle;
            if (!lost) {
                resolve(std::move(t), std::move(pr.second));
                continue;
            }
            if (t.reroutes < cfg_.maxReroutes) {
                ++t.reroutes;
                ++rerouted_;
                ++hh.rerouted;
                double rearrival =
                    std::max(t.spec.arrivalCycle, hh.deathCycle) +
                    cfg_.rerouteOverheadCycles;
                t.spec.arrivalCycle = rearrival;
                ClusterEvent ev;
                ev.kind = ClusterEventKind::Rerouted;
                ev.job = t.id;
                ev.cycle = rearrival;
                ev.tenant = t.spec.tenant;
                ev.host = t.host;
                ev.value = static_cast<double>(t.reroutes);
                ev.detail = "host died before finish";
                journal_.append(std::move(ev));
                t.host = ClusterEvent::kNoHost;
                std::lock_guard<std::mutex> lk(mu_);
                pending_.push_back(std::move(t));
            } else {
                serve::JobResult r;
                r.state = serve::JobState::Failed;
                r.errorCode = ErrorCode::kFaultDetected;
                r.error = "host died; reroute budget exhausted";
                r.finishCycle =
                    std::max(t.spec.arrivalCycle, hh.deathCycle) +
                    cfg_.rerouteOverheadCycles;
                resolve(std::move(t), std::move(r));
            }
        }
        sample_round(clock);
    }
    if (cfg_.exportTelemetry && telemetry::enabled()) {
        stats().export_metrics(telemetry::MetricsRegistry::global());
    }
}

ClusterStats
ClusterRouter::stats() const
{
    ClusterStats s;
    std::vector<double> all;
    {
        std::lock_guard<std::mutex> lk(mu_);
        s.submitted = submitted_;
        s.completed = completed_;
        s.failed = failed_;
        s.expired = expired_;
        s.shed = shed_;
        s.rejected = rejected_;
        s.rerouted = rerouted_;
        s.placements = placements_;
        s.localityHits = localityHits_;
        s.keyTransfers = keyTransfers_;
        s.keyEvictions = keyEvictions_;
        s.keyTransferBytes = keyTransferBytes_;
        s.keyTransferCycles = keyTransferCycles_;
        s.scaleUps = scaleUps_;
        s.scaleDowns = scaleDowns_;
        s.hostDeaths = hostDeaths_;
        s.peakActiveHosts = peakActiveHosts_;
        s.horizonCycles = horizon_;
        s.clockGHz = cfg_.host.card.clockGHz;
        s.tenants = tenants_;
        for (auto &kv : s.tenants) {
            auto it = latencies_.find(kv.first);
            if (it == latencies_.end() || it->second.empty())
                continue;
            kv.second.p50LatencyCycles =
                telemetry::exact_quantile(it->second, 0.50);
            kv.second.p99LatencyCycles =
                telemetry::exact_quantile(it->second, 0.99);
            all.insert(all.end(), it->second.begin(),
                       it->second.end());
        }
    }
    s.activeHosts = active_hosts();
    if (!all.empty()) {
        s.p50LatencyCycles = telemetry::exact_quantile(all, 0.50);
        s.p99LatencyCycles = telemetry::exact_quantile(all, 0.99);
    }
    s.hosts.reserve(hosts_.size());
    for (const Host &x : hosts_) {
        HostSummary h;
        h.spawned = static_cast<bool>(x.engine);
        h.active = x.active && !x.draining;
        h.alive = x.alive;
        h.draining = x.draining;
        h.readyAtCycle = x.readyAtCycle;
        h.placed = x.placed;
        h.rerouted = x.rerouted;
        h.keyTransfers = x.keyTransfers;
        h.keyTransferBytes = x.keyTransferBytes;
        h.residentKeyBytes = x.residentKeyBytes;
        if (x.engine) h.engine = x.engine->stats();
        s.hosts.push_back(std::move(h));
    }
    return s;
}

telemetry::Tsdb
ClusterRouter::cluster_tsdb() const
{
    telemetry::Tsdb out(cfg_.host.tsdbCadenceCycles,
                        cfg_.host.tsdbCapacity);
    for (const auto &sp : tsdb_.series()) {
        for (std::size_t i = 0; i < sp->size(); ++i) {
            const telemetry::Sample &smp = sp->at(i);
            out.record(sp->name(), smp.cycle, smp.value);
        }
    }
    for (const telemetry::Annotation &a : tsdb_.annotations()) {
        out.annotate(a);
    }
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (!hosts_[h].engine) continue;
        const telemetry::Tsdb &ht = hosts_[h].engine->tsdb();
        const std::string prefix = "host" + std::to_string(h) + ".";
        for (const auto &sp : ht.series()) {
            for (std::size_t i = 0; i < sp->size(); ++i) {
                const telemetry::Sample &smp = sp->at(i);
                out.record(prefix + sp->name(), smp.cycle, smp.value);
            }
        }
        for (const auto &hs : ht.histogram_series()) {
            // Rebuild the cumulative source from the stored interval
            // deltas so record_histogram() re-derives the same
            // intervals under the host-prefixed name.
            telemetry::Histogram cum(hs->bounds());
            for (std::size_t i = 0; i < hs->size(); ++i) {
                const telemetry::HistogramInterval &iv = hs->at(i);
                cum.merge(telemetry::Histogram::from_buckets(
                    hs->bounds(), iv.buckets, iv.sum));
                out.record_histogram(prefix + hs->name(), iv.cycle,
                                     cum);
            }
        }
        for (telemetry::Annotation a : ht.annotations()) {
            a.name = prefix + a.name;
            out.annotate(std::move(a));
        }
    }
    return out;
}

} // namespace poseidon::cluster
