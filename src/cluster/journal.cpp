#include "cluster/journal.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace poseidon::cluster {

const char*
to_string(ClusterEventKind k)
{
    switch (k) {
      case ClusterEventKind::Submitted: return "Submitted";
      case ClusterEventKind::Rejected: return "Rejected";
      case ClusterEventKind::ShedCluster: return "ShedCluster";
      case ClusterEventKind::Placed: return "Placed";
      case ClusterEventKind::KeyTransfer: return "KeyTransfer";
      case ClusterEventKind::KeyEvicted: return "KeyEvicted";
      case ClusterEventKind::Rerouted: return "Rerouted";
      case ClusterEventKind::Resolved: return "Resolved";
      case ClusterEventKind::HostDeath: return "HostDeath";
      case ClusterEventKind::ScaleUp: return "ScaleUp";
      case ClusterEventKind::ScaleDown: return "ScaleDown";
    }
    return "?";
}

bool
cluster_kind_from_string(const std::string &s, ClusterEventKind &out)
{
    static constexpr ClusterEventKind kAll[] = {
        ClusterEventKind::Submitted,   ClusterEventKind::Rejected,
        ClusterEventKind::ShedCluster, ClusterEventKind::Placed,
        ClusterEventKind::KeyTransfer, ClusterEventKind::KeyEvicted,
        ClusterEventKind::Rerouted,    ClusterEventKind::Resolved,
        ClusterEventKind::HostDeath,   ClusterEventKind::ScaleUp,
        ClusterEventKind::ScaleDown,
    };
    for (ClusterEventKind k : kAll) {
        if (s == to_string(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

telemetry::Json
ClusterEvent::to_json() const
{
    using telemetry::Json;
    // Fixed key order + default-suppressed fields: the serialized
    // line is a pure function of the event, which is what the
    // byte-identical determinism guarantee rests on.
    Json j = Json::object();
    j.set("ev", Json(to_string(kind)));
    j.set("job", Json(job));
    j.set("cycle", Json(cycle));
    if (!tenant.empty()) j.set("tenant", Json(tenant));
    if (host != kNoHost) j.set("host", Json(static_cast<u64>(host)));
    if (value != 0.0) j.set("value", Json(value));
    if (!detail.empty()) j.set("detail", Json(detail));
    return j;
}

ClusterEvent
ClusterEvent::from_json(const telemetry::Json &j)
{
    POSEIDON_REQUIRE_T(ParseError, j.is_object(),
                       "cluster event is not a JSON object");
    ClusterEvent ev;
    POSEIDON_REQUIRE_T(ParseError,
                       j.contains("ev") && j.contains("job") &&
                           j.contains("cycle"),
                       "cluster event misses ev/job/cycle");
    POSEIDON_REQUIRE_T(
        ParseError,
        cluster_kind_from_string(j.at("ev").as_string(), ev.kind),
        "unknown cluster event kind \"" << j.at("ev").as_string()
                                        << "\"");
    ev.job = static_cast<ClusterJobId>(j.at("job").as_number());
    ev.cycle = j.at("cycle").as_number();
    if (j.contains("tenant")) ev.tenant = j.at("tenant").as_string();
    if (j.contains("host")) {
        ev.host = static_cast<std::size_t>(j.at("host").as_number());
    }
    if (j.contains("value")) ev.value = j.at("value").as_number();
    if (j.contains("detail")) ev.detail = j.at("detail").as_string();
    return ev;
}

ClusterJournal::ClusterJournal(ClusterJournal &&o) noexcept
    : enabled_(o.enabled_),
      clockGHz_(o.clockGHz_),
      hosts_(o.hosts_),
      events_(std::move(o.events_))
{
}

ClusterJournal&
ClusterJournal::operator=(ClusterJournal &&o) noexcept
{
    if (this != &o) {
        enabled_ = o.enabled_;
        clockGHz_ = o.clockGHz_;
        hosts_ = o.hosts_;
        events_ = std::move(o.events_);
    }
    return *this;
}

void
ClusterJournal::set_meta(double clockGHz, std::size_t hosts)
{
    clockGHz_ = clockGHz;
    hosts_ = hosts;
}

void
ClusterJournal::append(ClusterEvent ev)
{
    if (!enabled_) return;
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(std::move(ev));
}

std::size_t
ClusterJournal::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
}

std::string
ClusterJournal::to_jsonl() const
{
    using telemetry::Json;
    std::lock_guard<std::mutex> lk(mu_);
    Json header = Json::object();
    header.set("schema", Json(kSchemaName));
    header.set("schema_version", Json(kSchemaVersion));
    header.set("clock_ghz", Json(clockGHz_));
    header.set("hosts", Json(static_cast<u64>(hosts_)));
    header.set("events", Json(static_cast<u64>(events_.size())));
    std::string out = header.dump();
    out += '\n';
    for (const ClusterEvent &ev : events_) {
        out += ev.to_json().dump();
        out += '\n';
    }
    return out;
}

bool
ClusterJournal::write_jsonl(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << to_jsonl();
    return static_cast<bool>(out);
}

ClusterJournal
ClusterJournal::parse_jsonl(const std::string &text)
{
    using telemetry::Json;
    ClusterJournal jr;
    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    std::size_t lineNo = 0;
    std::size_t declared = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty()) continue;
        Json j = Json::parse(line); // throws ParseError with offset
        if (!sawHeader) {
            POSEIDON_REQUIRE_T(
                ParseError,
                j.is_object() && j.contains("schema") &&
                    j.at("schema").as_string() == kSchemaName,
                "cluster journal line 1 is not a " << kSchemaName
                                                   << " header");
            POSEIDON_REQUIRE_T(
                ParseError,
                j.contains("schema_version") &&
                    j.at("schema_version").as_number() ==
                        kSchemaVersion,
                "unsupported cluster journal schema version");
            jr.clockGHz_ = j.contains("clock_ghz")
                               ? j.at("clock_ghz").as_number()
                               : 0.0;
            jr.hosts_ = j.contains("hosts")
                            ? static_cast<std::size_t>(
                                  j.at("hosts").as_number())
                            : 0;
            declared = j.contains("events")
                           ? static_cast<std::size_t>(
                                 j.at("events").as_number())
                           : 0;
            sawHeader = true;
            continue;
        }
        try {
            jr.events_.push_back(ClusterEvent::from_json(j));
        } catch (const Error &e) {
            POSEIDON_THROW(ParseError, "cluster journal line "
                                           << lineNo << ": "
                                           << e.message());
        }
    }
    POSEIDON_REQUIRE_T(ParseError, sawHeader,
                       "cluster journal text has no header line");
    POSEIDON_REQUIRE_T(ParseError, jr.events_.size() == declared,
                       "cluster journal header declares "
                           << declared << " events but "
                           << jr.events_.size() << " lines follow");
    return jr;
}

} // namespace poseidon::cluster
