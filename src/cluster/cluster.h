#ifndef POSEIDON_CLUSTER_CLUSTER_H_
#define POSEIDON_CLUSTER_CLUSTER_H_

/**
 * @file
 * Cluster-scale serving: a two-level scheduler over simulated hosts.
 *
 * The serving engine (serve/engine.h) schedules one fleet of cards in
 * one process. ClusterRouter is the level above: a global router that
 * admits jobs, places them on per-host serve::ServingEngine instances
 * (each host a fleet of cards with its own health / chaos / journal /
 * TSDB planes), and aggregates the results — all on one shared
 * simulated clock.
 *
 * **Placement.** The router is key-cache aware: each tenant owns a
 * modeled set of evaluation keys (ClusterConfig::tenantKeyBytes,
 * sized by hw::eval_key_bytes); a host that already holds a tenant's
 * keys serves its jobs without setup, while first placement elsewhere
 * charges a key upload of key_bytes / PCIe bandwidth cycles
 * (HwConfig::transfer_cycles) to the job's effective arrival. The
 * Locality policy scores hosts by estimated finish = max(host-free,
 * arrival + transfer) + estimated cost / cards, so it trades transfer
 * cost against queueing; RoundRobin / Random / LeastLoaded exist as
 * baselines the benchmark gates against. Host key caches are bounded
 * by cards * HwConfig::hbm_capacity_bytes() * keyCacheShare with LRU
 * eviction; a tenant whose keys fit no host is Rejected with a typed
 * InvalidArgument, never silently queued.
 *
 * **Admission & overload.** ClusterConfig::maxInFlight bounds jobs
 * admitted but not yet resolved; excess submissions are shed at the
 * router (JobState::Shed, ErrorCode::kOverloaded) before they reach
 * any host — cluster-level load shedding on top of each engine's own
 * queue-depth admission control.
 *
 * **Autoscaling.** A gauge-driven policy watches the same backlog
 * quantity the serve.queue_depth gauge samples: placement-time
 * pressure = mean normalized backlog across active hosts. Crossing
 * scaleUpPressure activates a parked host (ready after spinUpCycles);
 * falling below scaleDownPressure drains the least-backlogged host
 * (it finishes what it holds, then takes no new placements).
 *
 * **Host chaos.** ClusterConfig::hostChaos scripts whole-host deaths
 * ("HostDeath{host=2, cycle=5e6}"): jobs that would finish after the
 * death cycle on that host are rerouted (resubmitted with arrival
 * pushed past the death plus rerouteOverheadCycles), its key residency
 * is dropped, and the cluster journal records the death, every
 * reroute, and still exactly one Resolved event per cluster job —
 * journal conservation survives host loss.
 *
 * **Execution model.** drain() runs rounds: ingest pending
 * submissions in (arrival, id) order -> admit / place -> drain every
 * spawned host engine in ascending host order -> process host results
 * in completion order, firing client futures/callbacks for terminal
 * verdicts and re-queueing reroutes. Closed-loop callbacks may
 * submit() follow-ups; rounds continue until no work remains. Every
 * router decision is a pure function of the submitted job set on the
 * simulated clock, and per-host engines are themselves deterministic,
 * so cluster results, the cluster journal, and the merged TSDB dump
 * are byte-identical at every POSEIDON_THREADS (DESIGN.md §16).
 *
 * One modeling approximation is inherited from draining hosts
 * sequentially rather than interleaving a global event loop: a
 * follow-up job submitted by a callback in round k is placed in round
 * k+1 using host-backlog estimates from round k. The estimates the
 * placement model sees are cycle-stamped and deterministic either
 * way; docs/CLUSTER.md discusses the trade-off.
 */

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/journal.h"
#include "hw/sim.h"
#include "serve/engine.h"
#include "telemetry/timeseries.h"

namespace poseidon::cluster {

/// Placement policy of the global router.
enum class Placement : unsigned {
    Locality,   ///< min estimated finish incl. key-transfer penalty
    RoundRobin, ///< rotate over eligible hosts
    Random,     ///< deterministic hash of (seed, job id)
    LeastLoaded ///< min backlog, key locality ignored
};

/// Short stable name ("locality", "round-robin", ...).
const char* to_string(Placement p);

/// Inverse of to_string (also accepts "rr" / "least-loaded" forms);
/// returns false on an unknown name.
bool placement_from_string(const std::string &s, Placement &out);

/// Gauge-driven autoscaling policy (off by default).
struct AutoscaleConfig
{
    bool enabled = false;

    /// Never drain below this many active hosts.
    std::size_t minHosts = 1;

    /// Activate a parked host when placement-time pressure (mean
    /// normalized backlog over active hosts) exceeds this.
    double scaleUpPressure = 0.75;

    /// Drain the least-backlogged host when pressure falls below
    /// this (and more than minHosts are active).
    double scaleDownPressure = 0.15;

    /// Backlog normalization window: pressure of one host is
    /// clamp(backlog_cycles / windowCycles, 0, 1).
    double windowCycles = 2e6;

    /// Minimum simulated cycles between autoscale actions.
    double cooldownCycles = 1e6;

    /// A scaled-up host accepts placements only spinUpCycles after
    /// the decision (modeled boot + bitstream load).
    double spinUpCycles = 2e6;
};

/// One scripted whole-host death (see parse_host_chaos).
struct HostDeath
{
    std::size_t host = 0;
    double cycle = 0.0;
};

/// Parse the host-chaos DSL: a ';'-separated list of
/// "HostDeath{host=N, cycle=C}" clauses (whitespace-insensitive).
/// Throws poseidon::InvalidArgument on a malformed clause.
std::vector<HostDeath> parse_host_chaos(const std::string &dsl);

/// Knobs of the two-level router.
struct ClusterConfig
{
    /// Simulated hosts behind the router. With autoscaling enabled
    /// this is the fleet ceiling; autoscale.minHosts start active.
    std::size_t hosts = 8;

    /// Per-host engine template. Every host gets a copy with its own
    /// fault-seed lineage (hw::mix_seed over the host index), so
    /// equal configs still run independent ECC campaigns.
    serve::ServeConfig host;

    /// Placement policy (see Placement).
    Placement placement = Placement::Locality;

    /// Router seed: Random placement hashing + per-host fault-seed
    /// derivation.
    u64 seed = 0xC1A57E5ULL;

    /// Modeled evaluation-key footprint per tenant, in bytes
    /// (hw::eval_key_bytes gives the paper-parameter sizing).
    /// Tenants absent from the map use defaultKeyBytes.
    std::map<std::string, double> tenantKeyBytes;

    /// Key bytes assumed for tenants not in tenantKeyBytes.
    double defaultKeyBytes = 64.0 * 1024.0 * 1024.0;

    /// Fraction of a host's total HBM (cards *
    /// HwConfig::hbm_capacity_bytes()) usable as evaluation-key
    /// cache; the rest is working-set headroom.
    double keyCacheShare = 0.5;

    /// Cluster admission control: jobs in flight (admitted, not yet
    /// resolved) above this are shed as Overloaded. 0 = unbounded.
    std::size_t maxInFlight = 0;

    /// Cycles added to a rerouted job's arrival past the host death
    /// (failure detection + re-dispatch).
    double rerouteOverheadCycles = 5e4;

    /// Reroute attempts per job before it fails (host-death budget,
    /// independent of the per-engine RetryPolicy).
    u64 maxReroutes = 3;

    AutoscaleConfig autoscale;

    /// Whole-host chaos schedule ("" = none), e.g.
    /// "HostDeath{host=2, cycle=5e6}".
    std::string hostChaos;

    /// Record the cluster journal (cluster/journal.h).
    bool journal = true;

    /// Publish cluster.* metrics into the global MetricsRegistry.
    bool exportTelemetry = true;
};

/// Aggregate per-tenant outcome at the cluster level.
struct ClusterTenantStats
{
    u64 submitted = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 expired = 0;
    u64 shed = 0;
    u64 rejected = 0;
    double p50LatencyCycles = 0.0;
    double p99LatencyCycles = 0.0;
};

/// Per-host roll-up inside ClusterStats.
struct HostSummary
{
    bool spawned = false;  ///< engine ever instantiated
    bool active = false;   ///< accepting placements at end of run
    bool alive = true;     ///< false after a scripted HostDeath
    bool draining = false; ///< scale-down in progress
    double readyAtCycle = 0.0; ///< spin-up gate (autoscaled hosts)
    u64 placed = 0;
    u64 rerouted = 0; ///< jobs this host lost to its death
    u64 keyTransfers = 0;
    double keyTransferBytes = 0.0;
    double residentKeyBytes = 0.0; ///< key cache occupancy at end
    serve::ServeStats engine;      ///< zeroed when never spawned
};

/// Cluster-wide statistics, all on the simulated clock.
struct ClusterStats
{
    u64 submitted = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 expired = 0;
    u64 shed = 0;     ///< cluster admission + per-host shedding
    u64 rejected = 0; ///< keys fit no host
    u64 rerouted = 0; ///< host-death resubmissions
    u64 placements = 0;
    u64 localityHits = 0; ///< placements onto key-resident hosts
    u64 keyTransfers = 0;
    u64 keyEvictions = 0;
    double keyTransferBytes = 0.0;
    double keyTransferCycles = 0.0;
    u64 scaleUps = 0;
    u64 scaleDowns = 0;
    u64 hostDeaths = 0;
    std::size_t activeHosts = 0;
    std::size_t peakActiveHosts = 0;

    /// Latest cluster-job finish across all hosts.
    double horizonCycles = 0.0;
    double clockGHz = 0.0;

    /// Exact cluster-level completed-job latency quantiles (arrival
    /// at the router to final resolution, reroutes included).
    double p50LatencyCycles = 0.0;
    double p99LatencyCycles = 0.0;

    std::map<std::string, ClusterTenantStats> tenants;
    std::vector<HostSummary> hosts;

    /// Fraction of placements that landed on a key-resident host.
    double locality_hit_rate() const
    {
        return placements == 0
                   ? 0.0
                   : static_cast<double>(localityHits) /
                         static_cast<double>(placements);
    }

    /// Every admitted job reached exactly one terminal verdict.
    bool conserved() const
    {
        return submitted ==
               completed + failed + expired + shed + rejected;
    }

    telemetry::Json to_json() const;

    /// Publish the cluster.* gauges/counters into `reg`.
    void export_metrics(telemetry::MetricsRegistry &reg) const;
};

/// Handle returned by ClusterRouter::submit.
struct ClusterTicket
{
    ClusterJobId id = 0;
    std::shared_future<serve::JobResult> result;
};

/// The two-level router (see file comment).
class ClusterRouter
{
  public:
    explicit ClusterRouter(ClusterConfig cfg = ClusterConfig{});
    ~ClusterRouter();

    ClusterRouter(const ClusterRouter&) = delete;
    ClusterRouter& operator=(const ClusterRouter&) = delete;

    const ClusterConfig& config() const { return cfg_; }

    /**
     * Accept a job. Non-blocking and thread-safe; named workloads
     * resolve immediately (unknown name / empty trace throws
     * InvalidArgument here, never inside drain()). The future becomes
     * ready during a later drain() with the *cluster-level* verdict:
     * JobResult::arrivalCycle is the original router arrival, so
     * latency_cycles() spans reroutes.
     */
    ClusterTicket submit(serve::JobSpec spec);

    /**
     * Run rounds until every admitted job is resolved. Fires futures
     * and client callbacks on this thread; callbacks may submit()
     * follow-ups. Not reentrant.
     */
    void drain();

    /// Jobs admitted but not yet resolved.
    std::size_t in_flight() const;

    /// Hosts currently accepting placements.
    std::size_t active_hosts() const;

    /// Aggregate statistics over everything routed so far.
    ClusterStats stats() const;

    /// The cluster journal (empty when ClusterConfig::journal off).
    const ClusterJournal& journal() const { return journal_; }

    /**
     * Merged time-series view: the router's own cluster.* series
     * (one sample per drain round) plus every spawned host's engine
     * series re-namespaced "host<i>.<series>". Built on demand;
     * byte-identical at every POSEIDON_THREADS.
     */
    telemetry::Tsdb cluster_tsdb() const;

    /// A host's engine, or nullptr when that host never spawned.
    const serve::ServingEngine* host_engine(std::size_t host) const;

  private:
    /// One admitted-but-unresolved cluster job.
    struct Tracked
    {
        ClusterJobId id = 0;
        serve::JobSpec spec;          ///< callback stripped
        double originalArrival = 0.0; ///< router arrival
        u64 reroutes = 0;
        /// Host the live placement landed on (kNoHost before).
        std::size_t host = ClusterEvent::kNoHost;
        std::promise<serve::JobResult> promise;
        std::function<void(const serve::JobResult&)> callback;
    };

    /// Router-side host state.
    struct Host
    {
        std::unique_ptr<serve::ServingEngine> engine;
        bool active = false;
        bool alive = true;
        bool draining = false;
        bool deathLogged = false;
        double readyAtCycle = 0.0;
        double deathCycle = 0.0; ///< infinity = immortal
        /// Estimated cycle the host's cards free up (placement model).
        double freeAtCycle = 0.0;
        /// Resident tenant keys: tenant -> last-placement cycle (LRU).
        std::map<std::string, double> residentKeys;
        double residentKeyBytes = 0.0;
        u64 placed = 0;
        u64 rerouted = 0;
        u64 keyTransfers = 0;
        double keyTransferBytes = 0.0;
    };

    double key_bytes(const std::string &tenant) const;
    double host_key_capacity() const;
    double est_cost_cycles(const serve::JobSpec &spec);
    serve::ServingEngine& ensure_engine(std::size_t h);
    void autoscale_step(double cycle);
    void process_deaths(double clusterClock);
    std::size_t pick_host(const Tracked &t, double arrival,
                          double estCost, bool &localityHit,
                          bool &needTransfer);
    void place(Tracked t);
    void resolve(Tracked t, serve::JobResult r);
    void charge_key_transfer(std::size_t h, const std::string &tenant,
                             ClusterJobId job, double cycle);
    void sample_round(double clusterClock);

    ClusterConfig cfg_;
    std::vector<Host> hosts_;
    std::vector<HostDeath> deaths_;
    ClusterJournal journal_;
    telemetry::Tsdb tsdb_;

    /// Dedicated fault-free estimator card + signature cache backing
    /// the placement cost model.
    hw::PoseidonSim estimator_;
    std::unordered_map<u64, double> costCache_;

    double lastAutoscaleCycle_ = 0.0;
    double lastPressure_ = 0.0;
    std::size_t rrNext_ = 0;

    /// Guards pending_/nextId_ and aggregate counters (submit() may
    /// run on client threads; stats() reads between drains).
    mutable std::mutex mu_;
    std::deque<Tracked> pending_;
    ClusterJobId nextId_ = 1;
    std::map<ClusterJobId, Tracked> inFlight_;

    /// Results one round of host drains produced, in host order.
    std::vector<std::pair<ClusterJobId, serve::JobResult>> roundResults_;

    u64 submitted_ = 0;
    u64 completed_ = 0;
    u64 failed_ = 0;
    u64 expired_ = 0;
    u64 shed_ = 0;
    u64 rejected_ = 0;
    u64 rerouted_ = 0;
    u64 placements_ = 0;
    u64 localityHits_ = 0;
    u64 keyTransfers_ = 0;
    u64 keyEvictions_ = 0;
    double keyTransferBytes_ = 0.0;
    double keyTransferCycles_ = 0.0;
    u64 scaleUps_ = 0;
    u64 scaleDowns_ = 0;
    u64 hostDeaths_ = 0;
    std::size_t peakActiveHosts_ = 0;
    double horizon_ = 0.0;
    double roundClock_ = 0.0;
    std::map<std::string, ClusterTenantStats> tenants_;
    std::map<std::string, std::vector<double>> latencies_;
};

} // namespace poseidon::cluster

#endif // POSEIDON_CLUSTER_CLUSTER_H_
