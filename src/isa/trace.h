#ifndef POSEIDON_ISA_TRACE_H_
#define POSEIDON_ISA_TRACE_H_

/**
 * @file
 * Operator instruction traces and their aggregate statistics.
 *
 * A Trace is the unit of work handed to the hardware simulator. The
 * statistics view answers the paper's analysis questions directly:
 * which operators a basic operation uses (Table I), how the element
 * counts split across operators (Fig. 7), and how much HBM traffic an
 * operation generates.
 */

#include <array>
#include <map>
#include <vector>

#include "isa/op.h"

namespace poseidon::isa {

/// Element counts per operator kind.
struct OpCounts
{
    std::array<u64, 8> elems = {}; ///< indexed by OpKind

    u64& operator[](OpKind k) { return elems[static_cast<int>(k)]; }
    u64 operator[](OpKind k) const { return elems[static_cast<int>(k)]; }

    OpCounts& operator+=(const OpCounts &o);

    /// Total words moved through HBM.
    u64 hbm_words() const;

    /// Total compute elements (everything except HBM transfers).
    u64 compute_elems() const;
};

/// A sequence of operator instructions.
class Trace
{
  public:
    void emit(OpKind kind, u64 elems, u64 degree, BasicOp tag);

    /// Append another trace.
    void append(const Trace &o);

    /// Repeat this trace's contents `times` times (in place).
    void repeat(u64 times);

    const std::vector<Instr>& instrs() const { return instrs_; }
    bool empty() const { return instrs_.empty(); }
    std::size_t size() const { return instrs_.size(); }

    /// Aggregate element counts over the whole trace.
    OpCounts totals() const;

    /// Aggregate element counts per basic-operation tag.
    std::map<BasicOp, OpCounts> totals_by_tag() const;

    /// True iff the trace contains at least one instruction of `k`
    /// under tag `b` — reproduces the checkmarks of Table I.
    bool uses(BasicOp b, OpKind k) const;

    /**
     * Structural validation before replay: every NTT/INTT/AUTO
     * instruction must carry a power-of-two degree >= 2 (the per-poly
     * cost models divide by it). Throws poseidon::InvalidArgument on
     * the first malformed instruction.
     */
    void validate() const;

  private:
    std::vector<Instr> instrs_;
};

} // namespace poseidon::isa

#endif // POSEIDON_ISA_TRACE_H_
