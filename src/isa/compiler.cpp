#include "isa/compiler.h"

#include <cmath>
#include <string>

#include "common/check.h"
#include "telemetry/metrics.h"

namespace poseidon::isa {

namespace {

/// Shorthand: words of one full ciphertext (2 polys).
u64
ct_words(const OpShape &s)
{
    return 2 * s.limbs * s.n;
}

/**
 * Counts the instructions an emitter appends into the telemetry
 * registry ("isa.instrs.<BasicOp>"). Nested emitters (the keyswitch
 * inside CMult/Rotation) are charged to the outermost basic operation
 * only, matching how the trace tags attribute the work.
 */
class EmitMeter
{
  public:
    EmitMeter(const Trace &t, BasicOp tag)
        : t_(t), tag_(tag), before_(t.size())
    {
        ++depth();
    }

    ~EmitMeter()
    {
        if (--depth() > 0 || !telemetry::enabled()) return;
        double n = static_cast<double>(t_.size() - before_);
        auto &reg = telemetry::MetricsRegistry::global();
        reg.counter(std::string("isa.instrs.") + to_string(tag_)).add(n);
        reg.counter("isa.instrs.total").add(n);
    }

    EmitMeter(const EmitMeter&) = delete;
    EmitMeter& operator=(const EmitMeter&) = delete;

  private:
    static int& depth()
    {
        thread_local int d = 0;
        return d;
    }

    const Trace &t_;
    BasicOp tag_;
    std::size_t before_;
};

} // namespace

void
emit_hadd(Trace &t, const OpShape &s, BasicOp tag)
{
    EmitMeter meter(t, tag);
    t.emit(OpKind::HBM_RD, 2 * ct_words(s), s.n, tag); // two ciphertexts
    t.emit(OpKind::MA, 2 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::HBM_WR, ct_words(s), s.n, tag);
}

void
emit_pmult(Trace &t, const OpShape &s, BasicOp tag)
{
    EmitMeter meter(t, tag);
    // Ciphertext (2 polys) + plaintext (1 poly) in; MM on both halves.
    t.emit(OpKind::HBM_RD, 3 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::MM, 2 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::SBT, 2 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::HBM_WR, ct_words(s), s.n, tag);
}

void
emit_keyswitch(Trace &t, const OpShape &s, bool standalone, BasicOp tag)
{
    EmitMeter meter(t, tag);
    u64 D = s.digits();
    u64 ext = s.ext_limbs();
    u64 alpha = (s.limbs + D - 1) / D; // primes per digit

    if (standalone) {
        t.emit(OpKind::HBM_RD, s.limbs * s.n, s.n, tag);
    }

    // ModUp: input to coefficient domain, then per digit a base
    // conversion into the extended basis followed by NTT.
    t.emit(OpKind::INTT, s.limbs * s.n, s.n, tag);
    // RNSconv per digit: y_i = x_i * qhat_inv (alpha MM), then the
    // accumulation onto every extended limb (alpha MM + (alpha-1) MA
    // per target limb); alpha == 1 degenerates to a pure reduction.
    u64 convMM = D * (alpha + alpha * ext) * s.n;
    u64 convMA = D * ((alpha > 0 ? alpha - 1 : 0) * ext) * s.n;
    t.emit(OpKind::MM, convMM, s.n, tag);
    if (convMA) t.emit(OpKind::MA, convMA, s.n, tag);
    t.emit(OpKind::SBT, convMM, s.n, tag);
    t.emit(OpKind::NTT, D * ext * s.n, s.n, tag);

    // Inner products with the switching key: stream the key from HBM.
    t.emit(OpKind::HBM_RD, D * 2 * ext * s.n, s.n, tag);
    t.emit(OpKind::MM, D * 2 * ext * s.n, s.n, tag);
    t.emit(OpKind::MA, D * 2 * ext * s.n, s.n, tag);
    t.emit(OpKind::SBT, D * 2 * ext * s.n, s.n, tag);

    // ModDown of both accumulators: INTT, conv p->q, subtract, *P^-1,
    // NTT back to the evaluation domain.
    t.emit(OpKind::INTT, 2 * ext * s.n, s.n, tag);
    u64 mdMM = 2 * (s.K + s.K * s.limbs + s.limbs) * s.n;
    t.emit(OpKind::MM, mdMM, s.n, tag);
    t.emit(OpKind::MA, 2 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::SBT, mdMM, s.n, tag);
    t.emit(OpKind::NTT, 2 * s.limbs * s.n, s.n, tag);

    if (standalone) {
        t.emit(OpKind::HBM_WR, ct_words(s), s.n, tag);
    }
}

void
emit_cmult(Trace &t, const OpShape &s, BasicOp tag)
{
    EmitMeter meter(t, tag);
    t.emit(OpKind::HBM_RD, 2 * ct_words(s), s.n, tag);
    // Tensor product: d0, d2, and the two cross terms of d1.
    t.emit(OpKind::MM, 4 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::MA, s.limbs * s.n, s.n, tag);
    t.emit(OpKind::SBT, 4 * s.limbs * s.n, s.n, tag);
    // Relinearize d2 (on chip) and fold into (d0, d1).
    emit_keyswitch(t, s, /*standalone=*/false, tag);
    t.emit(OpKind::MA, 2 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::HBM_WR, ct_words(s), s.n, tag);
}

void
emit_rescale(Trace &t, const OpShape &s, BasicOp tag)
{
    EmitMeter meter(t, tag);
    POSEIDON_REQUIRE(s.limbs >= 2, "emit_rescale: nothing to drop");
    u64 rem = s.limbs - 1;
    t.emit(OpKind::HBM_RD, ct_words(s), s.n, tag);
    // Both polys: INTT of the dropped limb, then per remaining limb a
    // reduction, NTT, subtraction and multiply by q_l^{-1}.
    t.emit(OpKind::INTT, 2 * s.n, s.n, tag);
    t.emit(OpKind::SBT, 2 * rem * s.n, s.n, tag);
    t.emit(OpKind::NTT, 2 * rem * s.n, s.n, tag);
    t.emit(OpKind::MA, 4 * rem * s.n, s.n, tag);
    t.emit(OpKind::MM, 2 * rem * s.n, s.n, tag);
    t.emit(OpKind::HBM_WR, 2 * rem * s.n, s.n, tag);
}

void
emit_ntt_op(Trace &t, const OpShape &s, BasicOp tag)
{
    EmitMeter meter(t, tag);
    t.emit(OpKind::HBM_RD, s.limbs * s.n, s.n, tag);
    t.emit(OpKind::NTT, s.limbs * s.n, s.n, tag);
    t.emit(OpKind::SBT, s.limbs * s.n, s.n, tag);
    t.emit(OpKind::HBM_WR, s.limbs * s.n, s.n, tag);
}

void
emit_modup(Trace &t, const OpShape &s, BasicOp tag)
{
    EmitMeter meter(t, tag);
    u64 D = s.digits();
    u64 ext = s.ext_limbs();
    u64 alpha = (s.limbs + D - 1) / D;
    t.emit(OpKind::HBM_RD, s.limbs * s.n, s.n, tag);
    t.emit(OpKind::INTT, s.limbs * s.n, s.n, tag);
    u64 convMM = D * (alpha + alpha * ext) * s.n;
    t.emit(OpKind::MM, convMM, s.n, tag);
    t.emit(OpKind::SBT, convMM, s.n, tag);
    t.emit(OpKind::NTT, D * ext * s.n, s.n, tag);
    t.emit(OpKind::HBM_WR, D * ext * s.n, s.n, tag);
}

void
emit_moddown(Trace &t, const OpShape &s, BasicOp tag)
{
    EmitMeter meter(t, tag);
    u64 ext = s.ext_limbs();
    t.emit(OpKind::HBM_RD, ext * s.n, s.n, tag);
    t.emit(OpKind::INTT, ext * s.n, s.n, tag);
    u64 mdMM = (s.K + s.K * s.limbs + s.limbs) * s.n;
    t.emit(OpKind::MM, mdMM, s.n, tag);
    t.emit(OpKind::MA, s.limbs * s.n, s.n, tag);
    t.emit(OpKind::SBT, mdMM, s.n, tag);
    t.emit(OpKind::NTT, s.limbs * s.n, s.n, tag);
    t.emit(OpKind::HBM_WR, s.limbs * s.n, s.n, tag);
}

void
emit_rotation(Trace &t, const OpShape &s, BasicOp tag)
{
    EmitMeter meter(t, tag);
    t.emit(OpKind::HBM_RD, ct_words(s), s.n, tag);
    // Index mapping on both components (HFAuto), then keyswitch of the
    // permuted c1 and the final addition into c0.
    t.emit(OpKind::AUTO, 2 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::SBT, 2 * s.limbs * s.n, s.n, tag); // Eq. 4 index math
    emit_keyswitch(t, s, /*standalone=*/false, tag);
    t.emit(OpKind::MA, s.limbs * s.n, s.n, tag);
    t.emit(OpKind::HBM_WR, ct_words(s), s.n, tag);
}

void
emit_bootstrap(Trace &t, const BootstrapShape &bs, BasicOp tag)
{
    EmitMeter meter(t, tag);
    OpShape s = bs.base;
    u64 ns = bs.eff_slots();

    // ModRaise: read bottom-level ct, broadcast into the full chain.
    t.emit(OpKind::HBM_RD, 2 * s.n, s.n, tag);
    t.emit(OpKind::SBT, 2 * s.limbs * s.n, s.n, tag);
    t.emit(OpKind::NTT, 2 * s.limbs * s.n, s.n, tag);

    auto emit_linear_stage = [&](u64 radix) {
        // BSGS over a radix-`radix` butterfly stage: ~2*sqrt(radix)
        // rotations and `radix` diagonal multiplications.
        u64 n1 = static_cast<u64>(
            std::ceil(std::sqrt(static_cast<double>(radix))));
        u64 nb = (radix + n1 - 1) / n1;
        for (u64 g = 1; g < n1; ++g) emit_rotation(t, s, tag);
        for (u64 d = 0; d < radix; ++d) emit_pmult(t, s, tag);
        t.emit(OpKind::MA, 2 * (radix - 1) * s.limbs * s.n, s.n, tag);
        for (u64 b = 1; b < nb; ++b) emit_rotation(t, s, tag);
        if (s.limbs > 1) {
            emit_rescale(t, s, tag);
            --s.limbs;
        }
    };

    // CoeffToSlot: factored into ctsStages balanced radices.
    u64 ctsRadix = static_cast<u64>(std::llround(
        std::pow(static_cast<double>(ns), 1.0 / bs.ctsStages)));
    if (ctsRadix < 2) ctsRadix = 2;
    for (u64 st = 0; st < bs.ctsStages; ++st) emit_linear_stage(ctsRadix);

    // Split into real/imag halves: conjugation + two constant mults.
    emit_rotation(t, s, tag); // conjugation == automorphism+keyswitch
    for (int i = 0; i < 2; ++i) {
        emit_pmult(t, s, tag);
    }
    if (s.limbs > 1) {
        emit_rescale(t, s, tag);
        --s.limbs;
    }

    // EvalMod on both halves.
    for (int half = 0; half < 2; ++half) {
        for (u64 c = 0; c < bs.evalModCMults; ++c) {
            emit_cmult(t, s, tag);
            if (s.limbs > 1) {
                emit_rescale(t, s, tag);
                if (half == 1) --s.limbs;
            }
        }
        for (u64 p = 0; p < bs.evalModPMults; ++p) emit_pmult(t, s, tag);
        emit_rotation(t, s, tag); // conjugation for Im() extraction
    }

    // SlotToCoeff.
    u64 stcRadix = static_cast<u64>(std::llround(
        std::pow(static_cast<double>(ns), 1.0 / bs.stcStages)));
    if (stcRadix < 2) stcRadix = 2;
    for (u64 st = 0; st < bs.stcStages; ++st) emit_linear_stage(stcRadix);

    t.emit(OpKind::HBM_WR, 2 * s.limbs * s.n, s.n, tag);
}

} // namespace poseidon::isa
