#ifndef POSEIDON_ISA_OP_H_
#define POSEIDON_ISA_OP_H_

/**
 * @file
 * The Poseidon operator ISA.
 *
 * The paper's central idea is that every CKKS basic operation
 * decomposes into five reusable operators — Modular Addition (MA),
 * Modular Multiplication (MM), NTT/INTT, Automorphism, and Shared
 * Barrett Reduction (SBT) — plus explicit HBM transfers. This header
 * defines those operators as an instruction set; the compiler lowers
 * basic operations to instruction traces and the hw/ simulator prices
 * them in cycles, bytes and energy.
 */

#include <cstdint>
#include <string>

#include "common/modmath.h"

namespace poseidon::isa {

/// The five Poseidon operators plus HBM transfer pseudo-ops.
enum class OpKind : std::uint8_t {
    MA,      ///< element-wise modular addition
    MM,      ///< element-wise modular multiplication (Barrett)
    NTT,     ///< forward number theoretic transform
    INTT,    ///< inverse number theoretic transform
    AUTO,    ///< automorphism (coordinate permutation)
    SBT,     ///< standalone shared Barrett reduction
    HBM_RD,  ///< read words from HBM into the scratchpad
    HBM_WR,  ///< write words back to HBM
};

/// The FHE basic operations of the paper's Section II (trace tags).
enum class BasicOp : std::uint8_t {
    HAdd,
    PMult,
    CMult,
    Rescale,
    ModUp,
    ModDown,
    Keyswitch,
    Rotation,
    Conjugate,
    NttOnly,      ///< standalone NTT benchmark op
    Bootstrapping,
    Other,
};

/// One operator instruction.
struct Instr
{
    OpKind kind;
    /// Scalar elements processed (for NTT/INTT/AUTO: total points,
    /// i.e. limbs * N; for HBM ops: words moved).
    u64 elems;
    /// Ring degree backing this op (needed for NTT phase counts and
    /// automorphism sub-vector math); 0 for pure element-wise ops.
    u64 degree;
    /// Which basic operation emitted this instruction.
    BasicOp tag;
};

const char* to_string(OpKind k);
const char* to_string(BasicOp b);

} // namespace poseidon::isa

#endif // POSEIDON_ISA_OP_H_
