#ifndef POSEIDON_ISA_COMPILER_H_
#define POSEIDON_ISA_COMPILER_H_

/**
 * @file
 * Lowering of CKKS basic operations to Poseidon operator traces.
 *
 * Each emitter mirrors the software evaluator's control flow (see
 * ckks/evaluator.cpp) and the paper's operator decomposition (Table I):
 * the same MA/MM/NTT/Automorphism/SBT steps, with explicit HBM reads
 * for operands and keyswitching keys — the traffic that dominates FHE
 * accelerator time.
 *
 * Keyswitching is modeled with `digits` RNS digits (the default, one
 * digit per prime, matches the software library; benchmarks may lower
 * dnum to model grouped digits).
 */

#include "isa/trace.h"

namespace poseidon::isa {

/// Shape of the ciphertext an operation runs on.
struct OpShape
{
    u64 n = u64(1) << 16; ///< ring degree N
    u64 limbs = 45;       ///< current ciphertext primes (level+1)
    u64 K = 1;            ///< special primes
    u64 dnum = 0;         ///< keyswitch digits; 0 means one per prime

    u64 digits() const { return dnum == 0 ? limbs : dnum; }
    u64 ext_limbs() const { return limbs + K; }
};

// Every emitter appends to `t`; `tag` attributes the work (nested
// keyswitches inside Rotation/CMult keep the parent's tag so Fig. 8
// style breakdowns charge time to the basic operation the user called).

void emit_hadd(Trace &t, const OpShape &s, BasicOp tag = BasicOp::HAdd);
void emit_pmult(Trace &t, const OpShape &s, BasicOp tag = BasicOp::PMult);
void emit_cmult(Trace &t, const OpShape &s, BasicOp tag = BasicOp::CMult);
void emit_rescale(Trace &t, const OpShape &s,
                  BasicOp tag = BasicOp::Rescale);
void emit_ntt_op(Trace &t, const OpShape &s,
                 BasicOp tag = BasicOp::NttOnly);

/// Keyswitch of one polynomial already on chip (ModUp + inner products
/// + ModDown). `standalone` adds operand/result HBM traffic.
void emit_keyswitch(Trace &t, const OpShape &s, bool standalone = true,
                    BasicOp tag = BasicOp::Keyswitch);

/// ModUp / ModDown as standalone paper rows.
void emit_modup(Trace &t, const OpShape &s, BasicOp tag = BasicOp::ModUp);
void emit_moddown(Trace &t, const OpShape &s,
                  BasicOp tag = BasicOp::ModDown);

void emit_rotation(Trace &t, const OpShape &s,
                   BasicOp tag = BasicOp::Rotation);

/// Shape of a full packed bootstrapping invocation.
struct BootstrapShape
{
    OpShape base;          ///< shape at the top of the chain
    u64 slots = 0;         ///< packed slots (0 => N/2)
    u64 ctsStages = 3;     ///< factored CoeffToSlot stages
    u64 stcStages = 3;     ///< factored SlotToCoeff stages
    u64 evalModCMults = 14;///< ct-ct mults in EvalMod (Taylor + angle)
    u64 evalModPMults = 4; ///< constant mults in EvalMod

    u64 eff_slots() const { return slots == 0 ? base.n / 2 : slots; }
};

void emit_bootstrap(Trace &t, const BootstrapShape &bs,
                    BasicOp tag = BasicOp::Bootstrapping);

} // namespace poseidon::isa

#endif // POSEIDON_ISA_COMPILER_H_
