#include "isa/trace.h"

#include "common/check.h"
#include "common/modmath.h"

namespace poseidon::isa {

const char*
to_string(OpKind k)
{
    switch (k) {
      case OpKind::MA: return "MA";
      case OpKind::MM: return "MM";
      case OpKind::NTT: return "NTT";
      case OpKind::INTT: return "INTT";
      case OpKind::AUTO: return "Auto";
      case OpKind::SBT: return "SBT";
      case OpKind::HBM_RD: return "HBM_RD";
      case OpKind::HBM_WR: return "HBM_WR";
    }
    return "?";
}

const char*
to_string(BasicOp b)
{
    switch (b) {
      case BasicOp::HAdd: return "HAdd";
      case BasicOp::PMult: return "PMult";
      case BasicOp::CMult: return "CMult";
      case BasicOp::Rescale: return "Rescale";
      case BasicOp::ModUp: return "ModUp";
      case BasicOp::ModDown: return "ModDown";
      case BasicOp::Keyswitch: return "Keyswitch";
      case BasicOp::Rotation: return "Rotation";
      case BasicOp::Conjugate: return "Conjugate";
      case BasicOp::NttOnly: return "NTT";
      case BasicOp::Bootstrapping: return "Bootstrapping";
      case BasicOp::Other: return "Other";
    }
    return "?";
}

OpCounts&
OpCounts::operator+=(const OpCounts &o)
{
    for (std::size_t i = 0; i < elems.size(); ++i) elems[i] += o.elems[i];
    return *this;
}

u64
OpCounts::hbm_words() const
{
    return (*this)[OpKind::HBM_RD] + (*this)[OpKind::HBM_WR];
}

u64
OpCounts::compute_elems() const
{
    u64 total = 0;
    for (std::size_t i = 0; i < elems.size(); ++i) total += elems[i];
    return total - hbm_words();
}

void
Trace::emit(OpKind kind, u64 elems, u64 degree, BasicOp tag)
{
    if (elems == 0) return;
    instrs_.push_back(Instr{kind, elems, degree, tag});
}

void
Trace::append(const Trace &o)
{
    instrs_.insert(instrs_.end(), o.instrs_.begin(), o.instrs_.end());
}

void
Trace::repeat(u64 times)
{
    POSEIDON_REQUIRE(times >= 1, "Trace::repeat: times must be >= 1");
    std::vector<Instr> base = instrs_;
    instrs_.reserve(base.size() * times);
    for (u64 i = 1; i < times; ++i) {
        instrs_.insert(instrs_.end(), base.begin(), base.end());
    }
}

OpCounts
Trace::totals() const
{
    OpCounts c;
    for (const auto &in : instrs_) c[in.kind] += in.elems;
    return c;
}

std::map<BasicOp, OpCounts>
Trace::totals_by_tag() const
{
    std::map<BasicOp, OpCounts> m;
    for (const auto &in : instrs_) m[in.tag][in.kind] += in.elems;
    return m;
}

void
Trace::validate() const
{
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
        const Instr &in = instrs_[i];
        POSEIDON_REQUIRE(in.elems >= 1,
                         "Trace::validate: instr " << i << " ("
                         << to_string(in.kind)
                         << ") has zero elements");
        if (in.kind == OpKind::NTT || in.kind == OpKind::INTT ||
            in.kind == OpKind::AUTO) {
            POSEIDON_REQUIRE(in.degree >= 2 && is_pow2(in.degree),
                             "Trace::validate: instr " << i << " ("
                             << to_string(in.kind) << ") degree "
                             << in.degree
                             << " is not a power of two >= 2");
        }
    }
}

bool
Trace::uses(BasicOp b, OpKind k) const
{
    for (const auto &in : instrs_) {
        if (in.tag == b && in.kind == k && in.elems > 0) return true;
    }
    return false;
}

} // namespace poseidon::isa
