#ifndef POSEIDON_SERVE_HEALTH_H_
#define POSEIDON_SERVE_HEALTH_H_

/**
 * @file
 * Fleet health management: a per-card circuit breaker fed by the
 * fault statistics of every attempt the engine executes.
 *
 * The serving engine (PR 5) fails a faulty attempt over to another
 * card, but the fleet had no memory: a card that corrupts every job
 * kept receiving work. The HealthMonitor closes that loop. Each
 * completed attempt feeds two EWMAs on the *simulated* clock —
 * the failure rate (silent corruption / retry-budget overrun per
 * attempt) and the ECC-replay share of attempt cycles — and drives a
 * three-state breaker per card:
 *
 *           failure/retry EWMA over threshold
 *   CLOSED ---------------------------------------> OPEN
 *     ^                                               | cooldownCycles
 *     | probeSuccessesToClose clean probes            v elapse
 *     +-------------------------------------- HALF_OPEN
 *                (a faulty probe reopens, cooldown restarts;
 *                 maxProbeRoundFailures failed rounds => dead)
 *
 * OPEN quarantines the card: the engine stops offering it work, and
 * queued jobs flow to the remaining fleet. After `cooldownCycles` the
 * card turns HALF_OPEN and is re-admitted only via low-priority probe
 * jobs the engine synthesizes; `probeSuccessesToClose` consecutive
 * clean probes re-close the breaker (EWMAs reset — the card earns a
 * fresh record), while a faulty probe reopens it and restarts the
 * cooldown. A card whose probes fail `maxProbeRoundFailures` rounds
 * in a row is declared dead and never re-admitted.
 *
 * Every decision is a pure function of the attempt stream on the
 * simulated clock, so fleet health — like the schedule itself — is
 * bit-identical at every host thread count.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "hw/faults.h"

namespace poseidon::serve {

/// Circuit-breaker state of one card.
enum class BreakerState : unsigned {
    Closed,   ///< healthy: accepts normal work
    Open,     ///< quarantined: no work until the cooldown elapses
    HalfOpen, ///< probation: accepts probe jobs only
};

/// Short stable name ("Closed", "Open", "HalfOpen").
const char* to_string(BreakerState s);

/// Knobs of the per-card circuit breaker.
struct HealthConfig
{
    /// Master switch; off restores the memoryless PR-5 fleet.
    bool enabled = true;

    /// EWMA weight of the newest attempt (0 < alpha <= 1).
    double ewmaAlpha = 0.3;

    /// Breaker trips when the failed-attempt EWMA reaches this.
    double failureThreshold = 0.6;

    /// ... or when the ECC-replay share of attempt cycles (EWMA)
    /// reaches this — a card drowning in detected-uncorrected
    /// replays is degraded even when nothing is corrupted yet.
    double retryShareThreshold = 0.5;

    /// Attempts a card must have served before it may trip (shields
    /// a cold card from one unlucky first attempt).
    u64 minAttempts = 4;

    /// Simulated cycles a quarantined card sits OPEN before probing.
    double cooldownCycles = 5.0e6;

    /// Consecutive clean probes that re-close the breaker.
    u64 probeSuccessesToClose = 2;

    /// Consecutive failed probe *rounds* (each ending back in OPEN)
    /// before the card is declared dead and never re-admitted.
    u64 maxProbeRoundFailures = 8;
};

/// A quarantine-lifecycle event (exported to telemetry + the Chrome
/// trace's fleet-health track).
struct HealthEvent
{
    enum class Kind : unsigned {
        Quarantined, ///< breaker tripped CLOSED -> OPEN
        Probing,     ///< cooldown elapsed, OPEN -> HALF_OPEN
        Readmitted,  ///< probes passed, HALF_OPEN -> CLOSED
        Died,        ///< probe rounds exhausted; card is out for good
    };
    Kind kind = Kind::Quarantined;
    std::size_t card = 0;
    double cycle = 0.0; ///< simulated fleet-clock time of the event
    std::string reason;
};

/// Short stable name ("Quarantined", "Probing", ...).
const char* to_string(HealthEvent::Kind k);

/// Health ledger of one card.
struct CardHealth
{
    BreakerState state = BreakerState::Closed;
    bool dead = false; ///< terminal: probe rounds exhausted

    double ewmaFailure = 0.0;    ///< failed-attempt indicator EWMA
    double ewmaRetryShare = 0.0; ///< ECC-replay cycle share EWMA

    u64 attempts = 0;       ///< attempts since the last re-admission
    u64 failedAttempts = 0; ///< ... of which tripped the fault guard

    double openedAtCycle = 0.0; ///< last CLOSED/HALF_OPEN -> OPEN time
    u64 quarantines = 0;        ///< times the breaker tripped
    u64 probes = 0;             ///< probe attempts executed
    u64 probeSuccesses = 0;     ///< consecutive, current round
    u64 probeRoundFailures = 0; ///< consecutive failed rounds
};

/// Per-fleet circuit-breaker state machine. Not thread-safe: the
/// engine feeds it from the (single-threaded) completion-bookkeeping
/// phase of drain() only.
class HealthMonitor
{
  public:
    explicit HealthMonitor(std::size_t cards,
                           HealthConfig cfg = HealthConfig{});

    const HealthConfig& config() const { return cfg_; }
    std::size_t size() const { return cards_.size(); }
    const CardHealth& card(std::size_t i) const;

    /**
     * Feed one completed normal attempt: `failed` is the engine's
     * fault guard verdict (silent corruption or retry-budget
     * overrun), `attemptCycles` the modeled duration, `cycle` the
     * completion time. Returns true when this attempt tripped the
     * breaker CLOSED -> OPEN (the quarantine event is recorded).
     */
    bool record_attempt(std::size_t card, double cycle,
                        const hw::FaultStats &faults,
                        double attemptCycles, bool failed);

    /// May the card take normal work at `cycle`? (CLOSED only.)
    bool admissible(std::size_t card, double cycle) const;

    /// Does the card want a probe at `cycle`? True when OPEN past its
    /// cooldown, or already HALF_OPEN mid-round.
    bool wants_probe(std::size_t card, double cycle) const;

    /// Feed one probe outcome at `cycle` (transitions OPEN ->
    /// HALF_OPEN on the first probe of a round, then -> CLOSED after
    /// enough successes or back to OPEN on a failure).
    void record_probe(std::size_t card, double cycle, bool ok);

    /**
     * Earliest simulated cycle card `i` could accept *any* work at or
     * after `cycle`: `cycle` itself when CLOSED/HALF_OPEN, the
     * cooldown expiry when OPEN, +infinity when dead. The engine
     * folds this into its round clock so a fully-quarantined fleet
     * idles forward to the next probe window instead of stalling.
     */
    double available_at(std::size_t card, double cycle) const;

    /// True when no card can ever serve again (all dead).
    bool all_dead() const;

    /// Cards not declared dead (the denominator for failover
    /// exclusion: a job that faulted on every live card may rerun
    /// anywhere).
    std::size_t live_cards() const;

    /// Quarantine lifecycle, in occurrence order.
    const std::vector<HealthEvent>& events() const { return events_; }

    u64 quarantines() const;
    u64 readmissions() const { return readmissions_; }
    u64 probes() const;

  private:
    void trip(std::size_t card, double cycle, const std::string &why);

    HealthConfig cfg_;
    std::vector<CardHealth> cards_;
    std::vector<HealthEvent> events_;
    u64 readmissions_ = 0;
};

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_HEALTH_H_
