#include "serve/shard.h"

#include "common/check.h"
#include "hw/faults.h"

namespace poseidon::serve {

namespace {

std::vector<hw::HwConfig>
replicate(std::size_t cards, const hw::HwConfig &base)
{
    std::vector<hw::HwConfig> cfgs(cards, base);
    return cfgs;
}

} // namespace

ShardManager::ShardManager(std::size_t cards, const hw::HwConfig &base)
    : ShardManager(replicate(cards, base))
{
}

ShardManager::ShardManager(std::vector<hw::HwConfig> cards)
{
    POSEIDON_REQUIRE(!cards.empty(),
                     "ShardManager: the fleet needs at least one card");
    sims_.reserve(cards.size());
    for (std::size_t i = 0; i < cards.size(); ++i) {
        hw::HwConfig cfg = cards[i];
        cfg.faults.seed = hw::mix_seed(cfg.faults.seed, i);
        sims_.emplace_back(cfg);
    }
    stats_.resize(sims_.size());
}

const hw::PoseidonSim&
ShardManager::card(std::size_t i) const
{
    POSEIDON_REQUIRE(i < sims_.size(),
                     "ShardManager: card " << i << " out of range (fleet "
                                           << sims_.size() << ")");
    return sims_[i];
}

hw::SimResult
ShardManager::price(std::size_t i, const isa::Trace &trace, JobId job,
                    u64 attempt) const
{
    const hw::PoseidonSim &base = card(i);
    if (base.config().faults.ber <= 0.0) {
        // Reliable memory: the seed is never consulted, so the card's
        // simulator can run the trace directly.
        return base.run(trace);
    }
    hw::HwConfig cfg = base.config();
    cfg.faults.seed = hw::mix_seed(cfg.faults.seed, (job << 8) ^ attempt);
    return hw::PoseidonSim(cfg).run(trace);
}

void
ShardManager::journal_attempt(Journal &journal, std::size_t i,
                              JobId job, u64 attempt,
                              double startCycle, double endCycle,
                              double simCycles, bool failed) const
{
    POSEIDON_REQUIRE(i < sims_.size(),
                     "ShardManager: card " << i << " out of range (fleet "
                                           << sims_.size() << ")");
    JournalEvent start;
    start.kind = JournalEventKind::AttemptStart;
    start.job = job;
    start.cycle = startCycle;
    start.card = i;
    start.attempt = attempt;
    journal.append(std::move(start));

    JournalEvent end;
    end.kind = JournalEventKind::AttemptEnd;
    end.job = job;
    end.cycle = endCycle;
    end.card = i;
    end.attempt = attempt;
    end.value = simCycles;
    end.failed = failed;
    journal.append(std::move(end));
}

} // namespace poseidon::serve
