#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "serve/chaos.h"
#include "telemetry/tracer.h"
#include "workloads/workloads.h"

namespace poseidon::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string
derive_batch_key(const isa::Trace &trace)
{
    u64 deg = 0;
    for (const isa::Instr &in : trace.instrs()) {
        deg = std::max(deg, in.degree);
    }
    return "deg:" + std::to_string(deg);
}

/// Simulated-cycle bounds for the engine-owned latency histogram:
/// 1e4 .. 1e9 cycles, 1-2-5 series (33 us .. 3.3 s at 0.3 GHz).
const std::vector<double>&
latency_cycle_bounds()
{
    static const std::vector<double> kBounds = {
        1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6,
        5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
    };
    return kBounds;
}

/// The canonical probe program: one small HBM round trip with
/// element-wise and NTT work — enough memory traffic to exercise a
/// sick HBM stack, cheap enough to waste on a card under suspicion.
isa::Trace
make_probe_trace()
{
    const u64 elems = u64(1) << 14;
    isa::Trace t;
    t.emit(isa::OpKind::HBM_RD, elems, 0, isa::BasicOp::Other);
    t.emit(isa::OpKind::MM, elems, 0, isa::BasicOp::Other);
    t.emit(isa::OpKind::NTT, elems, 4096, isa::BasicOp::Other);
    t.emit(isa::OpKind::HBM_WR, elems, 0, isa::BasicOp::Other);
    return t;
}

} // namespace

const char*
to_string(JobState s)
{
    switch (s) {
      case JobState::Queued: return "Queued";
      case JobState::Completed: return "Completed";
      case JobState::Failed: return "Failed";
      case JobState::Expired: return "Expired";
      case JobState::Shed: return "Shed";
    }
    return "?";
}

double
ServeStats::throughput_jobs_per_sec() const
{
    if (horizonCycles <= 0.0 || clockGHz <= 0.0) return 0.0;
    double seconds = horizonCycles / (clockGHz * 1e9);
    return static_cast<double>(completed) / seconds;
}

double
ServeStats::fleet_occupancy() const
{
    if (cards.empty() || horizonCycles <= 0.0) return 0.0;
    return busyCycles /
           (horizonCycles * static_cast<double>(cards.size()));
}

telemetry::Json
ServeStats::to_json() const
{
    using telemetry::Json;
    Json j = Json::object();
    j.set("submitted", Json(submitted));
    j.set("completed", Json(completed));
    j.set("failed", Json(failed));
    j.set("expired", Json(expired));
    j.set("shed", Json(shed));
    j.set("retries", Json(retries));
    j.set("batches", Json(batches));
    j.set("max_queue_depth", Json(maxQueueDepth));
    j.set("quarantines", Json(quarantines));
    j.set("readmissions", Json(readmissions));
    j.set("probes", Json(probes));
    j.set("horizon_cycles", Json(horizonCycles));
    j.set("busy_cycles", Json(busyCycles));
    j.set("throughput_jobs_per_sec", Json(throughput_jobs_per_sec()));
    j.set("fleet_occupancy", Json(fleet_occupancy()));
    Json jt = Json::object();
    for (const auto &[name, t] : tenants) {
        Json one = Json::object();
        one.set("submitted", Json(t.submitted));
        one.set("completed", Json(t.completed));
        one.set("failed", Json(t.failed));
        one.set("expired", Json(t.expired));
        one.set("shed", Json(t.shed));
        one.set("attained_cycles", Json(t.attainedCycles));
        one.set("p50_latency_cycles", Json(t.p50LatencyCycles));
        one.set("p99_latency_cycles", Json(t.p99LatencyCycles));
        jt.set(name, std::move(one));
    }
    j.set("tenants", std::move(jt));
    Json jc = Json::array();
    for (std::size_t i = 0; i < cards.size(); ++i) {
        const CardStats &c = cards[i];
        Json one = Json::object();
        one.set("busy_cycles", Json(c.busyCycles));
        one.set("occupancy", Json(c.occupancy(horizonCycles)));
        one.set("jobs", Json(c.jobs));
        one.set("batches", Json(c.batches));
        one.set("failed_attempts", Json(c.failedAttempts));
        one.set("probes", Json(c.probes));
        if (i < health.size()) {
            const CardHealth &h = health[i];
            one.set("breaker",
                    Json(h.dead ? "Dead" : to_string(h.state)));
            one.set("quarantines", Json(h.quarantines));
        }
        jc.push_back(std::move(one));
    }
    j.set("cards", std::move(jc));
    return j;
}

void
ServeStats::export_metrics(telemetry::MetricsRegistry &reg) const
{
    reg.gauge("serve.cards").set(static_cast<double>(cards.size()));
    reg.gauge("serve.queue_depth_max")
        .set(static_cast<double>(maxQueueDepth));
    reg.gauge("serve.horizon_cycles").set(horizonCycles);
    reg.gauge("serve.throughput_jobs_per_sec")
        .set(throughput_jobs_per_sec());
    reg.gauge("serve.fleet_occupancy").set(fleet_occupancy());
    reg.gauge("serve.health.quarantines")
        .set(static_cast<double>(quarantines));
    reg.gauge("serve.health.readmissions")
        .set(static_cast<double>(readmissions));
    reg.gauge("serve.health.probes").set(static_cast<double>(probes));
    for (std::size_t i = 0; i < cards.size(); ++i) {
        reg.gauge("serve.card_occupancy." + std::to_string(i))
            .set(cards[i].occupancy(horizonCycles));
    }
    for (std::size_t i = 0; i < health.size(); ++i) {
        const CardHealth &h = health[i];
        // 0 = Closed, 1 = HalfOpen, 2 = Open, 3 = dead.
        double state = h.dead ? 3.0
                       : h.state == BreakerState::Open      ? 2.0
                       : h.state == BreakerState::HalfOpen  ? 1.0
                                                            : 0.0;
        reg.gauge("serve.health.state." + std::to_string(i))
            .set(state);
        reg.gauge("serve.health.failure_ewma." + std::to_string(i))
            .set(h.ewmaFailure);
        reg.gauge("serve.health.retry_share_ewma." + std::to_string(i))
            .set(h.ewmaRetryShare);
    }
    for (const auto &[name, t] : tenants) {
        reg.gauge("serve.tenant_submitted." + name)
            .set(static_cast<double>(t.submitted));
        reg.gauge("serve.tenant_completed." + name)
            .set(static_cast<double>(t.completed));
        reg.gauge("serve.tenant_failed." + name)
            .set(static_cast<double>(t.failed));
        reg.gauge("serve.tenant_expired." + name)
            .set(static_cast<double>(t.expired));
        reg.gauge("serve.tenant_shed." + name)
            .set(static_cast<double>(t.shed));
        reg.gauge("serve.tenant_attained_cycles." + name)
            .set(t.attainedCycles);
        reg.gauge("serve.tenant_p50_cycles." + name)
            .set(t.p50LatencyCycles);
        reg.gauge("serve.tenant_p99_cycles." + name)
            .set(t.p99LatencyCycles);
    }
}

ServingEngine::ServingEngine(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      shards_(cfg_.fleet.empty()
                  ? ShardManager(cfg_.cards, cfg_.card)
                  : ShardManager(cfg_.fleet)),
      sched_(cfg_.maxBatch),
      health_(shards_.size(), cfg_.health),
      chaos_(new ChaosInjector(ChaosSchedule::parse(cfg_.chaos))),
      probeTrace_(make_probe_trace()),
      probeSeq_(shards_.size(), 0),
      tsdb_(cfg_.tsdbCadenceCycles,
            std::max<std::size_t>(cfg_.tsdbCapacity, 2)),
      alerts_(telemetry::AlertRules::parse(cfg_.alertRules)),
      latencyHist_(latency_cycle_bounds())
{
    POSEIDON_REQUIRE(cfg_.dispatchCycles >= 0.0,
                     "ServingEngine: negative dispatch overhead");
    POSEIDON_REQUIRE(cfg_.tsdbCadenceCycles >= 0.0 &&
                         std::isfinite(cfg_.tsdbCadenceCycles),
                     "ServingEngine: negative or non-finite TSDB "
                     "sample cadence");
    POSEIDON_REQUIRE(alerts_.empty() || cfg_.tsdbCadenceCycles > 0.0,
                     "ServingEngine: alertRules need "
                     "tsdbCadenceCycles > 0 (alerts are evaluated at "
                     "TSDB sample ticks)");
    journal_.set_enabled(cfg_.journal);
    journal_.set_meta(shards_.card(0).config().clockGHz,
                      shards_.size());
    sched_.set_journal(cfg_.journal ? &journal_ : nullptr);
}

ServingEngine::~ServingEngine() = default;

JobTicket
ServingEngine::submit(JobSpec spec)
{
    if (!spec.workload.empty()) {
        workloads::Workload wl = workloads::find_workload(spec.workload);
        spec.trace = std::move(wl.trace);
        if (spec.name.empty()) spec.name = wl.name;
    }
    POSEIDON_REQUIRE(!spec.trace.empty(),
                     "ServingEngine::submit: job \"" << spec.name
                     << "\" carries neither a trace nor a workload");
    POSEIDON_REQUIRE(!spec.tenant.empty(),
                     "ServingEngine::submit: empty tenant");
    POSEIDON_REQUIRE(spec.retry.maxAttempts >= 1,
                     "ServingEngine::submit: job \"" << spec.name
                     << "\" has maxAttempts == 0 (it could never run)");
    POSEIDON_REQUIRE(spec.retry.backoffBaseCycles >= 0.0 &&
                         std::isfinite(spec.retry.backoffBaseCycles),
                     "ServingEngine::submit: negative or non-finite "
                     "backoffBaseCycles");
    POSEIDON_REQUIRE(spec.retry.backoffMultiplier >= 1.0,
                     "ServingEngine::submit: backoffMultiplier must "
                     "be >= 1, got " << spec.retry.backoffMultiplier);
    POSEIDON_REQUIRE(std::isfinite(spec.arrivalCycle) &&
                         spec.arrivalCycle >= 0.0,
                     "ServingEngine::submit: job \"" << spec.name
                     << "\" has a negative or non-finite arrival "
                        "cycle");
    POSEIDON_REQUIRE(spec.deadlineCycle >= spec.arrivalCycle,
                     "ServingEngine::submit: job \"" << spec.name
                     << "\" deadline " << spec.deadlineCycle
                     << " lies before its arrival "
                     << spec.arrivalCycle
                     << " (it could never be dispatched in time)");
    spec.trace.validate(); // reject malformed programs at the boundary
    if (spec.batchKey.empty()) {
        spec.batchKey = derive_batch_key(spec.trace);
    }

    Pending p;
    p.qj.spec = std::move(spec);
    JobTicket ticket;
    ticket.result = p.promise.get_future().share();

    std::lock_guard<std::mutex> lk(mu_);
    p.qj.id = nextId_++;
    ticket.id = p.qj.id;
    ++submitted_;
    ++tenants_[p.qj.spec.tenant].submitted;
    if (journal_.enabled()) {
        JournalEvent ev;
        ev.kind = JournalEventKind::Submitted;
        ev.job = p.qj.id;
        ev.cycle = p.qj.spec.arrivalCycle;
        ev.tenant = p.qj.spec.tenant;
        ev.name = p.qj.spec.name;
        ev.priority = p.qj.spec.priority;
        journal_.append(std::move(ev));
    }
    submissions_.push_back(std::move(p));
    if (cfg_.exportTelemetry) telemetry::count("serve.jobs.submitted");
    return ticket;
}

std::size_t
ServingEngine::queue_depth() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<std::size_t>(submitted_ - completed_ - failed_ -
                                    expired_ - shed_);
}

void
ServingEngine::finish_job(QueuedJob &&qj, JobResult r)
{
    std::promise<JobResult> promise;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = promises_.find(qj.id);
        POSEIDON_CHECK(it != promises_.end(),
                       "job " << qj.id << " finished twice");
        promise = std::move(it->second);
        promises_.erase(it);

        TenantStats &t = tenants_[r.tenant];
        switch (r.state) {
          case JobState::Completed:
            ++completed_;
            ++t.completed;
            latencies_[r.tenant].push_back(r.latency_cycles());
            // Simulated-cycle histogram feeding the TSDB's windowed
            // quantiles (drain thread only — deterministic).
            if (cfg_.tsdbCadenceCycles > 0.0) {
                latencyHist_.observe(r.latency_cycles());
            }
            break;
          case JobState::Failed:
            ++failed_;
            ++t.failed;
            break;
          case JobState::Expired:
            ++expired_;
            ++t.expired;
            break;
          case JobState::Shed:
            ++shed_;
            ++t.shed;
            break;
          case JobState::Queued:
            POSEIDON_CHECK(false, "finish_job with non-terminal state");
        }
        horizon_ = std::max(horizon_, r.finishCycle);
    }
    if (journal_.enabled()) {
        JournalEvent ev;
        switch (r.state) {
          case JobState::Completed:
            ev.kind = JournalEventKind::Completed;
            ev.value = r.latency_cycles();
            break;
          case JobState::Failed: ev.kind = JournalEventKind::Failed; break;
          case JobState::Expired: ev.kind = JournalEventKind::Expired; break;
          default: ev.kind = JournalEventKind::Shed; break;
        }
        ev.job = r.id;
        ev.cycle = r.finishCycle;
        ev.tenant = r.tenant;
        ev.name = r.name;
        ev.card = r.card;
        ev.attempt = r.attempts;
        ev.detail = r.error;
        journal_.append(std::move(ev));
    }
    if (cfg_.exportTelemetry && telemetry::enabled()) {
        double clock = shards_.card(0).config().clockGHz;
        switch (r.state) {
          case JobState::Completed: {
            telemetry::count("serve.jobs.completed");
            double us = r.latency_cycles() / (clock * 1e9) * 1e6;
            telemetry::MetricsRegistry::global()
                .histogram("serve.tenant_latency_us." + r.tenant)
                .observe(us);
            break;
          }
          case JobState::Failed:
            telemetry::count("serve.jobs.failed");
            break;
          case JobState::Expired:
            telemetry::count("serve.jobs.expired");
            break;
          case JobState::Shed:
            telemetry::count("serve.jobs.shed");
            break;
          default:
            break;
        }
    }
    // Fulfill outside the lock: the callback may re-enter submit().
    std::function<void(const JobResult &)> cb =
        std::move(qj.spec.callback);
    promise.set_value(r);
    if (cb) cb(r);
}

void
ServingEngine::shed_job(QueuedJob &&qj, double cycle, const char *why)
{
    JobResult r;
    r.id = qj.id;
    r.state = JobState::Shed;
    r.errorCode = ErrorCode::kOverloaded;
    r.tenant = qj.spec.tenant;
    r.name = qj.spec.name;
    r.attempts = qj.attempt;
    r.arrivalCycle = qj.spec.arrivalCycle;
    r.finishCycle = std::max(cycle, qj.spec.arrivalCycle);
    std::ostringstream msg;
    msg << "Overloaded: " << why << " (shed at cycle "
        << r.finishCycle << ")";
    r.error = msg.str();
    finish_job(std::move(qj), std::move(r));
}

void
ServingEngine::dispatch_probe(std::size_t card, double T)
{
    u64 seq = probeSeq_[card]++;
    hw::SimResult sim = shards_.price(card, probeTrace_, /*job=*/0,
                                      seq);
    if (chaos_->active()) {
        chaos_->perturb(card, /*job=*/0, seq, T, sim);
    }
    // The probe verdict mirrors the breaker's own trip conditions:
    // any silent corruption, or an ECC-replay share that would still
    // trip the degradation threshold, keeps the card quarantined.
    double retryShare =
        sim.cycles > 0.0 ? sim.faults.retryCycles / sim.cycles : 0.0;
    bool ok = sim.faults.silent == 0 &&
              retryShare < cfg_.health.retryShareThreshold;

    CardStats &cs = shards_.stats(card);
    double busy = cfg_.dispatchCycles + sim.cycles;
    cs.busyCycles += busy;
    cs.freeAtCycle = T + busy;
    ++cs.probes;
    health_.record_probe(card, T + busy, ok);
    if (journal_.enabled()) {
        JournalEvent ev;
        ev.kind = JournalEventKind::ProbeInteraction;
        ev.cycle = T; // job = 0: fleet-level event
        ev.card = card;
        ev.attempt = seq + 1;
        ev.value = busy;
        ev.failed = !ok;
        journal_.append(std::move(ev));
    }
    if (cfg_.exportTelemetry) {
        telemetry::count("serve.health.probes");
        if (!ok) telemetry::count("serve.health.probe_failures");
    }
}

void
ServingEngine::refresh_gauges()
{
    if (!cfg_.exportTelemetry || !telemetry::enabled()) return;
    telemetry::gauge_set("serve.queue_depth",
                         static_cast<double>(sched_.depth()));
    telemetry::gauge_set("serve.cards",
                         static_cast<double>(shards_.size()));
}

void
ServingEngine::export_health_trace() const
{
    telemetry::Tracer &tracer = telemetry::Tracer::global();
    if (!tracer.active() || health_.events().empty()) return;
    double clock = shards_.card(0).config().clockGHz;
    // Modeled cycles -> microseconds on the simulated-cycle process.
    auto us = [clock](double cycles) {
        return cycles / (clock * 1e9) * 1e6;
    };
    for (std::size_t c = 0; c < shards_.size(); ++c) {
        int tid = 400 + static_cast<int>(c);
        tracer.set_thread_name(telemetry::Tracer::kSimPid, tid,
                               "card" + std::to_string(c) + " health");
        double openAt = -1.0;
        std::string reason;
        for (const HealthEvent &e : health_.events()) {
            if (e.card != c) continue;
            bool opens = e.kind == HealthEvent::Kind::Quarantined;
            bool closes = e.kind == HealthEvent::Kind::Readmitted ||
                          e.kind == HealthEvent::Kind::Died;
            if (opens && openAt < 0.0) {
                openAt = e.cycle;
                reason = e.reason;
            } else if (closes && openAt >= 0.0) {
                telemetry::TraceEvent ev;
                ev.name = e.kind == HealthEvent::Kind::Died
                              ? "dead"
                              : "quarantine";
                ev.pid = telemetry::Tracer::kSimPid;
                ev.tid = tid;
                ev.tsUs = us(openAt);
                ev.durUs = us(e.cycle - openAt);
                ev.args.emplace_back("reason",
                                     telemetry::Json(reason));
                ev.args.emplace_back("open_cycle",
                                     telemetry::Json(openAt));
                ev.args.emplace_back("close_cycle",
                                     telemetry::Json(e.cycle));
                tracer.complete_event(std::move(ev));
                openAt = -1.0;
            }
        }
        if (openAt >= 0.0) { // still quarantined at drain end
            telemetry::TraceEvent ev;
            ev.name = "quarantine";
            ev.pid = telemetry::Tracer::kSimPid;
            ev.tid = tid;
            ev.tsUs = us(openAt);
            ev.durUs = us(std::max(horizon_, openAt) - openAt);
            ev.args.emplace_back("reason", telemetry::Json(reason));
            ev.args.emplace_back("open_cycle",
                                 telemetry::Json(openAt));
            tracer.complete_event(std::move(ev));
        }
    }
}

void
ServingEngine::export_job_flows(const BreakdownReport &br) const
{
    telemetry::Tracer &tracer = telemetry::Tracer::global();
    if (!tracer.active()) return;
    double clock = shards_.card(0).config().clockGHz;
    auto us = [clock](double cycles) {
        return cycles / (clock * 1e9) * 1e6;
    };
    // Stable per-tenant queue tracks (map order = name order).
    std::map<std::string, int> queueTid;
    for (const auto &[tenant, acc] : br.tenants) {
        (void)acc;
        int tid = 350 + static_cast<int>(queueTid.size());
        queueTid.emplace(tenant, tid);
        tracer.set_thread_name(telemetry::Tracer::kSimPid, tid,
                               "queue " + tenant);
    }
    for (std::size_t c = 0; c < shards_.size(); ++c) {
        tracer.set_thread_name(telemetry::Tracer::kSimPid,
                               300 + static_cast<int>(c),
                               "card" + std::to_string(c) + " serve");
    }
    for (const JobBreakdown &jb : br.jobs) {
        if (jb.attemptSpans.empty()) continue;
        int qTid = queueTid[jb.tenant];
        std::string label = "job" + std::to_string(jb.id);
        if (!jb.name.empty()) label += " " + jb.name;

        // Queue slice: first arrival until the first dispatch.
        const AttemptSpan &first = jb.attemptSpans.front();
        telemetry::TraceEvent q;
        q.name = label + " queued";
        q.pid = telemetry::Tracer::kSimPid;
        q.tid = qTid;
        q.tsUs = us(jb.firstArrivalCycle);
        q.durUs = us(first.dispatchCycle - jb.firstArrivalCycle);
        q.args.emplace_back("job", telemetry::Json(jb.id));
        q.args.emplace_back("prio", telemetry::Json(jb.priority));
        tracer.complete_event(std::move(q));
        tracer.flow_event('s', jb.id, label,
                          telemetry::Tracer::kSimPid, qTid,
                          us(jb.firstArrivalCycle));

        for (std::size_t i = 0; i < jb.attemptSpans.size(); ++i) {
            const AttemptSpan &at = jb.attemptSpans[i];
            int cardTid = 300 + static_cast<int>(at.card);
            telemetry::TraceEvent e;
            e.name = label + " attempt " + std::to_string(at.attempt);
            e.pid = telemetry::Tracer::kSimPid;
            e.tid = cardTid;
            e.tsUs = us(at.startCycle);
            e.durUs = us(at.endCycle - at.startCycle);
            e.args.emplace_back("job", telemetry::Json(jb.id));
            e.args.emplace_back("failed", telemetry::Json(at.failed));
            tracer.complete_event(std::move(e));
            bool last = i + 1 == jb.attemptSpans.size();
            tracer.flow_event(last ? 'f' : 't', jb.id, label,
                              telemetry::Tracer::kSimPid, cardTid,
                              us(at.startCycle));
        }
    }
}

void
ServingEngine::sample_tsdb(double cycle)
{
    // Every value below is simulated-clock state mutated only by the
    // drain thread (or read under mu_), so the sample stream — and
    // therefore the dump — is byte-identical at every thread count.
    {
        std::lock_guard<std::mutex> lk(mu_);
        tsdb_.record("serve.jobs.completed", cycle,
                     static_cast<double>(completed_));
        tsdb_.record("serve.jobs.failed", cycle,
                     static_cast<double>(failed_));
        tsdb_.record("serve.jobs.expired", cycle,
                     static_cast<double>(expired_));
        tsdb_.record("serve.jobs.shed", cycle,
                     static_cast<double>(shed_));
        tsdb_.record("serve.jobs.retried", cycle,
                     static_cast<double>(retries_));
        tsdb_.record("serve.batches", cycle,
                     static_cast<double>(batches_));
    }
    tsdb_.record("serve.queue_depth", cycle,
                 static_cast<double>(sched_.depth()));
    tsdb_.record("serve.health.live_cards", cycle,
                 static_cast<double>(health_.live_cards()));
    tsdb_.record("serve.health.quarantines", cycle,
                 static_cast<double>(health_.quarantines()));
    for (std::size_t c = 0; c < shards_.size(); ++c) {
        const std::string i = std::to_string(c);
        tsdb_.record("serve.card." + i + ".busy_cycles", cycle,
                     shards_.stats(c).busyCycles);
        const CardHealth &h = health_.card(c);
        double state = h.dead ? 3.0
                       : h.state == BreakerState::Open     ? 2.0
                       : h.state == BreakerState::HalfOpen ? 1.0
                                                           : 0.0;
        tsdb_.record("serve.card." + i + ".breaker", cycle, state);
    }
    tsdb_.record_histogram("serve.latency_cycles", cycle,
                           latencyHist_);

    if (alerts_.empty()) return;
    std::vector<telemetry::AlertTransition> edges =
        alerts_.evaluate(cycle, tsdb_);
    for (const telemetry::AlertTransition &t : edges) {
        const telemetry::AlertRule &rule = alerts_.rules().rules[t.rule];
        if (journal_.enabled()) {
            JournalEvent ev;
            ev.kind = JournalEventKind::AlertTransition;
            ev.cycle = cycle; // job = 0: fleet-level event
            ev.name = rule.str();
            ev.attempt = static_cast<u64>(t.rule) + 1; // 1-based rule
            ev.detail = t.text();
            if (!std::isnan(t.value)) ev.value = t.value;
            ev.failed = t.to == telemetry::AlertState::Firing;
            journal_.append(std::move(ev));
        }
        if (cfg_.exportTelemetry) {
            telemetry::count("serve.alerts.transitions");
            if (t.to == telemetry::AlertState::Firing) {
                telemetry::count("serve.alerts.fired");
            }
            if (t.from == telemetry::AlertState::Firing) {
                telemetry::count("serve.alerts.resolved");
            }
        }
        alertLog_.push_back(t);
    }
}

void
ServingEngine::export_alert_trace() const
{
    telemetry::Tracer &tracer = telemetry::Tracer::global();
    if (!tracer.active() || alerts_.empty()) return;
    double clock = shards_.card(0).config().clockGHz;
    auto us = [clock](double cycles) {
        return cycles / (clock * 1e9) * 1e6;
    };
    for (std::size_t r = 0; r < alerts_.rules().size(); ++r) {
        const telemetry::AlertRule &rule = alerts_.rules().rules[r];
        int tid = 450 + static_cast<int>(r);
        tracer.set_thread_name(telemetry::Tracer::kSimPid, tid,
                               "alert " + rule.metric);
        double firedAt = -1.0;
        auto close = [&](double endCycle) {
            telemetry::TraceEvent ev;
            ev.name = std::string("firing => ") +
                      telemetry::to_string(rule.severity);
            ev.pid = telemetry::Tracer::kSimPid;
            ev.tid = tid;
            ev.tsUs = us(firedAt);
            ev.durUs = us(endCycle - firedAt);
            ev.args.emplace_back("rule", telemetry::Json(rule.str()));
            ev.args.emplace_back("fired_cycle",
                                 telemetry::Json(firedAt));
            ev.args.emplace_back("end_cycle",
                                 telemetry::Json(endCycle));
            tracer.complete_event(std::move(ev));
            firedAt = -1.0;
        };
        for (const telemetry::AlertTransition &t : alertLog_) {
            if (t.rule != r) continue;
            if (t.to == telemetry::AlertState::Firing) {
                firedAt = t.cycle;
            } else if (t.from == telemetry::AlertState::Firing &&
                       firedAt >= 0.0) {
                close(t.cycle);
            }
        }
        if (firedAt >= 0.0) { // still firing at drain end
            close(std::max(horizon_, firedAt));
        }
    }
}

void
ServingEngine::drain()
{
    /// One card's work for the current round.
    struct Assignment
    {
        std::size_t card = 0;
        double startCycle = 0.0;
        std::vector<QueuedJob> batch;
        std::vector<hw::SimResult> results; // parallels batch
    };

    const bool chaosOn = chaos_->active();

    for (;;) {
        // ---- Ingest everything submitted since the last round (the
        // initial burst, or follow-ups from completion callbacks).
        {
            std::lock_guard<std::mutex> lk(mu_);
            for (Pending &p : submissions_) {
                promises_.emplace(p.qj.id, std::move(p.promise));
                if (journal_.enabled()) {
                    JournalEvent ev;
                    ev.kind = JournalEventKind::Admitted;
                    ev.job = p.qj.id;
                    ev.cycle = p.qj.spec.arrivalCycle;
                    journal_.append(std::move(ev));
                }
                sched_.enqueue(std::move(p.qj));
            }
            submissions_.clear();
            maxQueueDepth_ = std::max(
                maxQueueDepth_, static_cast<u64>(sched_.depth()));
        }

        // ---- Admission control: shed the lowest-priority (then
        // newest) work down to the configured depth, as typed
        // Overloaded results rather than silent queue timeouts.
        if (cfg_.maxQueueDepth > 0 &&
            sched_.depth() > cfg_.maxQueueDepth) {
            std::vector<QueuedJob> dropped =
                sched_.shed_to_depth(cfg_.maxQueueDepth);
            for (QueuedJob &qj : dropped) {
                shed_job(std::move(qj), clock_,
                         "queue depth exceeded the admission limit");
            }
            continue; // callbacks may have resubmitted
        }

        if (sched_.empty()) break;

        // ---- All cards dead: nothing will ever serve this queue.
        // Shed it as Overloaded instead of deadlocking.
        if (health_.all_dead()) {
            std::vector<QueuedJob> stranded = sched_.drain_all();
            for (QueuedJob &qj : stranded) {
                shed_job(std::move(qj), clock_,
                         "every card is quarantined beyond recovery");
            }
            continue;
        }

        // ---- The round time T: the earliest simulated cycle any
        // card can do *anything* — run a batch, or probe its way out
        // of quarantine. All decisions below read queue/clock state
        // at T only, so the schedule is host-timing-free.
        double t0 = kInf;
        for (std::size_t c = 0; c < shards_.size(); ++c) {
            double avail = health_.available_at(
                c, shards_.stats(c).freeAtCycle);
            t0 = std::min(t0, avail);
        }
        double tArr = sched_.earliest_head_arrival();
        double T = std::max(t0, tArr);
        POSEIDON_CHECK(std::isfinite(T), "serving clock diverged");
        clock_ = std::max(clock_, T);

        // ---- TSDB sampling: record one sample at every cadence grid
        // cycle the fleet clock has crossed. Part of the round's
        // single-threaded bookkeeping, so the sample stream is
        // host-timing-free like every other decision at T.
        if (cfg_.tsdbCadenceCycles > 0.0) {
            while (nextSampleCycle_ <= T) {
                sample_tsdb(nextSampleCycle_);
                nextSampleCycle_ += cfg_.tsdbCadenceCycles;
            }
        }

        // ---- Offer T to every card available at T, in (available,
        // index) order. Quarantined cards whose cooldown elapsed get
        // a probe instead of work; OPEN cards inside their cooldown
        // and dead cards are skipped entirely.
        std::vector<std::size_t> order;
        for (std::size_t c = 0; c < shards_.size(); ++c) {
            if (health_.available_at(c, shards_.stats(c).freeAtCycle)
                <= T) {
                order.push_back(c);
            }
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return shards_.stats(a).freeAtCycle <
                                    shards_.stats(b).freeAtCycle;
                         });

        // Probes first: a card on probation re-earns admission with
        // synthesized low-priority work, never with client jobs.
        bool probed = false;
        for (std::size_t c : order) {
            if (health_.wants_probe(c, T)) {
                dispatch_probe(c, T);
                probed = true;
            }
        }

        // The failover filter for each card: skip jobs that already
        // faulted on it, unless the job has faulted on every live
        // card (then exclusion is waived — there is nowhere else).
        std::size_t live = health_.live_cards();
        auto excluded_from = [&](std::size_t card) {
            return JobFilter([this, card, live](const QueuedJob &j) {
                if (j.faultedCards.empty()) return false;
                std::size_t liveFaulted = 0;
                for (std::size_t f : j.faultedCards) {
                    if (f < shards_.size() &&
                        !health_.card(f).dead) {
                        ++liveFaulted;
                    }
                }
                if (liveFaulted >= live) return false; // waived
                return j.has_faulted_on(card);
            });
        };

        std::vector<ExpiredJob> expired;
        std::vector<Assignment> round;
        for (std::size_t c : order) {
            if (!health_.admissible(c, T)) continue;
            if (shards_.stats(c).freeAtCycle > T) continue; // probing
            std::vector<QueuedJob> batch =
                sched_.pick_batch(c, T, expired, excluded_from(c));
            if (batch.empty()) continue;
            Assignment a;
            a.card = c;
            a.startCycle = T;
            a.batch = std::move(batch);
            a.results.resize(a.batch.size());
            round.push_back(std::move(a));
        }

        // Dispatch-time deadline misses terminate before any
        // completion of this round (they happen at T).
        for (ExpiredJob &e : expired) {
            JobResult r;
            r.id = e.job.id;
            r.state = JobState::Expired;
            r.errorCode = ErrorCode::kOverloaded;
            r.tenant = e.job.spec.tenant;
            r.name = e.job.spec.name;
            r.attempts = e.job.attempt;
            r.arrivalCycle = e.job.spec.arrivalCycle;
            r.finishCycle = e.expiredAtCycle;
            std::ostringstream msg;
            msg << "deadline " << e.job.spec.deadlineCycle
                << " passed before dispatch at cycle "
                << e.expiredAtCycle;
            r.error = msg.str();
            finish_job(std::move(e.job), std::move(r));
        }

        if (round.empty()) {
            if (probed) continue; // probes advanced some card clocks
            if (sched_.empty()) continue; // expiries emptied the queue
            // Every available card is excluded from every eligible
            // head, or all free cards are quarantined. Idle forward
            // to the next event: a busy card releasing, a cooldown
            // expiring, or a future arrival.
            double tNext = kInf;
            for (std::size_t c = 0; c < shards_.size(); ++c) {
                double avail = health_.available_at(
                    c, shards_.stats(c).freeAtCycle);
                if (avail > T) tNext = std::min(tNext, avail);
            }
            double arr = sched_.earliest_head_arrival();
            if (arr > T) tNext = std::min(tNext, arr);
            POSEIDON_CHECK(std::isfinite(tNext),
                           "serving engine stalled at cycle " << T);
            for (std::size_t c : order) {
                if (shards_.stats(c).freeAtCycle < tNext) {
                    shards_.stats(c).freeAtCycle = tNext;
                }
            }
            continue;
        }

        // ---- Price every attempt of the round concurrently on the
        // host pool. Pricing (and chaos injection) is a pure function
        // of (card, trace, job, attempt, dispatch cycle), so chunk
        // order cannot change any modeled number.
        std::vector<std::pair<std::size_t, std::size_t>> flat;
        for (std::size_t ai = 0; ai < round.size(); ++ai) {
            for (std::size_t ji = 0; ji < round[ai].batch.size(); ++ji) {
                flat.emplace_back(ai, ji);
            }
        }
        parallel::parallel_for(
            0, flat.size(), 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t f = lo; f < hi; ++f) {
                    auto [ai, ji] = flat[f];
                    Assignment &a = round[ai];
                    const QueuedJob &qj = a.batch[ji];
                    a.results[ji] = shards_.price(
                        a.card, qj.spec.trace, qj.id, qj.attempt);
                    if (chaosOn) {
                        chaos_->perturb(a.card, qj.id, qj.attempt,
                                        a.startCycle, a.results[ji]);
                    }
                }
            },
            "serve.price");

        // ---- Completion bookkeeping, in card order (deterministic).
        for (Assignment &a : round) {
            CardStats &cs = shards_.stats(a.card);
            double cum = a.startCycle + cfg_.dispatchCycles;
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++batches_;
            }
            ++cs.batches;
            for (std::size_t ji = 0; ji < a.batch.size(); ++ji) {
                QueuedJob &qj = a.batch[ji];
                hw::SimResult &sim = a.results[ji];
                double start = cum;
                cum += sim.cycles;
                ++cs.jobs;
                sched_.charge(qj.spec.tenant, sim.cycles);
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    tenants_[qj.spec.tenant].attainedCycles +=
                        sim.cycles;
                }

                u64 attemptsUsed = qj.attempt + 1;
                bool silent = sim.faults.silent > 0;
                bool overBudget = sim.faults.retryCycles >
                                  qj.spec.retry.retryCycleBudget;
                bool failedAttempt = silent || overBudget;
                if (journal_.enabled()) {
                    shards_.journal_attempt(journal_, a.card, qj.id,
                                            attemptsUsed, start, cum,
                                            sim.cycles,
                                            failedAttempt);
                }

                // Feed the circuit breaker; a trip quarantines the
                // card from the next round on (queued work flows to
                // the rest of the fleet automatically).
                bool tripped = health_.record_attempt(
                    a.card, cum, sim.faults, sim.cycles,
                    failedAttempt);
                if (tripped && cfg_.exportTelemetry) {
                    telemetry::count("serve.health.quarantines");
                }

                if (failedAttempt) {
                    ++cs.failedAttempts;
                    const RetryPolicy &rp = qj.spec.retry;
                    if (attemptsUsed < rp.maxAttempts) {
                        // Exponential backoff on the simulated clock;
                        // skip the retry outright when it cannot meet
                        // the deadline anyway.
                        double backoff =
                            rp.backoffBaseCycles *
                            std::pow(rp.backoffMultiplier,
                                     static_cast<double>(
                                         attemptsUsed - 1));
                        double nextArrival = cum + backoff;
                        double estCost =
                            cfg_.dispatchCycles + sim.cycles;
                        if (nextArrival + estCost <=
                            qj.spec.deadlineCycle) {
                            qj.attempt = attemptsUsed;
                            if (!qj.has_faulted_on(a.card)) {
                                qj.faultedCards.push_back(a.card);
                            }
                            qj.spec.arrivalCycle = nextArrival;
                            if (journal_.enabled()) {
                                JournalEvent fr;
                                fr.kind =
                                    JournalEventKind::FaultRetry;
                                fr.job = qj.id;
                                fr.cycle = cum;
                                fr.card = a.card;
                                fr.attempt = attemptsUsed;
                                fr.detail =
                                    silent
                                        ? "silent corruption past ECC"
                                        : "ECC retry budget exceeded";
                                journal_.append(std::move(fr));
                                JournalEvent bo;
                                bo.kind = JournalEventKind::
                                    BackoffScheduled;
                                bo.job = qj.id;
                                bo.cycle = cum;
                                bo.attempt = attemptsUsed;
                                bo.value = nextArrival;
                                journal_.append(std::move(bo));
                            }
                            {
                                std::lock_guard<std::mutex> lk(mu_);
                                ++retries_;
                            }
                            if (cfg_.exportTelemetry) {
                                telemetry::count(
                                    "serve.jobs.retried");
                            }
                            sched_.enqueue(std::move(qj));
                            continue;
                        }
                    }
                    JobResult r;
                    r.id = qj.id;
                    r.state = JobState::Failed;
                    r.errorCode = ErrorCode::kFaultDetected;
                    r.tenant = qj.spec.tenant;
                    r.name = qj.spec.name;
                    r.card = a.card;
                    r.attempts = attemptsUsed;
                    r.arrivalCycle = qj.spec.arrivalCycle;
                    r.startCycle = start;
                    r.finishCycle = cum;
                    std::ostringstream msg;
                    msg << (silent ? "silent corruption past ECC"
                                   : "ECC retry budget exceeded")
                        << " on card " << a.card << " (attempt "
                        << attemptsUsed << "/"
                        << qj.spec.retry.maxAttempts << ")";
                    if (attemptsUsed < qj.spec.retry.maxAttempts) {
                        msg << "; retry skipped: backoff + estimated "
                               "cost cannot meet deadline "
                            << qj.spec.deadlineCycle;
                    }
                    r.error = msg.str();
                    finish_job(std::move(qj), std::move(r));
                    continue;
                }

                JobResult r;
                r.id = qj.id;
                r.state = JobState::Completed;
                r.tenant = qj.spec.tenant;
                r.name = qj.spec.name;
                r.card = a.card;
                r.attempts = attemptsUsed;
                r.arrivalCycle = qj.spec.arrivalCycle;
                r.startCycle = start;
                r.finishCycle = cum;
                r.sim = std::move(sim);
                finish_job(std::move(qj), std::move(r));
            }
            cs.busyCycles += cum - a.startCycle;
            cs.freeAtCycle = cum;
        }
        refresh_gauges();
    }

    refresh_gauges();
    export_health_trace();
    if (cfg_.tsdbCadenceCycles > 0.0) {
        // Final flush at the serving horizon, so the last samples see
        // the terminal state; the grid then resumes past it.
        double end;
        {
            std::lock_guard<std::mutex> lk(mu_);
            end = std::max(clock_, horizon_);
        }
        sample_tsdb(end);
        while (nextSampleCycle_ <= end) {
            nextSampleCycle_ += cfg_.tsdbCadenceCycles;
        }
        export_alert_trace();
        if (cfg_.exportTelemetry && telemetry::enabled()) {
            telemetry::gauge_set(
                "serve.alerts.firing",
                static_cast<double>(alerts_.firing()));
        }
    }
    if (cfg_.exportTelemetry && telemetry::enabled()) {
        stats().export_metrics(telemetry::MetricsRegistry::global());
    }
    if (journal_.enabled() && !journal_.empty()) {
        // Every accepted job is terminal here, so the journal
        // decomposes cleanly; the conservation invariant inside
        // decompose() doubles as an end-of-drain self-check.
        BreakdownReport br = decompose(journal_);
        if (cfg_.exportTelemetry && telemetry::enabled()) {
            br.export_metrics(telemetry::MetricsRegistry::global(),
                              breakdownExportedJobs_);
            if (!cfg_.slo.empty()) {
                SloReport slo = evaluate_slo(br, cfg_.slo);
                slo.export_metrics(
                    telemetry::MetricsRegistry::global());
                if (slo.alerts > 0) {
                    telemetry::count(
                        "serve.slo.alert_events",
                        static_cast<double>(slo.alerts));
                }
            }
        }
        export_job_flows(br);
        breakdownExportedJobs_ = br.jobs.size();
    }
}

ServeStats
ServingEngine::stats() const
{
    ServeStats s;
    std::lock_guard<std::mutex> lk(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.expired = expired_;
    s.shed = shed_;
    s.retries = retries_;
    s.batches = batches_;
    s.maxQueueDepth = maxQueueDepth_;
    s.quarantines = health_.quarantines();
    s.readmissions = health_.readmissions();
    s.probes = health_.probes();
    s.horizonCycles = horizon_;
    s.clockGHz = shards_.card(0).config().clockGHz;
    s.tenants = tenants_;
    for (auto &[tenant, t] : s.tenants) {
        auto it = latencies_.find(tenant);
        if (it != latencies_.end()) {
            t.p50LatencyCycles =
                telemetry::exact_quantile(it->second, 0.50);
            t.p99LatencyCycles =
                telemetry::exact_quantile(it->second, 0.99);
        }
    }
    s.cards = shards_.stats();
    for (const CardStats &c : s.cards) s.busyCycles += c.busyCycles;
    s.health.reserve(health_.size());
    for (std::size_t i = 0; i < health_.size(); ++i) {
        s.health.push_back(health_.card(i));
    }
    return s;
}

} // namespace poseidon::serve
