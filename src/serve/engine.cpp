#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "workloads/workloads.h"

namespace poseidon::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exact quantile of a latency sample (linear-interpolation free:
/// nearest-rank, which is reproducible and monotone).
double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty()) return 0.0;
    std::sort(sorted.begin(), sorted.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    return sorted[rank - 1];
}

std::string
derive_batch_key(const isa::Trace &trace)
{
    u64 deg = 0;
    for (const isa::Instr &in : trace.instrs()) {
        deg = std::max(deg, in.degree);
    }
    return "deg:" + std::to_string(deg);
}

} // namespace

const char*
to_string(JobState s)
{
    switch (s) {
      case JobState::Queued: return "Queued";
      case JobState::Completed: return "Completed";
      case JobState::Failed: return "Failed";
      case JobState::Expired: return "Expired";
    }
    return "?";
}

double
ServeStats::throughput_jobs_per_sec() const
{
    if (horizonCycles <= 0.0 || clockGHz <= 0.0) return 0.0;
    double seconds = horizonCycles / (clockGHz * 1e9);
    return static_cast<double>(completed) / seconds;
}

double
ServeStats::fleet_occupancy() const
{
    if (cards.empty() || horizonCycles <= 0.0) return 0.0;
    return busyCycles /
           (horizonCycles * static_cast<double>(cards.size()));
}

telemetry::Json
ServeStats::to_json() const
{
    using telemetry::Json;
    Json j = Json::object();
    j.set("submitted", Json(submitted));
    j.set("completed", Json(completed));
    j.set("failed", Json(failed));
    j.set("expired", Json(expired));
    j.set("retries", Json(retries));
    j.set("batches", Json(batches));
    j.set("max_queue_depth", Json(maxQueueDepth));
    j.set("horizon_cycles", Json(horizonCycles));
    j.set("busy_cycles", Json(busyCycles));
    j.set("throughput_jobs_per_sec", Json(throughput_jobs_per_sec()));
    j.set("fleet_occupancy", Json(fleet_occupancy()));
    Json jt = Json::object();
    for (const auto &[name, t] : tenants) {
        Json one = Json::object();
        one.set("completed", Json(t.completed));
        one.set("failed", Json(t.failed));
        one.set("expired", Json(t.expired));
        one.set("attained_cycles", Json(t.attainedCycles));
        one.set("p50_latency_cycles", Json(t.p50LatencyCycles));
        one.set("p99_latency_cycles", Json(t.p99LatencyCycles));
        jt.set(name, std::move(one));
    }
    j.set("tenants", std::move(jt));
    Json jc = Json::array();
    for (const CardStats &c : cards) {
        Json one = Json::object();
        one.set("busy_cycles", Json(c.busyCycles));
        one.set("occupancy", Json(c.occupancy(horizonCycles)));
        one.set("jobs", Json(c.jobs));
        one.set("batches", Json(c.batches));
        one.set("failed_attempts", Json(c.failedAttempts));
        jc.push_back(std::move(one));
    }
    j.set("cards", std::move(jc));
    return j;
}

void
ServeStats::export_metrics(telemetry::MetricsRegistry &reg) const
{
    reg.gauge("serve.cards").set(static_cast<double>(cards.size()));
    reg.gauge("serve.queue_depth_max")
        .set(static_cast<double>(maxQueueDepth));
    reg.gauge("serve.horizon_cycles").set(horizonCycles);
    reg.gauge("serve.throughput_jobs_per_sec")
        .set(throughput_jobs_per_sec());
    reg.gauge("serve.fleet_occupancy").set(fleet_occupancy());
    for (std::size_t i = 0; i < cards.size(); ++i) {
        reg.gauge("serve.card_occupancy." + std::to_string(i))
            .set(cards[i].occupancy(horizonCycles));
    }
    for (const auto &[name, t] : tenants) {
        reg.gauge("serve.tenant_p50_cycles." + name)
            .set(t.p50LatencyCycles);
        reg.gauge("serve.tenant_p99_cycles." + name)
            .set(t.p99LatencyCycles);
    }
}

ServingEngine::ServingEngine(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      shards_(cfg_.fleet.empty()
                  ? ShardManager(cfg_.cards, cfg_.card)
                  : ShardManager(cfg_.fleet)),
      sched_(cfg_.maxBatch)
{
    POSEIDON_REQUIRE(cfg_.dispatchCycles >= 0.0,
                     "ServingEngine: negative dispatch overhead");
}

ServingEngine::~ServingEngine() = default;

JobTicket
ServingEngine::submit(JobSpec spec)
{
    if (!spec.workload.empty()) {
        workloads::Workload wl = workloads::find_workload(spec.workload);
        spec.trace = std::move(wl.trace);
        if (spec.name.empty()) spec.name = wl.name;
    }
    POSEIDON_REQUIRE(!spec.trace.empty(),
                     "ServingEngine::submit: job \"" << spec.name
                     << "\" carries neither a trace nor a workload");
    POSEIDON_REQUIRE(!spec.tenant.empty(),
                     "ServingEngine::submit: empty tenant");
    spec.trace.validate(); // reject malformed programs at the boundary
    if (spec.batchKey.empty()) {
        spec.batchKey = derive_batch_key(spec.trace);
    }

    Pending p;
    p.qj.spec = std::move(spec);
    JobTicket ticket;
    ticket.result = p.promise.get_future().share();

    std::lock_guard<std::mutex> lk(mu_);
    p.qj.id = nextId_++;
    ticket.id = p.qj.id;
    ++submitted_;
    submissions_.push_back(std::move(p));
    if (cfg_.exportTelemetry) telemetry::count("serve.jobs.submitted");
    return ticket;
}

std::size_t
ServingEngine::queue_depth() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<std::size_t>(submitted_ - completed_ - failed_ -
                                    expired_);
}

void
ServingEngine::finish_job(QueuedJob &&qj, JobResult r)
{
    std::promise<JobResult> promise;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = promises_.find(qj.id);
        POSEIDON_CHECK(it != promises_.end(),
                       "job " << qj.id << " finished twice");
        promise = std::move(it->second);
        promises_.erase(it);

        TenantStats &t = tenants_[r.tenant];
        switch (r.state) {
          case JobState::Completed:
            ++completed_;
            ++t.completed;
            latencies_[r.tenant].push_back(r.latency_cycles());
            break;
          case JobState::Failed:
            ++failed_;
            ++t.failed;
            break;
          case JobState::Expired:
            ++expired_;
            ++t.expired;
            break;
          case JobState::Queued:
            POSEIDON_CHECK(false, "finish_job with non-terminal state");
        }
        horizon_ = std::max(horizon_, r.finishCycle);
    }
    if (cfg_.exportTelemetry && telemetry::enabled()) {
        double clock = shards_.card(0).config().clockGHz;
        switch (r.state) {
          case JobState::Completed: {
            telemetry::count("serve.jobs.completed");
            double us = r.latency_cycles() / (clock * 1e9) * 1e6;
            telemetry::MetricsRegistry::global()
                .histogram("serve.tenant_latency_us." + r.tenant)
                .observe(us);
            break;
          }
          case JobState::Failed:
            telemetry::count("serve.jobs.failed");
            break;
          case JobState::Expired:
            telemetry::count("serve.jobs.expired");
            break;
          default:
            break;
        }
    }
    // Fulfill outside the lock: the callback may re-enter submit().
    std::function<void(const JobResult &)> cb =
        std::move(qj.spec.callback);
    promise.set_value(r);
    if (cb) cb(r);
}

void
ServingEngine::refresh_gauges()
{
    if (!cfg_.exportTelemetry || !telemetry::enabled()) return;
    telemetry::gauge_set("serve.queue_depth",
                         static_cast<double>(sched_.depth()));
    telemetry::gauge_set("serve.cards",
                         static_cast<double>(shards_.size()));
}

void
ServingEngine::drain()
{
    /// One card's work for the current round.
    struct Assignment
    {
        std::size_t card = 0;
        double startCycle = 0.0;
        std::vector<QueuedJob> batch;
        std::vector<hw::SimResult> results; // parallels batch
    };

    for (;;) {
        // ---- Ingest everything submitted since the last round (the
        // initial burst, or follow-ups from completion callbacks).
        {
            std::lock_guard<std::mutex> lk(mu_);
            for (Pending &p : submissions_) {
                promises_.emplace(p.qj.id, std::move(p.promise));
                sched_.enqueue(std::move(p.qj));
            }
            submissions_.clear();
            maxQueueDepth_ = std::max(
                maxQueueDepth_, static_cast<u64>(sched_.depth()));
        }
        if (sched_.empty()) break;

        // ---- The round time T: the earliest simulated cycle any
        // dispatch can start. All decisions below read queue/clock
        // state at T only, so the schedule is host-timing-free.
        double t0 = kInf;
        for (std::size_t c = 0; c < shards_.size(); ++c) {
            t0 = std::min(t0, shards_.stats(c).freeAtCycle);
        }
        double tArr = sched_.earliest_head_arrival();
        double T = std::max(t0, tArr);
        POSEIDON_CHECK(std::isfinite(T), "serving clock diverged");

        // ---- Offer T to every card already free at T, in
        // (freeAt, index) order.
        std::vector<std::size_t> order;
        for (std::size_t c = 0; c < shards_.size(); ++c) {
            if (shards_.stats(c).freeAtCycle <= T) order.push_back(c);
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return shards_.stats(a).freeAtCycle <
                                    shards_.stats(b).freeAtCycle;
                         });

        std::vector<ExpiredJob> expired;
        std::vector<Assignment> round;
        for (std::size_t c : order) {
            std::vector<QueuedJob> batch =
                sched_.pick_batch(c, shards_.size(), T, expired);
            if (batch.empty()) continue;
            Assignment a;
            a.card = c;
            a.startCycle = T;
            a.batch = std::move(batch);
            a.results.resize(a.batch.size());
            round.push_back(std::move(a));
        }

        // Dispatch-time deadline misses terminate before any
        // completion of this round (they happen at T).
        for (ExpiredJob &e : expired) {
            JobResult r;
            r.id = e.job.id;
            r.state = JobState::Expired;
            r.tenant = e.job.spec.tenant;
            r.name = e.job.spec.name;
            r.attempts = e.job.attempt;
            r.arrivalCycle = e.job.spec.arrivalCycle;
            r.finishCycle = e.expiredAtCycle;
            std::ostringstream msg;
            msg << "deadline " << e.job.spec.deadlineCycle
                << " passed before dispatch at cycle "
                << e.expiredAtCycle;
            r.error = msg.str();
            finish_job(std::move(e.job), std::move(r));
        }

        if (round.empty()) {
            if (sched_.empty()) continue; // expiries emptied the queue
            // Every free card is excluded from every eligible head
            // (single-card exclusion => a busy card exists). Idle the
            // free cards forward to the next card-release event.
            double tNext = kInf;
            for (std::size_t c = 0; c < shards_.size(); ++c) {
                double f = shards_.stats(c).freeAtCycle;
                if (f > T) tNext = std::min(tNext, f);
            }
            POSEIDON_CHECK(std::isfinite(tNext),
                           "serving engine stalled at cycle " << T);
            for (std::size_t c : order) {
                shards_.stats(c).freeAtCycle = tNext;
            }
            continue;
        }

        // ---- Price every attempt of the round concurrently on the
        // host pool. Pricing is a pure function of
        // (card, trace, job, attempt), so chunk order cannot change
        // any modeled number.
        std::vector<std::pair<std::size_t, std::size_t>> flat;
        for (std::size_t ai = 0; ai < round.size(); ++ai) {
            for (std::size_t ji = 0; ji < round[ai].batch.size(); ++ji) {
                flat.emplace_back(ai, ji);
            }
        }
        parallel::parallel_for(
            0, flat.size(), 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t f = lo; f < hi; ++f) {
                    auto [ai, ji] = flat[f];
                    Assignment &a = round[ai];
                    const QueuedJob &qj = a.batch[ji];
                    a.results[ji] = shards_.price(
                        a.card, qj.spec.trace, qj.id, qj.attempt);
                }
            },
            "serve.price");

        // ---- Completion bookkeeping, in card order (deterministic).
        for (Assignment &a : round) {
            CardStats &cs = shards_.stats(a.card);
            double cum = a.startCycle + cfg_.dispatchCycles;
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++batches_;
            }
            ++cs.batches;
            for (std::size_t ji = 0; ji < a.batch.size(); ++ji) {
                QueuedJob &qj = a.batch[ji];
                hw::SimResult &sim = a.results[ji];
                double start = cum;
                cum += sim.cycles;
                ++cs.jobs;
                sched_.charge(qj.spec.tenant, sim.cycles);
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    tenants_[qj.spec.tenant].attainedCycles +=
                        sim.cycles;
                }

                u64 attemptsUsed = qj.attempt + 1;
                bool silent = sim.faults.silent > 0;
                bool overBudget = sim.faults.retryCycles >
                                  qj.spec.retry.retryCycleBudget;
                if (silent || overBudget) {
                    ++cs.failedAttempts;
                    if (attemptsUsed < qj.spec.retry.maxAttempts) {
                        // Fail over: requeue against a different card
                        // (same card only when the fleet has one).
                        qj.attempt = attemptsUsed;
                        qj.excludeCard = a.card;
                        qj.spec.arrivalCycle = cum;
                        {
                            std::lock_guard<std::mutex> lk(mu_);
                            ++retries_;
                        }
                        if (cfg_.exportTelemetry) {
                            telemetry::count("serve.jobs.retried");
                        }
                        sched_.enqueue(std::move(qj));
                        continue;
                    }
                    JobResult r;
                    r.id = qj.id;
                    r.state = JobState::Failed;
                    r.tenant = qj.spec.tenant;
                    r.name = qj.spec.name;
                    r.card = a.card;
                    r.attempts = attemptsUsed;
                    r.arrivalCycle = qj.spec.arrivalCycle;
                    r.startCycle = start;
                    r.finishCycle = cum;
                    std::ostringstream msg;
                    msg << (silent ? "silent corruption past ECC"
                                   : "ECC retry budget exceeded")
                        << " on card " << a.card << " (attempt "
                        << attemptsUsed << "/"
                        << qj.spec.retry.maxAttempts << ")";
                    r.error = msg.str();
                    finish_job(std::move(qj), std::move(r));
                    continue;
                }

                JobResult r;
                r.id = qj.id;
                r.state = JobState::Completed;
                r.tenant = qj.spec.tenant;
                r.name = qj.spec.name;
                r.card = a.card;
                r.attempts = attemptsUsed;
                r.arrivalCycle = qj.spec.arrivalCycle;
                r.startCycle = start;
                r.finishCycle = cum;
                r.sim = std::move(sim);
                finish_job(std::move(qj), std::move(r));
            }
            cs.busyCycles += cum - a.startCycle;
            cs.freeAtCycle = cum;
        }
        refresh_gauges();
    }

    refresh_gauges();
    if (cfg_.exportTelemetry && telemetry::enabled()) {
        stats().export_metrics(telemetry::MetricsRegistry::global());
    }
}

ServeStats
ServingEngine::stats() const
{
    ServeStats s;
    std::lock_guard<std::mutex> lk(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.expired = expired_;
    s.retries = retries_;
    s.batches = batches_;
    s.maxQueueDepth = maxQueueDepth_;
    s.horizonCycles = horizon_;
    s.clockGHz = shards_.card(0).config().clockGHz;
    s.tenants = tenants_;
    for (auto &[tenant, t] : s.tenants) {
        auto it = latencies_.find(tenant);
        if (it != latencies_.end()) {
            t.p50LatencyCycles = quantile(it->second, 0.50);
            t.p99LatencyCycles = quantile(it->second, 0.99);
        }
    }
    s.cards = shards_.stats();
    for (const CardStats &c : s.cards) s.busyCycles += c.busyCycles;
    return s;
}

} // namespace poseidon::serve
