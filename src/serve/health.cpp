#include "serve/health.h"

#include <limits>
#include <sstream>

#include "common/check.h"

namespace poseidon::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

const char*
to_string(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed: return "Closed";
      case BreakerState::Open: return "Open";
      case BreakerState::HalfOpen: return "HalfOpen";
    }
    return "?";
}

const char*
to_string(HealthEvent::Kind k)
{
    switch (k) {
      case HealthEvent::Kind::Quarantined: return "Quarantined";
      case HealthEvent::Kind::Probing: return "Probing";
      case HealthEvent::Kind::Readmitted: return "Readmitted";
      case HealthEvent::Kind::Died: return "Died";
    }
    return "?";
}

HealthMonitor::HealthMonitor(std::size_t cards, HealthConfig cfg)
    : cfg_(cfg)
{
    POSEIDON_REQUIRE(cards >= 1,
                     "HealthMonitor: the fleet needs at least one card");
    POSEIDON_REQUIRE(cfg_.ewmaAlpha > 0.0 && cfg_.ewmaAlpha <= 1.0,
                     "HealthMonitor: ewmaAlpha must be in (0, 1], got "
                         << cfg_.ewmaAlpha);
    POSEIDON_REQUIRE(cfg_.failureThreshold > 0.0,
                     "HealthMonitor: failureThreshold must be positive");
    POSEIDON_REQUIRE(cfg_.retryShareThreshold > 0.0,
                     "HealthMonitor: retryShareThreshold must be "
                     "positive");
    POSEIDON_REQUIRE(cfg_.cooldownCycles >= 0.0,
                     "HealthMonitor: negative cooldown");
    POSEIDON_REQUIRE(cfg_.probeSuccessesToClose >= 1,
                     "HealthMonitor: probeSuccessesToClose must be "
                     ">= 1");
    cards_.resize(cards);
}

const CardHealth&
HealthMonitor::card(std::size_t i) const
{
    POSEIDON_REQUIRE(i < cards_.size(),
                     "HealthMonitor: card " << i << " out of range");
    return cards_[i];
}

void
HealthMonitor::trip(std::size_t card, double cycle,
                    const std::string &why)
{
    CardHealth &h = cards_[card];
    h.state = BreakerState::Open;
    h.openedAtCycle = cycle;
    h.probeSuccesses = 0;
    ++h.quarantines;
    events_.push_back(
        HealthEvent{HealthEvent::Kind::Quarantined, card, cycle, why});
}

bool
HealthMonitor::record_attempt(std::size_t card, double cycle,
                              const hw::FaultStats &faults,
                              double attemptCycles, bool failed)
{
    POSEIDON_REQUIRE(card < cards_.size(),
                     "HealthMonitor: card " << card << " out of range");
    if (!cfg_.enabled) return false;
    CardHealth &h = cards_[card];
    ++h.attempts;
    if (failed) ++h.failedAttempts;

    double a = cfg_.ewmaAlpha;
    double retryShare = attemptCycles > 0.0
                            ? faults.retryCycles / attemptCycles
                            : 0.0;
    h.ewmaFailure = a * (failed ? 1.0 : 0.0) + (1.0 - a) * h.ewmaFailure;
    h.ewmaRetryShare = a * retryShare + (1.0 - a) * h.ewmaRetryShare;

    if (h.state != BreakerState::Closed || h.dead) return false;
    if (h.attempts < cfg_.minAttempts) return false;

    bool corrupting = h.ewmaFailure >= cfg_.failureThreshold;
    bool degraded = h.ewmaRetryShare >= cfg_.retryShareThreshold;
    if (!corrupting && !degraded) return false;

    std::ostringstream why;
    if (corrupting) {
        why << "failure EWMA " << h.ewmaFailure << " >= "
            << cfg_.failureThreshold;
    } else {
        why << "ECC-replay share EWMA " << h.ewmaRetryShare << " >= "
            << cfg_.retryShareThreshold;
    }
    trip(card, cycle, why.str());
    return true;
}

bool
HealthMonitor::admissible(std::size_t card, double) const
{
    POSEIDON_REQUIRE(card < cards_.size(),
                     "HealthMonitor: card " << card << " out of range");
    const CardHealth &h = cards_[card];
    return !h.dead && h.state == BreakerState::Closed;
}

bool
HealthMonitor::wants_probe(std::size_t card, double cycle) const
{
    POSEIDON_REQUIRE(card < cards_.size(),
                     "HealthMonitor: card " << card << " out of range");
    const CardHealth &h = cards_[card];
    if (h.dead) return false;
    if (h.state == BreakerState::HalfOpen) return true;
    return h.state == BreakerState::Open &&
           cycle >= h.openedAtCycle + cfg_.cooldownCycles;
}

void
HealthMonitor::record_probe(std::size_t card, double cycle, bool ok)
{
    POSEIDON_REQUIRE(card < cards_.size(),
                     "HealthMonitor: card " << card << " out of range");
    CardHealth &h = cards_[card];
    POSEIDON_CHECK(!h.dead && h.state != BreakerState::Closed,
                   "probe result for a card that is not on probation");
    if (h.state == BreakerState::Open) {
        h.state = BreakerState::HalfOpen;
        events_.push_back(HealthEvent{HealthEvent::Kind::Probing, card,
                                      cycle, "cooldown elapsed"});
    }
    ++h.probes;
    if (ok) {
        ++h.probeSuccesses;
        if (h.probeSuccesses >= cfg_.probeSuccessesToClose) {
            h.state = BreakerState::Closed;
            h.probeSuccesses = 0;
            h.probeRoundFailures = 0;
            // The card earns a fresh record: the EWMAs that tripped
            // the breaker describe the pre-quarantine era.
            h.ewmaFailure = 0.0;
            h.ewmaRetryShare = 0.0;
            h.attempts = 0;
            h.failedAttempts = 0;
            ++readmissions_;
            events_.push_back(
                HealthEvent{HealthEvent::Kind::Readmitted, card, cycle,
                            "probes passed"});
        }
        return;
    }
    ++h.probeRoundFailures;
    h.state = BreakerState::Open;
    h.openedAtCycle = cycle;
    h.probeSuccesses = 0;
    if (h.probeRoundFailures >= cfg_.maxProbeRoundFailures) {
        h.dead = true;
        events_.push_back(
            HealthEvent{HealthEvent::Kind::Died, card, cycle,
                        "probe rounds exhausted"});
        return;
    }
    events_.push_back(HealthEvent{HealthEvent::Kind::Quarantined, card,
                                  cycle, "probe failed"});
}

double
HealthMonitor::available_at(std::size_t card, double cycle) const
{
    POSEIDON_REQUIRE(card < cards_.size(),
                     "HealthMonitor: card " << card << " out of range");
    const CardHealth &h = cards_[card];
    if (h.dead) return kInf;
    if (h.state == BreakerState::Open) {
        double probeAt = h.openedAtCycle + cfg_.cooldownCycles;
        return probeAt > cycle ? probeAt : cycle;
    }
    return cycle;
}

bool
HealthMonitor::all_dead() const
{
    for (const CardHealth &h : cards_) {
        if (!h.dead) return false;
    }
    return true;
}

std::size_t
HealthMonitor::live_cards() const
{
    std::size_t n = 0;
    for (const CardHealth &h : cards_) {
        if (!h.dead) ++n;
    }
    return n;
}

u64
HealthMonitor::quarantines() const
{
    u64 n = 0;
    for (const CardHealth &h : cards_) n += h.quarantines;
    return n;
}

u64
HealthMonitor::probes() const
{
    u64 n = 0;
    for (const CardHealth &h : cards_) n += h.probes;
    return n;
}

} // namespace poseidon::serve
