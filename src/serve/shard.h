#ifndef POSEIDON_SERVE_SHARD_H_
#define POSEIDON_SERVE_SHARD_H_

/**
 * @file
 * The card fleet: N independent simulated Poseidon accelerators.
 *
 * Each card owns its own PoseidonSim instance — its own HwConfig,
 * scratchpad/HBM model and, crucially, its own fault-injection seed,
 * derived deterministically from the base config so two cards never
 * replay the same ECC campaign. Pricing a job on a card is a *pure
 * function* of (card config, trace, job id, attempt): the per-attempt
 * fault seed is re-derived with hw::mix_seed on every run, so attempts
 * are independent of dispatch order and the engine may price batches
 * for different cards concurrently on the host thread pool without
 * changing any modeled number.
 *
 * The fleet may be heterogeneous: construct with an explicit config
 * per card (e.g. one card with a degraded HBM stack or a higher BER).
 */

#include <cstddef>
#include <vector>

#include "hw/sim.h"
#include "isa/trace.h"
#include "serve/job.h"
#include "serve/journal.h"

namespace poseidon::serve {

/// Cumulative accounting for one card (all in simulated cycles).
struct CardStats
{
    double busyCycles = 0.0;    ///< cycles spent executing batches
    double freeAtCycle = 0.0;   ///< fleet-clock time the card idles from
    u64 jobs = 0;               ///< job attempts executed (incl. failed)
    u64 batches = 0;            ///< dispatches received
    u64 failedAttempts = 0;     ///< attempts that tripped the fault guard
    u64 probes = 0;             ///< health probes executed (HALF_OPEN)

    /// busy / horizon share (0 when the horizon is empty).
    double occupancy(double horizonCycles) const
    {
        return horizonCycles > 0.0 ? busyCycles / horizonCycles : 0.0;
    }
};

/// Owns the per-card simulators and their cumulative statistics.
class ShardManager
{
  public:
    /// Homogeneous fleet: `cards` copies of `base`, each with a
    /// per-card fault seed mixed from base.faults.seed.
    ShardManager(std::size_t cards, const hw::HwConfig &base);

    /// Heterogeneous fleet: one explicit config per card (fault seeds
    /// are still re-mixed per card so equal configs stay independent).
    explicit ShardManager(std::vector<hw::HwConfig> cards);

    std::size_t size() const { return sims_.size(); }

    /// The card's simulator (its config carries the per-card seed).
    const hw::PoseidonSim& card(std::size_t i) const;

    /// Price one attempt of one job on card `i`. Pure: the fault seed
    /// used is mix(cardSeed, jobId, attempt), so re-running the same
    /// (i, trace, jobId, attempt) tuple reproduces the result exactly,
    /// and concurrent calls for different tuples are safe.
    hw::SimResult price(std::size_t i, const isa::Trace &trace,
                        JobId = 0, u64 attempt = 0) const;

    /// Mutable per-card accounting (engine-maintained).
    CardStats& stats(std::size_t i) { return stats_[i]; }
    const std::vector<CardStats>& stats() const { return stats_; }

    /// Journal one executed attempt on card `i` as an
    /// AttemptStart/AttemptEnd pair ([startCycle, endCycle) on the
    /// fleet clock, `simCycles` of modeled execution, `failed` = the
    /// fault-guard verdict). Called from the engine's deterministic
    /// bookkeeping pass, never from the pricing pool.
    void journal_attempt(Journal &journal, std::size_t i, JobId job,
                         u64 attempt, double startCycle,
                         double endCycle, double simCycles,
                         bool failed) const;

  private:
    std::vector<hw::PoseidonSim> sims_;
    std::vector<CardStats> stats_;
};

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_SHARD_H_
