#ifndef POSEIDON_SERVE_SCHEDULER_H_
#define POSEIDON_SERVE_SCHEDULER_H_

/**
 * @file
 * Queueing policy of the serving engine: priority classes, per-tenant
 * fairness, and compatible-job batching.
 *
 * The scheduler holds one FIFO queue per tenant and makes every
 * decision from simulated-clock state only, so a schedule is a pure
 * function of the submitted job set — never of host timing. Dispatch
 * policy, in order:
 *
 *  1. **Priority**: among jobs that have arrived (arrivalCycle <= now)
 *     and are not excluded from the asking card, the highest
 *     JobSpec::priority wins, across all tenants.
 *  2. **Fairness**: within a priority class, the tenant with the least
 *     attained service (simulated cycles consumed so far, including
 *     failed attempts) is served first; ties break on the tenant name
 *     so the order is total and reproducible.
 *  3. **FIFO**: within a tenant, jobs leave in submission order
 *     (head-of-line; a job is only expired or skipped when it is at
 *     the head).
 *
 * **Deadlines** are dispatch-time admission: when the head job's
 * deadlineCycle lies before `now`, it is expired and reported instead
 * of dispatched (jobs behind it are not scanned — they expire when
 * they reach the head).
 *
 * **Batching**: after choosing a head job, the scheduler extends the
 * dispatch with the next jobs of the *same tenant queue* while they
 * share the head's batchKey and priority, have arrived, and the batch
 * is under maxBatch. A batch runs back-to-back on one card and pays
 * the per-dispatch overhead once — the modeled benefit of coalescing
 * key/twiddle uploads. Batching trades fairness granularity for that
 * amortization; maxBatch = 1 restores strict per-job fairness.
 */

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "serve/job.h"
#include "serve/journal.h"

namespace poseidon::serve {

/// A job queued inside the scheduler (spec plus engine bookkeeping).
struct QueuedJob
{
    JobId id = 0;
    JobSpec spec;
    u64 attempt = 0; ///< attempts already consumed (0 = fresh)
    /// Every card a previous attempt of this job faulted on. Failover
    /// excludes all of them while the fleet still has an untried live
    /// card; once the set covers the live fleet the exclusion is
    /// waived (there is nowhere else to go).
    std::vector<std::size_t> faultedCards;

    bool has_faulted_on(std::size_t card) const
    {
        return std::find(faultedCards.begin(), faultedCards.end(),
                         card) != faultedCards.end();
    }
};

/// Per-card exclusion predicate the engine hands to pick_batch():
/// true = this job must not run on the asking card.
using JobFilter = std::function<bool(const QueuedJob &)>;

/// Head-of-line jobs the scheduler expired during a pick.
struct ExpiredJob
{
    QueuedJob job;
    double expiredAtCycle = 0.0;
};

class Scheduler
{
  public:
    /// `maxBatch` >= 1: jobs coalesced per dispatch.
    explicit Scheduler(std::size_t maxBatch = 4);

    /// Attach the engine's lifecycle journal: enqueue() then records
    /// Enqueued and pick_batch() records BatchFormed + Dispatched.
    /// Nullptr (the default) detaches.
    void set_journal(Journal *journal) { journal_ = journal; }

    void enqueue(QueuedJob job);

    bool empty() const { return queued_ == 0; }
    std::size_t depth() const { return queued_; }

    /// Earliest arrivalCycle over the *head* job of every tenant
    /// queue (infinity if empty). Heads are the only dispatchable
    /// jobs, so this is the next time the fleet clock can make
    /// progress when nothing has arrived yet.
    double earliest_head_arrival() const;

    /**
     * Pick the next batch for card `card` at simulated time `now`.
     * Expired head jobs encountered while picking are appended to
     * `expired` (already dequeued). `excluded` is the engine's
     * per-card failover filter (jobs that already faulted on this
     * card); pass nullptr for no exclusion. Returns an empty vector
     * when no arrived, non-excluded job exists.
     */
    std::vector<QueuedJob> pick_batch(std::size_t card, double now,
                                      std::vector<ExpiredJob> &expired,
                                      const JobFilter &excluded);

    /**
     * Admission control: remove queued jobs until depth() <= target,
     * shedding the lowest-priority work first and, within a priority
     * class, the most recently submitted job first (highest id) — the
     * oldest high-priority work survives. Returns the shed jobs.
     */
    std::vector<QueuedJob> shed_to_depth(std::size_t target);

    /// Remove and return every queued job (the all-cards-dead path:
    /// nothing can serve them, so the engine sheds them as
    /// Overloaded).
    std::vector<QueuedJob> drain_all();

    /// Charge `cycles` of attained service to `tenant` (fairness
    /// accounting; includes failed attempts — they consumed the card).
    void charge(const std::string &tenant, double cycles);

    /// Attained service per tenant, in simulated cycles.
    const std::map<std::string, double>& attained() const
    {
        return attained_;
    }

  private:
    /// Drop expired heads of `q`; returns the surviving head or null.
    const QueuedJob* live_head(std::deque<QueuedJob> &q, double now,
                               std::vector<ExpiredJob> &expired);

    std::size_t maxBatch_;
    std::size_t queued_ = 0;
    Journal *journal_ = nullptr; ///< not owned; may be null
    /// std::map: iteration in tenant-name order keeps every scan
    /// deterministic.
    std::map<std::string, std::deque<QueuedJob>> tenants_;
    std::map<std::string, double> attained_;
};

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_SCHEDULER_H_
