#ifndef POSEIDON_SERVE_SCHEDULER_H_
#define POSEIDON_SERVE_SCHEDULER_H_

/**
 * @file
 * Queueing policy of the serving engine: priority classes, per-tenant
 * fairness, and compatible-job batching.
 *
 * The scheduler holds one FIFO queue per tenant and makes every
 * decision from simulated-clock state only, so a schedule is a pure
 * function of the submitted job set — never of host timing. Dispatch
 * policy, in order:
 *
 *  1. **Priority**: among jobs that have arrived (arrivalCycle <= now)
 *     and are not excluded from the asking card, the highest
 *     JobSpec::priority wins, across all tenants.
 *  2. **Fairness**: within a priority class, the tenant with the least
 *     attained service (simulated cycles consumed so far, including
 *     failed attempts) is served first; ties break on the tenant name
 *     so the order is total and reproducible.
 *  3. **FIFO**: within a tenant, jobs leave in submission order
 *     (head-of-line; a job is only expired or skipped when it is at
 *     the head).
 *
 * **Deadlines** are dispatch-time admission: when the head job's
 * deadlineCycle lies before `now`, it is expired and reported instead
 * of dispatched (jobs behind it are not scanned — they expire when
 * they reach the head).
 *
 * **Batching**: after choosing a head job, the scheduler extends the
 * dispatch with the next jobs of the *same tenant queue* while they
 * share the head's batchKey and priority, have arrived, and the batch
 * is under maxBatch. A batch runs back-to-back on one card and pays
 * the per-dispatch overhead once — the modeled benefit of coalescing
 * key/twiddle uploads. Batching trades fairness granularity for that
 * amortization; maxBatch = 1 restores strict per-job fairness.
 */

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "serve/job.h"

namespace poseidon::serve {

/// A job queued inside the scheduler (spec plus engine bookkeeping).
struct QueuedJob
{
    JobId id = 0;
    JobSpec spec;
    u64 attempt = 0; ///< attempts already consumed (0 = fresh)
    /// Card the previous attempt faulted on (failover excludes it
    /// while the fleet has another card); -1 = none.
    std::size_t excludeCard = static_cast<std::size_t>(-1);
};

/// Head-of-line jobs the scheduler expired during a pick.
struct ExpiredJob
{
    QueuedJob job;
    double expiredAtCycle = 0.0;
};

class Scheduler
{
  public:
    /// `maxBatch` >= 1: jobs coalesced per dispatch.
    explicit Scheduler(std::size_t maxBatch = 4);

    void enqueue(QueuedJob job);

    bool empty() const { return queued_ == 0; }
    std::size_t depth() const { return queued_; }

    /// Earliest arrivalCycle over the *head* job of every tenant
    /// queue (infinity if empty). Heads are the only dispatchable
    /// jobs, so this is the next time the fleet clock can make
    /// progress when nothing has arrived yet.
    double earliest_head_arrival() const;

    /**
     * Pick the next batch for card `card` at simulated time `now`.
     * Expired head jobs encountered while picking are appended to
     * `expired` (already dequeued). Returns an empty vector when no
     * arrived, non-excluded job exists. `fleetSize` > 1 enables
     * exclusion; with a single card a failed-over job may re-run on
     * the same card (there is nowhere else to go).
     */
    std::vector<QueuedJob> pick_batch(std::size_t card,
                                      std::size_t fleetSize, double now,
                                      std::vector<ExpiredJob> &expired);

    /// Charge `cycles` of attained service to `tenant` (fairness
    /// accounting; includes failed attempts — they consumed the card).
    void charge(const std::string &tenant, double cycles);

    /// Attained service per tenant, in simulated cycles.
    const std::map<std::string, double>& attained() const
    {
        return attained_;
    }

  private:
    /// Drop expired heads of `q`; returns the surviving head or null.
    const QueuedJob* live_head(std::deque<QueuedJob> &q, double now,
                               std::vector<ExpiredJob> &expired);

    std::size_t maxBatch_;
    std::size_t queued_ = 0;
    /// std::map: iteration in tenant-name order keeps every scan
    /// deterministic.
    std::map<std::string, std::deque<QueuedJob>> tenants_;
    std::map<std::string, double> attained_;
};

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_SCHEDULER_H_
