#include "serve/scheduler.h"

#include <limits>

#include "common/check.h"

namespace poseidon::serve {

Scheduler::Scheduler(std::size_t maxBatch)
    : maxBatch_(maxBatch)
{
    POSEIDON_REQUIRE(maxBatch_ >= 1,
                     "Scheduler: maxBatch must be >= 1");
}

void
Scheduler::enqueue(QueuedJob job)
{
    if (journal_) {
        JournalEvent ev;
        ev.kind = JournalEventKind::Enqueued;
        ev.job = job.id;
        ev.cycle = job.spec.arrivalCycle;
        ev.priority = job.spec.priority;
        ev.attempt = job.attempt; // 0 = fresh, >0 = retry requeue
        journal_->append(std::move(ev));
    }
    tenants_[job.spec.tenant].push_back(std::move(job));
    ++queued_;
}

double
Scheduler::earliest_head_arrival() const
{
    double earliest = std::numeric_limits<double>::infinity();
    for (const auto &[tenant, q] : tenants_) {
        if (!q.empty()) {
            earliest = std::min(earliest, q.front().spec.arrivalCycle);
        }
    }
    return earliest;
}

const QueuedJob*
Scheduler::live_head(std::deque<QueuedJob> &q, double now,
                     std::vector<ExpiredJob> &expired)
{
    while (!q.empty()) {
        QueuedJob &head = q.front();
        if (head.spec.arrivalCycle > now) return nullptr;
        if (head.spec.deadlineCycle < now) {
            expired.push_back(ExpiredJob{std::move(head), now});
            q.pop_front();
            --queued_;
            continue;
        }
        return &head;
    }
    return nullptr;
}

std::vector<QueuedJob>
Scheduler::pick_batch(std::size_t card, double now,
                      std::vector<ExpiredJob> &expired,
                      const JobFilter &excluded)
{
    // Exclusion policy lives in the engine's filter; `card` only tags
    // the journal records below.
    // Choose the winning tenant: among arrived, non-excluded heads,
    // max priority, then least attained service, then tenant name
    // (map order) — all simulated-clock state, fully deterministic.
    std::map<std::string, std::deque<QueuedJob>>::iterator best =
        tenants_.end();
    int bestPrio = 0;
    double bestAttained = 0.0;
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
        const QueuedJob *head = live_head(it->second, now, expired);
        if (!head) continue;
        if (excluded && excluded(*head)) continue;
        int prio = head->spec.priority;
        double att = attained_[it->first];
        if (best == tenants_.end() || prio > bestPrio ||
            (prio == bestPrio && att < bestAttained)) {
            best = it;
            bestPrio = prio;
            bestAttained = att;
        }
    }
    if (best == tenants_.end()) return {};

    std::deque<QueuedJob> &q = best->second;
    std::vector<QueuedJob> batch;
    batch.push_back(std::move(q.front()));
    q.pop_front();
    --queued_;

    // Extend with compatible followers from the same tenant queue.
    // (By value: growing `batch` reallocates and would dangle a
    // reference into it.)
    const std::string key = batch.front().spec.batchKey;
    while (batch.size() < maxBatch_ && !q.empty()) {
        const QueuedJob &next = q.front();
        if (next.spec.arrivalCycle > now) break;
        if (next.spec.priority != bestPrio) break;
        if (next.spec.batchKey != key) break;
        if (excluded && excluded(next)) break;
        if (next.spec.deadlineCycle < now) break; // let live_head expire it
        batch.push_back(std::move(q.front()));
        q.pop_front();
        --queued_;
    }
    if (journal_) {
        u64 batchId = journal_->next_batch_id();
        JournalEvent formed;
        formed.kind = JournalEventKind::BatchFormed;
        formed.cycle = now;
        formed.card = card;
        formed.batch = batchId;
        formed.batchSize = batch.size();
        journal_->append(std::move(formed));
        for (const QueuedJob &qj : batch) {
            JournalEvent ev;
            ev.kind = JournalEventKind::Dispatched;
            ev.job = qj.id;
            ev.cycle = now;
            ev.card = card;
            ev.attempt = qj.attempt + 1; // the attempt about to run
            ev.batch = batchId;
            journal_->append(std::move(ev));
        }
    }
    return batch;
}

std::vector<QueuedJob>
Scheduler::shed_to_depth(std::size_t target)
{
    std::vector<QueuedJob> shed;
    while (queued_ > target) {
        // The victim: lowest priority class, newest submission (the
        // highest id) within it — deterministic and
        // submission-order-respecting.
        std::deque<QueuedJob> *victimQ = nullptr;
        std::size_t victimIdx = 0;
        for (auto &[tenant, q] : tenants_) {
            (void)tenant;
            for (std::size_t i = 0; i < q.size(); ++i) {
                if (victimQ == nullptr ||
                    q[i].spec.priority <
                        (*victimQ)[victimIdx].spec.priority ||
                    (q[i].spec.priority ==
                         (*victimQ)[victimIdx].spec.priority &&
                     q[i].id > (*victimQ)[victimIdx].id)) {
                    victimQ = &q;
                    victimIdx = i;
                }
            }
        }
        POSEIDON_CHECK(victimQ != nullptr,
                       "shed_to_depth: depth/queue mismatch");
        shed.push_back(std::move((*victimQ)[victimIdx]));
        victimQ->erase(victimQ->begin() +
                       static_cast<std::ptrdiff_t>(victimIdx));
        --queued_;
    }
    return shed;
}

std::vector<QueuedJob>
Scheduler::drain_all()
{
    std::vector<QueuedJob> all;
    for (auto &[tenant, q] : tenants_) {
        (void)tenant;
        while (!q.empty()) {
            all.push_back(std::move(q.front()));
            q.pop_front();
            --queued_;
        }
    }
    return all;
}

void
Scheduler::charge(const std::string &tenant, double cycles)
{
    attained_[tenant] += cycles;
}

} // namespace poseidon::serve
