#ifndef POSEIDON_SERVE_JOURNAL_H_
#define POSEIDON_SERVE_JOURNAL_H_

/**
 * @file
 * Per-job lifecycle journal of the serving engine.
 *
 * Every decision the engine makes about a job — acceptance, queueing,
 * batch formation, dispatch, each priced attempt, fault retries and
 * their backoff, and the terminal verdict — is recorded as one typed
 * event stamped with the *simulated* fleet clock. Because the engine
 * is deterministic on that clock (DESIGN.md §10) and every append
 * happens either under the submission lock or in drain()'s
 * single-threaded bookkeeping phases, the journal is bit-identical at
 * every POSEIDON_THREADS: serializing two runs of the same load
 * yields byte-for-byte equal JSONL.
 *
 * The journal is the serving layer's flight recorder and a
 * *sufficient statistic* for its latency reporting: the
 * latency-decomposition layer (serve/latency_breakdown.h) and the
 * `poseidon_explain` CLI reconstruct every per-tenant p50/p99 the
 * engine reports — and a per-phase waterfall the engine does not —
 * from the event stream alone.
 *
 * **Serialized form** (one JSON object per line):
 *
 *   {"schema":"poseidon-journal","schema_version":1,
 *    "clock_ghz":0.3,"cards":4,"events":123}        <- header line
 *   {"ev":"Submitted","job":1,"cycle":0,"tenant":"alice",...}
 *   {"ev":"AttemptEnd","job":1,"cycle":84210,"card":0,...}
 *   ...
 *
 * Keys appear in a fixed order and numbers round-trip exactly
 * (telemetry/json.h), which is what makes byte-level determinism
 * checks meaningful.
 */

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.h"
#include "telemetry/json.h"

namespace poseidon::serve {

/// Lifecycle event types, in the order a job encounters them.
enum class JournalEventKind : unsigned {
    Submitted,        ///< accepted by submit(); cycle = arrival
    Admitted,         ///< ingested by drain() into the scheduler
    Enqueued,         ///< entered a tenant queue (fresh or retry)
    BatchFormed,      ///< scheduler coalesced a dispatch (per batch)
    Dispatched,       ///< job left the queue for a card (per job)
    AttemptStart,     ///< execution began on the card
    AttemptEnd,       ///< execution finished (value = sim cycles)
    FaultRetry,       ///< attempt failed; the job will be requeued
    BackoffScheduled, ///< retry arrival pushed out (value = arrival)
    ProbeInteraction, ///< health probe occupied a card (job = 0)
    Completed,        ///< terminal: success (value = latency)
    Failed,           ///< terminal: retries exhausted or skipped
    Expired,          ///< terminal: missed its dispatch deadline
    Shed,             ///< terminal: dropped by admission control
    AlertTransition,  ///< alert rule changed state (job = 0; name =
                      ///< rule text, detail = edge, value = metric)
};

/// Short stable name ("Submitted", "AttemptEnd", ...).
const char* to_string(JournalEventKind k);

/// Inverse of to_string; returns false on an unknown name.
bool journal_kind_from_string(const std::string &s,
                              JournalEventKind &out);

/// One journal record. Only the fields a kind uses are serialized;
/// everything else keeps its default (see to_json()).
struct JournalEvent
{
    /// "no card" marker (queue-side events).
    static constexpr std::size_t kNoCard = static_cast<std::size_t>(-1);

    JournalEventKind kind = JournalEventKind::Submitted;
    JobId job = 0;      ///< 0 = fleet-level event (health probes)
    double cycle = 0.0; ///< simulated fleet-clock stamp

    std::string tenant; ///< Submitted + terminal events
    std::string name;   ///< Submitted
    int priority = 0;   ///< Submitted / Enqueued
    std::size_t card = kNoCard; ///< dispatch/attempt/probe events
    u64 attempt = 0;    ///< attempts consumed when the event fired
    u64 batch = 0;      ///< dispatch sequence id (BatchFormed/Dispatched)
    u64 batchSize = 0;  ///< BatchFormed
    /// Kind-specific payload: AttemptEnd = modeled execution cycles;
    /// BackoffScheduled = retry arrival cycle; Completed = reported
    /// latency (finish - last arrival); ProbeInteraction = busy cycles.
    double value = 0.0;
    bool failed = false; ///< AttemptEnd fault verdict / probe verdict
    std::string detail;  ///< human-readable reason (retries, terminals)

    telemetry::Json to_json() const;
    static JournalEvent from_json(const telemetry::Json &j);
};

/// Append-only event log with JSONL (de)serialization. Appends are
/// mutex-guarded (submit() runs on client threads); reads are meant
/// for between-drain analysis, like ServingEngine::stats().
class Journal
{
  public:
    static constexpr int kSchemaVersion = 1;
    static constexpr const char *kSchemaName = "poseidon-journal";

    Journal() = default;
    /// Movable so parse/load can return by value; moving is for
    /// single-threaded contexts only (the mutex itself is not moved).
    Journal(Journal &&o) noexcept;
    Journal& operator=(Journal &&o) noexcept;
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /// Recording switch; a disabled journal drops appends (the
    /// engine's ServeConfig::journal maps to this).
    bool enabled() const { return enabled_; }
    void set_enabled(bool on) { enabled_ = on; }

    /// Fleet facts stamped into the JSONL header (the explain tool
    /// needs the clock to print microseconds).
    void set_meta(double clockGHz, std::size_t cards);
    double clock_ghz() const { return clockGHz_; }
    std::size_t cards() const { return cards_; }

    void append(JournalEvent ev);

    /// Monotone dispatch ids for BatchFormed/Dispatched correlation.
    u64 next_batch_id();

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    const std::vector<JournalEvent>& events() const { return events_; }

    /// Header line + one compact JSON object per event.
    std::string to_jsonl() const;

    /// Write to_jsonl() to `path`; false on I/O failure.
    bool write_jsonl(const std::string &path) const;

    /// Parse a journal back from its JSONL form. Throws
    /// poseidon::ParseError on a malformed header, an unknown event
    /// kind, or a line that is not a JSON object.
    static Journal parse_jsonl(const std::string &text);

    /// Read + parse_jsonl a file (throws ParseError, also on I/O).
    static Journal load_jsonl(const std::string &path);

  private:
    bool enabled_ = true;
    double clockGHz_ = 0.0;
    std::size_t cards_ = 0;
    u64 nextBatch_ = 1;
    mutable std::mutex mu_;
    std::vector<JournalEvent> events_;
};

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_JOURNAL_H_
