#include "serve/latency_breakdown.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace poseidon::serve {

namespace {

/// Two-sum: s = fl(a + b), *err = the exact rounding error, so
/// a + b == s + *err as real numbers (Knuth's branch-free EFT).
inline double
two_sum(double a, double b, double &err)
{
    double s = a + b;
    double bv = s - a;
    err = (a - (s - bv)) + (b - bv);
    return s;
}

/**
 * Error-free accumulator: a list of components whose *exact* real sum
 * equals everything ever add()ed. add() grows the expansion with
 * two-sum, which never loses a bit; value() distills the components
 * with repeated error-free passes and returns the (faithfully
 * rounded) sum — exactly representable sums (0.0 in particular) come
 * back bit-exact.
 */
class ExactSum
{
  public:
    void add(double x)
    {
        if (x == 0.0) return;
        double q = x;
        std::size_t out = 0;
        for (std::size_t i = 0; i < comps_.size(); ++i) {
            double err;
            q = two_sum(q, comps_[i], err);
            if (err != 0.0) comps_[out++] = err;
        }
        comps_.resize(out);
        if (q != 0.0) comps_.push_back(q);
    }

    /// Accumulate the exact real difference a - b (two-sum of a, -b).
    void add_diff(double a, double b)
    {
        double err;
        double d = two_sum(a, -b, err);
        add(d);
        add(err);
    }

    const std::vector<double>& components() const { return comps_; }

    double value() const { return distill(comps_); }

    static double distill(std::vector<double> v)
    {
        for (int pass = 0; pass < 64 && v.size() > 1; ++pass) {
            std::vector<double> next;
            double q = 0.0;
            bool exact = true;
            for (double x : v) {
                double err;
                q = two_sum(q, x, err);
                if (err != 0.0) {
                    next.push_back(err);
                    exact = false;
                }
            }
            if (exact) return q; // the pass lost nothing: q is exact
            next.push_back(q);
            v = std::move(next);
        }
        double q = 0.0;
        for (double x : v) q += x;
        return q;
    }

  private:
    std::vector<double> comps_;
};

/// Walk state while replaying one job's event stream.
struct Walk
{
    JobBreakdown jb;
    ExactSum phase[kPhaseCount];
    double prevCycle = 0.0;
    double marker = 0.0; ///< fl(prevCycle - firstArrival)
    bool started = false;
    bool terminal = false;
    AttemptSpan open;
    bool openAttempt = false;
};

void
advance(Walk &w, Phase p, double cycle)
{
    POSEIDON_CHECK(cycle >= w.prevCycle,
                   "journal for job " << w.jb.id
                       << " runs backwards: cycle " << cycle
                       << " after " << w.prevCycle);
    double m2 = cycle - w.jb.firstArrivalCycle;
    w.phase[static_cast<std::size_t>(p)].add_diff(m2, w.marker);
    w.marker = m2;
    w.prevCycle = cycle;
}

JobState
terminal_state(JournalEventKind k)
{
    switch (k) {
      case JournalEventKind::Completed: return JobState::Completed;
      case JournalEventKind::Failed: return JobState::Failed;
      case JournalEventKind::Expired: return JobState::Expired;
      case JournalEventKind::Shed: return JobState::Shed;
      default: return JobState::Queued;
    }
}

std::string
format_cycles(double cycles)
{
    std::ostringstream os;
    os << cycles;
    return os.str();
}

} // namespace

const char*
to_string(Phase p)
{
    switch (p) {
      case Phase::QueueWait: return "queue_wait";
      case Phase::BatchDelay: return "batch_delay";
      case Phase::Backoff: return "backoff";
      case Phase::RetryOverhead: return "retry_overhead";
      case Phase::Execution: return "execution";
    }
    return "?";
}

double
JobBreakdown::phase_sum() const
{
    std::vector<double> all;
    for (const std::vector<double> &comps : phaseExact) {
        all.insert(all.end(), comps.begin(), comps.end());
    }
    return ExactSum::distill(std::move(all));
}

BreakdownReport
decompose(const Journal &journal)
{
    BreakdownReport report;
    report.clockGHz = journal.clock_ghz();
    report.cards = journal.cards();

    std::map<JobId, Walk> walks;
    for (const JournalEvent &ev : journal.events()) {
        if (ev.job == 0) continue; // fleet-level (probe) events
        Walk &w = walks[ev.job];
        POSEIDON_CHECK(!w.terminal,
                       "journal event after terminal state for job "
                           << ev.job);
        if (!w.started) {
            w.started = true;
            w.jb.id = ev.job;
            w.jb.firstArrivalCycle = ev.cycle;
            w.jb.lastArrivalCycle = ev.cycle;
            w.prevCycle = ev.cycle;
            w.marker = 0.0;
        }
        switch (ev.kind) {
          case JournalEventKind::Submitted:
            w.jb.tenant = ev.tenant;
            w.jb.name = ev.name;
            w.jb.priority = ev.priority;
            break;
          case JournalEventKind::Admitted:
          case JournalEventKind::BatchFormed:
          case JournalEventKind::FaultRetry:
          case JournalEventKind::BackoffScheduled:
          case JournalEventKind::ProbeInteraction:
          case JournalEventKind::AlertTransition:
            break; // zero-width for the walk
          case JournalEventKind::Enqueued:
            // A retry requeue closes the backoff window that opened
            // at the failed attempt's end; the first enqueue sits at
            // the walk origin.
            if (ev.attempt > 0) {
                advance(w, Phase::Backoff, ev.cycle);
            }
            w.jb.lastArrivalCycle = ev.cycle;
            break;
          case JournalEventKind::Dispatched:
            advance(w, Phase::QueueWait, ev.cycle);
            w.open = AttemptSpan{};
            w.open.card = ev.card;
            w.open.attempt = ev.attempt;
            w.open.dispatchCycle = ev.cycle;
            w.openAttempt = true;
            w.jb.card = ev.card;
            break;
          case JournalEventKind::AttemptStart:
            advance(w, Phase::BatchDelay, ev.cycle);
            if (w.openAttempt) w.open.startCycle = ev.cycle;
            break;
          case JournalEventKind::AttemptEnd:
            advance(w,
                    ev.failed ? Phase::RetryOverhead
                              : Phase::Execution,
                    ev.cycle);
            if (w.openAttempt) {
                w.open.endCycle = ev.cycle;
                w.open.failed = ev.failed;
                w.jb.attemptSpans.push_back(w.open);
                w.openAttempt = false;
            }
            break;
          case JournalEventKind::Completed:
          case JournalEventKind::Failed:
          case JournalEventKind::Expired:
          case JournalEventKind::Shed:
            // Zero-width after an AttemptEnd; the final queue wait of
            // a job that expired or was shed while waiting.
            advance(w, Phase::QueueWait, ev.cycle);
            w.jb.state = terminal_state(ev.kind);
            w.jb.finishCycle = ev.cycle;
            w.jb.attempts = ev.attempt;
            if (!ev.tenant.empty()) w.jb.tenant = ev.tenant;
            if (!ev.name.empty()) w.jb.name = ev.name;
            if (ev.card != JournalEvent::kNoCard) w.jb.card = ev.card;
            w.terminal = true;
            break;
        }
    }

    std::map<std::string, std::vector<double>> tenantLatencies;
    std::map<int, std::vector<double>> prioLatencies;
    for (auto &[id, w] : walks) {
        POSEIDON_CHECK(w.terminal, "journal job "
                                       << id
                                       << " never reached a terminal "
                                          "state (journal not drained?)");
        JobBreakdown &jb = w.jb;
        jb.endToEndCycles = jb.finishCycle - jb.firstArrivalCycle;
        jb.reportedLatencyCycles = jb.finishCycle - jb.lastArrivalCycle;
        // The gapless walk must land exactly on the end-to-end value:
        // the final marker is fl(finish - firstArrival) by the same
        // expression, so inequality means a missing terminal or an
        // out-of-order stream.
        POSEIDON_CHECK(w.marker == jb.endToEndCycles,
                       "walk for job " << id << " ended at marker "
                                       << w.marker
                                       << ", not end-to-end "
                                       << jb.endToEndCycles);
        // Conservation: the exact sum of every phase component minus
        // the end-to-end latency distills to literal zero. This goes
        // through the per-phase attribution, so a dropped or
        // double-attributed interval fails here.
        ExactSum residual;
        for (std::size_t p = 0; p < kPhaseCount; ++p) {
            for (double c : w.phase[p].components()) residual.add(c);
            jb.phaseCycles[p] = w.phase[p].value();
            jb.phaseExact[p] = w.phase[p].components();
        }
        residual.add(-jb.endToEndCycles);
        double slack = residual.value();
        POSEIDON_CHECK(slack == 0.0,
                       "phase conservation violated for job "
                           << id << ": residual " << slack
                           << " cycles");

        PhaseAccum *accums[2] = {&report.tenants[jb.tenant],
                                 &report.priorities[jb.priority]};
        for (PhaseAccum *acc : accums) {
            ++acc->jobs;
            switch (jb.state) {
              case JobState::Completed: ++acc->completed; break;
              case JobState::Failed: ++acc->failed; break;
              case JobState::Expired: ++acc->expired; break;
              case JobState::Shed: ++acc->shed; break;
              case JobState::Queued: break; // unreachable (terminal)
            }
            acc->endToEndCycles += jb.endToEndCycles;
            for (std::size_t p = 0; p < kPhaseCount; ++p) {
                acc->phaseCycles[p] += jb.phaseCycles[p];
            }
        }
        if (jb.state == JobState::Completed) {
            tenantLatencies[jb.tenant].push_back(
                jb.reportedLatencyCycles);
            prioLatencies[jb.priority].push_back(
                jb.reportedLatencyCycles);
        }
        report.jobs.push_back(std::move(jb));
    }
    for (auto &[tenant, acc] : report.tenants) {
        auto it = tenantLatencies.find(tenant);
        if (it == tenantLatencies.end()) continue;
        acc.p50LatencyCycles = telemetry::exact_quantile(it->second,
                                                         0.50);
        acc.p99LatencyCycles = telemetry::exact_quantile(it->second,
                                                         0.99);
    }
    for (auto &[prio, acc] : report.priorities) {
        auto it = prioLatencies.find(prio);
        if (it == prioLatencies.end()) continue;
        acc.p50LatencyCycles = telemetry::exact_quantile(it->second,
                                                         0.50);
        acc.p99LatencyCycles = telemetry::exact_quantile(it->second,
                                                         0.99);
    }
    return report;
}

const JobBreakdown*
BreakdownReport::find(JobId id) const
{
    for (const JobBreakdown &jb : jobs) {
        if (jb.id == id) return &jb;
    }
    return nullptr;
}

std::vector<const JobBreakdown*>
BreakdownReport::worst(std::size_t n) const
{
    std::vector<const JobBreakdown*> all;
    all.reserve(jobs.size());
    for (const JobBreakdown &jb : jobs) all.push_back(&jb);
    std::stable_sort(all.begin(), all.end(),
                     [](const JobBreakdown *a, const JobBreakdown *b) {
                         if (a->endToEndCycles != b->endToEndCycles) {
                             return a->endToEndCycles >
                                    b->endToEndCycles;
                         }
                         return a->id < b->id;
                     });
    if (all.size() > n) all.resize(n);
    return all;
}

std::string
BreakdownReport::waterfall_text(const JobBreakdown &jb) const
{
    std::ostringstream os;
    os << "job " << jb.id << "  tenant=" << jb.tenant;
    if (!jb.name.empty()) os << "  name=" << jb.name;
    os << "  prio=" << jb.priority << "  " << to_string(jb.state)
       << "  attempts=" << jb.attempts << "\n";
    os << "  end-to-end " << format_cycles(jb.endToEndCycles)
       << " cycles";
    if (clockGHz > 0.0) {
        os << " (" << jb.endToEndCycles / (clockGHz * 1e9) * 1e6
           << " us)";
    }
    os << "   engine-reported "
       << format_cycles(jb.reportedLatencyCycles) << " cycles\n";
    constexpr int kBarWidth = 40;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
        double share = jb.endToEndCycles > 0.0
                           ? jb.phaseCycles[p] / jb.endToEndCycles
                           : 0.0;
        int fill = static_cast<int>(share * kBarWidth + 0.5);
        if (fill > kBarWidth) fill = kBarWidth;
        std::string label = to_string(static_cast<Phase>(p));
        os << "  " << label
           << std::string(15 - std::min<std::size_t>(15, label.size()),
                          ' ');
        std::ostringstream pct;
        pct.precision(1);
        pct << std::fixed << share * 100.0 << "%";
        std::string pctS = pct.str();
        os << std::string(6 - std::min<std::size_t>(6, pctS.size()),
                          ' ')
           << pctS << " |" << std::string(fill, '#')
           << std::string(kBarWidth - fill, ' ') << "| "
           << format_cycles(jb.phaseCycles[p]) << " cycles\n";
    }
    for (const AttemptSpan &at : jb.attemptSpans) {
        os << "  attempt " << at.attempt << "  card " << at.card
           << "  dispatch @" << format_cycles(at.dispatchCycle)
           << "  exec [" << format_cycles(at.startCycle) << ", "
           << format_cycles(at.endCycle) << ")"
           << (at.failed ? "  FAILED" : "") << "\n";
    }
    return os.str();
}

telemetry::Json
BreakdownReport::to_json() const
{
    using telemetry::Json;
    auto phases_json = [](const double *phases) {
        Json pj = Json::object();
        for (std::size_t p = 0; p < kPhaseCount; ++p) {
            pj.set(to_string(static_cast<Phase>(p)), Json(phases[p]));
        }
        return pj;
    };
    auto accum_json = [&](const PhaseAccum &acc) {
        Json a = Json::object();
        a.set("jobs", Json(acc.jobs));
        a.set("completed", Json(acc.completed));
        a.set("failed", Json(acc.failed));
        a.set("expired", Json(acc.expired));
        a.set("shed", Json(acc.shed));
        a.set("end_to_end_cycles", Json(acc.endToEndCycles));
        a.set("phases", phases_json(acc.phaseCycles));
        a.set("p50_latency_cycles", Json(acc.p50LatencyCycles));
        a.set("p99_latency_cycles", Json(acc.p99LatencyCycles));
        return a;
    };

    Json j = Json::object();
    j.set("clock_ghz", Json(clockGHz));
    j.set("cards", Json(static_cast<u64>(cards)));
    Json ja = Json::array();
    for (const JobBreakdown &jb : jobs) {
        Json one = Json::object();
        one.set("id", Json(jb.id));
        one.set("tenant", Json(jb.tenant));
        if (!jb.name.empty()) one.set("name", Json(jb.name));
        one.set("prio", Json(jb.priority));
        one.set("state", Json(to_string(jb.state)));
        if (jb.card != JournalEvent::kNoCard) {
            one.set("card", Json(static_cast<u64>(jb.card)));
        }
        one.set("attempts", Json(jb.attempts));
        one.set("first_arrival_cycle", Json(jb.firstArrivalCycle));
        one.set("last_arrival_cycle", Json(jb.lastArrivalCycle));
        one.set("finish_cycle", Json(jb.finishCycle));
        one.set("end_to_end_cycles", Json(jb.endToEndCycles));
        one.set("reported_latency_cycles",
                Json(jb.reportedLatencyCycles));
        one.set("phases", phases_json(jb.phaseCycles));
        Json jat = Json::array();
        for (const AttemptSpan &at : jb.attemptSpans) {
            Json a = Json::object();
            a.set("attempt", Json(at.attempt));
            a.set("card", Json(static_cast<u64>(at.card)));
            a.set("dispatch_cycle", Json(at.dispatchCycle));
            a.set("start_cycle", Json(at.startCycle));
            a.set("end_cycle", Json(at.endCycle));
            a.set("failed", Json(at.failed));
            jat.push_back(std::move(a));
        }
        one.set("attempt_spans", std::move(jat));
        ja.push_back(std::move(one));
    }
    j.set("jobs", std::move(ja));
    Json jt = Json::object();
    for (const auto &[tenant, acc] : tenants) {
        jt.set(tenant, accum_json(acc));
    }
    j.set("tenants", std::move(jt));
    Json jp = Json::object();
    for (const auto &[prio, acc] : priorities) {
        jp.set(std::to_string(prio), accum_json(acc));
    }
    j.set("priorities", std::move(jp));
    return j;
}

void
BreakdownReport::export_metrics(telemetry::MetricsRegistry &reg,
                                std::size_t fromJob) const
{
    const double toUs =
        clockGHz > 0.0 ? 1.0 / (clockGHz * 1e9) * 1e6 : 0.0;
    for (std::size_t i = fromJob; i < jobs.size(); ++i) {
        const JobBreakdown &jb = jobs[i];
        if (toUs <= 0.0) break;
        for (std::size_t p = 0; p < kPhaseCount; ++p) {
            const char *phase = to_string(static_cast<Phase>(p));
            double us = jb.phaseCycles[p] * toUs;
            reg.histogram(std::string("serve.phase_us.") + phase +
                          ".tenant." + jb.tenant)
                .observe(us);
            reg.histogram(std::string("serve.phase_us.") + phase +
                          ".prio." + std::to_string(jb.priority))
                .observe(us);
        }
    }
    double total = 0.0;
    double perPhase[kPhaseCount] = {};
    for (const JobBreakdown &jb : jobs) {
        total += jb.endToEndCycles;
        for (std::size_t p = 0; p < kPhaseCount; ++p) {
            perPhase[p] += jb.phaseCycles[p];
        }
    }
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
        double share = total > 0.0 ? perPhase[p] / total : 0.0;
        reg.gauge(std::string("serve.phase_share.") +
                  to_string(static_cast<Phase>(p)))
            .set(share);
    }
}

std::string
SloConfig::str() const
{
    std::string out;
    for (const auto &[prio, target] : p99TargetCycles) {
        if (!out.empty()) out += ';';
        out += "prio" + std::to_string(prio) + "=" +
               telemetry::Json(target).dump();
    }
    if (!out.empty()) out += ';';
    out += "budget=" + telemetry::Json(budgetFraction).dump();
    out += ";burn=" + telemetry::Json(alertBurnRate).dump();
    return out;
}

SloConfig
SloConfig::parse(const std::string &spec)
{
    SloConfig cfg;
    std::string token;
    std::istringstream in(spec);
    auto parse_double = [](const std::string &s,
                           const std::string &what) {
        char *end = nullptr;
        double v = std::strtod(s.c_str(), &end);
        POSEIDON_REQUIRE(end && *end == '\0' && !s.empty() &&
                             std::isfinite(v),
                         "SloConfig: malformed number \""
                             << s << "\" for " << what);
        return v;
    };
    while (std::getline(in, token, ';')) {
        // Trim surrounding whitespace.
        std::size_t b = token.find_first_not_of(" \t\n\r");
        if (b == std::string::npos) continue;
        std::size_t e = token.find_last_not_of(" \t\n\r");
        token = token.substr(b, e - b + 1);
        std::size_t eq = token.find('=');
        POSEIDON_REQUIRE(eq != std::string::npos,
                         "SloConfig: clause \""
                             << token << "\" is not key=value");
        std::string key = token.substr(0, eq);
        std::string val = token.substr(eq + 1);
        if (key == "budget") {
            cfg.budgetFraction = parse_double(val, key);
            POSEIDON_REQUIRE(cfg.budgetFraction > 0.0 &&
                                 cfg.budgetFraction <= 1.0,
                             "SloConfig: budget must be in (0, 1]");
        } else if (key == "burn") {
            cfg.alertBurnRate = parse_double(val, key);
            POSEIDON_REQUIRE(cfg.alertBurnRate > 0.0,
                             "SloConfig: burn must be > 0");
        } else if (key.rfind("prio", 0) == 0) {
            std::string ps = key.substr(4);
            char *end = nullptr;
            long prio = std::strtol(ps.c_str(), &end, 10);
            POSEIDON_REQUIRE(end && *end == '\0' && !ps.empty(),
                             "SloConfig: malformed priority in \""
                                 << key << "\"");
            double target = parse_double(val, key);
            POSEIDON_REQUIRE(target > 0.0,
                             "SloConfig: target for " << key
                                 << " must be > 0 cycles");
            cfg.p99TargetCycles[static_cast<int>(prio)] = target;
        } else {
            POSEIDON_THROW(InvalidArgument,
                           "SloConfig: unknown key \"" << key
                               << "\" (want prio<N>, budget, burn)");
        }
    }
    return cfg;
}

telemetry::Json
SloReport::to_json() const
{
    using telemetry::Json;
    Json j = Json::object();
    j.set("budget_fraction", Json(budgetFraction));
    j.set("alert_burn_rate", Json(alertBurnRate));
    j.set("alerts", Json(alerts));
    Json js = Json::array();
    for (const SloStatus &s : statuses) {
        Json one = Json::object();
        one.set("prio", Json(s.priority));
        one.set("target_cycles", Json(s.targetCycles));
        one.set("jobs", Json(s.jobs));
        one.set("violations", Json(s.violations));
        one.set("violation_share", Json(s.violationShare));
        one.set("burn_rate", Json(s.burnRate));
        one.set("alerting", Json(s.alerting));
        js.push_back(std::move(one));
    }
    j.set("statuses", std::move(js));
    return j;
}

void
SloReport::export_metrics(telemetry::MetricsRegistry &reg) const
{
    for (const SloStatus &s : statuses) {
        std::string suffix = ".p" + std::to_string(s.priority);
        reg.gauge("serve.slo.burn_rate" + suffix).set(s.burnRate);
        reg.gauge("serve.slo.violations" + suffix)
            .set(static_cast<double>(s.violations));
        reg.gauge("serve.slo.alerting" + suffix)
            .set(s.alerting ? 1.0 : 0.0);
    }
    reg.gauge("serve.slo.alerts").set(static_cast<double>(alerts));
}

SloReport
evaluate_slo(const BreakdownReport &report, const SloConfig &cfg)
{
    SloReport out;
    out.budgetFraction = cfg.budgetFraction;
    out.alertBurnRate = cfg.alertBurnRate;
    for (const auto &[prio, target] : cfg.p99TargetCycles) {
        SloStatus s;
        s.priority = prio;
        s.targetCycles = target;
        for (const JobBreakdown &jb : report.jobs) {
            if (jb.priority != prio) continue;
            ++s.jobs;
            bool violated = jb.state != JobState::Completed ||
                            jb.endToEndCycles > target;
            if (violated) ++s.violations;
        }
        s.violationShare =
            s.jobs > 0 ? static_cast<double>(s.violations) /
                             static_cast<double>(s.jobs)
                       : 0.0;
        s.burnRate = s.violationShare / cfg.budgetFraction;
        s.alerting = s.jobs > 0 && s.burnRate >= cfg.alertBurnRate;
        if (s.alerting) ++out.alerts;
        out.statuses.push_back(s);
    }
    return out;
}

} // namespace poseidon::serve
