#ifndef POSEIDON_SERVE_CHAOS_H_
#define POSEIDON_SERVE_CHAOS_H_

/**
 * @file
 * Chaos engineering for the simulated fleet: a deterministic,
 * seed-driven fault-schedule DSL and a campaign runner that drives
 * scripted fault storms through the serving engine and checks
 * conservation invariants.
 *
 * A ChaosSchedule is a list of timed events on the simulated clock:
 *
 *   CardDeath{card=0, cycle=2e6, duration=5e6}
 *       the card silently corrupts every attempt in the window — the
 *       model of a died/hung card whose results can't be trusted;
 *   HbmDegrade{card=1, cycle=1e6, stack=0, retryShare=0.4}
 *       an HBM stack starts throwing detected-uncorrected words: each
 *       attempt absorbs retryShare * cycles of ECC replay;
 *   FaultStorm{start=0, end=3e6, rate=0.2}
 *       fleet-wide: every attempt in the window is silently corrupted
 *       with probability `rate` (a deterministic per-attempt coin
 *       drawn from the schedule seed);
 *   GrayCard{card=2, slowdown=3}
 *       the card is slow but correct: attempts take slowdown x their
 *       modeled cycles (a gray failure the breaker must NOT trip on).
 *
 * Schedules parse from exactly that text form (see
 * ChaosSchedule::parse) so CI scripts and the chaos_campaign tool can
 * describe fault storms without recompiling. Injection is a pure
 * function of (schedule, card, job, attempt, dispatch cycle): the
 * perturbed SimResult is bit-identical at every host thread count.
 *
 * The campaign layer (Scenario / run_scenario) submits a mixed
 * multi-tenant load against a fleet under a schedule and verifies the
 * conservation invariant: every submitted job reaches exactly one
 * terminal state (completed, failed, expired, or shed) and every
 * ticket future is ready when drain() returns.
 */

#include <atomic>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "hw/sim.h"
#include "serve/engine.h"
#include "telemetry/json.h"

namespace poseidon::serve {

/// One scheduled fault event (see file comment for the DSL form).
struct ChaosEvent
{
    enum class Kind : unsigned {
        CardDeath,
        HbmDegrade,
        FaultStorm,
        GrayCard,
    };

    /// Target every card (FaultStorm default).
    static constexpr std::size_t kAllCards =
        static_cast<std::size_t>(-1);

    Kind kind = Kind::FaultStorm;
    std::size_t card = kAllCards;
    double startCycle = 0.0;
    double endCycle = std::numeric_limits<double>::infinity();
    double rate = 0.0;        ///< FaultStorm corruption probability
    double retryShare = 0.25; ///< HbmDegrade replay share of cycles
    double slowdown = 1.0;    ///< GrayCard cycle multiplier
    unsigned stack = 0;       ///< HbmDegrade: which HBM stack

    bool active_at(double cycle) const
    {
        return cycle >= startCycle && cycle < endCycle;
    }
    bool targets(std::size_t c) const
    {
        return card == kAllCards || card == c;
    }
};

/// Short stable name ("CardDeath", ...).
const char* to_string(ChaosEvent::Kind k);

/// A full fault schedule: events plus the seed of the storm coins.
struct ChaosSchedule
{
    std::vector<ChaosEvent> events;
    u64 seed = 0xC4A0517ULL;

    bool empty() const { return events.empty(); }

    /// Render back to the DSL text form (parse round-trips).
    std::string str() const;

    /**
     * Parse the DSL: `;`- or newline-separated `Kind{k=v, ...}`
     * clauses. Keys: card, cycle (start), duration, start, end, rate,
     * retryShare, slowdown, stack, plus a standalone `seed=<n>`
     * clause. Numbers accept scientific notation (`2e6`). Throws
     * poseidon::InvalidArgument on unknown kinds/keys or malformed
     * values, naming the offending clause.
     */
    static ChaosSchedule parse(const std::string &dsl);
};

/// Applies a schedule to priced attempts. Thread-safe: perturb() is
/// called from the engine's parallel pricing phase; the injection
/// counters are order-independent atomic sums.
class ChaosInjector
{
  public:
    explicit ChaosInjector(ChaosSchedule schedule = ChaosSchedule{});

    const ChaosSchedule& schedule() const { return schedule_; }
    bool active() const { return !schedule_.events.empty(); }

    /**
     * Perturb one priced attempt in place. `dispatchCycle` is the
     * simulated time the attempt started; `job` 0 denotes an engine
     * probe. Deterministic: the same (card, job, attempt,
     * dispatchCycle) always injects the same faults.
     */
    void perturb(std::size_t card, JobId job, u64 attempt,
                 double dispatchCycle, hw::SimResult &r) const;

    u64 deaths_injected() const { return deaths_.load(); }
    u64 storm_corruptions() const { return storms_.load(); }
    u64 degrades_injected() const { return degrades_.load(); }
    u64 slowdowns_injected() const { return slowdowns_.load(); }

  private:
    ChaosSchedule schedule_;
    mutable std::atomic<u64> deaths_{0};
    mutable std::atomic<u64> storms_{0};
    mutable std::atomic<u64> degrades_{0};
    mutable std::atomic<u64> slowdowns_{0};
};

/// One scripted chaos scenario: a fleet, a load, and a schedule.
struct Scenario
{
    std::string name;
    std::string description;
    ChaosSchedule schedule;

    std::size_t cards = 4;
    std::size_t jobs = 24;
    std::size_t tenants = 3;
    /// Trace size class of the synthetic load (log2 elements of the
    /// per-job op mix); ignored when `workload` names a paper trace.
    unsigned logElems = 16;
    /// Optional paper workload name: every job prices this trace.
    std::string workload;

    u64 maxAttempts = 4;
    double backoffBaseCycles = 1.0e5;
    /// Relative deadline per job (infinity = none).
    double deadlineSlackCycles =
        std::numeric_limits<double>::infinity();
    std::size_t maxQueueDepth = 0; ///< 0 = no admission limit

    HealthConfig health;

    /// TSDB sampling cadence in simulated cycles (0 = TSDB off);
    /// standard_scenarios() sets horizon/64 so every scenario's
    /// saturation and recovery become inspectable curves.
    double tsdbCadenceCycles = 0.0;
    std::size_t tsdbCapacity = 4096;
    /// Alert rules (telemetry/alerts.h DSL) evaluated at each sample
    /// tick; requires tsdbCadenceCycles > 0.
    std::string alertRules;
};

/// Outcome of one scenario run, plus the invariant verdicts.
struct CampaignReport
{
    std::string scenario;
    u64 submitted = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 expired = 0;
    u64 shed = 0;
    u64 retries = 0;
    u64 quarantines = 0;
    u64 readmissions = 0;
    u64 probes = 0;

    /// submitted == completed + failed + expired + shed AND every
    /// ticket future was ready when drain() returned.
    bool conserved = false;
    /// Every future became ready (part of `conserved`, reported
    /// separately for diagnostics).
    bool allTicketsResolved = false;
    /// The lifecycle journal agreed with the engine: decompose()
    /// reproduced the per-state counts and every per-tenant p50/p99
    /// bit-for-bit, and every job conserved its phase cycles (the
    /// decompose() POSEIDON_CHECKs did not fire).
    bool journalConsistent = false;

    double availability = 0.0; ///< completed / submitted
    double goodputJobsPerSec = 0.0;
    double horizonCycles = 0.0;

    ServeStats stats;
    /// Serialized journal (JSONL) of the run — compare across thread
    /// counts for byte-identical determinism.
    std::string journalJsonl;
    /// Serialized TSDB (JSONL; "" when the scenario sampled none) —
    /// same byte-identical determinism contract as the journal.
    std::string tsdbJsonl;
    /// Alert outcomes (0 when the scenario declared no rules).
    u64 alertsFired = 0;
    u64 alertsResolved = 0;
    /// Every alert transition, in evaluation order (fire/resolve
    /// cycles gate against fault windows in bench_chaos).
    std::vector<telemetry::AlertTransition> alertLog;

    bool ok() const { return conserved && journalConsistent; }
    telemetry::Json to_json() const;
};

/**
 * Run one scenario: build the fleet + engine with the scenario's
 * health/admission/chaos knobs, submit the mixed multi-tenant load,
 * drain, and check the conservation invariant. Deterministic on the
 * simulated clock — callers may re-run under different
 * POSEIDON_THREADS and compare reports bit-for-bit.
 */
CampaignReport run_scenario(const Scenario &sc);

/// The scripted standard campaign: card death mid-drain, fault storm,
/// death during a storm, HBM degrade, gray card, and overload shed.
std::vector<Scenario> standard_scenarios();

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_CHAOS_H_
