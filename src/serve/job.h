#ifndef POSEIDON_SERVE_JOB_H_
#define POSEIDON_SERVE_JOB_H_

/**
 * @file
 * Job types of the multi-tenant serving engine.
 *
 * A job is one unit of accelerator work a client submits to the
 * service: either a compiled ISA program (an isa::Trace) or the name
 * of a paper workload (resolved through workloads::find_workload at
 * submission). Jobs carry the service-level envelope a deployed FHE
 * accelerator needs — tenant identity for fairness accounting, a
 * priority class, an arrival time and deadline on the simulated
 * clock, and a bounded-retry policy against the PR-1 HBM fault model.
 *
 * Time is *simulated* accelerator time throughout: cycles on the
 * modeled 300 MHz clock, not host wall time. The engine's scheduling
 * decisions and every latency it reports are functions of modeled
 * cycles only, which is what makes serving results bit-identical at
 * every host thread count (see DESIGN.md §10).
 */

#include <functional>
#include <future>
#include <limits>
#include <string>

#include "common/status.h"
#include "hw/sim.h"
#include "isa/trace.h"

namespace poseidon::serve {

/// Monotonically assigned job identifier (1-based; 0 is invalid).
using JobId = u64;

/// Bounded-retry policy against the SECDED fault model (hw/faults.h).
///
/// An attempt *fails* when the card's ECC campaign for the run either
/// leaks a silent corruption (faults.silent > 0 — the end-to-end
/// integrity guard of PR 1) or spends more than `retryCycleBudget`
/// cycles replaying detected-uncorrected transfers. A failed attempt
/// still occupied its card for the full modeled duration; the job
/// then fails over to a *different* shard (the failing card is
/// excluded from the rerun whenever the fleet has more than one card)
/// until `maxAttempts` is exhausted.
struct RetryPolicy
{
    /// Total attempts, including the first (1 disables failover).
    u64 maxAttempts = 3;

    /// ECC replay cycles an attempt may absorb before the card is
    /// declared faulty for this job (infinity: only silent corruption
    /// fails an attempt).
    double retryCycleBudget = std::numeric_limits<double>::infinity();

    /// Exponential backoff between attempts, in simulated cycles:
    /// attempt k+1 becomes eligible backoffBaseCycles *
    /// backoffMultiplier^(k-1) cycles after attempt k failed (0
    /// keeps the immediate-requeue behavior). Retries are
    /// deadline-aware: when the backed-off arrival plus the estimated
    /// cost (last attempt's cycles + dispatch overhead) cannot meet
    /// the job's deadline, the retry is skipped and the job fails
    /// immediately instead of burning a card on a doomed rerun.
    double backoffBaseCycles = 0.0;
    double backoffMultiplier = 2.0;
};

/// Lifecycle of a job inside the engine.
enum class JobState : unsigned {
    Queued,    ///< accepted, waiting for a card
    Completed, ///< ran to completion; JobResult::sim is valid
    Failed,    ///< every retry attempt exhausted on faulty runs
    Expired,   ///< missed its dispatch deadline while queued
    Shed,      ///< dropped by admission control (typed Overloaded)
};

/// Short stable name of a state ("Queued", "Completed", ...).
const char* to_string(JobState s);

/// Everything the engine reports back for one finished job.
struct JobResult
{
    JobId id = 0;
    JobState state = JobState::Queued;
    std::string tenant;
    std::string name;

    /// Card that finished (or last touched) the job; ~0 when the job
    /// never reached a card (e.g. Expired).
    std::size_t card = static_cast<std::size_t>(-1);

    /// Attempts consumed (>= 2 means at least one fault failover).
    u64 attempts = 0;

    // All times are absolute simulated cycles on the fleet clock.
    double arrivalCycle = 0.0;
    double startCycle = 0.0;  ///< dispatch of the successful attempt
    double finishCycle = 0.0; ///< completion (== expiry time if Expired)

    /// Timing/traffic of the successful run (zeroed otherwise).
    hw::SimResult sim;

    /// Human-readable failure reason for Failed / Expired / Shed.
    std::string error;

    /// Typed category of the failure, wire-safe for error frames
    /// (kOk when Completed; kOverloaded when Shed; kFaultDetected
    /// when Failed on exhausted/skipped retries).
    ErrorCode errorCode = ErrorCode::kOk;

    /// Queueing + service latency in simulated cycles.
    double latency_cycles() const { return finishCycle - arrivalCycle; }
};

/// One unit of work submitted to the engine.
struct JobSpec
{
    /// Fairness accounting key; jobs with the same tenant share one
    /// FIFO queue and one attained-service counter.
    std::string tenant = "default";

    /// Optional label echoed into JobResult (defaults to `workload`
    /// when a named workload is submitted).
    std::string name;

    /// Compiled ISA program to execute. Ignored when `workload` is
    /// set.
    isa::Trace trace;

    /// Named paper workload (forgiving spelling, see
    /// workloads::find_workload); resolved once at submission.
    std::string workload;

    /// Priority class: higher runs first, across all tenants. Within
    /// one class, tenants are served least-attained-cycles first.
    int priority = 0;

    /// Absolute arrival time on the simulated clock. Jobs are not
    /// eligible for dispatch before this cycle.
    double arrivalCycle = 0.0;

    /// Absolute dispatch deadline: a job still queued when a card
    /// considers it after this cycle is Expired (checked at dispatch
    /// time, not continuously).
    double deadlineCycle = std::numeric_limits<double>::infinity();

    RetryPolicy retry;

    /// Batching compatibility key. Jobs with equal keys (and equal
    /// priority, same tenant) may be coalesced into one card dispatch.
    /// Empty derives "deg:<max ring degree>" from the trace.
    std::string batchKey;

    /// Invoked on the drain()ing thread when the job finishes (any
    /// terminal state). May submit follow-up jobs (closed-loop
    /// clients); must not call ServingEngine::drain.
    std::function<void(const JobResult &)> callback;
};

/// Handle returned by submit(): the job id plus a shared future that
/// becomes ready when the job reaches a terminal state during drain().
struct JobTicket
{
    JobId id = 0;
    std::shared_future<JobResult> result;
};

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_JOB_H_
