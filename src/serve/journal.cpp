#include "serve/journal.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace poseidon::serve {

const char*
to_string(JournalEventKind k)
{
    switch (k) {
      case JournalEventKind::Submitted: return "Submitted";
      case JournalEventKind::Admitted: return "Admitted";
      case JournalEventKind::Enqueued: return "Enqueued";
      case JournalEventKind::BatchFormed: return "BatchFormed";
      case JournalEventKind::Dispatched: return "Dispatched";
      case JournalEventKind::AttemptStart: return "AttemptStart";
      case JournalEventKind::AttemptEnd: return "AttemptEnd";
      case JournalEventKind::FaultRetry: return "FaultRetry";
      case JournalEventKind::BackoffScheduled: return "BackoffScheduled";
      case JournalEventKind::ProbeInteraction: return "ProbeInteraction";
      case JournalEventKind::Completed: return "Completed";
      case JournalEventKind::Failed: return "Failed";
      case JournalEventKind::Expired: return "Expired";
      case JournalEventKind::Shed: return "Shed";
      case JournalEventKind::AlertTransition: return "AlertTransition";
    }
    return "?";
}

bool
journal_kind_from_string(const std::string &s, JournalEventKind &out)
{
    static constexpr JournalEventKind kAll[] = {
        JournalEventKind::Submitted,        JournalEventKind::Admitted,
        JournalEventKind::Enqueued,         JournalEventKind::BatchFormed,
        JournalEventKind::Dispatched,       JournalEventKind::AttemptStart,
        JournalEventKind::AttemptEnd,       JournalEventKind::FaultRetry,
        JournalEventKind::BackoffScheduled, JournalEventKind::ProbeInteraction,
        JournalEventKind::Completed,        JournalEventKind::Failed,
        JournalEventKind::Expired,          JournalEventKind::Shed,
        JournalEventKind::AlertTransition,
    };
    for (JournalEventKind k : kAll) {
        if (s == to_string(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

telemetry::Json
JournalEvent::to_json() const
{
    using telemetry::Json;
    // Fixed key order + default-suppressed fields: the serialized
    // line is a pure function of the event, which is what the
    // byte-identical determinism guarantee rests on.
    Json j = Json::object();
    j.set("ev", Json(to_string(kind)));
    j.set("job", Json(job));
    j.set("cycle", Json(cycle));
    if (!tenant.empty()) j.set("tenant", Json(tenant));
    if (!name.empty()) j.set("name", Json(name));
    if (priority != 0) j.set("prio", Json(priority));
    if (card != kNoCard) {
        j.set("card", Json(static_cast<u64>(card)));
    }
    if (attempt != 0) j.set("attempt", Json(attempt));
    if (batch != 0) j.set("batch", Json(batch));
    if (batchSize != 0) j.set("size", Json(batchSize));
    if (value != 0.0) j.set("value", Json(value));
    if (failed) j.set("failed", Json(true));
    if (!detail.empty()) j.set("detail", Json(detail));
    return j;
}

JournalEvent
JournalEvent::from_json(const telemetry::Json &j)
{
    POSEIDON_REQUIRE_T(ParseError, j.is_object(),
                       "journal event is not a JSON object");
    JournalEvent ev;
    POSEIDON_REQUIRE_T(ParseError,
                       j.contains("ev") && j.contains("job") &&
                           j.contains("cycle"),
                       "journal event misses ev/job/cycle");
    POSEIDON_REQUIRE_T(
        ParseError,
        journal_kind_from_string(j.at("ev").as_string(), ev.kind),
        "unknown journal event kind \"" << j.at("ev").as_string()
                                        << "\"");
    ev.job = static_cast<JobId>(j.at("job").as_number());
    ev.cycle = j.at("cycle").as_number();
    if (j.contains("tenant")) ev.tenant = j.at("tenant").as_string();
    if (j.contains("name")) ev.name = j.at("name").as_string();
    if (j.contains("prio")) {
        ev.priority = static_cast<int>(j.at("prio").as_number());
    }
    if (j.contains("card")) {
        ev.card = static_cast<std::size_t>(j.at("card").as_number());
    }
    if (j.contains("attempt")) {
        ev.attempt = static_cast<u64>(j.at("attempt").as_number());
    }
    if (j.contains("batch")) {
        ev.batch = static_cast<u64>(j.at("batch").as_number());
    }
    if (j.contains("size")) {
        ev.batchSize = static_cast<u64>(j.at("size").as_number());
    }
    if (j.contains("value")) ev.value = j.at("value").as_number();
    if (j.contains("failed")) ev.failed = j.at("failed").as_bool();
    if (j.contains("detail")) ev.detail = j.at("detail").as_string();
    return ev;
}

Journal::Journal(Journal &&o) noexcept
    : enabled_(o.enabled_),
      clockGHz_(o.clockGHz_),
      cards_(o.cards_),
      nextBatch_(o.nextBatch_),
      events_(std::move(o.events_))
{
}

Journal&
Journal::operator=(Journal &&o) noexcept
{
    if (this != &o) {
        enabled_ = o.enabled_;
        clockGHz_ = o.clockGHz_;
        cards_ = o.cards_;
        nextBatch_ = o.nextBatch_;
        events_ = std::move(o.events_);
    }
    return *this;
}

void
Journal::set_meta(double clockGHz, std::size_t cards)
{
    clockGHz_ = clockGHz;
    cards_ = cards;
}

void
Journal::append(JournalEvent ev)
{
    if (!enabled_) return;
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(std::move(ev));
}

u64
Journal::next_batch_id()
{
    std::lock_guard<std::mutex> lk(mu_);
    return nextBatch_++;
}

std::size_t
Journal::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
}

std::string
Journal::to_jsonl() const
{
    using telemetry::Json;
    std::lock_guard<std::mutex> lk(mu_);
    Json header = Json::object();
    header.set("schema", Json(kSchemaName));
    header.set("schema_version", Json(kSchemaVersion));
    header.set("clock_ghz", Json(clockGHz_));
    header.set("cards", Json(static_cast<u64>(cards_)));
    header.set("events", Json(static_cast<u64>(events_.size())));
    std::string out = header.dump();
    out += '\n';
    for (const JournalEvent &ev : events_) {
        out += ev.to_json().dump();
        out += '\n';
    }
    return out;
}

bool
Journal::write_jsonl(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << to_jsonl();
    return static_cast<bool>(out);
}

Journal
Journal::parse_jsonl(const std::string &text)
{
    using telemetry::Json;
    Journal jr;
    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    std::size_t lineNo = 0;
    std::size_t declared = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty()) continue;
        Json j = Json::parse(line); // throws ParseError with offset
        if (!sawHeader) {
            POSEIDON_REQUIRE_T(
                ParseError,
                j.is_object() && j.contains("schema") &&
                    j.at("schema").as_string() == kSchemaName,
                "journal line 1 is not a " << kSchemaName
                                           << " header");
            POSEIDON_REQUIRE_T(
                ParseError,
                j.contains("schema_version") &&
                    j.at("schema_version").as_number() ==
                        kSchemaVersion,
                "unsupported journal schema version");
            jr.clockGHz_ = j.contains("clock_ghz")
                               ? j.at("clock_ghz").as_number()
                               : 0.0;
            jr.cards_ = j.contains("cards")
                            ? static_cast<std::size_t>(
                                  j.at("cards").as_number())
                            : 0;
            declared = j.contains("events")
                           ? static_cast<std::size_t>(
                                 j.at("events").as_number())
                           : 0;
            sawHeader = true;
            continue;
        }
        try {
            jr.events_.push_back(JournalEvent::from_json(j));
        } catch (const Error &e) {
            POSEIDON_THROW(ParseError, "journal line "
                                           << lineNo << ": "
                                           << e.message());
        }
    }
    POSEIDON_REQUIRE_T(ParseError, sawHeader,
                       "journal text has no header line");
    POSEIDON_REQUIRE_T(ParseError, jr.events_.size() == declared,
                       "journal header declares "
                           << declared << " events but "
                           << jr.events_.size() << " lines follow");
    return jr;
}

Journal
Journal::load_jsonl(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    POSEIDON_REQUIRE_T(ParseError, static_cast<bool>(in),
                       "cannot open journal file \"" << path << "\"");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_jsonl(buf.str());
}

} // namespace poseidon::serve
