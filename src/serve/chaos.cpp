#include "serve/chaos.h"

#include <cctype>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "hw/faults.h"
#include "serve/latency_breakdown.h"

namespace poseidon::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Uniform [0, 1) coin from one 64-bit hash (top 53 bits).
double
unit_coin(u64 h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string
fmt(double v)
{
    if (v == kInf) return "inf";
    std::ostringstream os;
    os << v;
    return os.str();
}

/// The synthetic per-job program of a chaos scenario: an HBM round
/// trip with NTT + element-wise work at 2^logElems elements.
isa::Trace
synthetic_trace(unsigned logElems)
{
    const u64 elems = u64(1) << logElems;
    isa::Trace t;
    t.emit(isa::OpKind::HBM_RD, elems, 0, isa::BasicOp::Other);
    t.emit(isa::OpKind::NTT, elems, 4096, isa::BasicOp::Other);
    t.emit(isa::OpKind::MM, elems, 0, isa::BasicOp::Other);
    t.emit(isa::OpKind::MA, elems, 0, isa::BasicOp::Other);
    t.emit(isa::OpKind::HBM_WR, elems, 0, isa::BasicOp::Other);
    return t;
}

struct Clause
{
    std::string kind;
    std::vector<std::pair<std::string, double>> kvs;
    std::string text; // original, for error messages
};

double
parse_number(const std::string &clause, const std::string &tok)
{
    if (tok == "inf") return kInf;
    try {
        std::size_t used = 0;
        double v = std::stod(tok, &used);
        POSEIDON_REQUIRE(used == tok.size(),
                         "chaos DSL: malformed number \"" << tok
                         << "\" in clause \"" << clause << "\"");
        return v;
    } catch (const std::invalid_argument &) {
        POSEIDON_REQUIRE(false, "chaos DSL: malformed number \""
                         << tok << "\" in clause \"" << clause
                         << "\"");
    } catch (const std::out_of_range &) {
        POSEIDON_REQUIRE(false, "chaos DSL: number out of range \""
                         << tok << "\" in clause \"" << clause
                         << "\"");
    }
    return 0.0; // unreachable
}

std::string
strip(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
    }
    while (e > b &&
           std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

Clause
parse_clause(const std::string &raw)
{
    Clause c;
    c.text = raw;
    std::size_t brace = raw.find('{');
    if (brace == std::string::npos) {
        // Standalone `key=value` clause (only `seed=` is known).
        std::size_t eq = raw.find('=');
        POSEIDON_REQUIRE(eq != std::string::npos,
                         "chaos DSL: malformed clause \"" << raw
                         << "\" (expected Kind{...} or seed=N)");
        c.kind = strip(raw.substr(0, eq));
        c.kvs.emplace_back(c.kind,
                           parse_number(raw, strip(raw.substr(eq + 1))));
        return c;
    }
    POSEIDON_REQUIRE(!raw.empty() && raw.back() == '}',
                     "chaos DSL: missing closing brace in \"" << raw
                     << "\"");
    c.kind = strip(raw.substr(0, brace));
    std::string body =
        raw.substr(brace + 1, raw.size() - brace - 2);
    std::istringstream in(body);
    std::string item;
    while (std::getline(in, item, ',')) {
        item = strip(item);
        if (item.empty()) continue;
        std::size_t eq = item.find('=');
        POSEIDON_REQUIRE(eq != std::string::npos,
                         "chaos DSL: expected key=value, got \""
                         << item << "\" in clause \"" << raw << "\"");
        c.kvs.emplace_back(strip(item.substr(0, eq)),
                           parse_number(raw,
                                        strip(item.substr(eq + 1))));
    }
    return c;
}

/// Journal-vs-engine cross-check of one finished run: decompose the
/// journal and demand that it reproduces the engine's per-state
/// counts and every per-tenant p50/p99 *bit-for-bit*, and that every
/// job's phase expansion distills to its end-to-end latency (the
/// conservation invariant, re-asserted from outside decompose()).
bool
journal_matches_stats(const Journal &journal, const ServeStats &s)
{
    if (journal.empty()) return false;
    BreakdownReport br = decompose(journal);
    if (br.jobs.size() != s.submitted) return false;
    u64 completed = 0, failed = 0, expired = 0, shed = 0;
    for (const JobBreakdown &jb : br.jobs) {
        if (jb.phase_sum() != jb.endToEndCycles) return false;
        switch (jb.state) {
          case JobState::Completed: ++completed; break;
          case JobState::Failed: ++failed; break;
          case JobState::Expired: ++expired; break;
          case JobState::Shed: ++shed; break;
          case JobState::Queued: return false;
        }
    }
    if (completed != s.completed || failed != s.failed ||
        expired != s.expired || shed != s.shed) {
        return false;
    }
    for (const auto &[tenant, t] : s.tenants) {
        auto it = br.tenants.find(tenant);
        if (it == br.tenants.end()) return false;
        const PhaseAccum &acc = it->second;
        if (acc.completed != t.completed || acc.failed != t.failed ||
            acc.expired != t.expired || acc.shed != t.shed) {
            return false;
        }
        if (acc.p50LatencyCycles != t.p50LatencyCycles ||
            acc.p99LatencyCycles != t.p99LatencyCycles) {
            return false;
        }
    }
    return true;
}

} // namespace

const char*
to_string(ChaosEvent::Kind k)
{
    switch (k) {
      case ChaosEvent::Kind::CardDeath: return "CardDeath";
      case ChaosEvent::Kind::HbmDegrade: return "HbmDegrade";
      case ChaosEvent::Kind::FaultStorm: return "FaultStorm";
      case ChaosEvent::Kind::GrayCard: return "GrayCard";
    }
    return "?";
}

std::string
ChaosSchedule::str() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const ChaosEvent &e = events[i];
        if (i) os << "; ";
        os << to_string(e.kind) << "{";
        bool first = true;
        auto kv = [&](const char *k, double v) {
            if (!first) os << ", ";
            os << k << "=" << fmt(v);
            first = false;
        };
        if (e.card != ChaosEvent::kAllCards) {
            kv("card", static_cast<double>(e.card));
        }
        kv("start", e.startCycle);
        if (e.endCycle != kInf) kv("end", e.endCycle);
        switch (e.kind) {
          case ChaosEvent::Kind::FaultStorm:
            kv("rate", e.rate);
            break;
          case ChaosEvent::Kind::HbmDegrade:
            kv("retryShare", e.retryShare);
            kv("stack", static_cast<double>(e.stack));
            break;
          case ChaosEvent::Kind::GrayCard:
            kv("slowdown", e.slowdown);
            break;
          case ChaosEvent::Kind::CardDeath:
            break;
        }
        os << "}";
    }
    if (seed != ChaosSchedule{}.seed) {
        if (!events.empty()) os << "; ";
        os << "seed=" << seed;
    }
    return os.str();
}

ChaosSchedule
ChaosSchedule::parse(const std::string &dsl)
{
    ChaosSchedule sched;
    std::string norm = dsl;
    for (char &ch : norm) {
        if (ch == '\n') ch = ';';
    }
    std::istringstream in(norm);
    std::string rawClause;
    while (std::getline(in, rawClause, ';')) {
        rawClause = strip(rawClause);
        if (rawClause.empty()) continue;
        Clause c = parse_clause(rawClause);

        if (c.kind == "seed") {
            sched.seed = static_cast<u64>(c.kvs.front().second);
            continue;
        }

        ChaosEvent e;
        if (c.kind == "CardDeath") {
            e.kind = ChaosEvent::Kind::CardDeath;
        } else if (c.kind == "HbmDegrade") {
            e.kind = ChaosEvent::Kind::HbmDegrade;
        } else if (c.kind == "FaultStorm") {
            e.kind = ChaosEvent::Kind::FaultStorm;
        } else if (c.kind == "GrayCard") {
            e.kind = ChaosEvent::Kind::GrayCard;
        } else {
            POSEIDON_REQUIRE(false, "chaos DSL: unknown event kind \""
                             << c.kind << "\" in clause \"" << c.text
                             << "\"");
        }

        double duration = kInf;
        for (const auto &[key, val] : c.kvs) {
            if (key == "card") {
                e.card = static_cast<std::size_t>(val);
            } else if (key == "cycle" || key == "start") {
                e.startCycle = val;
            } else if (key == "end") {
                e.endCycle = val;
            } else if (key == "duration") {
                duration = val;
            } else if (key == "rate") {
                e.rate = val;
            } else if (key == "retryShare") {
                e.retryShare = val;
            } else if (key == "slowdown") {
                e.slowdown = val;
            } else if (key == "stack") {
                e.stack = static_cast<unsigned>(val);
            } else {
                POSEIDON_REQUIRE(false, "chaos DSL: unknown key \""
                                 << key << "\" in clause \"" << c.text
                                 << "\"");
            }
        }
        if (duration != kInf) {
            POSEIDON_REQUIRE(e.endCycle == kInf,
                             "chaos DSL: give duration or end, not "
                             "both, in clause \"" << c.text << "\"");
            e.endCycle = e.startCycle + duration;
        }
        POSEIDON_REQUIRE(e.endCycle >= e.startCycle,
                         "chaos DSL: end before start in clause \""
                         << c.text << "\"");
        POSEIDON_REQUIRE(e.rate >= 0.0 && e.rate <= 1.0,
                         "chaos DSL: rate must be in [0, 1] in "
                         "clause \"" << c.text << "\"");
        POSEIDON_REQUIRE(e.slowdown >= 1.0,
                         "chaos DSL: slowdown must be >= 1 in clause "
                         "\"" << c.text << "\"");
        POSEIDON_REQUIRE(e.retryShare >= 0.0,
                         "chaos DSL: negative retryShare in clause \""
                         << c.text << "\"");
        sched.events.push_back(e);
    }
    return sched;
}

ChaosInjector::ChaosInjector(ChaosSchedule schedule)
    : schedule_(std::move(schedule))
{
}

void
ChaosInjector::perturb(std::size_t card, JobId job, u64 attempt,
                       double dispatchCycle, hw::SimResult &r) const
{
    for (std::size_t i = 0; i < schedule_.events.size(); ++i) {
        const ChaosEvent &e = schedule_.events[i];
        if (!e.targets(card) || !e.active_at(dispatchCycle)) continue;
        switch (e.kind) {
          case ChaosEvent::Kind::CardDeath:
            r.faults.silent += 1;
            deaths_.fetch_add(1, std::memory_order_relaxed);
            break;
          case ChaosEvent::Kind::HbmDegrade: {
            double extra = e.retryShare * r.cycles;
            r.faults.retryCycles += extra;
            r.faults.detected += 1;
            r.memCycles += extra;
            r.cycles += extra;
            degrades_.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          case ChaosEvent::Kind::FaultStorm: {
            // One deterministic coin per (event, card, job, attempt):
            // independent of host threading and dispatch order.
            u64 h = hw::mix_seed(
                schedule_.seed,
                (static_cast<u64>(i + 1) << 48) ^
                    (static_cast<u64>(card + 1) << 40) ^
                    (static_cast<u64>(job) << 8) ^ attempt);
            if (unit_coin(h) < e.rate) {
                r.faults.silent += 1;
                storms_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case ChaosEvent::Kind::GrayCard: {
            double extra = (e.slowdown - 1.0) * r.cycles;
            r.cycles += extra;
            r.computeCycles += extra;
            slowdowns_.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
    }
}

telemetry::Json
CampaignReport::to_json() const
{
    using telemetry::Json;
    Json j = Json::object();
    j.set("scenario", Json(scenario));
    j.set("submitted", Json(submitted));
    j.set("completed", Json(completed));
    j.set("failed", Json(failed));
    j.set("expired", Json(expired));
    j.set("shed", Json(shed));
    j.set("retries", Json(retries));
    j.set("quarantines", Json(quarantines));
    j.set("readmissions", Json(readmissions));
    j.set("probes", Json(probes));
    j.set("conserved", Json(conserved));
    j.set("all_tickets_resolved", Json(allTicketsResolved));
    j.set("journal_consistent", Json(journalConsistent));
    j.set("availability", Json(availability));
    j.set("goodput_jobs_per_sec", Json(goodputJobsPerSec));
    j.set("horizon_cycles", Json(horizonCycles));
    j.set("alerts_fired", Json(alertsFired));
    j.set("alerts_resolved", Json(alertsResolved));
    return j;
}

CampaignReport
run_scenario(const Scenario &sc)
{
    POSEIDON_REQUIRE(sc.cards >= 1,
                     "chaos scenario \"" << sc.name
                     << "\": empty fleet");
    POSEIDON_REQUIRE(sc.tenants >= 1,
                     "chaos scenario \"" << sc.name
                     << "\": no tenants");

    ServeConfig cfg;
    cfg.cards = sc.cards;
    cfg.maxQueueDepth = sc.maxQueueDepth;
    cfg.health = sc.health;
    cfg.chaos = sc.schedule.str();
    cfg.exportTelemetry = false; // campaigns run quiet by default
    cfg.tsdbCadenceCycles = sc.tsdbCadenceCycles;
    cfg.tsdbCapacity = sc.tsdbCapacity;
    cfg.alertRules = sc.alertRules;
    ServingEngine engine(cfg);

    isa::Trace trace;
    if (sc.workload.empty()) trace = synthetic_trace(sc.logElems);

    // Stagger arrivals so the fleet stays busy but never idle-waits:
    // one job per (cost / cards) cycles, estimated from a clean
    // pricing of the scenario trace.
    double jobCycles =
        sc.workload.empty()
            ? engine.shards().price(0, trace).cycles
            : 0.0;
    double spacing = jobCycles / static_cast<double>(sc.cards);

    std::vector<JobTicket> tickets;
    tickets.reserve(sc.jobs);
    for (std::size_t i = 0; i < sc.jobs; ++i) {
        JobSpec spec;
        spec.tenant = "tenant" + std::to_string(i % sc.tenants);
        spec.name = sc.name + "/job" + std::to_string(i);
        if (sc.workload.empty()) {
            spec.trace = trace;
        } else {
            spec.workload = sc.workload;
        }
        spec.priority = static_cast<int>(i % 2);
        spec.arrivalCycle = spacing * static_cast<double>(i);
        if (sc.deadlineSlackCycles !=
            std::numeric_limits<double>::infinity()) {
            spec.deadlineCycle =
                spec.arrivalCycle + sc.deadlineSlackCycles;
        }
        spec.retry.maxAttempts = sc.maxAttempts;
        spec.retry.backoffBaseCycles = sc.backoffBaseCycles;
        tickets.push_back(engine.submit(std::move(spec)));
    }

    engine.drain();

    CampaignReport rep;
    rep.scenario = sc.name;
    rep.allTicketsResolved = true;
    for (const JobTicket &t : tickets) {
        if (t.result.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
            rep.allTicketsResolved = false;
        }
    }

    rep.stats = engine.stats();
    rep.submitted = rep.stats.submitted;
    rep.completed = rep.stats.completed;
    rep.failed = rep.stats.failed;
    rep.expired = rep.stats.expired;
    rep.shed = rep.stats.shed;
    rep.retries = rep.stats.retries;
    rep.quarantines = rep.stats.quarantines;
    rep.readmissions = rep.stats.readmissions;
    rep.probes = rep.stats.probes;
    rep.horizonCycles = rep.stats.horizonCycles;
    rep.conserved =
        rep.allTicketsResolved &&
        rep.submitted ==
            rep.completed + rep.failed + rep.expired + rep.shed;
    rep.availability =
        rep.submitted > 0
            ? static_cast<double>(rep.completed) /
                  static_cast<double>(rep.submitted)
            : 0.0;
    rep.goodputJobsPerSec = rep.stats.throughput_jobs_per_sec();
    rep.journalJsonl = engine.journal().to_jsonl();
    rep.journalConsistent =
        journal_matches_stats(engine.journal(), rep.stats);
    if (sc.tsdbCadenceCycles > 0.0) {
        rep.tsdbJsonl = engine.tsdb().to_jsonl();
        rep.alertsFired = engine.alerts().fired_total();
        rep.alertsResolved = engine.alerts().resolved_total();
        rep.alertLog = engine.alert_log();
    }
    return rep;
}

std::vector<Scenario>
standard_scenarios()
{
    // Measure the clean-fleet horizon with a fault-free dry run:
    // scenario windows are placed relative to it so the storms
    // actually overlap the drain (a static estimate misses the
    // per-batch dispatch overhead and lands between dispatches).
    Scenario base;
    base.name = "dry-run";
    base.jobs = 96; // enough dispatches for windows to catch batches
    double horizon = run_scenario(base).horizonCycles;

    std::vector<Scenario> out;

    {
        Scenario sc;
        sc.name = "card-death-mid-drain";
        sc.jobs = 96;
        sc.description =
            "Card 0 silently corrupts everything for a window "
            "starting mid-drain; the breaker must quarantine it, the "
            "fleet absorbs the queue, probes re-admit it after the "
            "window.";
        sc.maxAttempts = 6;
        sc.health.minAttempts = 2;
        sc.health.cooldownCycles = 0.15 * horizon;
        std::ostringstream dsl;
        dsl << "CardDeath{card=0, cycle=" << fmt(0.2 * horizon)
            << ", duration=" << fmt(0.3 * horizon) << "}";
        sc.schedule = ChaosSchedule::parse(dsl.str());
        // The acceptance alert: pages while card 0's breaker is OPEN
        // (2) or the card is dead (3); the fire cycle must land
        // inside the death window, the resolve after re-admission.
        sc.alertRules = "serve.card.0.breaker >= 2 => page";
        out.push_back(std::move(sc));
    }
    {
        Scenario sc;
        sc.name = "fault-storm";
        sc.jobs = 96;
        sc.description =
            "Fleet-wide silent-corruption storm over the first half "
            "of the drain; backoff retries must carry every job to "
            "completion once the storm passes.";
        sc.maxAttempts = 8;
        sc.backoffBaseCycles = 0.05 * horizon;
        sc.health.minAttempts = 16; // storms are not a card's fault
        std::ostringstream dsl;
        dsl << "FaultStorm{start=0, end=" << fmt(0.5 * horizon)
            << ", rate=0.2}";
        sc.schedule = ChaosSchedule::parse(dsl.str());
        out.push_back(std::move(sc));
    }
    {
        Scenario sc;
        sc.name = "storm-plus-death";
        sc.jobs = 96;
        sc.description =
            "The acceptance scenario: a fault storm with a card death "
            "inside it. Zero lost jobs, the dead card quarantined "
            "within the window and re-admitted after cooldown.";
        sc.maxAttempts = 8;
        sc.backoffBaseCycles = 0.05 * horizon;
        sc.health.minAttempts = 3;
        sc.health.failureThreshold = 0.75;
        sc.health.cooldownCycles = 0.2 * horizon;
        std::ostringstream dsl;
        dsl << "FaultStorm{start=0, end=" << fmt(0.4 * horizon)
            << ", rate=0.1}; CardDeath{card=1, cycle="
            << fmt(0.1 * horizon) << ", duration="
            << fmt(0.4 * horizon) << "}";
        sc.schedule = ChaosSchedule::parse(dsl.str());
        out.push_back(std::move(sc));
    }
    {
        Scenario sc;
        sc.name = "hbm-degrade";
        sc.jobs = 96;
        sc.description =
            "One HBM stack on card 1 drowns in detected-uncorrected "
            "replays (no corruption): jobs still complete, but the "
            "retry-share breaker quarantines the card until the stack "
            "recovers.";
        sc.health.minAttempts = 2;
        sc.health.cooldownCycles = 0.1 * horizon;
        std::ostringstream dsl;
        dsl << "HbmDegrade{card=1, cycle=0, duration="
            << fmt(0.5 * horizon) << ", retryShare=1.5, stack=0}";
        sc.schedule = ChaosSchedule::parse(dsl.str());
        out.push_back(std::move(sc));
    }
    {
        Scenario sc;
        sc.name = "gray-card";
        sc.jobs = 96;
        sc.description =
            "Card 2 runs 3x slow but correct — a gray failure. The "
            "breaker must NOT trip (no faults), and every job must "
            "still complete.";
        std::ostringstream dsl;
        dsl << "GrayCard{card=2, cycle=0, slowdown=3}";
        sc.schedule = ChaosSchedule::parse(dsl.str());
        out.push_back(std::move(sc));
    }
    {
        Scenario sc;
        sc.name = "overload-shed";
        sc.description =
            "Twice the jobs against a hard admission limit: the "
            "excess must shed as typed Overloaded results, never "
            "hang, and high-priority work must survive.";
        sc.jobs = 48;
        sc.maxQueueDepth = 8;
        // Admission shedding clamps the queue to the cap before any
        // sample sees it, so the overload signal is "pinned at the
        // cap", not "above the cap".
        sc.alertRules = "serve.queue_depth >= 8 => warn";
        out.push_back(std::move(sc));
    }
    // Every scenario samples its TSDB at 64 points across the clean
    // horizon — enough resolution for the fault windows to show as
    // curves without unbounded memory.
    for (Scenario &sc : out) {
        sc.tsdbCadenceCycles = horizon / 64.0;
    }
    return out;
}

} // namespace poseidon::serve
