#ifndef POSEIDON_SERVE_ENGINE_H_
#define POSEIDON_SERVE_ENGINE_H_

/**
 * @file
 * The multi-accelerator serving engine.
 *
 * ServingEngine turns the single-caller, single-card simulator into a
 * shared, scheduled service: clients submit() CKKS jobs (named
 * workloads or compiled ISA programs) from any thread and receive a
 * JobTicket (job id + shared future); drain() runs the fleet-wide
 * discrete-event simulation to completion, fulfilling futures and
 * firing completion callbacks as jobs finish.
 *
 * **Execution model.** The engine advances a simulated fleet clock in
 * rounds. Each round it walks the cards in earliest-free order, asks
 * the Scheduler (priority -> per-tenant fairness -> FIFO, with
 * compatible-job batching) for one batch per idle card, then prices
 * all dispatched batches concurrently on the host thread pool
 * (common/parallel.h) — pricing is pure, so host parallelism is free
 * of modeled-time effects. Completion bookkeeping then runs in card
 * order. Because every decision reads only simulated-clock state and
 * pricing is deterministic per (card, job, attempt), the full
 * schedule, every latency, and every aggregate statistic are
 * bit-identical at every host thread count.
 *
 * **Fault failover.** Jobs run under the PR-1 SECDED fault model of
 * their card. An attempt whose run leaks a silent corruption or
 * overruns its RetryPolicy::retryCycleBudget in ECC replays has
 * failed: the attempt's full duration still occupies the card (and is
 * charged to the tenant), and the job is requeued — with exponential
 * backoff in simulated cycles when RetryPolicy::backoffBaseCycles is
 * set, and with every card it has faulted on excluded while an
 * untried live card remains — until maxAttempts is exhausted. A
 * retry whose backed-off start plus estimated cost cannot meet the
 * job's deadline is skipped (the job fails immediately).
 *
 * **Fleet health.** Every attempt feeds the per-card HealthMonitor
 * (serve/health.h): a card whose failure or ECC-replay EWMA crosses
 * its threshold is quarantined (breaker OPEN — no more work, the
 * queue flows to the rest of the fleet), re-enters via low-priority
 * probe jobs after a cooldown, and is re-admitted once enough probes
 * come back clean. When every card is dead the engine sheds the
 * queue as Overloaded rather than deadlocking.
 *
 * **Admission control.** With maxQueueDepth set, drain() sheds the
 * lowest-priority (then newest) queued work whenever ingestion pushes
 * the queue past the limit; shed jobs finish as JobState::Shed with
 * ErrorCode::kOverloaded — a typed error frame, not a silent timeout.
 *
 * **Chaos.** ServeConfig::chaos accepts a fault-schedule DSL
 * (serve/chaos.h): scripted card deaths, HBM degradation, fleet-wide
 * fault storms and gray slowdowns perturb priced attempts
 * deterministically, which is what the chaos campaigns drive.
 *
 * **Telemetry.** With exportTelemetry on, drain() maintains
 * serve.queue_depth / serve.cards gauges, serve.jobs.* counters
 * (incl. serve.jobs.shed), serve.health.* quarantine/probe counters
 * and per-card breaker-state gauges, per-tenant simulated-latency
 * histograms (serve.tenant_latency_us.<tenant>) and per-card
 * occupancy gauges (serve.card_occupancy.<i>); quarantine windows
 * are exported as spans on the Chrome trace's fleet-health track.
 * stats() returns the same aggregates — including exact per-tenant
 * p50/p99 — as a struct, with to_json() and export_metrics()
 * surfaces.
 */

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hw/config.h"
#include "serve/health.h"
#include "serve/job.h"
#include "serve/journal.h"
#include "serve/latency_breakdown.h"
#include "serve/scheduler.h"
#include "serve/shard.h"
#include "telemetry/alerts.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"

namespace poseidon::serve {

class ChaosInjector; // serve/chaos.h

/// Knobs of one engine instance.
struct ServeConfig
{
    /// Fleet size (homogeneous copies of `card`); ignored when
    /// `fleet` is non-empty.
    std::size_t cards = 1;

    /// Base per-card accelerator model. Each card derives its own
    /// fault seed from it (hw::mix_seed), so equal configs still run
    /// independent ECC campaigns.
    hw::HwConfig card = hw::HwConfig::poseidon_u280();

    /// Optional heterogeneous fleet (one config per card).
    std::vector<hw::HwConfig> fleet;

    /// Jobs coalesced per dispatch (see Scheduler; 1 = no batching).
    std::size_t maxBatch = 4;

    /// Fixed cycles charged once per dispatch (host->card program +
    /// key upload); batching amortizes exactly this term.
    double dispatchCycles = 20000.0;

    /// Per-card circuit-breaker knobs (serve/health.h).
    HealthConfig health;

    /// Admission control: queued jobs above this depth are shed
    /// (lowest priority first) as Overloaded. 0 = unbounded.
    std::size_t maxQueueDepth = 0;

    /// Chaos fault schedule in the serve/chaos.h DSL ("" = none),
    /// e.g. "CardDeath{card=0, cycle=2e6, duration=5e6}".
    std::string chaos;

    /// Publish serve.* metrics into the global MetricsRegistry.
    bool exportTelemetry = true;

    /// Record the per-job lifecycle journal (serve/journal.h). At the
    /// end of drain() the journal is decomposed into phase waterfalls
    /// (serve/latency_breakdown.h) whose histograms/gauges are
    /// published when exportTelemetry is also on.
    bool journal = true;

    /// Declarative SLO (per-priority p99 targets + error budget);
    /// empty = no SLO evaluation. Requires `journal`.
    SloConfig slo;

    /// TSDB sampling cadence on the simulated clock: drain() records
    /// one sample of every serve.* series each time the fleet clock
    /// crosses the next cadence-aligned grid cycle. 0 = TSDB off.
    /// Sampling is part of drain()'s single-threaded bookkeeping, so
    /// tsdb() dumps are byte-identical at every POSEIDON_THREADS.
    double tsdbCadenceCycles = 0.0;

    /// Ring capacity per TSDB series (oldest samples evicted past
    /// this; evictions are counted in the dump).
    std::size_t tsdbCapacity = 4096;

    /// Alert rules in the telemetry/alerts.h DSL ("" = none), e.g.
    /// "serve.queue_depth > 256 for 5e6 cycles => page". Evaluated at
    /// every TSDB sample tick; requires tsdbCadenceCycles > 0.
    std::string alertRules;
};

/// Aggregate per-tenant outcome (simulated time).
struct TenantStats
{
    u64 submitted = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 expired = 0;
    u64 shed = 0;
    double attainedCycles = 0.0; ///< card time consumed, incl. failures
    double p50LatencyCycles = 0.0;
    double p99LatencyCycles = 0.0;
};

/// Fleet-wide serving statistics, all on the simulated clock.
struct ServeStats
{
    u64 submitted = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 expired = 0;
    u64 shed = 0;         ///< dropped by admission control
    u64 retries = 0;      ///< fault-triggered re-executions
    u64 batches = 0;      ///< dispatches issued
    u64 maxQueueDepth = 0;
    u64 quarantines = 0;  ///< circuit-breaker trips (all cards)
    u64 readmissions = 0; ///< breakers re-closed after clean probes
    u64 probes = 0;       ///< probe attempts executed

    /// Latest job finish (the serving horizon / makespan).
    double horizonCycles = 0.0;
    /// Sum of all card busy cycles (failed attempts included).
    double busyCycles = 0.0;
    /// Modeled clock the horizon is measured on (from the base card).
    double clockGHz = 0.0;

    std::map<std::string, TenantStats> tenants;
    std::vector<CardStats> cards;
    /// Breaker ledger per card (parallel to `cards`).
    std::vector<CardHealth> health;

    /// Completed jobs per simulated second over the horizon.
    double throughput_jobs_per_sec() const;
    /// Mean card occupancy over the horizon.
    double fleet_occupancy() const;

    /// {"submitted": ..., "tenants": {...}, "cards": [...]}.
    telemetry::Json to_json() const;

    /// Publish the serve.* gauges/counters into `reg`.
    void export_metrics(telemetry::MetricsRegistry &reg) const;
};

class ServingEngine
{
  public:
    explicit ServingEngine(ServeConfig cfg = ServeConfig{});
    ~ServingEngine();

    ServingEngine(const ServingEngine&) = delete;
    ServingEngine& operator=(const ServingEngine&) = delete;

    const ServeConfig& config() const { return cfg_; }
    const ShardManager& shards() const { return shards_; }

    /// Fleet breaker state (mutated only inside drain(); read it
    /// between drains, like shards()).
    const HealthMonitor& health() const { return health_; }

    /// The active chaos schedule ("" config = inactive injector).
    const ChaosInjector& chaos() const { return *chaos_; }

    /// The lifecycle journal (empty when ServeConfig::journal is
    /// off). Read it between drains; serialize with
    /// journal().to_jsonl() or decompose() it directly.
    const Journal& journal() const { return journal_; }

    /// The simulated-clock TSDB (empty when tsdbCadenceCycles == 0).
    /// Read it between drains; serialize with tsdb().to_jsonl().
    const telemetry::Tsdb& tsdb() const { return tsdb_; }

    /// The alert engine evaluated over tsdb() (empty rule set when
    /// ServeConfig::alertRules is "").
    const telemetry::AlertEngine& alerts() const { return alerts_; }

    /// Every alert transition recorded so far, in evaluation order.
    const std::vector<telemetry::AlertTransition>& alert_log() const
    {
        return alertLog_;
    }

    /**
     * Accept a job. Non-blocking and thread-safe; a named workload is
     * resolved (and an empty batchKey derived) immediately, so an
     * unknown name or empty trace throws InvalidArgument here, never
     * inside drain(). The returned future becomes ready during a
     * later drain() on whichever thread drains.
     */
    JobTicket submit(JobSpec spec);

    /**
     * Run the discrete-event simulation until every accepted job has
     * reached a terminal state, fulfilling futures and firing
     * callbacks on this thread. Callbacks may submit() follow-up jobs
     * (closed-loop clients); drain() keeps going until the system is
     * empty. Not reentrant; call from one thread at a time.
     */
    void drain();

    /// Queue depth right now (accepted, not yet terminal).
    std::size_t queue_depth() const;

    /// Aggregate statistics over everything served so far.
    ServeStats stats() const;

  private:
    /// A submitted job awaiting ingestion by drain().
    struct Pending
    {
        QueuedJob qj;
        std::promise<JobResult> promise;
    };

    /// Fulfill one terminal job: update aggregates under mu_, then
    /// set the promise and fire the callback lock-free (callbacks may
    /// re-enter submit()).
    void finish_job(QueuedJob &&qj, JobResult r);
    void refresh_gauges();

    /// Shed one queued job as Overloaded at fleet time `cycle`.
    void shed_job(QueuedJob &&qj, double cycle, const char *why);

    /// Run one probe attempt on a HALF_OPEN/probe-eligible card at
    /// time `T` (occupies the card; feeds the monitor).
    void dispatch_probe(std::size_t card, double T);

    /// Export quarantine windows onto the Chrome trace's
    /// fleet-health track (called at the end of drain()).
    void export_health_trace() const;

    /// Export per-job queue/attempt slices + flow arrows linking them
    /// onto the Chrome trace's fleet tracks (end of drain()).
    void export_job_flows(const BreakdownReport &br) const;

    /// Record one TSDB sample of every serve.* series at simulated
    /// cycle `cycle`, then advance the alert state machines (their
    /// transitions land in the journal, counters, and alertLog_).
    void sample_tsdb(double cycle);

    /// Export firing windows onto the Chrome trace's alert track
    /// (tids 450+, called at the end of drain()).
    void export_alert_trace() const;

    ServeConfig cfg_;
    ShardManager shards_;
    Scheduler sched_;
    HealthMonitor health_;
    Journal journal_;
    /// Jobs whose phase histograms were already published by an
    /// earlier drain() (index into the decomposed report).
    std::size_t breakdownExportedJobs_ = 0;
    std::unique_ptr<ChaosInjector> chaos_;
    isa::Trace probeTrace_;
    std::vector<u64> probeSeq_;

    telemetry::Tsdb tsdb_;
    telemetry::AlertEngine alerts_;
    /// Next cadence-aligned grid cycle to sample at (monotone across
    /// drains; the end-of-drain flush advances it past the horizon).
    double nextSampleCycle_ = 0.0;
    /// Every alert transition of this engine's lifetime (trace
    /// export + tests read it).
    std::vector<telemetry::AlertTransition> alertLog_;
    /// Engine-owned completed-job latency histogram in simulated
    /// cycles, observed in finish_job() on the drain thread —
    /// deterministic, unlike the wall-time tenant histograms.
    telemetry::Histogram latencyHist_;

    /// Guards submissions_/nextId_ and the aggregate counters below
    /// (stats() and queue_depth() read them from any thread).
    mutable std::mutex mu_;
    std::vector<Pending> submissions_;
    JobId nextId_ = 1;

    std::map<JobId, std::promise<JobResult>> promises_;

    double horizon_ = 0.0;
    /// Latest round time drain() reached (the fleet clock sheds are
    /// stamped with).
    double clock_ = 0.0;
    u64 submitted_ = 0;
    u64 completed_ = 0;
    u64 failed_ = 0;
    u64 expired_ = 0;
    u64 shed_ = 0;
    u64 retries_ = 0;
    u64 batches_ = 0;
    u64 maxQueueDepth_ = 0;
    std::map<std::string, TenantStats> tenants_;
    /// Per-tenant completed-job latencies (simulated cycles) backing
    /// the exact p50/p99 quantiles in stats().
    std::map<std::string, std::vector<double>> latencies_;
};

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_ENGINE_H_
