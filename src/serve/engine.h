#ifndef POSEIDON_SERVE_ENGINE_H_
#define POSEIDON_SERVE_ENGINE_H_

/**
 * @file
 * The multi-accelerator serving engine.
 *
 * ServingEngine turns the single-caller, single-card simulator into a
 * shared, scheduled service: clients submit() CKKS jobs (named
 * workloads or compiled ISA programs) from any thread and receive a
 * JobTicket (job id + shared future); drain() runs the fleet-wide
 * discrete-event simulation to completion, fulfilling futures and
 * firing completion callbacks as jobs finish.
 *
 * **Execution model.** The engine advances a simulated fleet clock in
 * rounds. Each round it walks the cards in earliest-free order, asks
 * the Scheduler (priority -> per-tenant fairness -> FIFO, with
 * compatible-job batching) for one batch per idle card, then prices
 * all dispatched batches concurrently on the host thread pool
 * (common/parallel.h) — pricing is pure, so host parallelism is free
 * of modeled-time effects. Completion bookkeeping then runs in card
 * order. Because every decision reads only simulated-clock state and
 * pricing is deterministic per (card, job, attempt), the full
 * schedule, every latency, and every aggregate statistic are
 * bit-identical at every host thread count.
 *
 * **Fault failover.** Jobs run under the PR-1 SECDED fault model of
 * their card. An attempt whose run leaks a silent corruption or
 * overruns its RetryPolicy::retryCycleBudget in ECC replays has
 * failed: the attempt's full duration still occupies the card (and is
 * charged to the tenant), and the job is requeued with the failing
 * card excluded (fleet > 1) until maxAttempts is exhausted.
 *
 * **Telemetry.** With exportTelemetry on, drain() maintains
 * serve.queue_depth / serve.cards gauges, serve.jobs.* counters,
 * per-tenant simulated-latency histograms
 * (serve.tenant_latency_us.<tenant>) and per-card occupancy gauges
 * (serve.card_occupancy.<i>); stats() returns the same aggregates —
 * including exact per-tenant p50/p99 — as a struct, with to_json()
 * and export_metrics() surfaces.
 */

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hw/config.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "serve/shard.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace poseidon::serve {

/// Knobs of one engine instance.
struct ServeConfig
{
    /// Fleet size (homogeneous copies of `card`); ignored when
    /// `fleet` is non-empty.
    std::size_t cards = 1;

    /// Base per-card accelerator model. Each card derives its own
    /// fault seed from it (hw::mix_seed), so equal configs still run
    /// independent ECC campaigns.
    hw::HwConfig card = hw::HwConfig::poseidon_u280();

    /// Optional heterogeneous fleet (one config per card).
    std::vector<hw::HwConfig> fleet;

    /// Jobs coalesced per dispatch (see Scheduler; 1 = no batching).
    std::size_t maxBatch = 4;

    /// Fixed cycles charged once per dispatch (host->card program +
    /// key upload); batching amortizes exactly this term.
    double dispatchCycles = 20000.0;

    /// Publish serve.* metrics into the global MetricsRegistry.
    bool exportTelemetry = true;
};

/// Aggregate per-tenant outcome (simulated time).
struct TenantStats
{
    u64 completed = 0;
    u64 failed = 0;
    u64 expired = 0;
    double attainedCycles = 0.0; ///< card time consumed, incl. failures
    double p50LatencyCycles = 0.0;
    double p99LatencyCycles = 0.0;
};

/// Fleet-wide serving statistics, all on the simulated clock.
struct ServeStats
{
    u64 submitted = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 expired = 0;
    u64 retries = 0;      ///< fault-triggered re-executions
    u64 batches = 0;      ///< dispatches issued
    u64 maxQueueDepth = 0;

    /// Latest job finish (the serving horizon / makespan).
    double horizonCycles = 0.0;
    /// Sum of all card busy cycles (failed attempts included).
    double busyCycles = 0.0;
    /// Modeled clock the horizon is measured on (from the base card).
    double clockGHz = 0.0;

    std::map<std::string, TenantStats> tenants;
    std::vector<CardStats> cards;

    /// Completed jobs per simulated second over the horizon.
    double throughput_jobs_per_sec() const;
    /// Mean card occupancy over the horizon.
    double fleet_occupancy() const;

    /// {"submitted": ..., "tenants": {...}, "cards": [...]}.
    telemetry::Json to_json() const;

    /// Publish the serve.* gauges/counters into `reg`.
    void export_metrics(telemetry::MetricsRegistry &reg) const;
};

class ServingEngine
{
  public:
    explicit ServingEngine(ServeConfig cfg = ServeConfig{});
    ~ServingEngine();

    ServingEngine(const ServingEngine&) = delete;
    ServingEngine& operator=(const ServingEngine&) = delete;

    const ServeConfig& config() const { return cfg_; }
    const ShardManager& shards() const { return shards_; }

    /**
     * Accept a job. Non-blocking and thread-safe; a named workload is
     * resolved (and an empty batchKey derived) immediately, so an
     * unknown name or empty trace throws InvalidArgument here, never
     * inside drain(). The returned future becomes ready during a
     * later drain() on whichever thread drains.
     */
    JobTicket submit(JobSpec spec);

    /**
     * Run the discrete-event simulation until every accepted job has
     * reached a terminal state, fulfilling futures and firing
     * callbacks on this thread. Callbacks may submit() follow-up jobs
     * (closed-loop clients); drain() keeps going until the system is
     * empty. Not reentrant; call from one thread at a time.
     */
    void drain();

    /// Queue depth right now (accepted, not yet terminal).
    std::size_t queue_depth() const;

    /// Aggregate statistics over everything served so far.
    ServeStats stats() const;

  private:
    /// A submitted job awaiting ingestion by drain().
    struct Pending
    {
        QueuedJob qj;
        std::promise<JobResult> promise;
    };

    /// Fulfill one terminal job: update aggregates under mu_, then
    /// set the promise and fire the callback lock-free (callbacks may
    /// re-enter submit()).
    void finish_job(QueuedJob &&qj, JobResult r);
    void refresh_gauges();

    ServeConfig cfg_;
    ShardManager shards_;
    Scheduler sched_;

    /// Guards submissions_/nextId_ and the aggregate counters below
    /// (stats() and queue_depth() read them from any thread).
    mutable std::mutex mu_;
    std::vector<Pending> submissions_;
    JobId nextId_ = 1;

    std::map<JobId, std::promise<JobResult>> promises_;

    double horizon_ = 0.0;
    u64 submitted_ = 0;
    u64 completed_ = 0;
    u64 failed_ = 0;
    u64 expired_ = 0;
    u64 retries_ = 0;
    u64 batches_ = 0;
    u64 maxQueueDepth_ = 0;
    std::map<std::string, TenantStats> tenants_;
    /// Per-tenant completed-job latencies (simulated cycles) backing
    /// the exact p50/p99 quantiles in stats().
    std::map<std::string, std::vector<double>> latencies_;
};

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_ENGINE_H_
