#ifndef POSEIDON_SERVE_LATENCY_BREAKDOWN_H_
#define POSEIDON_SERVE_LATENCY_BREAKDOWN_H_

/**
 * @file
 * Waterfall decomposition of serving latency, built purely from the
 * lifecycle journal (serve/journal.h).
 *
 * decompose() replays each job's event stream as a *gapless walk*: a
 * chronological marker m_i = fl(cycle_i - firstArrival) advances
 * through the job's events, and every inter-marker interval is
 * attributed to exactly one phase:
 *
 *   queue-wait      Enqueued/arrival  -> Dispatched (every attempt),
 *                   plus the final wait of Expired/Shed jobs
 *   batch-delay     Dispatched -> AttemptStart (dispatch overhead +
 *                   position behind batch mates on the card)
 *   backoff         failed AttemptEnd -> the retry's Enqueued arrival
 *   retry-overhead  failed attempts' execution (start -> end)
 *   execution       the successful attempt's execution
 *
 * **Conservation invariant.** The five phases sum *exactly* to the
 * job's end-to-end latency fl(finish - firstArrival). Floating-point
 * makes the naive sum of rounded spans miss by ulps, so each span is
 * kept as an error-free expansion (two-sum components whose exact sum
 * is the real span, see ExactSum in the .cpp): the concatenated
 * per-phase expansions telescope to the end-to-end value as *real
 * numbers*, and a POSEIDON_CHECK distills their sum minus end-to-end
 * to literal 0.0. The check is not vacuous — it fails whenever the
 * event stream is missing an interval, double-attributes one, or runs
 * backwards. JobBreakdown::phase_sum() re-runs the distillation so
 * tests can assert `phase_sum() == endToEndCycles` bit-for-bit; the
 * per-phase doubles reported alongside are faithful roundings of the
 * exact expansions.
 *
 * On top of the per-job waterfalls sit per-tenant / per-priority
 * aggregates (with p50/p99 of the engine-reported latency, computed
 * by the same telemetry::exact_quantile the engine uses — the journal
 * is a sufficient statistic for the engine's stats), metrics-registry
 * export, and declarative SLOs: per-priority p99 targets whose
 * violation share is turned into an SRE-style burn rate
 * (violationShare / errorBudget) with alert gauges.
 */

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "serve/journal.h"
#include "telemetry/metrics.h"

namespace poseidon::serve {

/// Latency phases of the waterfall (see file comment).
enum class Phase : unsigned {
    QueueWait = 0,
    BatchDelay,
    Backoff,
    RetryOverhead,
    Execution,
};

inline constexpr std::size_t kPhaseCount = 5;

/// Short stable name ("queue_wait", "batch_delay", ...).
const char* to_string(Phase p);

/// One executed attempt of a job, reconstructed from the journal.
struct AttemptSpan
{
    std::size_t card = JournalEvent::kNoCard;
    u64 attempt = 0;            ///< 1-based attempt ordinal
    double dispatchCycle = 0.0; ///< left the queue (batch pick time)
    double startCycle = 0.0;    ///< execution began on the card
    double endCycle = 0.0;      ///< execution finished
    bool failed = false;        ///< tripped the fault guard
};

/// The decomposed waterfall of one job.
struct JobBreakdown
{
    JobId id = 0;
    std::string tenant;
    std::string name;
    int priority = 0;
    JobState state = JobState::Queued;
    std::size_t card = JournalEvent::kNoCard; ///< last card touched
    u64 attempts = 0;

    double firstArrivalCycle = 0.0; ///< original submission arrival
    double lastArrivalCycle = 0.0;  ///< final (post-backoff) arrival
    double finishCycle = 0.0;

    /// finish - firstArrival: what the client experienced.
    double endToEndCycles = 0.0;
    /// finish - lastArrival: the latency the engine reports (its
    /// per-tenant p50/p99 are quantiles of this, completed jobs only).
    double reportedLatencyCycles = 0.0;

    /// Faithful roundings of the exact per-phase expansions below.
    double phaseCycles[kPhaseCount] = {};
    /// Error-free expansions: each vector's components sum (as reals)
    /// to the exact phase duration; all components together sum to
    /// exactly endToEndCycles (the conservation invariant).
    std::array<std::vector<double>, kPhaseCount> phaseExact;

    std::vector<AttemptSpan> attemptSpans;

    /// Distilled sum of every phase expansion: equals endToEndCycles
    /// bit-for-bit when the decomposition conserved the walk.
    double phase_sum() const;
};

/// Phase aggregate over one tenant or one priority class.
struct PhaseAccum
{
    u64 jobs = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 expired = 0;
    u64 shed = 0;
    double endToEndCycles = 0.0; ///< summed over jobs
    double phaseCycles[kPhaseCount] = {};
    /// Quantiles of the engine-reported latency (completed jobs),
    /// via telemetry::exact_quantile — matches ServeStats exactly.
    double p50LatencyCycles = 0.0;
    double p99LatencyCycles = 0.0;
};

/// The full decomposition of one journal.
struct BreakdownReport
{
    double clockGHz = 0.0;
    std::size_t cards = 0;
    std::vector<JobBreakdown> jobs; ///< ascending job id
    std::map<std::string, PhaseAccum> tenants;
    std::map<int, PhaseAccum> priorities;

    const JobBreakdown* find(JobId id) const;

    /// The n largest end-to-end latencies, worst first (ties: lower
    /// id first).
    std::vector<const JobBreakdown*> worst(std::size_t n) const;

    /// Human-readable waterfall (share bars per phase + one line per
    /// attempt) for one job.
    std::string waterfall_text(const JobBreakdown &jb) const;

    /// {"clock_ghz":..., "jobs":[...], "tenants":{...},
    ///  "priorities":{...}}.
    telemetry::Json to_json() const;

    /**
     * Publish serve.phase_us.<phase>.tenant.<t> /
     * serve.phase_us.<phase>.prio.<p> histograms (one observation per
     * job and phase, in modeled microseconds) and fleet-wide
     * serve.phase_share.<phase> gauges into `reg`. `fromJob` skips
     * jobs already exported by an earlier call (index into `jobs`).
     */
    void export_metrics(telemetry::MetricsRegistry &reg,
                        std::size_t fromJob = 0) const;
};

/**
 * Decompose a drained journal into per-job waterfalls + aggregates.
 * Every journaled job must have reached a terminal state, its events
 * must be chronological, and each walk must conserve cycles — all
 * enforced with POSEIDON_CHECK (a violation means a corrupt journal
 * or an engine bug, not bad user input).
 */
BreakdownReport decompose(const Journal &journal);

/// Declarative SLO: per-priority p99 latency targets with an error
/// budget, evaluated over a BreakdownReport.
struct SloConfig
{
    /// End-to-end p99 target (simulated cycles) per priority class.
    std::map<int, double> p99TargetCycles;
    /// Tolerated violation share (the SRE error budget).
    double budgetFraction = 0.01;
    /// Alert when burnRate = violationShare / budgetFraction reaches
    /// this factor.
    double alertBurnRate = 1.0;

    bool empty() const { return p99TargetCycles.empty(); }

    /// Render to the parse() text form.
    std::string str() const;

    /**
     * Parse a spec like "prio0=2.5e6;prio1=5e5;budget=0.01;burn=1.5":
     * `prio<N>=<cycles>` clauses set targets, `budget=` / `burn=` set
     * the knobs. Throws poseidon::InvalidArgument on malformed input.
     */
    static SloConfig parse(const std::string &spec);
};

/// Burn-rate verdict for one priority class.
struct SloStatus
{
    int priority = 0;
    double targetCycles = 0.0;
    u64 jobs = 0;
    u64 violations = 0; ///< non-Completed or end-to-end over target
    double violationShare = 0.0;
    double burnRate = 0.0;
    bool alerting = false;
};

/// SLO evaluation over a whole report.
struct SloReport
{
    double budgetFraction = 0.01;
    double alertBurnRate = 1.0;
    std::vector<SloStatus> statuses; ///< ascending priority
    u64 alerts = 0;                  ///< statuses currently alerting

    telemetry::Json to_json() const;

    /// serve.slo.burn_rate.p<prio> / serve.slo.violations.p<prio> /
    /// serve.slo.alerting.p<prio> gauges + a serve.slo.alerts gauge.
    void export_metrics(telemetry::MetricsRegistry &reg) const;
};

SloReport evaluate_slo(const BreakdownReport &report,
                       const SloConfig &cfg);

} // namespace poseidon::serve

#endif // POSEIDON_SERVE_LATENCY_BREAKDOWN_H_
