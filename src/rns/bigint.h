#ifndef POSEIDON_RNS_BIGINT_H_
#define POSEIDON_RNS_BIGINT_H_

/**
 * @file
 * A minimal arbitrary-precision unsigned integer.
 *
 * Only the operations needed for CRT composition and centered lifting
 * are provided: add, subtract, compare, multiply by a 64-bit word,
 * halving, and conversion to double. This keeps the decoder exact
 * without pulling in an external bignum dependency.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/modmath.h"

namespace poseidon {

/// Little-endian base-2^64 unsigned big integer.
class BigUInt
{
  public:
    BigUInt() = default;

    /// Construct from a single 64-bit value.
    explicit BigUInt(u64 v);

    /// true iff the value is zero.
    bool is_zero() const { return limbs_.empty(); }

    /// Number of significant 64-bit limbs.
    std::size_t limb_count() const { return limbs_.size(); }

    /// Three-way compare: -1, 0, +1.
    int cmp(const BigUInt &o) const;

    /// this += o
    void add(const BigUInt &o);

    /// this -= o; requires *this >= o.
    void sub(const BigUInt &o);

    /// this *= m (single 64-bit word).
    void mul_u64(u64 m);

    /// this >>= 1
    void shr1();

    /// Value mod a word-size modulus.
    u64 mod_u64(u64 q) const;

    /// Approximate conversion to double (exact for values < 2^53).
    double to_double() const;

    /// Hex string, most-significant first (for diagnostics).
    std::string to_hex() const;

    /// Product of a list of word-sized factors.
    static BigUInt product(const std::vector<u64> &factors);

  private:
    void trim();
    std::vector<u64> limbs_; ///< empty == zero
};

} // namespace poseidon

#endif // POSEIDON_RNS_BIGINT_H_
