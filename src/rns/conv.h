#ifndef POSEIDON_RNS_CONV_H_
#define POSEIDON_RNS_CONV_H_

/**
 * @file
 * Fast RNS base conversion — the paper's `RNSconv` building block
 * (Eq. 1), plus the ModUp/ModDown coefficient math built from it
 * (Eqs. 2-3). All functions here operate on coefficient-domain residue
 * arrays; the NTT round-trips happen in the CKKS layer.
 *
 * Poseidon implements RNSconv in hardware by cascading the MA and MM
 * operator cores (Fig. 4); this file is the functional model those
 * cores compute.
 */

#include <cstddef>
#include <vector>

#include "rns/basis.h"

namespace poseidon {

/**
 * Fast base conversion from a source basis {q_i} to a destination
 * basis {p_j}:
 *
 *   conv(x)_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * [Q/q_i]_{p_j}  mod p_j
 *
 * The float-correction variant subtracts the estimated overflow
 * multiple e*Q (HPS-style), producing a value congruent to the
 * *centered* representative and keeping ModDown noise small.
 */
class RnsConv
{
  public:
    RnsConv(const RnsBasis &src, const RnsBasis &dst);

    const RnsBasis& src() const { return src_; }
    const RnsBasis& dst() const { return dst_; }

    /**
     * Convert n coefficients. src[i] points at the n residues mod q_i;
     * dst[j] receives the n residues mod p_j.
     *
     * @param correct  apply the floating-point overflow correction
     */
    void convert(const std::vector<const u64*> &src,
                 const std::vector<u64*> &dst, std::size_t n,
                 bool correct = true) const;

  private:
    RnsBasis src_;
    RnsBasis dst_;
    /// qhatMod_[j][i] = [Q/q_i] mod p_j (+ Shoup constant)
    std::vector<std::vector<u64>> qhatMod_;
    std::vector<std::vector<u64>> qhatModShoup_;
    /// qMod_[j] = Q mod p_j (for overflow correction, + Shoup)
    std::vector<u64> qMod_;
    std::vector<u64> qModShoup_;
    /// Shoup constant of [(Q/q_i)^{-1}] mod q_i (the value itself
    /// lives in the basis).
    std::vector<u64> qhatInvShoup_;
    /// 1.0 / q_i for the float overflow estimate
    std::vector<double> qInvDouble_;
};

/**
 * ModDown (Eq. 2): given a polynomial's residues over q-basis and
 * p-basis (the "special" primes with product P), produce residues over
 * the q-basis of round(x / P):
 *
 *   out_i = (x_i - conv_{p->q}(x_p)_i) * P^{-1}  mod q_i
 */
class ModDown
{
  public:
    ModDown(const RnsBasis &qBasis, const RnsBasis &pBasis);

    /**
     * @param xq   residues over q-basis (size L, each n coefficients)
     * @param xp   residues over p-basis (size K, each n coefficients)
     * @param out  output residues over q-basis (size L)
     */
    void apply(const std::vector<const u64*> &xq,
               const std::vector<const u64*> &xp,
               const std::vector<u64*> &out, std::size_t n) const;

    const RnsConv& conv() const { return conv_; }

  private:
    RnsConv conv_;               ///< p-basis -> q-basis
    std::vector<u64> pInv_;      ///< P^{-1} mod q_i
    std::vector<u64> pInvShoup_; ///< Shoup constant of pInv_[i]
};

} // namespace poseidon

#endif // POSEIDON_RNS_CONV_H_
