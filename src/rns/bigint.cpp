#include "rns/bigint.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace poseidon {

BigUInt::BigUInt(u64 v)
{
    if (v) limbs_.push_back(v);
}

void
BigUInt::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

int
BigUInt::cmp(const BigUInt &o) const
{
    if (limbs_.size() != o.limbs_.size()) {
        return limbs_.size() < o.limbs_.size() ? -1 : 1;
    }
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != o.limbs_[i]) {
            return limbs_[i] < o.limbs_[i] ? -1 : 1;
        }
    }
    return 0;
}

void
BigUInt::add(const BigUInt &o)
{
    if (o.limbs_.size() > limbs_.size()) limbs_.resize(o.limbs_.size(), 0);
    u64 carry = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        u128 s = u128(limbs_[i]) + (i < o.limbs_.size() ? o.limbs_[i] : 0)
               + carry;
        limbs_[i] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
    }
    if (carry) limbs_.push_back(carry);
}

void
BigUInt::sub(const BigUInt &o)
{
    POSEIDON_CHECK(cmp(o) >= 0, "BigUInt::sub underflow");
    u64 borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        u64 rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
        u128 d = u128(limbs_[i]) - rhs - borrow;
        limbs_[i] = static_cast<u64>(d);
        borrow = (d >> 64) ? 1 : 0;
    }
    trim();
}

void
BigUInt::mul_u64(u64 m)
{
    if (m == 0 || is_zero()) {
        limbs_.clear();
        return;
    }
    u64 carry = 0;
    for (auto &l : limbs_) {
        u128 p = u128(l) * m + carry;
        l = static_cast<u64>(p);
        carry = static_cast<u64>(p >> 64);
    }
    if (carry) limbs_.push_back(carry);
}

void
BigUInt::shr1()
{
    u64 carry = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        u64 next = limbs_[i] & 1;
        limbs_[i] = (limbs_[i] >> 1) | (carry << 63);
        carry = next;
    }
    trim();
}

u64
BigUInt::mod_u64(u64 q) const
{
    u128 r = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        r = ((r << 64) | limbs_[i]) % q;
    }
    return static_cast<u64>(r);
}

double
BigUInt::to_double() const
{
    double v = 0.0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        v = v * 0x1.0p64 + static_cast<double>(limbs_[i]);
    }
    return v;
}

std::string
BigUInt::to_hex() const
{
    if (is_zero()) return "0x0";
    std::string s = "0x";
    char buf[32];
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        std::snprintf(buf, sizeof(buf),
                      i + 1 == limbs_.size() ? "%llx" : "%016llx",
                      static_cast<unsigned long long>(limbs_[i]));
        s += buf;
    }
    return s;
}

BigUInt
BigUInt::product(const std::vector<u64> &factors)
{
    BigUInt p(1);
    for (u64 f : factors) p.mul_u64(f);
    return p;
}

} // namespace poseidon
