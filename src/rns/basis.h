#ifndef POSEIDON_RNS_BASIS_H_
#define POSEIDON_RNS_BASIS_H_

/**
 * @file
 * RNS basis: an ordered set of pairwise-coprime NTT primes with the
 * Barrett reducers and CRT precomputations attached.
 *
 * In RNS-CKKS a big modulus Q = q_0 * ... * q_l never materializes;
 * every polynomial coefficient lives as one residue per prime. This
 * class owns the per-prime constants every other module builds on.
 */

#include <cstddef>
#include <vector>

#include "common/modmath.h"
#include "rns/bigint.h"

namespace poseidon {

/// An ordered RNS basis {q_0, ..., q_{L-1}} with CRT precomputations.
class RnsBasis
{
  public:
    RnsBasis() = default;

    /// Build a basis from distinct primes (order is preserved).
    explicit RnsBasis(std::vector<u64> moduli);

    /// Number of primes in the basis.
    std::size_t size() const { return moduli_.size(); }

    /// i-th prime.
    u64 modulus(std::size_t i) const { return moduli_[i]; }

    /// All primes in order.
    const std::vector<u64>& moduli() const { return moduli_; }

    /// Barrett reducer for the i-th prime (the SBT operator's constants).
    const Barrett64& barrett(std::size_t i) const { return barrett_[i]; }

    /// (Q/q_i)^{-1} mod q_i — the CRT reconstruction coefficient.
    u64 qhat_inv(std::size_t i) const { return qhatInv_[i]; }

    /// Q/q_i as a big integer.
    const BigUInt& qhat(std::size_t i) const { return qhat_[i]; }

    /// Q = product of all primes.
    const BigUInt& big_product() const { return product_; }

    /// floor(Q/2), used for centered lifting.
    const BigUInt& half_product() const { return half_; }

    /// Basis restricted to the first `count` primes.
    RnsBasis prefix(std::size_t count) const;

    /// Basis with the primes of `other` appended.
    RnsBasis concat(const RnsBasis &other) const;

    /// Reduce a signed coefficient into every prime: out[i] = v mod q_i.
    void decompose(i64 v, u64 *out) const;

    /// CRT-compose residues (res[i] is the residue mod q_i) into [0, Q).
    BigUInt compose(const u64 *res) const;

    /**
     * CRT-compose and lift to the centered representative in
     * (-Q/2, Q/2], returned as a double. Exactness degrades gracefully
     * for magnitudes above 2^53, which is fine for CKKS decoding where
     * the message carries ~40-50 significant bits.
     */
    double compose_centered_double(const u64 *res) const;

  private:
    std::vector<u64> moduli_;
    std::vector<Barrett64> barrett_;
    std::vector<u64> qhatInv_;
    std::vector<BigUInt> qhat_;
    BigUInt product_;
    BigUInt half_;
};

} // namespace poseidon

#endif // POSEIDON_RNS_BASIS_H_
