#include "rns/primes.h"

#include <algorithm>

#include "common/check.h"

namespace poseidon {

std::vector<u64>
generate_ntt_primes(std::size_t n, unsigned bits, std::size_t count,
                    const std::vector<u64> &avoid)
{
    POSEIDON_REQUIRE(is_pow2(n), "generate_ntt_primes: N must be 2^k");
    POSEIDON_REQUIRE(bits >= 20 && bits <= 61,
                     "generate_ntt_primes: bits out of range [20,61]");
    u64 step = 2 * static_cast<u64>(n);
    // Start at the largest value < 2^bits congruent to 1 mod 2N.
    u64 top = (u64(1) << bits) - 1;
    u64 candidate = top - (top % step) + 1;
    if (candidate > top) candidate -= step;

    std::vector<u64> out;
    while (out.size() < count) {
        POSEIDON_REQUIRE(candidate > step && candidate > (u64(1) << (bits - 1)),
                         "generate_ntt_primes: ran out of primes of this size");
        if (is_prime(candidate) &&
            std::find(avoid.begin(), avoid.end(), candidate) == avoid.end()) {
            out.push_back(candidate);
        }
        candidate -= step;
    }
    return out;
}

} // namespace poseidon
