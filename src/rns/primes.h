#ifndef POSEIDON_RNS_PRIMES_H_
#define POSEIDON_RNS_PRIMES_H_

/**
 * @file
 * Generation of NTT-friendly primes.
 *
 * CKKS over the negacyclic ring Z_q[X]/(X^N+1) needs primes with
 * q == 1 (mod 2N) so that a primitive 2N-th root of unity exists,
 * enabling the fully-split NTT that Poseidon's NTT cores compute.
 */

#include <cstddef>
#include <vector>

#include "common/modmath.h"

namespace poseidon {

/**
 * Generate `count` distinct primes q == 1 (mod 2N) close to 2^bits.
 *
 * Primes are returned largest-first starting just below 2^bits and are
 * guaranteed distinct from everything in `avoid`.
 *
 * @param n      ring degree N (power of two)
 * @param bits   target bit size (e.g. 32 to match the paper's word width)
 * @param count  number of primes wanted
 * @param avoid  primes that must not be returned again
 */
std::vector<u64> generate_ntt_primes(std::size_t n, unsigned bits,
                                     std::size_t count,
                                     const std::vector<u64> &avoid = {});

} // namespace poseidon

#endif // POSEIDON_RNS_PRIMES_H_
