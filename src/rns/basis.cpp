#include "rns/basis.h"

#include <algorithm>

#include "common/check.h"

namespace poseidon {

RnsBasis::RnsBasis(std::vector<u64> moduli)
    : moduli_(std::move(moduli))
{
    POSEIDON_REQUIRE(!moduli_.empty(), "RnsBasis: empty modulus list");
    for (std::size_t i = 0; i < moduli_.size(); ++i) {
        for (std::size_t j = i + 1; j < moduli_.size(); ++j) {
            POSEIDON_REQUIRE(moduli_[i] != moduli_[j],
                             "RnsBasis: duplicate modulus");
        }
    }
    barrett_.reserve(moduli_.size());
    for (u64 q : moduli_) barrett_.emplace_back(q);

    product_ = BigUInt::product(moduli_);
    half_ = product_;
    half_.shr1();

    qhat_.reserve(moduli_.size());
    qhatInv_.reserve(moduli_.size());
    for (std::size_t i = 0; i < moduli_.size(); ++i) {
        std::vector<u64> others;
        for (std::size_t j = 0; j < moduli_.size(); ++j) {
            if (j != i) others.push_back(moduli_[j]);
        }
        BigUInt qh = BigUInt::product(others);
        u64 qh_mod = qh.is_zero() ? 0 : qh.mod_u64(moduli_[i]);
        if (moduli_.size() == 1) qh_mod = 1; // Qhat = 1 for a single prime
        qhatInv_.push_back(inv_mod(qh_mod, moduli_[i]));
        qhat_.push_back(std::move(qh));
    }
}

RnsBasis
RnsBasis::prefix(std::size_t count) const
{
    POSEIDON_REQUIRE(count >= 1 && count <= moduli_.size(),
                     "RnsBasis::prefix: bad count");
    return RnsBasis(std::vector<u64>(moduli_.begin(),
                                     moduli_.begin() + count));
}

RnsBasis
RnsBasis::concat(const RnsBasis &other) const
{
    std::vector<u64> all = moduli_;
    all.insert(all.end(), other.moduli_.begin(), other.moduli_.end());
    return RnsBasis(std::move(all));
}

void
RnsBasis::decompose(i64 v, u64 *out) const
{
    for (std::size_t i = 0; i < moduli_.size(); ++i) {
        u64 q = moduli_[i];
        if (v >= 0) {
            out[i] = static_cast<u64>(v) % q;
        } else {
            u64 m = static_cast<u64>(-(v + 1)) + 1; // |v| without overflow
            u64 r = m % q;
            out[i] = r == 0 ? 0 : q - r;
        }
    }
}

BigUInt
RnsBasis::compose(const u64 *res) const
{
    BigUInt acc(0);
    for (std::size_t i = 0; i < moduli_.size(); ++i) {
        u64 t = barrett_[i].mul(res[i] % moduli_[i], qhatInv_[i]);
        BigUInt term = moduli_.size() == 1 ? BigUInt(1) : qhat_[i];
        term.mul_u64(t);
        acc.add(term);
    }
    // acc < L * Q; reduce by subtraction.
    while (acc.cmp(product_) >= 0) acc.sub(product_);
    return acc;
}

double
RnsBasis::compose_centered_double(const u64 *res) const
{
    BigUInt v = compose(res);
    if (v.cmp(half_) > 0) {
        BigUInt neg = product_;
        neg.sub(v);
        return -neg.to_double();
    }
    return v.to_double();
}

} // namespace poseidon
