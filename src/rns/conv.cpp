#include "rns/conv.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace poseidon {

RnsConv::RnsConv(const RnsBasis &src, const RnsBasis &dst)
    : src_(src), dst_(dst)
{
    std::size_t ls = src_.size(), ld = dst_.size();
    qhatMod_.assign(ld, std::vector<u64>(ls));
    qMod_.resize(ld);
    qInvDouble_.resize(ls);
    for (std::size_t j = 0; j < ld; ++j) {
        u64 p = dst_.modulus(j);
        for (std::size_t i = 0; i < ls; ++i) {
            qhatMod_[j][i] = ls == 1 ? 1 % p : src_.qhat(i).mod_u64(p);
        }
        qMod_[j] = src_.big_product().mod_u64(p);
    }
    for (std::size_t i = 0; i < ls; ++i) {
        qInvDouble_[i] = 1.0 / static_cast<double>(src_.modulus(i));
    }
}

void
RnsConv::convert(const std::vector<const u64*> &src,
                 const std::vector<u64*> &dst, std::size_t n,
                 bool correct) const
{
    std::size_t ls = src_.size(), ld = dst_.size();
    POSEIDON_REQUIRE(src.size() == ls && dst.size() == ld,
                     "RnsConv::convert: limb count mismatch");

    // Each coefficient column t is independent; split the coefficient
    // range across threads with chunk-local y scratch. Every chunk
    // writes a disjoint slice of each dst limb, so results are
    // bit-identical at any thread count.
    parallel::parallel_for(0, n, 256,
        [&](std::size_t t0, std::size_t t1) {
            std::vector<u64> y(ls);
            for (std::size_t t = t0; t < t1; ++t) {
                double est = 0.0;
                for (std::size_t i = 0; i < ls; ++i) {
                    y[i] = src_.barrett(i).mul(src[i][t],
                                               src_.qhat_inv(i));
                    est += static_cast<double>(y[i]) * qInvDouble_[i];
                }
                // Number of whole-Q overflows in sum_i y_i * Qhat_i.
                u64 e = correct ? static_cast<u64>(std::llround(est)) : 0;
                for (std::size_t j = 0; j < ld; ++j) {
                    u64 p = dst_.modulus(j);
                    const Barrett64 &br = dst_.barrett(j);
                    u64 acc = 0;
                    for (std::size_t i = 0; i < ls; ++i) {
                        acc = add_mod(acc,
                                      br.mul(y[i] % p, qhatMod_[j][i]), p);
                    }
                    if (e) {
                        acc = sub_mod(acc, br.mul(e % p, qMod_[j]), p);
                    }
                    dst[j][t] = acc;
                }
            }
        }, "rns.conv");
}

ModDown::ModDown(const RnsBasis &qBasis, const RnsBasis &pBasis)
    : conv_(pBasis, qBasis)
{
    pInv_.reserve(qBasis.size());
    for (std::size_t i = 0; i < qBasis.size(); ++i) {
        u64 q = qBasis.modulus(i);
        u64 pmod = pBasis.big_product().mod_u64(q);
        pInv_.push_back(inv_mod(pmod, q));
    }
}

void
ModDown::apply(const std::vector<const u64*> &xq,
               const std::vector<const u64*> &xp,
               const std::vector<u64*> &out, std::size_t n) const
{
    const RnsBasis &qb = conv_.dst();
    std::size_t l = qb.size();
    POSEIDON_REQUIRE(xq.size() == l && out.size() == l,
                     "ModDown::apply: limb count mismatch");

    // conv_{p->q}(x_p) into scratch buffers.
    std::vector<std::vector<u64>> scratch(l, std::vector<u64>(n));
    std::vector<u64*> scratchPtr(l);
    for (std::size_t i = 0; i < l; ++i) scratchPtr[i] = scratch[i].data();
    conv_.convert(xp, scratchPtr, n, /*correct=*/true);

    parallel::parallel_for(0, l, 1,
        [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                u64 q = qb.modulus(i);
                const Barrett64 &br = qb.barrett(i);
                for (std::size_t t = 0; t < n; ++t) {
                    u64 d = sub_mod(xq[i][t], scratch[i][t], q);
                    out[i][t] = br.mul(d, pInv_[i]);
                }
            }
        }, "rns.moddown");
}

} // namespace poseidon
