#include "rns/conv.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "kernels/kernels.h"

namespace poseidon {

namespace {

u64
shoup_const(u64 w, u64 q)
{
    return static_cast<u64>((u128(w) << 64) / q);
}

} // namespace

RnsConv::RnsConv(const RnsBasis &src, const RnsBasis &dst)
    : src_(src), dst_(dst)
{
    std::size_t ls = src_.size(), ld = dst_.size();
    qhatMod_.assign(ld, std::vector<u64>(ls));
    qhatModShoup_.assign(ld, std::vector<u64>(ls));
    qMod_.resize(ld);
    qModShoup_.resize(ld);
    qhatInvShoup_.resize(ls);
    qInvDouble_.resize(ls);
    for (std::size_t j = 0; j < ld; ++j) {
        u64 p = dst_.modulus(j);
        for (std::size_t i = 0; i < ls; ++i) {
            qhatMod_[j][i] = ls == 1 ? 1 % p : src_.qhat(i).mod_u64(p);
            qhatModShoup_[j][i] = shoup_const(qhatMod_[j][i], p);
        }
        qMod_[j] = src_.big_product().mod_u64(p);
        qModShoup_[j] = shoup_const(qMod_[j], p);
    }
    for (std::size_t i = 0; i < ls; ++i) {
        qhatInvShoup_[i] = shoup_const(src_.qhat_inv(i),
                                       src_.modulus(i));
        qInvDouble_[i] = 1.0 / static_cast<double>(src_.modulus(i));
    }
}

void
RnsConv::convert(const std::vector<const u64*> &src,
                 const std::vector<u64*> &dst, std::size_t n,
                 bool correct) const
{
    std::size_t ls = src_.size(), ld = dst_.size();
    POSEIDON_REQUIRE(src.size() == ls && dst.size() == ld,
                     "RnsConv::convert: limb count mismatch");

    // Coefficient columns are independent; split the coefficient range
    // across threads and run the batched kernels over each chunk's
    // rows. Every chunk writes a disjoint slice of each dst limb and
    // the kernels are chunk-invariant (same bytes under any split), so
    // results are bit-identical at any thread count. The float
    // overflow estimate accumulates in ascending-i order per column,
    // matching the historical scalar loop's rounding exactly.
    parallel::parallel_for(0, n, 256,
        [&](std::size_t t0, std::size_t t1) {
            std::size_t c = t1 - t0;
            std::vector<std::vector<u64>> y(ls, std::vector<u64>(c));
            std::vector<double> est(c, 0.0);
            std::vector<u64> e(c, 0), acc(c), corr(c);
            for (std::size_t i = 0; i < ls; ++i) {
                // y_i = x_i * [(Q/q_i)^{-1}] mod q_i, batched.
                kernels::scalar_mul_shoup_n(y[i].data(), src[i] + t0,
                                            c, src_.qhat_inv(i),
                                            qhatInvShoup_[i],
                                            src_.modulus(i));
                const u64 *yi = y[i].data();
                double qi = qInvDouble_[i];
                for (std::size_t t = 0; t < c; ++t) {
                    est[t] += static_cast<double>(yi[t]) * qi;
                }
            }
            if (correct) {
                // Number of whole-Q overflows in sum_i y_i * Qhat_i.
                for (std::size_t t = 0; t < c; ++t) {
                    e[t] = static_cast<u64>(std::llround(est[t]));
                }
            }
            for (std::size_t j = 0; j < ld; ++j) {
                u64 p = dst_.modulus(j);
                std::fill(acc.begin(), acc.end(), 0);
                for (std::size_t i = 0; i < ls; ++i) {
                    // Lazy accumulate: y_i is unreduced mod p, which
                    // scalar_mul_mod_acc_n accepts (any 64-bit input).
                    kernels::scalar_mul_mod_acc_n(acc.data(),
                                                  y[i].data(), c,
                                                  qhatMod_[j][i],
                                                  qhatModShoup_[j][i],
                                                  p);
                }
                kernels::normalize_n(acc.data(), c, p);
                if (correct) {
                    kernels::scalar_mul_shoup_n(corr.data(), e.data(),
                                                c, qMod_[j],
                                                qModShoup_[j], p);
                    kernels::sub_mod_n(dst[j] + t0, acc.data(),
                                       corr.data(), c, p);
                } else {
                    std::copy(acc.begin(), acc.end(), dst[j] + t0);
                }
            }
        }, "rns.conv");
}

ModDown::ModDown(const RnsBasis &qBasis, const RnsBasis &pBasis)
    : conv_(pBasis, qBasis)
{
    pInv_.reserve(qBasis.size());
    pInvShoup_.reserve(qBasis.size());
    for (std::size_t i = 0; i < qBasis.size(); ++i) {
        u64 q = qBasis.modulus(i);
        u64 pmod = pBasis.big_product().mod_u64(q);
        pInv_.push_back(inv_mod(pmod, q));
        pInvShoup_.push_back(shoup_const(pInv_.back(), q));
    }
}

void
ModDown::apply(const std::vector<const u64*> &xq,
               const std::vector<const u64*> &xp,
               const std::vector<u64*> &out, std::size_t n) const
{
    const RnsBasis &qb = conv_.dst();
    std::size_t l = qb.size();
    POSEIDON_REQUIRE(xq.size() == l && out.size() == l,
                     "ModDown::apply: limb count mismatch");

    // conv_{p->q}(x_p) into scratch buffers.
    std::vector<std::vector<u64>> scratch(l, std::vector<u64>(n));
    std::vector<u64*> scratchPtr(l);
    for (std::size_t i = 0; i < l; ++i) scratchPtr[i] = scratch[i].data();
    conv_.convert(xp, scratchPtr, n, /*correct=*/true);

    parallel::parallel_for(0, l, 1,
        [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                u64 q = qb.modulus(i);
                kernels::sub_mod_n(out[i], xq[i], scratch[i].data(), n,
                                   q);
                kernels::scalar_mul_shoup_n(out[i], out[i], n, pInv_[i],
                                            pInvShoup_[i], q);
            }
        }, "rns.moddown");
}

} // namespace poseidon
