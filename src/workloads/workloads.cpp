#include "workloads/workloads.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace poseidon::workloads {

using isa::BasicOp;
using isa::BootstrapShape;
using isa::OpShape;
using isa::Trace;

namespace {

/// Matrix-vector product of dimension `dim` via the diagonal method
/// with BSGS: ~2*sqrt(dim) rotations + dim PMult + dim-1 HAdd + one
/// rescale. Charged to the caller's tag.
void
emit_matvec(Trace &t, BasicOpCounts &ops, const OpShape &s, u64 dim,
            BasicOp tag)
{
    u64 n1 = static_cast<u64>(
        std::ceil(std::sqrt(static_cast<double>(dim))));
    u64 nb = (dim + n1 - 1) / n1;
    for (u64 g = 1; g < n1; ++g) {
        isa::emit_rotation(t, s, tag);
        ops.add(BasicOp::Rotation);
    }
    for (u64 d = 0; d < dim; ++d) {
        isa::emit_pmult(t, s, tag);
        ops.add(BasicOp::PMult);
    }
    for (u64 a = 0; a + 1 < dim; ++a) {
        isa::emit_hadd(t, s, tag);
        ops.add(BasicOp::HAdd);
    }
    for (u64 b = 1; b < nb; ++b) {
        isa::emit_rotation(t, s, tag);
        ops.add(BasicOp::Rotation);
    }
    isa::emit_rescale(t, s, tag);
    ops.add(BasicOp::Rescale);
}

/// Packed bootstrap with standard knobs; charged to Bootstrapping.
void
emit_boot(Trace &t, BasicOpCounts &ops, const OpShape &top, u64 slots,
          u64 ctsStages = 3, u64 cmults = 14)
{
    BootstrapShape bs;
    bs.base = top;
    bs.slots = slots;
    bs.ctsStages = ctsStages;
    bs.stcStages = ctsStages;
    bs.evalModCMults = cmults;
    isa::emit_bootstrap(t, bs);
    ops.add(BasicOp::Bootstrapping);
}

} // namespace

isa::OpShape
paper_shape()
{
    OpShape s;
    s.n = u64(1) << 16;
    s.limbs = 44;
    // Benchmarks use hybrid keyswitching with dnum = 4 digit groups
    // and K = ceil(L/dnum) special primes, the standard configuration
    // of bootstrapping-capable RNS-CKKS stacks at this depth.
    s.dnum = 4;
    s.K = 11;
    return s;
}

Workload
make_lr(const isa::OpShape &top)
{
    Workload w;
    w.name = "LR";
    w.description =
        "HELR logistic regression, 10 iterations averaged, L=38 "
        "multiplicative depth, 2 bootstrapping operations";
    OpShape s = top;
    s.limbs = 38;

    for (int iter = 0; iter < 10; ++iter) {
        // Gradient step: inner products over the feature dimension
        // (log-rotations), sigmoid approximation (2 CMult), update.
        for (int r = 0; r < 12; ++r) {
            isa::emit_rotation(w.trace, s, BasicOp::Rotation);
            w.ops.add(BasicOp::Rotation);
        }
        for (int c = 0; c < 2; ++c) {
            isa::emit_cmult(w.trace, s, BasicOp::CMult);
            w.ops.add(BasicOp::CMult);
        }
        for (int p = 0; p < 4; ++p) {
            isa::emit_pmult(w.trace, s, BasicOp::PMult);
            w.ops.add(BasicOp::PMult);
        }
        for (int a = 0; a < 6; ++a) {
            isa::emit_hadd(w.trace, s, BasicOp::HAdd);
            w.ops.add(BasicOp::HAdd);
        }
        for (int rs = 0; rs < 2; ++rs) {
            isa::emit_rescale(w.trace, s, BasicOp::Rescale);
            w.ops.add(BasicOp::Rescale);
        }
    }
    // Two bootstraps across the 10 iterations.
    emit_boot(w.trace, w.ops, top, /*slots=*/top.n / 2);
    emit_boot(w.trace, w.ops, top, /*slots=*/top.n / 2);
    w.bootstrapCount = 2;
    w.reportDivisor = 10; // the paper reports the per-iteration average
    return w;
}

Workload
make_lstm(const isa::OpShape &top)
{
    Workload w;
    w.name = "LSTM";
    w.description =
        "LSTM inference, 50 steps of y=sigma(W0*y + W1*x) with 128x128 "
        "weights, cubic activation, 50 bootstrapping operations";
    OpShape s = top;
    // The per-step state lives at a low level and is refreshed by a
    // thin bootstrap every step, so step arithmetic is cheap and the
    // keyswitch basis stays small.
    s.limbs = 10;
    s.K = 3;

    for (int step = 0; step < 50; ++step) {
        emit_matvec(w.trace, w.ops, s, 128, BasicOp::Rotation);
        emit_matvec(w.trace, w.ops, s, 128, BasicOp::Rotation);
        isa::emit_hadd(w.trace, s, BasicOp::HAdd);
        w.ops.add(BasicOp::HAdd);
        // Cubic activation: two CMult + rescales.
        for (int c = 0; c < 2; ++c) {
            isa::emit_cmult(w.trace, s, BasicOp::CMult);
            w.ops.add(BasicOp::CMult);
            isa::emit_rescale(w.trace, s, BasicOp::Rescale);
            w.ops.add(BasicOp::Rescale);
        }
        // Thin bootstrap: only 128 slots are packed, so CoeffToSlot
        // collapses to two tiny stages and EvalMod dominates. The
        // refresh also only needs to regenerate the short per-step
        // chain, so it runs over a truncated modulus chain.
        OpShape bootShape = top;
        bootShape.limbs = 20;
        bootShape.K = 5;
        emit_boot(w.trace, w.ops, bootShape, /*slots=*/128,
                  /*ctsStages=*/2, /*cmults=*/10);
    }
    w.bootstrapCount = 50;
    return w;
}

Workload
make_resnet20(const isa::OpShape &top)
{
    Workload w;
    w.name = "ResNet-20";
    w.description =
        "ResNet-20 FHE inference [28]: 20 convolution layers as "
        "rotation-heavy matrix products, degree-2 polynomial "
        "activations, periodic bootstrapping";
    OpShape s = top;
    s.limbs = 24;

    for (int layer = 0; layer < 20; ++layer) {
        // Convolution lowered to shifted multiply-accumulate: a 3x3
        // kernel over packed channels — 9 rotations with per-tap
        // plaintext weights, accumulated, plus channel mixing.
        for (int tap = 0; tap < 9; ++tap) {
            isa::emit_rotation(w.trace, s, BasicOp::Rotation);
            w.ops.add(BasicOp::Rotation);
            isa::emit_pmult(w.trace, s, BasicOp::PMult);
            w.ops.add(BasicOp::PMult);
            isa::emit_hadd(w.trace, s, BasicOp::HAdd);
            w.ops.add(BasicOp::HAdd);
        }
        emit_matvec(w.trace, w.ops, s, 64, BasicOp::Rotation);
        // Square activation.
        isa::emit_cmult(w.trace, s, BasicOp::CMult);
        w.ops.add(BasicOp::CMult);
        isa::emit_rescale(w.trace, s, BasicOp::Rescale);
        w.ops.add(BasicOp::Rescale);
        // Bootstrap every other layer.
        if (layer % 2 == 1) {
            emit_boot(w.trace, w.ops, top, /*slots=*/u64(1) << 14);
        }
    }
    w.bootstrapCount = 10;
    return w;
}

Workload
make_packed_bootstrapping(const isa::OpShape &top)
{
    Workload w;
    w.name = "Packed Bootstrapping";
    w.description =
        "Fully packed bootstrapping [30]: refresh a depth-exhausted "
        "ciphertext (L=3) to L=57";
    OpShape s = top;
    s.limbs = 57;
    emit_boot(w.trace, w.ops, s, /*slots=*/top.n / 2);
    w.bootstrapCount = 1;
    return w;
}

std::vector<Workload>
paper_benchmarks()
{
    OpShape s = paper_shape();
    return {make_lr(s), make_lstm(s), make_resnet20(s),
            make_packed_bootstrapping(s)};
}

std::vector<std::string>
workload_names()
{
    return {"LR", "LSTM", "ResNet-20", "Packed Bootstrapping"};
}

namespace {

/// Lowercase and drop everything but letters and digits, so "LR",
/// "ResNet-20" and "Packed Bootstrapping" match forgiving spellings.
std::string
canonical(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        }
    }
    return out;
}

/// Levenshtein distance between two canonicalized names.
std::size_t
edit_distance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
        }
    }
    return row[b.size()];
}

/// Accepted spellings, canonicalized, mapped to the canonical display
/// name — the search space for near-miss suggestions.
const std::vector<std::pair<std::string, std::string>>&
accepted_spellings()
{
    static const std::vector<std::pair<std::string, std::string>> kMap =
        {
            {"lr", "LR"},
            {"helr", "LR"},
            {"lstm", "LSTM"},
            {"resnet20", "ResNet-20"},
            {"resnet", "ResNet-20"},
            {"packedbootstrapping", "Packed Bootstrapping"},
            {"bootstrapping", "Packed Bootstrapping"},
            {"bootstrap", "Packed Bootstrapping"},
        };
    return kMap;
}

/// Closest known workload for a misspelled `key` (canonical form), or
/// empty when nothing is plausibly close. The threshold scales with
/// the candidate length so "lstn" suggests LSTM but "foo" stays quiet.
std::string
suggest_workload(const std::string &key)
{
    std::string best;
    std::size_t bestDist = std::string::npos;
    for (const auto &[spelling, display] : accepted_spellings()) {
        std::size_t d = edit_distance(key, spelling);
        std::size_t budget = std::max<std::size_t>(
            1, std::min(key.size(), spelling.size()) / 3);
        if (d <= budget && d < bestDist) {
            bestDist = d;
            best = display;
        }
    }
    return best;
}

} // namespace

Workload
find_workload(const std::string &name)
{
    std::string key = canonical(name);
    OpShape s = paper_shape();
    if (key == "lr" || key == "helr") return make_lr(s);
    if (key == "lstm") return make_lstm(s);
    if (key == "resnet20" || key == "resnet") return make_resnet20(s);
    if (key == "packedbootstrapping" || key == "bootstrapping" ||
        key == "bootstrap") {
        return make_packed_bootstrapping(s);
    }
    std::string known;
    for (const std::string &n : workload_names()) {
        if (!known.empty()) known += ", ";
        known += n;
    }
    std::string hint = suggest_workload(key);
    if (!hint.empty()) hint = " (did you mean \"" + hint + "\"?)";
    POSEIDON_REQUIRE(false, "unknown workload \"" << name << "\""
                                                  << hint << "; known: "
                                                  << known);
    return {}; // unreachable
}

} // namespace poseidon::workloads
