#ifndef POSEIDON_WORKLOADS_WORKLOADS_H_
#define POSEIDON_WORKLOADS_WORKLOADS_H_

/**
 * @file
 * The paper's four evaluation benchmarks (Table V) as operator traces.
 *
 * Each generator builds the exact operation mix the workload structure
 * implies — matrix-vector products via the diagonal method with BSGS
 * rotations, polynomial activations via CMult chains, bootstrapping
 * via the packed pipeline — at the paper's full-scale parameters
 * (N = 2^16). The functional counterparts at small N live in the
 * examples/ directory; the traces here feed the hardware model.
 */

#include <map>
#include <string>
#include <vector>

#include "isa/compiler.h"

namespace poseidon::workloads {

/// Counts of basic operations a workload performs (for CPU estimates).
struct BasicOpCounts
{
    std::map<isa::BasicOp, u64> counts;

    u64 of(isa::BasicOp b) const
    {
        auto it = counts.find(b);
        return it == counts.end() ? 0 : it->second;
    }

    void add(isa::BasicOp b, u64 n = 1) { counts[b] += n; }
};

/// One benchmark: its trace plus bookkeeping.
struct Workload
{
    std::string name;
    std::string description;
    isa::Trace trace;
    BasicOpCounts ops;
    u64 bootstrapCount = 0;
    /// Divide total time by this to get the paper's reported metric
    /// (e.g. LR reports the average per training iteration).
    u64 reportDivisor = 1;
};

/// HELR logistic regression: 10 iterations, 2 bootstraps, L=38 depth.
Workload make_lr(const isa::OpShape &top);

/// LSTM inference: 50 time steps of y = sigma(W0 y + W1 x) with
/// 128x128 weights; one (thin) bootstrap per step.
Workload make_lstm(const isa::OpShape &top);

/// ResNet-20 inference: 20 convolution layers lowered to rotation-
/// heavy matrix products plus polynomial activations and bootstraps.
Workload make_resnet20(const isa::OpShape &top);

/// A single fully packed bootstrapping (L: 3 -> 57).
Workload make_packed_bootstrapping(const isa::OpShape &top);

/// All four, at the paper's scale (N = 2^16).
std::vector<Workload> paper_benchmarks();

/// Canonical names accepted by find_workload (the Workload::name of
/// each paper benchmark, in paper_benchmarks() order).
std::vector<std::string> workload_names();

/// Look a paper benchmark up by name, case- and punctuation-
/// insensitively ("lr", "LSTM", "resnet-20", "packed_bootstrapping",
/// "bootstrapping", ...). Throws poseidon::InvalidArgument on an
/// unknown name, listing the valid ones and suggesting the closest
/// accepted spelling when the input looks like a typo ("lstn" ->
/// `did you mean "LSTM"?`).
Workload find_workload(const std::string &name);

/// The paper-scale shape (N = 2^16, 44 limbs, 1 special prime).
isa::OpShape paper_shape();

} // namespace poseidon::workloads

#endif // POSEIDON_WORKLOADS_WORKLOADS_H_
