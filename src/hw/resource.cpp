#include "hw/resource.h"

#include "common/check.h"
#include "ntt/fusion.h"

namespace poseidon::hw {

namespace {

/// Per-lane resource constants for the element-wise cores (typical
/// 32-bit FPGA datapath costs).
constexpr u64 kMaLutPerLane = 45;
constexpr u64 kMaFfPerLane = 52;

constexpr u64 kMmLutPerLane = 185;
constexpr u64 kMmFfPerLane = 240;
constexpr u64 kMmDspPerLane = 4;

constexpr u64 kSbtLutPerLane = 80;
constexpr u64 kSbtFfPerLane = 96;
constexpr u64 kSbtDspPerLane = 3;

/// NTT model coefficients: resource = B * (3 * passes + (2^k - 1)),
/// evaluated at the reference degree 2^16 (pass count 16/k).
constexpr u64 kNttRefLogN = 16;
constexpr double kNttB_ff = 3400;
constexpr double kNttB_dsp = 88;
constexpr double kNttB_lut = 2600;

} // namespace

CoreResources&
CoreResources::operator+=(const CoreResources &o)
{
    ff += o.ff;
    dsp += o.dsp;
    lut += o.lut;
    bram += o.bram;
    uram += o.uram;
    return *this;
}

ResourceModel::ResourceModel(HwConfig cfg)
    : cfg_(cfg)
{}

CoreResources
ResourceModel::ma_cores() const
{
    u64 lanes = cfg_.lanes;
    return {"MA", kMaFfPerLane * lanes, 0, kMaLutPerLane * lanes, 8};
}

CoreResources
ResourceModel::mm_cores() const
{
    u64 lanes = cfg_.lanes;
    return {"MM", kMmFfPerLane * lanes, kMmDspPerLane * lanes,
            kMmLutPerLane * lanes, 32};
}

CoreResources
ResourceModel::ntt_cores_at(unsigned k) const
{
    POSEIDON_REQUIRE(k >= 1 && k <= 6, "ntt_cores_at: k out of [1,6]");
    double passes = static_cast<double>(
        FusionCostModel::phases(u64(1) << kNttRefLogN, k));
    double mults = static_cast<double>((u64(1) << k) - 1);
    double unitCost = 3.0 * passes + mults;
    double laneScale = static_cast<double>(cfg_.lanes) / 512.0;

    // Twiddle storage scales with the fused twiddle count per block
    // and the number of passes that must keep factors resident.
    FusionCostModel fm{k};
    u64 bram = static_cast<u64>(
        (2.0 * passes + static_cast<double>(fm.twiddles_fused())) * 8.0 *
        laneScale);

    return {"NTT",
            static_cast<u64>(kNttB_ff * unitCost * laneScale),
            static_cast<u64>(kNttB_dsp * unitCost * laneScale),
            static_cast<u64>(kNttB_lut * unitCost * laneScale),
            bram};
}

CoreResources
ResourceModel::ntt_cores() const
{
    return ntt_cores_at(cfg_.nttRadixLog2);
}

CoreResources
ResourceModel::auto_single(bool hfauto, std::size_t subvec)
{
    if (!hfauto) {
        // One index map per cycle: a counter, a modular step and an
        // address register — nearly free, but slow.
        return {"Auto", 88, 0, 210, 1};
    }
    // The paper's HFAuto core (Table VIII): wide mux/shift networks
    // for C-element sub-vectors plus the dual-port BRAM bank.
    double scale = static_cast<double>(subvec) / 512.0;
    return {"HFAuto", static_cast<u64>(572 * scale), 0,
            static_cast<u64>(25751 * scale),
            static_cast<u64>(512 * scale)};
}

u64
ResourceModel::auto_latency_cycles(std::size_t n, bool hfauto,
                                   std::size_t subvec)
{
    if (!hfauto) return static_cast<u64>(n);
    return 4 * static_cast<u64>(n) / static_cast<u64>(subvec);
}

CoreResources
ResourceModel::auto_core() const
{
    CoreResources r = auto_single(cfg_.hfauto, cfg_.hfautoSubvec);
    r.name = "Automorphism";
    return r;
}

CoreResources
ResourceModel::sbt_cores() const
{
    u64 lanes = cfg_.lanes;
    return {"SBT", kSbtFfPerLane * lanes, kSbtDspPerLane * lanes,
            kSbtLutPerLane * lanes, 16};
}

CoreResources
ResourceModel::total() const
{
    CoreResources t{"Total", 0, 0, 0, 0};
    t += ma_cores();
    t += mm_cores();
    t += ntt_cores();
    t += auto_core();
    t += sbt_cores();
    // Scratchpad lives in UltraRAM (288Kb blocks) on the U280.
    t.uram += static_cast<u64>(cfg_.scratchpadMB * 1024.0 * 1024.0 * 8.0 /
                               (288.0 * 1024.0));
    return t;
}

std::vector<CoreResources>
ResourceModel::table_rows() const
{
    return {ma_cores(), mm_cores(), ntt_cores(), auto_core(),
            sbt_cores(), total()};
}

} // namespace poseidon::hw
