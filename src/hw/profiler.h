#ifndef POSEIDON_HW_PROFILER_H_
#define POSEIDON_HW_PROFILER_H_

/**
 * @file
 * Bottleneck-attribution profiler over the accelerator model.
 *
 * The simulator answers "how long": SimResult totals. This pass
 * answers "why": every modeled cycle of every segment is attributed to
 * exactly one of three exposure buckets derived from the segment law
 * T = max(C, M) + (1 - ov) * min(C, M):
 *
 *   overlapped       = ov * min(C, M)    both engines busy, hidden
 *   compute-exposed  = C - overlapped    only the compute side runs
 *   memory-exposed   = M - overlapped    only the HBM side runs
 *
 * Cycle conservation is an invariant, not a hope: per segment the
 * profiler recomputes the duration with the simulator's own
 * expression, max(C, M) + (1 - ov) * min(C, M), on the same doubles —
 * so the attributed total equals SimResult.cycles bit-exactly, and the
 * per-tag attributed seconds (accumulated with the simulator's own
 * segSeconds expression, in segment order) equal SimResult.tagSeconds
 * bit-exactly. profile() checks this and throws InternalError on any
 * drift.
 *
 * On top of the split, per tag and for the whole run:
 *  - vector-lane occupancy: MA/MM element-cycles / (lanes * cycles);
 *  - NTT-core and automorphism-core occupancy (busy-cycle share);
 *  - HBM bandwidth utilization (extends tag_bandwidth_utilization);
 *  - scratchpad high-water footprint and spill-traffic cycle share;
 *  - ECC-retry overhead share (from the fault injector);
 *  - a roofline point: arithmetic intensity (compute elements per HBM
 *    byte) vs achieved element throughput, against the machine's
 *    compute roof (lanes * clock) and bandwidth roof (peak * eff),
 *    whose ratio is the ridge intensity.
 *
 * The report renders as an ASCII table (to_text), a JSON document
 * (to_json, schema_version 1), and MetricsRegistry gauges
 * (export_metrics: "sim.util.*", "sim.roofline.*").
 */

#include <array>
#include <string>
#include <vector>

#include "hw/sim.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace poseidon::hw {

/// Where every attributed cycle of one tag (or the whole run) went.
struct ExposureBuckets
{
    double cycles = 0.0;  ///< attributed total (== sim segment cycles)
    double seconds = 0.0; ///< mirrors the simulator's tagSeconds sums
    double computeExposed = 0.0;
    double memExposed = 0.0;
    double overlapped = 0.0;

    double computeCycles = 0.0; ///< raw compute work inside segments
    double memCycles = 0.0;     ///< memory work after spill + retries
    double spillCycles = 0.0;   ///< memory cycles due to respilling
    double retryCycles = 0.0;   ///< memory cycles due to ECC replays
    double bytes = 0.0;         ///< HBM traffic
    /// MA+MM+NTT+INTT+AUTO elements. SBT is excluded: it is fused
    /// into the producing pipelines at zero marginal cycles, so its
    /// elements are not additional throughput.
    double computeElems = 0.0;
    double laneElems = 0.0;     ///< MA+MM elements (vector datapath)
    double nttCycles = 0.0;     ///< NTT+INTT busy cycles
    double autoCycles = 0.0;    ///< automorphism busy cycles
    u64 segments = 0;           ///< segment count

    // Shares of the attributed total (0 when cycles == 0).
    double compute_exposed_share() const;
    double mem_exposed_share() const;
    double overlapped_share() const;

    /// MA/MM element-cycles over the lane-cycle budget.
    double lane_occupancy(const HwConfig &cfg) const;
    /// Busy-cycle share of the NTT / automorphism cores.
    double ntt_occupancy() const;
    double auto_occupancy() const;
    /// Achieved HBM bandwidth / peak over the attributed time.
    double bandwidth_utilization(const HwConfig &cfg) const;
    /// Spill / retry cycles as a share of all memory cycles.
    double spill_share() const;
    double retry_share() const;

    /// Roofline coordinates: compute elements per HBM byte, and
    /// achieved compute-element throughput (elements / second).
    double arithmetic_intensity() const;
    double achieved_elems_per_sec() const;
};

/// Which resource bounds a tag, per the exposure split.
enum class Bound { Compute, Memory, Balanced };

const char* to_string(Bound b);

/// One basic operation's slice of the attribution.
struct TagProfile
{
    isa::BasicOp tag;
    ExposureBuckets b;

    /// Memory-bound when memory-exposed time dominates compute-exposed
    /// time by more than 10% of the tag's cycles (and vice versa);
    /// Balanced inside that band.
    Bound bound() const;
};

/// The machine's roofline, derived from HwConfig.
struct RooflineModel
{
    double peakElemsPerSec = 0.0; ///< lanes * clock
    double peakBytesPerSec = 0.0; ///< HBM peak * streaming efficiency
    /// Intensity where the two roofs cross (elements per byte).
    double ridgeElemsPerByte = 0.0;

    /// Attainable throughput at intensity `ai` (min of both roofs).
    double attainable_elems_per_sec(double ai) const;

    static RooflineModel from_config(const HwConfig &cfg);
};

/// Full attribution of one simulator run.
struct ProfileReport
{
    std::string workload; ///< optional label (poseidon_prof sets it)
    HwConfig cfg;
    ExposureBuckets total;
    std::vector<TagProfile> tags; ///< sorted by attributed cycles, desc

    /// Copied verbatim from SimResult (per-kind busy cycles).
    std::array<double, 8> kindCycles = {};
    FaultStats faults;

    /// Largest resident-tile footprint of any segment, in bytes,
    /// against the configured capacity.
    double scratchpadHighWaterBytes = 0.0;
    double scratchpadCapacityBytes = 0.0;

    RooflineModel roofline;

    const TagProfile* find_tag(isa::BasicOp tag) const;

    /// One-line diagnosis of the dominant bottleneck, e.g.
    /// "Bootstrapping is 72% memory-exposed (34% of it scratchpad
    /// respill): raise overlap or scratchpad capacity".
    std::string verdict() const;

    /// ASCII attribution table + roofline table + verdict.
    std::string to_text() const;

    /// JSON report (schema_version 1): workload, hw, totals, tags[],
    /// roofline, scratchpad, verdict.
    telemetry::Json to_json() const;

    /// Publish gauges into `reg`: "sim.util.*" occupancies/shares and
    /// per-kind cycles, "sim.roofline.*" points and roofs.
    void export_metrics(telemetry::MetricsRegistry &reg) const;
};

/**
 * Attribute one run. `tl` must come from the same PoseidonSim::run
 * call that produced `r` (run with a non-null timeline); `cfg` must be
 * the config that priced it. Throws poseidon::InternalError if the
 * attributed cycles fail to reproduce SimResult bit-exactly.
 */
ProfileReport profile(const SimTimeline &tl, const SimResult &r,
                      const HwConfig &cfg, std::string workload = "");

} // namespace poseidon::hw

#endif // POSEIDON_HW_PROFILER_H_
