#ifndef POSEIDON_HW_RESOURCE_H_
#define POSEIDON_HW_RESOURCE_H_

/**
 * @file
 * FPGA resource model (Tables VIII, XI, XII and Fig. 10).
 *
 * Per-core FF/DSP/LUT/BRAM estimates for the five operator cores at a
 * given lane count and NTT radix. The NTT core model captures the
 * paper's k trade-off: fewer fused passes need less inter-pass
 * buffering/control, while wider radix needs more multipliers —
 * resource(k) ~ A * passes(k) + B * (2^k - 1), U-shaped with the
 * minimum at k = 3. Automorphism core numbers reproduce the paper's
 * Table VIII (naive Auto vs HFAuto).
 */

#include <string>
#include <vector>

#include "common/modmath.h"
#include "hw/config.h"

namespace poseidon::hw {

/// One core's (or core array's) resource vector.
struct CoreResources
{
    std::string name;
    u64 ff = 0;
    u64 dsp = 0;
    u64 lut = 0;
    u64 bram = 0;
    u64 uram = 0;

    CoreResources& operator+=(const CoreResources &o);
};

/// Alveo U280 device capacity (for utilization percentages).
struct DeviceCapacity
{
    u64 ff = 2607360;
    u64 dsp = 9024;
    u64 lut = 1303680;
    u64 bram = 2016; ///< 36Kb tiles
    u64 uram = 960;  ///< 288Kb UltraRAM blocks (hold the scratchpad)
};

/// Estimates resources for the configured accelerator instance.
class ResourceModel
{
  public:
    explicit ResourceModel(HwConfig cfg = HwConfig::poseidon_u280());

    /// 512-lane MA core array.
    CoreResources ma_cores() const;

    /// 512-lane MM (Barrett) core array.
    CoreResources mm_cores() const;

    /// NTT core array at the configured radix.
    CoreResources ntt_cores() const;

    /// NTT core array at an explicit radix (Fig. 10 sweep).
    CoreResources ntt_cores_at(unsigned k) const;

    /// Automorphism engine (HFAuto or naive per config).
    CoreResources auto_core() const;

    /// Shared Barrett reduction units.
    CoreResources sbt_cores() const;

    /// Everything summed (Table XI bottom line).
    CoreResources total() const;

    /// All core rows in Table XI order.
    std::vector<CoreResources> table_rows() const;

    /**
     * Single automorphism core comparison (Table VIII): naive Auto vs
     * HFAuto, with latency in cycles for an N-point polynomial.
     */
    static CoreResources auto_single(bool hfauto, std::size_t subvec);
    static u64 auto_latency_cycles(std::size_t n, bool hfauto,
                                   std::size_t subvec);

  private:
    HwConfig cfg_;
};

} // namespace poseidon::hw

#endif // POSEIDON_HW_RESOURCE_H_
