#include "hw/profiler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace poseidon::hw {

using isa::BasicOp;
using isa::OpKind;
using telemetry::Json;

// ------------------------------------------------- ExposureBuckets

double
ExposureBuckets::compute_exposed_share() const
{
    return cycles > 0.0 ? computeExposed / cycles : 0.0;
}

double
ExposureBuckets::mem_exposed_share() const
{
    return cycles > 0.0 ? memExposed / cycles : 0.0;
}

double
ExposureBuckets::overlapped_share() const
{
    return cycles > 0.0 ? overlapped / cycles : 0.0;
}

double
ExposureBuckets::lane_occupancy(const HwConfig &cfg) const
{
    if (cycles <= 0.0) return 0.0;
    return laneElems / (static_cast<double>(cfg.lanes) * cycles);
}

double
ExposureBuckets::ntt_occupancy() const
{
    return cycles > 0.0 ? nttCycles / cycles : 0.0;
}

double
ExposureBuckets::auto_occupancy() const
{
    return cycles > 0.0 ? autoCycles / cycles : 0.0;
}

double
ExposureBuckets::bandwidth_utilization(const HwConfig &cfg) const
{
    if (seconds <= 0.0) return 0.0;
    return bytes / (seconds * cfg.hbmPeakGBps * 1e9);
}

double
ExposureBuckets::spill_share() const
{
    return memCycles > 0.0 ? spillCycles / memCycles : 0.0;
}

double
ExposureBuckets::retry_share() const
{
    return memCycles > 0.0 ? retryCycles / memCycles : 0.0;
}

double
ExposureBuckets::arithmetic_intensity() const
{
    if (bytes <= 0.0) {
        return computeElems > 0.0
                   ? std::numeric_limits<double>::infinity()
                   : 0.0;
    }
    return computeElems / bytes;
}

double
ExposureBuckets::achieved_elems_per_sec() const
{
    return seconds > 0.0 ? computeElems / seconds : 0.0;
}

// ------------------------------------------------------ TagProfile

const char*
to_string(Bound b)
{
    switch (b) {
      case Bound::Compute: return "compute";
      case Bound::Memory: return "memory";
      case Bound::Balanced: return "balanced";
    }
    return "?";
}

Bound
TagProfile::bound() const
{
    if (b.cycles <= 0.0) return Bound::Balanced;
    double lead = (b.memExposed - b.computeExposed) / b.cycles;
    if (lead > 0.10) return Bound::Memory;
    if (lead < -0.10) return Bound::Compute;
    return Bound::Balanced;
}

// --------------------------------------------------- RooflineModel

RooflineModel
RooflineModel::from_config(const HwConfig &cfg)
{
    RooflineModel m;
    m.peakElemsPerSec =
        static_cast<double>(cfg.lanes) * cfg.clockGHz * 1e9;
    m.peakBytesPerSec = cfg.hbmPeakGBps * 1e9 * cfg.hbmEfficiency;
    m.ridgeElemsPerByte =
        m.peakBytesPerSec > 0.0 ? m.peakElemsPerSec / m.peakBytesPerSec
                                : 0.0;
    return m;
}

double
RooflineModel::attainable_elems_per_sec(double ai) const
{
    if (!std::isfinite(ai)) return peakElemsPerSec;
    return std::min(peakElemsPerSec, ai * peakBytesPerSec);
}

// --------------------------------------------------------- profile

ProfileReport
profile(const SimTimeline &tl, const SimResult &r, const HwConfig &cfg,
        std::string workload)
{
    ProfileReport rep;
    rep.workload = std::move(workload);
    rep.cfg = cfg;
    rep.kindCycles = r.kindCycles;
    rep.faults = r.faults;
    rep.roofline = RooflineModel::from_config(cfg);
    rep.scratchpadCapacityBytes = cfg.scratchpadMB * 1024.0 * 1024.0;

    std::map<BasicOp, ExposureBuckets> byTag;
    const double ov = cfg.overlap;

    for (const SegmentTiming &seg : tl.segments) {
        const double c = seg.computeCycles;
        const double m = seg.memCycles;
        // The simulator's own segment law on the same doubles: the
        // recomputed duration is bit-identical to seg.cycles, so
        // accumulating it conserves cycles exactly.
        double attributed = std::max(c, m) + (1.0 - ov) * std::min(c, m);
        POSEIDON_CHECK(attributed == seg.cycles,
                       "profiler: segment law drifted from the "
                       "simulator ("
                           << attributed << " != " << seg.cycles << ")");
        double overlapped = ov * std::min(c, m);
        double computeExposed = c - overlapped;
        double memExposed = m - overlapped;
        // Mirrors the simulator's segSeconds expression (tagSeconds).
        double seconds = seg.cycles / (cfg.clockGHz * 1e9);

        ExposureBuckets &tb = byTag[seg.tag];
        for (ExposureBuckets *b : {&rep.total, &tb}) {
            b->cycles += attributed;
            b->seconds += seconds;
            b->computeExposed += computeExposed;
            b->memExposed += memExposed;
            b->overlapped += overlapped;
            b->computeCycles += c;
            b->memCycles += m;
            b->spillCycles += seg.rawMemCycles * seg.spillFactor -
                              seg.rawMemCycles;
            b->retryCycles += seg.retryCycles;
            b->segments += 1;
        }
        for (const InstrTiming &it : seg.instrs) {
            double elems = static_cast<double>(it.elems);
            double bytes = static_cast<double>(it.bytes);
            bool isLane = it.kind == OpKind::MA || it.kind == OpKind::MM;
            bool isNtt =
                it.kind == OpKind::NTT || it.kind == OpKind::INTT;
            for (ExposureBuckets *b : {&rep.total, &tb}) {
                b->bytes += bytes;
                if (it.kind == OpKind::HBM_RD ||
                    it.kind == OpKind::HBM_WR ||
                    it.kind == OpKind::SBT) {
                    // HBM moves no compute elements; SBT is fused
                    // into the MM/NTT pipelines at zero marginal
                    // cycles, so its elements are not throughput.
                    continue;
                }
                b->computeElems += elems;
                if (isLane) b->laneElems += elems;
                if (isNtt) b->nttCycles += it.computeCycles;
                if (it.kind == OpKind::AUTO) {
                    b->autoCycles += it.computeCycles;
                }
            }
        }
        double footprint = cfg.scratchpadTiles *
                           static_cast<double>(seg.maxDegree) *
                           cfg.wordBytes;
        rep.scratchpadHighWaterBytes =
            std::max(rep.scratchpadHighWaterBytes, footprint);
    }

    // Conservation against the aggregate result. The totals accumulate
    // per-segment values in segment order — the simulator's own
    // accumulation order — so equality is exact, not approximate.
    POSEIDON_CHECK(rep.total.cycles == r.cycles,
                   "profiler: attributed cycles "
                       << rep.total.cycles
                       << " != SimResult.cycles " << r.cycles);
    for (const auto &kv : byTag) {
        auto it = r.tagSeconds.find(kv.first);
        POSEIDON_CHECK(it != r.tagSeconds.end() &&
                           kv.second.seconds == it->second,
                       "profiler: tag " << isa::to_string(kv.first)
                                        << " seconds drifted from "
                                           "SimResult.tagSeconds");
    }

    rep.tags.reserve(byTag.size());
    for (auto &kv : byTag) rep.tags.push_back({kv.first, kv.second});
    std::sort(rep.tags.begin(), rep.tags.end(),
              [](const TagProfile &a, const TagProfile &b) {
                  return a.b.cycles > b.b.cycles;
              });
    return rep;
}

// --------------------------------------------------- ProfileReport

const TagProfile*
ProfileReport::find_tag(isa::BasicOp tag) const
{
    for (const TagProfile &t : tags) {
        if (t.tag == tag) return &t;
    }
    return nullptr;
}

namespace {

std::string
pct(double share)
{
    return AsciiTable::num(100.0 * share, 1);
}

} // namespace

std::string
ProfileReport::verdict() const
{
    if (tags.empty() || total.cycles <= 0.0) {
        return "empty run: nothing to attribute";
    }
    const TagProfile &top = tags.front();
    double share = top.b.cycles / total.cycles;
    std::ostringstream os;
    os << isa::to_string(top.tag) << " dominates ("
       << AsciiTable::num(100.0 * share, 0) << "% of "
       << (workload.empty() ? std::string("the run") : workload)
       << ") and is " << AsciiTable::num(100.0 * top.b.mem_exposed_share(), 0)
       << "% memory-exposed / "
       << AsciiTable::num(100.0 * top.b.compute_exposed_share(), 0)
       << "% compute-exposed: ";
    switch (top.bound()) {
      case Bound::Memory:
        if (top.b.spill_share() > 0.10) {
            os << "scratchpad respill is "
               << AsciiTable::num(100.0 * top.b.spill_share(), 0)
               << "% of its HBM time — grow scratchpadMB (or cut "
                  "scratchpadTiles) before adding bandwidth";
        } else if (top.b.retry_share() > 0.10) {
            os << "ECC replays are "
               << AsciiTable::num(100.0 * top.b.retry_share(), 0)
               << "% of its HBM time — the fault model, not the "
                  "dataflow, is the bottleneck";
        } else {
            os << "raise overlap or HBM bandwidth; lanes are idle "
                  "waiting on transfers";
        }
        break;
      case Bound::Compute:
        if (top.b.nttCycles >= top.b.laneElems /
                                   static_cast<double>(cfg.lanes) &&
            top.b.nttCycles >= top.b.autoCycles) {
            os << "NTT cores are the critical resource — more NTT "
                  "throughput (cores or radix) pays off first";
        } else if (top.b.autoCycles > top.b.nttCycles) {
            os << "the automorphism core is the critical resource — "
                  "HFAuto width pays off first";
        } else {
            os << "the vector lanes are the critical resource — more "
                  "lanes pay off first";
        }
        break;
      case Bound::Balanced:
        os << "compute and memory are balanced — only raising overlap "
              "or both roofs together helps";
        break;
    }
    return os.str();
}

std::string
ProfileReport::to_text() const
{
    std::ostringstream os;
    std::string title = "Cycle attribution";
    if (!workload.empty()) title += " — " + workload;
    AsciiTable t(title);
    t.header({"Tag", "cycles", "share%", "cmp-exp%", "mem-exp%",
              "ovlp%", "lane-occ%", "ntt-occ%", "auto-occ%", "bw-util%",
              "spill%", "bound"});
    auto add_row = [&](const std::string &name,
                       const ExposureBuckets &b, const char *bound) {
        double share = total.cycles > 0.0 ? b.cycles / total.cycles
                                          : 0.0;
        t.row({name, AsciiTable::num(b.cycles, 0), pct(share),
               pct(b.compute_exposed_share()),
               pct(b.mem_exposed_share()), pct(b.overlapped_share()),
               pct(b.lane_occupancy(cfg)), pct(b.ntt_occupancy()),
               pct(b.auto_occupancy()),
               pct(b.bandwidth_utilization(cfg)), pct(b.spill_share()),
               bound});
    };
    for (const TagProfile &tp : tags) {
        add_row(isa::to_string(tp.tag), tp.b, to_string(tp.bound()));
    }
    add_row("TOTAL", total, "-");
    os << t.str();

    AsciiTable rf("Roofline (ridge at " +
                  AsciiTable::num(roofline.ridgeElemsPerByte, 3) +
                  " elems/byte)");
    rf.header({"Tag", "AI (elems/B)", "achieved Gelems/s",
               "attainable Gelems/s", "roof%", "side"});
    for (const TagProfile &tp : tags) {
        double ai = tp.b.arithmetic_intensity();
        double ach = tp.b.achieved_elems_per_sec();
        double att = roofline.attainable_elems_per_sec(ai);
        rf.row({isa::to_string(tp.tag),
                std::isfinite(ai) ? AsciiTable::num(ai, 3) : "inf",
                AsciiTable::num(ach / 1e9, 3),
                AsciiTable::num(att / 1e9, 3),
                pct(att > 0.0 ? ach / att : 0.0),
                ai < roofline.ridgeElemsPerByte ? "memory" : "compute"});
    }
    os << rf.str();

    os << "scratchpad: high-water "
       << AsciiTable::num(scratchpadHighWaterBytes / (1024.0 * 1024.0),
                          2)
       << " MB of "
       << AsciiTable::num(scratchpadCapacityBytes / (1024.0 * 1024.0),
                          2)
       << " MB; spill " << pct(total.spill_share())
       << "% of memory cycles\n";
    if (faults.wordsTransferred > 0 && faults.retryCycles > 0.0) {
        os << "ECC: " << faults.detected << " replayed words, "
           << AsciiTable::num(faults.retryCycles, 0)
           << " retry cycles (" << pct(total.retry_share())
           << "% of memory cycles)\n";
    }
    os << "verdict: " << verdict() << "\n";
    return os.str();
}

namespace {

Json
buckets_json(const ExposureBuckets &b, const HwConfig &cfg)
{
    Json j = Json::object();
    j.set("cycles", Json(b.cycles));
    j.set("seconds", Json(b.seconds));
    j.set("compute_exposed", Json(b.computeExposed));
    j.set("mem_exposed", Json(b.memExposed));
    j.set("overlapped", Json(b.overlapped));
    j.set("compute_cycles", Json(b.computeCycles));
    j.set("mem_cycles", Json(b.memCycles));
    j.set("spill_cycles", Json(b.spillCycles));
    j.set("retry_cycles", Json(b.retryCycles));
    j.set("bytes", Json(b.bytes));
    j.set("compute_elems", Json(b.computeElems));
    j.set("segments", Json(b.segments));
    j.set("lane_occupancy", Json(b.lane_occupancy(cfg)));
    j.set("ntt_occupancy", Json(b.ntt_occupancy()));
    j.set("auto_occupancy", Json(b.auto_occupancy()));
    j.set("bandwidth_utilization", Json(b.bandwidth_utilization(cfg)));
    j.set("spill_share", Json(b.spill_share()));
    j.set("retry_share", Json(b.retry_share()));
    double ai = b.arithmetic_intensity();
    j.set("arithmetic_intensity",
          std::isfinite(ai) ? Json(ai) : Json("inf"));
    j.set("achieved_elems_per_sec", Json(b.achieved_elems_per_sec()));
    return j;
}

} // namespace

Json
ProfileReport::to_json() const
{
    Json root = Json::object();
    root.set("schema_version", Json(1));
    root.set("kind", Json("poseidon_profile"));
    root.set("workload", Json(workload));

    Json hw = Json::object();
    hw.set("lanes", Json(static_cast<u64>(cfg.lanes)));
    hw.set("clock_ghz", Json(cfg.clockGHz));
    hw.set("ntt_radix_log2", Json(cfg.nttRadixLog2));
    hw.set("hbm_peak_gbps", Json(cfg.hbmPeakGBps));
    hw.set("hbm_efficiency", Json(cfg.hbmEfficiency));
    hw.set("scratchpad_mb", Json(cfg.scratchpadMB));
    hw.set("overlap", Json(cfg.overlap));
    root.set("hw", hw);

    root.set("total", buckets_json(total, cfg));

    Json tagsJson = Json::array();
    for (const TagProfile &tp : tags) {
        Json t = buckets_json(tp.b, cfg);
        t.set("tag", Json(isa::to_string(tp.tag)));
        t.set("share", Json(total.cycles > 0.0
                                ? tp.b.cycles / total.cycles
                                : 0.0));
        t.set("bound", Json(to_string(tp.bound())));
        tagsJson.push_back(std::move(t));
    }
    root.set("tags", tagsJson);

    Json kinds = Json::object();
    for (int k = 0; k < 8; ++k) {
        kinds.set(isa::to_string(static_cast<OpKind>(k)),
                  Json(kindCycles[static_cast<std::size_t>(k)]));
    }
    root.set("kind_cycles", kinds);

    Json roof = Json::object();
    roof.set("peak_elems_per_sec", Json(roofline.peakElemsPerSec));
    roof.set("peak_bytes_per_sec", Json(roofline.peakBytesPerSec));
    roof.set("ridge_elems_per_byte", Json(roofline.ridgeElemsPerByte));
    root.set("roofline", roof);

    Json sp = Json::object();
    sp.set("high_water_bytes", Json(scratchpadHighWaterBytes));
    sp.set("capacity_bytes", Json(scratchpadCapacityBytes));
    root.set("scratchpad", sp);

    Json fj = Json::object();
    fj.set("words_transferred",
           Json(static_cast<double>(faults.wordsTransferred)));
    fj.set("detected", Json(static_cast<double>(faults.detected)));
    fj.set("retry_cycles", Json(faults.retryCycles));
    root.set("faults", fj);

    root.set("verdict", Json(verdict()));
    return root;
}

void
ProfileReport::export_metrics(telemetry::MetricsRegistry &reg) const
{
    reg.gauge("sim.util.lane_occupancy").set(total.lane_occupancy(cfg));
    reg.gauge("sim.util.ntt_occupancy").set(total.ntt_occupancy());
    reg.gauge("sim.util.auto_occupancy").set(total.auto_occupancy());
    reg.gauge("sim.util.bandwidth_utilization")
        .set(total.bandwidth_utilization(cfg));
    reg.gauge("sim.util.compute_exposed_share")
        .set(total.compute_exposed_share());
    reg.gauge("sim.util.mem_exposed_share")
        .set(total.mem_exposed_share());
    reg.gauge("sim.util.overlapped_share")
        .set(total.overlapped_share());
    reg.gauge("sim.util.spill_share").set(total.spill_share());
    reg.gauge("sim.util.retry_share").set(total.retry_share());
    reg.gauge("sim.util.scratchpad_high_water_bytes")
        .set(scratchpadHighWaterBytes);
    for (int k = 0; k < 8; ++k) {
        reg.gauge(std::string("sim.util.kind_cycles.") +
                  isa::to_string(static_cast<OpKind>(k)))
            .set(kindCycles[static_cast<std::size_t>(k)]);
    }
    for (const TagProfile &tp : tags) {
        std::string base =
            std::string("sim.util.tag.") + isa::to_string(tp.tag);
        reg.gauge(base + ".mem_exposed_share")
            .set(tp.b.mem_exposed_share());
        reg.gauge(base + ".bandwidth_utilization")
            .set(tp.b.bandwidth_utilization(cfg));
        double ai = tp.b.arithmetic_intensity();
        reg.gauge(std::string("sim.roofline.tag.") +
                  isa::to_string(tp.tag) + ".intensity")
            .set(std::isfinite(ai) ? ai : -1.0);
        reg.gauge(std::string("sim.roofline.tag.") +
                  isa::to_string(tp.tag) + ".achieved_elems_per_sec")
            .set(tp.b.achieved_elems_per_sec());
    }
    reg.gauge("sim.roofline.ridge_elems_per_byte")
        .set(roofline.ridgeElemsPerByte);
    reg.gauge("sim.roofline.peak_elems_per_sec")
        .set(roofline.peakElemsPerSec);
    reg.gauge("sim.roofline.peak_bytes_per_sec")
        .set(roofline.peakBytesPerSec);
}

} // namespace poseidon::hw
