#include "hw/pipeline.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace poseidon::hw {

using isa::Instr;
using isa::OpKind;
using isa::Trace;

const char*
to_string(Unit u)
{
    switch (u) {
      case Unit::MA: return "MA";
      case Unit::MM: return "MM";
      case Unit::NTT: return "NTT";
      case Unit::AUTO: return "Auto";
      case Unit::HBM_RD: return "HBM rd";
      case Unit::HBM_WR: return "HBM wr";
      case Unit::kCount: break;
    }
    return "?";
}

PipelineSim::PipelineSim(HwConfig cfg, std::size_t window)
    : cfg_(cfg), window_(window)
{
    POSEIDON_REQUIRE(window_ >= 1, "PipelineSim: window must be >= 1");
}

Unit
PipelineSim::unit_of(OpKind k)
{
    switch (k) {
      case OpKind::MA: return Unit::MA;
      case OpKind::MM: return Unit::MM;
      case OpKind::NTT:
      case OpKind::INTT: return Unit::NTT;
      case OpKind::AUTO: return Unit::AUTO;
      case OpKind::SBT: return Unit::MM; // shared with the MM pipeline
      case OpKind::HBM_RD: return Unit::HBM_RD;
      case OpKind::HBM_WR: return Unit::HBM_WR;
    }
    return Unit::MA;
}

PipelineResult
PipelineSim::run(const Trace &trace) const
{
    // Reuse the analytic per-instruction latencies; the scheduling is
    // what differs. HBM read/write share the channel bandwidth, so
    // each direction gets the full rate but both serialize on the
    // same unit pair below via duration accounting.
    PoseidonSim lat(cfg_);

    PipelineResult r;
    const auto &ins = trace.instrs();
    if (ins.empty()) return r;

    std::array<double, static_cast<int>(Unit::kCount)> unitFree = {};
    std::vector<double> done(ins.size(), 0.0);

    for (std::size_t i = 0; i < ins.size(); ++i) {
        const Instr &in = ins[i];
        Unit u = unit_of(in.kind);
        double dur = in.kind == OpKind::HBM_RD ||
                             in.kind == OpKind::HBM_WR
                         ? lat.memory_cycles(in)
                         : lat.compute_cycles(in);

        double ready = 0.0;
        // Bounded issue window: data for instruction i is buffered at
        // most `window_` instructions deep.
        if (i >= window_) ready = done[i - window_];
        // In-order issue on each unit.
        double start = std::max(ready,
                                unitFree[static_cast<int>(u)]);
        double end = start + dur;
        unitFree[static_cast<int>(u)] = end;
        done[i] = end;
        r.busy[static_cast<int>(u)] += dur;

        double endSec = end / (cfg_.clockGHz * 1e9);
        double startSec = start / (cfg_.clockGHz * 1e9);
        r.tagSeconds[in.tag] += endSec - startSec;
    }

    r.cycles = *std::max_element(done.begin(), done.end());
    r.seconds = r.cycles / (cfg_.clockGHz * 1e9);
    return r;
}

} // namespace poseidon::hw
