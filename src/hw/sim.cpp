#include "hw/sim.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "hw/sim_telemetry.h"
#include "ntt/fusion.h"
#include "telemetry/metrics.h"

namespace poseidon::hw {

using isa::BasicOp;
using isa::Instr;
using isa::OpKind;
using isa::Trace;

namespace {

/// Pipeline fill latencies (cycles) per core type.
constexpr double kFillMA = 8;
constexpr double kFillMM = 24;
constexpr double kFillNTT = 64;
constexpr double kFillAuto = 16;

} // namespace

PoseidonSim::PoseidonSim(HwConfig cfg)
    : cfg_(cfg)
{
    POSEIDON_REQUIRE(cfg_.lanes >= 1, "PoseidonSim: lanes must be >= 1");
    POSEIDON_REQUIRE(cfg_.nttRadixLog2 >= 1 && cfg_.nttRadixLog2 <= 6,
                     "PoseidonSim: k out of range [1,6]");
    POSEIDON_REQUIRE(cfg_.overlap >= 0.0 && cfg_.overlap <= 1.0,
                     "PoseidonSim: overlap out of [0,1]");
}

double
PoseidonSim::ntt_poly_cycles(u64 degree) const
{
    unsigned k = cfg_.nttRadixLog2;
    double phases = static_cast<double>(FusionCostModel::phases(degree, k));
    // Beyond k=3 the fused block needs (2^k - 1) multipliers per output
    // lane; the design's shared DSP pool is sized for 7 (k=3), so wider
    // radices serialize proportionally.
    double multsPerLane = static_cast<double>((u64(1) << k) - 1);
    double serialization = std::max(1.0, multsPerLane / 7.0);
    double perPass = static_cast<double>(degree) /
                     static_cast<double>(cfg_.lanes);
    return phases * perPass * serialization + kFillNTT;
}

double
PoseidonSim::auto_poly_cycles(u64 degree) const
{
    if (cfg_.hfauto) {
        double c = static_cast<double>(cfg_.hfautoSubvec);
        return 4.0 * static_cast<double>(degree) / c + kFillAuto;
    }
    // Naive automorphism: one index mapping per cycle.
    return static_cast<double>(degree);
}

double
PoseidonSim::compute_cycles(const Instr &in) const
{
    double lanes = static_cast<double>(cfg_.lanes);
    double elems = static_cast<double>(in.elems);
    switch (in.kind) {
      case OpKind::MA:
        return elems / lanes + kFillMA;
      case OpKind::MM:
        return elems / lanes + kFillMM;
      case OpKind::NTT:
      case OpKind::INTT: {
        POSEIDON_REQUIRE(in.degree >= 2, "NTT instr needs a degree");
        double polys = elems / static_cast<double>(in.degree);
        return polys * ntt_poly_cycles(in.degree);
      }
      case OpKind::AUTO: {
        POSEIDON_REQUIRE(in.degree >= 2, "AUTO instr needs a degree");
        double polys = elems / static_cast<double>(in.degree);
        return polys * auto_poly_cycles(in.degree);
      }
      case OpKind::SBT:
        // Shared Barrett reduction is fused into the producing MM/NTT
        // pipeline stages; no marginal cycles.
        return 0.0;
      case OpKind::HBM_RD:
      case OpKind::HBM_WR:
        return 0.0;
    }
    return 0.0;
}

double
PoseidonSim::memory_cycles(const Instr &in) const
{
    if (in.kind != OpKind::HBM_RD && in.kind != OpKind::HBM_WR) {
        return 0.0;
    }
    double bytes = static_cast<double>(in.elems) * cfg_.wordBytes;
    return bytes / (cfg_.bytes_per_cycle() * cfg_.hbmEfficiency);
}

SimResult
PoseidonSim::run(const Trace &trace, SimTimeline *timeline) const
{
    SimResult r;
    trace.validate();
    if (timeline) timeline->segments.clear();
    const auto &ins = trace.instrs();

    // Fault injection is strictly off at BER = 0: no injector call is
    // made, so the cycle arithmetic below is bit-identical to the
    // reliable-memory model. (Construction still validates the config.)
    const bool injectFaults = cfg_.faults.ber > 0.0;
    FaultInjector injector(cfg_.faults);

    std::size_t i = 0;
    while (i < ins.size()) {
        BasicOp tag = ins[i].tag;
        double segCompute = 0.0, segMem = 0.0, segBytes = 0.0;
        double segRetry = 0.0;
        u64 segDegree = 0;
        SegmentTiming seg;
        std::vector<double> instrRetry; // parallels seg.instrs
        while (i < ins.size() && ins[i].tag == tag) {
            const Instr &in = ins[i];
            double c = compute_cycles(in);
            double m = memory_cycles(in);
            double retry = 0.0;
            segCompute += c;
            segMem += m;
            segDegree = std::max(segDegree, in.degree);
            r.kindCycles[static_cast<int>(in.kind)] += c;
            u64 bytes = 0;
            if (in.kind == OpKind::HBM_RD) {
                bytes = in.elems * cfg_.wordBytes;
                r.bytesRead += bytes;
                segBytes += static_cast<double>(bytes);
            } else if (in.kind == OpKind::HBM_WR) {
                bytes = in.elems * cfg_.wordBytes;
                r.bytesWritten += bytes;
                segBytes += static_cast<double>(bytes);
            }
            if (injectFaults && (in.kind == OpKind::HBM_RD ||
                                 in.kind == OpKind::HBM_WR)) {
                FaultStats fs = injector.transfer(in.elems);
                retry = fs.retryCycles;
                segRetry += retry;
                r.faults += fs;
            }
            if (timeline) {
                // memCycles holds the raw value for now; spill scaling
                // and retries land below once the segment's spill
                // factor is known.
                seg.instrs.push_back(
                    InstrTiming{in.kind, c, m, bytes, in.elems});
                instrRetry.push_back(retry);
            }
            ++i;
        }
        // Double-buffered pipeline: the longer of compute and memory
        // sets the pace; a (1 - overlap) fraction of the shorter one
        // fails to hide (dependency stalls, phase boundaries).
        // Scratchpad pressure: if the resident limb-tiles don't fit,
        // they respill through HBM, inflating memory time.
        double requiredBytes = cfg_.scratchpadTiles *
                               static_cast<double>(segDegree) *
                               cfg_.wordBytes;
        double capacity = cfg_.scratchpadMB * 1024.0 * 1024.0;
        double spill = std::max(1.0, requiredBytes / capacity);
        // ECC replay traffic is re-streamed as-is; it does not grow
        // with scratchpad pressure.
        double segRawMem = segMem;
        segMem = segMem * spill + segRetry;

        double ov = cfg_.overlap;
        double segCycles = std::max(segCompute, segMem) +
                           (1.0 - ov) * std::min(segCompute, segMem);
        if (timeline) {
            for (std::size_t j = 0; j < seg.instrs.size(); ++j) {
                seg.instrs[j].memCycles =
                    seg.instrs[j].memCycles * spill + instrRetry[j];
            }
            seg.tag = tag;
            seg.startCycle = r.cycles;
            seg.cycles = segCycles;
            seg.computeCycles = segCompute;
            seg.memCycles = segMem;
            seg.rawMemCycles = segRawMem;
            seg.retryCycles = segRetry;
            seg.spillFactor = spill;
            seg.maxDegree = segDegree;
            timeline->segments.push_back(std::move(seg));
        }
        r.cycles += segCycles;
        r.computeCycles += segCompute;
        r.memCycles += segMem;
        double segSeconds = segCycles / (cfg_.clockGHz * 1e9);
        r.tagSeconds[tag] += segSeconds;
        r.tagBytes[tag] += segBytes;
    }
    r.seconds = r.cycles / (cfg_.clockGHz * 1e9);

    if (telemetry::enabled()) {
        record_sim_metrics(telemetry::MetricsRegistry::global(), r, cfg_);
    }
    return r;
}

double
SimResult::bandwidth_utilization(const HwConfig &cfg) const
{
    if (seconds <= 0.0) return 0.0;
    double bytes = static_cast<double>(bytesRead + bytesWritten);
    return bytes / (seconds * cfg.hbmPeakGBps * 1e9);
}

double
SimResult::tag_bandwidth_utilization(const HwConfig &cfg,
                                     isa::BasicOp tag) const
{
    auto ts = tagSeconds.find(tag);
    auto tb = tagBytes.find(tag);
    if (ts == tagSeconds.end() || tb == tagBytes.end() ||
        ts->second <= 0.0) {
        return 0.0;
    }
    return tb->second / (ts->second * cfg.hbmPeakGBps * 1e9);
}

} // namespace poseidon::hw
