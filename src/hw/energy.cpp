#include "hw/energy.h"

#include "ntt/fusion.h"

namespace poseidon::hw {

using isa::OpKind;

EnergyModel::EnergyModel(const HwConfig &cfg, EnergyParams p)
    : cfg_(cfg), params_(p)
{}

EnergyBreakdown
EnergyModel::eval(const isa::Trace &trace, const SimResult &timing) const
{
    EnergyBreakdown e;
    for (const auto &in : trace.instrs()) {
        double elems = static_cast<double>(in.elems);
        switch (in.kind) {
          case OpKind::MA:
            e.ma += elems * params_.pjMA * 1e-12;
            break;
          case OpKind::MM:
            e.mm += elems * params_.pjMM * 1e-12;
            break;
          case OpKind::NTT:
          case OpKind::INTT: {
            double passes = static_cast<double>(FusionCostModel::phases(
                in.degree, cfg_.nttRadixLog2));
            e.ntt += elems * passes * params_.pjNTTPerPass * 1e-12;
            break;
          }
          case OpKind::AUTO:
            e.autom += elems * params_.pjAuto * 1e-12;
            break;
          case OpKind::SBT:
            e.sbt += elems * params_.pjSBT * 1e-12;
            break;
          case OpKind::HBM_RD:
          case OpKind::HBM_WR:
            e.memory += elems * cfg_.wordBytes * params_.pjHBMByte *
                        1e-12;
            break;
        }
    }
    e.staticE = params_.staticWatts * timing.seconds;
    return e;
}

} // namespace poseidon::hw
