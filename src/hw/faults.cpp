#include "hw/faults.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace poseidon::hw {

u64
mix_seed(u64 seed, u64 salt)
{
    // splitmix64 finalizer over the golden-ratio-spaced combination.
    u64 z = seed + salt * 0x9E3779B97F4A7C15ULL + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

FaultStats&
FaultStats::operator+=(const FaultStats &o)
{
    wordsTransferred += o.wordsTransferred;
    bitFlips += o.bitFlips;
    corrected += o.corrected;
    detected += o.detected;
    silent += o.silent;
    retryCycles += o.retryCycles;
    return *this;
}

FaultInjector::FaultInjector(FaultConfig cfg)
    : cfg_(cfg), prng_(cfg.seed)
{
    POSEIDON_REQUIRE(cfg_.ber >= 0.0 && cfg_.ber <= 1.0,
                     "FaultInjector: BER " << cfg_.ber
                     << " outside [0, 1]");
    POSEIDON_REQUIRE(cfg_.wordBits >= 1 && cfg_.wordBits <= 64,
                     "FaultInjector: word width " << cfg_.wordBits
                     << " outside [1, 64] bits");
    POSEIDON_REQUIRE(cfg_.retryCycles >= 0.0,
                     "FaultInjector: negative retry cycles");
}

FaultOutcome
FaultInjector::classify(u64 flips, bool secded)
{
    if (flips == 0) return FaultOutcome::None;
    if (!secded) return FaultOutcome::Silent;
    if (flips == 1) return FaultOutcome::Corrected;
    if (flips == 2) return FaultOutcome::DetectedUncorrected;
    return FaultOutcome::Silent;
}

u64
FaultInjector::poisson(double lambda)
{
    if (lambda <= 0.0) return 0;
    if (lambda < 64.0) {
        // Knuth: multiply uniforms until the product drops under
        // exp(-lambda).
        double limit = std::exp(-lambda);
        double prod = 1.0;
        u64 k = 0;
        do {
            prod *= prng_.uniform_double();
            ++k;
        } while (prod > limit);
        return k - 1;
    }
    // Normal approximation, adequate at this intensity.
    double x = lambda + std::sqrt(lambda) * prng_.gaussian();
    return x <= 0.0 ? 0 : static_cast<u64>(std::llround(x));
}

FaultStats
FaultInjector::transfer(u64 words)
{
    FaultStats s;
    s.wordsTransferred = words;
    if (cfg_.ber <= 0.0 || words == 0) return s;

    double bits = static_cast<double>(words) *
                  static_cast<double>(cfg_.wordBits);
    u64 flips = poisson(bits * cfg_.ber);
    // Physical ceiling: no more flips than bits in flight.
    flips = std::min(flips, words * cfg_.wordBits);
    s.bitFlips = flips;
    if (flips == 0) return s;

    // Scatter flips over the transfer's words; collisions model
    // multi-bit words.
    std::map<u64, u64> perWord;
    for (u64 f = 0; f < flips; ++f) ++perWord[prng_.uniform(words)];

    for (const auto &[word, count] : perWord) {
        (void)word;
        switch (classify(count, cfg_.secded)) {
          case FaultOutcome::None:
            break;
          case FaultOutcome::Corrected:
            ++s.corrected;
            break;
          case FaultOutcome::DetectedUncorrected:
            ++s.detected;
            s.retryCycles += cfg_.retryCycles;
            break;
          case FaultOutcome::Silent:
            ++s.silent;
            break;
        }
    }
    return s;
}

u64
FaultInjector::corrupt(void *data, std::size_t bytes)
{
    if (cfg_.ber <= 0.0 || bytes == 0 || data == nullptr) return 0;
    auto *p = static_cast<unsigned char*>(data);
    u64 totalBits = static_cast<u64>(bytes) * 8;
    u64 flips = std::min(poisson(static_cast<double>(totalBits) *
                                 cfg_.ber),
                         totalBits);
    for (u64 f = 0; f < flips; ++f) {
        u64 bit = prng_.uniform(totalBits);
        p[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    }
    return flips;
}

} // namespace poseidon::hw
