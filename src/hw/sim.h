#ifndef POSEIDON_HW_SIM_H_
#define POSEIDON_HW_SIM_H_

/**
 * @file
 * Cycle-level performance model of the Poseidon accelerator.
 *
 * The simulator prices an operator trace (isa::Trace) in cycles:
 *  - element-wise cores (MA/MM) stream `lanes` elements per cycle;
 *  - NTT cores run ceil(log2(N)/k) fused passes over each polynomial,
 *    with a serialization penalty beyond k=3 where the per-output
 *    multiplier count (2^k - 1) exceeds the DSP budget the paper's
 *    design is sized for;
 *  - the automorphism core is either HFAuto (4 sub-vector stages,
 *    C elements per cycle) or the naive 1-element-per-cycle engine;
 *  - SBT is fused into the MM/NTT pipelines (no marginal cycles);
 *  - HBM transfers run at peak * efficiency bytes per cycle.
 *
 * Per maximal same-tag segment (one basic operation), compute and
 * memory overlap partially: T = ov*max(C,M) + (1-ov)*(C+M).
 */

#include <array>
#include <map>
#include <vector>

#include "hw/config.h"
#include "isa/trace.h"

namespace poseidon::hw {

/// Timing/traffic outcome of running one trace.
struct SimResult
{
    double cycles = 0.0;
    double seconds = 0.0;
    double computeCycles = 0.0; ///< sum over compute instructions
    double memCycles = 0.0;     ///< sum over HBM instructions
    u64 bytesRead = 0;
    u64 bytesWritten = 0;

    /// Compute cycles per operator kind (Fig. 9 style breakdown).
    std::array<double, 8> kindCycles = {};

    /// HBM fault statistics (all-zero when cfg.faults.ber == 0). The
    /// detected-uncorrected replays are already charged into
    /// memCycles/cycles as ECC retry cycles.
    FaultStats faults;

    /// Wall time charged to each basic-operation tag (Fig. 8 style).
    std::map<isa::BasicOp, double> tagSeconds;

    /// HBM bytes attributed to each tag.
    std::map<isa::BasicOp, double> tagBytes;

    double kind_cycles(isa::OpKind k) const
    {
        return kindCycles[static_cast<int>(k)];
    }

    /// Achieved HBM bandwidth / peak (Table VII metric).
    double bandwidth_utilization(const HwConfig &cfg) const;

    /// Per-tag bandwidth utilization.
    double tag_bandwidth_utilization(const HwConfig &cfg,
                                     isa::BasicOp tag) const;
};

/// Modeled timing of one instruction inside a segment.
struct InstrTiming
{
    isa::OpKind kind;
    double computeCycles = 0.0;
    /// Memory cycles after scratchpad-spill scaling and ECC retries —
    /// what the instruction actually contributes to segment time.
    double memCycles = 0.0;
    u64 bytes = 0;
    /// Scalar elements the instruction processes (isa::Instr::elems) —
    /// the "useful work" numerator for occupancy and roofline math.
    u64 elems = 0;
};

/// Modeled timing of one maximal same-tag segment (one basic op).
struct SegmentTiming
{
    isa::BasicOp tag;
    double startCycle = 0.0; ///< on the modeled accelerator clock
    double cycles = 0.0;     ///< overlapped segment duration
    double computeCycles = 0.0;
    double memCycles = 0.0;
    /// Memory cycles before scratchpad-spill scaling and ECC retries.
    double rawMemCycles = 0.0;
    /// ECC replay cycles charged into memCycles.
    double retryCycles = 0.0;
    /// Scratchpad pressure: memory-time multiplier (1.0 = resident)
    /// and the resident-tile footprint that produced it.
    double spillFactor = 1.0;
    u64 maxDegree = 0;
    std::vector<InstrTiming> instrs;
};

/// Optional per-segment/per-instruction timeline of a run — the raw
/// material for the simulated-cycle Perfetto track (hw/sim_telemetry).
struct SimTimeline
{
    std::vector<SegmentTiming> segments;
};

/// The accelerator model.
class PoseidonSim
{
  public:
    explicit PoseidonSim(HwConfig cfg = HwConfig::poseidon_u280());

    const HwConfig& config() const { return cfg_; }

    /// Run a trace through the timing model. When `timeline` is
    /// non-null it is filled with the per-segment schedule (cleared
    /// first); pricing is identical either way.
    SimResult run(const isa::Trace &trace,
                  SimTimeline *timeline = nullptr) const;

    /// Compute cycles of a single instruction (exposed for tests).
    double compute_cycles(const isa::Instr &in) const;

    /// Memory cycles of a single HBM instruction.
    double memory_cycles(const isa::Instr &in) const;

    /// Cycles for one N-point NTT pass structure under radix 2^k.
    double ntt_poly_cycles(u64 degree) const;

    /// Cycles for one N-point automorphism under the configured core.
    double auto_poly_cycles(u64 degree) const;

  private:
    HwConfig cfg_;
};

} // namespace poseidon::hw

#endif // POSEIDON_HW_SIM_H_
