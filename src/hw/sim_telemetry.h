#ifndef POSEIDON_HW_SIM_TELEMETRY_H_
#define POSEIDON_HW_SIM_TELEMETRY_H_

/**
 * @file
 * Bridges the accelerator model into the telemetry subsystem.
 *
 * record_sim_metrics() turns one SimResult into registry counters —
 * the per-kind cycle counters reproduce SimResult.kindCycles exactly
 * (one add per kind, same doubles), so a metrics dump after a single
 * run equals the paper-style breakdown to the last cycle. PoseidonSim
 * calls it on every run when telemetry is enabled.
 *
 * append_sim_track() synthesizes a Perfetto track (process kSimPid)
 * from the per-segment timeline of a run: one "basic ops" row of
 * tag-level segments, plus "compute" and "HBM" rows sequencing the
 * per-instruction cycles inside each segment. Timestamps are modeled
 * cycles converted to microseconds at the configured clock, so the
 * track reads in accelerator time next to host wall-time spans.
 * Every event carries its exact cycle count in args.cycles.
 */

#include "hw/sim.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace poseidon::hw {

/// Accumulate one run's aggregates into `reg` (counters
/// "sim.kind_cycles.<KIND>", "sim.cycles", "sim.hbm.*",
/// "sim.faults.*"; gauge "sim.bandwidth_utilization").
void record_sim_metrics(telemetry::MetricsRegistry &reg,
                        const SimResult &r, const HwConfig &cfg);

/// Append the simulated-cycle timeline to `tracer` under
/// Tracer::kSimPid. `offsetUs` shifts the track on the global
/// timeline (e.g. to align with the host span that launched the run).
void append_sim_track(telemetry::Tracer &tracer, const SimTimeline &tl,
                      const HwConfig &cfg, double offsetUs = 0.0);

} // namespace poseidon::hw

#endif // POSEIDON_HW_SIM_TELEMETRY_H_
