#ifndef POSEIDON_HW_ENERGY_H_
#define POSEIDON_HW_ENERGY_H_

/**
 * @file
 * First-order energy model (Fig. 12, Table X).
 *
 * Per-element dynamic energies per operator core plus per-byte HBM
 * access energy plus static power integrated over the run. Absolute
 * joules are model outputs, not measurements; the paper-relevant
 * properties — memory access dominating, MM and NTT dominating the
 * compute share, MA negligible — follow from the constants' ratios,
 * which are standard for 32-bit FPGA datapaths and HBM2.
 */

#include <map>

#include "hw/sim.h"

namespace poseidon::hw {

/// Energy constants (picojoules per element / byte, watts static).
struct EnergyParams
{
    double pjMA = 1.0;       ///< add + compare per element
    double pjMM = 9.0;       ///< 32x32 multiply + Barrett per element
    double pjNTTPerPass = 6.5; ///< per element per fused pass
    double pjAuto = 0.6;     ///< permutation datapath per element
    double pjSBT = 2.0;      ///< standalone reduction per element
    double pjHBMByte = 40.0; ///< HBM2 access incl. PHY
    double staticWatts = 22.0; ///< FPGA static + clocking
};

/// Energy outcome of one trace execution.
struct EnergyBreakdown
{
    double ma = 0, mm = 0, ntt = 0, autom = 0, sbt = 0;
    double memory = 0;
    double staticE = 0;

    double total() const
    {
        return ma + mm + ntt + autom + sbt + memory + staticE;
    }

    /// Energy-delay product in joule-seconds.
    double edp(double seconds) const { return total() * seconds; }
};

/// Prices traces under the configured constants.
class EnergyModel
{
  public:
    explicit EnergyModel(const HwConfig &cfg, EnergyParams p = {});

    const EnergyParams& params() const { return params_; }

    /// Energy of a trace given its timing result.
    EnergyBreakdown eval(const isa::Trace &trace,
                         const SimResult &timing) const;

  private:
    HwConfig cfg_;
    EnergyParams params_;
};

} // namespace poseidon::hw

#endif // POSEIDON_HW_ENERGY_H_
