#ifndef POSEIDON_HW_CONFIG_H_
#define POSEIDON_HW_CONFIG_H_

/**
 * @file
 * Configuration of the modeled Poseidon accelerator.
 *
 * Defaults follow the paper's Xilinx Alveo U280 implementation:
 * 512 vector lanes at 300 MHz, 64 radix-8 NTT cores (k = 3), a 8.6 MB
 * scratchpad, and two HBM2 stacks (32 channels, 460 GB/s peak).
 */

#include <cstddef>

#include "hw/faults.h"

namespace poseidon::hw {

/// Knobs of the modeled accelerator instance.
struct HwConfig
{
    /// Vector datapath width (elements per cycle for MA/MM).
    std::size_t lanes = 512;

    /// Accelerator clock in GHz.
    double clockGHz = 0.30;

    /// NTT-fusion radix exponent k (the paper picks 3).
    unsigned nttRadixLog2 = 3;

    /// HBM channels (2 stacks x 16).
    std::size_t hbmChannels = 32;

    /// Peak HBM bandwidth in GB/s.
    double hbmPeakGBps = 460.0;

    /// Achievable fraction of peak on streaming access.
    double hbmEfficiency = 0.98;

    /// Total HBM capacity in GB (two 4 GB HBM2 stacks on the U280).
    /// Bounds the per-card evaluation-key cache the cluster router's
    /// placement model works against.
    double hbmCapacityGB = 8.0;

    /// Host-to-card interconnect bandwidth in GB/s (PCIe Gen3 x16 on
    /// the U280 deployment). Prices evaluation-key uploads when a
    /// tenant's jobs are placed on a host that does not hold its keys.
    double pcieGBps = 16.0;

    /// On-chip scratchpad capacity in MB.
    double scratchpadMB = 8.6;

    /**
     * Limb-tiles the pipeline keeps resident (operand tiles, twiddle
     * tables, FIFO buffers) — the scratchpad requirement is
     * scratchpadTiles * N * wordBytes. When the scratchpad is smaller,
     * tiles respill to HBM and memory time scales up accordingly.
     */
    double scratchpadTiles = 24.0;

    /// Word width of one RNS residue in bytes (32-bit in the paper).
    unsigned wordBytes = 4;

    /// Use the HFAuto 4-stage automorphism core (vs 1 elem/cycle).
    bool hfauto = true;

    /// HFAuto sub-vector length C.
    std::size_t hfautoSubvec = 512;

    /**
     * Fraction of the shorter of (compute, memory) time that the
     * pipeline hides behind the longer one:
     * T = max(C, M) + (1 - overlap) * min(C, M). 1.0 is a perfect
     * dataflow machine, 0.0 strictly serial.
     */
    double overlap = 0.92;

    /**
     * HBM fault model (see hw/faults.h). The default BER of 0 keeps
     * the reliable-memory behaviour of the paper's prototype,
     * bit-identical to a model without the injector; nonzero BER adds
     * ECC retry cycles to memory time and fault statistics to
     * SimResult.
     */
    FaultConfig faults;

    /// Peak HBM bytes per accelerator cycle.
    double
    bytes_per_cycle() const
    {
        return hbmPeakGBps * 1e9 / (clockGHz * 1e9);
    }

    /// Interconnect (PCIe) bytes per accelerator cycle.
    double
    pcie_bytes_per_cycle() const
    {
        return pcieGBps * 1e9 / (clockGHz * 1e9);
    }

    /// Modeled accelerator cycles to move `bytes` over the host-card
    /// interconnect (the key-transfer cost the cluster router charges
    /// on non-resident placement).
    double
    transfer_cycles(double bytes) const
    {
        return bytes / pcie_bytes_per_cycle();
    }

    /// HBM capacity in bytes.
    double hbm_capacity_bytes() const { return hbmCapacityGB * 1e9; }

    /// The paper's U280 configuration (the defaults).
    static HwConfig poseidon_u280() { return HwConfig{}; }
};

/**
 * Modeled evaluation-key footprint of one tenant, in bytes: `dnum`
 * keyswitch key components, each a pair of polynomials in the extended
 * base (`limbs + K` residues of `n` coefficients, `wordBytes` each).
 * This is the quantity the cluster placement model weighs against
 * hbmCapacityGB and prices over pcieGBps (see docs/CLUSTER.md).
 */
inline double
eval_key_bytes(double n, double limbs, double dnum, double K,
               unsigned wordBytes = 4)
{
    return dnum * 2.0 * n * (limbs + K) * static_cast<double>(wordBytes);
}

} // namespace poseidon::hw

#endif // POSEIDON_HW_CONFIG_H_
