#ifndef POSEIDON_HW_FAULTS_H_
#define POSEIDON_HW_FAULTS_H_

/**
 * @file
 * HBM/scratchpad fault injection with a SECDED ECC model.
 *
 * The paper's prototype assumes a perfectly reliable memory system; a
 * deployed accelerator serving heavy traffic cannot (HBM stacks ship
 * with on-die ECC for a reason). This module models random bit flips
 * on transferred memory words at a configurable bit-error rate and
 * classifies each faulty word through a SECDED (single-error-correct,
 * double-error-detect) code:
 *
 *   1 flipped bit   -> corrected in-line (no visible effect),
 *   2 flipped bits  -> detected but uncorrectable: the transfer is
 *                      replayed, charging `retryCycles` to memory time,
 *   >= 3 flipped bits -> may alias to a valid codeword: counted as a
 *                      silent corruption (what an end-to-end guard at
 *                      the service layer must catch).
 *
 * Sampling is PRNG-seeded and deterministic: the expected number of
 * flips in a transfer is Poisson(bits * BER); flip positions are then
 * scattered uniformly over the words of the transfer, so multi-bit
 * words arise with the right birthday statistics. At BER = 0 the
 * injector is a strict no-op.
 */

#include <cstddef>

#include "common/modmath.h"
#include "common/prng.h"

namespace poseidon::hw {

/**
 * Deterministically derive a new PRNG seed from (seed, salt) — one
 * splitmix64 round over their combination. Used to give every card of
 * a multi-accelerator fleet, and every retry attempt of a job, an
 * independent but reproducible fault campaign: same (seed, salt) in,
 * same derived seed out, and nearby salts decorrelate fully.
 */
u64 mix_seed(u64 seed, u64 salt);

/// SECDED classification of one transferred word.
enum class FaultOutcome {
    None,                 ///< no bit flipped
    Corrected,            ///< single flip, fixed by ECC
    DetectedUncorrected,  ///< double flip, caught -> replay
    Silent,               ///< triple+ flip, may alias undetected
};

/// Knobs of the fault model.
struct FaultConfig
{
    /// Bit flip probability per transferred bit (0 disables).
    double ber = 0.0;

    /// PRNG seed; same seed + same transfer sequence => same faults.
    u64 seed = 0x464C495053ULL; // "FLIPS"

    /// SECDED ECC on memory words. When off, every flipped word is a
    /// silent corruption (no correction, no detection).
    bool secded = true;

    /// Cycles charged per detected-uncorrected word (transfer replay
    /// through the HBM channel plus pipeline refill).
    double retryCycles = 128.0;

    /// Protected word granularity in bits (one RNS residue).
    unsigned wordBits = 32;
};

/// Aggregate fault statistics over one or more transfers.
struct FaultStats
{
    u64 wordsTransferred = 0;
    u64 bitFlips = 0;        ///< raw flips before ECC
    u64 corrected = 0;       ///< words fixed by SECDED
    u64 detected = 0;        ///< words detected-uncorrected (replayed)
    u64 silent = 0;          ///< words corrupted past ECC
    double retryCycles = 0.0;

    u64 faulty_words() const { return corrected + detected + silent; }

    FaultStats& operator+=(const FaultStats &o);
};

/// Deterministic, seeded HBM fault injector.
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig cfg = FaultConfig{});

    const FaultConfig& config() const { return cfg_; }

    /// Model one transfer of `words` memory words; advances the PRNG.
    FaultStats transfer(u64 words);

    /// SECDED outcome for a word with `flips` flipped bits.
    static FaultOutcome classify(u64 flips, bool secded);

    /**
     * Software-level corruption: flip bits of a real buffer at the
     * configured BER (for end-to-end guards and tests). Returns the
     * number of bits flipped.
     */
    u64 corrupt(void *data, std::size_t bytes);

  private:
    /// Poisson(lambda) sample (exact for small lambda, normal
    /// approximation above 64).
    u64 poisson(double lambda);

    FaultConfig cfg_;
    Prng prng_;
};

} // namespace poseidon::hw

#endif // POSEIDON_HW_FAULTS_H_
