#ifndef POSEIDON_HW_PIPELINE_H_
#define POSEIDON_HW_PIPELINE_H_

/**
 * @file
 * Event-driven pipeline simulator — the microarchitectural counterpart
 * to the analytic model in sim.h.
 *
 * Instead of the closed-form overlap coefficient, this model issues
 * the operator instructions in order onto discrete functional units
 * (MA array, MM array, NTT cores, automorphism engine, HBM read/write
 * channels) with a bounded issue window: an instruction may begin once
 * its unit is free and the instruction `window` positions ahead of it
 * has finished (modeling the scratchpad double-buffering depth).
 * Compute/memory overlap, core occupancy and the critical path emerge
 * from the schedule rather than being assumed.
 *
 * Outputs per-unit busy cycles (occupancy) and total makespan; a bench
 * cross-checks it against the analytic model.
 */

#include <array>
#include <map>

#include "hw/sim.h"

namespace poseidon::hw {

/// Functional units of the pipeline model.
enum class Unit : std::uint8_t {
    MA,
    MM,
    NTT,
    AUTO,
    HBM_RD,
    HBM_WR,
    kCount,
};

const char* to_string(Unit u);

/// Outcome of an event-driven run.
struct PipelineResult
{
    double cycles = 0.0;
    double seconds = 0.0;

    /// Busy cycles per unit.
    std::array<double, static_cast<int>(Unit::kCount)> busy = {};

    /// Busy fraction of the makespan per unit.
    double occupancy(Unit u) const
    {
        return cycles > 0 ? busy[static_cast<int>(u)] / cycles : 0.0;
    }

    /// Wall time charged to each basic-operation tag (by completion).
    std::map<isa::BasicOp, double> tagSeconds;
};

/// The event-driven scheduler.
class PipelineSim
{
  public:
    /**
     * @param cfg     same hardware configuration as the analytic model
     * @param window  issue lookahead: instruction i may start only
     *                after instruction i-window completed (data is
     *                buffered at most `window` deep on chip)
     */
    explicit PipelineSim(HwConfig cfg = HwConfig::poseidon_u280(),
                         std::size_t window = 8);

    const HwConfig& config() const { return cfg_; }

    PipelineResult run(const isa::Trace &trace) const;

  private:
    /// Unit an instruction executes on.
    static Unit unit_of(isa::OpKind k);

    HwConfig cfg_;
    std::size_t window_;
};

} // namespace poseidon::hw

#endif // POSEIDON_HW_PIPELINE_H_
