#include "hw/sim_telemetry.h"

#include <string>

namespace poseidon::hw {

using telemetry::Json;
using telemetry::TraceEvent;
using telemetry::Tracer;

void
record_sim_metrics(telemetry::MetricsRegistry &reg, const SimResult &r,
                   const HwConfig &cfg)
{
    reg.counter("sim.runs").increment();
    reg.counter("sim.cycles").add(r.cycles);
    reg.counter("sim.compute_cycles").add(r.computeCycles);
    reg.counter("sim.mem_cycles").add(r.memCycles);
    for (int k = 0; k < 8; ++k) {
        reg.counter(std::string("sim.kind_cycles.") +
                    isa::to_string(static_cast<isa::OpKind>(k)))
            .add(r.kindCycles[static_cast<std::size_t>(k)]);
    }
    reg.counter("sim.hbm.bytes_read")
        .add(static_cast<double>(r.bytesRead));
    reg.counter("sim.hbm.bytes_written")
        .add(static_cast<double>(r.bytesWritten));
    reg.gauge("sim.bandwidth_utilization")
        .set(r.bandwidth_utilization(cfg));

    reg.counter("sim.faults.words_transferred")
        .add(static_cast<double>(r.faults.wordsTransferred));
    reg.counter("sim.faults.bit_flips")
        .add(static_cast<double>(r.faults.bitFlips));
    reg.counter("sim.faults.corrected")
        .add(static_cast<double>(r.faults.corrected));
    reg.counter("sim.faults.detected")
        .add(static_cast<double>(r.faults.detected));
    reg.counter("sim.faults.silent")
        .add(static_cast<double>(r.faults.silent));
    reg.counter("sim.faults.retry_cycles").add(r.faults.retryCycles);
}

namespace {

/// Row layout of the synthesized process.
constexpr int kTidBasicOps = 1;
constexpr int kTidCompute = 2;
constexpr int kTidHbm = 3;

} // namespace

void
append_sim_track(telemetry::Tracer &tracer, const SimTimeline &tl,
                 const HwConfig &cfg, double offsetUs)
{
    if (!tracer.active()) return;
    tracer.set_process_name(Tracer::kSimPid,
                            "Poseidon accelerator (simulated cycles)");
    tracer.set_thread_name(Tracer::kSimPid, kTidBasicOps, "basic ops");
    tracer.set_thread_name(Tracer::kSimPid, kTidCompute, "compute");
    tracer.set_thread_name(Tracer::kSimPid, kTidHbm, "HBM");

    const double cyclesPerUs = cfg.clockGHz * 1e3;
    auto to_us = [&](double cycles) { return cycles / cyclesPerUs; };

    for (const SegmentTiming &seg : tl.segments) {
        TraceEvent e;
        e.name = isa::to_string(seg.tag);
        e.pid = Tracer::kSimPid;
        e.tid = kTidBasicOps;
        e.tsUs = offsetUs + to_us(seg.startCycle);
        e.durUs = to_us(seg.cycles);
        e.args.emplace_back("cycles", Json(seg.cycles));
        e.args.emplace_back("compute_cycles", Json(seg.computeCycles));
        e.args.emplace_back("mem_cycles", Json(seg.memCycles));
        tracer.complete_event(std::move(e));

        // Inside a segment compute and memory overlap; each row lays
        // its own instructions out back-to-back from the segment
        // start, which preserves per-instruction durations (the
        // quantity the model prices) rather than issue order.
        double computeCursor = seg.startCycle;
        double memCursor = seg.startCycle;
        for (const InstrTiming &it : seg.instrs) {
            if (it.computeCycles > 0.0) {
                TraceEvent c;
                c.name = isa::to_string(it.kind);
                c.pid = Tracer::kSimPid;
                c.tid = kTidCompute;
                c.tsUs = offsetUs + to_us(computeCursor);
                c.durUs = to_us(it.computeCycles);
                c.args.emplace_back("cycles", Json(it.computeCycles));
                tracer.complete_event(std::move(c));
                computeCursor += it.computeCycles;
            }
            if (it.memCycles > 0.0) {
                TraceEvent m;
                m.name = isa::to_string(it.kind);
                m.pid = Tracer::kSimPid;
                m.tid = kTidHbm;
                m.tsUs = offsetUs + to_us(memCursor);
                m.durUs = to_us(it.memCycles);
                m.args.emplace_back("cycles", Json(it.memCycles));
                m.args.emplace_back("bytes",
                                    Json(static_cast<double>(it.bytes)));
                tracer.complete_event(std::move(m));
                memCursor += it.memCycles;
            }
        }
    }
}

} // namespace poseidon::hw
