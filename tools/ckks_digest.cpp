// ckks_digest — deterministic end-to-end CKKS pipeline digest.
//
// Runs a fixed, fully seeded encode/encrypt/evaluate pipeline (HAdd,
// CMult+relin, Rescale, Rotation, conjugation, PMult) and prints one
// line: the FNV-1a hash of every intermediate ciphertext's raw limb
// words. Because the kernel layer guarantees canonical outputs are
// bit-identical across dispatch levels and thread counts, the digest
// must not change under POSEIDON_SIMD or POSEIDON_THREADS — CI runs
// it once per SIMD level and diffs the lines.
//
// Stdout carries the digest only, so `diff <(POSEIDON_SIMD=scalar
// ckks_digest) <(POSEIDON_SIMD=avx2 ckks_digest)` is the whole gate.

#include <cstdio>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

using namespace poseidon;

namespace {

u64
fnv1a(u64 h, const u64 *words, std::size_t n)
{
    for (std::size_t t = 0; t < n; ++t) {
        u64 w = words[t];
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

u64
digest_ct(u64 h, const Ciphertext &c)
{
    for (std::size_t k = 0; k < c.num_limbs(); ++k) {
        h = fnv1a(h, c.c0.limb(k), c.degree());
        h = fnv1a(h, c.c1.limb(k), c.degree());
    }
    return h;
}

} // namespace

int
main()
{
    CkksParams params;
    params.logN = 12;
    params.L = 6;
    params.scaleBits = 35;
    auto ctx = make_ckks_context(params);

    KeyGenerator keygen(ctx);
    CkksEncoder encoder(ctx);
    CkksEncryptor encryptor(ctx, keygen.make_public_key());
    CkksEvaluator eval(ctx);
    KSwitchKey relin = keygen.make_relin_key();
    GaloisKeys galois = keygen.make_galois_keys({1, 2}, true);

    std::vector<cdouble> x, y;
    for (std::size_t i = 0; i < ctx->slots(); ++i) {
        double d = static_cast<double>(i);
        x.push_back({0.25 + d * 1e-3, -0.125 + d * 2e-3});
        y.push_back({1.5 - d * 1e-3, 0.0625 * (i % 7)});
    }
    Ciphertext cx = encryptor.encrypt(encoder.encode(x, params.L));
    Ciphertext cy = encryptor.encrypt(encoder.encode(y, params.L));

    u64 h = 1469598103934665603ull; // FNV offset basis
    h = digest_ct(h, cx);
    h = digest_ct(h, cy);
    h = digest_ct(h, eval.add(cx, cy));

    Ciphertext prod = eval.mul(cx, cy, relin);
    eval.rescale_inplace(prod);
    h = digest_ct(h, prod);

    h = digest_ct(h, eval.rotate(cx, 1, galois));
    h = digest_ct(h, eval.conjugate(cx, galois));

    Plaintext half = encoder.encode_scalar(0.5, cx.num_limbs());
    Ciphertext scaled = eval.mul_plain(cx, half);
    eval.rescale_inplace(scaled);
    h = digest_ct(h, scaled);

    Ciphertext deep = eval.mul(prod, scaled, relin);
    eval.rescale_inplace(deep);
    h = digest_ct(h, eval.rotate(deep, 2, galois));

    std::printf("%016llx\n", static_cast<unsigned long long>(h));
    return 0;
}
