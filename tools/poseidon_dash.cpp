/**
 * @file
 * Fleet dashboard generator: renders a TSDB dump
 * (telemetry/timeseries.h JSONL, e.g. the bench_serving
 * TSDB_serving.jsonl, a bench_chaos TSDB_chaos_<scenario>.jsonl, or
 * the bench_cluster merged TSDB_cluster.jsonl artifact) into one
 * self-contained HTML file — inline SVG sparklines for every value
 * series, latency-quantile curves from histogram series, per-card
 * utilization heat strips rebuilt from the serve.card.<i>.busy_cycles
 * deltas (also under cluster "host<i>." prefixes), a per-host rollup
 * table for cluster dumps, and the alert timeline from the dump's
 * annotations. No external scripts, stylesheets or fonts: the file
 * opens offline and archives byte-stable in CI artifacts.
 *
 * Usage:
 *   poseidon_dash TSDB.jsonl                 # writes TSDB.jsonl.html
 *   poseidon_dash TSDB.jsonl -o dash.html
 *   poseidon_dash TSDB.jsonl --title 'chaos: card death'
 *
 * Exit status: 0 on success, 2 on usage/parse/write errors.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/timeseries.h"

using namespace poseidon;
using telemetry::Annotation;
using telemetry::HistogramSeries;
using telemetry::Series;
using telemetry::Tsdb;

namespace {

std::string
html_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '"': out += "&quot;"; break;
        default: out += c;
        }
    }
    return out;
}

std::string
num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/// Polyline "x,y x,y ..." for a series scaled into a w x h viewBox
/// spanning [c0, c1] cycles and [lo, hi] values.
std::string
polyline_points(const Series &s, double c0, double c1, double lo,
                double hi, double w, double h)
{
    double cspan = c1 > c0 ? c1 - c0 : 1.0;
    double vspan = hi > lo ? hi - lo : 1.0;
    std::ostringstream pts;
    for (std::size_t i = 0; i < s.size(); ++i) {
        double x = (s.at(i).cycle - c0) / cspan * w;
        double y = h - (s.at(i).value - lo) / vspan * h;
        pts << num(x) << ',' << num(y) << ' ';
    }
    return pts.str();
}

/// One sparkline card: name, latest value, min/max, inline SVG.
void
emit_sparkline(std::ostream &os, const Series &s, double c0, double c1)
{
    const double w = 280.0, h = 48.0;
    double lo = s.at(0).value, hi = lo;
    for (std::size_t i = 1; i < s.size(); ++i) {
        lo = std::min(lo, s.at(i).value);
        hi = std::max(hi, s.at(i).value);
    }
    os << "<div class='card'><div class='name'>"
       << html_escape(s.name()) << "</div>"
       << "<div class='stat'>latest <b>" << num(s.latest().value)
       << "</b> &middot; min " << num(lo) << " &middot; max "
       << num(hi);
    if (s.evicted() > 0) {
        os << " &middot; " << s.evicted() << " evicted";
    }
    os << "</div><svg viewBox='0 0 " << num(w) << ' ' << num(h + 4)
       << "' class='spark'><polyline fill='none' stroke='#2a7ae2' "
          "stroke-width='1.5' points='"
       << polyline_points(s, c0, c1, lo, hi, w, h) << "'/></svg></div>\n";
}

/// Latency curves: per-interval p50/p99 from a histogram series.
void
emit_quantile_card(std::ostream &os, const HistogramSeries &hs,
                   double c0, double c1)
{
    const double w = 280.0, h = 48.0;
    struct Pt
    {
        double cycle, p50, p99;
    };
    std::vector<Pt> pts;
    for (std::size_t i = 0; i < hs.size(); ++i) {
        double prev = i == 0 ? -1.0 : hs.at(i - 1).cycle;
        double window = hs.at(i).cycle - prev;
        double p50 = hs.window_quantile(window, 0.5, hs.at(i).cycle);
        if (std::isnan(p50)) continue; // empty interval: no point
        double p99 = hs.window_quantile(window, 0.99, hs.at(i).cycle);
        pts.push_back({hs.at(i).cycle, p50, p99});
    }
    os << "<div class='card'><div class='name'>"
       << html_escape(hs.name()) << " (p50 / p99)</div>";
    if (pts.empty()) {
        os << "<div class='stat'>no observations</div></div>\n";
        return;
    }
    double lo = pts[0].p50, hi = pts[0].p99;
    for (const Pt &p : pts) {
        lo = std::min(lo, p.p50);
        hi = std::max(hi, p.p99);
    }
    double cspan = c1 > c0 ? c1 - c0 : 1.0;
    double vspan = hi > lo ? hi - lo : 1.0;
    auto line = [&](double Pt::*q, const char *color) {
        std::ostringstream p;
        for (const Pt &pt : pts) {
            p << num((pt.cycle - c0) / cspan * w) << ','
              << num(h - (pt.*q - lo) / vspan * h) << ' ';
        }
        os << "<polyline fill='none' stroke='" << color
           << "' stroke-width='1.5' points='" << p.str() << "'/>";
    };
    os << "<div class='stat'>latest p50 <b>"
       << num(pts.back().p50) << "</b> &middot; p99 <b>"
       << num(pts.back().p99) << "</b> cycles</div>"
       << "<svg viewBox='0 0 " << num(w) << ' ' << num(h + 4)
       << "' class='spark'>";
    line(&Pt::p99, "#e2612a");
    line(&Pt::p50, "#2a7ae2");
    os << "</svg></div>\n";
}

/// Heat strip of per-interval utilization (busy-cycle delta / cycle
/// delta) for one serve.card.<i>.busy_cycles series.
void
emit_util_strip(std::ostream &os, const Series &s, double c0,
                double c1)
{
    const double w = 640.0, h = 14.0;
    double cspan = c1 > c0 ? c1 - c0 : 1.0;
    os << "<div class='striprow'><span class='stripname'>"
       << html_escape(s.name()) << "</span><svg viewBox='0 0 "
       << num(w) << ' ' << num(h) << "' class='strip'>";
    for (std::size_t i = 1; i < s.size(); ++i) {
        double dt = s.at(i).cycle - s.at(i - 1).cycle;
        if (dt <= 0.0) continue;
        double util = (s.at(i).value - s.at(i - 1).value) / dt;
        util = std::max(0.0, std::min(1.0, util));
        double x0 = (s.at(i - 1).cycle - c0) / cspan * w;
        double x1 = (s.at(i).cycle - c0) / cspan * w;
        // Idle = pale, saturated = deep blue.
        int shade = static_cast<int>(235.0 - 180.0 * util);
        os << "<rect x='" << num(x0) << "' y='0' width='"
           << num(x1 - x0) << "' height='" << num(h) << "' fill='rgb("
           << shade << ',' << shade << ",235)'><title>"
           << html_escape(s.name()) << " [" << num(s.at(i - 1).cycle)
           << ", " << num(s.at(i).cycle) << "): "
           << num(util * 100.0) << "%</title></rect>";
    }
    os << "</svg></div>\n";
}

/// Split a cluster-merged series name "host<i>.<suffix>" into its
/// host index and engine-local suffix; false for non-host series.
bool
split_host_series(const std::string &name, u64 &host,
                  std::string &suffix)
{
    if (name.rfind("host", 0) != 0) return false;
    std::size_t i = 4;
    if (i >= name.size() || !std::isdigit(
                                static_cast<unsigned char>(name[i])))
        return false;
    u64 h = 0;
    while (i < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[i]))) {
        h = h * 10 + static_cast<u64>(name[i] - '0');
        ++i;
    }
    if (i >= name.size() || name[i] != '.') return false;
    host = h;
    suffix = name.substr(i + 1);
    return true;
}

/// Per-host rollup table for cluster dumps: one row per "host<i>."
/// prefix, summarizing that engine's latest serve.* samples.
void
emit_host_rollup(std::ostream &os, const Tsdb &db)
{
    // host index -> (engine-local series name -> series).
    std::map<u64, std::map<std::string, const Series *>> hosts;
    for (const auto &s : db.series()) {
        u64 h = 0;
        std::string suffix;
        if (split_host_series(s->name(), h, suffix) && !s->empty()) {
            hosts[h][suffix] = s.get();
        }
    }
    if (hosts.empty()) return;

    auto latest = [](const std::map<std::string, const Series *> &m,
                     const char *name) -> std::string {
        auto it = m.find(name);
        if (it == m.end()) return "-";
        return num(it->second->latest().value);
    };
    os << "<h2>Host rollup</h2>\n"
       << "<table class='ann'><tr><th>host</th><th>completed</th>"
          "<th>failed</th><th>shed</th><th>retried</th>"
          "<th>queue depth</th><th>live cards</th>"
          "<th>quarantines</th></tr>\n";
    for (const auto &[h, m] : hosts) {
        os << "<tr><td>host" << h << "</td><td>"
           << latest(m, "serve.jobs.completed") << "</td><td>"
           << latest(m, "serve.jobs.failed") << "</td><td>"
           << latest(m, "serve.jobs.shed") << "</td><td>"
           << latest(m, "serve.jobs.retried") << "</td><td>"
           << latest(m, "serve.queue_depth") << "</td><td>"
           << latest(m, "serve.health.live_cards") << "</td><td>"
           << latest(m, "serve.health.quarantines")
           << "</td></tr>\n";
    }
    os << "</table>\n";
}

/// Alert lane per rule: firing windows as red bands on the cycle
/// axis, rebuilt from the dump's "alert" annotations.
void
emit_alert_timeline(std::ostream &os, const Tsdb &db, double c0,
                    double c1)
{
    struct Lane
    {
        std::string rule;
        std::vector<std::pair<double, double>> firing;
        double openSince = -1.0;
        std::size_t edges = 0;
    };
    std::vector<Lane> lanes;
    auto lane_for = [&](const std::string &rule) -> Lane & {
        for (Lane &l : lanes) {
            if (l.rule == rule) return l;
        }
        lanes.push_back(Lane{rule, {}, -1.0, 0});
        return lanes.back();
    };
    for (const Annotation &a : db.annotations()) {
        if (a.kind != "alert") continue;
        Lane &l = lane_for(a.name);
        ++l.edges;
        bool toFiring = a.text.find("-> firing") != std::string::npos;
        bool fromFiring = a.text.rfind("firing ->", 0) == 0;
        if (toFiring && l.openSince < 0.0) l.openSince = a.cycle;
        if (fromFiring && l.openSince >= 0.0) {
            l.firing.emplace_back(l.openSince, a.cycle);
            l.openSince = -1.0;
        }
    }
    for (Lane &l : lanes) {
        if (l.openSince >= 0.0) { // never resolved: band to the edge
            l.firing.emplace_back(l.openSince, c1);
            l.openSince = -1.0;
        }
    }

    os << "<h2>Alerts</h2>\n";
    if (lanes.empty()) {
        os << "<p class='stat'>no alert annotations in this dump</p>\n";
        return;
    }
    const double w = 640.0, h = 16.0;
    double cspan = c1 > c0 ? c1 - c0 : 1.0;
    for (const Lane &l : lanes) {
        os << "<div class='striprow'><span class='stripname'>"
           << html_escape(l.rule) << "</span><svg viewBox='0 0 "
           << num(w) << ' ' << num(h)
           << "' class='strip'><rect x='0' y='6' width='" << num(w)
           << "' height='4' fill='#e8e8e8'/>";
        for (const auto &[f0, f1] : l.firing) {
            os << "<rect x='" << num((f0 - c0) / cspan * w)
               << "' y='2' width='"
               << num(std::max(1.0, (f1 - f0) / cspan * w))
               << "' height='12' fill='#d43f3f'><title>firing ["
               << num(f0) << ", " << num(f1) << ")</title></rect>";
        }
        os << "</svg></div>\n";
    }
    os << "<table class='ann'><tr><th>cycle</th><th>rule</th>"
          "<th>transition</th><th>value</th></tr>\n";
    for (const Annotation &a : db.annotations()) {
        if (a.kind != "alert") continue;
        os << "<tr><td>" << num(a.cycle) << "</td><td>"
           << html_escape(a.name) << "</td><td>"
           << html_escape(a.text) << "</td><td>" << num(a.value)
           << "</td></tr>\n";
    }
    os << "</table>\n";
}

int
render(const std::string &inPath, const std::string &outPath,
       const std::string &title)
{
    Tsdb db = Tsdb::load_jsonl(inPath);

    // Global cycle span across every series.
    double c0 = 0.0, c1 = 0.0;
    bool any = false;
    for (const auto &s : db.series()) {
        if (s->empty()) continue;
        if (!any) {
            c0 = s->at(0).cycle;
            c1 = s->latest().cycle;
            any = true;
        } else {
            c0 = std::min(c0, s->at(0).cycle);
            c1 = std::max(c1, s->latest().cycle);
        }
    }
    for (const auto &h : db.histogram_series()) {
        if (h->empty()) continue;
        c1 = std::max(c1, h->latest().cycle);
    }

    std::ostringstream os;
    os << "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
       << "<title>" << html_escape(title) << "</title><style>\n"
       << "body{font:14px/1.4 system-ui,sans-serif;margin:24px;"
          "color:#222;max-width:1100px}\n"
          "h1{font-size:20px}h2{font-size:16px;margin-top:28px}\n"
          ".meta{color:#666;margin-bottom:16px}\n"
          ".grid{display:flex;flex-wrap:wrap;gap:12px}\n"
          ".card{border:1px solid #ddd;border-radius:6px;"
          "padding:8px 10px;width:300px}\n"
          ".name{font-weight:600;font-size:12px;"
          "overflow-wrap:anywhere}\n"
          ".stat{color:#555;font-size:12px}\n"
          ".spark{width:100%;height:52px;margin-top:4px}\n"
          ".striprow{display:flex;align-items:center;gap:8px;"
          "margin:3px 0}\n"
          ".stripname{width:260px;font-size:12px;text-align:right;"
          "overflow-wrap:anywhere}\n"
          ".strip{flex:1;height:16px}\n"
          ".ann{border-collapse:collapse;margin-top:10px;"
          "font-size:12px}\n"
          ".ann td,.ann th{border:1px solid #ddd;padding:3px 8px;"
          "text-align:left}\n"
       << "</style></head><body>\n"
       << "<h1>" << html_escape(title) << "</h1>\n"
       << "<div class='meta'>" << html_escape(inPath) << " &middot; "
       << db.series_count() << " series &middot; cadence "
       << num(db.cadence_cycles()) << " cycles &middot; span ["
       << num(c0) << ", " << num(c1) << "] cycles</div>\n";

    // Cluster dumps lead with the per-host rollup (no-op for
    // single-engine dumps without host<i>. prefixes).
    emit_host_rollup(os, db);

    // Per-card utilization strips next: the fleet at a glance. The
    // matcher accepts both bare engine names (serve.card.<i>...) and
    // cluster-merged ones (host<j>.serve.card.<i>...).
    std::vector<const Series *> utilSeries;
    for (const auto &s : db.series()) {
        const std::string &n = s->name();
        std::size_t at = n.find("serve.card.");
        bool prefixOk = at == 0;
        if (!prefixOk && at != std::string::npos) {
            u64 h = 0;
            std::string suffix;
            prefixOk = split_host_series(n, h, suffix) &&
                       suffix.rfind("serve.card.", 0) == 0;
        }
        if (prefixOk && n.size() > 12 &&
            n.compare(n.size() - 12, 12, ".busy_cycles") == 0 &&
            s->size() >= 2) {
            utilSeries.push_back(s.get());
        }
    }
    if (!utilSeries.empty()) {
        os << "<h2>Card utilization</h2>\n";
        for (const Series *s : utilSeries) {
            emit_util_strip(os, *s, c0, c1);
        }
    }

    emit_alert_timeline(os, db, c0, c1);

    os << "<h2>Series</h2>\n<div class='grid'>\n";
    for (const auto &s : db.series()) {
        if (!s->empty()) emit_sparkline(os, *s, c0, c1);
    }
    for (const auto &h : db.histogram_series()) {
        if (!h->empty()) emit_quantile_card(os, *h, c0, c1);
    }
    os << "</div>\n</body></html>\n";

    std::ofstream f(outPath, std::ios::binary);
    if (!f) {
        std::cerr << "poseidon_dash: cannot write " << outPath
                  << "\n";
        return 2;
    }
    f << os.str();
    std::cout << "poseidon_dash: wrote " << outPath << " ("
              << db.series_count() << " series, "
              << db.annotations().size() << " annotations)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string inPath, outPath, title;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--title") == 0 &&
                   i + 1 < argc) {
            title = argv[++i];
        } else if (argv[i][0] != '-' && inPath.empty()) {
            inPath = argv[i];
        } else {
            std::cerr << "usage: poseidon_dash TSDB.jsonl [-o "
                         "OUT.html] [--title TITLE]\n";
            return 2;
        }
    }
    if (inPath.empty()) {
        std::cerr << "poseidon_dash: no TSDB dump given\n";
        return 2;
    }
    if (outPath.empty()) outPath = inPath + ".html";
    if (title.empty()) title = "Poseidon fleet dashboard";

    try {
        return render(inPath, outPath, title);
    } catch (const Error &e) {
        std::cerr << "poseidon_dash: " << e.what() << "\n";
        return 2;
    }
}
