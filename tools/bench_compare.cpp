// bench_compare — the bench-regression gate.
//
// Diffs freshly produced BENCH_<name>.json files against the
// committed baselines and exits nonzero when any compared value moves
// beyond its tolerance (or a baseline value disappears, or the
// documents are not comparable — e.g. different hw_config/threads
// stamps). CI runs this after the bench-smoke set so the perf
// trajectory accumulates commit over commit.
//
// Usage:
//   bench_compare --baseline-dir DIR [options] FILE.json [...]
//     --baseline-dir DIR   directory of committed BENCH_*.json
//                          baselines (required)
//     --tolerance T        default relative tolerance (default 1e-9 —
//                          the model is deterministic; the default
//                          only absorbs FP-contraction differences
//                          across compilers)
//     --metric-tol K=T     per-metric override, repeatable (K is
//                          "cycles", "seconds", "bandwidth_util" or
//                          "metrics.<name>")
//     --require-baseline   treat a missing baseline file as failure
//                          (default: report it and pass, so new
//                          benches can land before their baseline)
//
// A current file's baseline is DIR/<basename of FILE>.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/bench_diff.h"
#include "telemetry/json.h"

using poseidon::telemetry::BenchDiffOptions;
using poseidon::telemetry::BenchDiffResult;
using poseidon::telemetry::Json;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --baseline-dir DIR [--tolerance T] "
                 "[--metric-tol KEY=T]... [--require-baseline] "
                 "FILE.json [...]\n",
                 argv0);
    return 2;
}

bool
read_json(const std::string &path, Json *out, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        *err = "cannot open";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        *out = Json::parse(ss.str());
    } catch (const std::exception &e) {
        *err = e.what();
        return false;
    }
    return true;
}

std::string
basename_of(const std::string &path)
{
    std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselineDir;
    BenchDiffOptions opt;
    bool requireBaseline = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--baseline-dir") {
            if (++i >= argc) return usage(argv[0]);
            baselineDir = argv[i];
        } else if (arg == "--tolerance") {
            if (++i >= argc) return usage(argv[0]);
            opt.defaultTolerance = std::atof(argv[i]);
        } else if (arg == "--metric-tol") {
            if (++i >= argc) return usage(argv[0]);
            std::string kv = argv[i];
            std::size_t eq = kv.find('=');
            if (eq == std::string::npos) return usage(argv[0]);
            opt.tolerances[kv.substr(0, eq)] =
                std::atof(kv.c_str() + eq + 1);
        } else if (arg == "--require-baseline") {
            requireBaseline = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (baselineDir.empty() || files.empty()) return usage(argv[0]);
    if (!baselineDir.empty() && baselineDir.back() != '/') {
        baselineDir += '/';
    }

    int rc = 0;
    std::size_t regressions = 0, skipped = 0;
    for (const std::string &file : files) {
        std::string err;
        Json current;
        if (!read_json(file, &current, &err)) {
            std::fprintf(stderr, "%s: FAIL: %s\n", file.c_str(),
                         err.c_str());
            rc = 1;
            continue;
        }
        std::string basePath = baselineDir + basename_of(file);
        Json baseline;
        if (!read_json(basePath, &baseline, &err)) {
            if (requireBaseline) {
                std::fprintf(stderr, "%s: FAIL: baseline %s: %s\n",
                             file.c_str(), basePath.c_str(),
                             err.c_str());
                rc = 1;
            } else {
                std::printf("%s: NEW (no baseline at %s) — commit one "
                            "to start gating\n",
                            file.c_str(), basePath.c_str());
                ++skipped;
            }
            continue;
        }
        BenchDiffResult r =
            poseidon::telemetry::diff_bench(baseline, current, opt);
        std::fputs(poseidon::telemetry::format_diff(r).c_str(),
                   r.regressed() ? stderr : stdout);
        if (r.regressed()) {
            regressions += r.comparable ? r.regression_count() : 1;
            rc = 1;
        }
    }
    if (rc != 0) {
        std::fprintf(stderr,
                     "bench_compare: FAIL (%zu regression%s)\n",
                     regressions, regressions == 1 ? "" : "s");
    } else {
        std::printf("bench_compare: ok (%zu file%s%s)\n", files.size(),
                    files.size() == 1 ? "" : "s",
                    skipped > 0 ? ", some without baselines" : "");
    }
    return rc;
}
