#!/usr/bin/env python3
"""Documentation checker: broken links, anchors, and bench citations.

Walks the repository's markdown documentation and verifies that

  1. every relative link points at a file or directory that exists,
  2. every anchor (``file.md#section`` or in-file ``#section``)
     resolves to a heading in the target document, using GitHub's
     heading-slug rules,
  3. every ``BENCH_<name>.json`` cited anywhere in the docs matches a
     bench binary that actually emits it (a ``Harness("<name>", ...)``
     construction in bench/*.cpp),
  4. every config symbol the docs cite as ``Struct::member`` (for the
     structs in CONFIG_HEADERS, e.g. ``ServeConfig::maxQueueDepth`` or
     ``ClusterConfig::keyCacheShare``) names an identifier that
     actually appears in the owning header — so the runbook cannot
     drift from the code it documents.

External links (http/https/mailto) are not fetched. Exits nonzero and
prints one line per problem, so it can run as a CI gate:

    python3 tools/check_docs.py
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Generated / imported documents whose links we do not control.
EXCLUDE = {"ISSUE.md", "SNIPPETS.md", "PAPERS.md", "PAPER.md"}

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
BENCH_CITE_RE = re.compile(r"BENCH_([A-Za-z0-9_]+)\.json")
HARNESS_RE = re.compile(r"Harness\s+\w+\s*\(\s*\"([^\"]+)\"")

# Config structs whose ``Struct::member`` doc citations must resolve
# to an identifier in the owning header (repo-relative paths).
CONFIG_HEADERS = {
    "ServeConfig": "src/serve/engine.h",
    "HealthConfig": "src/serve/health.h",
    "SloConfig": "src/serve/latency_breakdown.h",
    "ClusterConfig": "src/cluster/cluster.h",
    "AutoscaleConfig": "src/cluster/cluster.h",
    "ClusterStats": "src/cluster/cluster.h",
    "HwConfig": "src/hw/config.h",
}
CONFIG_CITE_RE = re.compile(
    r"\b(" + "|".join(CONFIG_HEADERS) + r")::(\w+)")


def doc_files():
    out = []
    for base, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs
                   if not d.startswith(".") and d != "build"]
        for f in sorted(files):
            if f.endswith(".md") and f not in EXCLUDE:
                out.append(os.path.join(base, f))
    return sorted(out)


def github_slug(heading):
    """GitHub's anchor slug for a heading line."""
    # Strip inline code/links down to their text first.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path, cache={}):
    if path not in cache:
        slugs, seen = set(), {}
        in_fence = False
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if not m:
                    continue
                slug = github_slug(m.group(2))
                n = seen.get(slug, 0)
                seen[slug] = n + 1
                slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def bench_names():
    names = set()
    bench_dir = os.path.join(REPO, "bench")
    for f in sorted(os.listdir(bench_dir)):
        if not f.endswith(".cpp"):
            continue
        with open(os.path.join(bench_dir, f), encoding="utf-8") as fh:
            names.update(HARNESS_RE.findall(fh.read()))
    return names


def header_symbols(relpath, cache={}):
    """Identifiers appearing in a source header (grep-level check)."""
    if relpath not in cache:
        path = os.path.join(REPO, relpath)
        try:
            with open(path, encoding="utf-8") as fh:
                cache[relpath] = set(re.findall(r"\w+", fh.read()))
        except OSError:
            cache[relpath] = None  # header missing: reported once
    return cache[relpath]


def check_config_cites(rel, lineno, line, problems):
    for struct, member in CONFIG_CITE_RE.findall(line):
        header = CONFIG_HEADERS[struct]
        symbols = header_symbols(header)
        if symbols is None:
            problems.append(
                f"{rel}:{lineno}: cites {struct}::{member} but "
                f"{header} does not exist")
        elif member not in symbols:
            problems.append(
                f"{rel}:{lineno}: cites {struct}::{member} but "
                f"'{member}' does not appear in {header}")


def iter_links(path):
    """(lineno, target) for every markdown link outside code fences."""
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            # Drop inline code spans: paths in backticks are prose.
            stripped = re.sub(r"`[^`]*`", "", line)
            for m in LINK_RE.finditer(stripped):
                yield lineno, m.group(1)


def check_link(doc, target):
    """Error string for a broken link, or None."""
    if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
        return None
    path_part, _, anchor = target.partition("#")
    if path_part:
        dest = os.path.normpath(
            os.path.join(os.path.dirname(doc), path_part))
        if not os.path.exists(dest):
            return f"broken link: {target} (no such file)"
    else:
        dest = doc
    if anchor:
        if not dest.endswith(".md") or not os.path.isfile(dest):
            return None  # anchors into non-markdown: not checkable
        if anchor not in headings_of(dest):
            return (f"broken anchor: {target} "
                    f"(no heading '#{anchor}' in "
                    f"{os.path.relpath(dest, REPO)})")
    return None


def main():
    problems = []
    known_benches = bench_names()
    docs = doc_files()
    links = 0
    for doc in docs:
        rel = os.path.relpath(doc, REPO)
        for lineno, target in iter_links(doc):
            links += 1
            err = check_link(doc, target)
            if err:
                problems.append(f"{rel}:{lineno}: {err}")
        with open(doc, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                for name in BENCH_CITE_RE.findall(line):
                    if name not in known_benches:
                        problems.append(
                            f"{rel}:{lineno}: cites BENCH_{name}.json "
                            f"but no bench constructs "
                            f"Harness(\"{name}\")")
                check_config_cites(rel, lineno, line, problems)
    for p in problems:
        print(p)
    print(f"check_docs: {len(docs)} documents, {links} links, "
          f"{len(known_benches)} bench names, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
