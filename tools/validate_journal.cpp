/**
 * @file
 * CI gate for serving-engine lifecycle journals: parse each JSONL
 * file against the poseidon-journal schema, decompose it, and verify
 * the invariants a healthy journal must satisfy —
 *
 *  - header schema/version/declared event count are valid,
 *  - every event line round-trips (known kind, required fields),
 *  - every job reaches exactly one terminal state,
 *  - per-job event streams are chronological, and
 *  - the conservation invariant holds bit-exactly: each job's phase
 *    expansion distills to its end-to-end latency
 *    (JobBreakdown::phase_sum() == endToEndCycles).
 *
 * Usage: validate_journal FILE.jsonl [FILE.jsonl ...]
 * Exit status 0 when every file validates, 1 otherwise.
 */

#include <iostream>
#include <string>

#include "common/status.h"
#include "serve/latency_breakdown.h"

using namespace poseidon;
using namespace poseidon::serve;

namespace {

bool
validate(const std::string &path)
{
    try {
        Journal journal = Journal::load_jsonl(path);
        // decompose() itself asserts terminality, chronology and
        // conservation via POSEIDON_CHECK (InternalError); re-check
        // conservation explicitly so the gate does not rely on the
        // library's asserts alone.
        BreakdownReport br = decompose(journal);
        for (const JobBreakdown &jb : br.jobs) {
            if (jb.phase_sum() != jb.endToEndCycles) {
                std::cerr << path << ": job " << jb.id
                          << " violates phase conservation ("
                          << jb.phase_sum() << " != "
                          << jb.endToEndCycles << " cycles)\n";
                return false;
            }
        }
        std::cout << path << ": OK (" << journal.size()
                  << " events, " << br.jobs.size() << " jobs, "
                  << br.cards << " cards)\n";
        return true;
    } catch (const Error &e) {
        std::cerr << path << ": INVALID: " << e.what() << "\n";
        return false;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: validate_journal FILE.jsonl [...]\n";
        return 1;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i) {
        ok = validate(argv[i]) && ok;
    }
    return ok ? 0 : 1;
}
