// poseidon_prof — the bottleneck-attribution profiler CLI.
//
// Runs a named paper workload (or all of them) through the accelerator
// model, attributes every modeled cycle with hw/profiler, and renders
// the attribution + roofline tables with a top-bottleneck verdict.
//
// Usage:
//   poseidon_prof [options] [WORKLOAD ...]
//     WORKLOAD            lr | lstm | resnet-20 | bootstrapping | all
//                         (default: all; names are case-insensitive)
//   --json FILE           also write the JSON report to FILE (one
//                         workload) or FILE with "_<name>" inserted
//                         before the extension (several)
//   --quiet               suppress the text tables (verdict only)
//   --list                print the known workload names and exit
//
// Exit status: 0 on success, 1 on a profiler invariant violation or
// unknown workload, 2 on bad usage.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "hw/profiler.h"
#include "kernels/kernels.h"
#include "hw/sim.h"
#include "workloads/workloads.h"

using namespace poseidon;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--json FILE] [--quiet] [--list] "
                 "[WORKLOAD ...]\n",
                 argv0);
    return 2;
}

std::string
json_path_for(const std::string &base, const std::string &name,
              bool multi)
{
    if (!multi) return base;
    std::string suffix;
    for (char c : name) {
        suffix += (std::isalnum(static_cast<unsigned char>(c)))
                      ? static_cast<char>(
                            std::tolower(static_cast<unsigned char>(c)))
                      : '_';
    }
    std::size_t dot = base.rfind('.');
    std::size_t slash = base.rfind('/');
    // A dot inside a directory component is not an extension.
    if (dot == std::string::npos ||
        (slash != std::string::npos && slash > dot)) {
        return base + "_" + suffix;
    }
    return base.substr(0, dot) + "_" + suffix + base.substr(dot);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    bool quiet = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            if (++i >= argc) return usage(argv[0]);
            jsonPath = argv[i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            for (const std::string &n : workloads::workload_names()) {
                std::printf("%s\n", n.c_str());
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }
    if (names.empty() ||
        (names.size() == 1 && (names[0] == "all" || names[0] == "ALL"))) {
        names = workloads::workload_names();
    }

    if (!quiet) {
        std::printf("host kernel dispatch: %s\n",
                    kernels::level_name(kernels::active_level()));
    }

    hw::HwConfig cfg = hw::HwConfig::poseidon_u280();
    hw::PoseidonSim sim(cfg);
    bool multi = names.size() > 1;

    for (const std::string &name : names) {
        workloads::Workload wl;
        try {
            wl = workloads::find_workload(name);
        } catch (const poseidon::InvalidArgument &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }

        hw::SimTimeline tl;
        hw::SimResult r = sim.run(wl.trace, &tl);
        hw::ProfileReport rep;
        try {
            rep = hw::profile(tl, r, cfg, wl.name);
        } catch (const poseidon::InternalError &e) {
            std::fprintf(stderr,
                         "profiler invariant violation on %s: %s\n",
                         wl.name.c_str(), e.what());
            return 1;
        }
        rep.export_metrics(telemetry::MetricsRegistry::global());

        if (!quiet) {
            std::printf("== %s: %zu instructions, %.0f cycles, "
                        "%.3f ms modeled ==\n",
                        wl.name.c_str(), wl.trace.size(), r.cycles,
                        r.seconds * 1e3);
            std::fputs(rep.to_text().c_str(), stdout);
            std::printf("\n");
        } else {
            std::printf("%s: %s\n", wl.name.c_str(),
                        rep.verdict().c_str());
        }

        if (!jsonPath.empty()) {
            std::string path = json_path_for(jsonPath, wl.name, multi);
            std::ofstream out(path);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                return 1;
            }
            out << rep.to_json().dump(2) << "\n";
            std::printf("[prof] wrote %s\n", path.c_str());
        }
    }
    return 0;
}
