/**
 * @file
 * Chaos-campaign runner: executes the scripted fault-storm scenarios
 * (serve/chaos.h) against the serving engine and gates on the
 * conservation invariants.
 *
 * Usage:
 *   chaos_campaign                  # run the standard campaign
 *   chaos_campaign --list           # print scenario names and exit
 *   chaos_campaign --only NAME      # run a single scenario
 *   chaos_campaign --dsl 'SPEC'     # ad-hoc schedule on the default
 *                                   # scenario load
 *   chaos_campaign --json           # machine-readable reports
 *   chaos_campaign --journal DIR    # write each scenario's lifecycle
 *                                   # journal to DIR/NAME.jsonl (feed
 *                                   # to poseidon_explain /
 *                                   # validate_journal)
 *
 * Exit status is non-zero when any scenario loses a job (submitted !=
 * completed + failed + expired + shed), leaves a ticket unresolved,
 * or produces a journal that disagrees with the engine's stats — the
 * CI smoke job runs exactly this binary.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/chaos.h"

using namespace poseidon;
using namespace poseidon::serve;

namespace {

void
print_report(const CampaignReport &r, bool json)
{
    if (json) {
        std::cout << r.to_json().dump() << "\n";
        return;
    }
    std::cout << (r.ok() ? "  PASS " : "  FAIL ") << r.scenario
              << ": " << r.completed << "/" << r.submitted
              << " completed, " << r.failed << " failed, " << r.expired
              << " expired, " << r.shed << " shed; " << r.retries
              << " retries, " << r.quarantines << " quarantines, "
              << r.readmissions << " readmissions, " << r.probes
              << " probes; availability "
              << static_cast<int>(r.availability * 100.0 + 0.5)
              << "%\n";
    if (!r.allTicketsResolved) {
        std::cout << "        unresolved ticket futures!\n";
    }
    if (!r.journalConsistent) {
        std::cout << "        journal disagrees with engine stats!\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool list = false;
    std::string only;
    std::string dsl;
    std::string journalDir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--list") == 0) {
            list = true;
        } else if (std::strcmp(argv[i], "--only") == 0 &&
                   i + 1 < argc) {
            only = argv[++i];
        } else if (std::strcmp(argv[i], "--dsl") == 0 &&
                   i + 1 < argc) {
            dsl = argv[++i];
        } else if (std::strcmp(argv[i], "--journal") == 0 &&
                   i + 1 < argc) {
            journalDir = argv[++i];
        } else {
            std::cerr << "usage: chaos_campaign [--list] [--json] "
                         "[--only NAME] [--dsl 'SPEC'] "
                         "[--journal DIR]\n";
            return 2;
        }
    }

    std::vector<Scenario> scenarios;
    if (!dsl.empty()) {
        Scenario sc;
        sc.name = "ad-hoc";
        sc.description = "schedule from --dsl";
        sc.schedule = ChaosSchedule::parse(dsl);
        scenarios.push_back(std::move(sc));
    } else {
        scenarios = standard_scenarios();
    }

    if (list) {
        for (const Scenario &sc : scenarios) {
            std::cout << sc.name << ": " << sc.description << "\n";
        }
        return 0;
    }

    if (!json) std::cout << "chaos campaign:\n";
    bool allOk = true;
    bool ranAny = false;
    for (const Scenario &sc : scenarios) {
        if (!only.empty() && sc.name != only) continue;
        ranAny = true;
        CampaignReport r = run_scenario(sc);
        print_report(r, json);
        if (!journalDir.empty()) {
            std::string path = journalDir + "/" + sc.name + ".jsonl";
            std::ofstream f(path, std::ios::binary);
            if (f) {
                f << r.journalJsonl;
            }
            if (!f) {
                std::cerr << "cannot write journal " << path << "\n";
                allOk = false;
            }
        }
        allOk = allOk && r.ok();
    }
    if (!ranAny) {
        std::cerr << "no scenario named \"" << only << "\"\n";
        return 2;
    }
    if (!json) {
        std::cout << (allOk ? "campaign PASSED\n"
                            : "campaign FAILED\n");
    }
    return allOk ? 0 : 1;
}
