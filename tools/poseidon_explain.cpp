/**
 * @file
 * "Explain this job": replay a serving-engine lifecycle journal
 * (serve/journal.h) and print per-job latency waterfalls — where
 * every cycle of end-to-end latency went (queue wait, batch delay,
 * backoff, retry overhead, execution) — plus per-tenant /
 * per-priority aggregates rebuilt from the journal alone.
 *
 * Usage:
 *   poseidon_explain JOURNAL.jsonl             # summary + worst jobs
 *   poseidon_explain JOURNAL.jsonl --top N     # N worst waterfalls
 *   poseidon_explain JOURNAL.jsonl --job ID    # one specific job
 *   poseidon_explain JOURNAL.jsonl --slo SPEC  # SLO burn rates, e.g.
 *                                  --slo 'prio0=2.5e6;budget=0.01'
 *   poseidon_explain JOURNAL.jsonl --alerts    # alert-rule timeline
 *   poseidon_explain JOURNAL.jsonl --alerts --tsdb TSDB.jsonl
 *                                  # cross-check against the TSDB's
 *                                  # alert annotations
 *   poseidon_explain JOURNAL.jsonl --json FILE # full report as JSON
 *                                              # (FILE '-' = stdout)
 *
 * Journals come out of `chaos_campaign --journal DIR`, the
 * bench_serving JOURNAL_serving.jsonl artifact, or
 * ServingEngine::journal().write_jsonl(). Exit status: 0 on success,
 * 1 when --slo finds an alerting priority class or --alerts finds a
 * rule that reached firing, 2 on usage/parse errors.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/status.h"
#include "serve/latency_breakdown.h"
#include "telemetry/timeseries.h"

using namespace poseidon;
using namespace poseidon::serve;

namespace {

void
print_summary(const BreakdownReport &br)
{
    std::cout << "journal: " << br.jobs.size() << " jobs, "
              << br.cards << " cards, clock " << br.clockGHz
              << " GHz\n\n";
    std::cout << "per-tenant (cycles):\n";
    for (const auto &[tenant, acc] : br.tenants) {
        std::cout << "  " << tenant << ": " << acc.jobs << " jobs ("
                  << acc.completed << " completed, " << acc.failed
                  << " failed, " << acc.expired << " expired, "
                  << acc.shed << " shed)  p50 "
                  << acc.p50LatencyCycles << "  p99 "
                  << acc.p99LatencyCycles << "\n";
        if (acc.endToEndCycles > 0.0) {
            std::cout << "    phase shares:";
            for (std::size_t p = 0; p < kPhaseCount; ++p) {
                std::cout << "  "
                          << to_string(static_cast<Phase>(p)) << " "
                          << static_cast<int>(acc.phaseCycles[p] /
                                                  acc.endToEndCycles *
                                                  100.0 +
                                              0.5)
                          << "%";
            }
            std::cout << "\n";
        }
    }
    std::cout << "\n";
}

/**
 * Print the alert timeline recorded in the journal (the engine logs
 * one AlertTransition event per state-machine edge, job = 0). Returns
 * the number of edges that reached `firing`.
 */
std::size_t
print_alert_timeline(const Journal &journal,
                     const telemetry::Tsdb *tsdb)
{
    std::size_t fired = 0, edges = 0;
    std::cout << "alert timeline (journal):\n";
    for (const JournalEvent &ev : journal.events()) {
        if (ev.kind != JournalEventKind::AlertTransition) continue;
        ++edges;
        if (ev.failed) ++fired;
        std::cout << "  cycle " << ev.cycle << "  [rule "
                  << (ev.attempt == 0 ? 0 : ev.attempt - 1) << "] "
                  << ev.name << ": " << ev.detail;
        if (ev.value != 0.0) std::cout << "  (value " << ev.value
                                       << ")";
        std::cout << "\n";
    }
    if (edges == 0) {
        std::cout << "  (no alert transitions — no rules configured "
                     "or none tripped)\n";
    }
    if (tsdb) {
        // Cross-check: the TSDB carries the same edges as
        // annotations; disagreement means the two artifacts are from
        // different runs.
        std::size_t annEdges = 0;
        for (const telemetry::Annotation &a : tsdb->annotations()) {
            if (a.kind == "alert") ++annEdges;
        }
        std::cout << "tsdb cross-check: " << annEdges
                  << " alert annotations vs " << edges
                  << " journal transitions"
                  << (annEdges == edges ? "" : "  MISMATCH") << "\n";
    }
    return fired;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string jsonOut;
    std::string sloSpec;
    std::string tsdbPath;
    bool wantAlerts = false;
    std::size_t top = 3;
    JobId onlyJob = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--alerts") == 0) {
            wantAlerts = true;
        } else if (std::strcmp(argv[i], "--tsdb") == 0 &&
                   i + 1 < argc) {
            tsdbPath = argv[++i];
        } else if (std::strcmp(argv[i], "--top") == 0 &&
                   i + 1 < argc) {
            top = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--job") == 0 &&
                   i + 1 < argc) {
            onlyJob = static_cast<JobId>(std::stoull(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            jsonOut = argv[++i];
        } else if (std::strcmp(argv[i], "--slo") == 0 &&
                   i + 1 < argc) {
            sloSpec = argv[++i];
        } else if (argv[i][0] != '-' && path.empty()) {
            path = argv[i];
        } else {
            std::cerr << "usage: poseidon_explain JOURNAL.jsonl "
                         "[--top N] [--job ID] [--slo SPEC] "
                         "[--alerts] [--tsdb FILE] [--json FILE]\n";
            return 2;
        }
    }
    if (path.empty()) {
        std::cerr << "poseidon_explain: no journal file given\n";
        return 2;
    }

    try {
        Journal journal = Journal::load_jsonl(path);
        BreakdownReport br = decompose(journal);

        SloReport slo;
        bool haveSlo = !sloSpec.empty();
        if (haveSlo) {
            slo = evaluate_slo(br, SloConfig::parse(sloSpec));
        }

        telemetry::Tsdb tsdb;
        bool haveTsdb = !tsdbPath.empty();
        if (haveTsdb) tsdb = telemetry::Tsdb::load_jsonl(tsdbPath);

        if (!jsonOut.empty()) {
            telemetry::Json out = br.to_json();
            if (haveSlo) out.set("slo", slo.to_json());
            if (jsonOut == "-") {
                std::cout << out.dump(2) << "\n";
            } else {
                std::ofstream f(jsonOut, std::ios::binary);
                if (!f) {
                    std::cerr << "poseidon_explain: cannot write "
                              << jsonOut << "\n";
                    return 2;
                }
                f << out.dump(2) << "\n";
            }
        }

        // A firing edge trips the exit code regardless of the output
        // mode (mirrors how --slo alerts do).
        bool anyFiring = false;
        if (wantAlerts) {
            for (const JournalEvent &ev : journal.events()) {
                if (ev.kind == JournalEventKind::AlertTransition &&
                    ev.failed) {
                    anyFiring = true;
                }
            }
        }
        if (jsonOut.empty() || jsonOut != "-") {
            print_summary(br);
            if (onlyJob != 0) {
                const JobBreakdown *jb = br.find(onlyJob);
                if (!jb) {
                    std::cerr << "poseidon_explain: no job "
                              << onlyJob << " in this journal\n";
                    return 2;
                }
                std::cout << br.waterfall_text(*jb);
            } else {
                std::cout << "worst " << top
                          << " jobs by end-to-end latency:\n";
                for (const JobBreakdown *jb : br.worst(top)) {
                    std::cout << br.waterfall_text(*jb) << "\n";
                }
            }
            if (wantAlerts) {
                print_alert_timeline(journal,
                                     haveTsdb ? &tsdb : nullptr);
            }
            if (haveSlo) {
                std::cout << "slo (budget " << slo.budgetFraction
                          << ", alert at burn >= "
                          << slo.alertBurnRate << "x):\n";
                for (const SloStatus &s : slo.statuses) {
                    std::cout << "  prio" << s.priority
                              << ": target " << s.targetCycles
                              << " cycles, " << s.violations << "/"
                              << s.jobs << " violations, burn rate "
                              << s.burnRate
                              << (s.alerting ? "  ALERT" : "")
                              << "\n";
                }
            }
        }
        if (haveSlo && slo.alerts > 0) return 1;
        if (anyFiring) return 1;
        return 0;
    } catch (const Error &e) {
        std::cerr << "poseidon_explain: " << e.what() << "\n";
        return 2;
    }
}
